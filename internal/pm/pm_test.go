package pm

import (
	"testing"
	"time"

	"xssd/internal/sim"
)

func TestClassString(t *testing.T) {
	if SRAM.String() != "SRAM" || DRAM.String() != "DRAM" || NVDIMM.String() != "NVDIMM" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() != "unknown" {
		t.Fatal("unknown class name wrong")
	}
}

func TestBankWriteTiming(t *testing.T) {
	env := sim.NewEnv(1)
	bank := NewBank(env, Spec{Class: SRAM, Capacity: 1 << 20, Bandwidth: 1e9, Latency: 100 * time.Nanosecond, Persistent: true})
	var took time.Duration
	env.Go("w", func(p *sim.Proc) {
		start := p.Now()
		bank.Write(p, 1000) // 1µs serialization + 100ns latency
		took = p.Now() - start
	})
	env.Run()
	if took != 1100*time.Nanosecond {
		t.Fatalf("write took %v, want 1.1µs", took)
	}
}

func TestSRAMFasterThanDRAM(t *testing.T) {
	run := func(spec Spec) time.Duration {
		env := sim.NewEnv(1)
		bank := NewBank(env, spec)
		var took time.Duration
		env.Go("w", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < 100; i++ {
				bank.Write(p, 4096)
			}
			took = p.Now() - start
		})
		env.RunUntil(time.Second)
		return took
	}
	sram, dram := run(SRAMSpec), run(DRAMSpec)
	if sram >= dram {
		t.Fatalf("SRAM (%v) not faster than shared DRAM (%v)", sram, dram)
	}
}

func TestSharedDRAMBackgroundTrafficSlowsWrites(t *testing.T) {
	run := func(shared float64) time.Duration {
		env := sim.NewEnv(1)
		spec := DRAMSpec
		spec.SharedFrac = shared
		bank := NewBank(env, spec)
		var took time.Duration
		env.Go("w", func(p *sim.Proc) {
			p.Sleep(10 * time.Microsecond) // let background traffic establish
			start := p.Now()
			for i := 0; i < 200; i++ {
				bank.Write(p, 4096)
			}
			took = p.Now() - start
		})
		env.RunUntil(100 * time.Millisecond)
		return took
	}
	exclusive, shared := run(0), run(0.5)
	if float64(shared) < 1.5*float64(exclusive) {
		t.Fatalf("shared bus (%v) should be much slower than exclusive (%v)", shared, exclusive)
	}
}

func TestPresetsPersistence(t *testing.T) {
	for _, s := range []Spec{SRAMSpec, DRAMSpec, NVDIMMSpec} {
		if !s.Persistent {
			t.Fatalf("%v preset not persistent", s.Class)
		}
	}
	if SRAMSpec.Capacity != 128<<10 || DRAMSpec.Capacity != 128<<20 {
		t.Fatal("preset capacities do not match paper setup")
	}
}

func TestWriteAsyncCallback(t *testing.T) {
	env := sim.NewEnv(1)
	bank := NewBank(env, Spec{Class: SRAM, Capacity: 1 << 20, Bandwidth: 1e9, Latency: 0, Persistent: true})
	var at time.Duration
	env.Go("w", func(p *sim.Proc) {
		bank.WriteAsync(500, func() { at = env.Now() })
	})
	env.Run()
	if at != 500*time.Nanosecond {
		t.Fatalf("async write landed at %v, want 500ns", at)
	}
}
