// Package pm models the persistent-memory classes the paper evaluates as
// CMB backing (§4.1, §6): FPGA BlockRAM (SRAM), the device's DDR3 data
// buffer (DRAM, bandwidth shared with regular buffering activity), and
// host-side battery-backed DRAM (NVDIMM) for the paper's "Memory" baseline.
//
// A Bank is a capacity plus a bus: writes and reads occupy the bus for
// their serialization time and add a fixed access latency. Persistence is a
// property of the class (battery/supercapacitor backing), which the crash
// model in internal/villars consults.
package pm

import (
	"time"

	"xssd/internal/sim"
)

// Class identifies a memory technology.
type Class int

// Memory classes from the paper's evaluation.
const (
	SRAM   Class = iota // FPGA BlockRAM: small, fastest
	DRAM                // device DDR3: large, shared with the data buffer
	NVDIMM              // host battery-backed DIMM (the "Memory" baseline)
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case SRAM:
		return "SRAM"
	case DRAM:
		return "DRAM"
	case NVDIMM:
		return "NVDIMM"
	}
	return "unknown"
}

// Spec describes a memory bank configuration.
type Spec struct {
	Class      Class
	Capacity   int64         // bytes
	Bandwidth  float64       // bytes/second of the access bus
	Latency    time.Duration // fixed per-access latency
	Persistent bool          // survives power loss (battery/supercap)
	SharedFrac float64       // fraction of bus consumed by background traffic
}

// Paper §6 presets.
var (
	// SRAMSpec: 128 KB of BlockRAM behind a 128-bit @ 250 MHz bus = 4 GB/s.
	SRAMSpec = Spec{Class: SRAM, Capacity: 128 << 10, Bandwidth: 4e9, Latency: 50 * time.Nanosecond, Persistent: true}
	// DRAMSpec: 128 MB of DDR3 behind a 64-bit @ 250 MHz bus = 2 GB/s,
	// shared with the device's regular data-buffering activity.
	DRAMSpec = Spec{Class: DRAM, Capacity: 128 << 20, Bandwidth: 2e9, Latency: 120 * time.Nanosecond, Persistent: true, SharedFrac: 0.5}
	// NVDIMMSpec: host-side battery-backed DIMM used by the Memory
	// baseline; reachable by plain stores, no PCIe hop.
	NVDIMMSpec = Spec{Class: NVDIMM, Capacity: 8 << 30, Bandwidth: 6e9, Latency: 150 * time.Nanosecond, Persistent: true}
)

// Bank is an instantiated memory with its access bus.
type Bank struct {
	env  *sim.Env
	spec Spec
	bus  *sim.Link
}

// NewBank instantiates spec in env. If the spec declares a SharedFrac > 0,
// a background process is started that keeps that fraction of the bus busy,
// modelling the data-buffer traffic the paper's DRAM CMB shares its
// controller with.
func NewBank(env *sim.Env, spec Spec) *Bank {
	b := &Bank{env: env, spec: spec, bus: env.NewLink("pm-"+spec.Class.String(), spec.Bandwidth, spec.Latency)}
	if spec.SharedFrac > 0 {
		frac := spec.SharedFrac
		env.Go("pm-background", func(p *sim.Proc) {
			// Periodically claim bursts sized so that the long-run bus
			// occupancy matches frac: a burst of B bytes every
			// B/(frac*bandwidth) seconds.
			const burst = 4096
			period := time.Duration(float64(burst) / (frac * spec.Bandwidth) * 1e9)
			for {
				b.bus.Send(burst, nil)
				p.Sleep(period)
			}
		})
	}
	return b
}

// Spec returns the bank's configuration.
func (b *Bank) Spec() Spec { return b.spec }

// Capacity returns the bank size in bytes.
func (b *Bank) Capacity() int64 { return b.spec.Capacity }

// Persistent reports whether contents survive power loss.
func (b *Bank) Persistent() bool { return b.spec.Persistent }

// Write occupies the bus for an n-byte store and blocks the caller until
// the data is in the array (serialization + access latency).
func (b *Bank) Write(p *sim.Proc, n int) {
	b.bus.Transfer(p, n)
}

// Read occupies the bus for an n-byte load.
func (b *Bank) Read(p *sim.Proc, n int) {
	b.bus.Transfer(p, n)
}

// WriteAsync stores n bytes without blocking the caller; fn (may be nil)
// runs in scheduler context when the store lands (serialization + access
// latency after the bus frees up).
func (b *Bank) WriteAsync(n int, fn func()) {
	b.bus.Send(n, fn)
}

// SerializationTime returns how long an n-byte access occupies the bus,
// excluding the fixed access latency — the pacing quantum for pipelined
// stores.
func (b *Bank) SerializationTime(n int) time.Duration {
	return time.Duration(float64(n) / b.spec.Bandwidth * 1e9)
}

// Bus exposes the underlying link for utilization stats.
func (b *Bank) Bus() *sim.Link { return b.bus }
