package villars

import (
	"testing"
	"time"

	"xssd/internal/sim"
	"xssd/internal/trace"
)

func TestDeviceTracingRecordsLifecycle(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "traced")
	tr := d.EnableTracing(256)
	payloadLen := d.cfg.Geometry.PageSize - PageHeaderLen
	env.Go("host", func(p *sim.Proc) {
		d.CMB().MemWrite(0, make([]byte, payloadLen))
	})
	env.RunUntil(50 * time.Millisecond)
	if tr.Count(trace.CMBWrite) == 0 {
		t.Fatal("no CMB write events")
	}
	if tr.Count(trace.CMBPersist) == 0 {
		t.Fatal("no persist events")
	}
	if tr.Count(trace.DestagePage) == 0 {
		t.Fatal("no destage events")
	}
	d.InjectPowerLoss()
	if tr.Count(trace.PowerLoss) != 1 {
		t.Fatal("power loss not traced")
	}
	if d.Tracer() != tr {
		t.Fatal("Tracer() accessor wrong")
	}
}

func TestTracingOffByDefault(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "untraced")
	if d.Tracer() != nil {
		t.Fatal("tracer attached by default")
	}
	env.Go("host", func(p *sim.Proc) {
		d.CMB().MemWrite(0, make([]byte, 100)) // must not panic
	})
	env.RunUntil(time.Millisecond)
}
