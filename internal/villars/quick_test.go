package villars

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xssd/internal/fault"
	"xssd/internal/nvme"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/sim"
)

// The multi-queue host interface's property test: for a RANDOM queue
// shape (pair count, in-flight depth, coalescing parameters) and a
// RANDOM fault plan, a fixed async write workload must end with
//
//   - per-queue completion sequence numbers equal to the per-queue
//     completion count (Post stamps 1,2,3,... per CQ, so equality means
//     the sequence was monotone with no lost or duplicated completions);
//   - every submission completed and nothing in flight;
//
// and the whole history — dispatched event count plus the canonical
// metrics snapshot — must be byte-identical when the identical scenario
// runs under sim.Group with 1 and with 8 quantum executors.

// quickQueueShape is one sampled point of the queue-configuration space.
type quickQueueShape struct {
	pairs        int
	depth        int
	coalesceOps  int
	coalesceTime time.Duration
}

func shapeFrom(pb, db, cb uint8) quickQueueShape {
	s := quickQueueShape{pairs: 1 + int(pb)%8, depth: 1 + int(db)%32}
	if cb%3 != 0 { // two thirds of samples coalesce
		s.coalesceOps = 2 + int(cb)%7
		s.coalesceTime = time.Duration(4+int(cb)%13) * time.Microsecond
	}
	return s
}

const (
	quickQueueOps      = 120 // submissions per queue
	quickQueueDeadline = 80 * time.Millisecond
)

// queueHistory runs the canonical workload for one shape under a
// sim.Group with the given worker count and returns (events, snapshot).
// Invariant violations are reported through t.Errorf with the scenario
// attached.
func queueHistory(t *testing.T, seed int64, shape quickQueueShape, plan *fault.Plan, workers int) (int64, []byte) {
	t.Helper()
	g := sim.NewGroup(sim.GroupConfig{Workers: workers, StartInline: true})
	defer g.Close()
	env := g.NewEnv("m0", seed)
	fault.Attach(env, fault.New(env, plan))
	defer fault.Detach(env)

	cfg := testConfig("q")
	cfg.HostQueues = shape.pairs
	cfg.HostQueueDepth = shape.depth
	cfg.CoalesceOps = shape.coalesceOps
	cfg.CoalesceTime = shape.coalesceTime
	d := New(env, cfg, pcie.NewHostMemory(1<<20))
	drv := d.HostDriver()

	// One submitter per queue: a sliding window of depth tokens, sizes
	// cycling 1-4 blocks, each queue on a private wrapped LBA stripe.
	base := d.FTL().LogicalPages() / 2
	stripe := int64(96)
	for q := 0; q < shape.pairs; q++ {
		q := q
		env.Go(fmt.Sprintf("submit-%d", q), func(p *sim.Proc) {
			var window []nvme.Token
			var off int64
			for i := 0; i < quickQueueOps; i++ {
				blocks := 1 + (i+q)%4
				lba := base + int64(q)*stripe + off
				off = (off + int64(blocks)) % (stripe - 4)
				tok := drv.SubmitAsync(p, q, nvme.Command{Opcode: nvme.OpWrite, LBA: lba, Blocks: blocks})
				window = append(window, tok)
				if len(window) >= shape.depth {
					drv.Wait(p, window[0])
					window = window[1:]
				}
			}
			for _, tok := range window {
				drv.Wait(p, tok)
			}
		})
	}
	g.Parallelize()
	g.RunUntil(quickQueueDeadline)

	for q := 0; q < shape.pairs; q++ {
		sub, cmp, seq := drv.Submitted(q), drv.Completed(q), drv.LastSeq(q)
		if sub != quickQueueOps {
			t.Errorf("seed %d shape %+v sw%d queue %d: submitted %d, want %d", seed, shape, workers, q, sub, quickQueueOps)
		}
		if cmp != sub || drv.Inflight(q) != 0 {
			t.Errorf("seed %d shape %+v sw%d queue %d: completed %d of %d, %d in flight (lost completion?)",
				seed, shape, workers, q, cmp, sub, drv.Inflight(q))
		}
		if seq != uint64(cmp) {
			t.Errorf("seed %d shape %+v sw%d queue %d: last CQ seq %d after %d completions (dup or gap)",
				seed, shape, workers, q, seq, cmp)
		}
	}
	return g.Events(), obs.For(env).Snapshot().Encode()
}

// Property: random queue shapes under random fault plans keep the
// completion invariants, and the run's history is bit-identical between
// 1 and 8 simulation workers.
func TestQuickMultiQueueHistoryInvariant(t *testing.T) {
	prop := func(seed int64, pb, db, cb uint8) bool {
		shape := shapeFrom(pb, db, cb)
		// No crash rule: a mid-run power loss voids the every-submission-
		// completes invariant by design (the crash suite covers that path).
		plan := fault.RandomPlan(rand.New(rand.NewSource(seed)), quickQueueDeadline, false, "")
		ev1, snap1 := queueHistory(t, seed, shape, plan, 1)
		ev8, snap8 := queueHistory(t, seed, shape, plan, 8)
		if ev1 != ev8 {
			t.Errorf("seed %d shape %+v: %d events under sw1, %d under sw8 (serial/parallel drift)",
				seed, shape, ev1, ev8)
			return false
		}
		if !bytes.Equal(snap1, snap8) {
			t.Errorf("seed %d shape %+v: metrics snapshots differ between sw1 and sw8", seed, shape)
			return false
		}
		return !t.Failed()
	}
	n := 8
	if testing.Short() {
		n = 3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(1911))}); err != nil {
		t.Fatal(err)
	}
}
