package villars

import (
	"time"

	"xssd/internal/ftl"
	"xssd/internal/obs"
	"xssd/internal/sched"
)

// The typed stats snapshots below are the sanctioned way to read device
// telemetry from outside the package: one Stats() call assembles a plain
// struct of values, so callers never reach into module internals (the old
// Raw() pattern). All values are cumulative since construction unless
// noted; all durations are virtual time.

// CMBStats describes one fast side's intake and ring state.
type CMBStats struct {
	// BytesIn is the payload accepted on the CMB interface.
	BytesIn int64
	// Overruns counts TLPs dropped because the intake queue was full.
	Overruns int64
	// Rejected counts writes dropped for other reasons (power loss, stale
	// offsets).
	Rejected int64
	// QueueUsed is the current intake-queue fill in bytes.
	QueueUsed int
	// Credit is the local persist frontier (the raw credit counter).
	Credit int64
	// Live is the ring data persisted but not yet destaged.
	Live int64
}

// DestageStats describes one fast side's destage pipeline.
type DestageStats struct {
	// Stream is the stream bytes durable on the conventional side.
	Stream int64
	// Pages and PartialPages count written flash pages; FillerBytes is the
	// padding inside the partial ones.
	Pages, PartialPages int64
	FillerBytes         int64
	// Retries counts failed page programs that were retried; Errors counts
	// pages that hit carve or retire errors.
	Retries, Errors int64
	// TailLBA is the ring slot the next page lands in; BaseLBA/LBACount
	// locate the destage ring on the conventional side.
	TailLBA, BaseLBA, LBACount int64
}

// PeerStats is the primary's view of one secondary.
type PeerStats struct {
	ID int
	// Shadow is the last counter value the peer reported; Lag is how far it
	// trails the local persist frontier.
	Shadow, Lag int64
	// Unacked is the number of mirror chunks awaiting shadow coverage.
	Unacked int
}

// TransportStats describes the replication transport.
type TransportStats struct {
	Mode   string
	Scheme string
	// MirroredBytes counts bytes forwarded to peers (per peer);
	// CounterUpdates counts accepted shadow updates (primary role);
	// UpdatesSent counts updates emitted (secondary role).
	MirroredBytes, CounterUpdates, UpdatesSent int64
	// Fault-path counters: see transportModule.FaultStats.
	MirrorDrops, MirrorDelays, RepairResends, UpdatesSuppressed int64
	// Stalled reports whether any peer currently trips the stall detector.
	Stalled bool
	Peers   []PeerStats
}

// SourceStats describes one scheduler traffic class.
type SourceStats struct {
	Ops, Bytes int64
	AvgWait    time.Duration
}

// SchedStats describes the storage-controller scheduler.
type SchedStats struct {
	Policy       string
	Conventional SourceStats
	Destage      SourceStats
	GC           SourceStats
}

// NANDStats describes the flash array.
type NANDStats struct {
	Reads, Programs, Erases int64
	InjectedBadBlocks       int64
}

// FTLStats describes the flash translation layer.
type FTLStats struct {
	ftl.Stats
	FreeBlocks int
}

// VFStats is the typed snapshot of one virtual function.
type VFStats struct {
	Name    string
	CMB     CMBStats
	Destage DestageStats
}

// DeviceStats is the typed snapshot of a whole device.
type DeviceStats struct {
	Name string
	// Now is the virtual time the snapshot was taken.
	Now       time.Duration
	PowerLost bool
	// EffectiveCredit is the replication-aware credit the host sees.
	EffectiveCredit int64

	CMB       CMBStats
	Destage   DestageStats
	Transport TransportStats
	Sched     SchedStats
	NAND      NANDStats
	FTL       FTLStats
	VFs       []VFStats
	// HostQueues is the per-queue view of the multi-queue NVMe interface;
	// empty under the classic single-pair wiring.
	HostQueues []HostQueueStats
}

// HostQueueStats is one NVMe queue pair's counters plus the driver's
// submit→complete latency digest (populated once traffic has used the
// async surface; the digest needs the driver's per-queue instruments,
// which only exist under Config.HostQueues > 0).
type HostQueueStats struct {
	Queue     int
	Submitted int64
	Completed int64
	Inflight  int
	LastSeq   uint64
	SQDepth   int
	CQDepth   int
	Latency   obs.Summary
}

func (fs *fastSide) cmbStats() CMBStats {
	m := fs.cmb
	return CMBStats{
		BytesIn:   m.BytesIn(),
		Overruns:  m.Overruns(),
		Rejected:  m.Rejected(),
		QueueUsed: m.QueueUsed(),
		Credit:    m.ring.Frontier(),
		Live:      m.ring.Live(),
	}
}

func (fs *fastSide) destageStats() DestageStats {
	m := fs.destage
	pages, partial := m.Pages()
	return DestageStats{
		Stream:       m.DestagedStream(),
		Pages:        pages,
		PartialPages: partial,
		FillerBytes:  m.FillerBytes(),
		Retries:      m.Retries(),
		Errors:       m.Errors(),
		TailLBA:      m.tail,
		BaseLBA:      m.baseLBA,
		LBACount:     m.lbaCount,
	}
}

func (t *transportModule) stats() TransportStats {
	drops, delays, resends, suppressed := t.FaultStats()
	s := TransportStats{
		Mode:              t.mode.String(),
		Scheme:            t.scheme.String(),
		MirroredBytes:     t.MirroredBytes(),
		CounterUpdates:    t.CounterUpdates(),
		UpdatesSent:       t.UpdatesSent(),
		MirrorDrops:       drops,
		MirrorDelays:      delays,
		RepairResends:     resends,
		UpdatesSuppressed: suppressed,
		Stalled:           t.stalled(),
	}
	local := t.dev.fs.cmb.ring.Frontier()
	for _, pl := range t.peers {
		s.Peers = append(s.Peers, PeerStats{
			ID:      pl.id,
			Shadow:  pl.shadow,
			Lag:     local - pl.shadow,
			Unacked: len(pl.unacked),
		})
	}
	return s
}

func (d *Device) schedStats() SchedStats {
	src := func(s sched.Source) SourceStats {
		return SourceStats{
			Ops:     d.sch.OpsBySource(s),
			Bytes:   d.sch.BytesBySource(s),
			AvgWait: d.sch.AvgWait(s),
		}
	}
	return SchedStats{
		Policy:       d.sch.Policy().String(),
		Conventional: src(sched.Conventional),
		Destage:      src(sched.Destage),
		GC:           src(sched.GC),
	}
}

// Stats assembles the device's typed telemetry snapshot, including one
// VFStats per virtual function in creation order.
func (d *Device) Stats() DeviceStats {
	reads, programs, erases := d.arr.Stats()
	s := DeviceStats{
		Name:            d.cfg.Name,
		Now:             d.env.Now(),
		PowerLost:       d.powerLost,
		EffectiveCredit: d.EffectiveCredit(),
		CMB:             d.fs.cmbStats(),
		Destage:         d.fs.destageStats(),
		Transport:       d.transport.stats(),
		Sched:           d.schedStats(),
		NAND: NANDStats{
			Reads:             reads,
			Programs:          programs,
			Erases:            erases,
			InjectedBadBlocks: d.arr.InjectedBadBlocks(),
		},
		FTL: FTLStats{Stats: d.ftl.Stats(), FreeBlocks: d.ftl.FreeBlocks()},
	}
	for _, vf := range d.vfs {
		s.VFs = append(s.VFs, vf.Stats())
	}
	if d.qset != nil {
		for i := 0; i < d.qset.Len(); i++ {
			s.HostQueues = append(s.HostQueues, HostQueueStats{
				Queue:     i,
				Submitted: d.driver.Submitted(i),
				Completed: d.driver.Completed(i),
				Inflight:  d.driver.Inflight(i),
				LastSeq:   d.driver.LastSeq(i),
				SQDepth:   d.qset.Pair(i).SQ.Len(),
				CQDepth:   d.qset.Pair(i).CQ.Len(),
				Latency:   d.driver.Latency(i).Summary(),
			})
		}
	}
	return s
}

// Stats assembles the virtual function's typed telemetry snapshot.
func (v *VirtualFunction) Stats() VFStats {
	return VFStats{
		Name:    v.fs.name,
		CMB:     v.fs.cmbStats(),
		Destage: v.fs.destageStats(),
	}
}
