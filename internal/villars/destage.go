package villars

import (
	"encoding/binary"
	"time"

	"xssd/internal/fault"
	"xssd/internal/obs"
	"xssd/internal/sched"
	"xssd/internal/sim"
	"xssd/internal/trace"
)

// Destaged-page on-flash format: every page the Destage module writes to
// the conventional side carries a small header so that the host's
// x_pread() and post-crash recovery can parse the ring without any
// side-channel metadata.
const (
	pageMagic     = 0x58534C47 // "XSLG"
	PageHeaderLen = 16         // magic(4) | stream offset(8) | payload len(4)
)

// EncodePageHeader writes the destage page header into buf.
func EncodePageHeader(buf []byte, streamOff int64, payloadLen int) {
	binary.LittleEndian.PutUint32(buf[0:4], pageMagic)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(streamOff))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(payloadLen))
}

// DecodePageHeader parses a destage page header; ok is false when the page
// is not a destage page (wrong magic).
func DecodePageHeader(buf []byte) (streamOff int64, payloadLen int, ok bool) {
	if len(buf) < PageHeaderLen || binary.LittleEndian.Uint32(buf[0:4]) != pageMagic {
		return 0, 0, false
	}
	return int64(binary.LittleEndian.Uint64(buf[4:12])), int(binary.LittleEndian.Uint32(buf[12:16])), true
}

// destageModule moves data from the fast side's PM ring onto a circular
// range of logical blocks on the conventional side (paper §4.3). It
// bundles ring-head data into flash pages, optionally padding with filler
// to honour a latency bound, and keeps up to one page per die in flight so
// the destage stream can use the array's full program bandwidth. The PM
// ring is released strictly in order as pages land.
type destageModule struct {
	dev *Device
	fs  *fastSide

	baseLBA  int64
	lbaCount int64
	tail     int64 // next ring slot (monotone; LBA = base + tail%count)

	destagedStream int64 // stream bytes durable on the conventional side

	// pipeline state
	carved int64 // stream offset carved into in-flight pages
	//xssd:pool retain
	inflight    []*destagePage
	inflightPos int // inflight[:inflightPos] already retired

	// recycled buffers: flash-page payloads and pipeline entries. A page
	// buffer is free once its program completed (nand copies the payload
	// at program time); an entry once it retired.
	//xssd:pool put
	pageBufs [][]byte
	//xssd:pool put
	freeEntries []*destagePage
	procName    string // per-page worker name, built once

	kick     *sim.Signal
	Advanced *sim.Signal // broadcast after every completed page

	// metrics (<fs>/destage/...)
	mPages        *obs.Counter
	mPartialPages *obs.Counter
	mFillerBytes  *obs.Counter
	mErrors       *obs.Counter
	mRetries      *obs.Counter
	mPageLat      *obs.Histogram // carve -> in-order retire, ns
}

// Destage write-failure retry policy: a failed page program (injected or
// surfacing past the FTL's own bad-block handling) is retried with a
// short backoff rather than dropped — releasing the ring without the
// bytes on flash would silently hole the gap-free prefix guarantee.
const (
	destageMaxRetries   = 8
	destageRetryBackoff = 50 * time.Microsecond
)

type destagePage struct {
	n        int64 // payload bytes
	done     bool
	err      error
	carvedAt time.Duration
}

func newDestageModule(d *Device, fs *fastSide, baseLBA, lbaCount int64) *destageModule {
	m := &destageModule{
		dev:      d,
		fs:       fs,
		baseLBA:  baseLBA,
		lbaCount: lbaCount,
		kick:     d.env.NewSignal(),
		Advanced: d.env.NewSignal(),
		procName: "destage-page-" + fs.name,
	}
	sc := obs.For(d.env).Scope(fs.name + "/destage")
	m.mPages = sc.Counter("pages")
	m.mPartialPages = sc.Counter("partial_pages")
	m.mFillerBytes = sc.Counter("filler_bytes")
	m.mErrors = sc.Counter("errors")
	m.mRetries = sc.Counter("retries")
	m.mPageLat = sc.Histogram("page_ns")
	sc.GaugeFunc("stream", func() int64 { return m.destagedStream })
	sc.GaugeFunc("inflight", func() int64 { return int64(len(m.inflight) - m.inflightPos) })
	sc.GaugeFunc("tail_lba", func() int64 { return m.tail })
	d.env.Go("destage-"+fs.name, m.loop)
	return m
}

// DestagedStream returns the number of stream bytes destaged so far.
func (m *destageModule) DestagedStream() int64 { return m.destagedStream }

// Retries returns how many failed page writes were retried.
func (m *destageModule) Retries() int64 { return m.mRetries.Value() }

// Pages returns how many flash pages the module has written, and how many
// of those were padded partial pages.
func (m *destageModule) Pages() (total, partial int64) {
	return m.mPages.Value(), m.mPartialPages.Value()
}

// FillerBytes returns the padding written in partial pages.
func (m *destageModule) FillerBytes() int64 { return m.mFillerBytes.Value() }

// Errors returns how many pages hit carve or retire errors.
func (m *destageModule) Errors() int64 { return m.mErrors.Value() }

// TailLBA returns the ring slot the next page will be written to.
func (m *destageModule) TailLBA() int64 { return m.tail }

// LBARing returns the destage ring's base LBA and length in LBAs.
func (m *destageModule) LBARing() (base, count int64) { return m.baseLBA, m.lbaCount }

// maxPayload returns the data bytes that fit in one destage page.
func (m *destageModule) maxPayload() int { return m.dev.cfg.Geometry.PageSize - PageHeaderLen }

// maxInflight bounds the destage pipeline depth: one page per die keeps
// every flash unit busy without flooding the scheduler queues.
func (m *destageModule) maxInflight() int { return m.dev.cfg.Geometry.Dies() }

func (m *destageModule) loop(p *sim.Proc) {
	cmb := m.fs.cmb
	for {
		m.retire(cmb)
		if len(m.inflight)-m.inflightPos >= m.maxInflight() {
			p.Wait(m.kick)
			continue
		}
		eligible := cmb.destageFloor() - m.carved
		if eligible <= 0 {
			p.Wait(m.kick)
			continue
		}
		full := eligible >= int64(m.maxPayload())
		age := p.Now() - cmb.headArrived
		urgent := m.dev.powerLost || age >= m.fs.latencyBound
		if !full && !urgent {
			// Not enough for a full page and not old enough for a padded
			// one: wait for more data, with a timer so the latency bound
			// still fires on a quiet ring.
			m.dev.env.After(m.fs.latencyBound-age, m.kick.Broadcast)
			p.Wait(m.kick)
			continue
		}
		n := int64(m.maxPayload())
		if n > eligible {
			n = eligible
		}
		m.carveOne(p, n)
	}
}

// carveOne bundles n bytes at the carve point into one flash page and
// issues its program; completion is retired in order by retire().
//
//xssd:hotpath
func (m *destageModule) carveOne(p *sim.Proc, n int64) {
	cmb := m.fs.cmb
	page := m.getPage()
	EncodePageHeader(page, m.carved, int(n))
	if err := cmb.ring.ReadInto(page[PageHeaderLen:PageHeaderLen+n], m.carved); err != nil {
		m.mErrors.Inc()
		m.pageBufs = append(m.pageBufs, page)
		return
	}
	// Reading the backing memory costs its bus (the in-device path is two
	// data movements total; paper §5.1 "Destaging Efficiency").
	cmb.bank.Read(p, int(n))

	if pad := int64(m.maxPayload()) - n; pad > 0 {
		for i := PageHeaderLen + n; i < int64(len(page)); i++ {
			page[i] = 0
		}
		m.mFillerBytes.Add(pad)
		m.mPartialPages.Inc()
	}

	entry := m.getEntry()
	entry.n = n
	entry.carvedAt = m.dev.env.Now()
	if m.inflightPos > 0 && m.inflightPos == len(m.inflight) {
		m.inflight = m.inflight[:0]
		m.inflightPos = 0
	}
	m.inflight = append(m.inflight, entry)
	m.carved += n
	lba := m.baseLBA + m.tail%m.lbaCount
	m.tail++
	//xssd:ignore hotpathalloc the per-page worker closure is the pipeline's unit of work
	m.dev.env.Go(m.procName, func(w *sim.Proc) {
		for attempt := 0; ; attempt++ {
			if d := fault.CheckEnv(m.dev.env, fault.DestageWrite, m.fs.name, 1); d.Fail() {
				entry.err = fault.ErrInjected
			} else {
				if d.Act == fault.ActionDelay {
					w.Sleep(d.Dur)
				}
				entry.err = m.dev.ftl.Write(w, lba, page, sched.Destage)
			}
			if entry.err == nil || attempt >= destageMaxRetries {
				break
			}
			m.mRetries.Inc()
			w.Sleep(destageRetryBackoff)
		}
		// The array copied the payload when the program was issued; the
		// page buffer can serve the next carve.
		m.pageBufs = append(m.pageBufs, page)
		entry.done = true
		m.kick.Broadcast()
	})
}

// getPage returns a pooled page-sized buffer.
//
//xssd:pool get
func (m *destageModule) getPage() []byte {
	if len(m.pageBufs) == 0 {
		return make([]byte, m.dev.cfg.Geometry.PageSize)
	}
	b := m.pageBufs[len(m.pageBufs)-1]
	m.pageBufs = m.pageBufs[:len(m.pageBufs)-1]
	return b
}

// getEntry returns a recycled pipeline entry.
//
//xssd:pool get
func (m *destageModule) getEntry() *destagePage {
	if len(m.freeEntries) == 0 {
		return &destagePage{}
	}
	e := m.freeEntries[len(m.freeEntries)-1]
	m.freeEntries = m.freeEntries[:len(m.freeEntries)-1]
	*e = destagePage{}
	return e
}

// retire releases completed pages from the head of the pipeline, in order,
// freeing the PM ring and advancing the destaged-stream counter.
//
//xssd:hotpath
func (m *destageModule) retire(cmb *cmbModule) {
	for m.inflightPos < len(m.inflight) && m.inflight[m.inflightPos].done {
		e := m.inflight[m.inflightPos]
		m.inflight[m.inflightPos] = nil
		m.inflightPos++
		if e.err != nil {
			// The page proc already retried with backoff; a persistent
			// failure surfacing here is fatal for this page. Drop it but
			// keep accounting sane: the ring is still released so the
			// stream keeps moving.
			m.mErrors.Inc()
		}
		if err := cmb.ring.Release(e.n); err != nil {
			m.mErrors.Inc()
			m.freeEntries = append(m.freeEntries, e)
			continue
		}
		m.destagedStream = cmb.ring.Head()
		cmb.headArrived = m.dev.env.Now()
		m.dev.tracer.Record(trace.DestagePage, m.fs.name, m.destagedStream, e.n)
		m.mPageLat.Since(e.carvedAt)
		m.Advanced.Broadcast()
		m.mPages.Inc()
		// Recycle the entry only after its last field read: bufownership
		// treats the free-list append as the end of this side's lease.
		m.freeEntries = append(m.freeEntries, e)
	}
}
