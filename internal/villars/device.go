// Package villars implements the Villars device, the reference design of
// the X-SSD architecture (paper §4). A Device couples:
//
//   - a conventional side: a full NVMe block SSD (HIC → FTL → scheduler →
//     NAND array), reusing the stock components almost unmodified, and
//   - a fast side: the CMB module (§4.1) exposing a PM-backed append ring
//     through a byte-addressable window, the Destage module (§4.3) moving
//     that ring onto a circular LBA range of the conventional side, and the
//     Transport module (§4.2) mirroring the write stream to peer devices
//     over NTB and collecting shadow counters.
//
// The fast side is controlled through vendor-specific NVMe admin commands
// and a small MMIO register file (layout in internal/core).
package villars

import (
	"errors"
	"fmt"
	"time"

	"xssd/internal/core"
	"xssd/internal/fault"
	"xssd/internal/ftl"
	"xssd/internal/hic"
	"xssd/internal/nand"
	"xssd/internal/nvme"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sched"
	"xssd/internal/sim"
	"xssd/internal/trace"
)

// ErrFastSideBusy reports a TruncateToCredit on a fast side that still
// has intake or in-flight data: the frontier is not yet authoritative.
// Match with errors.Is.
var ErrFastSideBusy = errors.New("villars: fast side not idle")

// CMBWindowSize is the virtual size of the byte-addressable window: the
// host addresses the fast side by stream offset and the device folds the
// offset onto its physical ring, so the window is made large enough to
// never wrap in practice.
const CMBWindowSize = int64(1) << 40

// Config assembles a Device.
type Config struct {
	// Name labels the device in traces.
	Name string
	// Backing selects the CMB backing memory (pm.SRAMSpec / pm.DRAMSpec).
	Backing pm.Spec
	// CMBSize is the fast-side ring capacity; 0 means the backing size.
	CMBSize int64
	// QueueSize is the CMB intake queue; 0 means core.DefaultQueueSize.
	QueueSize int
	// Geometry shapes the NAND array (channels, dies, blocks, pages).
	Geometry nand.Geometry
	// Timing sets the NAND operation latencies (tPROG, tR, tBERS).
	Timing nand.Timing
	// FTL tunes the flash translation layer.
	FTL ftl.Config
	// Policy is the initial destage scheduling policy.
	Policy sched.Policy
	// DestageLBAs is the length of the destage ring on the conventional
	// side, in logical blocks; 0 means 1/4 of the logical capacity.
	DestageLBAs int64
	// DestageLatencyBound destages a partial page when data has waited
	// this long; 0 means core.DefaultDestageLatencyBound.
	DestageLatencyBound time.Duration
	// PCIeLanes is the host link width; 0 means ×4 (with PCIeGen's zero
	// value this is the paper's constrained ×4 Gen2 configuration).
	PCIeLanes int
	// PCIeGen is the host link generation; the zero value means Gen2.
	PCIeGen pcie.Generation
	// LinkLatency is the host-device propagation delay.
	LinkLatency time.Duration
	// SupercapBudget is how long the device can run after power loss to
	// drain the fast side; 0 means 100 ms (ample).
	SupercapBudget time.Duration
	// ShadowUpdatePeriod is the secondary's counter-report interval;
	// 0 means 0.4 µs (the paper's fastest setting).
	ShadowUpdatePeriod time.Duration
	// StallTimeout flags a replica as stalled when its shadow counter has
	// not moved for this long while data is outstanding; 0 means 10 ms.
	StallTimeout time.Duration
	// RepairTimeout is how long a mirrored chunk may go uncovered by a
	// peer's shadow counter before the transport resends it (recovery
	// from lost or delayed mirror traffic); 0 means 5 ms.
	RepairTimeout time.Duration
	// HostQueues enables the multi-queue NVMe host interface: the number
	// of per-core SQ/CQ pairs. 0 keeps the classic single queue pair with
	// no coalescing and no per-queue telemetry — byte-identical to the
	// historical wiring. Explicitly setting 1 still opts into the async
	// driver surface and per-queue instruments.
	HostQueues int
	// HostQueueDepth bounds async in-flight commands per queue;
	// 0 means 32. Only meaningful with HostQueues > 0.
	HostQueueDepth int
	// CoalesceOps raises a CQ interrupt only after this many completions
	// (<= 1: every completion). Only meaningful with HostQueues > 0.
	CoalesceOps int
	// CoalesceTime bounds how long a completion may wait for its
	// coalesced interrupt; 0 with CoalesceOps > 1 means 8 µs (a final
	// sub-batch must never strand). Only meaningful with HostQueues > 0.
	CoalesceTime time.Duration
}

// DefaultConfig returns the paper's experimental setup: SRAM-backed CMB,
// ×4 Gen2 host link, Cosmos+-class NAND.
func DefaultConfig(name string) Config {
	return Config{
		Name:     name,
		Backing:  pm.SRAMSpec,
		Geometry: nand.DefaultGeometry,
		Timing:   nand.DefaultTiming,
		FTL:      ftl.DefaultConfig,
		Policy:   sched.Neutral,
	}
}

func (c *Config) fillDefaults() {
	if c.CMBSize == 0 {
		c.CMBSize = c.Backing.Capacity
	}
	if c.QueueSize == 0 {
		c.QueueSize = core.DefaultQueueSize
	}
	if c.Geometry.Channels == 0 {
		c.Geometry = nand.DefaultGeometry
	}
	if c.Timing.TProg == 0 {
		c.Timing = nand.DefaultTiming
	}
	if c.FTL.OverProvision == 0 {
		c.FTL = ftl.DefaultConfig
	}
	if c.DestageLatencyBound == 0 {
		c.DestageLatencyBound = core.DefaultDestageLatencyBound
	}
	if c.PCIeLanes == 0 {
		c.PCIeLanes = 4
	}
	if c.PCIeGen == 0 {
		c.PCIeGen = pcie.Gen2
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 300 * time.Nanosecond
	}
	if c.SupercapBudget == 0 {
		c.SupercapBudget = 100 * time.Millisecond
	}
	if c.ShadowUpdatePeriod == 0 {
		c.ShadowUpdatePeriod = 400 * time.Nanosecond
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 10 * time.Millisecond
	}
	if c.RepairTimeout == 0 {
		c.RepairTimeout = 5 * time.Millisecond
	}
	if c.HostQueues > 0 {
		if c.HostQueueDepth == 0 {
			c.HostQueueDepth = 32
		}
		if c.CoalesceOps > 1 && c.CoalesceTime == 0 {
			c.CoalesceTime = 8 * time.Microsecond
		}
	}
}

// Device is one Villars X-SSD. Every piece of state reachable from a
// Device belongs to the sim.Env it was created on; a simulated process
// must not touch two devices' state unless it runs inside an
// //xssd:conduit (envaffinity enforces this, clearing the way for the
// parallel engine to run each Env on its own thread).
//
//xssd:envroot
type Device struct {
	env *sim.Env
	cfg Config

	// conventional side
	link   *sim.Link
	arr    *nand.Array
	sch    *sched.Scheduler
	ftl    *ftl.FTL
	qp     *nvme.QueuePair
	qset   *nvme.QueueSet // nil under the classic single-pair wiring
	ctrl   *hic.Controller
	host   *pcie.HostMemory
	driver *nvme.Driver

	// fast side
	bank      *pcie.Region // CMB data window (byte-addressable)
	ctrlRgn   *pcie.Region // control register window
	pmBank    *pm.Bank     // shared CMB backing memory
	fs        *fastSide    // the primary fast side
	transport *transportModule

	// virtual functions (paper §7.2): additional, independent fast sides
	// carved out of the same backing memory.
	vfs       []*VirtualFunction
	vfLBAUsed int64 // next free LBA above the primary destage ring

	tracer    *trace.Tracer
	powerLost bool
}

// fastSide groups one independent CMB region: its intake queue, PM ring,
// credit counter, and destage ring. The device has one primary fast side;
// VirtualFunctions add more (paper §7.2: "an SR-IOV implementation could
// simply segment the CMB across smaller, independent regions").
type fastSide struct {
	name         string
	primary      bool
	queueSize    int
	cmbSize      int64
	latencyBound time.Duration
	cmb          *cmbModule
	destage      *destageModule
}

// New builds a device, wires its modules, and starts their processes.
// host is the host-memory the conventional side DMAs against.
func New(env *sim.Env, cfg Config, host *pcie.HostMemory) *Device {
	cfg.fillDefaults()
	d := &Device{env: env, cfg: cfg, host: host}
	bw := float64(cfg.PCIeLanes) * cfg.PCIeGen.LaneBandwidth()
	d.link = env.NewLink("pcie-"+cfg.Name, bw, cfg.LinkLatency)
	d.arr = nand.New(env, cfg.Geometry, cfg.Timing)
	d.sch = sched.New(env, d.arr, cfg.Policy)
	d.ftl = ftl.New(env, d.arr, d.sch, cfg.FTL)
	if cfg.HostQueues > 0 {
		d.qset = nvme.NewQueueSet(env, cfg.HostQueues,
			nvme.Coalesce{Ops: cfg.CoalesceOps, Time: cfg.CoalesceTime})
		d.qp = d.qset.Pair(0)
		d.ctrl = hic.NewMulti(env, d.qset, d.link, host, d.ftl, d, hic.DefaultConfig)
		d.driver = nvme.NewMultiDriver(env, d.qset, cfg.HostQueueDepth)
	} else {
		d.qp = nvme.NewQueuePair(env)
		d.ctrl = hic.New(env, d.qp, d.link, host, d.ftl, d, hic.DefaultConfig)
		d.driver = nvme.NewDriver(env, d.qp)
	}

	if cfg.DestageLBAs == 0 {
		cfg.DestageLBAs = d.ftl.LogicalPages() / 4
		d.cfg.DestageLBAs = cfg.DestageLBAs
	}
	d.pmBank = pm.NewBank(env, cfg.Backing)
	d.fs = &fastSide{
		name:         cfg.Name,
		primary:      true,
		queueSize:    cfg.QueueSize,
		cmbSize:      cfg.CMBSize,
		latencyBound: cfg.DestageLatencyBound,
	}
	d.fs.cmb = newCMBModule(d, d.fs, d.pmBank)
	d.fs.destage = newDestageModule(d, d.fs, 0, cfg.DestageLBAs)
	d.vfLBAUsed = cfg.DestageLBAs
	d.transport = newTransportModule(d)

	d.bank = pcie.NewRegion(env, d.link, d.fs.cmb, CMBWindowSize)
	d.ctrlRgn = pcie.NewRegion(env, d.link, controlTarget{d.fs, d}, core.ControlSize)

	// Always-on telemetry: the conventional-side components register their
	// series under the device name, and the device itself exports its
	// effective credit, PCIe link counters and power state.
	reg := obs.For(env)
	d.sch.Observe(reg.Scope(cfg.Name + "/sched"))
	d.arr.Observe(reg.Scope(cfg.Name + "/nand"))
	d.ftl.Observe(reg.Scope(cfg.Name + "/ftl"))
	dsc := reg.Scope(cfg.Name)
	dsc.GaugeFunc("credit_effective", d.EffectiveCredit)
	dsc.GaugeFunc("status", d.statusRegister)
	dsc.GaugeFunc("pcie/bytes", func() int64 { b, _, _ := d.link.Stats(); return b })
	dsc.GaugeFunc("pcie/transfers", func() int64 { _, _, x := d.link.Stats(); return x })
	if d.qset != nil {
		// Per-queue depth gauges and submit→complete histograms exist only
		// under the explicit multi-queue wiring, keeping classic-config
		// snapshots byte-identical to the single-queue era.
		d.driver.Observe(dsc.Sub("nvme"))
	}

	// Fault plan: exact-time power-loss rules for this device fire as
	// scheduled events (byte-counted rules fire from the CMB hook). The
	// injector must be attached to env before the device is built.
	fault.For(env).OnTime(fault.DevicePower, cfg.Name, d.InjectPowerLoss)
	return d
}

// VirtualFunction is an independent fast side exported by the same device
// (paper §7.2): its own CMB window, credit counter, and destage ring, so
// several databases (or log-writer threads needing private counters,
// §7.1) can share one X-SSD without sharing a flow-control domain.
type VirtualFunction struct {
	dev     *Device
	fs      *fastSide
	dataRgn *pcie.Region
	ctrlRgn *pcie.Region
}

// CreateVF carves a new virtual fast side out of the device: cmbSize
// bytes of ring over the shared backing, its own intake queue, and
// destageLBAs blocks of destage ring placed after all existing rings.
func (d *Device) CreateVF(name string, cmbSize int64, queueSize int, destageLBAs int64) (*VirtualFunction, error) {
	if cmbSize <= 0 || queueSize <= 0 || destageLBAs <= 0 {
		return nil, fmt.Errorf("villars: VF %q: sizes must be positive", name)
	}
	if d.vfLBAUsed+destageLBAs > d.ftl.LogicalPages() {
		return nil, fmt.Errorf("villars: VF %q: no LBA space for a %d-block destage ring", name, destageLBAs)
	}
	fs := &fastSide{
		name:         d.cfg.Name + "/" + name,
		queueSize:    queueSize,
		cmbSize:      cmbSize,
		latencyBound: d.cfg.DestageLatencyBound,
	}
	fs.cmb = newCMBModule(d, fs, d.pmBank)
	fs.destage = newDestageModule(d, fs, d.vfLBAUsed, destageLBAs)
	d.vfLBAUsed += destageLBAs
	vf := &VirtualFunction{
		dev:     d,
		fs:      fs,
		dataRgn: pcie.NewRegion(d.env, d.link, fs.cmb, CMBWindowSize),
		ctrlRgn: pcie.NewRegion(d.env, d.link, controlTarget{fs, d}, core.ControlSize),
	}
	d.vfs = append(d.vfs, vf)
	return vf, nil
}

// Name returns the VF's qualified name.
func (v *VirtualFunction) Name() string { return v.fs.name }

// DataRegion returns the VF's byte-addressable CMB window.
func (v *VirtualFunction) DataRegion() *pcie.Region { return v.dataRgn }

// ControlRegion returns the VF's register file.
func (v *VirtualFunction) ControlRegion() *pcie.Region { return v.ctrlRgn }

// HostDriver returns the shared NVMe driver of the underlying device.
func (v *VirtualFunction) HostDriver() *nvme.Driver { return v.dev.HostDriver() }

// BlockSize returns the conventional side's logical block size.
func (v *VirtualFunction) BlockSize() int { return v.dev.BlockSize() }

// PowerLost reports the underlying device's power state.
func (v *VirtualFunction) PowerLost() bool { return v.dev.PowerLost() }

// CMB exposes the VF's fast-side module.
func (v *VirtualFunction) CMB() *cmbModule { return v.fs.cmb }

// Destage exposes the VF's destage module.
func (v *VirtualFunction) Destage() *destageModule { return v.fs.destage }

// Env returns the simulation environment.
func (d *Device) Env() *sim.Env { return d.env }

// Name returns the configured device name.
func (d *Device) Name() string { return d.cfg.Name }

// Link returns the host↔device PCIe link.
func (d *Device) Link() *sim.Link { return d.link }

// DataRegion returns the byte-addressable CMB window.
func (d *Device) DataRegion() *pcie.Region { return d.bank }

// ControlRegion returns the MMIO register file.
func (d *Device) ControlRegion() *pcie.Region { return d.ctrlRgn }

// Queues returns the first NVMe queue pair of the conventional side.
func (d *Device) Queues() *nvme.QueuePair { return d.qp }

// QueueSet returns the multi-queue host interface, nil under the classic
// single-pair wiring (Config.HostQueues == 0).
func (d *Device) QueueSet() *nvme.QueueSet { return d.qset }

// HostDriver returns the shared host-side NVMe driver bound to the
// device's queue pair. All host contexts must use this instance: a queue
// pair has exactly one interrupt consumer.
func (d *Device) HostDriver() *nvme.Driver { return d.driver }

// FTL exposes the flash translation layer (used in tests and recovery
// inspection).
func (d *Device) FTL() *ftl.FTL { return d.ftl }

// Array exposes the NAND array (used for fault injection in tests).
func (d *Device) Array() *nand.Array { return d.arr }

// Scheduler exposes the storage-controller scheduler.
func (d *Device) Scheduler() *sched.Scheduler { return d.sch }

// BlockSize returns the logical block size of the conventional side.
func (d *Device) BlockSize() int { return d.ctrl.BlockSize() }

// CMB returns the primary fast-side module (tests and the facade use its
// counters and signals).
func (d *Device) CMB() *cmbModule { return d.fs.cmb }

// Destage returns the primary fast side's destage module.
func (d *Device) Destage() *destageModule { return d.fs.destage }

// Transport returns the transport module.
func (d *Device) Transport() *transportModule { return d.transport }

// HostMemory returns the host DMA memory the conventional side reads
// commands' payloads from and writes completions' data into.
func (d *Device) HostMemory() *pcie.HostMemory { return d.host }

// ControllerStats returns the host-interface controller's cumulative
// command counts (reads, writes, flushes, admins, errors). The error
// count includes background cache writes the controller dropped after
// acknowledging the command — durability protocols must check its delta
// across a flush.
func (d *Device) ControllerStats() (reads, writes, flushes, admins, errors int64) {
	return d.ctrl.Stats()
}

// AllocLBARange reserves count conventional-side blocks above every
// destage ring (and any earlier reservation) and returns the first LBA.
// The range is the caller's to read and write through the normal NVMe
// path — the paged table store places its page slots here.
func (d *Device) AllocLBARange(count int64) (int64, error) {
	if count <= 0 {
		return 0, fmt.Errorf("villars: LBA range: count %d must be positive", count)
	}
	if d.vfLBAUsed+count > d.ftl.LogicalPages() {
		return 0, fmt.Errorf("villars: LBA range: %d blocks requested, %d free above LBA %d",
			count, d.ftl.LogicalPages()-d.vfLBAUsed, d.vfLBAUsed)
	}
	base := d.vfLBAUsed
	d.vfLBAUsed += count
	return base, nil
}

// controlTarget adapts one fast side's register file to pcie.Target.
type controlTarget struct {
	fs *fastSide
	d  *Device
}

// MemWrite ignores stores: the register file is read-only from the host.
func (c controlTarget) MemWrite(off int64, data []byte) {}

// MemRead serves register loads.
func (c controlTarget) MemRead(off int64, n int) []byte {
	v := c.d.readRegister(c.fs, off)
	out := make([]byte, n)
	for i := 0; i < n && i < 8; i++ {
		out[i] = byte(v >> (8 * i))
	}
	return out
}

// readRegister returns the 64-bit value of the register at off for one
// fast side (the primary's credit is replication-aware; VFs are local).
func (d *Device) readRegister(fs *fastSide, off int64) int64 {
	switch off {
	case core.RegCredit:
		if fs.primary {
			return d.EffectiveCredit()
		}
		return fs.cappedCredit()
	case core.RegLocalCredit:
		return fs.cmb.ring.Frontier()
	case core.RegQueueSize:
		return int64(fs.queueSize)
	case core.RegStatus:
		return d.statusRegister()
	case core.RegDestagedStream:
		return fs.destage.destagedStream
	case core.RegDestageBaseLBA:
		return fs.destage.baseLBA
	case core.RegDestageLBACount:
		return fs.destage.lbaCount
	case core.RegDestageTailLBA:
		return fs.destage.tail
	}
	return 0
}

// cappedCredit limits the reported credit so a protocol-abiding host can
// never overwrite undestaged ring data (see Device.EffectiveCredit).
func (fs *fastSide) cappedCredit() int64 {
	local := fs.cmb.ring.Frontier()
	if lim := fs.cmb.ring.Head() + fs.cmbSize - int64(fs.queueSize); local > lim {
		local = lim
	}
	return local
}

// EffectiveCredit is the credit counter value the host sees. It combines
// the local persist frontier with the replication scheme (paper §4.2),
// capped so that a host honouring the flow-control protocol (at most
// QueueSize bytes beyond the last credit read) can never overwrite
// not-yet-destaged ring data: credit may run at most
// capacity−queueSize ahead of the destage head.
func (d *Device) EffectiveCredit() int64 {
	return d.transport.effectiveCredit(d.fs.cappedCredit())
}

func (d *Device) statusRegister() int64 {
	var s int64
	if d.transport.mode != core.Standalone {
		s |= core.StatusTransportUp
	}
	if d.transport.stalled() {
		s |= core.StatusReplicaStalled
	}
	if d.powerLost {
		s |= core.StatusPowerLoss
	}
	if d.transport.ShadowFrozen() {
		s |= core.StatusShadowFrozen
	}
	return s
}

// FastSideIdle reports whether the primary fast side has fully retired
// its intake: nothing queued and nothing in flight on the backing bus.
// Only then does the ring's frontier reflect every byte the device has
// accepted — the precondition for TruncateToCredit.
func (d *Device) FastSideIdle() bool {
	return d.fs.cmb.queueUsed == 0 && d.fs.cmb.persistPos == len(d.fs.cmb.persistq)
}

// TruncateToCredit drops every fast-side byte beyond the contiguous
// persisted prefix and returns the resulting frontier — the promotion
// step of a failover (paper §4.2: the shadow counter "tells the
// secondary the persisted prefix it may serve from"). The fast side must
// be idle (FastSideIdle); data sitting beyond a gap is discarded exactly
// as the power-loss crash protocol would.
func (d *Device) TruncateToCredit() (int64, error) {
	if !d.FastSideIdle() {
		return 0, fmt.Errorf("%w: %s", ErrFastSideBusy, d.cfg.Name)
	}
	d.fs.cmb.ring.DiscardGaps()
	return d.fs.cmb.ring.Frontier(), nil
}

// Admin implements hic.AdminHandler: the vendor-specific command set.
func (d *Device) Admin(p *sim.Proc, cmd nvme.Command) nvme.Completion {
	d.tracer.Record(trace.AdminCommand, d.cfg.Name, int64(cmd.Opcode), cmd.CDW)
	switch cmd.Opcode {
	case nvme.OpXSetTransportMode:
		mode := core.TransportMode(cmd.CDW)
		if mode < core.Standalone || mode > core.Secondary {
			return nvme.Completion{Status: nvme.StatusInvalid}
		}
		d.transport.setMode(mode)
		return nvme.Completion{Status: nvme.StatusSuccess}
	case nvme.OpXSetDestagePolicy:
		pol := sched.Policy(cmd.CDW)
		if pol < sched.Neutral || pol > sched.ConventionalPriority {
			return nvme.Completion{Status: nvme.StatusInvalid}
		}
		d.sch.SetPolicy(pol)
		return nvme.Completion{Status: nvme.StatusSuccess}
	case nvme.OpXConfigureRing:
		base := cmd.CDW >> 32
		count := cmd.CDW & 0xFFFFFFFF
		if count <= 0 || base+count > d.ftl.LogicalPages() {
			return nvme.Completion{Status: nvme.StatusInvalid}
		}
		if d.fs.cmb.ring.Live() > 0 || d.fs.destage.destagedStream > 0 {
			// Reconfiguring a live ring would orphan data.
			return nvme.Completion{Status: nvme.StatusError}
		}
		d.fs.destage.baseLBA, d.fs.destage.lbaCount = base, count
		return nvme.Completion{Status: nvme.StatusSuccess}
	case nvme.OpXQueryStatus:
		return nvme.Completion{Status: nvme.StatusSuccess, Value: d.statusRegister()}
	case nvme.OpXAlloc:
		a, err := d.fs.cmb.Alloc(int(cmd.CDW))
		if err != nil {
			return nvme.Completion{Status: nvme.StatusError}
		}
		return nvme.Completion{Status: nvme.StatusSuccess, Value: a.Start}
	case nvme.OpXFree:
		if !d.fs.cmb.FreeByStart(cmd.CDW) {
			return nvme.Completion{Status: nvme.StatusInvalid}
		}
		return nvme.Completion{Status: nvme.StatusSuccess}
	default:
		return nvme.Completion{Status: nvme.StatusInvalid}
	}
}

// EnableTracing attaches an event tracer retaining the last capacity
// events; returns it for inspection. Call before driving traffic.
func (d *Device) EnableTracing(capacity int) *trace.Tracer {
	d.tracer = trace.New(capacity, func() time.Duration { return d.env.Now() })
	return d.tracer
}

// Tracer returns the attached tracer (nil when tracing is off).
func (d *Device) Tracer() *trace.Tracer { return d.tracer }

// InjectPowerLoss simulates a sudden power interruption (paper §4.1 crash
// protocol): the device stops accepting fast-side writes and, on
// supercapacitor energy, destages the full contiguous prefix of the CMB
// ring. Data sitting beyond a gap is discarded.
func (d *Device) InjectPowerLoss() {
	if d.powerLost {
		return
	}
	d.powerLost = true
	d.tracer.Record(trace.PowerLoss, d.cfg.Name, 0, 0)
	for _, fs := range d.fastSides() {
		fs.cmb.ring.DiscardGaps()
		fs.cmb.arrived.Broadcast() // wake the drain so it can observe the flag
		fs.destage.kick.Broadcast()
	}
	deadline := d.env.Now() + d.cfg.SupercapBudget
	d.env.At(deadline, func() {
		// Energy exhausted: whatever remains undrained is lost. With the
		// default budget the rings are long drained by now.
		for _, fs := range d.fastSides() {
			fs.cmb.supercapDead = true
		}
	})
}

// fastSides returns the primary fast side plus every virtual function's.
func (d *Device) fastSides() []*fastSide {
	out := []*fastSide{d.fs}
	for _, vf := range d.vfs {
		out = append(out, vf.fs)
	}
	return out
}

// PowerLost reports whether the device has suffered a power loss.
func (d *Device) PowerLost() bool { return d.powerLost }

// Drained reports whether the crash protocol has finished flushing every
// fast side after a power loss.
func (d *Device) Drained() bool {
	if !d.powerLost {
		return false
	}
	for _, fs := range d.fastSides() {
		if fs.cmb.queueUsed == 0 && fs.cmb.ring.Live() > 0 || fs.cmb.queueUsed > 0 {
			return false
		}
		if fs.cmb.ring.Live() > 0 {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("villars(%s, %s CMB, %s)", d.cfg.Name, d.cfg.Backing.Class, d.transport.mode)
}
