package villars

import (
	"fmt"
	"time"

	"xssd/internal/core"
	"xssd/internal/fault"
	"xssd/internal/ntb"
	"xssd/internal/obs"
	"xssd/internal/sim"
	"xssd/internal/trace"
)

// transportModule mirrors the fast-side write stream to peer devices over
// NTB and maintains shadow counters (paper §4.2, Fig 6). It is optional:
// in Standalone mode only CMB and Destage operate.
type transportModule struct {
	dev    *Device
	mode   core.TransportMode
	scheme core.ReplicationScheme

	// primary state: one mirror flow per secondary (the paper forgoes NTB
	// multicast so each secondary receives at its own pace).
	peers []*peerLink

	// secondary state
	reportTo     *ntb.Window // counter-update path back to the primary
	reportPeerID int
	reporting    bool
	lastReported int64
	frozenUntil  time.Duration // fault plan: suppress reports until then

	// repair state: a background process resending mirror chunks whose
	// bytes a peer's shadow counter has not covered within the repair
	// timeout (lost or delayed mirror traffic — the fault plan's
	// transport.mirror and ntb.deliver points).
	repairing bool

	// ShadowAdvanced broadcasts whenever any shadow counter moves; the
	// benchmark harness and x_fsync-over-replication wait on it.
	ShadowAdvanced *sim.Signal

	// metrics (<dev>/transport/...)
	mMirroredBytes     *obs.Counter
	mCounterUpdates    *obs.Counter
	mUpdatesSent       *obs.Counter
	mMirrorDrops       *obs.Counter
	mMirrorDelays      *obs.Counter
	mRepairResends     *obs.Counter
	mUpdatesSuppressed *obs.Counter
	mUpdateLag         *obs.Histogram // shadow-counter distance on each update, bytes
}

// peerLink is the primary's view of one secondary.
type peerLink struct {
	id int
	//xssd:foreign
	dev      *Device
	window   *ntb.Window // primary -> secondary CMB data
	shadow   int64       // last reported secondary credit counter
	lastSeen time.Duration
	//xssd:pool retain
	unacked    []mirrorChunk // sent but not yet covered by the shadow counter
	unackedPos int           // unacked[:unackedPos] already covered
	//xssd:pool put
	bufFree [][]byte // recycled chunk payloads
}

// pending returns the not-yet-covered retransmission window.
//
//xssd:pool alias
func (pl *peerLink) pending() []mirrorChunk { return pl.unacked[pl.unackedPos:] }

// getBuf returns a pooled chunk buffer of length n.
//
//xssd:pool get
func (pl *peerLink) getBuf(n int) []byte {
	for len(pl.bufFree) > 0 {
		b := pl.bufFree[len(pl.bufFree)-1]
		pl.bufFree = pl.bufFree[:len(pl.bufFree)-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// mirrorChunk is one mirrored TLP retained for retransmission until the
// peer's shadow counter passes it.
type mirrorChunk struct {
	off    int64
	data   []byte
	sentAt time.Duration
}

func newTransportModule(d *Device) *transportModule {
	t := &transportModule{
		dev:            d,
		mode:           core.Standalone,
		scheme:         core.Eager,
		ShadowAdvanced: d.env.NewSignal(),
	}
	sc := obs.For(d.env).Scope(d.cfg.Name + "/transport")
	t.mMirroredBytes = sc.Counter("mirrored_bytes")
	t.mCounterUpdates = sc.Counter("counter_updates")
	t.mUpdatesSent = sc.Counter("updates_sent")
	t.mMirrorDrops = sc.Counter("mirror_drops")
	t.mMirrorDelays = sc.Counter("mirror_delays")
	t.mRepairResends = sc.Counter("repair_resends")
	t.mUpdatesSuppressed = sc.Counter("updates_suppressed")
	t.mUpdateLag = sc.Histogram("update_lag_bytes")
	sc.GaugeFunc("peers", func() int64 { return int64(len(t.peers)) })
	return t
}

// Mode returns the current transport mode.
func (t *transportModule) Mode() core.TransportMode { return t.mode }

// Scheme returns the active replication scheme.
func (t *transportModule) Scheme() core.ReplicationScheme { return t.scheme }

// SetScheme selects which counter combination the device reports.
func (t *transportModule) SetScheme(s core.ReplicationScheme) { t.scheme = s }

// setMode switches the transport role (vendor admin command; paper §7.1
// describes promotion/demotion as the database's responsibility).
func (t *transportModule) setMode(m core.TransportMode) {
	if t.mode == m {
		return
	}
	t.mode = m
	if m == core.Secondary && t.reportTo != nil && !t.reporting {
		t.startReporting()
	}
}

// AddPeer attaches a secondary behind bridge: the primary gets a mirror
// window onto the secondary's CMB, and the secondary gets a counter-report
// window back. Returns the peer id.
func (t *transportModule) AddPeer(sec *Device, toSec, toPrim *ntb.Bridge) int {
	id := len(t.peers)
	pl := &peerLink{
		id:     id,
		dev:    sec,
		window: toSec.NewWindow(sec.fs.cmb, 0),
	}
	t.peers = append(t.peers, pl)
	// Per-peer shadow telemetry (<dev>/transport/peer<id>/...). Lookups go
	// through t.peers by index so the gauges survive ClearPeers/AddPeer
	// re-wiring after a promotion (GaugeFunc re-registration replaces the
	// callback).
	sc := obs.For(t.dev.env).Scope(t.dev.cfg.Name + "/transport").Sub(fmt.Sprintf("peer%d", id))
	sc.GaugeFunc("shadow", func() int64 { return t.Shadow(id) })
	sc.GaugeFunc("lag", func() int64 {
		if id >= len(t.peers) {
			return 0
		}
		return t.dev.fs.cmb.ring.Frontier() - t.peers[id].shadow
	})
	sc.GaugeFunc("unacked", func() int64 {
		if id >= len(t.peers) {
			return 0
		}
		return int64(len(t.peers[id].pending()))
	})
	sec.transport.reportTo = toPrim.NewWindow(counterPort{t}, 0)
	sec.transport.reportPeerID = id
	if sec.transport.mode == core.Secondary && !sec.transport.reporting {
		sec.transport.startReporting()
	}
	if !t.repairing {
		t.startRepair()
	}
	return id
}

// startRepair launches the retransmission process: every half repair
// timeout it resends unacked mirror chunks older than the timeout. The
// process exits when the device has no peers (post-demotion).
func (t *transportModule) startRepair() {
	t.repairing = true
	t.dev.env.Go("mirror-repair-"+t.dev.cfg.Name, func(p *sim.Proc) {
		for {
			if len(t.peers) == 0 || t.dev.powerLost {
				// No peers (post-demotion) or the device is dead: a
				// power-lost device must never push more data onto the
				// fabric, or a promoted successor would see traffic "from
				// beyond the grave" racing its own stream.
				t.repairing = false
				return
			}
			p.Sleep(t.dev.cfg.RepairTimeout / 2)
			now := p.Now()
			for _, pl := range t.peers {
				pend := pl.pending()
				for i := range pend {
					c := &pend[i]
					if now-c.sentAt < t.dev.cfg.RepairTimeout {
						continue
					}
					pl.window.Write(c.off, c.data, nil)
					c.sentAt = now
					t.mRepairResends.Inc()
				}
			}
		}
	})
}

// ClearPeers detaches every secondary (used when re-wiring roles after a
// promotion). The secondaries' report windows are left in place; they stop
// reporting when their mode changes.
func (t *transportModule) ClearPeers() {
	t.peers = nil
}

// Peers returns the number of attached secondaries.
func (t *transportModule) Peers() int { return len(t.peers) }

// mirror forwards an arriving CMB TLP to every peer. Primaries always
// mirror; a Secondary with downstream peers relays — the chain-replication
// topology of §4.2, where each server forwards to the next in the chain.
// Every chunk is retained per peer until that peer's shadow counter
// covers it, so the repair process can resend traffic a fault plan drops
// or delays (ring rewrites of the same bytes are idempotent).
//
//xssd:hotpath
func (t *transportModule) mirror(off int64, data []byte) {
	if t.mode == core.Standalone || len(t.peers) == 0 {
		return
	}
	now := t.dev.env.Now()
	for _, pl := range t.peers {
		buf := pl.getBuf(len(data))
		copy(buf, data)
		if pl.unackedPos > 0 && pl.unackedPos == len(pl.unacked) {
			pl.unacked = pl.unacked[:0]
			pl.unackedPos = 0
		}
		pl.unacked = append(pl.unacked, mirrorChunk{off: off, data: buf, sentAt: now})
		switch d := fault.CheckEnv(t.dev.env, fault.TransportMirror, t.dev.cfg.Name, 1); d.Act {
		case fault.ActionDrop, fault.ActionFail:
			// Lost on the fabric; the repair process will resend.
			t.mMirrorDrops.Inc()
		case fault.ActionDelay:
			t.mMirrorDelays.Inc()
			// The delayed send needs its own copy: the pooled unacked
			// buffer may be covered and recycled before the timer fires.
			//xssd:ignore hotpathalloc delayed-fault path must take the §9 private copy
			delayed := append([]byte(nil), data...)
			pl := pl
			//xssd:ignore hotpathalloc delayed-fault timer fires off the fast path
			t.dev.env.After(d.Dur, func() { pl.window.Write(off, delayed, nil) })
		default:
			pl.window.Write(off, buf, nil)
		}
	}
	t.dev.tracer.Record(trace.Mirror, t.dev.cfg.Name, off, int64(len(data)))
	t.mMirroredBytes.Add(int64(len(data)) * int64(len(t.peers)))
}

// counterPort receives shadow-counter update messages on the primary.
type counterPort struct{ t *transportModule }

// MemWrite decodes a counter update: the peer id rides in the address, the
// counter value in the first 8 payload bytes.
func (c counterPort) MemWrite(off int64, data []byte) {
	id := int(off)
	if id < 0 || id >= len(c.t.peers) || len(data) < 8 {
		return
	}
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(data[i]) << (8 * i)
	}
	pl := c.t.peers[id]
	pl.lastSeen = c.t.dev.env.Now()
	if v > pl.shadow {
		pl.shadow = v
		// Everything below the reported frontier is persisted remotely;
		// drop it from the retransmission buffer and recycle its payload.
		for pl.unackedPos < len(pl.unacked) {
			c := &pl.unacked[pl.unackedPos]
			if c.off+int64(len(c.data)) > v {
				break
			}
			pl.bufFree = append(pl.bufFree, c.data)
			*c = mirrorChunk{}
			pl.unackedPos++
		}
		c.t.counterUpdateObserved(pl)
		c.t.dev.tracer.Record(trace.ShadowUpdate, c.t.dev.cfg.Name, int64(id), v)
		c.t.ShadowAdvanced.Broadcast()
	}
}

// MemRead is unused on the counter port.
func (c counterPort) MemRead(off int64, n int) []byte { return make([]byte, n) }

// counterUpdateObserved records one accepted shadow-counter update and how
// far the peer still trails the local frontier at that instant — the
// replication-lag distribution behind paper Fig 13.
func (t *transportModule) counterUpdateObserved(pl *peerLink) {
	t.mCounterUpdates.Inc()
	if lag := t.dev.fs.cmb.ring.Frontier() - pl.shadow; lag >= 0 {
		t.mUpdateLag.Observe(lag)
	}
}

// startReporting launches the secondary's periodic shadow-counter update
// process (paper §4.2: "the frequency with which it does so is
// adjustable").
func (t *transportModule) startReporting() {
	t.reporting = true
	t.dev.env.Go("shadow-report-"+t.dev.cfg.Name, func(p *sim.Proc) {
		for {
			if t.mode != core.Secondary || t.reportTo == nil {
				t.reporting = false
				return
			}
			// Fault plan: the transport.shadow point can drop one update,
			// delay it, or freeze reporting for a stretch — the stale
			// shadow counter scenario the status register must surface.
			switch d := fault.CheckEnv(t.dev.env, fault.TransportShadow, t.dev.cfg.Name, 1); d.Act {
			case fault.ActionFreeze:
				t.frozenUntil = p.Now() + d.Dur
			case fault.ActionDrop, fault.ActionFail:
				t.mUpdatesSuppressed.Inc()
				p.Sleep(t.dev.cfg.ShadowUpdatePeriod)
				continue
			case fault.ActionDelay:
				p.Sleep(d.Dur)
			}
			if p.Now() < t.frozenUntil {
				t.mUpdatesSuppressed.Inc()
				p.Sleep(t.dev.cfg.ShadowUpdatePeriod)
				continue
			}
			// The update fires every period unconditionally — the paper's
			// Fig 13 measures exactly this fixed-rate traffic (2.35% of
			// the fabric at 0.4 µs).
			v := t.reportValue()
			t.lastReported = v
			payload := make([]byte, core.CounterUpdateBytes)
			for i := 0; i < 8; i++ {
				payload[i] = byte(v >> (8 * i))
			}
			t.reportTo.WriteRaw(int64(t.reportPeerID), payload[:8], core.CounterUpdateBytes, nil)
			t.mUpdatesSent.Inc()
			p.Sleep(t.dev.cfg.ShadowUpdatePeriod)
		}
	})
}

// reportValue is what a secondary reports upstream: its local persist
// frontier, or — when it relays to downstream chain peers — the minimum
// of its own frontier and theirs, so the head of the chain learns
// whole-chain persistence from a single shadow counter (paper §4.2:
// "all but the last server would have a single shadow counter from the
// server in the chain").
func (t *transportModule) reportValue() int64 {
	v := t.dev.fs.cmb.ring.Frontier()
	for _, pl := range t.peers {
		if pl.shadow < v {
			v = pl.shadow
		}
	}
	return v
}

// effectiveCredit combines local and shadow counters per the active
// scheme. local is the device's own persist frontier.
func (t *transportModule) effectiveCredit(local int64) int64 {
	if t.mode != core.Primary || len(t.peers) == 0 {
		return local
	}
	switch t.scheme {
	case Lazy:
		return local
	case Chain:
		return t.peers[len(t.peers)-1].shadow
	default: // Eager
		min := local
		for _, pl := range t.peers {
			if pl.shadow < min {
				min = pl.shadow
			}
		}
		return min
	}
}

// UpdatesSent returns how many shadow-counter update messages this
// device's secondary role has emitted.
func (t *transportModule) UpdatesSent() int64 { return t.mUpdatesSent.Value() }

// MirroredBytes returns the bytes forwarded to peers (counted per peer).
func (t *transportModule) MirroredBytes() int64 { return t.mMirroredBytes.Value() }

// CounterUpdates returns how many shadow-counter updates this device's
// primary role has accepted.
func (t *transportModule) CounterUpdates() int64 { return t.mCounterUpdates.Value() }

// FaultStats returns the transport's injected-fault counters: mirror
// chunks dropped/delayed by the plan, chunks resent by the repair
// process, and shadow updates suppressed.
func (t *transportModule) FaultStats() (drops, delays, resends, suppressed int64) {
	return t.mMirrorDrops.Value(), t.mMirrorDelays.Value(), t.mRepairResends.Value(), t.mUpdatesSuppressed.Value()
}

// ShadowFrozen reports whether this device's own shadow-counter reporting
// is currently suppressed by a freeze (fault plan, transport.shadow
// point). A frozen secondary's upstream view of its persisted prefix is
// stale, so a failover manager must not elect it (the status register
// surfaces the same condition as StatusShadowFrozen).
func (t *transportModule) ShadowFrozen() bool {
	return t.mode == core.Secondary && t.dev.env.Now() < t.frozenUntil
}

// backfillChunk bounds one catch-up transfer unit so the peer's intake
// queue is never overrun even with several chunks in flight.
const backfillChunk = 1024

// Backfill re-sends the stream bytes [off, off+len(data)) to peer sec —
// the catch-up data transfer the paper leaves to the database (§7.1): a
// freshly promoted primary drives each laggard peer's hole from the
// host's retained log before normal mirroring resumes. Chunks are
// retained in the peer's retransmission window like ordinary mirror
// traffic, so dropped backfill heals through the repair process. The call
// paces itself against the peer's shadow counter and blocks until the
// whole range is covered. It returns the number of bytes sent.
//
//xssd:conduit catch-up transfer driven by the promoted primary; the laggard peer is reached only through its NTB window and power/shadow state
func (t *transportModule) Backfill(p *sim.Proc, sec *Device, off int64, data []byte) (int64, error) {
	var pl *peerLink
	for _, cand := range t.peers {
		if cand.dev == sec {
			pl = cand
			break
		}
	}
	if pl == nil {
		return 0, fmt.Errorf("villars: backfill: %s is not a peer of %s", sec.Name(), t.dev.cfg.Name)
	}
	// awaitShadow blocks until the peer's shadow counter reaches target,
	// re-checking every repair timeout so a peer that dies mid-transfer
	// (whose counter will never move again) is still noticed.
	awaitShadow := func(p *sim.Proc, target int64) error {
		for pl.shadow < target {
			if sec.powerLost {
				return fmt.Errorf("villars: backfill: peer %s lost power mid-transfer", sec.Name())
			}
			ticked := false
			t.dev.env.After(t.dev.cfg.RepairTimeout, func() {
				ticked = true
				t.ShadowAdvanced.Broadcast()
			})
			p.WaitFor(t.ShadowAdvanced, func() bool { return ticked || sec.powerLost || pl.shadow >= target })
		}
		return nil
	}
	budget := int64(sec.fs.queueSize) / 2
	if budget < backfillChunk {
		budget = backfillChunk
	}
	var sent int64
	for len(data) > 0 {
		n := backfillChunk
		if n > len(data) {
			n = len(data)
		}
		buf := pl.getBuf(n)
		copy(buf, data[:n])
		pl.unacked = append(pl.unacked, mirrorChunk{off: off, data: buf, sentAt: p.Now()})
		pl.window.Write(off, buf, nil)
		t.mMirroredBytes.Add(int64(n))
		off += int64(n)
		sent += int64(n)
		data = data[n:]
		// Keep at most half the peer's intake queue outstanding beyond its
		// shadow counter; repair resends cover dropped chunks, so the
		// counter always catches up while the peer lives.
		if err := awaitShadow(p, off-budget); err != nil {
			return sent, err
		}
	}
	return sent, awaitShadow(p, off)
}

// Shadow returns the primary's shadow counter for a peer.
func (t *transportModule) Shadow(id int) int64 {
	if id < 0 || id >= len(t.peers) {
		return 0
	}
	return t.peers[id].shadow
}

// PeerLastSeen returns the simulated time of the last shadow-counter
// update received from peer id (zero before any update). The stall
// oracle in the chaos suite reads it on the primary's side instead of
// reaching into the secondaries' fault counters.
func (t *transportModule) PeerLastSeen(id int) time.Duration {
	if id < 0 || id >= len(t.peers) {
		return 0
	}
	return t.peers[id].lastSeen
}

// stalled reports whether any peer's shadow counter lags while data is
// outstanding and its last update is older than the stall timeout.
func (t *transportModule) stalled() bool {
	if t.mode != core.Primary {
		return false
	}
	now := t.dev.env.Now()
	local := t.dev.fs.cmb.ring.Frontier()
	for _, pl := range t.peers {
		if pl.shadow < local && now-pl.lastSeen > t.dev.cfg.StallTimeout {
			return true
		}
	}
	return false
}

// Convenient aliases so the package reads like the paper.
const (
	Lazy  = core.Lazy
	Chain = core.Chain
	Eager = core.Eager
)
