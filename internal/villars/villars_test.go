package villars

import (
	"bytes"
	"testing"
	"time"

	"xssd/internal/core"
	"xssd/internal/nand"
	"xssd/internal/ntb"
	"xssd/internal/nvme"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sched"
	"xssd/internal/sim"
)

// testConfig returns a small, fast device configuration.
func testConfig(name string) Config {
	cfg := DefaultConfig(name)
	cfg.Geometry = nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 32, PagesPerBlock: 32, PageSize: 2048}
	cfg.Timing = nand.Timing{TRead: 5 * time.Microsecond, TProg: 20 * time.Microsecond, TErase: 100 * time.Microsecond, BusRate: 1e9}
	cfg.QueueSize = 4096
	cfg.CMBSize = 64 << 10
	cfg.DestageLatencyBound = 200 * time.Microsecond
	return cfg
}

func newDevice(env *sim.Env, name string) *Device {
	return New(env, testConfig(name), pcie.NewHostMemory(1<<20))
}

// hostWrite pushes data to the device's CMB window at a stream offset via
// write-combining MMIO and fences.
func hostWrite(p *sim.Proc, mm *pcie.MMIO, off int64, data []byte) {
	mm.Store(p, off, data)
	mm.Fence(p)
}

func readReg(p *sim.Proc, ctl *pcie.MMIO, reg int64) int64 {
	b := ctl.Load(p, reg, 8)
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}

func TestFastWriteAdvancesCredit(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	mm := pcie.NewMMIO(d.DataRegion(), pcie.WriteCombining)
	ctl := pcie.NewMMIO(d.ControlRegion(), pcie.Uncached)
	env.Go("host", func(p *sim.Proc) {
		hostWrite(p, mm, 0, []byte("transaction log record #1"))
		p.WaitFor(d.CMB().CreditChanged, func() bool { return d.CMB().Ring().Frontier() == 25 })
		// Check ring content now, before the destage module releases it.
		got, err := d.CMB().Ring().Read(0, 25)
		if err != nil || string(got) != "transaction log record #1" {
			t.Errorf("ring content %q err=%v", got, err)
		}
		if got := readReg(p, ctl, core.RegCredit); got != 25 {
			t.Errorf("credit register = %d, want 25", got)
		}
		if got := readReg(p, ctl, core.RegQueueSize); got != 4096 {
			t.Errorf("queue size register = %d", got)
		}
	})
	env.RunUntil(50 * time.Millisecond)
}

func TestOutOfOrderArrivalWithholdsCredit(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	env.Go("host", func(p *sim.Proc) {
		// Deliver [100,108) before [0,100): credit must stay at 0 until
		// the prefix arrives.
		d.CMB().MemWrite(100, []byte("deferred"))
		p.Sleep(10 * time.Microsecond)
		if d.CMB().Ring().Frontier() != 0 {
			t.Errorf("credit advanced over a gap: %d", d.CMB().Ring().Frontier())
		}
		d.CMB().MemWrite(0, make([]byte, 100))
		p.Sleep(10 * time.Microsecond)
		if d.CMB().Ring().Frontier() != 108 {
			t.Errorf("credit = %d after gap fill, want 108", d.CMB().Ring().Frontier())
		}
	})
	env.RunUntil(time.Millisecond)
}

func TestQueueOverrunDropsWrites(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	env.Go("host", func(p *sim.Proc) {
		// Blast 3x the queue size in one scheduler instant: the drain
		// cannot keep up, so later TLPs find the queue full.
		for i := 0; i < 3; i++ {
			d.CMB().MemWrite(int64(i*4096), make([]byte, 4096))
		}
	})
	env.RunUntil(10 * time.Millisecond)
	if d.CMB().Overruns() == 0 {
		t.Fatal("no overruns recorded despite 3x queue burst")
	}
}

func TestDestageMovesRingToFlash(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	payloadLen := d.cfg.Geometry.PageSize - PageHeaderLen
	want := make([]byte, payloadLen)
	for i := range want {
		want[i] = byte(i * 13)
	}
	env.Go("host", func(p *sim.Proc) {
		d.CMB().MemWrite(0, want) // full page worth: destages immediately
	})
	env.RunUntil(50 * time.Millisecond)
	if d.Destage().DestagedStream() != int64(payloadLen) {
		t.Fatalf("destaged %d bytes, want %d", d.Destage().DestagedStream(), payloadLen)
	}
	// Read back LBA 0 and parse the destage header.
	var page []byte
	env.Go("verify", func(p *sim.Proc) {
		var err error
		page, err = d.FTL().Read(p, 0)
		if err != nil {
			t.Errorf("read destaged page: %v", err)
		}
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)
	off, n, ok := DecodePageHeader(page)
	if !ok || off != 0 || n != payloadLen {
		t.Fatalf("header = (%d,%d,%v)", off, n, ok)
	}
	if !bytes.Equal(page[PageHeaderLen:PageHeaderLen+n], want) {
		t.Fatal("destaged payload corrupted")
	}
	// The PM ring must have been released.
	if d.CMB().Ring().Live() != 0 {
		t.Fatalf("ring still holds %d live bytes", d.CMB().Ring().Live())
	}
}

func TestLatencyBoundDestagesPartialPage(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	env.Go("host", func(p *sim.Proc) {
		d.CMB().MemWrite(0, []byte("tiny record"))
	})
	env.RunUntil(50 * time.Millisecond)
	total, partial := d.Destage().Pages()
	if total != 1 || partial != 1 {
		t.Fatalf("pages = (%d,%d), want one padded page", total, partial)
	}
	if d.Destage().DestagedStream() != 11 {
		t.Fatalf("destaged stream = %d", d.Destage().DestagedStream())
	}
}

func TestCrashConsistencyDestagesPrefixDropsGap(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	env.Go("host", func(p *sim.Proc) {
		d.CMB().MemWrite(0, bytes.Repeat([]byte{0xAA}, 300))  // contiguous
		d.CMB().MemWrite(500, bytes.Repeat([]byte{0xBB}, 80)) // beyond a gap
		p.Sleep(20 * time.Microsecond)
		d.InjectPowerLoss()
	})
	env.RunUntil(200 * time.Millisecond)
	if !d.Drained() {
		t.Fatal("crash protocol did not finish draining")
	}
	if got := d.Destage().DestagedStream(); got != 300 {
		t.Fatalf("destaged %d bytes after crash, want exactly the 300-byte prefix", got)
	}
	var page []byte
	env.Go("verify", func(p *sim.Proc) {
		var err error
		page, err = d.FTL().Read(p, 0)
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)
	off, n, ok := DecodePageHeader(page)
	if !ok || off != 0 || n != 300 {
		t.Fatalf("post-crash page header = (%d,%d,%v)", off, n, ok)
	}
	for _, b := range page[PageHeaderLen : PageHeaderLen+n] {
		if b != 0xAA {
			t.Fatal("post-crash payload corrupted")
		}
	}
}

func TestWritesRejectedAfterPowerLoss(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	env.Go("host", func(p *sim.Proc) {
		d.InjectPowerLoss()
		d.CMB().MemWrite(0, []byte("too late"))
	})
	env.RunUntil(10 * time.Millisecond)
	if d.CMB().BytesIn() != 0 {
		t.Fatal("write accepted after power loss")
	}
}

// cluster wires a primary with one secondary over NTB.
func cluster(env *sim.Env) (*Device, *Device) {
	prim := newDevice(env, "prim")
	sec := newDevice(env, "sec")
	toSec := ntb.NewDefaultBridge(env, "p->s")
	toPrim := ntb.NewDefaultBridge(env, "s->p")
	sec.Transport().setMode(core.Secondary)
	prim.Transport().AddPeer(sec, toSec, toPrim)
	prim.Transport().setMode(core.Primary)
	return prim, sec
}

func TestReplicationMirrorsStreamToSecondary(t *testing.T) {
	env := sim.NewEnv(1)
	prim, sec := cluster(env)
	msg := []byte("replicate me, exactly once, in order")
	env.Go("host", func(p *sim.Proc) {
		prim.CMB().MemWrite(0, msg)
	})
	env.RunUntil(50 * time.Millisecond)
	if sec.CMB().Ring().Frontier() != int64(len(msg)) {
		t.Fatalf("secondary frontier = %d, want %d", sec.CMB().Ring().Frontier(), len(msg))
	}
	// Secondary destages too (its ring drains), so check the destaged page.
	var page []byte
	env.Go("verify", func(p *sim.Proc) {
		page, _ = sec.FTL().Read(p, 0)
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)
	_, n, ok := DecodePageHeader(page)
	if !ok || !bytes.Equal(page[PageHeaderLen:PageHeaderLen+n], msg) {
		t.Fatal("secondary destaged data wrong")
	}
}

func TestShadowCounterReachesPrimary(t *testing.T) {
	env := sim.NewEnv(1)
	prim, _ := cluster(env)
	env.Go("host", func(p *sim.Proc) {
		prim.CMB().MemWrite(0, make([]byte, 256))
	})
	env.RunUntil(50 * time.Millisecond)
	if prim.Transport().Shadow(0) != 256 {
		t.Fatalf("shadow counter = %d, want 256", prim.Transport().Shadow(0))
	}
}

func TestEffectiveCreditPerScheme(t *testing.T) {
	env := sim.NewEnv(1)
	prim, sec := cluster(env)
	env.Go("host", func(p *sim.Proc) {
		prim.CMB().MemWrite(0, make([]byte, 128))
	})
	// Run just long enough for the local persist but before NTB delivery:
	// local=128, shadow=0.
	env.RunUntil(800 * time.Nanosecond)
	if prim.CMB().Ring().Frontier() != 128 {
		t.Skipf("timing assumption broken: local frontier %d", prim.CMB().Ring().Frontier())
	}
	prim.Transport().SetScheme(core.Eager)
	if got := prim.EffectiveCredit(); got != 0 {
		t.Errorf("eager credit = %d before replication, want 0", got)
	}
	prim.Transport().SetScheme(core.Lazy)
	if got := prim.EffectiveCredit(); got != 128 {
		t.Errorf("lazy credit = %d, want 128 (local)", got)
	}
	env.RunUntil(50 * time.Millisecond)
	prim.Transport().SetScheme(core.Eager)
	if got := prim.EffectiveCredit(); got != 128 {
		t.Errorf("eager credit = %d after replication, want 128", got)
	}
	prim.Transport().SetScheme(core.Chain)
	if got := prim.EffectiveCredit(); got != 128 {
		t.Errorf("chain credit = %d, want tail shadow 128", got)
	}
	_ = sec
}

func TestAdminCommands(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	driver := nvme.NewDriver(env, d.Queues())
	env.Go("host", func(p *sim.Proc) {
		c := driver.Submit(p, nvme.Command{Opcode: nvme.OpXSetDestagePolicy, CDW: int64(sched.ConventionalPriority)})
		if c.Status != nvme.StatusSuccess {
			t.Errorf("set policy: %v", c.Status)
		}
		if d.Scheduler().Policy() != sched.ConventionalPriority {
			t.Error("policy not applied")
		}
		c = driver.Submit(p, nvme.Command{Opcode: nvme.OpXSetTransportMode, CDW: int64(core.Primary)})
		if c.Status != nvme.StatusSuccess {
			t.Errorf("set mode: %v", c.Status)
		}
		c = driver.Submit(p, nvme.Command{Opcode: nvme.OpXQueryStatus})
		if c.Status != nvme.StatusSuccess || c.Value&core.StatusTransportUp == 0 {
			t.Errorf("query status = %+v", c)
		}
		c = driver.Submit(p, nvme.Command{Opcode: nvme.OpXSetTransportMode, CDW: 99})
		if c.Status != nvme.StatusInvalid {
			t.Errorf("bogus mode accepted: %v", c.Status)
		}
		c = driver.Submit(p, nvme.Command{Opcode: nvme.OpXConfigureRing, CDW: 8<<32 | 64})
		if c.Status != nvme.StatusSuccess {
			t.Errorf("configure ring: %v", c.Status)
		}
		if d.Destage().baseLBA != 8 || d.Destage().lbaCount != 64 {
			t.Error("ring not reconfigured")
		}
	})
	env.RunUntil(100 * time.Millisecond)
}

func TestConfigureRingRejectedWhenLive(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	driver := nvme.NewDriver(env, d.Queues())
	env.Go("host", func(p *sim.Proc) {
		d.CMB().MemWrite(0, make([]byte, 64))
		p.Sleep(5 * time.Microsecond)
		c := driver.Submit(p, nvme.Command{Opcode: nvme.OpXConfigureRing, CDW: 0<<32 | 64})
		if c.Status != nvme.StatusError {
			t.Errorf("reconfigure with live data: %v, want error", c.Status)
		}
	})
	env.RunUntil(100 * time.Millisecond)
}

func TestAdvancedAllocPinsDestaging(t *testing.T) {
	env := sim.NewEnv(1)
	d := newDevice(env, "a")
	var a Allocation
	env.Go("host", func(p *sim.Proc) {
		var err error
		a, err = d.CMB().Alloc(256)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		// Fill the allocation out of order: second half first.
		d.CMB().MemWrite(a.Start+128, make([]byte, 128))
		d.CMB().MemWrite(a.Start, make([]byte, 128))
	})
	env.RunUntil(50 * time.Millisecond)
	if d.Destage().DestagedStream() != 0 {
		t.Fatalf("destaged %d bytes while allocation active", d.Destage().DestagedStream())
	}
	if d.CMB().Ring().Frontier() != 256 {
		t.Fatalf("frontier = %d, want 256", d.CMB().Ring().Frontier())
	}
	env.Go("free", func(p *sim.Proc) {
		if !d.CMB().Free(a.ID) {
			t.Error("free failed")
		}
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)
	if d.Destage().DestagedStream() != 256 {
		t.Fatalf("destaged %d after free, want 256", d.Destage().DestagedStream())
	}
}

func TestStallDetection(t *testing.T) {
	env := sim.NewEnv(1)
	prim := newDevice(env, "prim")
	sec := newDevice(env, "sec")
	toSec := ntb.NewDefaultBridge(env, "p->s")
	toPrim := ntb.NewDefaultBridge(env, "s->p")
	// Peer added but the secondary never enters Secondary mode: it will
	// receive data but never report its counter.
	prim.Transport().AddPeer(sec, toSec, toPrim)
	prim.Transport().setMode(core.Primary)
	env.Go("host", func(p *sim.Proc) {
		prim.CMB().MemWrite(0, make([]byte, 64))
	})
	env.RunUntil(50 * time.Millisecond) // > StallTimeout of 10ms
	if prim.statusRegister()&core.StatusReplicaStalled == 0 {
		t.Fatal("stalled replica not flagged in status register")
	}
	if prim.Transport().stalled() != true {
		t.Fatal("stalled() = false")
	}
}

func TestLBARingWrapsAround(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := testConfig("a")
	cfg.DestageLBAs = 4 // tiny ring: wraps quickly
	d := New(env, cfg, pcie.NewHostMemory(1<<20))
	payload := d.cfg.Geometry.PageSize - PageHeaderLen
	env.Go("host", func(p *sim.Proc) {
		for i := 0; i < 6; i++ { // 6 pages through a 4-slot ring
			d.CMB().MemWrite(int64(i*payload), make([]byte, payload))
			p.Sleep(2 * time.Millisecond)
		}
	})
	env.RunUntil(time.Second)
	if total, _ := d.Destage().Pages(); total != 6 {
		t.Fatalf("pages destaged = %d, want 6", total)
	}
	if d.Destage().TailLBA() != 6 {
		t.Fatalf("tail slot = %d", d.Destage().TailLBA())
	}
	// Slot 0 and 1 were overwritten by pages 4 and 5.
	var page []byte
	env.Go("verify", func(p *sim.Proc) { page, _ = d.FTL().Read(p, 0) })
	env.RunUntil(env.Now() + 50*time.Millisecond)
	off, _, ok := DecodePageHeader(page)
	if !ok || off != int64(4*payload) {
		t.Fatalf("wrapped slot 0 holds stream offset %d, want %d", off, 4*payload)
	}
}

func TestBackingClassesBothWork(t *testing.T) {
	for _, spec := range []pm.Spec{pm.SRAMSpec, pm.DRAMSpec} {
		env := sim.NewEnv(1)
		cfg := testConfig("x")
		cfg.Backing = spec
		cfg.CMBSize = 64 << 10
		d := New(env, cfg, pcie.NewHostMemory(1<<20))
		env.Go("host", func(p *sim.Proc) {
			d.CMB().MemWrite(0, make([]byte, 1024))
		})
		env.RunUntil(50 * time.Millisecond)
		if d.CMB().Ring().Frontier() != 1024 {
			t.Fatalf("%v backing: frontier %d", spec.Class, d.CMB().Ring().Frontier())
		}
	}
}
