package villars

import (
	"time"

	"xssd/internal/fault"
	"xssd/internal/obs"
	"xssd/internal/pm"
	"xssd/internal/ring"
	"xssd/internal/sim"
	"xssd/internal/trace"
)

// cmbModule is the fast side's front end (paper §4.1, Fig 5): arriving TLP
// payloads land on an SRAM intake queue of pre-negotiated size; a drain
// process retires them into the PM backing ring; the credit counter — the
// ring's contiguous frontier — advances only when gap-free data reaches the
// backing memory.
type cmbModule struct {
	dev  *Device
	fs   *fastSide
	bank *pm.Bank
	ring *ring.Ring

	//xssd:pool retain
	queue     []cmbChunk
	queuePos  int // queue[:queuePos] already drained
	queueUsed int

	// persistq holds chunks in flight on the backing bus; the bus is FIFO,
	// so every completion fires persistNext (bound once) — no per-chunk
	// closure. chunkBufs recycles payload buffers between intake and
	// persist.
	//xssd:pool retain
	persistq    []cmbChunk
	persistPos  int
	persistNext func()
	//xssd:pool put
	chunkBufs [][]byte

	arrived       *sim.Signal // intake queue received data
	CreditChanged *sim.Signal // frontier advanced

	// advanced API (paper §5.2): active allocations pin the destage floor.
	allocs      []Allocation
	nextAllocID int64

	headArrived  time.Duration // when the oldest undestaged byte arrived
	supercapDead bool

	// metrics (<fs>/cmb/...)
	mBytesIn  *obs.Counter
	mOverruns *obs.Counter
	mRejected *obs.Counter
	mPersist  *obs.Histogram // intake arrival -> ring persist, ns
}

type cmbChunk struct {
	off  int64
	data []byte
	at   time.Duration // intake arrival time (persist-latency span)
}

// Allocation is an active fast-side region handed out by Alloc (paper
// §5.2): the device will not destage past the start of the oldest active
// allocation, so the area may be written in any order until freed.
type Allocation struct {
	ID         int64
	Start, End int64
}

func newCMBModule(d *Device, fs *fastSide, bank *pm.Bank) *cmbModule {
	m := &cmbModule{
		dev:           d,
		fs:            fs,
		bank:          bank,
		ring:          ring.New(int(fs.cmbSize)),
		arrived:       d.env.NewSignal(),
		CreditChanged: d.env.NewSignal(),
	}
	m.persistNext = m.persistOldest
	sc := obs.For(d.env).Scope(fs.name + "/cmb")
	m.mBytesIn = sc.Counter("bytes_in")
	m.mOverruns = sc.Counter("overruns")
	m.mRejected = sc.Counter("rejected")
	m.mPersist = sc.Histogram("persist_ns")
	sc.GaugeFunc("credit", m.ring.Frontier)
	sc.GaugeFunc("live", m.ring.Live)
	sc.GaugeFunc("queue_used", func() int64 { return int64(m.queueUsed) })
	d.env.Go("cmb-drain-"+fs.name, m.drain)
	return m
}

// MemWrite implements pcie.Target: a TLP payload arrived on the CMB
// interface. Runs in scheduler context; must not block.
//
//xssd:hotpath
func (m *cmbModule) MemWrite(off int64, data []byte) {
	// Fault plan: byte-weighted power-loss trigger — "cut power on the
	// Nth CMB byte" counts every fast side's arriving payload.
	if fault.CheckEnv(m.dev.env, fault.DevicePower, m.dev.cfg.Name, int64(len(data))).Fail() {
		m.dev.InjectPowerLoss()
	}
	if m.dev.powerLost {
		m.mRejected.Inc()
		return
	}
	// The Transport module receives a mirror of the arriving TLP stream
	// (paper §4.2, Fig 6 step 1). Only the device's primary fast side
	// replicates; virtual functions are local (their replication configs
	// are future work per paper §7.2).
	if m.fs.primary {
		m.dev.transport.mirror(off, data)
	}
	if m.queueUsed+len(data) > m.fs.queueSize {
		// The host overran the advisory flow-control protocol; the write
		// is dropped and the guarantee void (paper §4.1).
		m.mOverruns.Inc()
		m.dev.tracer.Record(trace.QueueOverrun, m.fs.name, off, int64(len(data)))
		return
	}
	buf := m.getChunkBuf(len(data))
	copy(buf, data)
	if m.queuePos > 0 && m.queuePos == len(m.queue) {
		m.queue = m.queue[:0]
		m.queuePos = 0
	}
	m.queue = append(m.queue, cmbChunk{off: off, data: buf, at: m.dev.env.Now()})
	m.queueUsed += len(buf)
	m.mBytesIn.Add(int64(len(buf)))
	m.dev.tracer.Record(trace.CMBWrite, m.fs.name, off, int64(len(buf)))
	m.arrived.Broadcast()
}

// MemRead implements pcie.Target: loads from the CMB window read the
// backing ring (the window is byte-addressable in both directions).
func (m *cmbModule) MemRead(off int64, n int) []byte {
	data, err := m.ring.Read(off, n)
	if err != nil {
		return make([]byte, n)
	}
	return data
}

// drain streams intake-queue entries onto the backing bus. Stores are
// pipelined: each chunk occupies the bus for its serialization time only,
// and commits to the ring one access latency later (bus FIFO keeps those
// completions in order), so back-to-back chunks stream at full bus
// bandwidth instead of serializing on the access latency.
//
//xssd:hotpath
func (m *cmbModule) drain(p *sim.Proc) {
	for {
		if m.queuePos == len(m.queue) {
			if m.dev.powerLost {
				// Crash protocol: the queue is empty; nothing more will
				// arrive. The destage module finishes the job.
				m.fs.destage.kick.Broadcast()
			}
			p.Wait(m.arrived)
			continue
		}
		c := m.queue[m.queuePos]
		m.queue[m.queuePos] = cmbChunk{}
		m.queuePos++
		if m.persistPos > 0 && m.persistPos == len(m.persistq) {
			m.persistq = m.persistq[:0]
			m.persistPos = 0
		}
		m.persistq = append(m.persistq, c)
		m.bank.WriteAsync(len(c.data), m.persistNext)
		p.Sleep(m.bank.SerializationTime(len(c.data)))
	}
}

// getChunkBuf returns a pooled intake buffer of length n.
//
//xssd:pool get
func (m *cmbModule) getChunkBuf(n int) []byte {
	for len(m.chunkBufs) > 0 {
		b := m.chunkBufs[len(m.chunkBufs)-1]
		m.chunkBufs = m.chunkBufs[:len(m.chunkBufs)-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// persistOldest lands the oldest in-flight chunk in the backing ring
// (scheduler context, in bus completion order) and recycles its buffer.
//
//xssd:hotpath
func (m *cmbModule) persistOldest() {
	c := m.persistq[m.persistPos]
	m.persistq[m.persistPos] = cmbChunk{}
	m.persistPos++
	before := m.ring.Frontier()
	err := m.ring.Write(c.off, c.data)
	m.queueUsed -= len(c.data)
	m.chunkBufs = append(m.chunkBufs, c.data)
	if err != nil {
		// Stale or overrunning write: drop it. The host's flow control
		// should prevent this.
		m.mRejected.Inc()
		return
	}
	m.mPersist.Since(c.at)
	if m.ring.Live() > 0 && before == m.ring.Head() {
		m.headArrived = m.dev.env.Now()
	}
	if m.ring.Frontier() != before {
		m.dev.tracer.Record(trace.CMBPersist, m.fs.name, c.off, m.ring.Frontier())
		m.CreditChanged.Broadcast()
		m.fs.destage.kick.Broadcast()
	}
}

// Alloc reserves size bytes at the current high-water mark for random-order
// writing (paper §5.2). The region is pinned — not destage-eligible — until
// freed.
func (m *cmbModule) Alloc(size int) (Allocation, error) {
	if int64(size) > m.ring.Free() {
		return Allocation{}, ring.ErrFull
	}
	start := m.allocTail()
	m.nextAllocID++
	a := Allocation{ID: m.nextAllocID, Start: start, End: start + int64(size)}
	m.allocs = append(m.allocs, a)
	return a, nil
}

// allocTail returns the first stream offset past every allocation and all
// appended data.
func (m *cmbModule) allocTail() int64 {
	t := m.ring.Frontier()
	for _, a := range m.allocs {
		if a.End > t {
			t = a.End
		}
	}
	if gaps := m.ring.Gaps(); len(gaps) > 0 {
		if e := gaps[len(gaps)-1].End; e > t {
			t = e
		}
	}
	return t
}

// Free releases an allocation; once every allocation below it is also
// free, the region becomes destage-eligible.
func (m *cmbModule) Free(id int64) bool {
	for i, a := range m.allocs {
		if a.ID == id {
			m.allocs = append(m.allocs[:i], m.allocs[i+1:]...)
			m.fs.destage.kick.Broadcast()
			return true
		}
	}
	return false
}

// FreeByStart releases the allocation beginning at the given stream
// offset (the handle shape the NVMe vendor command can carry).
func (m *cmbModule) FreeByStart(start int64) bool {
	for _, a := range m.allocs {
		if a.Start == start {
			return m.Free(a.ID)
		}
	}
	return false
}

// destageFloor returns the stream offset destaging must not cross: the
// start of the oldest active allocation, or the frontier when none.
func (m *cmbModule) destageFloor() int64 {
	floor := m.ring.Frontier()
	for _, a := range m.allocs {
		if a.Start < floor {
			floor = a.Start
		}
	}
	return floor
}

// QueueUsed returns the bytes currently sitting in the intake queue.
func (m *cmbModule) QueueUsed() int { return m.queueUsed }

// Ring exposes the backing ring (tests and the destage module).
func (m *cmbModule) Ring() *ring.Ring { return m.ring }

// Overruns returns how many TLPs were dropped due to queue overrun.
func (m *cmbModule) Overruns() int64 { return m.mOverruns.Value() }

// Rejected returns how many writes were dropped for reasons other than
// overrun (power loss, stale offsets).
func (m *cmbModule) Rejected() int64 { return m.mRejected.Value() }

// BytesIn returns the total payload bytes accepted on the CMB interface.
func (m *cmbModule) BytesIn() int64 { return m.mBytesIn.Value() }
