// Package ring implements the persistent ring-buffer core shared by the
// X-SSD fast side and its destage area (paper §4.1, §4.3).
//
// The ring is addressed by *stream offsets*: the writer appends at
// monotonically growing logical offsets, which wrap physically over a fixed
// capacity. Writes may arrive slightly out of order ("mostly sequential" in
// the paper); the ring tracks the out-of-order intervals and advances its
// *frontier* — the credit counter — only when a contiguous prefix forms.
// Data between the consumed head and the frontier is durable and
// destageable; data beyond the frontier sits in a gap and is lost on crash.
package ring

import (
	"errors"
	"fmt"
)

// Common errors returned by Ring operations. Errors carrying extra
// context wrap these sentinels; match with errors.Is.
var (
	ErrFull       = errors.New("ring: write would overwrite unconsumed data")
	ErrStale      = errors.New("ring: write below consumed head")
	ErrOutOfRange = errors.New("ring: read outside persisted region")
	ErrRelease    = errors.New("ring: release exceeds live window")
)

// Interval is a half-open [Start, End) range of stream offsets.
type Interval struct{ Start, End int64 }

// Len returns the interval's length in bytes.
func (iv Interval) Len() int64 { return iv.End - iv.Start }

// Ring is a byte ring over a fixed capacity with contiguous-prefix credit
// accounting. It is not safe for concurrent use; in this codebase all
// access is serialized by the simulation scheduler.
type Ring struct {
	data     []byte
	capacity int64

	head     int64      // lowest live stream offset (already-consumed data below)
	frontier int64      // contiguous-persist frontier == credit counter value
	pending  []Interval // out-of-order writes beyond frontier, sorted, disjoint
}

// New creates a ring of the given capacity in bytes.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	return &Ring{data: make([]byte, capacity), capacity: int64(capacity)}
}

// Capacity returns the ring capacity in bytes.
func (r *Ring) Capacity() int64 { return r.capacity }

// Head returns the lowest live stream offset (everything below has been
// consumed/destaged and released).
func (r *Ring) Head() int64 { return r.head }

// Frontier returns the contiguous-persist frontier: the total number of
// stream bytes that form a gap-free prefix. This is exactly the paper's
// credit counter value.
func (r *Ring) Frontier() int64 { return r.frontier }

// Live returns the number of bytes between head and frontier: durable data
// waiting to be consumed.
func (r *Ring) Live() int64 { return r.frontier - r.head }

// highWater returns the highest stream offset any write has reached.
func (r *Ring) highWater() int64 {
	hw := r.frontier
	if n := len(r.pending); n > 0 {
		hw = r.pending[n-1].End
	}
	return hw
}

// Free returns how many more bytes can be written before the ring would
// overwrite unconsumed data.
func (r *Ring) Free() int64 { return r.capacity - (r.highWater() - r.head) }

// Write stores data at stream offset off. It fails with ErrStale if the
// range dips below the consumed head, and ErrFull if it would exceed the
// physical capacity ahead of the head. Overlapping rewrites of
// not-yet-consumed data are allowed (last write wins).
func (r *Ring) Write(off int64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	end := off + int64(len(data))
	if off < r.head {
		return ErrStale
	}
	if end-r.head > r.capacity {
		return ErrFull
	}
	// At most two physical segments: [pos, capacity) then the wrap.
	pos := off % r.capacity
	n := copy(r.data[pos:], data)
	copy(r.data, data[n:])
	r.merge(Interval{off, end})
	return nil
}

// merge inserts iv into the pending set and advances the frontier across
// any prefix that became contiguous.
func (r *Ring) merge(iv Interval) {
	if iv.End <= r.frontier {
		return // rewrite of already-credited data
	}
	if iv.Start < r.frontier {
		iv.Start = r.frontier
	}
	// Insert keeping the list sorted by Start, then coalesce.
	pos := len(r.pending)
	for i, p := range r.pending {
		if iv.Start < p.Start {
			pos = i
			break
		}
	}
	r.pending = append(r.pending, Interval{})
	copy(r.pending[pos+1:], r.pending[pos:])
	r.pending[pos] = iv

	out := r.pending[:1]
	for _, p := range r.pending[1:] {
		last := &out[len(out)-1]
		if p.Start <= last.End {
			if p.End > last.End {
				last.End = p.End
			}
		} else {
			out = append(out, p)
		}
	}
	r.pending = out

	// Advance the frontier while the first interval touches it. Pop by
	// copying down rather than re-slicing the head: slicing would erode
	// the backing array's capacity and make the insert above reallocate
	// on every merge.
	k := 0
	for k < len(r.pending) && r.pending[k].Start <= r.frontier {
		if r.pending[k].End > r.frontier {
			r.frontier = r.pending[k].End
		}
		k++
	}
	if k > 0 {
		n := copy(r.pending, r.pending[k:])
		r.pending = r.pending[:n]
	}
}

// Append writes data at the current high-water mark (strictly sequential
// append) and returns the stream offset it was placed at.
func (r *Ring) Append(data []byte) (int64, error) {
	off := r.highWater()
	if err := r.Write(off, data); err != nil {
		return 0, err
	}
	return off, nil
}

// Read copies n bytes starting at stream offset off into a fresh slice.
// The range must lie inside the persisted window [head, frontier).
func (r *Ring) Read(off int64, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := r.ReadInto(out, off); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto copies len(dst) bytes starting at stream offset off into dst,
// the allocation-free variant of Read for hot consumers (the destage
// pipeline reads every CMB byte back through here).
func (r *Ring) ReadInto(dst []byte, off int64) error {
	if off < r.head || off+int64(len(dst)) > r.frontier {
		return ErrOutOfRange
	}
	pos := off % r.capacity
	n := copy(dst, r.data[pos:])
	copy(dst[n:], r.data)
	return nil
}

// Release consumes n bytes from the head (they have been destaged or
// replicated onward) and frees their space for rewriting.
func (r *Ring) Release(n int64) error {
	if n < 0 || r.head+n > r.frontier {
		return fmt.Errorf("%w: release %d, live %d", ErrRelease, n, r.Live())
	}
	r.head += n
	return nil
}

// Gaps returns the out-of-order intervals beyond the frontier. A crash at
// this instant loses exactly these bytes (paper §4.1: "the device will stop
// destaging if it encounters a gap in the data").
func (r *Ring) Gaps() []Interval {
	out := make([]Interval, len(r.pending))
	copy(out, r.pending)
	return out
}

// DiscardGaps drops all data beyond the frontier, modelling the crash
// protocol: after power loss only the contiguous prefix survives.
func (r *Ring) DiscardGaps() {
	r.pending = r.pending[:0]
}
