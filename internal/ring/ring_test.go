package ring

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSequentialAppendAdvancesFrontier(t *testing.T) {
	r := New(64)
	for i := 0; i < 4; i++ {
		if _, err := r.Append([]byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	if r.Frontier() != 16 {
		t.Fatalf("frontier = %d, want 16", r.Frontier())
	}
	got, err := r.Read(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("abcdabcdabcdabcd")) {
		t.Fatalf("read back %q", got)
	}
}

func TestOutOfOrderWriteHoldsCredit(t *testing.T) {
	r := New(64)
	// Write [8,16) first: a gap at [0,8) keeps the frontier at 0.
	if err := r.Write(8, []byte("01234567")); err != nil {
		t.Fatal(err)
	}
	if r.Frontier() != 0 {
		t.Fatalf("frontier = %d before gap fill, want 0", r.Frontier())
	}
	if gaps := r.Gaps(); len(gaps) != 1 || gaps[0] != (Interval{8, 16}) {
		t.Fatalf("gaps = %v", gaps)
	}
	// Filling the gap advances the frontier over both chunks at once.
	if err := r.Write(0, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	if r.Frontier() != 16 {
		t.Fatalf("frontier = %d after gap fill, want 16", r.Frontier())
	}
	if len(r.Gaps()) != 0 {
		t.Fatalf("gaps remain: %v", r.Gaps())
	}
}

func TestWriteBeyondCapacityFails(t *testing.T) {
	r := New(16)
	if _, err := r.Append(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append([]byte{1}); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if err := r.Release(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(make([]byte, 8)); err != nil {
		t.Fatalf("append after release: %v", err)
	}
}

func TestStaleWriteRejected(t *testing.T) {
	r := New(16)
	r.Append(make([]byte, 8))
	r.Release(8)
	if err := r.Write(4, []byte{1}); err != ErrStale {
		t.Fatalf("err = %v, want ErrStale", err)
	}
}

func TestReadOutsidePersistedWindow(t *testing.T) {
	r := New(32)
	r.Append([]byte("abcdefgh"))
	if _, err := r.Read(4, 8); err != ErrOutOfRange {
		t.Fatalf("read past frontier: err = %v, want ErrOutOfRange", err)
	}
	r.Release(4)
	if _, err := r.Read(0, 4); err != ErrOutOfRange {
		t.Fatalf("read below head: err = %v, want ErrOutOfRange", err)
	}
}

func TestWrapAroundPreservesData(t *testing.T) {
	r := New(10)
	payload := []byte("0123456789abcdefghij") // 2x capacity
	var off int64
	for off = 0; off < int64(len(payload)); off += 5 {
		if err := r.Write(off, payload[off:off+5]); err != nil {
			t.Fatal(err)
		}
		if err := r.Release(5); err != nil {
			t.Fatal(err)
		}
	}
	if r.Frontier() != 20 || r.Head() != 20 {
		t.Fatalf("frontier=%d head=%d", r.Frontier(), r.Head())
	}
}

func TestReleaseBeyondFrontierFails(t *testing.T) {
	r := New(16)
	r.Append([]byte("abcd"))
	if err := r.Release(5); err == nil {
		t.Fatal("release beyond frontier succeeded")
	}
}

func TestDiscardGapsDropsOnlyUncreditedData(t *testing.T) {
	r := New(64)
	r.Append([]byte("durable!"))  // [0,8) credited
	r.Write(16, []byte("orphan")) // [16,22) beyond a gap
	r.DiscardGaps()
	if r.Frontier() != 8 {
		t.Fatalf("frontier = %d, want 8", r.Frontier())
	}
	if len(r.Gaps()) != 0 {
		t.Fatalf("gaps remain after discard: %v", r.Gaps())
	}
	got, _ := r.Read(0, 8)
	if string(got) != "durable!" {
		t.Fatalf("prefix corrupted: %q", got)
	}
}

// property: for any permutation of chunk arrival order, once all chunks have
// arrived the frontier equals the total length and the content reads back
// exactly; at every intermediate step the frontier equals the length of the
// longest contiguous prefix delivered so far.
func TestQuickOutOfOrderDeliveryCredit(t *testing.T) {
	f := func(seed int64, nChunks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nChunks%16) + 1
		chunks := make([][]byte, n)
		offs := make([]int64, n)
		var total int64
		for i := 0; i < n; i++ {
			size := rng.Intn(32) + 1
			c := make([]byte, size)
			rng.Read(c)
			chunks[i] = c
			offs[i] = total
			total += int64(size)
		}
		r := New(int(total))
		order := rng.Perm(n)
		delivered := make([]bool, n)
		for _, idx := range order {
			if err := r.Write(offs[idx], chunks[idx]); err != nil {
				return false
			}
			delivered[idx] = true
			// expected frontier: length of contiguous delivered prefix
			var want int64
			for j := 0; j < n && delivered[j]; j++ {
				want = offs[j] + int64(len(chunks[j]))
			}
			if r.Frontier() != want {
				return false
			}
		}
		got, err := r.Read(0, int(total))
		if err != nil {
			return false
		}
		want := bytes.Join(chunks, nil)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// property: Free + (highWater - head) == capacity always holds under random
// append/release traffic, and Write never corrupts previously credited data.
func TestQuickSpaceAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := rng.Intn(200) + 20
		r := New(capacity)
		shadow := []byte{} // full logical stream
		for step := 0; step < 100; step++ {
			if rng.Intn(2) == 0 {
				size := rng.Intn(capacity/2) + 1
				if int64(size) > r.Free() {
					continue
				}
				chunk := make([]byte, size)
				rng.Read(chunk)
				if _, err := r.Append(chunk); err != nil {
					return false
				}
				shadow = append(shadow, chunk...)
			} else if r.Live() > 0 {
				n := int64(rng.Intn(int(r.Live()))) + 1
				if err := r.Release(n); err != nil {
					return false
				}
			}
			if r.Free()+(r.Frontier()-r.Head()) != r.Capacity() {
				return false
			}
			// spot-check live window content against the shadow stream
			if r.Live() > 0 {
				got, err := r.Read(r.Head(), int(r.Live()))
				if err != nil {
					return false
				}
				if !bytes.Equal(got, shadow[r.Head():r.Frontier()]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
