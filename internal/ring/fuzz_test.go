package ring

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRingFold drives a small ring through an op-coded script and
// cross-checks the append/fold/wrap offset arithmetic against a flat
// shadow of the stream: physical wrapping must never change what a read
// of the live window returns, error paths must fire exactly on their
// documented conditions, and the head/frontier accounting must stay
// monotonic and in range.
func FuzzRingFold(f *testing.F) {
	f.Add([]byte{8, 0, 4, 0, 4, 2, 4})             // append, append, release
	f.Add([]byte{4, 1, 2, 3, 0, 200, 3, 0, 16})    // out-of-order write, read
	f.Add([]byte{16, 0, 10, 0, 10, 0, 10, 2, 255}) // wrap twice, over-release
	f.Add([]byte{1, 0, 1, 0, 1, 2, 1, 0, 1})       // capacity 1: wrap every byte
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 {
			return
		}
		capacity := int(script[0])%64 + 1
		script = script[1:]
		r := New(capacity)

		shadow := map[int64]byte{} // stream offset -> last byte written
		var fill byte              // rolling content generator
		genData := func(n int) []byte {
			data := make([]byte, n)
			for i := range data {
				fill++
				data[i] = fill
			}
			return data
		}
		record := func(off int64, data []byte) {
			for i, b := range data {
				shadow[off+int64(i)] = b
			}
		}

		prevHead, prevFrontier := r.Head(), r.Frontier()
		next := func() byte {
			if len(script) == 0 {
				return 0
			}
			b := script[0]
			script = script[1:]
			return b
		}
		for len(script) > 0 {
			op := next()
			switch op % 4 {
			case 0: // Append
				data := genData(int(next()) % (capacity + 4))
				want := r.highWater()
				off, err := r.Append(data)
				wantErr := len(data) > 0 && want+int64(len(data))-r.Head() > r.Capacity()
				if (err != nil) != wantErr {
					t.Fatalf("Append(%d bytes): err=%v, want error=%v", len(data), err, wantErr)
				}
				if err == nil {
					if len(data) > 0 && off != want {
						t.Fatalf("Append placed at %d, want high-water %d", off, want)
					}
					record(off, data)
				}
			case 1: // Write, possibly out of order or stale
				off := r.Head() + int64(next()) - 16
				data := genData(int(next()) % (capacity + 4))
				err := r.Write(off, data)
				var wantErr error
				switch {
				case len(data) == 0:
				case off < r.Head():
					wantErr = ErrStale
				case off+int64(len(data))-r.Head() > r.Capacity():
					wantErr = ErrFull
				}
				if !errors.Is(err, wantErr) {
					t.Fatalf("Write(%d, %d bytes): err=%v, want %v", off, len(data), err, wantErr)
				}
				if err == nil {
					record(off, data)
				}
			case 2: // Release
				n := int64(next())
				live := r.Live()
				err := r.Release(n)
				if (err != nil) != (n > live) {
					t.Fatalf("Release(%d) with live %d: err=%v", n, live, err)
				}
			case 3: // Read back from the live window
				off := r.Head() + int64(next()) - 4
				n := int(next()) % 32
				got, err := r.Read(off, n)
				wantErr := off < r.Head() || off+int64(n) > r.Frontier()
				if (err != nil) != wantErr {
					t.Fatalf("Read(%d, %d) window [%d,%d): err=%v", off, n, r.Head(), r.Frontier(), err)
				}
				if err == nil {
					want := make([]byte, n)
					for i := range want {
						want[i] = shadow[off+int64(i)]
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("Read(%d, %d) = %x, shadow says %x", off, n, got, want)
					}
				}
			}
			checkInvariants(t, r, prevHead, prevFrontier)
			prevHead, prevFrontier = r.Head(), r.Frontier()
		}
	})
}

func checkInvariants(t *testing.T, r *Ring, prevHead, prevFrontier int64) {
	t.Helper()
	if r.Head() < prevHead || r.Frontier() < prevFrontier {
		t.Fatalf("head/frontier moved backwards: head %d->%d, frontier %d->%d",
			prevHead, r.Head(), prevFrontier, r.Frontier())
	}
	if r.Head() > r.Frontier() {
		t.Fatalf("head %d above frontier %d", r.Head(), r.Frontier())
	}
	if free := r.Free(); free < 0 || free > r.Capacity() {
		t.Fatalf("free %d outside [0, %d]", free, r.Capacity())
	}
	gaps := r.Gaps()
	for i, g := range gaps {
		if g.Start >= g.End {
			t.Fatalf("gap %d empty or inverted: %+v", i, g)
		}
		if g.Start < r.Frontier() {
			t.Fatalf("gap %d starts at %d, below frontier %d", i, g.Start, r.Frontier())
		}
		if i > 0 && g.Start <= gaps[i-1].End {
			t.Fatalf("gaps %d and %d overlap or touch: %+v, %+v", i-1, i, gaps[i-1], g)
		}
	}
}
