package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"xssd/internal/pm"
)

// The figure-cell differential suite: every cell must produce the same
// measurements, metrics JSON, and event count at every worker count of the
// parallel runner; single-member figures must additionally match the plain
// single-Env runner byte for byte (quantum chopping is invisible to a lone
// member). Runner modes: -1 encodes the plain runner, n >= 1 a group with
// n executors.

type cellRun struct {
	events  int64
	metrics []byte
	values  []float64
}

// runCellDifferential executes cell under each mode and returns the runs.
func runCellDifferential(t *testing.T, modes []int, cell func() []float64) []cellRun {
	t.Helper()
	prev := EngineWorkers()
	defer SetEngineWorkers(prev)
	out := make([]cellRun, 0, len(modes))
	for _, mode := range modes {
		if mode < 0 {
			SetEngineWorkers(0)
		} else {
			SetEngineWorkers(mode)
		}
		cap := StartCapture()
		values := cell()
		StopCapture()
		var buf bytes.Buffer
		if err := cap.WriteJSON(&buf); err != nil {
			t.Fatalf("mode %d: metrics: %v", mode, err)
		}
		out = append(out, cellRun{events: LastCellEvents(), metrics: buf.Bytes(), values: values})
	}
	return out
}

func checkRunsIdentical(t *testing.T, name string, modes []int, runs []cellRun) {
	t.Helper()
	for i := 1; i < len(runs); i++ {
		if runs[i].events != runs[0].events {
			t.Errorf("%s: mode %d dispatched %d events, mode %d %d",
				name, modes[i], runs[i].events, modes[0], runs[0].events)
		}
		if !bytes.Equal(runs[i].metrics, runs[0].metrics) {
			t.Errorf("%s: mode %d metrics JSON diverges from mode %d", name, modes[i], modes[0])
		}
		for j := range runs[i].values {
			if runs[i].values[j] != runs[0].values[j] {
				t.Errorf("%s: mode %d measurement[%d] = %v, mode %d %v",
					name, modes[i], j, runs[i].values[j], modes[0], runs[0].values[j])
			}
		}
	}
}

// TestSingleMemberFigsMatchPlainRunner demands full byte-identity between
// the plain runner and the group runner at workers {1, 2, 8} for one cell
// of each single-device figure.
func TestSingleMemberFigsMatchPlainRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short mode")
	}
	modes := []int{-1, 1, 2, 8}
	t.Run("fig10", func(t *testing.T) {
		runs := runCellDifferential(t, modes, func() []float64 {
			return []float64{Fig10Cell(pm.SRAMSpec, false, 64)}
		})
		checkRunsIdentical(t, "fig10", modes, runs)
	})
	t.Run("fig11", func(t *testing.T) {
		runs := runCellDifferential(t, modes, func() []float64 {
			lat, mbps := Fig11Cell(32<<10, 16<<10)
			return []float64{float64(lat), mbps}
		})
		checkRunsIdentical(t, "fig11", modes, runs)
	})
	t.Run("fig9", func(t *testing.T) {
		runs := runCellDifferential(t, modes, func() []float64 {
			lat, ktps := Fig09Cell("Villars-SRAM", 2)
			return []float64{float64(lat), ktps}
		})
		checkRunsIdentical(t, "fig9", modes, runs)
	})
}

// TestFig13WorkerCountInvariant runs the genuinely multi-member figure
// under the group runner only: the secondary lives on its own member and
// all pair traffic crosses at barriers, so the executor count must not be
// observable. (The plain runner is a different topology — one Env for both
// devices — and is not compared.)
func TestFig13WorkerCountInvariant(t *testing.T) {
	modes := []int{1, 2, 8}
	runs := runCellDifferential(t, modes, func() []float64 {
		c, share := Fig13Cell(400 * time.Nanosecond)
		return []float64{float64(c.Min), float64(c.P50), float64(c.Max), float64(c.N), share}
	})
	checkRunsIdentical(t, "fig13", modes, runs)
	for _, r := range runs {
		if r.values[3] == 0 {
			t.Fatal("fig13 under the group runner collected no samples")
		}
	}
}

// TestPargroupCellWorkerParity pins the contract Compare enforces on the
// /swN perf twins: identical topology, identical events, any executor
// count.
func TestPargroupCellWorkerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short mode")
	}
	e1 := PargroupCell(3, 1)
	e2 := PargroupCell(3, 2)
	if e1 != e2 {
		t.Fatalf("pargroup events drift across workers: %d vs %d", e1, e2)
	}
	if e1 == 0 {
		t.Fatal("pargroup dispatched no events")
	}
}

// TestCompareFlagsWorkerTwinDrift checks that Compare hard-fails when two
// /swN twins disagree on events, independent of the tolerance.
func TestCompareFlagsWorkerTwinDrift(t *testing.T) {
	baseline := []PerfResult{{Bench: "pargroup/d8/sw1", Events: 100, EventsPerSec: 1}}
	current := []PerfResult{
		{Bench: "pargroup/d8/sw1", Events: 100, EventsPerSec: 1},
		{Bench: "pargroup/d8/sw8", Events: 101, EventsPerSec: 1},
	}
	err := Compare(baseline, current, 0.99)
	if err == nil {
		t.Fatal("Compare accepted serial/parallel event drift")
	}
	if !strings.Contains(err.Error(), "drift") {
		t.Fatalf("unexpected error: %v", err)
	}
	current[1].Events = 100
	if err := Compare(baseline, current, 0.99); err != nil {
		t.Fatalf("Compare rejected matching twins: %v", err)
	}
}

// TestCompareWallFloor checks the throughput tolerance only gates cells
// whose baseline run lasted past compareWallFloorNS; shorter cells are
// noise-bound and only their event counts are compared.
func TestCompareWallFloor(t *testing.T) {
	short := []PerfResult{{Bench: "c", WallNS: compareWallFloorNS - 1, Events: 10, EventsPerSec: 1000}}
	long := []PerfResult{{Bench: "c", WallNS: compareWallFloorNS, Events: 10, EventsPerSec: 1000}}
	slow := []PerfResult{{Bench: "c", WallNS: compareWallFloorNS, Events: 10, EventsPerSec: 100}}
	if err := Compare(short, slow, 0.15); err != nil {
		t.Fatalf("Compare gated throughput on a sub-floor cell: %v", err)
	}
	if err := Compare(long, slow, 0.15); err == nil {
		t.Fatal("Compare ignored a real regression on a cell past the floor")
	}
	slow[0].Events = 11
	if err := Compare(short, slow, 0.15); err == nil {
		t.Fatal("Compare ignored an event-count drift on a sub-floor cell")
	}
}

// TestCompareFlagsQuantileDrift checks that Compare demands exact
// quantile equality on latency-suite cells (virtual-time quantiles are
// deterministic) while leaving quantile-free perf cells alone.
func TestCompareFlagsQuantileDrift(t *testing.T) {
	baseline := []PerfResult{{Bench: "lat/nvme/q4/d8/c1", Events: 100, P50NS: 1000, P99NS: 2000, P999NS: 3000}}
	current := []PerfResult{{Bench: "lat/nvme/q4/d8/c1", Events: 100, P50NS: 1000, P99NS: 2001, P999NS: 3000}}
	err := Compare(baseline, current, 0.15)
	if err == nil {
		t.Fatal("Compare accepted a p99 drift on a latency cell")
	}
	if !strings.Contains(err.Error(), "virtual-time drift") {
		t.Fatalf("unexpected error: %v", err)
	}
	current[0].P99NS = 2000
	if err := Compare(baseline, current, 0.15); err != nil {
		t.Fatalf("Compare rejected equal quantiles: %v", err)
	}
	// A perf-suite cell (no baseline quantiles) ignores the new run's.
	noQ := []PerfResult{{Bench: "fig9", Events: 50}}
	withQ := []PerfResult{{Bench: "fig9", Events: 50, P50NS: 7}}
	if err := Compare(noQ, withQ, 0.15); err != nil {
		t.Fatalf("Compare gated quantiles on a quantile-free baseline: %v", err)
	}
}
