// Package bench is the experiment harness: one driver per figure of the
// paper's evaluation (§6), each regenerating the figure's series as a text
// table, plus the ablation studies DESIGN.md calls out. Every driver runs a
// fresh deterministic simulation and reports measurements in virtual time.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"xssd/internal/obs"
	"xssd/internal/sim"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CellMetrics pairs one experiment cell with the metrics snapshot its
// simulation environment held when the cell finished.
type CellMetrics struct {
	Cell     string        `json:"cell"`
	Snapshot *obs.Snapshot `json:"snapshot"`
}

// Capture collects per-cell metrics snapshots while experiments run (the
// xbench -metrics mode). Cells appear in execution order; experiments run
// sequentially, so the order — and the encoded output — is deterministic.
type Capture struct {
	cells []CellMetrics
}

// activeCapture is the capture the cell functions feed. Package-level
// state is acceptable here because the harness is single-threaded: one
// experiment cell runs at a time.
var activeCapture *Capture

// StartCapture begins collecting per-cell metrics snapshots from every
// experiment cell that runs until StopCapture.
func StartCapture() *Capture {
	c := &Capture{}
	activeCapture = c
	return c
}

// StopCapture detaches the active capture.
func StopCapture() { activeCapture = nil }

// lastEvents holds the dispatched-event count of the most recently
// finished cell (same single-threaded-harness caveat as activeCapture).
var lastEvents int64

// LastCellEvents reports how many simulator events the most recently
// finished experiment cell dispatched. The perf suite divides this by wall
// time to get events/second.
func LastCellEvents() int64 { return lastEvents }

// captureCell records env's metrics snapshot under the cell name; cells
// call it once, right before returning their measurements.
func captureCell(cell string, env *sim.Env) {
	lastEvents = env.Events()
	if activeCapture == nil {
		return
	}
	activeCapture.cells = append(activeCapture.cells,
		CellMetrics{Cell: cell, Snapshot: obs.For(env).Snapshot()})
}

// Len returns how many cells the capture holds.
func (c *Capture) Len() int { return len(c.cells) }

// WriteJSON writes the capture as one canonical JSON array (compact, one
// trailing newline) — byte-identical across same-seed runs.
func (c *Capture) WriteJSON(w io.Writer) error {
	b, err := json.Marshal(c.cells)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Experiment names accepted by Run.
var Experiments = []string{"fig9", "fig10", "fig11", "fig12", "fig13",
	"ablation-policy", "ablation-scheme", "ablation-credit", "ablation-backing"}

// Run executes one experiment by name and writes its table(s) to w.
func Run(name string, w io.Writer) error {
	switch name {
	case "fig9":
		Fig09().Fprint(w)
	case "fig10":
		for _, t := range Fig10() {
			t.Fprint(w)
		}
	case "fig11":
		for _, t := range Fig11() {
			t.Fprint(w)
		}
	case "fig12":
		for _, t := range Fig12() {
			t.Fprint(w)
		}
	case "fig13":
		Fig13().Fprint(w)
	case "ablation-policy":
		AblationPolicy().Fprint(w)
	case "ablation-scheme":
		AblationScheme().Fprint(w)
	case "ablation-credit":
		AblationCredit().Fprint(w)
	case "ablation-backing":
		AblationBacking().Fprint(w)
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments)
	}
	return nil
}
