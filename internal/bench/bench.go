// Package bench is the experiment harness: one driver per figure of the
// paper's evaluation (§6), each regenerating the figure's series as a text
// table, plus the ablation studies DESIGN.md calls out. Every driver runs a
// fresh deterministic simulation and reports measurements in virtual time.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment names accepted by Run.
var Experiments = []string{"fig9", "fig10", "fig11", "fig12", "fig13",
	"ablation-policy", "ablation-scheme", "ablation-credit", "ablation-backing"}

// Run executes one experiment by name and writes its table(s) to w.
func Run(name string, w io.Writer) error {
	switch name {
	case "fig9":
		Fig09().Fprint(w)
	case "fig10":
		for _, t := range Fig10() {
			t.Fprint(w)
		}
	case "fig11":
		for _, t := range Fig11() {
			t.Fprint(w)
		}
	case "fig12":
		for _, t := range Fig12() {
			t.Fprint(w)
		}
	case "fig13":
		Fig13().Fprint(w)
	case "ablation-policy":
		AblationPolicy().Fprint(w)
	case "ablation-scheme":
		AblationScheme().Fprint(w)
	case "ablation-credit":
		AblationCredit().Fprint(w)
	case "ablation-backing":
		AblationBacking().Fprint(w)
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments)
	}
	return nil
}
