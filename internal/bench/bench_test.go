package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"xssd/internal/pm"
	"xssd/internal/sched"
)

func TestTablePrinting(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col-a", "b"},
	}
	tab.Add("1", "longer-cell")
	tab.Add("22", "x")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"=== demo ===", "a note", "col-a", "longer-cell", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := Run("fig99", new(bytes.Buffer)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentNamesRoundTrip(t *testing.T) {
	// Every listed name must be dispatchable (checked without running the
	// heavy ones: only validate the error path is about unknown names).
	for _, name := range Experiments {
		if name == "" {
			t.Fatal("empty experiment name")
		}
	}
}

// Directional smoke checks on single experiment cells (fast parameters).

func TestFig10CellWCBeatsUCDirectionally(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short mode")
	}
	wc := Fig10Cell(pm.SRAMSpec, false, 64)
	uc := Fig10Cell(pm.SRAMSpec, true, 64)
	if wc <= uc {
		t.Fatalf("WC %.0f <= UC %.0f MB/s", wc/1e6, uc/1e6)
	}
}

func TestFig11CellQueueEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short mode")
	}
	latSmall, thrSmall := Fig11Cell(4<<10, 64<<10)
	latBig, thrBig := Fig11Cell(32<<10, 64<<10)
	if latBig >= latSmall {
		t.Fatalf("32KB queue latency %v not better than 4KB %v", latBig, latSmall)
	}
	if thrBig <= thrSmall {
		t.Fatalf("32KB queue throughput %.0f not better than 4KB %.0f", thrBig, thrSmall)
	}
}

func TestFig13CellVarianceGrowsWithPeriod(t *testing.T) {
	fast, _ := Fig13Cell(400 * time.Nanosecond)
	slow, _ := Fig13Cell(1600 * time.Nanosecond)
	if fast.N == 0 || slow.N == 0 {
		t.Fatal("no samples collected")
	}
	if iqr(slow) <= iqr(fast) {
		t.Fatalf("IQR at 1.6µs (%v) not larger than at 0.4µs (%v)", iqr(slow), iqr(fast))
	}
}

func TestFig13BandwidthShareInverseToPeriod(t *testing.T) {
	_, fast := Fig13Cell(400 * time.Nanosecond)
	_, slow := Fig13Cell(1600 * time.Nanosecond)
	if fast <= slow {
		t.Fatalf("update bandwidth at 0.4µs (%.2f%%) not above 1.6µs (%.2f%%)", fast, slow)
	}
	if fast < 1.5 || fast > 3.5 {
		t.Fatalf("update bandwidth at 0.4µs = %.2f%%, want near the paper's 2.35%%", fast)
	}
}

func iqr(c interface{ IQR() time.Duration }) time.Duration { return c.IQR() }

func TestFig09CellNoLogFastest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, noLog := Fig09Cell("NoLog", 2)
	latNVMe, nvme := Fig09Cell("NVMe", 2)
	if noLog <= 0 || nvme <= 0 {
		t.Fatalf("throughputs: nolog %.1f nvme %.1f", noLog, nvme)
	}
	if noLog < nvme {
		t.Fatalf("NoLog (%.1f ktps) slower than NVMe (%.1f ktps)", noLog, nvme)
	}
	if latNVMe <= 0 {
		t.Fatal("NVMe latency not measured")
	}
}

func TestFig12CellConventionalPriorityProtects(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	conv, _ := Fig12Cell(sched.ConventionalPriority, 0.60)
	if conv < 0.42 {
		t.Fatalf("conventional priority achieved only %.0f%%, want ~50%%", conv*100)
	}
}
