package bench

import (
	"fmt"
	"time"

	"xssd/internal/nand"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/villars"
	"xssd/internal/xapi"
)

// Fig 10 (§6.2): effect of Write Combining. A single writer streams
// fixed-size writes through the fast side — under Write-Combining and
// Uncached MMIO mappings, with SRAM- and DRAM-backed CMB — and the
// throughput is normalized to the best cell per backing. Small writes pay
// a full TLP header per few payload bytes; WC coalesces them into
// 64-byte-line packets.

var fig10Sizes = []int{1, 2, 4, 8, 16, 32, 64, 128}

const fig10Window = 20 * time.Millisecond

func fig10Device(env *sim.Env, backing pm.Spec) *villars.Device {
	cfg := villars.DefaultConfig("fig10")
	cfg.Backing = backing
	// Give the SRAM ring enough slack (the paper notes the 128 KB CMB
	// "capacity could be increased by making certain compromises" in FPGA
	// resources) so the destage pipeline depth does not gate the interface
	// measurement this experiment is about.
	if cfg.Backing.Capacity < 4<<20 {
		cfg.Backing.Capacity = 4 << 20
	}
	cfg.CMBSize = cfg.Backing.Capacity
	cfg.Geometry = nand.Geometry{Channels: 8, WaysPerChan: 8, BlocksPerDie: 64, PagesPerBlock: 64, PageSize: 16 << 10}
	cfg.QueueSize = 32 << 10
	return villars.New(env, cfg, pcie.NewHostMemory(1<<20))
}

// Fig10Cell measures sustained fast-side intake (bytes persisted to the
// backing ring per second) for one (backing, mode, size) cell.
func Fig10Cell(backing pm.Spec, uncached bool, size int) float64 {
	c := newCellSim(1)
	defer c.close()
	env := c.env()
	dev := fig10Device(env, backing)
	env.Go("writer", func(p *sim.Proc) {
		l := xapi.Open(p, dev, xapi.Options{Uncached: uncached})
		buf := make([]byte, size)
		for {
			l.XPwrite(p, buf)
		}
	})
	c.release()
	c.runUntil(fig10Window)
	mode := "wc"
	if uncached {
		mode = "uc"
	}
	c.capture(fmt.Sprintf("fig10/%s/%s/%dB", backing.Class, mode, size))
	return float64(dev.CMB().Ring().Frontier()) / fig10Window.Seconds()
}

// Fig10 regenerates the paper's Figure 10: one table per backing memory,
// throughput normalized to that backing's best cell.
func Fig10() []*Table {
	var out []*Table
	for _, backing := range []pm.Spec{pm.SRAMSpec, pm.DRAMSpec} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 10 — write combining vs uncached, %s-backed CMB", backing.Class),
			Note:   "throughput normalized to the best cell of this backing",
			Header: []string{"write size", "WC MB/s", "UC MB/s", "WC norm", "UC norm"},
		}
		wc := make([]float64, len(fig10Sizes))
		uc := make([]float64, len(fig10Sizes))
		best := 0.0
		for i, size := range fig10Sizes {
			wc[i] = Fig10Cell(backing, false, size)
			uc[i] = Fig10Cell(backing, true, size)
			if wc[i] > best {
				best = wc[i]
			}
			if uc[i] > best {
				best = uc[i]
			}
		}
		for i, size := range fig10Sizes {
			t.Add(fmt.Sprintf("%dB", size),
				fmt.Sprintf("%.0f", wc[i]/1e6), fmt.Sprintf("%.0f", uc[i]/1e6),
				fmt.Sprintf("%.2f", wc[i]/best), fmt.Sprintf("%.2f", uc[i]/best))
		}
		out = append(out, t)
	}
	return out
}
