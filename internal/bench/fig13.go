package bench

import (
	"fmt"
	"time"

	"xssd/internal/core"
	"xssd/internal/metrics"
	"xssd/internal/nand"
	"xssd/internal/ntb"
	"xssd/internal/nvme"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/villars"
	"xssd/internal/xapi"
)

// Fig 13 (§6.5): replication delay versus the secondary's shadow-counter
// update period. A primary/secondary pair is wired over NTB; a writer
// issues small CMB writes, and for each write we measure the time until
// the primary's shadow counter covers it — i.e., the write is confirmed on
// the secondary. The right axis reports the share of fabric bandwidth the
// fixed-rate counter updates consume.

var fig13Periods = []time.Duration{
	400 * time.Nanosecond,
	800 * time.Nanosecond,
	1200 * time.Nanosecond,
	1600 * time.Nanosecond,
}

const (
	fig13Window    = 4 * time.Millisecond
	fig13WriteSize = 64
	fig13WritePace = 4 * time.Microsecond
)

func fig13Device(env *sim.Env, name string, period time.Duration) *villars.Device {
	cfg := villars.DefaultConfig(name)
	cfg.Backing = pm.SRAMSpec
	cfg.Geometry = nand.Geometry{Channels: 4, WaysPerChan: 4, BlocksPerDie: 64, PagesPerBlock: 64, PageSize: 16 << 10}
	cfg.ShadowUpdatePeriod = period
	return villars.New(env, cfg, pcie.NewHostMemory(1<<20))
}

// Fig13Cell measures the shadow-counter confirmation delay distribution
// and the counter-update bandwidth share for one period.
func Fig13Cell(period time.Duration) (metrics.Candlestick, float64) {
	c := newCellSim(5)
	defer c.close()
	env := c.env()
	prim := fig13Device(env, "prim", period)
	// Under the parallel runner the secondary lives on its own member and
	// all pair traffic — mirrored writes one way, counter updates the
	// other — crosses at barriers through the bridges.
	secEnv := c.member("sec", 6)
	sec := fig13Device(secEnv, "sec", period)
	toSec := ntb.NewDefaultBridgeTo(env, secEnv, "p-s")
	toPrim := ntb.NewDefaultBridgeTo(secEnv, env, "s-p")
	prim.Transport().AddPeer(sec, toSec, toPrim)
	setRoles(c, prim, sec)

	var sample metrics.Sample
	target := int64(0)
	env.Go("writer", func(p *sim.Proc) {
		l := xapi.Open(p, prim, xapi.Options{})
		buf := make([]byte, fig13WriteSize)
		for {
			t0 := p.Now()
			l.XPwrite(p, buf)
			target += int64(fig13WriteSize)
			want := target
			// Wait until the secondary's persistence is confirmed at the
			// primary (the shadow counter covers this write).
			p.WaitFor(prim.Transport().ShadowAdvanced, func() bool {
				return prim.Transport().Shadow(0) >= want
			})
			sample.Add(p.Now() - t0)
			// Jitter the pacing so samples are not phase-locked to the
			// update period.
			jitter := time.Duration(env.Rand().Intn(2000)) * time.Nanosecond
			if wait := fig13WritePace + jitter - (p.Now() - t0); wait > 0 {
				p.Sleep(wait)
			}
		}
	})
	c.release()
	c.runUntil(fig13Window)
	c.capture(fmt.Sprintf("fig13/period%v", period))
	updates := sec.Transport().UpdatesSent()
	wire := float64(updates) * float64(core.CounterUpdateBytes)
	share := wire / (ntb.DefaultBandwidth * fig13Window.Seconds())
	return sample.Candlestick(), share * 100
}

// setRoles flips the pair into secondary/primary through the admin path.
// It runs during bring-up (the group is still inline), so the admin proc
// may drive the secondary's queues directly even when it lives on another
// member.
func setRoles(c *cellSim, prim, sec *villars.Device) {
	c.env().Go("set-roles", func(p *sim.Proc) {
		submitMode(p, sec, core.Secondary)
		submitMode(p, prim, core.Primary)
	})
	c.runUntil(c.now() + 100*time.Microsecond)
}

func submitMode(p *sim.Proc, d *villars.Device, mode core.TransportMode) {
	d.HostDriver().Submit(p, nvme.Command{Opcode: nvme.OpXSetTransportMode, CDW: int64(mode)})
}

// Fig13 regenerates the paper's Figure 13.
func Fig13() *Table {
	t := &Table{
		Title:  "Fig 13 — replication delay vs shadow-counter update period",
		Note:   "delay: write at primary -> shadow counter confirms secondary persistence",
		Header: []string{"update period", "min", "p25", "p50", "p75", "max", "update bandwidth"},
	}
	for _, period := range fig13Periods {
		c, share := Fig13Cell(period)
		t.Add(fmt.Sprintf("%.1fµs", float64(period)/1e3),
			fmtDur(c.Min), fmtDur(c.P25), fmtDur(c.P50), fmtDur(c.P75), fmtDur(c.Max),
			fmt.Sprintf("%.2f%%", share))
	}
	return t
}
