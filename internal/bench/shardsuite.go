package bench

import (
	"fmt"
	"time"

	"xssd/internal/db"
	"xssd/internal/shard"
	"xssd/internal/sim"
	"xssd/internal/tpcc"
	"xssd/internal/wal"
)

// The shard suite (xbench -suite shard): aggregate TPC-C throughput of
// the sharded cluster over a fixed virtual window. Three cell families:
//
//   - shard/sN: N primary devices, two warehouses and two terminals per
//     shard, the spec remote mix (1% remote order lines, 15% remote
//     payments). Commits is the aggregate committed-transaction count —
//     the scaling series: each shard owns an independent WAL pipeline,
//     so committed work should grow near-linearly with N.
//   - shard/s4/remoteR: the 4-shard cell under increasing cross-shard
//     pressure — R is the approximate percent of transactions that touch
//     a remote shard (0 = all local, 50 = half the payments go remote).
//     The commit count falls as 2PC round trips displace local commits.
//   - shard/s4/swN: the serial/parallel twins. Identical topology under
//     1, 2, and 8 quantum executors; Compare demands bit-identical event
//     and commit counts across the trio.
//
// Every cell pins its own SimWorkers, so the checked-in BENCH_PR9.json
// is stable regardless of the -workers flag.

// Shard suite tuning constants.
const (
	shardWindow = 20 * time.Millisecond // measured virtual window
	shardSettle = 5 * time.Millisecond  // drain tail after the window
	shardTerms  = 2                     // terminals per shard
	shardSeed   = 21
)

// ShardMeasurement is one cell's outcome: the dispatched event count and
// the aggregate committed-transaction count, both virtual-deterministic.
type ShardMeasurement struct {
	Events  int64
	Commits int64
}

// ShardCell is one timed unit of the shard suite.
type ShardCell struct {
	Name string
	Run  func() (ShardMeasurement, error)
}

// ShardCells lists the suite in canonical order: the shard-count scaling
// series, the remote-mix sweep, and the engine twins.
func ShardCells() []ShardCell {
	cells := []ShardCell{}
	add := func(name string, run func() (ShardMeasurement, error)) {
		cells = append(cells, ShardCell{Name: name, Run: run})
	}
	for _, n := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("shard/s%d", n)
		n := n
		add(name, func() (ShardMeasurement, error) {
			return ShardBenchCell(name, n, 1, tpcc.SpecMix())
		})
	}
	for _, rm := range []struct {
		label string
		mix   tpcc.RemoteMix
	}{
		{"remote0", tpcc.RemoteMix{}},
		{"remote10", tpcc.SpecMix()},
		{"remote50", tpcc.RemoteMix{LinePct: 5, PayPct: 50}},
	} {
		name := "shard/s4/" + rm.label
		rm := rm
		add(name, func() (ShardMeasurement, error) {
			return ShardBenchCell(name, 4, 1, rm.mix)
		})
	}
	for _, sw := range []int{1, 2, 8} {
		name := fmt.Sprintf("shard/s4/sw%d", sw)
		sw := sw
		add(name, func() (ShardMeasurement, error) {
			return ShardBenchCell(name, 4, sw, tpcc.SpecMix())
		})
	}
	return cells
}

// ShardBenchCell runs one sharded-cluster topology to the end of the
// measurement window: shards primaries, two warehouses and two terminals
// each, no faults, the given remote mix. cell names the run for the
// metrics capture (xbench -metrics).
func ShardBenchCell(cell string, shards, simWorkers int, mix tpcc.RemoteMix) (ShardMeasurement, error) {
	tcfg := tpcc.Config{Warehouses: 2 * shards, Districts: 2, CustomersPerDistrict: 8, Items: 40, FillerLen: 10}
	cl, err := shard.New(shard.Config{
		Shards:     shards,
		Warehouses: tcfg.Warehouses,
		SimWorkers: simWorkers,
		Seed:       shardSeed,
		WAL:        wal.Config{GroupBytes: 4 << 10, GroupTimeout: 500 * time.Microsecond},
		Load: func(eng *db.Engine, id int) {
			tpcc.LoadWarehouses(eng, tcfg, shardSeed, func(w int) bool {
				return shard.OwnerOf(w, shards, tcfg.Warehouses) == id
			})
		},
	})
	if err != nil {
		return ShardMeasurement{}, err
	}
	defer cl.Close()
	cl.Build()

	var (
		bootErr error
		stop    bool
		clients []*tpcc.ShardedClient
	)
	cl.Shard(0).Env().Go("shard-bench-boot", func(p *sim.Proc) {
		if bootErr = cl.Boot(p); bootErr != nil {
			return
		}
		for _, sh := range cl.Shards() {
			sh := sh
			for w := 0; w < shardTerms; w++ {
				home := sh.ID()*2 + 1 + w%2
				c := tpcc.NewShardedClient(cl, tcfg, shardSeed*97+int64(sh.ID())*1000+int64(w)+1, home, mix)
				clients = append(clients, c)
				sh.Env().Go(fmt.Sprintf("term-%d-%d", sh.ID(), w), func(p *sim.Proc) {
					lg := sh.Log()
					for !stop {
						lg.WaitBacklog(p, 32<<10)
						if stop {
							return
						}
						p.Sleep(100 * time.Microsecond)
						c.RunMix(p)
					}
				})
			}
		}
		cl.Release()
	})
	cl.RunUntil(shardWindow)
	if bootErr != nil {
		return ShardMeasurement{}, bootErr
	}
	stop = true
	cl.RunUntil(shardWindow + shardSettle)

	m := ShardMeasurement{Events: cl.Events()}
	for _, c := range clients {
		byType, _, _ := c.Counts()
		for _, n := range byType {
			m.Commits += n
		}
	}
	lastEvents = m.Events
	if activeCapture != nil {
		activeCapture.cells = append(activeCapture.cells,
			CellMetrics{Cell: cell, Snapshot: cl.Snapshot()})
	}
	return m, nil
}

// CheckShardScaling is the throughput-scaling gate run after the suite:
// the 4-shard cell must commit at least minRatio times the 1-shard
// cell's aggregate. Both counts are virtual-deterministic, so a miss is
// a structural scaling regression (a serialization point across shards),
// never machine noise.
func CheckShardScaling(results []PerfResult, minRatio float64) error {
	var s1, s4 int64
	for _, r := range results {
		switch r.Bench {
		case "shard/s1":
			s1 = r.Commits
		case "shard/s4":
			s4 = r.Commits
		}
	}
	if s1 == 0 || s4 == 0 {
		return fmt.Errorf("bench: shard scaling gate: missing shard/s1 or shard/s4 cell")
	}
	if ratio := float64(s4) / float64(s1); ratio < minRatio {
		return fmt.Errorf("bench: shard scaling gate: shard/s4 committed %d vs shard/s1 %d (%.2fx < %.2fx)",
			s4, s1, ratio, minRatio)
	}
	return nil
}
