package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// PerfResult is one row of the perf suite's canonical output
// (BENCH_PR4.json): a cell name, its wall-clock cost, the simulator events
// it dispatched, and the heap allocations the run charged.
type PerfResult struct {
	Bench        string  `json:"bench"`
	WallNS       int64   `json:"wall_ns"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       int64   `json:"allocs"`
	// Latency-suite cells also carry their virtual-time quantiles
	// (BENCH_PR8.json). Virtual time makes them exact, so the compare
	// gate demands equality, like event counts. Perf-suite cells leave
	// them zero and the fields stay out of their JSON.
	P50NS  int64 `json:"p50_ns,omitempty"`
	P99NS  int64 `json:"p99_ns,omitempty"`
	P999NS int64 `json:"p999_ns,omitempty"`
	// Shard-suite cells carry their aggregate committed-transaction
	// count (BENCH_PR9.json). Commits are virtual-deterministic, so the
	// compare gate demands equality, like event counts.
	Commits int64 `json:"commits,omitempty"`
}

// WritePerfFile writes results as indented JSON with a trailing newline —
// the checked-in baseline format.
func WritePerfFile(path string, results []PerfResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadPerfFile reads a file written by WritePerfFile.
func ReadPerfFile(path string) ([]PerfResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []PerfResult
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return out, nil
}

// compareWallFloorNS: the events/second tolerance only applies to cells
// whose baseline run lasted at least this long. Below it, scheduler and
// timer noise on a shared CI host routinely exceeds any reasonable
// tolerance, so a throughput gate on such a cell measures the machine,
// not the code. The event-count equality check (the determinism gate)
// applies to every cell regardless of duration.
const compareWallFloorNS = int64(500_000_000)

// Compare gates a new perf run against a baseline: it fails if any
// baseline cell is missing from the new run, dispatched a different event
// count (a determinism break — event counts are machine-independent), or
// regressed in events/second by more than tol (a fraction, e.g. 0.15) on
// cells running past compareWallFloorNS. Cells present only in the new
// run are ignored, so adding cells does not require regenerating history.
func Compare(baseline, current []PerfResult, tol float64) error {
	byName := make(map[string]PerfResult, len(current))
	for _, r := range current {
		byName[r.Bench] = r
	}
	var problems []string
	for _, b := range baseline {
		c, ok := byName[b.Bench]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from new results", b.Bench))
			continue
		}
		if c.Events != b.Events {
			problems = append(problems, fmt.Sprintf(
				"%s: dispatched %d events, baseline %d (determinism break?)", b.Bench, c.Events, b.Events))
			continue
		}
		if b.P50NS != 0 || b.P99NS != 0 || b.P999NS != 0 {
			// One line per drifting quantile, expected-then-got, so a CI
			// log names the exact series that moved.
			for _, q := range []struct {
				name     string
				exp, got int64
			}{
				{"p50", b.P50NS, c.P50NS},
				{"p99", b.P99NS, c.P99NS},
				{"p999", b.P999NS, c.P999NS},
			} {
				if q.got != q.exp {
					problems = append(problems, fmt.Sprintf(
						"%s: %s expected %dns, got %dns (virtual-time drift — determinism break?)",
						b.Bench, q.name, q.exp, q.got))
				}
			}
		}
		if b.Commits != 0 && c.Commits != b.Commits {
			problems = append(problems, fmt.Sprintf(
				"%s: committed %d transactions, baseline %d (virtual-time drift — determinism break?)",
				b.Bench, c.Commits, b.Commits))
		}
		if b.WallNS >= compareWallFloorNS && b.EventsPerSec > 0 && c.EventsPerSec < b.EventsPerSec*(1-tol) {
			problems = append(problems, fmt.Sprintf(
				"%s: %.0f events/s, >%.0f%% below baseline %.0f",
				b.Bench, c.EventsPerSec, tol*100, b.EventsPerSec))
		}
	}
	problems = append(problems, workerParityProblems(current)...)
	if len(problems) > 0 {
		return fmt.Errorf("bench: perf regression vs baseline:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// swSuffix marks cells that run the same topology under different numbers
// of simulation workers (the /swN twins of the perf suite).
var swSuffix = regexp.MustCompile(`/sw\d+$`)

// workerParityProblems enforces the differential-determinism contract on a
// result set: cells whose names differ only in their /swN suffix execute
// the identical simulation under different worker counts, so a drift in
// their event counts is a determinism break in the parallel engine — a
// hard failure regardless of tolerance.
func workerParityProblems(results []PerfResult) []string {
	groups := make(map[string][]PerfResult)
	for _, r := range results {
		base := swSuffix.ReplaceAllString(r.Bench, "")
		if base != r.Bench {
			groups[base] = append(groups[base], r)
		}
	}
	bases := make([]string, 0, len(groups))
	for base, rs := range groups {
		if len(rs) > 1 {
			bases = append(bases, base)
		}
	}
	sort.Strings(bases)
	var problems []string
	for _, base := range bases {
		rs := groups[base]
		for _, r := range rs[1:] {
			if r.Events != rs[0].Events {
				problems = append(problems, fmt.Sprintf(
					"%s: dispatched %d events but its worker twin %s dispatched %d (serial/parallel drift)",
					r.Bench, r.Events, rs[0].Bench, rs[0].Events))
			}
			if r.Commits != rs[0].Commits {
				problems = append(problems, fmt.Sprintf(
					"%s: committed %d transactions but its worker twin %s committed %d (serial/parallel drift)",
					r.Bench, r.Commits, rs[0].Bench, rs[0].Commits))
			}
		}
	}
	return problems
}
