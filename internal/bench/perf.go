package bench

import (
	"fmt"
	"time"

	"xssd/internal/chaos"
	"xssd/internal/pm"
	"xssd/internal/sched"
)

// The perf suite: one representative cell per figure plus one chaos seed,
// each returning the number of simulator events it dispatched. The harness
// in cmd/xbench times these against the wall clock (this package stays
// virtual-time only) and writes the canonical BENCH_PR4.json.

// perfChaosSeed picks a chaos scenario with replication enabled so the
// timed cell exercises the transport and fault paths, not just local
// logging. Seed 7 draws two secondaries under DefaultScenario.
const perfChaosSeed = 7

// PerfCell is one timed unit of the perf suite. Run executes the cell to
// completion and reports how many simulator events it dispatched.
type PerfCell struct {
	Name string
	Run  func() (events int64, err error)
}

// PerfCells lists the suite in its canonical order. Each cell builds a
// fresh environment with the same fixed seed its figure uses, so event
// counts are reproducible across runs and machines.
func PerfCells() []PerfCell {
	return []PerfCell{
		{Name: "fig9/Villars-SRAM/w8", Run: func() (int64, error) {
			Fig09Cell("Villars-SRAM", 8)
			return LastCellEvents(), nil
		}},
		{Name: "fig10/sram/wc/64B", Run: func() (int64, error) {
			Fig10Cell(pm.SRAMSpec, false, 64)
			return LastCellEvents(), nil
		}},
		{Name: "fig11/q32K/g16K", Run: func() (int64, error) {
			Fig11Cell(32<<10, 16<<10)
			return LastCellEvents(), nil
		}},
		{Name: "fig12/priority/offer0.60", Run: func() (int64, error) {
			Fig12Cell(sched.ConventionalPriority, 0.60)
			return LastCellEvents(), nil
		}},
		{Name: "fig13/400ns", Run: func() (int64, error) {
			Fig13Cell(400 * time.Nanosecond)
			return LastCellEvents(), nil
		}},
		{Name: fmt.Sprintf("chaos/seed%d", perfChaosSeed), Run: func() (int64, error) {
			sc := chaos.DefaultScenario(perfChaosSeed)
			sc.SimWorkers = engineWorkers
			r, err := chaos.Run(sc)
			if err != nil {
				return 0, err
			}
			if len(r.Violations) > 0 {
				return 0, fmt.Errorf("bench: chaos seed %d violated invariants: %v", perfChaosSeed, r.Violations)
			}
			return r.Events, nil
		}},
		// The /swN twins pin the engine explicitly (independent of
		// -workers): same multi-device topology, different executor
		// counts. Compare demands identical event counts across twins and
		// the wall-clock ratio is the parallel speedup.
		{Name: fmt.Sprintf("pargroup/d%d/sw1", pargroupDevices), Run: func() (int64, error) {
			return PargroupCell(pargroupDevices, 1), nil
		}},
		{Name: fmt.Sprintf("pargroup/d%d/sw8", pargroupDevices), Run: func() (int64, error) {
			return PargroupCell(pargroupDevices, 8), nil
		}},
	}
}
