package bench

import (
	"time"

	"xssd/internal/obs"
	"xssd/internal/sim"
)

// engineWorkers selects the runner for every figure cell: 0 runs each cell
// on a plain single Env (the classic scheduler); n >= 1 runs it inside a
// sim.Group with n quantum executors. Single-device figures (9-12) keep
// one member, so their event streams are byte-identical to the plain
// runner (quantum chopping is invisible to a lone member); fig13 puts the
// secondary on its own member and exchanges NTB traffic at barriers.
var engineWorkers int

// SetEngineWorkers picks the cell runner (the xbench -workers flag). The
// harness is single-threaded, so a package-level switch is acceptable —
// one experiment cell runs at a time.
func SetEngineWorkers(n int) { engineWorkers = n }

// EngineWorkers reports the current cell runner.
func EngineWorkers() int { return engineWorkers }

// cellSim is the per-cell simulation handle: a plain Env under the classic
// runner, a sim.Group (started inline for bring-up) under the parallel
// one. Cells build their topology against env()/member(), call release()
// once setup is done, and drive time through runUntil.
type cellSim struct {
	group *sim.Group
	envs  []*sim.Env
}

// newCellSim opens the cell's root environment with the figure's seed.
func newCellSim(seed int64) *cellSim {
	c := &cellSim{}
	if engineWorkers > 0 {
		c.group = sim.NewGroup(sim.GroupConfig{Workers: engineWorkers, StartInline: true})
		c.envs = []*sim.Env{c.group.NewEnv("m0", seed)}
	} else {
		c.envs = []*sim.Env{sim.NewEnv(seed)}
	}
	return c
}

// env returns the root environment (member 0).
func (c *cellSim) env() *sim.Env { return c.envs[0] }

// member returns a new group member under the parallel runner, or the
// root environment under the classic one — cells place each extra device
// on a member() so the same wiring code builds both topologies.
func (c *cellSim) member(name string, seed int64) *sim.Env {
	if c.group == nil {
		return c.envs[0]
	}
	e := c.group.NewEnv(name, seed)
	c.envs = append(c.envs, e)
	return e
}

// release ends the bring-up phase: group members run concurrently from
// the next barrier on. No-op under the classic runner.
func (c *cellSim) release() {
	if c.group != nil {
		c.group.Parallelize()
	}
}

// runUntil drives the cell to absolute virtual time t.
func (c *cellSim) runUntil(t time.Duration) {
	if c.group != nil {
		c.group.RunUntil(t)
		return
	}
	c.envs[0].RunUntil(t)
}

// now returns the cell's virtual time.
func (c *cellSim) now() time.Duration {
	if c.group != nil {
		return c.group.Now()
	}
	return c.envs[0].Now()
}

// events returns total dispatched events across the cell's members.
func (c *cellSim) events() int64 {
	if c.group != nil {
		return c.group.Events()
	}
	return c.envs[0].Events()
}

// capture records the cell's merged metrics snapshot (the group analogue
// of captureCell; identical bytes for a single member, since snapshots
// are name-sorted either way).
func (c *cellSim) capture(cell string) {
	lastEvents = c.events()
	if activeCapture == nil {
		return
	}
	snaps := make([]*obs.Snapshot, len(c.envs))
	for i, e := range c.envs {
		snaps[i] = obs.For(e).Snapshot()
	}
	activeCapture.cells = append(activeCapture.cells,
		CellMetrics{Cell: cell, Snapshot: obs.Merge(snaps...)})
}

// close releases every parked process goroutine (and the group's worker
// pool); cells defer it so back-to-back cells do not accumulate parked
// goroutines.
func (c *cellSim) close() {
	if c.group != nil {
		c.group.Close()
		return
	}
	c.envs[0].Close()
}
