package bench

import "testing"

// The latency suite's determinism contract: a cell re-run dispatches the
// same events and reports the same virtual-time quantiles, and the
// serial/parallel engines agree bit-for-bit.

func TestLatencyNVMeCellRepeatsExactly(t *testing.T) {
	a := LatencyNVMeCell(4, 8, 1)
	b := LatencyNVMeCell(4, 8, 1)
	if a.Events != b.Events || a.Lat != b.Lat {
		t.Fatalf("re-run drifted: %+v vs %+v", a, b)
	}
	if a.Lat.N == 0 || a.Lat.P50 <= 0 || a.Lat.P999 < a.Lat.P99 || a.Lat.P99 < a.Lat.P50 {
		t.Fatalf("implausible latency digest %+v", a.Lat)
	}
}

func TestLatencyNVMeCellWorkerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("two full latency cells")
	}
	sw1 := latencyNVMeCellPinned(4, 8, 1, 1)
	sw8 := latencyNVMeCellPinned(4, 8, 1, 8)
	if sw1.Events != sw8.Events || sw1.Lat != sw8.Lat {
		t.Fatalf("serial/parallel drift: sw1 %+v vs sw8 %+v", sw1, sw8)
	}
}

func TestLatencyTPCCPipelineBeatsSynchronous(t *testing.T) {
	if testing.Short() {
		t.Skip("two full TPC-C cells")
	}
	pipe1 := LatencyTPCCCell(1)
	pipe16 := LatencyTPCCCell(16)
	// Depth 16 keeps commits in flight across group-commit rounds: it
	// must complete strictly more transactions and cut the median
	// submit→durable latency (the PR's headline effect).
	if pipe16.Lat.N <= pipe1.Lat.N {
		t.Fatalf("pipelined ops %d <= synchronous ops %d", pipe16.Lat.N, pipe1.Lat.N)
	}
	if pipe16.Lat.P50 >= pipe1.Lat.P50 {
		t.Fatalf("pipelined p50 %d >= synchronous p50 %d", pipe16.Lat.P50, pipe1.Lat.P50)
	}
}
