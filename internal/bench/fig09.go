package bench

import (
	"fmt"
	"time"

	"xssd/internal/db"
	"xssd/internal/metrics"
	"xssd/internal/nand"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/tpcc"
	"xssd/internal/villars"
	"xssd/internal/wal"
)

// Fig 9 (§6.1): TPC-C transaction latency and throughput versus worker
// count, for five local-logging setups: No Log, Memory (host NVDIMM),
// Villars-SRAM, Villars-DRAM, and NVMe (the device's conventional side).
//
// Workers execute real TPC-C transactions against the in-memory engine
// with ERMIA-style pipelined commit: each transaction costs a fixed
// compute budget, appends its redo record, and is acknowledged when the
// group-commit pipeline (16 KB groups) makes its LSN durable. Workers run
// ahead of durability by at most the log-buffer size.

// fig9 tuning constants.
const (
	fig9Compute    = 26 * time.Microsecond // per-txn CPU so 8 workers ≈ 300 ktxn/s
	fig9Window     = 120 * time.Millisecond
	fig9Warmup     = 10 * time.Millisecond
	fig9MaxBacklog = 64 << 10 // ERMIA log buffer bound
)

// fig9Workers are the x-axis points.
var fig9Workers = []int{1, 2, 4, 8}

// fig9Setups are the series.
var fig9Setups = []string{"NoLog", "Memory", "Villars-SRAM", "Villars-DRAM", "NVMe"}

// fig9DeviceConfig builds the experiment's device: paper-scale NAND with a
// chosen CMB backing.
func fig9DeviceConfig(name string, backing pm.Spec) villars.Config {
	cfg := villars.DefaultConfig(name)
	cfg.Backing = backing
	// Enough ring depth for the destage pipeline to stream at the array's
	// program bandwidth (cf. the fig10 note on CMB capacity).
	if cfg.Backing.Capacity < 2<<20 {
		cfg.Backing.Capacity = 2 << 20
	}
	cfg.CMBSize = cfg.Backing.Capacity
	cfg.Geometry = nand.Geometry{Channels: 8, WaysPerChan: 8, BlocksPerDie: 64, PagesPerBlock: 64, PageSize: 16 << 10}
	cfg.QueueSize = 32 << 10
	return cfg
}

// fig9DRAMBacking models the Cosmos+ DDR3 under heavy data-buffer sharing:
// the CMB drain competes with destage reads and conventional buffering on
// the same 2 GB/s controller, so its effective intake is a fraction of it.
var fig9DRAMBacking = pm.Spec{
	Class: pm.DRAM, Capacity: 128 << 20, Bandwidth: 2e9,
	Latency: 120 * time.Nanosecond, Persistent: true, SharedFrac: 0.7,
}

// Fig09Cell runs one (setup, workers) cell and reports mean latency and
// committed-transaction throughput.
func Fig09Cell(setup string, workers int) (lat time.Duration, ktps float64) {
	c := newCellSim(42)
	defer c.close()
	env := c.env()
	hostMem := pcie.NewHostMemory(1 << 20)

	var log *wal.Log
	mkLog := func(sink wal.Sink) *wal.Log {
		return wal.NewLog(env, sink, wal.Config{GroupBytes: 16 << 10, GroupTimeout: 10 * time.Millisecond})
	}
	switch setup {
	case "NoLog":
		log = nil
	case "Memory":
		log = mkLog(wal.NewMemorySink(env, pm.NVDIMMSpec))
	case "Villars-SRAM", "Villars-DRAM":
		backing := pm.SRAMSpec
		if setup == "Villars-DRAM" {
			backing = fig9DRAMBacking
		}
		dev := villars.New(env, fig9DeviceConfig("fig9", backing), hostMem)
		ready := make(chan struct{}, 1)
		env.Go("open-sink", func(p *sim.Proc) {
			log = mkLog(wal.NewVillarsSink(p, dev, setup))
			ready <- struct{}{}
		})
		c.runUntil(time.Microsecond)
		<-ready
	case "NVMe":
		dev := villars.New(env, fig9DeviceConfig("fig9", pm.SRAMSpec), hostMem)
		log = mkLog(wal.NewNVMeSink(dev, hostMem, 1<<19, 0, dev.FTL().LogicalPages()/2))
	}

	eng := db.New(env, log)
	cfg := tpcc.DefaultConfig()
	tpcc.Load(eng, cfg, 7)

	var sample metrics.Sample
	committed := 0
	type pendingTxn struct {
		lsn   int64
		start time.Duration
	}
	var fifo []pendingTxn
	arrived := env.NewSignal()

	if log != nil {
		env.Go("latency-tracker", func(p *sim.Proc) {
			for {
				if len(fifo) == 0 {
					p.Wait(arrived)
					continue
				}
				e := fifo[0]
				fifo = fifo[1:]
				log.WaitDurable(p, e.lsn)
				if e.start >= fig9Warmup {
					sample.Add(p.Now() - e.start)
				}
				committed++
			}
		})
	}

	for w := 0; w < workers; w++ {
		w := w
		env.Go(fmt.Sprintf("worker-%d", w), func(p *sim.Proc) {
			client := tpcc.NewClient(eng, cfg, int64(100+w), w%cfg.Warehouses+1)
			for {
				if log != nil {
					log.WaitBacklog(p, fig9MaxBacklog)
				}
				start := p.Now()
				p.Sleep(fig9Compute)
				lsn, ok := runAsyncTxn(p, client)
				if !ok {
					continue
				}
				if log == nil || lsn == 0 {
					if start >= fig9Warmup {
						sample.Add(p.Now() - start)
					}
					committed++
					continue
				}
				fifo = append(fifo, pendingTxn{lsn: lsn, start: start})
				arrived.Broadcast()
			}
		})
	}
	c.release()
	c.runUntil(fig9Window)
	c.capture(fmt.Sprintf("fig9/%s/w%d", setup, workers))
	window := (fig9Window - fig9Warmup).Seconds()
	return sample.Mean(), float64(committed) / window / 1000
}

// runAsyncTxn executes one mixed TPC-C transaction with pipelined commit
// (conflict retries happen inside the client). ok is false if the
// transaction ultimately aborted.
func runAsyncTxn(p *sim.Proc, client *tpcc.Client) (int64, bool) {
	lsn, err := client.RunMixAsync(p)
	return lsn, err == nil
}

// Fig09 regenerates the paper's Figure 9.
func Fig09() *Table {
	t := &Table{
		Title:  "Fig 9 — TPC-C logging to local storage (latency / throughput vs workers)",
		Note:   "ERMIA-style pipelined commit, 16 KB group commit, 16 warehouses (scaled rows)",
		Header: []string{"setup", "workers", "avg latency", "ktxn/s"},
	}
	for _, setup := range fig9Setups {
		for _, w := range fig9Workers {
			lat, ktps := Fig09Cell(setup, w)
			t.Add(setup, fmt.Sprintf("%d", w), fmtDur(lat), fmt.Sprintf("%.1f", ktps))
		}
	}
	return t
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
