package bench

import (
	"fmt"
	"time"

	"xssd/internal/metrics"
	"xssd/internal/nand"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/villars"
	"xssd/internal/xapi"
)

// Fig 11 (§6.3): effect of the CMB intake-queue size. A writer issues
// group-commit-sized writes (XPwrite + XFsync), sweeping the write size
// (x-axis) against the queue size (series). A queue smaller than the
// write forces mid-write credit pauses; the paper finds 32 KB covers all
// OLTP group-commit sizes.

var (
	fig11QueueSizes = []int{4 << 10, 8 << 10, 16 << 10, 32 << 10}
	fig11GroupSizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
)

const fig11Window = 30 * time.Millisecond

func Fig11Cell(queueSize, groupSize int) (lat time.Duration, mbps float64) {
	c := newCellSim(1)
	defer c.close()
	env := c.env()
	cfg := villars.DefaultConfig("fig11")
	cfg.Backing = pm.SRAMSpec
	// A roomy ring keeps the destage pipeline off the critical path so the
	// intake queue is the variable under test.
	cfg.Backing.Capacity = 8 << 20
	cfg.CMBSize = 8 << 20
	cfg.QueueSize = queueSize
	cfg.Geometry = nand.Geometry{Channels: 8, WaysPerChan: 8, BlocksPerDie: 64, PagesPerBlock: 64, PageSize: 16 << 10}
	dev := villars.New(env, cfg, pcie.NewHostMemory(1<<20))

	var sample metrics.Sample
	var bytes int64
	env.Go("writer", func(p *sim.Proc) {
		l := xapi.Open(p, dev, xapi.Options{})
		buf := make([]byte, groupSize)
		for {
			t0 := p.Now()
			l.XPwrite(p, buf)
			if err := l.XFsync(p); err != nil {
				return
			}
			sample.Add(p.Now() - t0)
			bytes += int64(groupSize)
		}
	})
	c.release()
	c.runUntil(fig11Window)
	c.capture(fmt.Sprintf("fig11/q%dK/g%dK", queueSize>>10, groupSize>>10))
	return sample.Mean(), float64(bytes) / fig11Window.Seconds() / 1e6
}

// Fig11 regenerates the paper's Figure 11: latency (top) and throughput
// (bottom) of group-commit sizes across queue sizes, SRAM backing.
func Fig11() []*Table {
	lat := &Table{
		Title:  "Fig 11 (top) — XPwrite+XFsync latency vs group-commit size, per CMB queue size",
		Header: []string{"group size"},
	}
	thr := &Table{
		Title:  "Fig 11 (bottom) — throughput (MB/s) vs group-commit size, per CMB queue size",
		Header: []string{"group size"},
	}
	for _, q := range fig11QueueSizes {
		lat.Header = append(lat.Header, fmt.Sprintf("q=%dKB", q>>10))
		thr.Header = append(thr.Header, fmt.Sprintf("q=%dKB", q>>10))
	}
	for _, g := range fig11GroupSizes {
		latRow := []string{fmt.Sprintf("%dKB", g>>10)}
		thrRow := []string{fmt.Sprintf("%dKB", g>>10)}
		for _, q := range fig11QueueSizes {
			l, m := Fig11Cell(q, g)
			latRow = append(latRow, fmtDur(l))
			thrRow = append(thrRow, fmt.Sprintf("%.0f", m))
		}
		lat.Add(latRow...)
		thr.Add(thrRow...)
	}
	return []*Table{lat, thr}
}
