package bench

import (
	"fmt"
	"time"

	"xssd/internal/nand"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sched"
	"xssd/internal/sim"
	"xssd/internal/villars"
	"xssd/internal/xapi"
)

// Fig 12 (§6.4): opportunistic destaging. A conventional workload sized at
// 50% of the array's program bandwidth shares the device with a fast-side
// workload swept from 30% to 60%. Under Neutral scheduling the two
// interfere past device capacity; under Conventional Priority the
// conventional stream is preserved and the destage stream fills the gaps.

var fig12FastOffers = []float64{0.30, 0.40, 0.50, 0.60}

const (
	fig12ConvOffer = 0.50
	fig12Window    = 400 * time.Millisecond
	fig12Writers   = 64 // conventional-side parallel writers (enough to fill the offered rate at TProg latency)
)

func fig12Device(env *sim.Env, policy sched.Policy) *villars.Device {
	cfg := villars.DefaultConfig("fig12")
	cfg.Backing = pm.DRAMSpec  // large ring to absorb destage backlogs
	cfg.Backing.SharedFrac = 0 // isolate the effect to the scheduler
	cfg.Policy = policy
	cfg.Geometry = nand.Geometry{Channels: 8, WaysPerChan: 8, BlocksPerDie: 256, PagesPerBlock: 64, PageSize: 16 << 10}
	cfg.QueueSize = 64 << 10
	cfg.DestageLBAs = 4096
	return villars.New(env, cfg, pcie.NewHostMemory(1<<21))
}

// Fig12Cell returns achieved (conventional, fast) throughput as fractions
// of the array program bandwidth.
func Fig12Cell(policy sched.Policy, fastOffer float64) (conv, fast float64) {
	c := newCellSim(3)
	defer c.close()
	env := c.env()
	dev := fig12Device(env, policy)
	geo := dev.Array().Geometry()
	progBW := geo.ProgramBandwidth(dev.Array().Timing())
	pageSize := geo.PageSize

	// Conventional load: parallel writers against the FTL's conventional
	// class, jointly paced at fig12ConvOffer of the program bandwidth,
	// placed in the LBA range above the destage ring.
	interval := time.Duration(float64(pageSize) / (fig12ConvOffer * progBW) * 1e9 * fig12Writers)
	page := make([]byte, pageSize)
	for w := 0; w < fig12Writers; w++ {
		w := w
		env.Go("conv-writer", func(p *sim.Proc) {
			lba := int64(8192 + w)
			p.Sleep(time.Duration(w) * interval / fig12Writers) // stagger
			for {
				t0 := p.Now()
				if err := dev.FTL().Write(p, lba, page, sched.Conventional); err != nil {
					return
				}
				lba += fig12Writers
				if wait := interval - (p.Now() - t0); wait > 0 {
					p.Sleep(wait)
				}
			}
		})
	}

	// Fast load: one CMB writer paced at fastOffer of the program
	// bandwidth; the destage module turns it into Destage-class programs.
	env.Go("fast-writer", func(p *sim.Proc) {
		l := xapi.Open(p, dev, xapi.Options{})
		chunk := make([]byte, 8<<10)
		chunkInterval := time.Duration(float64(len(chunk)) / (fastOffer * progBW) * 1e9)
		for {
			t0 := p.Now()
			l.XPwrite(p, chunk)
			if wait := chunkInterval - (p.Now() - t0); wait > 0 {
				p.Sleep(wait)
			}
		}
	})

	// Measure steady state: skip the first quarter of the window.
	c.release()
	warm := fig12Window / 4
	c.runUntil(warm)
	convStart := dev.Scheduler().BytesBySource(sched.Conventional)
	fastStart := dev.Scheduler().BytesBySource(sched.Destage)
	c.runUntil(fig12Window)
	c.capture(fmt.Sprintf("fig12/%s/offer%.0f", policy, fastOffer*100))
	window := (fig12Window - warm).Seconds()
	conv = float64(dev.Scheduler().BytesBySource(sched.Conventional)-convStart) / window / progBW
	fast = float64(dev.Scheduler().BytesBySource(sched.Destage)-fastStart) / window / progBW
	return conv, fast
}

// Fig12 regenerates the paper's Figure 12: Neutral (left) and
// Conventional Priority (right).
func Fig12() []*Table {
	var out []*Table
	for _, policy := range []sched.Policy{sched.Neutral, sched.ConventionalPriority} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 12 — opportunistic destaging, %s scheduling", policy),
			Note:   fmt.Sprintf("conventional offered load fixed at %.0f%% of program bandwidth", fig12ConvOffer*100),
			Header: []string{"fast offered", "conventional achieved", "fast achieved", "total"},
		}
		for _, offer := range fig12FastOffers {
			conv, fast := Fig12Cell(policy, offer)
			t.Add(fmt.Sprintf("%.0f%%", offer*100),
				fmt.Sprintf("%.0f%%", conv*100),
				fmt.Sprintf("%.0f%%", fast*100),
				fmt.Sprintf("%.0f%%", (conv+fast)*100))
		}
		out = append(out, t)
	}
	return out
}
