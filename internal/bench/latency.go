package bench

import (
	"fmt"
	"time"

	"xssd/internal/db"
	"xssd/internal/nand"
	"xssd/internal/nvme"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/tpcc"
	"xssd/internal/villars"
	"xssd/internal/wal"
)

// The latency suite (xbench -suite latency): where the perf suite asks
// "how many events per second", this suite asks "where is the tail". Two
// cell families sweep the multi-queue host interface:
//
//   - lat/nvme/qP/dD/cK: P queue pairs, D async writes in flight per
//     queue, completion interrupts coalesced K-at-a-time (c1 = off). The
//     reported histogram is the driver's submit→complete series merged
//     across queues.
//   - lat/tpcc/pipeD: TPC-C terminals committing through a depth-D
//     wal.Pipeline on a Villars-SRAM log device; the histogram is the
//     pipeline's submit→durable series merged across terminals.
//
// Everything runs on virtual time, so every quantile is deterministic:
// the compare gate demands exact equality against BENCH_PR8.json, the
// same way it demands exact event counts. The /swN twins pin the
// parallel engine at 1 and 8 workers over the same topology — their
// event counts and quantiles must match bit-for-bit.

// latency suite tuning constants.
const (
	latWindow     = 40 * time.Millisecond // raw NVMe sweep window
	latTPCCWindow = 60 * time.Millisecond // TPC-C pipeline window
	latTPCCJobs   = 4                     // TPC-C terminals
	latSeed       = 42
)

// LatencyMeasurement is one cell's outcome: the dispatched event count
// (the determinism anchor) and the latency digest.
type LatencyMeasurement struct {
	Events int64
	Lat    obs.Summary
}

// LatencyCell is one timed unit of the latency suite.
type LatencyCell struct {
	Name string
	Run  func() (LatencyMeasurement, error)
}

// LatencyCells lists the suite in canonical order: a queue-count sweep,
// an in-flight-depth sweep, a coalescing ablation, the serial/parallel
// twins, and the TPC-C pipelined-commit pair.
func LatencyCells() []LatencyCell {
	cells := []LatencyCell{}
	add := func(name string, run func() (LatencyMeasurement, error)) {
		cells = append(cells, LatencyCell{Name: name, Run: run})
	}
	for _, pairs := range []int{1, 4, 8} {
		pairs := pairs
		add(fmt.Sprintf("lat/nvme/q%d/d8/c1", pairs), func() (LatencyMeasurement, error) {
			return LatencyNVMeCell(pairs, 8, 1), nil
		})
	}
	for _, depth := range []int{1, 32} {
		depth := depth
		add(fmt.Sprintf("lat/nvme/q4/d%d/c1", depth), func() (LatencyMeasurement, error) {
			return LatencyNVMeCell(4, depth, 1), nil
		})
	}
	add("lat/nvme/q4/d8/c8", func() (LatencyMeasurement, error) {
		return LatencyNVMeCell(4, 8, 8), nil
	})
	for _, sw := range []int{1, 8} {
		sw := sw
		add(fmt.Sprintf("lat/nvme/q4/d8/c1/sw%d", sw), func() (LatencyMeasurement, error) {
			return latencyNVMeCellPinned(4, 8, 1, sw), nil
		})
	}
	for _, depth := range []int{1, 16} {
		depth := depth
		add(fmt.Sprintf("lat/tpcc/pipe%d", depth), func() (LatencyMeasurement, error) {
			return LatencyTPCCCell(depth), nil
		})
	}
	return cells
}

// latencyDeviceConfig builds the sweep's device: a small 4×4 array of
// 4 KB pages so per-command costs, not array parallelism, dominate the
// tail, with the multi-queue host interface under test.
func latencyDeviceConfig(pairs, depth, coalesce int) villars.Config {
	cfg := villars.DefaultConfig("lat")
	cfg.Geometry = nand.Geometry{Channels: 4, WaysPerChan: 4, BlocksPerDie: 64, PagesPerBlock: 64, PageSize: 4 << 10}
	cfg.HostQueues = pairs
	cfg.HostQueueDepth = depth
	cfg.CoalesceOps = coalesce // fillDefaults supplies the 8 µs time bound
	return cfg
}

// LatencyNVMeCell drives one submitter process per queue pair, each
// keeping depth one-block writes in flight on its own queue through the
// async driver surface, and digests the per-queue submit→complete
// histograms.
func LatencyNVMeCell(pairs, depth, coalesce int) LatencyMeasurement {
	c := newCellSim(latSeed)
	defer c.close()
	env := c.env()
	hostMem := pcie.NewHostMemory(1 << 20)
	dev := villars.New(env, latencyDeviceConfig(pairs, depth, coalesce), hostMem)
	drv := dev.HostDriver()
	bs := int64(4 << 10)

	// Each queue owns a private LBA stripe above the destage ring, wrapped
	// so the cell's footprint stays bounded. Write sizes cycle 1–4 blocks
	// per (queue, index) — deterministic variance, so the histogram has an
	// actual tail instead of one repeated service time.
	base := dev.FTL().LogicalPages() / 2
	stripe := int64(1024)
	for q := 0; q < pairs; q++ {
		q := q
		env.Go(fmt.Sprintf("lat-submit-%d", q), func(p *sim.Proc) {
			var window []nvme.Token
			var off int64
			for i := int64(0); ; i++ {
				blocks := 1 + int((i+int64(q*3))%4)
				if i%64 == 0 {
					// A rare large write: the deterministic tail event
					// that separates p999 from p50.
					blocks = 16
				}
				lba := base + int64(q)*stripe + off
				off = (off + int64(blocks)) % (stripe - 16)
				tok := drv.SubmitAsync(p, q, nvme.Command{
					Opcode: nvme.OpWrite, LBA: lba, Blocks: blocks, PRP: int64(q) * 16 * bs,
				})
				window = append(window, tok)
				if len(window) >= depth {
					drv.Wait(p, window[0])
					window = window[1:]
				}
				if i%12 == 11 {
					// Periodic think time long enough to drain the queue:
					// the next few submissions see an idle device while the
					// rest see full queueing, spreading the histogram over
					// several buckets instead of one saturated mode.
					for _, t := range window {
						drv.Wait(p, t)
					}
					window = window[:0]
					p.Sleep(150 * time.Microsecond)
				}
			}
		})
	}
	c.release()
	c.runUntil(latWindow)
	c.capture(fmt.Sprintf("lat/nvme/q%d/d%d/c%d", pairs, depth, coalesce))

	hists := make([]*obs.Histogram, pairs)
	for q := 0; q < pairs; q++ {
		hists[q] = drv.Latency(q)
	}
	return LatencyMeasurement{Events: c.events(), Lat: obs.SummaryOf(hists...)}
}

// latencyNVMeCellPinned runs the cell with the engine pinned to sw
// quantum executors regardless of the -workers flag — the /swN twins the
// compare gate holds to bit-identical results.
func latencyNVMeCellPinned(pairs, depth, coalesce, sw int) LatencyMeasurement {
	prev := engineWorkers
	SetEngineWorkers(sw)
	defer SetEngineWorkers(prev)
	return LatencyNVMeCell(pairs, depth, coalesce)
}

// LatencyTPCCCell runs TPC-C terminals on the pipelined CommitAsync path
// (tpcc.Config.PipelineDepth) against a Villars-SRAM log device and
// digests the pipelines' submit→durable histograms.
func LatencyTPCCCell(pipeDepth int) LatencyMeasurement {
	c := newCellSim(latSeed)
	defer c.close()
	env := c.env()
	hostMem := pcie.NewHostMemory(1 << 20)
	dev := villars.New(env, fig9DeviceConfig("lattpcc", pm.SRAMSpec), hostMem)

	var log *wal.Log
	ready := make(chan struct{}, 1)
	env.Go("open-sink", func(p *sim.Proc) {
		log = wal.NewLog(env, wal.NewVillarsSink(p, dev, "lattpcc"),
			wal.Config{GroupBytes: 16 << 10, GroupTimeout: 10 * time.Millisecond})
		ready <- struct{}{}
	})
	c.runUntil(time.Microsecond)
	<-ready

	eng := db.New(env, log)
	cfg := tpcc.DefaultConfig()
	cfg.PipelineDepth = pipeDepth
	tpcc.Load(eng, cfg, 7)

	clients := make([]*tpcc.Client, latTPCCJobs)
	sc := obs.For(env).Scope("lattpcc/pipe")
	for w := 0; w < latTPCCJobs; w++ {
		wcfg := cfg
		wcfg.PipelineScope = sc.Sub(fmt.Sprintf("w%d", w))
		clients[w] = tpcc.NewClient(eng, wcfg, int64(100+w), w%cfg.Warehouses+1)
		client := clients[w]
		env.Go(fmt.Sprintf("lat-term-%d", w), func(p *sim.Proc) {
			for {
				p.Sleep(fig9Compute)
				_, _ = client.RunMix(p) // conflicts retry inside the client
			}
		})
	}
	c.release()
	c.runUntil(latTPCCWindow)
	c.capture(fmt.Sprintf("lat/tpcc/pipe%d", pipeDepth))

	hists := make([]*obs.Histogram, latTPCCJobs)
	for w, cl := range clients {
		hists[w] = cl.Pipeline().Latency()
	}
	return LatencyMeasurement{Events: c.events(), Lat: obs.SummaryOf(hists...)}
}
