package bench

import (
	"fmt"
	"time"

	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/xapi"
)

// The pargroup cells measure what the parallel engine buys on aggregate
// simulation throughput: N independent devices, each on its own group
// member with its own fast-side writer, no cross-member traffic. The
// topology is identical at every worker count, so the event count is too
// (Compare enforces it across /swN twins); only the wall clock moves.

const (
	pargroupDevices = 8
	pargroupWindow  = 20 * time.Millisecond
	// With no cross-member traffic there is no lookahead bound, so the
	// quantum only sets barrier overhead. Keep it large.
	pargroupQuantum = 100 * time.Microsecond
)

// PargroupCell runs devices independent members under simWorkers quantum
// executors and reports the total events dispatched.
func PargroupCell(devices, simWorkers int) int64 {
	g := sim.NewGroup(sim.GroupConfig{Workers: simWorkers, Quantum: pargroupQuantum})
	defer g.Close()
	for i := 0; i < devices; i++ {
		env := g.NewEnv(fmt.Sprintf("d%d", i), int64(1000+i))
		dev := fig10Device(env, pm.SRAMSpec)
		env.Go("writer", func(p *sim.Proc) {
			l := xapi.Open(p, dev, xapi.Options{})
			buf := make([]byte, 256)
			for {
				l.XPwrite(p, buf)
			}
		})
	}
	g.RunUntil(pargroupWindow)
	return g.Events()
}
