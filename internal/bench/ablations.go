package bench

import (
	"fmt"
	"time"

	"xssd/internal/core"
	"xssd/internal/metrics"
	"xssd/internal/nand"
	"xssd/internal/ntb"
	"xssd/internal/nvme"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sched"
	"xssd/internal/sim"
	"xssd/internal/villars"
	"xssd/internal/xapi"
)

// Ablations for the design choices DESIGN.md calls out.

// AblationPolicy sweeps all three destage scheduling policies at the
// paper's contention point (conventional 50% + fast 50%).
func AblationPolicy() *Table {
	t := &Table{
		Title:  "Ablation — destage scheduling policy at 50%+50% offered load",
		Header: []string{"policy", "conventional achieved", "fast achieved"},
	}
	for _, policy := range []sched.Policy{sched.Neutral, sched.DestagePriority, sched.ConventionalPriority} {
		conv, fast := Fig12Cell(policy, 0.50)
		t.Add(policy.String(), fmt.Sprintf("%.0f%%", conv*100), fmt.Sprintf("%.0f%%", fast*100))
	}
	return t
}

// AblationScheme compares the commit latency the database observes under
// the three replication schemes with two secondaries: eager waits for the
// slowest replica, lazy only for local persistence, chain for the tail.
func AblationScheme() *Table {
	t := &Table{
		Title:  "Ablation — replication scheme vs XPwrite+XFsync latency (two secondaries)",
		Header: []string{"scheme", "p50 latency", "p75 latency"},
	}
	for _, scheme := range []core.ReplicationScheme{core.Lazy, core.Chain, core.Eager} {
		c := ablationSchemeCell(scheme)
		t.Add(scheme.String(), fmtDur(c.P50), fmtDur(c.P75))
	}
	return t
}

func ablationSchemeCell(scheme core.ReplicationScheme) metrics.Candlestick {
	c := newCellSim(5)
	defer c.close()
	env := c.env()
	prim := fig13Device(env, "prim", 400*time.Nanosecond)
	sec1 := fig13Device(c.member("sec1", 6), "sec1", 400*time.Nanosecond)
	sec2 := fig13Device(c.member("sec2", 7), "sec2", 400*time.Nanosecond)
	for i, sec := range []*villars.Device{sec1, sec2} {
		prim.Transport().AddPeer(sec,
			ntb.NewDefaultBridgeTo(env, sec.Env(), fmt.Sprintf("p-s%d", i)),
			ntb.NewDefaultBridgeTo(sec.Env(), env, fmt.Sprintf("s%d-p", i)))
		setRoles(c, prim, sec)
	}
	prim.Transport().SetScheme(scheme)
	var sample metrics.Sample
	env.Go("writer", func(p *sim.Proc) {
		l := xapi.Open(p, prim, xapi.Options{})
		buf := make([]byte, 256)
		for {
			t0 := p.Now()
			l.XPwrite(p, buf)
			if err := l.XFsync(p); err != nil {
				return
			}
			sample.Add(p.Now() - t0)
			p.Sleep(2 * time.Microsecond)
		}
	})
	c.release()
	c.runUntil(c.now() + 4*time.Millisecond)
	c.capture("ablation-scheme/" + scheme.String())
	return sample.Candlestick()
}

// AblationCredit compares the two credit-check strategies of §5.1: the
// paper's winner (use all credits, then re-read) against re-reading the
// counter before every chunk.
func AblationCredit() *Table {
	t := &Table{
		Title:  "Ablation — XPwrite credit-check strategy (§5.1)",
		Header: []string{"strategy", "throughput MB/s", "credit reads / MB"},
	}
	for _, strat := range []xapi.CreditStrategy{xapi.UseAllCredits, xapi.CheckEveryChunk} {
		name := "use-all-credits"
		if strat == xapi.CheckEveryChunk {
			name = "check-every-chunk"
		}
		mbps, readsPerMB := ablationCreditCell(strat)
		t.Add(name, fmt.Sprintf("%.0f", mbps), fmt.Sprintf("%.0f", readsPerMB))
	}
	return t
}

func ablationCreditCell(strat xapi.CreditStrategy) (mbps, readsPerMB float64) {
	env := sim.NewEnv(1)
	dev := fig10Device(env, pm.SRAMSpec)
	var reads int64
	env.Go("writer", func(p *sim.Proc) {
		l := xapi.Open(p, dev, xapi.Options{Strategy: strat})
		buf := make([]byte, 4096)
		for {
			l.XPwrite(p, buf)
			reads = l.CreditReads()
		}
	})
	env.RunUntil(20 * time.Millisecond)
	name := "use-all-credits"
	if strat == xapi.CheckEveryChunk {
		name = "check-every-chunk"
	}
	captureCell("ablation-credit/"+name, env)
	bytes := float64(dev.CMB().Ring().Frontier())
	mb := bytes / 1e6
	if mb == 0 {
		return 0, 0
	}
	return mb / 0.020, float64(reads) / mb
}

// AblationBacking sweeps the CMB backing class for a fixed log workload,
// adding the host-NVDIMM and conventional-NVMe reference points — the
// microbenchmark behind Fig 9's ordering.
func AblationBacking() *Table {
	t := &Table{
		Title:  "Ablation — 16 KB log-flush latency per backing class",
		Header: []string{"path", "p50 flush latency"},
	}
	// Villars fast side per backing.
	for _, backing := range []pm.Spec{pm.SRAMSpec, pm.DRAMSpec} {
		env := sim.NewEnv(1)
		dev := fig10Device(env, backing)
		var sample metrics.Sample
		env.Go("writer", func(p *sim.Proc) {
			l := xapi.Open(p, dev, xapi.Options{})
			buf := make([]byte, 16<<10)
			for {
				t0 := p.Now()
				l.XPwrite(p, buf)
				if err := l.XFsync(p); err != nil {
					return
				}
				sample.Add(p.Now() - t0)
				p.Sleep(50 * time.Microsecond)
			}
		})
		env.RunUntil(20 * time.Millisecond)
		captureCell(fmt.Sprintf("ablation-backing/villars-%s", backing.Class), env)
		t.Add(fmt.Sprintf("Villars-%s", backing.Class), fmtDur(sample.Candlestick().P50))
	}
	// Host NVDIMM stores.
	{
		env := sim.NewEnv(1)
		bank := pm.NewBank(env, pm.NVDIMMSpec)
		var sample metrics.Sample
		env.Go("writer", func(p *sim.Proc) {
			for {
				t0 := p.Now()
				bank.Write(p, 16<<10)
				sample.Add(p.Now() - t0)
				p.Sleep(50 * time.Microsecond)
			}
		})
		env.RunUntil(20 * time.Millisecond)
		captureCell("ablation-backing/nvdimm", env)
		t.Add("Memory (NVDIMM)", fmtDur(sample.Candlestick().P50))
	}
	// Conventional NVMe write.
	{
		env := sim.NewEnv(1)
		hostMem := pcie.NewHostMemory(1 << 20)
		cfg := villars.DefaultConfig("abl")
		cfg.Geometry = nand.Geometry{Channels: 8, WaysPerChan: 8, BlocksPerDie: 64, PagesPerBlock: 64, PageSize: 16 << 10}
		dev := villars.New(env, cfg, hostMem)
		var sample metrics.Sample
		env.Go("writer", func(p *sim.Proc) {
			lba := int64(0)
			for {
				t0 := p.Now()
				c := dev.HostDriver().Submit(p, nvmeWrite(lba, 1, 0))
				if c.Status != 0 {
					return
				}
				sample.Add(p.Now() - t0)
				lba++
				p.Sleep(50 * time.Microsecond)
			}
		})
		env.RunUntil(20 * time.Millisecond)
		captureCell("ablation-backing/nvme", env)
		t.Add("NVMe (conventional)", fmtDur(sample.Candlestick().P50))
	}
	return t
}

// nvmeWrite builds a one-block NVMe write command.
func nvmeWrite(lba int64, blocks int, prp int64) nvme.Command {
	return nvme.Command{Opcode: nvme.OpWrite, LBA: lba, Blocks: blocks, PRP: prp}
}
