// Cross-shard RPC: the cluster's only inter-member channel. Every
// message rides Env.PostTo — the group mailbox, merged at quantum
// barriers in (time, sender, seq) order — so delivery order is a pure
// function of the simulation and never of worker interleaving. On the
// classic engine PostTo degrades to a local timer and the very same code
// runs on one Env.
//
// Fault surface: every message checks the fault.ShardRPC point.
// Requests check on the sender's injector, replies on the replier's —
// both scoped to the *remote* end's shard name for requests and the
// replier's own name for replies, so one "shard.rpc@p1" rule disturbs
// shard 1's traffic in both directions. Drop and fail lose the message
// (the caller times out); delay and freeze add their duration to the
// wire latency.
package shard

import (
	"time"

	"xssd/internal/fault"
	"xssd/internal/sim"
)

// rpc runs handler on dst's Env and blocks until the reply lands back on
// s's Env or timeout passes, reporting whether the reply arrived.
// handler executes at delivery time in dst's event context; it must
// invoke its reply closure exactly once — immediately, or later from a
// process it spawned on dst's Env when the work blocks (prepare's
// durability wait). The mutation passed to reply runs on s's Env right
// before the caller wakes, which is the only legal way to move reply
// data across members.
//
//xssd:conduit request and reply both travel by PostTo and run in the receiving member's own Env
func (s *Shard) rpc(p *sim.Proc, dst *Shard, timeout time.Duration, handler func(dst *Shard, reply func(mut func()))) bool {
	s.mRPCOut.Inc()
	sig := s.env.NewSignal()
	done := false
	reply := func(mut func()) {
		// Runs on dst's Env. The reply leg draws its fault decision from
		// dst's injector: a frozen participant cannot answer promptly.
		d := fault.CheckEnv(dst.env, fault.ShardRPC, dst.name, 1)
		if d.Fail() || d.Drop() {
			return
		}
		dst.env.PostTo(s.env, dst.env.Now()+s.c.cfg.RPCLatency+d.Dur, func() {
			if mut != nil {
				mut()
			}
			done = true
			sig.Broadcast()
		})
	}
	d := fault.CheckEnv(s.env, fault.ShardRPC, dst.name, 1)
	if !d.Fail() && !d.Drop() {
		s.env.PostTo(dst.env, s.env.Now()+s.c.cfg.RPCLatency+d.Dur, func() {
			dst.mRPCIn.Inc()
			handler(dst, reply)
		})
	}
	deadline := p.Now() + timeout
	s.env.At(deadline, sig.Broadcast)
	p.WaitFor(sig, func() bool { return done || p.Now() >= deadline })
	return done
}

// post sends a one-way message: fn runs on dst's Env after the wire
// latency, or never (dropped by a fault rule). Used for buffered remote
// writes and abort notices — losses are caught by the prepare op-count
// check or are harmless (abort is the presumed outcome anyway).
//
//xssd:conduit one-way PostTo: fn runs in dst's own Env after the wire latency
func (s *Shard) post(dst *Shard, fn func(dst *Shard)) {
	s.mRPCOut.Inc()
	d := fault.CheckEnv(s.env, fault.ShardRPC, dst.name, 1)
	if d.Fail() || d.Drop() {
		return
	}
	s.env.PostTo(dst.env, s.env.Now()+s.c.cfg.RPCLatency+d.Dur, func() {
		dst.mRPCIn.Inc()
		fn(dst)
	})
}
