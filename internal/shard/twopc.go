// The cross-shard transaction API and the two-phase commit protocol.
//
// A Tx is homed on the shard that begins it: local rows go straight into
// an ordinary db.Tx, remote reads are RPCs into a participant-side
// transaction on the owning shard (read-your-writes included), and
// remote writes are one-way buffered ops. A purely local Tx commits on
// the plain single-shard path — byte for byte the same events as a
// cluster of one.
//
// Cross-shard commit (presumed abort):
//
//	coordinator                      participant
//	local Prepare (pin rows)
//	PREPARE(gid, nOps) ──────────▶   count check, validate, pin,
//	                                 log PREPARE{writes}, wait durable
//	           ◀────────── vote yes/no
//	all yes: log DECISION{participants, local writes}, wait durable
//	  = the commit point; then apply local writes
//	COMMIT(gid) ─────────────────▶   apply pinned writes,
//	                                 log COMMITP (no wait)
//	           ◀────────── ack (bounded wait)
//
// Any no-vote, timeout, or a coordinator log that dies before the
// decision is durable aborts everywhere; a participant left in doubt
// (lost decision) re-asks the coordinator's outcome table from a
// resolver process until the answer arrives. Only the durable DECISION
// record commits a gid — recovery treats everything else as abort.
package shard

import (
	"fmt"
	"sort"

	"xssd/internal/db"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// Tx is one (possibly distributed) transaction homed on a shard.
type Tx struct {
	home  *Shard
	local *db.Tx
	gid   int64
	parts map[int]*partRef
	order []int // participant ids, first-touch order until Commit sorts it
	done  bool
}

// partRef is the coordinator's view of one participant.
type partRef struct {
	writes int // ops sent; the participant must have received exactly this many
}

// Begin starts a transaction homed on s. All methods must be called from
// a process on s's Env.
func (s *Shard) Begin() *Tx {
	return &Tx{home: s, local: s.eng.Begin()}
}

// GID returns the transaction's global id (0 until a remote row is
// touched — purely local transactions never allocate one).
func (t *Tx) GID() int64 { return t.gid }

// ID returns the home engine's local transaction id (unique per home
// engine; usable as a key disambiguator for home-owned rows).
func (t *Tx) ID() int64 { return t.local.ID() }

// part registers sid as a participant (allocating the gid on first
// remote touch) and returns its ref.
func (t *Tx) part(sid int) *partRef {
	if t.gid == 0 {
		t.home.nextSeq++
		t.gid = int64(t.home.id+1)<<48 | t.home.nextSeq
	}
	pr := t.parts[sid]
	if pr == nil {
		if t.parts == nil {
			t.parts = map[int]*partRef{}
		}
		pr = &partRef{}
		t.parts[sid] = pr
		t.order = append(t.order, sid)
	}
	return pr
}

// GetW reads a row owned by the given warehouse, routing to its shard.
// Local reads hit the home engine directly; remote reads run inside the
// owning shard's participant transaction (observing this transaction's
// own earlier remote writes) and register in its read set, so prepare
// validates them — OCC serializability spans shards. A peer that cannot
// be reached returns ErrUnavailable.
func (t *Tx) GetW(p *sim.Proc, warehouse int, table, key string) ([]byte, bool, error) {
	sid := t.home.c.ShardOf(warehouse)
	if sid == t.home.id {
		v, ok := t.local.Get(table, key)
		return v, ok, nil
	}
	t.part(sid)
	gid, coord := t.gid, t.home.id
	var val []byte
	var ok bool
	reached := t.home.rpc(p, t.home.c.shards[sid], t.home.c.cfg.RPCTimeout, func(dst *Shard, reply func(mut func())) {
		pt := dst.partyFor(gid, coord)
		v, o := pt.tx.Get(table, key)
		// Copy before crossing members: the engine's row buffer belongs
		// to dst and a later write there may replace it mid-flight.
		v = append([]byte(nil), v...)
		reply(func() { val, ok = v, o })
	})
	if !reached {
		return nil, false, ErrUnavailable
	}
	return val, ok, nil
}

// PutW buffers a row write routed by warehouse, taking ownership of val.
// Remote writes are one-way messages; a lost one is caught at prepare by
// the op-count check, so it aborts the transaction rather than committing
// a hole.
func (t *Tx) PutW(warehouse int, table, key string, val []byte) {
	sid := t.home.c.ShardOf(warehouse)
	if sid == t.home.id {
		t.local.PutOwned(table, key, val)
		return
	}
	t.part(sid).writes++
	gid, coord := t.gid, t.home.id
	t.home.post(t.home.c.shards[sid], func(dst *Shard) {
		pt := dst.partyFor(gid, coord)
		pt.writes++
		pt.tx.PutOwnedIn(dst.eng.Table(table), key, val)
	})
}

// DeleteW buffers a row deletion routed by warehouse.
func (t *Tx) DeleteW(warehouse int, table, key string) {
	sid := t.home.c.ShardOf(warehouse)
	if sid == t.home.id {
		t.local.Delete(table, key)
		return
	}
	t.part(sid).writes++
	gid, coord := t.gid, t.home.id
	t.home.post(t.home.c.shards[sid], func(dst *Shard) {
		pt := dst.partyFor(gid, coord)
		pt.writes++
		pt.tx.DeleteIn(dst.eng.Table(table), key)
	})
}

// Abort discards the transaction everywhere. Participant notices are
// one-way and best-effort: a participant that never hears it holds no
// pins (it never prepared), and a prepared one resolves through the
// coordinator's outcome table.
func (t *Tx) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.local.Abort()
	if len(t.parts) == 0 {
		return
	}
	t.home.outcomes[t.gid] = false
	t.home.mAborts2PC.Inc()
	for _, sid := range t.order {
		gid := t.gid
		t.home.post(t.home.c.shards[sid], func(dst *Shard) { dst.finish(gid, false) })
	}
}

// Commit finishes the transaction. With no remote participants it is
// exactly the single-shard commit (validate, apply, group-commit
// durability wait). Otherwise it runs the protocol above; the error
// distinguishes OCC conflicts (db.ErrConflict — retry) from unreachable
// peers and dead logs (ErrUnavailable — give up).
func (t *Tx) Commit(p *sim.Proc) error {
	if t.done {
		return db.ErrTxDone
	}
	t.done = true
	if len(t.parts) == 0 {
		return t.local.Commit(p)
	}
	home := t.home
	start := p.Now()
	sort.Ints(t.order) // canonical participant order: the prepare fan-out schedule
	abort := func(err error) error {
		t.local.Abort()
		home.outcomes[t.gid] = false
		home.mAborts2PC.Inc()
		for _, sid := range t.order {
			gid := t.gid
			home.post(home.c.shards[sid], func(dst *Shard) { dst.finish(gid, false) })
		}
		return err
	}
	// Phase 0: pin the home rows. Failing here is the cheap abort.
	if err := t.local.Prepare(); err != nil {
		return abort(err)
	}
	// Phase 1: prepare every participant in shard order.
	for _, sid := range t.order {
		gid, coord, nw := t.gid, home.id, t.parts[sid].writes
		var vote bool
		reached := home.rpc(p, home.c.shards[sid], home.c.cfg.RPCTimeout, func(dst *Shard, reply func(mut func())) {
			dst.startPrepare(gid, coord, nw, func(v bool) { reply(func() { vote = v }) })
		})
		if !reached {
			return abort(ErrUnavailable)
		}
		if !vote {
			return abort(db.ErrConflict)
		}
	}
	home.mPrepareLat.Since(start)
	if home.hookBeforeDecision != nil {
		home.hookBeforeDecision()
	}
	// The commit point: the decision record, durable on the coordinator's
	// own WAL. Everything before it aborts cleanly; everything after it
	// must (and can) go forward.
	payload := encodeControl(kindDecision, t.gid, home.id, t.order, t.local.EncodedWrites())
	lsn := home.lg.Append(wal.Record{TxID: t.gid, Payload: payload})
	if !home.lg.WaitDurableOrDead(p, lsn) {
		// The coordinator's device died first: the decision never became
		// durable, so recovery will presume abort — abort live too.
		return abort(ErrUnavailable)
	}
	home.outcomes[t.gid] = true
	t.local.CommitPrepared(t.gid)
	home.acked = append(home.acked, t.gid)
	home.mCommits2PC.Inc()
	// Phase 2: distribute the decision. Bounded waits; a participant that
	// misses it resolves through its own resolver process.
	for _, sid := range t.order {
		gid := t.gid
		home.rpc(p, home.c.shards[sid], home.c.cfg.RPCTimeout, func(dst *Shard, reply func(mut func())) {
			dst.finish(gid, true)
			reply(nil)
		})
	}
	home.mCommitLat.Since(start)
	return nil
}

// partyFor returns (creating on first touch) the participant-side state
// of gid. Runs on s's Env.
func (s *Shard) partyFor(gid int64, coord int) *party {
	pt := s.remote[gid]
	if pt == nil {
		pt = &party{tx: s.eng.Begin(), coord: coord}
		s.remote[gid] = pt
	}
	return pt
}

// startPrepare handles a PREPARE request in event context. Duplicate
// deliveries (a coordinator resend) are single-flighted: an already-voted
// party answers its recorded vote without re-logging, and a duplicate
// arriving while the first delivery's durability wait is still in flight
// just joins the waiter list — one PREPARE record per gid, ever.
func (s *Shard) startPrepare(gid int64, coord, expectWrites int, vote func(bool)) {
	pt := s.partyFor(gid, coord)
	if pt.prepared {
		vote(pt.vote)
		return
	}
	pt.waiters = append(pt.waiters, vote)
	if pt.preparing {
		return
	}
	pt.preparing = true
	s.env.Go(fmt.Sprintf("2pc-prepare-%d", gid), func(p *sim.Proc) {
		v := s.doPrepare(p, pt, gid, coord, expectWrites)
		ws := pt.waiters
		pt.waiters = nil
		for _, w := range ws {
			w(v)
		}
	})
}

// doPrepare is the participant's phase-1 work: check that every remote
// write arrived, validate and pin, persist the PREPARE record (with the
// write set — recovery replays it if the decision commits), and vote.
// Single-flighted by startPrepare.
func (s *Shard) doPrepare(p *sim.Proc, pt *party, gid int64, coord, expectWrites int) bool {
	s.mPrepares.Inc()
	v := false
	if pt.writes != expectWrites {
		// A dropped or duplicated remote write: voting yes would commit a
		// hole. The count check turns a lossy conduit into an abort.
		pt.tx.Abort()
	} else if pt.tx.Prepare() == nil {
		rec := encodeControl(kindPrepare, gid, coord, nil, pt.tx.EncodedWrites())
		lsn := s.lg.Append(wal.Record{TxID: gid, Payload: rec})
		if s.lg.WaitDurableOrDead(p, lsn) {
			v = true
		} else {
			pt.tx.Abort() // our device died: the prepare never persisted
		}
	}
	pt.prepared, pt.vote = true, v
	if v {
		s.env.Go(fmt.Sprintf("2pc-resolve-%d", gid), s.resolver(gid, coord))
	}
	return v
}

// resolver is the termination protocol: a prepared participant that has
// not heard a decision asks the coordinator's outcome table until the
// answer arrives. The coordinator's host side records every outcome
// before releasing the transaction, and simulation members never die
// (only devices do), so the loop always terminates once the decision
// exists; until then — coordinator still mid-protocol — it keeps waiting
// rather than guessing.
func (s *Shard) resolver(gid int64, coord int) func(*sim.Proc) {
	return func(p *sim.Proc) {
		for {
			p.Sleep(2 * s.c.cfg.RPCTimeout)
			if s.remote[gid] == nil {
				return // decision arrived while we slept
			}
			var commit, known bool
			reached := s.rpc(p, s.c.shards[coord], s.c.cfg.RPCTimeout, func(dst *Shard, reply func(mut func())) {
				o, k := dst.outcomes[gid]
				reply(func() { commit, known = o, k })
			})
			if !reached || !known {
				continue
			}
			s.mResolves.Inc()
			s.finish(gid, commit)
			return
		}
	}
}

// finish applies a decision to participant state: commit applies the
// pinned writes and logs the COMMITP marker (no durability wait — the
// coordinator's durable DECISION already covers it); abort just drops
// everything. Idempotent: the first delivery wins, later ones no-op.
func (s *Shard) finish(gid int64, commit bool) {
	pt, ok := s.remote[gid]
	if !ok {
		return
	}
	delete(s.remote, gid)
	if commit && pt.prepared && pt.vote {
		pt.tx.CommitPrepared(gid)
		s.lg.Append(wal.Record{TxID: gid, Payload: encodeControl(kindCommitP, gid, pt.coord, nil, nil)})
		s.mCommits2PC.Inc()
	} else {
		pt.tx.Abort()
		if pt.prepared && pt.vote {
			s.mAborts2PC.Inc()
		}
	}
}
