package shard

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"xssd/internal/db"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// The package tests drive the cluster with a miniature bank schema (one
// "kv" table, one balance row per warehouse) instead of TPC-C — the
// tpcc package imports shard, so these in-package tests cannot import it
// back. Transfer transactions move amounts between warehouses, which
// exercises exactly the 2PC surface: remote reads, remote writes, and
// cross-shard commits whose invariant (the sum of all balances) is easy
// to audit.

const testBalance = 1000

func balKey(w int) string { return fmt.Sprintf("w%d/balance", w) }

func encBal(v int64) []byte { return []byte(fmt.Sprintf("%d", v)) }
func decBal(b []byte) int64 { var v int64; fmt.Sscanf(string(b), "%d", &v); return v }

// okSink records bytes only after the inner sink acknowledged them, so
// the recorded stream is exactly the acknowledged-durable stream: a
// group-commit batch is all-or-nothing, and the log only reports
// durability for batches whose Write returned nil.
type okSink struct {
	inner wal.Sink
	buf   *[]byte
}

func (s *okSink) Write(p *sim.Proc, data []byte) error {
	if err := s.inner.Write(p, data); err != nil {
		return err
	}
	*s.buf = append(*s.buf, data...)
	return nil
}

func (s *okSink) Name() string { return s.inner.Name() }

// testConfig builds a cluster config over shards*2 warehouses with
// recorded sinks and the bank loader.
func testConfig(shards, simWorkers int, seed int64, streams [][]byte) Config {
	warehouses := shards * 2
	return Config{
		Shards:     shards,
		Warehouses: warehouses,
		SimWorkers: simWorkers,
		Seed:       seed,
		WrapSink: func(id int, inner wal.Sink) wal.Sink {
			return &okSink{inner: inner, buf: &streams[id]}
		},
		Load: bankLoad(shards, warehouses),
	}
}

func bankLoad(shards, warehouses int) func(*db.Engine, int) {
	return func(eng *db.Engine, id int) {
		eng.CreateTable("kv")
		for w := 1; w <= warehouses; w++ {
			if OwnerOf(w, shards, warehouses) == id {
				eng.LoadRow("kv", balKey(w), encBal(testBalance))
			}
		}
	}
}

// transfer moves amount from warehouse src to warehouse dst in one
// transaction homed on src's shard.
func transfer(p *sim.Proc, cl *Cluster, src, dst int, amount int64) error {
	tx := cl.Shard(cl.ShardOf(src)).Begin()
	sRow, ok, err := tx.GetW(p, src, "kv", balKey(src))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = errors.New("missing src balance")
		}
		return err
	}
	dRow, ok, err := tx.GetW(p, dst, "kv", balKey(dst))
	if err != nil || !ok {
		tx.Abort()
		if err == nil {
			err = errors.New("missing dst balance")
		}
		return err
	}
	tx.PutW(src, "kv", balKey(src), encBal(decBal(sRow)-amount))
	tx.PutW(dst, "kv", balKey(dst), encBal(decBal(dRow)+amount))
	return tx.Commit(p)
}

// balance reads warehouse w's balance straight from its owning engine
// (call only when the simulation is quiesced).
func balance(cl *Cluster, w int) int64 {
	eng := cl.Shard(cl.ShardOf(w)).Engine()
	tx := eng.Begin()
	defer tx.Abort()
	row, ok := tx.Get("kv", balKey(w))
	if !ok {
		return -1
	}
	return decBal(row)
}

// parseAll parses every recorded stream into views.
func parseAll(t *testing.T, streams [][]byte) []*View {
	t.Helper()
	views := make([]*View, len(streams))
	for i, s := range streams {
		v, err := ParseStream(i, s)
		if err != nil {
			t.Fatalf("ParseStream(%d): %v", i, err)
		}
		views[i] = v
	}
	return views
}

// checkCluster runs the post-mortem oracle: I8 atomicity over the
// durable streams, and replay-equality against the live engines of every
// shard whose device survived.
func checkCluster(t *testing.T, cl *Cluster, streams [][]byte, deadShard int) {
	t.Helper()
	views := parseAll(t, streams)
	acked := make([][]int64, len(views))
	for i := range views {
		acked[i] = cl.Shard(i).AckedGIDs()
	}
	if bad := CheckAtomicity(views, acked); len(bad) != 0 {
		t.Fatalf("atomicity violations: %v", bad)
	}
	cfg := cl.Config()
	engines, err := Replay(sim.NewEnv(1), views, bankLoad(cfg.Shards, cfg.Warehouses))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	for i, eng := range engines {
		if i == deadShard {
			continue // live engine may be ahead of its dead device's stream
		}
		if got, want := eng.Fingerprint(), cl.Shard(i).Engine().Fingerprint(); got != want {
			t.Errorf("shard %d: replayed fingerprint %#x != live %#x", i, got, want)
		}
	}
	// The bank invariant: committed transfers conserve the total.
	var total int64
	for _, eng := range engines {
		if eng == nil {
			continue
		}
		tx := eng.Begin()
		for w := 1; w <= cfg.Warehouses; w++ {
			if row, ok := tx.Get("kv", balKey(w)); ok {
				total += decBal(row)
			}
		}
		tx.Abort()
	}
	if want := int64(cfg.Warehouses) * testBalance; total != want {
		t.Errorf("replayed balances sum to %d, want %d", total, want)
	}
}

// boot brings a cluster up and returns once the boot process has run.
func boot(t *testing.T, cl *Cluster, body func(p *sim.Proc)) {
	t.Helper()
	var bootErr error
	cl.Shard(0).Env().Go("test-boot", func(p *sim.Proc) {
		if bootErr = cl.Boot(p); bootErr != nil {
			return
		}
		cl.Release()
		if body != nil {
			body(p)
		}
	})
	cl.RunUntil(cl.Now() + 50*time.Millisecond)
	if bootErr != nil {
		t.Fatalf("Boot: %v", bootErr)
	}
}

func TestLocalCommitStaysLocal(t *testing.T) {
	streams := make([][]byte, 1)
	cl, err := New(testConfig(1, 0, 42, streams))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Build()
	var txErr error
	boot(t, cl, func(p *sim.Proc) {
		txErr = transfer(p, cl, 1, 2, 75) // both warehouses on shard 0
	})
	if txErr != nil {
		t.Fatalf("transfer: %v", txErr)
	}
	if got := balance(cl, 1); got != testBalance-75 {
		t.Fatalf("w1 balance %d, want %d", got, testBalance-75)
	}
	if gids := cl.Shard(0).AckedGIDs(); len(gids) != 0 {
		t.Fatalf("local tx allocated cross-shard gids: %v", gids)
	}
	views := parseAll(t, streams)
	if n := len(views[0].Prepares) + len(views[0].Decisions) + len(views[0].CommitPs); n != 0 {
		t.Fatalf("local commit wrote %d control records, want 0", n)
	}
	checkCluster(t, cl, streams, -1)
}

func TestCrossShardCommit(t *testing.T) {
	streams := make([][]byte, 2)
	cl, err := New(testConfig(2, 0, 42, streams))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Build()
	var txErr error
	boot(t, cl, func(p *sim.Proc) {
		txErr = transfer(p, cl, 1, 3, 200) // shard 0 -> shard 1
	})
	if txErr != nil {
		t.Fatalf("transfer: %v", txErr)
	}
	if got := balance(cl, 1); got != testBalance-200 {
		t.Fatalf("w1 balance %d, want %d", got, testBalance-200)
	}
	if got := balance(cl, 3); got != testBalance+200 {
		t.Fatalf("w3 balance %d, want %d", got, testBalance+200)
	}
	gids := cl.Shard(0).AckedGIDs()
	if len(gids) != 1 {
		t.Fatalf("acked gids %v, want exactly one", gids)
	}
	views := parseAll(t, streams)
	if _, ok := views[0].Decisions[gids[0]]; !ok {
		t.Fatal("coordinator stream has no durable DECISION")
	}
	if _, ok := views[1].Prepares[gids[0]]; !ok {
		t.Fatal("participant stream has no durable PREPARE")
	}
	if !views[1].CommitPs[gids[0]] {
		t.Fatal("participant stream has no COMMITP")
	}
	checkCluster(t, cl, streams, -1)
}

func TestCrossShardConflictAborts(t *testing.T) {
	streams := make([][]byte, 2)
	cl, err := New(testConfig(2, 0, 7, streams))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Build()
	// Two coordinators race for the same rows in opposite directions.
	// Simultaneous prepares may mutually abort (presumed abort has no
	// wound-wait), so each racer retries with a backoff like a real
	// terminal; at least one must get through.
	var err0, err1 error
	retrying := func(src, dst int, amount int64, backoff time.Duration, out *error) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			for attempt := 0; attempt < 6; attempt++ {
				*out = transfer(p, cl, src, dst, amount)
				if !errors.Is(*out, db.ErrConflict) {
					return
				}
				// Distinct per-racer strides: identical deterministic
				// backoffs would re-collide forever.
				p.Sleep(time.Duration(attempt+1) * backoff)
			}
		}
	}
	boot(t, cl, func(p *sim.Proc) {
		cl.Shard(0).Env().Go("racer-0", retrying(1, 3, 10, 300*time.Microsecond, &err0))
		cl.Shard(1).Env().Go("racer-1", retrying(3, 1, 20, 1700*time.Microsecond, &err1))
	})
	committed := 0
	for _, e := range []error{err0, err1} {
		switch {
		case e == nil:
			committed++
		case errors.Is(e, db.ErrConflict):
		default:
			t.Fatalf("unexpected transfer error: %v", e)
		}
	}
	if committed == 0 {
		t.Fatal("both racers aborted on every attempt; expected at least one commit")
	}
	checkCluster(t, cl, streams, -1)
}

// TestWorkerCountParity is the acceptance check that a cluster's outcome
// is a pure function of (Seed, shape): the same seeded workload on the
// group engine with 1, 2, and 8 workers must fold to identical engine
// fingerprints, WAL streams, and ack lists.
func TestWorkerCountParity(t *testing.T) {
	type fold struct {
		fps     []uint64
		streams []string
		acked   string
	}
	run := func(workers int) fold {
		streams := make([][]byte, 4)
		cl, err := New(testConfig(4, workers, 99, streams))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		cl.Build()
		boot(t, cl, func(p *sim.Proc) {
			for i, s := range cl.Shards() {
				i, s := i, s
				s.Env().Go(fmt.Sprintf("load-%d", i), func(p *sim.Proc) {
					rng := s.Env().Rand()
					for n := 0; n < 25; n++ {
						src := i*2 + 1 + rng.Intn(2)
						dst := rng.Intn(8) + 1
						if dst == src {
							dst = src%8 + 1
						}
						if err := transfer(p, cl, src, dst, int64(rng.Intn(50)+1)); err != nil &&
							!errors.Is(err, db.ErrConflict) && !errors.Is(err, ErrUnavailable) {
							t.Errorf("shard %d tx %d: %v", i, n, err)
						}
						p.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
				})
			}
		})
		var f fold
		for i := range cl.Shards() {
			f.fps = append(f.fps, cl.Shard(i).Engine().Fingerprint())
			f.streams = append(f.streams, string(streams[i]))
			f.acked = fmt.Sprintf("%s|%v", f.acked, cl.Shard(i).AckedGIDs())
		}
		checkCluster(t, cl, streams, -1)
		return f
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range base.fps {
			if got.fps[i] != base.fps[i] {
				t.Errorf("workers=%d: shard %d fingerprint %#x != workers=1 %#x", w, i, got.fps[i], base.fps[i])
			}
			if got.streams[i] != base.streams[i] {
				t.Errorf("workers=%d: shard %d WAL stream diverges from workers=1", w, i)
			}
		}
		if got.acked != base.acked {
			t.Errorf("workers=%d: ack lists diverge: %q != %q", w, got.acked, base.acked)
		}
	}
}

func TestControlRecordRoundTrip(t *testing.T) {
	writes := []byte{9, 8, 7, 6}
	for _, kind := range []byte{kindPrepare, kindDecision, kindCommitP} {
		payload := encodeControl(kind, 0x123456789a, 3, []int{1, 4}, writes)
		if !IsControl(payload) {
			t.Fatalf("kind %d: IsControl = false", kind)
		}
		c, err := DecodeControl(payload)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if c.Kind != kind || c.GID != 0x123456789a || c.Coord != 3 ||
			len(c.Shards) != 2 || c.Shards[0] != 1 || c.Shards[1] != 4 || string(c.Writes) != string(writes) {
			t.Fatalf("kind %d: round trip mismatch: %+v", kind, c)
		}
	}
	if IsControl([]byte{0, 1, 2}) {
		t.Fatal("redo payload misread as control record")
	}
	if _, err := DecodeControl(encodeControl(77, 1, 0, nil, nil)); err == nil {
		t.Fatal("unknown control kind decoded without error")
	}
}

func TestOwnerOf(t *testing.T) {
	cases := []struct{ w, shards, warehouses, want int }{
		{1, 4, 8, 0}, {2, 4, 8, 0}, {3, 4, 8, 1}, {8, 4, 8, 3},
		{1, 1, 2, 0}, {2, 1, 2, 0}, {16, 4, 16, 3},
	}
	for _, c := range cases {
		if got := OwnerOf(c.w, c.shards, c.warehouses); got != c.want {
			t.Errorf("OwnerOf(%d,%d,%d) = %d, want %d", c.w, c.shards, c.warehouses, got, c.want)
		}
	}
}
