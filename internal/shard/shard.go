// Package shard scales the single-device X-SSD stack out to a cluster:
// TPC-C warehouses are partitioned across N primary devices, each an
// independent sim.Group member with its own replica set and WAL
// group-commit pipeline, and cross-shard transactions commit through a
// deterministic two-phase commit whose coordinator log rides the
// coordinator device's own fast-side ring — prepare, decision, and
// commit-point records are ordinary WAL entries, so crash recovery and
// the chaos invariants extend to the cluster without a separate
// commit-log service (invariant I8: no cross-shard atomicity violation
// after any single kill).
//
// Topology: shard i's primary device, WAL flusher, database engine, and
// terminals all live on member Env "sh<i>"; each of its secondaries gets
// its own member. The only cross-shard channel is the RPC conduit in
// rpc.go, built on Env.PostTo, so runs are byte-identical for every
// worker count — and SimWorkers == 0 runs the identical code on one
// classic Env (PostTo degrades to a local timer), which is the
// single-scheduler baseline.
package shard

import (
	"errors"
	"fmt"
	"time"

	"xssd/internal/core"
	"xssd/internal/db"
	"xssd/internal/failover"
	"xssd/internal/nand"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/repl"
	"xssd/internal/sim"
	"xssd/internal/villars"
	"xssd/internal/wal"
)

// ErrUnavailable reports a cross-shard operation that could not reach its
// peer (dropped or timed-out RPC, or a peer whose log died). It is
// retryable in principle but, unlike db.ErrConflict, retrying immediately
// is usually pointless. Match with errors.Is.
var ErrUnavailable = errors.New("shard: peer unavailable")

// Config shapes a shard cluster. The zero value is invalid: Shards and
// Warehouses must be set.
type Config struct {
	// Shards is the number of primary devices (>= 1); shard i's primary
	// is named "p<i>".
	Shards int
	// Warehouses is the total warehouse count partitioned across the
	// shards. It must divide evenly by Shards so OwnerOf stays a pure
	// O(1) function of the pair.
	Warehouses int
	// Secondaries is how many replica devices each shard attaches
	// (0 = standalone primaries). Shard i's j-th secondary is named
	// "s<i>.<j>" and lives on its own group member.
	Secondaries int
	// Scheme selects the replication scheme when Secondaries > 0.
	Scheme core.ReplicationScheme
	// SimWorkers selects the engine: 0 runs every shard on one classic
	// Env; n >= 1 runs the parallel group engine with one member per
	// shard (plus one per secondary) and n quantum executors. All
	// n >= 1 runs of one config are byte-identical to each other.
	SimWorkers int
	// Seed seeds shard 0's Env; further members derive theirs with a
	// splitmix64 finalizer, so (Seed, shape) fixes the whole run.
	Seed int64
	// WAL configures every shard's log. A zero value uses small
	// chaos-style batching (4 KiB / 500 µs) rather than wal.DefaultConfig,
	// which is sized for full-scale figure runs.
	WAL wal.Config
	// RPCLatency is the one-way latency of a cross-shard message; 0 means
	// 2 µs (two group quanta, so posts are never clamped in practice).
	RPCLatency time.Duration
	// RPCTimeout bounds every blocking cross-shard wait (prepare votes,
	// decision acks, remote reads); 0 means 4 ms. A peer that answers
	// slower than this is treated as unavailable and the transaction
	// aborts — the presumed-abort side of the protocol.
	RPCTimeout time.Duration
	// Device builds one device; nil means DefaultDevice. Harnesses
	// override it to apply their own geometry or tracing setup.
	Device func(env *sim.Env, name string) *villars.Device
	// WrapSink, when non-nil, wraps shard i's WAL sink (oracles record
	// the exact byte stream a shard's host side handed down).
	WrapSink func(shardID int, inner wal.Sink) wal.Sink
	// Load populates shard i's engine with its partition of the initial
	// rows; nil leaves engines empty. It runs during Boot, before any
	// terminal starts.
	Load func(eng *db.Engine, shardID int)
	// Failover, when true, attaches a failover.Manager to every shard
	// that has secondaries (WAL retention is forced on). Supported on
	// the classic engine only (SimWorkers == 0): a takeover serializes
	// the whole group, which would stall every other shard's progress.
	Failover bool
	// FailoverConfig tunes the per-shard managers when Failover is set;
	// the zero value uses failover.DefaultConfig.
	FailoverConfig failover.Config
}

func (c Config) withDefaults() Config {
	if c.RPCLatency <= 0 {
		c.RPCLatency = 2 * time.Microsecond
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 4 * time.Millisecond
	}
	if c.WAL.GroupBytes == 0 && c.WAL.GroupTimeout == 0 {
		c.WAL.GroupBytes = 4 << 10
		c.WAL.GroupTimeout = 500 * time.Microsecond
	}
	if c.Device == nil {
		c.Device = DefaultDevice
	}
	if c.Failover {
		c.WAL.Retain = true
	}
	return c
}

// OwnerOf maps a warehouse id (1-based) to its owning shard. Pure, so
// routers, loaders, and oracles agree without sharing state.
func OwnerOf(warehouse, shards, warehouses int) int {
	per := warehouses / shards
	s := (warehouse - 1) / per
	if s >= shards {
		s = shards - 1
	}
	return s
}

// memberSeed derives a member Env's seed from the cluster seed and the
// member index (splitmix64 finalizer), mirroring the chaos engine's
// derivation so multi-env runs are fully determined by (Seed, shape).
func memberSeed(seed int64, idx int) int64 {
	z := uint64(seed) + uint64(idx+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// DefaultDevice builds the small-geometry device the shard harnesses use
// (the chaos configuration: light enough that an 8-shard cluster still
// runs in seconds, with tracing on for fingerprints).
func DefaultDevice(env *sim.Env, name string) *villars.Device {
	cfg := villars.DefaultConfig(name)
	cfg.Geometry = nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 32, PagesPerBlock: 32, PageSize: 2048}
	cfg.Timing = nand.Timing{TRead: 5 * time.Microsecond, TProg: 20 * time.Microsecond, TErase: 100 * time.Microsecond, BusRate: 1e9}
	cfg.QueueSize = 4096
	cfg.CMBSize = 64 << 10
	cfg.DestageLatencyBound = 100 * time.Microsecond
	cfg.ShadowUpdatePeriod = 2 * time.Microsecond
	cfg.StallTimeout = 2 * time.Millisecond
	cfg.RepairTimeout = time.Millisecond
	d := villars.New(env, cfg, pcie.NewHostMemory(1<<20))
	d.EnableTracing(4096)
	return d
}

// Shard is one partition: a primary device (plus optional replica set)
// with its own WAL and engine, living on its own group member. It is
// both a 2PC coordinator (for transactions homed on it) and a 2PC
// participant (for remote writes other shards send it).
type Shard struct {
	id   int
	c    *Cluster
	env  *sim.Env
	name string // primary device name, "p<i>" — also the fault scope

	dev  *villars.Device
	secs []*villars.Device
	rc   *repl.Cluster
	fo   *failover.Manager
	sink wal.Sink
	lg   *wal.Log
	eng  *db.Engine

	// Coordinator state, owned by this shard's env.
	nextSeq  int64
	outcomes map[int64]bool   // gid -> committed? (termination oracle)
	acked    []int64          // cross-shard gids acknowledged committed
	remote   map[int64]*party // participant state per in-flight gid

	// metrics (cluster/shard/<i>/...)
	mRPCOut, mRPCIn         *obs.Counter
	mPrepares, mResolves    *obs.Counter
	mCommits2PC, mAborts2PC *obs.Counter
	mPrepareLat, mCommitLat *obs.Histogram

	// hookBeforeDecision, when set (tests), runs on the coordinator right
	// after all participants voted yes and before the decision record is
	// appended — the classic "coordinator dies between prepare-all and
	// first commit" kill point.
	hookBeforeDecision func()
}

// party is the participant-side state of one distributed transaction.
type party struct {
	tx        *db.Tx
	coord     int
	writes    int  // delivered remote write ops
	preparing bool // a prepare process is in flight (single-flight guard)
	prepared  bool // vote recorded (idempotence for duplicate prepares)
	vote      bool
	waiters   []func(bool) // votes owed once the in-flight prepare lands
}

// ID returns the shard index.
func (s *Shard) ID() int { return s.id }

// Env returns the shard's simulation environment.
func (s *Shard) Env() *sim.Env { return s.env }

// Device returns the shard's primary device.
func (s *Shard) Device() *villars.Device { return s.dev }

// Secondaries returns the shard's replica devices in index order.
func (s *Shard) Secondaries() []*villars.Device { return append([]*villars.Device(nil), s.secs...) }

// Log returns the shard's WAL.
func (s *Shard) Log() *wal.Log { return s.lg }

// Engine returns the shard's database engine.
func (s *Shard) Engine() *db.Engine { return s.eng }

// Repl returns the shard's replication cluster (nil without secondaries).
func (s *Shard) Repl() *repl.Cluster { return s.rc }

// Failover returns the shard's failover manager (nil unless
// Config.Failover was set and the shard has secondaries).
func (s *Shard) Failover() *failover.Manager { return s.fo }

// AckedGIDs returns the cross-shard transactions this shard, as
// coordinator, acknowledged as committed — in acknowledgement order. The
// I8 oracle checks each against the durable streams.
func (s *Shard) AckedGIDs() []int64 { return append([]int64(nil), s.acked...) }

// Cluster is a set of shards plus the group engine that runs them.
type Cluster struct {
	cfg    Config
	group  *sim.Group // nil on the classic single-Env engine
	envs   []*sim.Env // member envs in index order (one entry when classic)
	shards []*Shard
}

// New validates cfg and creates the simulation environments — and nothing
// else, so a harness can attach fault injectors to Envs() before Build
// constructs the devices (at-time power rules arm at device creation).
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Warehouses < cfg.Shards || cfg.Warehouses%cfg.Shards != 0 {
		return nil, fmt.Errorf("shard: Warehouses (%d) must be a positive multiple of Shards (%d)", cfg.Warehouses, cfg.Shards)
	}
	if cfg.Failover && cfg.SimWorkers > 0 {
		return nil, errors.New("shard: Failover requires the classic engine (SimWorkers == 0)")
	}
	c := &Cluster{cfg: cfg}
	if cfg.SimWorkers > 0 {
		c.group = sim.NewGroup(sim.GroupConfig{Workers: cfg.SimWorkers, StartInline: true})
	}
	member := 0
	newEnv := func(name string) *sim.Env {
		seed := cfg.Seed
		if member > 0 {
			seed = memberSeed(cfg.Seed, member)
		}
		member++
		if c.group != nil {
			e := c.group.NewEnv(name, seed)
			c.envs = append(c.envs, e)
			return e
		}
		// Classic engine: every shard shares one Env; members beyond the
		// first reuse it (the seed draw above still advances, keeping
		// member indices stable across engines).
		if len(c.envs) == 0 {
			c.envs = append(c.envs, sim.NewEnv(cfg.Seed))
		}
		return c.envs[0]
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &Shard{
			id:       i,
			c:        c,
			name:     fmt.Sprintf("p%d", i),
			env:      newEnv(fmt.Sprintf("sh%d", i)),
			outcomes: map[int64]bool{},
			remote:   map[int64]*party{},
		}
		c.shards = append(c.shards, s)
	}
	return c, nil
}

// Envs returns the member environments in index order (a single shared
// Env on the classic engine). Attach fault injectors here, before Build.
func (c *Cluster) Envs() []*sim.Env { return append([]*sim.Env(nil), c.envs...) }

// Group returns the parallel group runner (nil on the classic engine).
func (c *Cluster) Group() *sim.Group { return c.group }

// Shards returns the shards in index order.
func (c *Cluster) Shards() []*Shard { return append([]*Shard(nil), c.shards...) }

// Shard returns shard i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Config returns the cluster's (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// ShardOf maps a warehouse id to its owning shard.
func (c *Cluster) ShardOf(warehouse int) int {
	return OwnerOf(warehouse, c.cfg.Shards, c.cfg.Warehouses)
}

// Build constructs every shard's devices (primaries first, then each
// shard's secondaries on their own members) and the per-shard metrics.
// Call after fault injectors are attached and before Boot.
func (c *Cluster) Build() {
	for _, s := range c.shards {
		s.dev = c.cfg.Device(s.env, s.name)
	}
	for _, s := range c.shards {
		for j := 0; j < c.cfg.Secondaries; j++ {
			env := s.env
			if c.group != nil {
				env = c.group.NewEnv(fmt.Sprintf("sh%d.s%d", s.id, j), memberSeed(c.cfg.Seed, len(c.envs)))
				c.envs = append(c.envs, env)
			}
			s.secs = append(s.secs, c.cfg.Device(env, fmt.Sprintf("s%d.%d", s.id, j)))
		}
		sc := obs.For(s.env).Scope(fmt.Sprintf("cluster/shard/%d", s.id))
		s.mRPCOut = sc.Counter("rpc/out")
		s.mRPCIn = sc.Counter("rpc/in")
		s.mPrepares = sc.Counter("2pc/prepares")
		s.mResolves = sc.Counter("2pc/resolves")
		s.mCommits2PC = sc.Counter("2pc/commits")
		s.mAborts2PC = sc.Counter("2pc/aborts")
		s.mPrepareLat = sc.Histogram("2pc/prepare_ns")
		s.mCommitLat = sc.Histogram("2pc/commit_ns")
	}
}

// Boot brings the cluster up: every shard runs replication setup, WAL
// sink and log, engine, and the initial load on a process of its OWN
// Env, so everything a shard later drives (the logger's latency spans,
// the WAL daemon, the engine) is born on the member whose clock it
// reads. The caller's process only spawns and joins those bring-up
// processes. Legal cross-member access: under the group engine the
// caller runs while the group is still inline (StartInline), exactly
// like the chaos harness's boot, and Release is only called afterwards.
func (c *Cluster) Boot(p *sim.Proc) error {
	n := len(c.shards)
	errs := make([]error, n)
	booted := 0
	for _, s := range c.shards {
		s := s
		s.env.Go("boot-"+s.name, func(bp *sim.Proc) {
			defer func() { booted++ }()
			errs[s.id] = s.bringUp(bp, c.cfg)
		})
	}
	// Inline quanta run members on the coordinator goroutine in
	// env-index order, so polling the shared counter is race-free and
	// deterministic.
	//
	//xssd:conduit inline-phase join: booted is only written by bring-up procs of an inline group
	for booted < n {
		p.Sleep(time.Microsecond)
	}
	for id, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", id, err)
		}
	}
	return nil
}

// bringUp is one shard's boot sequence, run on the shard's own Env.
func (s *Shard) bringUp(p *sim.Proc, cfg Config) error {
	if len(s.secs) > 0 {
		devices := append([]*villars.Device{s.dev}, s.secs...)
		rc, err := repl.NewScoped(s.env, devices, fmt.Sprintf("cluster/shard/%d/repl", s.id))
		if err != nil {
			return err
		}
		s.rc = rc
		if cfg.Scheme == core.Chain {
			err = rc.SetupChain(p)
		} else {
			err = rc.Setup(p, 0, cfg.Scheme)
		}
		if err != nil {
			return fmt.Errorf("replication setup: %w", err)
		}
	}
	vsink := wal.NewVillarsSink(p, s.dev, s.name)
	s.sink = wal.Sink(vsink)
	if cfg.WrapSink != nil {
		s.sink = cfg.WrapSink(s.id, s.sink)
	}
	s.lg = wal.NewLog(s.env, s.sink, cfg.WAL)
	s.eng = db.New(s.env, s.lg)
	if cfg.Load != nil {
		cfg.Load(s.eng, s.id)
	}
	if cfg.Failover && s.rc != nil {
		s.fo = failover.New(s.env, s.rc, s.lg, vsink, cfg.FailoverConfig)
	}
	return nil
}

// Release ends the bring-up phase: under the group engine it unlocks
// concurrent member execution (a no-op on the classic engine). Call from
// the boot process once every cross-member touch is done.
func (c *Cluster) Release() {
	if c.group != nil {
		c.group.Parallelize()
	}
}

// RunUntil drives the cluster to absolute virtual time t.
func (c *Cluster) RunUntil(t time.Duration) {
	if c.group != nil {
		c.group.RunUntil(t)
		return
	}
	c.envs[0].RunUntil(t)
}

// Now returns the cluster's virtual time.
func (c *Cluster) Now() time.Duration {
	if c.group != nil {
		return c.group.Now()
	}
	return c.envs[0].Now()
}

// Events returns total dispatched events across all members.
func (c *Cluster) Events() int64 {
	if c.group != nil {
		return c.group.Events()
	}
	return c.envs[0].Events()
}

// Snapshot merges every member's metrics registry in index order.
func (c *Cluster) Snapshot() *obs.Snapshot {
	if c.group == nil {
		return obs.For(c.envs[0]).Snapshot()
	}
	snaps := make([]*obs.Snapshot, len(c.envs))
	for i, e := range c.envs {
		snaps[i] = obs.For(e).Snapshot()
	}
	return obs.Merge(snaps...)
}

// Close releases every parked process goroutine (and the worker pool).
func (c *Cluster) Close() {
	if c.group != nil {
		c.group.Close()
		return
	}
	c.envs[0].Close()
}
