// Cluster recovery and the cross-shard atomicity invariant (I8).
//
// Each shard recovers from its own durable stream exactly like a
// single-shard engine, except that 2PC control records steer which write
// sets apply:
//
//   - redo records replay as always;
//   - a DECISION applies the coordinator's local write set (the decision
//     IS the coordinator's commit);
//   - a COMMITP applies the write set stashed in that gid's earlier
//     PREPARE (prefix durability guarantees the prepare is present);
//   - a PREPARE with no COMMITP is in doubt: it applies iff the
//     coordinator's durable stream holds a DECISION for the gid,
//     otherwise presumed abort.
//
// In-doubt transactions are resolved after the sequential pass, in
// sorted-gid order. That is safe: a prepared transaction's rows are
// pinned from prepare to decision, so no later durable record on this
// shard can touch them — if one did, the COMMITP that released the pins
// preceded it in the log and the gid was not in doubt at all. Applying
// the write set late therefore lands on rows untouched since the
// prepare.
//
// I8 — no single crash, anywhere, may break cross-shard atomicity — is
// checked post-mortem from the durable streams plus the coordinators'
// live ack lists; see CheckAtomicity.
package shard

import (
	"fmt"
	"sort"

	"xssd/internal/db"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// View is one shard's durable log stream, parsed and indexed for
// recovery and invariant checking.
type View struct {
	// Shard is the owning shard's id.
	Shard int
	// Records is the full decoded stream in log order.
	Records []wal.Record
	// Prepares indexes the durable PREPARE control record by gid.
	Prepares map[int64]Control
	// Decisions indexes the durable DECISION control record by gid
	// (transactions this shard coordinated and committed).
	Decisions map[int64]Control
	// CommitPs marks gids whose COMMITP marker is durable here.
	CommitPs map[int64]bool
}

// ParseStream decodes a shard's durable byte stream into a View.
func ParseStream(shardID int, stream []byte) (*View, error) {
	v := &View{
		Shard:     shardID,
		Records:   wal.DecodeAll(stream),
		Prepares:  map[int64]Control{},
		Decisions: map[int64]Control{},
		CommitPs:  map[int64]bool{},
	}
	for _, r := range v.Records {
		if !IsControl(r.Payload) {
			continue
		}
		c, err := DecodeControl(r.Payload)
		if err != nil {
			return nil, fmt.Errorf("shard %d lsn %d: %w", shardID, r.LSN, err)
		}
		switch c.Kind {
		case kindPrepare:
			v.Prepares[c.GID] = c
		case kindDecision:
			v.Decisions[c.GID] = c
		case kindCommitP:
			v.CommitPs[c.GID] = true
		}
	}
	return v, nil
}

// decisionFor reports whether gid's coordinator (per the prepare record)
// durably decided commit. A missing coordinator view means its stream
// was lost whole — presumed abort, like any undecided gid.
func decisionFor(views []*View, prep Control) bool {
	for _, cv := range views {
		if cv != nil && cv.Shard == prep.Coord {
			_, ok := cv.Decisions[prep.GID]
			return ok
		}
	}
	return false
}

// Replay recovers one engine per view, honoring cross-shard decisions as
// described in the package comment for this file. load seeds each fresh
// engine exactly as the live cluster was seeded (same closure as
// Config.Load). The env only provides clocks for the replay engines; no
// simulated time passes.
func Replay(env *sim.Env, views []*View, load func(eng *db.Engine, shardID int)) ([]*db.Engine, error) {
	engines := make([]*db.Engine, len(views))
	for i, v := range views {
		if v == nil {
			continue
		}
		eng := db.New(env, nil)
		if load != nil {
			load(eng, v.Shard)
		}
		for _, r := range v.Records {
			if !IsControl(r.Payload) {
				if err := eng.ApplyRecord(r); err != nil {
					return nil, fmt.Errorf("shard %d: %w", v.Shard, err)
				}
				continue
			}
			c, _ := DecodeControl(r.Payload) // validated by ParseStream
			switch c.Kind {
			case kindDecision:
				if err := eng.ApplyWriteSet(c.Writes, c.GID); err != nil {
					return nil, fmt.Errorf("shard %d decision gid %d: %w", v.Shard, c.GID, err)
				}
			case kindCommitP:
				prep, ok := v.Prepares[c.GID]
				if !ok {
					return nil, fmt.Errorf("shard %d: COMMITP gid %d without durable PREPARE", v.Shard, c.GID)
				}
				if err := eng.ApplyWriteSet(prep.Writes, c.GID); err != nil {
					return nil, fmt.Errorf("shard %d commit gid %d: %w", v.Shard, c.GID, err)
				}
			}
		}
		// In-doubt prepares: consult the coordinator's durable stream.
		doubt := make([]int64, 0, len(v.Prepares))
		for gid := range v.Prepares {
			if !v.CommitPs[gid] {
				doubt = append(doubt, gid)
			}
		}
		sort.Slice(doubt, func(a, b int) bool { return doubt[a] < doubt[b] })
		for _, gid := range doubt {
			prep := v.Prepares[gid]
			if decisionFor(views, prep) {
				if err := eng.ApplyWriteSet(prep.Writes, gid); err != nil {
					return nil, fmt.Errorf("shard %d in-doubt gid %d: %w", v.Shard, gid, err)
				}
			}
		}
		engines[i] = eng
	}
	return engines, nil
}

// CheckAtomicity verifies I8 over the cluster's durable streams plus
// each coordinator's live ack list (acked[i] = gids shard i acknowledged
// committed to its client): no participant applied a gid its coordinator
// never durably committed, no durable decision names a participant whose
// prepare is not durable, and no client-visible commit lacks a durable
// decision. Returns one message per violation, deterministically ordered.
func CheckAtomicity(views []*View, acked [][]int64) []string {
	var bad []string
	for _, v := range views {
		if v == nil {
			continue
		}
		// (a) COMMITP implies a durable coordinator decision: a
		// participant must never apply without a durable commit point.
		gids := sortedGIDs(v.CommitPs)
		for _, gid := range gids {
			prep, ok := v.Prepares[gid]
			if !ok {
				bad = append(bad, fmt.Sprintf("I8: shard %d: COMMITP gid %d without durable PREPARE", v.Shard, gid))
				continue
			}
			if !decisionFor(views, prep) {
				bad = append(bad, fmt.Sprintf("I8: shard %d applied gid %d but coordinator %d has no durable decision", v.Shard, gid, prep.Coord))
			}
		}
		// (b) a durable decision implies every listed participant's
		// prepare is durable — otherwise the commit could lose writes.
		dgids := make([]int64, 0, len(v.Decisions))
		for gid := range v.Decisions {
			dgids = append(dgids, gid)
		}
		sort.Slice(dgids, func(a, b int) bool { return dgids[a] < dgids[b] })
		for _, gid := range dgids {
			c := v.Decisions[gid]
			for _, sid := range c.Shards {
				var pv *View
				for _, w := range views {
					if w != nil && w.Shard == sid {
						pv = w
					}
				}
				if pv == nil {
					continue // stream lost whole; nothing to check against
				}
				if _, ok := pv.Prepares[gid]; !ok {
					bad = append(bad, fmt.Sprintf("I8: decision for gid %d on shard %d, but participant %d has no durable PREPARE", gid, v.Shard, sid))
				}
			}
		}
	}
	// (c) every client-acknowledged commit has a durable decision.
	for i, gids := range acked {
		var cv *View
		for _, w := range views {
			if w != nil && w.Shard == i {
				cv = w
			}
		}
		if cv == nil {
			continue
		}
		for _, gid := range gids {
			if _, ok := cv.Decisions[gid]; !ok {
				bad = append(bad, fmt.Sprintf("I8: shard %d acked gid %d to its client without a durable decision", i, gid))
			}
		}
	}
	return bad
}

// sortedGIDs returns a map's keys in ascending order (deterministic
// iteration for invariant reports).
func sortedGIDs(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for gid := range m {
		out = append(out, gid)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
