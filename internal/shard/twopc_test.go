package shard

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"xssd/internal/db"
	"xssd/internal/fault"
	"xssd/internal/sim"
)

// The kill-point tests for the in-doubt windows of the protocol: each
// one arranges a specific failure inside the commit sequence and then
// runs the full post-mortem oracle (I8 + replay equality + conservation)
// over the durable streams.

// TestCoordinatorDiesBeforeDecision kills the coordinator's device in
// the exact window between "all participants voted yes" and the decision
// append — the canonical 2PC in-doubt scenario. The decision never
// becomes durable, so everyone must abort: the participant's pinned
// writes resolve through the termination protocol, and recovery presumes
// abort.
func TestCoordinatorDiesBeforeDecision(t *testing.T) {
	streams := make([][]byte, 2)
	cl, err := New(testConfig(2, 0, 11, streams))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Build()
	coord := cl.Shard(0)
	coord.hookBeforeDecision = func() { coord.Device().InjectPowerLoss() }
	var txErr error
	boot(t, cl, func(p *sim.Proc) {
		txErr = transfer(p, cl, 1, 3, 500)
	})
	if !errors.Is(txErr, ErrUnavailable) {
		t.Fatalf("commit after coordinator death: %v, want ErrUnavailable", txErr)
	}
	if got := balance(cl, 3); got != testBalance {
		t.Fatalf("participant balance %d after aborted 2PC, want %d", got, testBalance)
	}
	if gids := coord.AckedGIDs(); len(gids) != 0 {
		t.Fatalf("dead coordinator acked %v", gids)
	}
	if n := len(cl.Shard(1).remote); n != 0 {
		t.Fatalf("%d unresolved participant transactions after drain", n)
	}
	views := parseAll(t, streams)
	if len(views[0].Decisions) != 0 {
		t.Fatal("decision record durable despite power loss before append")
	}
	// The participant's yes-vote is durable, but without a decision it
	// stays in doubt and must not have applied: no COMMITP.
	if len(views[1].Prepares) != 1 {
		t.Fatalf("participant has %d durable PREPAREs, want 1", len(views[1].Prepares))
	}
	if len(views[1].CommitPs) != 0 {
		t.Fatal("participant applied an undecided transaction")
	}
	checkCluster(t, cl, streams, 0)
}

// TestParticipantFrozenDuringPrepare freezes shard 1's RPC traffic so
// the prepare exchange cannot complete inside RPCTimeout. The
// coordinator must abort with ErrUnavailable, and the late-arriving
// prepare on the participant must eventually abort through the
// termination protocol — leaving no pins and no state change.
func TestParticipantFrozenDuringPrepare(t *testing.T) {
	streams := make([][]byte, 2)
	cfg := testConfig(2, 0, 13, streams)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Delay the first few messages touching p1 well past RPCTimeout
	// (4 ms): the prepare request arrives late, its reply later still.
	plan := &fault.Plan{Rules: []fault.Rule{{
		Point: fault.ShardRPC + "@p1", Trigger: fault.TriggerProb, Prob: 1,
		Action: fault.ActionDelay, Dur: 10 * time.Millisecond, Times: 3,
	}}}
	for _, env := range cl.Envs() {
		fault.Attach(env, fault.New(env, plan))
	}
	cl.Build()
	var txErr error
	boot(t, cl, func(p *sim.Proc) {
		txErr = transfer(p, cl, 1, 3, 500)
	})
	if !errors.Is(txErr, ErrUnavailable) {
		t.Fatalf("commit against frozen participant: %v, want ErrUnavailable", txErr)
	}
	if got := balance(cl, 1); got != testBalance {
		t.Fatalf("coordinator balance %d after abort, want %d", got, testBalance)
	}
	if got := balance(cl, 3); got != testBalance {
		t.Fatalf("participant balance %d after abort, want %d", got, testBalance)
	}
	if n := len(cl.Shard(1).remote); n != 0 {
		t.Fatalf("%d unresolved participant transactions after drain", n)
	}
	checkCluster(t, cl, streams, -1)
}

// TestDuplicatePrepareDelivery delivers the same PREPARE twice — once
// mid-flight (while the first delivery's durability wait is pending) and
// once after the vote is recorded. Both duplicates must see the original
// vote, and exactly one PREPARE record may reach the log.
func TestDuplicatePrepareDelivery(t *testing.T) {
	streams := make([][]byte, 2)
	cl, err := New(testConfig(2, 0, 17, streams))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Build()
	part := cl.Shard(1)
	var votes []bool
	boot(t, cl, func(p *sim.Proc) {
		// Stage a remote write so the party has something to prepare.
		gid := int64(1)<<48 | 1
		pt := part.partyFor(gid, 0)
		pt.writes = 1
		pt.tx.PutOwned("kv", balKey(3), encBal(777))
		record := func(v bool) { votes = append(votes, v) }
		part.startPrepare(gid, 0, 1, record) // first delivery: spawns the wait
		part.startPrepare(gid, 0, 1, record) // duplicate while in flight
		p.Sleep(5 * time.Millisecond)        // let the prepare land
		part.startPrepare(gid, 0, 1, record) // duplicate after the vote
		p.Sleep(time.Millisecond)
		// Resolve so the oracle sees a clean cluster: record the abort on
		// the coordinator as the termination protocol would find it.
		cl.Shard(0).outcomes[gid] = false
	})
	if len(votes) != 3 {
		t.Fatalf("got %d votes, want 3", len(votes))
	}
	for i, v := range votes {
		if !v {
			t.Fatalf("vote %d = no, want yes", i)
		}
	}
	views := parseAll(t, streams)
	if n := len(views[1].Records); countPrepares(views[1]) != 1 {
		t.Fatalf("participant logged %d PREPARE records (of %d records), want exactly 1", countPrepares(views[1]), n)
	}
}

func countPrepares(v *View) int {
	n := 0
	for _, r := range v.Records {
		if IsControl(r.Payload) {
			if c, err := DecodeControl(r.Payload); err == nil && c.Kind == kindPrepare {
				n++
			}
		}
	}
	return n
}

// TestKillAnywhereProperty is the randomized I8 property: run a busy
// 2-shard transfer mix, kill one device's power at an arbitrary moment,
// and require that the durable streams plus live ack lists satisfy
// atomicity, that recovery replays cleanly, and that committed transfers
// conserve the total balance. testing/quick drives (which shard, when).
func TestKillAnywhereProperty(t *testing.T) {
	prop := func(seed uint16, killShard1 bool, killAtRaw uint16) bool {
		victim := 0
		if killShard1 {
			victim = 1
		}
		killAt := time.Duration(killAtRaw%8000) * time.Microsecond // within the busy window
		streams := make([][]byte, 2)
		cl, err := New(testConfig(2, 0, int64(seed)+1, streams))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		cl.Build()
		boot(t, cl, func(p *sim.Proc) {
			vs := cl.Shard(victim)
			vs.Env().At(vs.Env().Now()+killAt, func() { vs.Device().InjectPowerLoss() })
			for i, s := range cl.Shards() {
				i, s := i, s
				s.Env().Go(fmt.Sprintf("mix-%d", i), func(p *sim.Proc) {
					rng := s.Env().Rand()
					for n := 0; n < 20 && !s.Log().Dead(); n++ {
						src := i*2 + 1 + rng.Intn(2)
						dst := rng.Intn(4) + 1
						if dst == src {
							dst = src%4 + 1
						}
						err := transfer(p, cl, src, dst, int64(rng.Intn(40)+1))
						if err != nil && !errors.Is(err, db.ErrConflict) && !errors.Is(err, ErrUnavailable) {
							t.Errorf("shard %d tx %d: %v", i, n, err)
						}
						p.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
					}
				})
			}
		})
		checkCluster(t, cl, streams, victim)
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
