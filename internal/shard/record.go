// 2PC control records. Prepare, decision, and commit-point records are
// ordinary WAL entries on the shard that emits them — they flow through
// the same group-commit batches, the same fast-side ring, the same
// mirroring, and the same destage path as redo records, which is exactly
// why recovery and the chaos invariants extend to the cluster for free.
//
// A control payload is distinguished from a redo payload by its first two
// bytes: redo payloads start with their op count (u16), and no real
// transaction carries 0xFFFF ops, so that value marks a control record.
//
//	[0xFF 0xFF] [kind u8] [gid i64] [coord u16] [nShards u16] [shards u16...] [writes ...]
//
// kindPrepare embeds the participant's own write set (the redo bytes it
// will apply on commit); kindDecision embeds the coordinator's local
// write set and lists the participants; kindCommitP embeds nothing — it
// marks "this participant applied gid", resolving the in-doubt window
// without consulting the coordinator.
package shard

import (
	"encoding/binary"
	"fmt"
)

// controlMark is the impossible redo-op-count that flags a control record.
const controlMark = 0xFFFF

// Control record kinds.
const (
	// kindPrepare: participant voted yes and persisted its write set.
	kindPrepare = byte(1)
	// kindDecision: the coordinator's commit point for gid.
	kindDecision = byte(2)
	// kindCommitP: this participant applied gid's writes.
	kindCommitP = byte(3)
)

// Control is one decoded 2PC control record.
type Control struct {
	// Kind is kindPrepare, kindDecision, or kindCommitP.
	Kind byte
	// GID is the distributed transaction's global id.
	GID int64
	// Coord is the coordinator's shard id.
	Coord int
	// Shards lists the participant shard ids (decision records only).
	Shards []int
	// Writes is the embedded redo payload (prepare: the participant's
	// write set; decision: the coordinator's local write set).
	Writes []byte
}

// encodeControl renders a control record payload.
func encodeControl(kind byte, gid int64, coord int, shards []int, writes []byte) []byte {
	buf := make([]byte, 0, 2+1+8+2+2+2*len(shards)+len(writes))
	buf = append(buf, 0xFF, 0xFF, kind)
	var g [8]byte
	binary.LittleEndian.PutUint64(g[:], uint64(gid))
	buf = append(buf, g[:]...)
	var u [2]byte
	binary.LittleEndian.PutUint16(u[:], uint16(coord))
	buf = append(buf, u[:]...)
	binary.LittleEndian.PutUint16(u[:], uint16(len(shards)))
	buf = append(buf, u[:]...)
	for _, s := range shards {
		binary.LittleEndian.PutUint16(u[:], uint16(s))
		buf = append(buf, u[:]...)
	}
	return append(buf, writes...)
}

// IsControl reports whether a WAL record payload is a 2PC control record.
func IsControl(payload []byte) bool {
	return len(payload) >= 3 && binary.LittleEndian.Uint16(payload) == controlMark
}

// DecodeControl parses a control record payload. Callers should gate on
// IsControl first; a malformed control payload is an error (it was
// durable, so truncation means corruption, not a torn write).
func DecodeControl(payload []byte) (Control, error) {
	var c Control
	if !IsControl(payload) {
		return c, fmt.Errorf("shard: not a control record")
	}
	b := payload[2:]
	if len(b) < 1+8+2+2 {
		return c, fmt.Errorf("shard: truncated control header (%d bytes)", len(payload))
	}
	c.Kind = b[0]
	c.GID = int64(binary.LittleEndian.Uint64(b[1:9]))
	c.Coord = int(binary.LittleEndian.Uint16(b[9:11]))
	n := int(binary.LittleEndian.Uint16(b[11:13]))
	b = b[13:]
	if len(b) < 2*n {
		return c, fmt.Errorf("shard: control record gid %d: truncated shard list", c.GID)
	}
	for i := 0; i < n; i++ {
		c.Shards = append(c.Shards, int(binary.LittleEndian.Uint16(b[2*i:])))
	}
	c.Writes = b[2*n:]
	switch c.Kind {
	case kindPrepare, kindDecision, kindCommitP:
	default:
		return c, fmt.Errorf("shard: control record gid %d: unknown kind %d", c.GID, c.Kind)
	}
	return c, nil
}
