// Package nvme defines the NVMe vocabulary the simulated device speaks
// (paper §2.1): submission/completion queues with doorbells, IO commands
// (read/write/flush), and the vendor-specific admin commands the Villars
// device adds for transport and destage control (paper §4.2: "the commands
// we added are sent using vendor-specific features of the regular NVMe
// drivers").
package nvme

import (
	"xssd/internal/sim"
)

// Opcode identifies a command.
type Opcode uint8

// IO and admin opcodes. The vendor-specific range (0xC0+) carries the
// X-SSD extensions.
const (
	OpFlush Opcode = 0x00
	OpWrite Opcode = 0x01
	OpRead  Opcode = 0x02

	// Vendor-specific admin commands (X-SSD extensions).
	OpXSetTransportMode Opcode = 0xC0 // CDW: TransportMode
	OpXSetDestagePolicy Opcode = 0xC1 // CDW: scheduling policy
	OpXConfigureRing    Opcode = 0xC2 // CDW: destage LBA ring base/len
	OpXQueryStatus      Opcode = 0xC3 // returns transport status register
	OpXAddPeer          Opcode = 0xC4 // attach a secondary peer
	OpXAlloc            Opcode = 0xC5 // advanced API: reserve a fast-side area (CDW: size)
	OpXFree             Opcode = 0xC6 // advanced API: release an area (CDW: start offset)
)

// Status is a command completion status.
type Status uint16

// Completion statuses.
const (
	StatusSuccess Status = 0
	StatusError   Status = 1
	StatusInvalid Status = 2
)

// Command is a submission-queue entry.
type Command struct {
	ID     uint16
	Opcode Opcode
	LBA    int64 // starting logical block
	Blocks int   // block count
	PRP    int64 // host-memory address of the data buffer
	CDW    int64 // command-specific dword (vendor extensions)
}

// Completion is a completion-queue entry.
type Completion struct {
	ID     uint16
	Status Status
	Value  int64 // command-specific result (vendor extensions)
}

// SubmissionQueue is a host-side command ring with a doorbell the device
// listens on.
type SubmissionQueue struct {
	entries  []Command
	Doorbell *sim.Signal
}

// NewSubmissionQueue creates an empty SQ in env.
func NewSubmissionQueue(env *sim.Env) *SubmissionQueue {
	return &SubmissionQueue{Doorbell: env.NewSignal()}
}

// Push enqueues a command and rings the doorbell.
func (q *SubmissionQueue) Push(c Command) {
	q.entries = append(q.entries, c)
	q.Doorbell.Broadcast()
}

// Pop dequeues the oldest command; ok is false when empty.
func (q *SubmissionQueue) Pop() (Command, bool) {
	if len(q.entries) == 0 {
		return Command{}, false
	}
	c := q.entries[0]
	q.entries = q.entries[1:]
	return c, true
}

// Len returns the number of queued commands.
func (q *SubmissionQueue) Len() int { return len(q.entries) }

// CompletionQueue is a device-side completion ring with an interrupt the
// host driver listens on.
type CompletionQueue struct {
	entries   []Completion
	Interrupt *sim.Signal
}

// NewCompletionQueue creates an empty CQ in env.
func NewCompletionQueue(env *sim.Env) *CompletionQueue {
	return &CompletionQueue{Interrupt: env.NewSignal()}
}

// Post enqueues a completion and raises the interrupt.
func (q *CompletionQueue) Post(c Completion) {
	q.entries = append(q.entries, c)
	q.Interrupt.Broadcast()
}

// Pop dequeues the oldest completion; ok is false when empty.
func (q *CompletionQueue) Pop() (Completion, bool) {
	if len(q.entries) == 0 {
		return Completion{}, false
	}
	c := q.entries[0]
	q.entries = q.entries[1:]
	return c, true
}

// Len returns the number of pending completions.
func (q *CompletionQueue) Len() int { return len(q.entries) }

// QueuePair bundles an SQ and CQ, the unit a driver binds to.
type QueuePair struct {
	SQ *SubmissionQueue
	CQ *CompletionQueue
}

// NewQueuePair creates a connected SQ/CQ pair.
func NewQueuePair(env *sim.Env) *QueuePair {
	return &QueuePair{SQ: NewSubmissionQueue(env), CQ: NewCompletionQueue(env)}
}

// Driver is the host-side NVMe driver: it issues commands on a queue pair
// and matches completions to callers.
type Driver struct {
	env    *sim.Env
	qp     *QueuePair
	nextID uint16
	done   map[uint16]Completion
	wake   *sim.Signal
}

// NewDriver binds a driver to qp and starts its interrupt-service process.
func NewDriver(env *sim.Env, qp *QueuePair) *Driver {
	d := &Driver{env: env, qp: qp, done: map[uint16]Completion{}, wake: env.NewSignal()}
	env.Go("nvme-isr", func(p *sim.Proc) {
		for {
			for {
				c, ok := qp.CQ.Pop()
				if !ok {
					break
				}
				d.done[c.ID] = c
			}
			d.wake.Broadcast()
			p.Wait(qp.CQ.Interrupt)
		}
	})
	return d
}

// Submit issues cmd and blocks the calling process until its completion
// arrives.
func (d *Driver) Submit(p *sim.Proc, cmd Command) Completion {
	d.nextID++
	cmd.ID = d.nextID
	id := cmd.ID
	d.qp.SQ.Push(cmd)
	var out Completion
	p.WaitFor(d.wake, func() bool {
		c, ok := d.done[id]
		if ok {
			out = c
			delete(d.done, id)
		}
		return ok
	})
	return out
}
