// Package nvme defines the NVMe vocabulary the simulated device speaks
// (paper §2.1): submission/completion queues with doorbells, IO commands
// (read/write/flush), and the vendor-specific admin commands the Villars
// device adds for transport and destage control (paper §4.2: "the commands
// we added are sent using vendor-specific features of the regular NVMe
// drivers").
//
// The host side scales past a single queue pair the way real NVMe does:
// a QueueSet holds N per-core SQ/CQ pairs, each SQ rings its own doorbell
// (plus the set's shared "armed" line the controller fetcher sleeps on),
// and each CQ stamps completions with a per-queue sequence number and can
// coalesce interrupts — fire after K completions or T virtual time,
// whichever comes first. The Driver matches: Submit keeps the classic
// blocking call on queue 0, while SubmitAsync/Poll/Wait expose tokens for
// callers that keep many commands in flight per queue.
package nvme

import (
	"fmt"
	"time"

	"xssd/internal/obs"
	"xssd/internal/sim"
)

// Opcode identifies a command.
type Opcode uint8

// IO and admin opcodes. The vendor-specific range (0xC0+) carries the
// X-SSD extensions.
const (
	OpFlush Opcode = 0x00
	OpWrite Opcode = 0x01
	OpRead  Opcode = 0x02

	// Vendor-specific admin commands (X-SSD extensions).
	OpXSetTransportMode Opcode = 0xC0 // CDW: TransportMode
	OpXSetDestagePolicy Opcode = 0xC1 // CDW: scheduling policy
	OpXConfigureRing    Opcode = 0xC2 // CDW: destage LBA ring base/len
	OpXQueryStatus      Opcode = 0xC3 // returns transport status register
	OpXAddPeer          Opcode = 0xC4 // attach a secondary peer
	OpXAlloc            Opcode = 0xC5 // advanced API: reserve a fast-side area (CDW: size)
	OpXFree             Opcode = 0xC6 // advanced API: release an area (CDW: start offset)
)

// Status is a command completion status.
type Status uint16

// Completion statuses.
const (
	StatusSuccess Status = 0
	StatusError   Status = 1
	StatusInvalid Status = 2
)

// Command is a submission-queue entry.
type Command struct {
	ID     uint16
	Opcode Opcode
	LBA    int64 // starting logical block
	Blocks int   // block count
	PRP    int64 // host-memory address of the data buffer
	CDW    int64 // command-specific dword (vendor extensions)
}

// Completion is a completion-queue entry.
type Completion struct {
	ID     uint16
	Status Status
	Value  int64  // command-specific result (vendor extensions)
	Seq    uint64 // per-queue sequence number, stamped by CompletionQueue.Post
}

// SubmissionQueue is a host-side command ring with a doorbell the device
// listens on. When the queue belongs to a QueueSet it additionally rings
// the set's shared armed line, which is what a multi-queue fetcher sleeps
// on (one waiter across N queues instead of N).
type SubmissionQueue struct {
	entries  []Command
	Doorbell *sim.Signal
	armed    *sim.Signal // QueueSet aggregate; nil for a standalone queue
}

// NewSubmissionQueue creates an empty SQ in env.
func NewSubmissionQueue(env *sim.Env) *SubmissionQueue {
	return &SubmissionQueue{Doorbell: env.NewSignal()}
}

// Push enqueues a command and rings the doorbell (and the owning set's
// armed line, when there is one).
//
//xssd:hotpath
func (q *SubmissionQueue) Push(c Command) {
	q.entries = append(q.entries, c)
	q.Doorbell.Broadcast()
	if q.armed != nil {
		q.armed.Broadcast()
	}
}

// Pop dequeues the oldest command; ok is false when empty.
//
//xssd:hotpath
func (q *SubmissionQueue) Pop() (Command, bool) {
	if len(q.entries) == 0 {
		return Command{}, false
	}
	c := q.entries[0]
	q.entries = q.entries[1:]
	return c, true
}

// Len returns the number of queued commands.
func (q *SubmissionQueue) Len() int { return len(q.entries) }

// Coalesce is a CQ-side interrupt-coalescing policy: raise the interrupt
// once Ops completions are pending, or Time after the first pending
// completion, whichever comes first. The zero value (and any Ops <= 1
// with Time == 0) interrupts on every completion — the classic behavior.
// Ops > 1 with Time == 0 would strand a final sub-batch forever, so
// configuration surfaces must reject it (xssd.QueueOptions does).
type Coalesce struct {
	Ops  int
	Time time.Duration
}

// enabled reports whether the policy defers any interrupts.
func (c Coalesce) enabled() bool { return c.Ops > 1 || c.Time > 0 }

// CompletionQueue is a device-side completion ring with an interrupt the
// host driver listens on. Post stamps each completion with a per-queue
// monotone sequence number; with a Coalesce policy set, the interrupt is
// batched instead of raised per completion.
type CompletionQueue struct {
	env       *sim.Env
	entries   []Completion
	Interrupt *sim.Signal
	seq       uint64
	co        Coalesce
	pending   int    // completions posted since the last interrupt
	timerOn   bool   // a coalescing timer is armed
	timerFn   func() // prebuilt callback, so Post never allocates a closure
}

// NewCompletionQueue creates an empty CQ in env.
func NewCompletionQueue(env *sim.Env) *CompletionQueue {
	q := &CompletionQueue{env: env, Interrupt: env.NewSignal()}
	q.timerFn = func() {
		q.timerOn = false
		if q.pending > 0 {
			q.fire()
		}
	}
	return q
}

// SetCoalesce installs an interrupt-coalescing policy. Call during
// bring-up, before completions flow.
func (q *CompletionQueue) SetCoalesce(co Coalesce) { q.co = co }

// Post enqueues a completion, stamps its sequence number, and raises (or
// defers, under coalescing) the interrupt.
//
//xssd:hotpath
func (q *CompletionQueue) Post(c Completion) {
	q.seq++
	c.Seq = q.seq
	q.entries = append(q.entries, c)
	if !q.co.enabled() {
		q.Interrupt.Broadcast()
		return
	}
	q.pending++
	if q.co.Ops > 1 && q.pending >= q.co.Ops {
		q.fire()
		return
	}
	if q.co.Time > 0 && !q.timerOn {
		q.timerOn = true
		q.env.After(q.co.Time, q.timerFn)
	}
}

// fire raises the coalesced interrupt and opens a new batch.
func (q *CompletionQueue) fire() {
	q.pending = 0
	q.Interrupt.Broadcast()
}

// Pop dequeues the oldest completion; ok is false when empty.
//
//xssd:hotpath
func (q *CompletionQueue) Pop() (Completion, bool) {
	if len(q.entries) == 0 {
		return Completion{}, false
	}
	c := q.entries[0]
	q.entries = q.entries[1:]
	return c, true
}

// Len returns the number of pending completions.
func (q *CompletionQueue) Len() int { return len(q.entries) }

// Seq returns the sequence number of the last posted completion.
func (q *CompletionQueue) Seq() uint64 { return q.seq }

// QueuePair bundles an SQ and CQ, the unit a driver binds to.
type QueuePair struct {
	SQ *SubmissionQueue
	CQ *CompletionQueue
}

// NewQueuePair creates a connected SQ/CQ pair.
func NewQueuePair(env *sim.Env) *QueuePair {
	return &QueuePair{SQ: NewSubmissionQueue(env), CQ: NewCompletionQueue(env)}
}

// QueueSet is the multi-queue host interface: N SQ/CQ pairs (one per
// submitting core, in the usual deployment) sharing one armed line so a
// controller fetcher can sleep on a single signal and round-robin over
// whichever SQs hold commands.
type QueueSet struct {
	pairs []*QueuePair
	armed *sim.Signal
}

// NewQueueSet creates n queue pairs (at least one) with the coalescing
// policy applied to every CQ.
func NewQueueSet(env *sim.Env, n int, co Coalesce) *QueueSet {
	if n < 1 {
		n = 1
	}
	s := &QueueSet{armed: env.NewSignal(), pairs: make([]*QueuePair, n)}
	for i := range s.pairs {
		qp := NewQueuePair(env)
		qp.SQ.armed = s.armed
		qp.CQ.SetCoalesce(co)
		s.pairs[i] = qp
	}
	return s
}

// WrapQueueSet adopts an existing pair as a one-queue set — the
// compatibility path that lets a multi-queue controller serve a device
// wired with the classic single QueuePair.
func WrapQueueSet(env *sim.Env, qp *QueuePair) *QueueSet {
	s := &QueueSet{armed: env.NewSignal(), pairs: []*QueuePair{qp}}
	qp.SQ.armed = s.armed
	return s
}

// Len returns the number of queue pairs.
func (s *QueueSet) Len() int { return len(s.pairs) }

// Pair returns queue pair i.
func (s *QueueSet) Pair(i int) *QueuePair { return s.pairs[i] }

// Armed is the shared doorbell line: broadcast whenever any SQ in the set
// receives a command.
func (s *QueueSet) Armed() *sim.Signal { return s.armed }

// Token identifies an in-flight async command: the queue it was submitted
// on and the command ID the driver assigned.
type Token struct {
	Queue int
	ID    uint16
}

// driverQueue is the driver's per-queue state: ID allocation, the
// completion stash Wait/Poll match against, and optional instruments.
type driverQueue struct {
	qp        *QueuePair
	nextID    uint16
	inflight  int
	done      map[uint16]Completion
	wake      *sim.Signal
	slotFree  func() bool              // prebuilt depth predicate for SubmitAsync
	submitAt  map[uint16]time.Duration // populated only when mLat != nil
	submitted int64
	completed int64
	lastSeq   uint64
	mLat      *obs.Histogram // submit→complete latency, ns
	cSub      *obs.Counter
	cCmp      *obs.Counter
}

// Driver is the host-side NVMe driver: it issues commands on one or more
// queue pairs and matches completions to callers. Submit is the classic
// blocking call (queue 0); SubmitAsync/Poll/Wait are the async surface
// that keeps up to the configured depth of commands in flight per queue.
type Driver struct {
	env    *sim.Env
	queues []*driverQueue
	depth  int // max in-flight per queue for SubmitAsync; 0 = unbounded
}

// NewDriver binds a single-queue driver to qp and starts its
// interrupt-service process — the classic wiring, byte-identical to the
// pre-multi-queue driver.
func NewDriver(env *sim.Env, qp *QueuePair) *Driver {
	d := &Driver{env: env}
	d.addQueue(qp, "nvme-isr")
	return d
}

// NewMultiDriver binds a driver to every pair in qs with one ISR per CQ.
// depth bounds SubmitAsync in-flight commands per queue (0 = unbounded).
func NewMultiDriver(env *sim.Env, qs *QueueSet, depth int) *Driver {
	d := &Driver{env: env, depth: depth}
	for i := 0; i < qs.Len(); i++ {
		name := "nvme-isr"
		if i > 0 {
			name = fmt.Sprintf("nvme-isr-%d", i)
		}
		d.addQueue(qs.Pair(i), name)
	}
	return d
}

// addQueue registers a pair and starts its interrupt-service process.
func (d *Driver) addQueue(qp *QueuePair, isrName string) {
	dq := &driverQueue{qp: qp, done: map[uint16]Completion{}, wake: d.env.NewSignal()}
	// Built once here so a depth stall in SubmitAsync (a hot path) does not
	// allocate a fresh closure per call.
	dq.slotFree = func() bool { return dq.inflight < d.depth }
	d.queues = append(d.queues, dq)
	d.env.Go(isrName, func(p *sim.Proc) {
		for {
			d.drain(dq)
			dq.wake.Broadcast()
			p.Wait(qp.CQ.Interrupt)
		}
	})
}

// drain moves every pending completion from the CQ into the queue's done
// stash, charging latency instruments as it goes.
//
//xssd:hotpath
func (d *Driver) drain(dq *driverQueue) {
	for {
		c, ok := dq.qp.CQ.Pop()
		if !ok {
			return
		}
		dq.done[c.ID] = c
		dq.inflight--
		dq.completed++
		dq.lastSeq = c.Seq
		dq.cCmp.Add(1)
		if dq.mLat != nil {
			if at, ok := dq.submitAt[c.ID]; ok {
				dq.mLat.ObserveDuration(d.env.Now() - at)
				delete(dq.submitAt, c.ID)
			}
		}
	}
}

// Queues returns the number of queue pairs the driver serves.
func (d *Driver) Queues() int { return len(d.queues) }

// Depth returns the per-queue in-flight bound for SubmitAsync (0 means
// unbounded).
func (d *Driver) Depth() int { return d.depth }

// Inflight returns the number of commands submitted on queue q whose
// completions have not yet been drained.
func (d *Driver) Inflight(q int) int { return d.queues[q].inflight }

// Observe registers per-queue instruments under sc: submitted/completed
// counters, sq/cq/inflight depth gauges, and the submit→complete latency
// histogram. Call during bring-up; a zero Scope keeps the driver silent.
func (d *Driver) Observe(sc obs.Scope) {
	for i, dq := range d.queues {
		q := sc.Sub(fmt.Sprintf("q%d", i))
		dq.cSub = q.Counter("submitted")
		dq.cCmp = q.Counter("completed")
		dq.mLat = q.Histogram("submit_complete_ns")
		if dq.submitAt == nil {
			dq.submitAt = map[uint16]time.Duration{}
		}
		sq, cq, dqq := dq.qp.SQ, dq.qp.CQ, dq
		q.GaugeFunc("sq_depth", func() int64 { return int64(sq.Len()) })
		q.GaugeFunc("cq_depth", func() int64 { return int64(cq.Len()) })
		q.GaugeFunc("inflight", func() int64 { return int64(dqq.inflight) })
	}
}

// Latency returns queue q's submit→complete histogram (nil unless Observe
// was called) — the latency suite reads its quantiles.
func (d *Driver) Latency(q int) *obs.Histogram { return d.queues[q].mLat }

// LastSeq returns the sequence number of the last completion drained from
// queue q — monotone per queue by construction.
func (d *Driver) LastSeq(q int) uint64 { return d.queues[q].lastSeq }

// Completed returns the number of completions drained from queue q.
func (d *Driver) Completed(q int) int64 { return d.queues[q].completed }

// Submitted returns the number of commands issued on queue q.
func (d *Driver) Submitted(q int) int64 { return d.queues[q].submitted }

// submit assigns an ID, stamps instruments, and pushes cmd on queue q.
//
//xssd:hotpath
func (d *Driver) submit(dq *driverQueue, cmd Command) uint16 {
	dq.nextID++
	cmd.ID = dq.nextID
	dq.inflight++
	dq.submitted++
	dq.cSub.Add(1)
	if dq.mLat != nil {
		dq.submitAt[cmd.ID] = d.env.Now()
	}
	dq.qp.SQ.Push(cmd)
	return cmd.ID
}

// Submit issues cmd on queue 0 and blocks the calling process until its
// completion arrives — the classic synchronous call.
func (d *Driver) Submit(p *sim.Proc, cmd Command) Completion {
	return d.SubmitOn(p, 0, cmd)
}

// SubmitOn is Submit on a chosen queue.
func (d *Driver) SubmitOn(p *sim.Proc, q int, cmd Command) Completion {
	dq := d.queues[q]
	id := d.submit(dq, cmd)
	return d.Wait(p, Token{Queue: q, ID: id})
}

// SubmitAsync issues cmd on queue q and returns a completion token
// without waiting for the device. When the queue already holds depth
// commands in flight, the caller blocks until a slot frees — the natural
// back-pressure of a fixed-depth ring.
//
//xssd:hotpath
func (d *Driver) SubmitAsync(p *sim.Proc, q int, cmd Command) Token {
	dq := d.queues[q]
	if d.depth > 0 && dq.inflight >= d.depth {
		p.WaitFor(dq.wake, dq.slotFree)
	}
	return Token{Queue: q, ID: d.submit(dq, cmd)}
}

// Poll drains queue q's CQ and reports whether tok's completion has
// arrived, consuming it if so. It never blocks — this is the polled-mode
// path that bypasses interrupt coalescing.
//
//xssd:hotpath
func (d *Driver) Poll(tok Token) (Completion, bool) {
	dq := d.queues[tok.Queue]
	d.drain(dq)
	c, ok := dq.done[tok.ID]
	if ok {
		delete(dq.done, tok.ID)
	}
	return c, ok
}

// Wait blocks the calling process until tok's completion arrives and
// returns it.
func (d *Driver) Wait(p *sim.Proc, tok Token) Completion {
	dq := d.queues[tok.Queue]
	var out Completion
	p.WaitFor(dq.wake, func() bool {
		c, ok := dq.done[tok.ID]
		if ok {
			out = c
			delete(dq.done, tok.ID)
		}
		return ok
	})
	return out
}
