package nvme

import (
	"testing"
	"time"

	"xssd/internal/sim"
)

// echoDevice is a minimal device: it pops commands and posts completions
// after a fixed delay.
func echoDevice(env *sim.Env, qp *QueuePair, delay time.Duration) {
	env.Go("echo-device", func(p *sim.Proc) {
		for {
			cmd, ok := qp.SQ.Pop()
			if !ok {
				p.Wait(qp.SQ.Doorbell)
				continue
			}
			p.Sleep(delay)
			qp.CQ.Post(Completion{ID: cmd.ID, Status: StatusSuccess, Value: cmd.CDW * 2})
		}
	})
}

func TestDriverMatchesCompletionToCaller(t *testing.T) {
	env := sim.NewEnv(1)
	qp := NewQueuePair(env)
	echoDevice(env, qp, 10*time.Microsecond)
	drv := NewDriver(env, qp)
	var got Completion
	env.Go("host", func(p *sim.Proc) {
		got = drv.Submit(p, Command{Opcode: OpXQueryStatus, CDW: 21})
	})
	env.RunUntil(time.Millisecond)
	if got.Status != StatusSuccess || got.Value != 42 {
		t.Fatalf("completion = %+v", got)
	}
}

func TestDriverConcurrentSubmitters(t *testing.T) {
	env := sim.NewEnv(1)
	qp := NewQueuePair(env)
	echoDevice(env, qp, 5*time.Microsecond)
	drv := NewDriver(env, qp)
	results := map[int]int64{}
	for i := 0; i < 10; i++ {
		i := i
		env.Go("host", func(p *sim.Proc) {
			c := drv.Submit(p, Command{Opcode: OpRead, CDW: int64(i)})
			results[i] = c.Value
		})
	}
	env.RunUntil(time.Millisecond)
	if len(results) != 10 {
		t.Fatalf("completions = %d", len(results))
	}
	for i, v := range results {
		if v != int64(i*2) {
			t.Fatalf("caller %d got value %d (cross-matched completion)", i, v)
		}
	}
}

func TestDriverSubmitAssignsUniqueIDs(t *testing.T) {
	env := sim.NewEnv(1)
	qp := NewQueuePair(env)
	seen := map[uint16]bool{}
	env.Go("device", func(p *sim.Proc) {
		for len(seen) < 5 {
			cmd, ok := qp.SQ.Pop()
			if !ok {
				p.Wait(qp.SQ.Doorbell)
				continue
			}
			if seen[cmd.ID] {
				t.Errorf("duplicate command id %d", cmd.ID)
			}
			seen[cmd.ID] = true
			qp.CQ.Post(Completion{ID: cmd.ID})
		}
	})
	drv := NewDriver(env, qp)
	env.Go("host", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			drv.Submit(p, Command{Opcode: OpFlush})
		}
	})
	env.RunUntil(time.Millisecond)
	if len(seen) != 5 {
		t.Fatalf("device saw %d commands", len(seen))
	}
}

func TestQueueDoorbellWakesConsumer(t *testing.T) {
	env := sim.NewEnv(1)
	sq := NewSubmissionQueue(env)
	var wokeAt time.Duration
	env.Go("consumer", func(p *sim.Proc) {
		p.Wait(sq.Doorbell)
		wokeAt = p.Now()
	})
	env.Go("producer", func(p *sim.Proc) {
		p.Sleep(7 * time.Microsecond)
		sq.Push(Command{ID: 1})
	})
	env.RunUntil(time.Millisecond)
	if wokeAt != 7*time.Microsecond {
		t.Fatalf("consumer woke at %v", wokeAt)
	}
}

func TestVendorOpcodeRange(t *testing.T) {
	for _, op := range []Opcode{OpXSetTransportMode, OpXSetDestagePolicy, OpXConfigureRing, OpXQueryStatus, OpXAddPeer, OpXAlloc, OpXFree} {
		if op < 0xC0 {
			t.Fatalf("vendor opcode 0x%X below vendor-specific range", op)
		}
	}
	for _, op := range []Opcode{OpFlush, OpWrite, OpRead} {
		if op >= 0xC0 {
			t.Fatalf("standard opcode 0x%X in vendor range", op)
		}
	}
}
