package nvme

import (
	"testing"
	"time"

	"xssd/internal/sim"
)

// echoDevice is a minimal device: it pops commands and posts completions
// after a fixed delay.
func echoDevice(env *sim.Env, qp *QueuePair, delay time.Duration) {
	env.Go("echo-device", func(p *sim.Proc) {
		for {
			cmd, ok := qp.SQ.Pop()
			if !ok {
				p.Wait(qp.SQ.Doorbell)
				continue
			}
			p.Sleep(delay)
			qp.CQ.Post(Completion{ID: cmd.ID, Status: StatusSuccess, Value: cmd.CDW * 2})
		}
	})
}

func TestDriverMatchesCompletionToCaller(t *testing.T) {
	env := sim.NewEnv(1)
	qp := NewQueuePair(env)
	echoDevice(env, qp, 10*time.Microsecond)
	drv := NewDriver(env, qp)
	var got Completion
	env.Go("host", func(p *sim.Proc) {
		got = drv.Submit(p, Command{Opcode: OpXQueryStatus, CDW: 21})
	})
	env.RunUntil(time.Millisecond)
	if got.Status != StatusSuccess || got.Value != 42 {
		t.Fatalf("completion = %+v", got)
	}
}

func TestDriverConcurrentSubmitters(t *testing.T) {
	env := sim.NewEnv(1)
	qp := NewQueuePair(env)
	echoDevice(env, qp, 5*time.Microsecond)
	drv := NewDriver(env, qp)
	results := map[int]int64{}
	for i := 0; i < 10; i++ {
		i := i
		env.Go("host", func(p *sim.Proc) {
			c := drv.Submit(p, Command{Opcode: OpRead, CDW: int64(i)})
			results[i] = c.Value
		})
	}
	env.RunUntil(time.Millisecond)
	if len(results) != 10 {
		t.Fatalf("completions = %d", len(results))
	}
	for i, v := range results {
		if v != int64(i*2) {
			t.Fatalf("caller %d got value %d (cross-matched completion)", i, v)
		}
	}
}

func TestDriverSubmitAssignsUniqueIDs(t *testing.T) {
	env := sim.NewEnv(1)
	qp := NewQueuePair(env)
	seen := map[uint16]bool{}
	env.Go("device", func(p *sim.Proc) {
		for len(seen) < 5 {
			cmd, ok := qp.SQ.Pop()
			if !ok {
				p.Wait(qp.SQ.Doorbell)
				continue
			}
			if seen[cmd.ID] {
				t.Errorf("duplicate command id %d", cmd.ID)
			}
			seen[cmd.ID] = true
			qp.CQ.Post(Completion{ID: cmd.ID})
		}
	})
	drv := NewDriver(env, qp)
	env.Go("host", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			drv.Submit(p, Command{Opcode: OpFlush})
		}
	})
	env.RunUntil(time.Millisecond)
	if len(seen) != 5 {
		t.Fatalf("device saw %d commands", len(seen))
	}
}

func TestQueueDoorbellWakesConsumer(t *testing.T) {
	env := sim.NewEnv(1)
	sq := NewSubmissionQueue(env)
	var wokeAt time.Duration
	env.Go("consumer", func(p *sim.Proc) {
		p.Wait(sq.Doorbell)
		wokeAt = p.Now()
	})
	env.Go("producer", func(p *sim.Proc) {
		p.Sleep(7 * time.Microsecond)
		sq.Push(Command{ID: 1})
	})
	env.RunUntil(time.Millisecond)
	if wokeAt != 7*time.Microsecond {
		t.Fatalf("consumer woke at %v", wokeAt)
	}
}

func TestVendorOpcodeRange(t *testing.T) {
	for _, op := range []Opcode{OpXSetTransportMode, OpXSetDestagePolicy, OpXConfigureRing, OpXQueryStatus, OpXAddPeer, OpXAlloc, OpXFree} {
		if op < 0xC0 {
			t.Fatalf("vendor opcode 0x%X below vendor-specific range", op)
		}
	}
	for _, op := range []Opcode{OpFlush, OpWrite, OpRead} {
		if op >= 0xC0 {
			t.Fatalf("standard opcode 0x%X in vendor range", op)
		}
	}
}

// echoSet starts one echo device per pair in the set, each popping from
// its own SQ and completing onto its own CQ.
func echoSet(env *sim.Env, qs *QueueSet, delay time.Duration) {
	for i := 0; i < qs.Len(); i++ {
		qp := qs.Pair(i)
		env.Go("echo-device", func(p *sim.Proc) {
			for {
				cmd, ok := qp.SQ.Pop()
				if !ok {
					p.Wait(qp.SQ.Doorbell)
					continue
				}
				p.Sleep(delay)
				qp.CQ.Post(Completion{ID: cmd.ID, Status: StatusSuccess, Value: cmd.CDW * 2})
			}
		})
	}
}

func TestQueueSetSharedArmedLine(t *testing.T) {
	env := sim.NewEnv(1)
	qs := NewQueueSet(env, 3, Coalesce{})
	var wakes int
	env.Go("fetcher", func(p *sim.Proc) {
		for {
			p.Wait(qs.Armed())
			wakes++
		}
	})
	env.Go("producers", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Microsecond)
			qs.Pair(i).SQ.Push(Command{Opcode: OpFlush})
		}
	})
	env.RunUntil(time.Millisecond)
	if wakes != 3 {
		t.Fatalf("armed line woke the fetcher %d times, want 3 (one per SQ push)", wakes)
	}
}

func TestCoalescingFiresAtOpsThreshold(t *testing.T) {
	env := sim.NewEnv(1)
	cq := NewCompletionQueue(env)
	cq.SetCoalesce(Coalesce{Ops: 4, Time: time.Millisecond})
	var interrupts []time.Duration
	env.Go("isr", func(p *sim.Proc) {
		for {
			p.Wait(cq.Interrupt)
			interrupts = append(interrupts, p.Now())
		}
	})
	env.Go("device", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(time.Microsecond)
			cq.Post(Completion{ID: uint16(i)})
		}
	})
	env.RunUntil(100 * time.Microsecond) // below the 1ms time bound
	if len(interrupts) != 1 || interrupts[0] != 4*time.Microsecond {
		t.Fatalf("interrupts at %v, want exactly one at the 4th post (4µs)", interrupts)
	}
}

func TestCoalescingTimerFiresFinalSubBatch(t *testing.T) {
	env := sim.NewEnv(1)
	cq := NewCompletionQueue(env)
	cq.SetCoalesce(Coalesce{Ops: 8, Time: 20 * time.Microsecond})
	var interrupts []time.Duration
	env.Go("isr", func(p *sim.Proc) {
		for {
			p.Wait(cq.Interrupt)
			interrupts = append(interrupts, p.Now())
		}
	})
	env.Go("device", func(p *sim.Proc) {
		p.Sleep(5 * time.Microsecond)
		cq.Post(Completion{ID: 1}) // 2 of 8: only the timer can fire
		cq.Post(Completion{ID: 2})
	})
	env.RunUntil(time.Millisecond)
	if len(interrupts) != 1 || interrupts[0] != 25*time.Microsecond {
		t.Fatalf("interrupts at %v, want exactly one 20µs after the first post (25µs)", interrupts)
	}
}

func TestCompletionSeqMonotone(t *testing.T) {
	env := sim.NewEnv(1)
	cq := NewCompletionQueue(env)
	for i := 0; i < 5; i++ {
		cq.Post(Completion{ID: uint16(i)})
	}
	for want := uint64(1); ; want++ {
		c, ok := cq.Pop()
		if !ok {
			if want != 6 {
				t.Fatalf("drained %d completions, want 5", want-1)
			}
			break
		}
		if c.Seq != want {
			t.Fatalf("completion %d stamped seq %d, want %d", c.ID, c.Seq, want)
		}
	}
	if cq.Seq() != 5 {
		t.Fatalf("queue seq = %d, want 5", cq.Seq())
	}
}

func TestSubmitAsyncDepthBackpressure(t *testing.T) {
	env := sim.NewEnv(1)
	qs := NewQueueSet(env, 1, Coalesce{})
	echoSet(env, qs, 10*time.Microsecond)
	drv := NewMultiDriver(env, qs, 2)
	var submitAt []time.Duration
	env.Go("host", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			drv.SubmitAsync(p, 0, Command{Opcode: OpFlush})
			submitAt = append(submitAt, p.Now())
		}
	})
	env.RunUntil(time.Millisecond)
	if len(submitAt) != 4 {
		t.Fatalf("submitted %d commands, want 4", len(submitAt))
	}
	// The first two slots are free; the third submission must block until
	// the first completion frees one (the echo device's 10µs delay).
	if submitAt[0] != 0 || submitAt[1] != 0 {
		t.Fatalf("first two submissions at %v, want both immediate", submitAt[:2])
	}
	if submitAt[2] < 10*time.Microsecond {
		t.Fatalf("third submission at %v, want blocked until a completion (>= 10µs)", submitAt[2])
	}
}

func TestPollConsumesCompletionOnce(t *testing.T) {
	env := sim.NewEnv(1)
	qs := NewQueueSet(env, 1, Coalesce{Ops: 64, Time: time.Second})
	echoSet(env, qs, 5*time.Microsecond)
	drv := NewMultiDriver(env, qs, 0)
	env.Go("host", func(p *sim.Proc) {
		tok := drv.SubmitAsync(p, 0, Command{Opcode: OpXQueryStatus, CDW: 7})
		if _, ok := drv.Poll(tok); ok {
			t.Error("Poll reported completion before the device ran")
		}
		p.Sleep(20 * time.Microsecond)
		// Coalescing would hold the interrupt for a full second, but Poll
		// is the polled-mode path: it drains the CQ directly.
		c, ok := drv.Poll(tok)
		if !ok || c.Value != 14 {
			t.Errorf("Poll after completion = %+v ok=%v, want value 14", c, ok)
		}
		if _, ok := drv.Poll(tok); ok {
			t.Error("second Poll returned the same completion twice")
		}
	})
	env.RunUntil(time.Millisecond)
}

func TestMultiDriverPerQueueIsolation(t *testing.T) {
	env := sim.NewEnv(1)
	qs := NewQueueSet(env, 2, Coalesce{})
	echoSet(env, qs, 5*time.Microsecond)
	drv := NewMultiDriver(env, qs, 0)
	env.Go("host", func(p *sim.Proc) {
		t0 := drv.SubmitAsync(p, 0, Command{Opcode: OpRead, CDW: 10})
		t1 := drv.SubmitAsync(p, 1, Command{Opcode: OpRead, CDW: 20})
		if c := drv.Wait(p, t1); c.Value != 40 {
			t.Errorf("queue 1 completion value %d, want 40", c.Value)
		}
		if c := drv.Wait(p, t0); c.Value != 20 {
			t.Errorf("queue 0 completion value %d, want 20", c.Value)
		}
	})
	env.RunUntil(time.Millisecond)
	for q := 0; q < 2; q++ {
		if drv.Submitted(q) != 1 || drv.Completed(q) != 1 || drv.LastSeq(q) != 1 {
			t.Fatalf("queue %d counters: submitted %d completed %d lastSeq %d, want 1/1/1",
				q, drv.Submitted(q), drv.Completed(q), drv.LastSeq(q))
		}
	}
}
