// Package repl manages a replication group of Villars devices (paper
// §4.2, §7.1): it wires NTB bridges between the peers, assigns transport
// roles through the vendor-specific NVMe admin commands, selects a
// replication scheme, and performs the promotion/demotion sequences the
// paper assigns to the database system.
package repl

import (
	"errors"
	"fmt"

	"xssd/internal/core"
	"xssd/internal/ntb"
	"xssd/internal/nvme"
	"xssd/internal/obs"
	"xssd/internal/sim"
	"xssd/internal/villars"
)

// Sentinel errors. Concrete failures wrap these with device context, so
// callers match with errors.Is.
var (
	// ErrNoDevices reports a cluster constructed over zero devices.
	ErrNoDevices = errors.New("repl: cluster needs at least one device")
	// ErrIndexRange reports a primary/promote index outside the device set.
	ErrIndexRange = errors.New("repl: device index out of range")
	// ErrChainTooShort reports a chain setup over fewer than two devices.
	ErrChainTooShort = errors.New("repl: a chain needs at least two devices")
	// ErrModeRejected reports a device refusing a transport-mode command.
	ErrModeRejected = errors.New("repl: device rejected transport-mode command")
	// ErrNoCandidate reports an election with no promotable secondary:
	// every survivor is dead or its shadow reporting is frozen. A failover
	// manager retries once freezes expire.
	ErrNoCandidate = errors.New("repl: no promotable secondary")
)

// Cluster is a replication group. Exactly one member is primary; the rest
// are secondaries receiving the mirrored fast-side stream.
type Cluster struct {
	env     *sim.Env
	devices []*villars.Device
	primary int
	scheme  core.ReplicationScheme

	// bridges[i][j] carries traffic from device i to device j.
	bridges [][]*ntb.Bridge

	// order is the chain topology as device indices, head first (nil for
	// star schemes). Election and reconfiguration walk it so takeovers
	// preserve the chain's prefix ordering.
	order []int

	promotions int
}

// New creates a cluster over devices (at least one) with a full mesh of
// NTB bridges, so any member can later be promoted without re-cabling.
// Metrics register under the "repl" scope; a process embedding several
// replica sets in one metrics tree should use NewScoped instead.
func New(env *sim.Env, devices []*villars.Device) (*Cluster, error) {
	return NewScoped(env, devices, "repl")
}

// NewScoped is New with the metrics scope chosen by the caller, so
// multiple replica sets (one per shard, say) keep distinct names.
func NewScoped(env *sim.Env, devices []*villars.Device, scope string) (*Cluster, error) {
	if len(devices) == 0 {
		return nil, ErrNoDevices
	}
	c := &Cluster{env: env, devices: devices, primary: -1}
	c.bridges = make([][]*ntb.Bridge, len(devices))
	for i := range devices {
		c.bridges[i] = make([]*ntb.Bridge, len(devices))
		for j := range devices {
			if i == j {
				continue
			}
			// Each bridge belongs to the sending device's Env: in a
			// multi-env group the far end is a different member and
			// deliveries cross through the group mailbox; with every device
			// on one Env this reduces to the classic intra-env bridge.
			c.bridges[i][j] = ntb.NewDefaultBridgeTo(devices[i].Env(), devices[j].Env(), fmt.Sprintf("%s->%s", devices[i].Name(), devices[j].Name()))
		}
	}
	sc := obs.For(env).Scope(scope)
	sc.GaugeFunc("promotions", func() int64 { return int64(c.promotions) })
	sc.GaugeFunc("primary", func() int64 { return int64(c.primary) })
	return c, nil
}

// ClusterStats is the typed telemetry snapshot of a replication group.
type ClusterStats struct {
	// Primary is the current primary's device name ("" before Setup).
	Primary string
	// Scheme is the active replication scheme.
	Scheme core.ReplicationScheme
	// Promotions counts completed failovers.
	Promotions int
	// Lag holds, per secondary peer of the primary, how many stream bytes
	// its shadow counter trails the primary's local counter.
	Lag []int64
}

// Stats returns the cluster's typed snapshot.
func (c *Cluster) Stats() ClusterStats {
	s := ClusterStats{Scheme: c.scheme, Promotions: c.promotions, Lag: c.Lag()}
	if p := c.Primary(); p != nil {
		s.Primary = p.Name()
	}
	return s
}

// Devices returns the cluster members.
func (c *Cluster) Devices() []*villars.Device { return c.devices }

// Primary returns the current primary, or nil before Setup.
func (c *Cluster) Primary() *villars.Device {
	if c.primary < 0 {
		return nil
	}
	return c.devices[c.primary]
}

// Secondaries returns the non-primary members in peer order.
func (c *Cluster) Secondaries() []*villars.Device {
	var out []*villars.Device
	for i, d := range c.devices {
		if i != c.primary {
			out = append(out, d)
		}
	}
	return out
}

// Scheme returns the active replication scheme.
func (c *Cluster) Scheme() core.ReplicationScheme { return c.scheme }

// setMode issues the vendor-specific transport-mode command to a device.
func setMode(p *sim.Proc, d *villars.Device, mode core.TransportMode) error {
	comp := d.HostDriver().Submit(p, nvme.Command{
		Opcode: nvme.OpXSetTransportMode,
		CDW:    int64(mode),
	})
	if comp.Status != nvme.StatusSuccess {
		return fmt.Errorf("%w: set %s on %s (status %d)", ErrModeRejected, mode, d.Name(), comp.Status)
	}
	return nil
}

// Setup elects devices[primaryIdx] primary with the given scheme and turns
// the rest into secondaries. Must run in process context.
//
//xssd:conduit cluster bring-up: devices are quiescent until roles are assigned
func (c *Cluster) Setup(p *sim.Proc, primaryIdx int, scheme core.ReplicationScheme) error {
	if primaryIdx < 0 || primaryIdx >= len(c.devices) {
		return fmt.Errorf("%w: primary %d of %d devices", ErrIndexRange, primaryIdx, len(c.devices))
	}
	c.primary = primaryIdx
	c.scheme = scheme
	c.order = nil
	prim := c.devices[primaryIdx]
	prim.Transport().ClearPeers()
	prim.Transport().SetScheme(scheme)
	for i, d := range c.devices {
		if i == primaryIdx {
			continue
		}
		if err := setMode(p, d, core.Secondary); err != nil {
			return err
		}
		prim.Transport().AddPeer(d, c.bridges[primaryIdx][i], c.bridges[i][primaryIdx])
	}
	return setMode(p, prim, core.Primary)
}

// SetupChain wires the devices as a replication chain (paper §4.2):
// devices[0] is the head (primary), each member mirrors to its successor
// and reports whole-chain persistence upstream, and the head reports the
// chain-combined counter to the database.
//
//xssd:conduit cluster bring-up: devices are quiescent until roles are assigned
func (c *Cluster) SetupChain(p *sim.Proc) error {
	if len(c.devices) < 2 {
		return fmt.Errorf("%w: have %d", ErrChainTooShort, len(c.devices))
	}
	c.primary = 0
	c.scheme = core.Chain
	c.order = make([]int, len(c.devices))
	for i := range c.order {
		c.order[i] = i
	}
	for i, d := range c.devices {
		d.Transport().ClearPeers()
		if i == 0 {
			d.Transport().SetScheme(core.Chain)
			continue
		}
		if err := setMode(p, d, core.Secondary); err != nil {
			return err
		}
	}
	// Wire links head -> ... -> tail; AddPeer also installs the reverse
	// counter-report window.
	for i := 0; i < len(c.devices)-1; i++ {
		c.devices[i].Transport().AddPeer(c.devices[i+1], c.bridges[i][i+1], c.bridges[i+1][i])
	}
	return setMode(p, c.devices[0], core.Primary)
}

// Promote fails over to devices[newPrimary]: the old primary (if alive) is
// demoted to secondary and the peer set is rebuilt around the new primary.
// The paper (§7.1) leaves catch-up data transfer to the database; Promote
// only performs the role changes.
//
//xssd:conduit role change at the failover barrier: no host traffic flows while peers are re-wired
func (c *Cluster) Promote(p *sim.Proc, newPrimary int) error {
	if newPrimary < 0 || newPrimary >= len(c.devices) {
		return fmt.Errorf("%w: promote %d of %d devices", ErrIndexRange, newPrimary, len(c.devices))
	}
	if newPrimary == c.primary {
		return nil
	}
	old := c.primary
	if old >= 0 && !c.devices[old].PowerLost() {
		if err := setMode(p, c.devices[old], core.Secondary); err != nil {
			return err
		}
		c.devices[old].Transport().ClearPeers()
	}
	c.promotions++
	// Rebuild peers around the new primary, skipping dead devices. The
	// result is a star regardless of scheme, so any chain order is void.
	c.order = nil
	c.primary = newPrimary
	prim := c.devices[newPrimary]
	prim.Transport().ClearPeers()
	prim.Transport().SetScheme(c.scheme)
	for i, d := range c.devices {
		if i == newPrimary || d.PowerLost() {
			continue
		}
		if err := setMode(p, d, core.Secondary); err != nil {
			return err
		}
		prim.Transport().AddPeer(d, c.bridges[newPrimary][i], c.bridges[i][newPrimary])
	}
	return setMode(p, prim, core.Primary)
}

// Promotions returns how many failovers the cluster has performed.
func (c *Cluster) Promotions() int { return c.promotions }

// Elect picks the secondary to promote after the primary's death,
// per scheme (paper §4.2: the shadow counters exist precisely so a
// surviving peer knows the persisted prefix it may serve from):
//
//   - chain: the next link in chain order — it holds the longest prefix
//     by the chain's construction, and promoting it preserves every
//     downstream link's retransmission state. A frozen next link is not
//     skipped (reordering the chain would orphan retransmission windows);
//     the election fails and the caller retries once the freeze expires.
//   - eager/lazy: the survivor with the longest persisted prefix, ties
//     broken by the lowest device index.
//
// Devices that are power-lost or advertising StatusShadowFrozen are
// never elected. Returns ErrNoCandidate when no survivor qualifies.
func (c *Cluster) Elect() (int, error) {
	if c.scheme == core.Chain && c.order != nil {
		pos := 0
		for i, idx := range c.order {
			if idx == c.primary {
				pos = i + 1
				break
			}
		}
		for _, idx := range c.order[pos:] {
			d := c.devices[idx]
			if d.PowerLost() {
				continue
			}
			if d.Transport().ShadowFrozen() {
				return 0, fmt.Errorf("%w: next chain link %s is frozen", ErrNoCandidate, d.Name())
			}
			return idx, nil
		}
		return 0, fmt.Errorf("%w: no live link after %d in the chain", ErrNoCandidate, c.primary)
	}
	best, bestFr := -1, int64(-1)
	for i, d := range c.devices {
		if i == c.primary || d.PowerLost() || d.Transport().ShadowFrozen() {
			continue
		}
		if fr := d.CMB().Ring().Frontier(); fr > bestFr {
			best, bestFr = i, fr
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("%w: scheme %s", ErrNoCandidate, c.scheme)
	}
	return best, nil
}

// Reconfigure fails over to devices[newPrimary] with the topology rebuilt
// per scheme. Star schemes (eager/lazy) delegate to Promote. For a chain,
// the new head must be a link of the current chain: every link below it
// stays wired — preserving each link's retransmission window, so holes
// downstream heal through the ordinary repair path — and the dead prefix
// of the chain is simply cut off. As with Promote, catch-up data transfer
// is the database's job (paper §7.1; see the failover manager).
//
//xssd:conduit role change at the failover barrier: no host traffic flows while peers are re-wired
func (c *Cluster) Reconfigure(p *sim.Proc, newPrimary int) error {
	if c.scheme != core.Chain || c.order == nil {
		return c.Promote(p, newPrimary)
	}
	if newPrimary < 0 || newPrimary >= len(c.devices) {
		return fmt.Errorf("%w: promote %d of %d devices", ErrIndexRange, newPrimary, len(c.devices))
	}
	if newPrimary == c.primary {
		return nil
	}
	pos := -1
	for i, idx := range c.order {
		if idx == newPrimary {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("%w: device %d is not a chain link", ErrIndexRange, newPrimary)
	}
	old := c.primary
	if old >= 0 && !c.devices[old].PowerLost() {
		// Planned handoff: the old head leaves the chain entirely.
		if err := setMode(p, c.devices[old], core.Secondary); err != nil {
			return err
		}
		c.devices[old].Transport().ClearPeers()
	}
	c.primary = newPrimary
	c.order = c.order[pos:]
	c.promotions++
	head := c.devices[newPrimary]
	head.Transport().SetScheme(core.Chain)
	return setMode(p, head, core.Primary)
}

// Lag returns, for each secondary peer of the current primary, how many
// stream bytes its shadow counter trails the primary's local counter.
func (c *Cluster) Lag() []int64 {
	prim := c.Primary()
	if prim == nil {
		return nil
	}
	local := prim.CMB().Ring().Frontier()
	n := prim.Transport().Peers()
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = local - prim.Transport().Shadow(i)
	}
	return out
}
