package repl

import (
	"fmt"
	"testing"
	"time"

	"xssd/internal/core"
	"xssd/internal/sim"
	"xssd/internal/villars"
)

// Chain replication (paper §4.2): the head mirrors to its successor, each
// link relays onward, and the head's effective credit tracks whole-chain
// persistence through a single shadow counter.

// makeDevices builds n small test devices named n0..n(n-1).
func makeDevices(env *sim.Env, n int) []*villars.Device {
	out := make([]*villars.Device, n)
	for i := range out {
		out[i] = testDevice(env, fmt.Sprintf("n%d", i))
	}
	return out
}

func chainCluster(t *testing.T, env *sim.Env, n int) *Cluster {
	t.Helper()
	c, err := New(env, makeDevices(env, n))
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	env.Go("setup", func(p *sim.Proc) {
		if err := c.SetupChain(p); err != nil {
			t.Errorf("setup chain: %v", err)
			return
		}
		ok = true
	})
	env.RunUntil(env.Now() + time.Millisecond)
	if !ok {
		t.Fatal("chain setup did not complete")
	}
	return c
}

func TestChainDataReachesTail(t *testing.T) {
	env := sim.NewEnv(1)
	c := chainCluster(t, env, 3)
	env.Go("db", func(p *sim.Proc) {
		c.devices[0].CMB().MemWrite(0, make([]byte, 512))
	})
	env.RunUntil(env.Now() + 100*time.Millisecond)
	for i, d := range c.devices {
		if got := d.CMB().Ring().Frontier(); got != 512 {
			t.Fatalf("node %d frontier = %d, want 512 (relay broken)", i, got)
		}
	}
}

func TestChainHeadCreditTracksWholeChain(t *testing.T) {
	env := sim.NewEnv(1)
	c := chainCluster(t, env, 3)
	env.Go("db", func(p *sim.Proc) {
		c.devices[0].CMB().MemWrite(0, make([]byte, 256))
	})
	env.RunUntil(env.Now() + 100*time.Millisecond)
	head := c.devices[0]
	if got := head.EffectiveCredit(); got != 256 {
		t.Fatalf("head chain credit = %d, want 256", got)
	}
	// The head has exactly one peer (its successor), whose reported value
	// is the whole-chain minimum.
	if head.Transport().Peers() != 1 {
		t.Fatalf("head peers = %d, want 1 (chain, not star)", head.Transport().Peers())
	}
	if got := head.Transport().Shadow(0); got != 256 {
		t.Fatalf("head shadow = %d, want chain-combined 256", got)
	}
}

func TestChainNeedsTwoDevices(t *testing.T) {
	env := sim.NewEnv(1)
	c, err := New(env, makeDevices(env, 1))
	if err != nil {
		t.Fatal(err)
	}
	env.Go("setup", func(p *sim.Proc) {
		if err := c.SetupChain(p); err == nil {
			t.Error("single-node chain accepted")
		}
	})
	env.RunUntil(env.Now() + time.Millisecond)
}

func TestChainSchemeRecorded(t *testing.T) {
	env := sim.NewEnv(1)
	c := chainCluster(t, env, 2)
	if c.Scheme() != core.Chain {
		t.Fatalf("scheme = %v", c.Scheme())
	}
	if c.Primary().Transport().Scheme() != core.Chain {
		t.Fatal("head scheme not chain")
	}
}
