package repl

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"xssd/internal/core"
	"xssd/internal/fault"
	"xssd/internal/sim"
	"xssd/internal/villars"
)

// Chain replication (paper §4.2): the head mirrors to its successor, each
// link relays onward, and the head's effective credit tracks whole-chain
// persistence through a single shadow counter.

// makeDevices builds n small test devices named n0..n(n-1).
func makeDevices(env *sim.Env, n int) []*villars.Device {
	out := make([]*villars.Device, n)
	for i := range out {
		out[i] = testDevice(env, fmt.Sprintf("n%d", i))
	}
	return out
}

func chainCluster(t *testing.T, env *sim.Env, n int) *Cluster {
	t.Helper()
	c, err := New(env, makeDevices(env, n))
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	env.Go("setup", func(p *sim.Proc) {
		if err := c.SetupChain(p); err != nil {
			t.Errorf("setup chain: %v", err)
			return
		}
		ok = true
	})
	env.RunUntil(env.Now() + time.Millisecond)
	if !ok {
		t.Fatal("chain setup did not complete")
	}
	return c
}

func TestChainDataReachesTail(t *testing.T) {
	env := sim.NewEnv(1)
	c := chainCluster(t, env, 3)
	env.Go("db", func(p *sim.Proc) {
		c.devices[0].CMB().MemWrite(0, make([]byte, 512))
	})
	env.RunUntil(env.Now() + 100*time.Millisecond)
	for i, d := range c.devices {
		if got := d.CMB().Ring().Frontier(); got != 512 {
			t.Fatalf("node %d frontier = %d, want 512 (relay broken)", i, got)
		}
	}
}

func TestChainHeadCreditTracksWholeChain(t *testing.T) {
	env := sim.NewEnv(1)
	c := chainCluster(t, env, 3)
	env.Go("db", func(p *sim.Proc) {
		c.devices[0].CMB().MemWrite(0, make([]byte, 256))
	})
	env.RunUntil(env.Now() + 100*time.Millisecond)
	head := c.devices[0]
	if got := head.EffectiveCredit(); got != 256 {
		t.Fatalf("head chain credit = %d, want 256", got)
	}
	// The head has exactly one peer (its successor), whose reported value
	// is the whole-chain minimum.
	if head.Transport().Peers() != 1 {
		t.Fatalf("head peers = %d, want 1 (chain, not star)", head.Transport().Peers())
	}
	if got := head.Transport().Shadow(0); got != 256 {
		t.Fatalf("head shadow = %d, want chain-combined 256", got)
	}
}

func TestChainNeedsTwoDevices(t *testing.T) {
	env := sim.NewEnv(1)
	c, err := New(env, makeDevices(env, 1))
	if err != nil {
		t.Fatal(err)
	}
	env.Go("setup", func(p *sim.Proc) {
		if err := c.SetupChain(p); err == nil {
			t.Error("single-node chain accepted")
		}
	})
	env.RunUntil(env.Now() + time.Millisecond)
}

func TestChainSchemeRecorded(t *testing.T) {
	env := sim.NewEnv(1)
	c := chainCluster(t, env, 2)
	if c.Scheme() != core.Chain {
		t.Fatalf("scheme = %v", c.Scheme())
	}
	if c.Primary().Transport().Scheme() != core.Chain {
		t.Fatal("head scheme not chain")
	}
}

// attachPlan parses a fault plan and attaches its injector to env.
func attachPlan(t *testing.T, env *sim.Env, text string) {
	t.Helper()
	plan, err := fault.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	fault.Attach(env, fault.New(env, plan))
	t.Cleanup(func() { fault.Detach(env) })
}

// TestChainMidLinkDropRepairResends drops the first chunk a mid link
// relays downstream (n1 -> n2): the tail must converge anyway, through
// n1's repair-resend of its unacked window — the same retransmission
// state a chain takeover relies on to heal downstream holes without a
// backfill.
func TestChainMidLinkDropRepairResends(t *testing.T) {
	env := sim.NewEnv(1)
	attachPlan(t, env, "on 1 transport.mirror@n1 drop\n")
	c := chainCluster(t, env, 3)
	env.Go("db", func(p *sim.Proc) {
		c.devices[0].CMB().MemWrite(0, make([]byte, 512))
	})
	env.RunUntil(env.Now() + 100*time.Millisecond)

	drops, _, resends, _ := c.devices[1].Transport().FaultStats()
	if drops == 0 {
		t.Fatal("mid-link drop never fired")
	}
	if resends == 0 {
		t.Fatal("mid link converged without a repair resend")
	}
	if got := c.devices[2].CMB().Ring().Frontier(); got != 512 {
		t.Fatalf("tail frontier = %d after the repair window, want 512", got)
	}
}

// TestElectChainNextLink: a chain election picks the next link after the
// dead head — never a deeper survivor, even though frontiers tie — and
// walks past dead links to the next live one.
func TestElectChainNextLink(t *testing.T) {
	env := sim.NewEnv(1)
	c := chainCluster(t, env, 3)
	env.Go("db", func(p *sim.Proc) {
		c.devices[0].CMB().MemWrite(0, make([]byte, 512))
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)

	c.devices[0].InjectPowerLoss()
	idx, err := c.Elect()
	if err != nil {
		t.Fatalf("Elect: %v", err)
	}
	if idx != 1 {
		t.Fatalf("elected %d, want the next link 1", idx)
	}

	c.devices[1].InjectPowerLoss()
	idx, err = c.Elect()
	if err != nil {
		t.Fatalf("Elect past dead link: %v", err)
	}
	if idx != 2 {
		t.Fatalf("elected %d, want 2", idx)
	}

	c.devices[2].InjectPowerLoss()
	if _, err := c.Elect(); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("Elect over a dead chain: %v, want ErrNoCandidate", err)
	}
}

// TestElectChainFrozenNextLink: a frozen next link is not skipped —
// reordering the chain would orphan downstream retransmission windows —
// so the election fails with ErrNoCandidate until the freeze expires,
// then returns the same link.
func TestElectChainFrozenNextLink(t *testing.T) {
	env := sim.NewEnv(1)
	attachPlan(t, env, "at 1500µs transport.shadow@n1 freeze 5ms\n")
	c := chainCluster(t, env, 3)
	env.RunUntil(env.Now() + 2*time.Millisecond)
	c.devices[0].InjectPowerLoss()

	if !c.devices[1].Transport().ShadowFrozen() {
		t.Fatal("n1 shadow not frozen at election time")
	}
	if _, err := c.Elect(); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("Elect with frozen next link: %v, want ErrNoCandidate", err)
	}

	env.RunUntil(env.Now() + 10*time.Millisecond)
	idx, err := c.Elect()
	if err != nil {
		t.Fatalf("Elect after the freeze expired: %v", err)
	}
	if idx != 1 {
		t.Fatalf("elected %d, want the thawed next link 1", idx)
	}
}

// TestElectStarSkipsFrozenPeer: under a star scheme a frozen survivor is
// passed over — its persisted prefix cannot be trusted as current — and
// becomes electable again once the freeze expires, then winning the
// lowest-index tie-break against an equal-frontier peer.
func TestElectStarSkipsFrozenPeer(t *testing.T) {
	env := sim.NewEnv(1)
	attachPlan(t, env, "at 1500µs transport.shadow@n1 freeze 5ms\n")
	c := threeNodeCluster(t, env, core.Eager)
	env.Go("db", func(p *sim.Proc) {
		c.Primary().CMB().MemWrite(0, make([]byte, 512))
	})
	env.RunUntil(env.Now() + 2*time.Millisecond)
	c.devices[0].InjectPowerLoss()

	if !c.devices[1].Transport().ShadowFrozen() {
		t.Fatal("n1 shadow not frozen at election time")
	}
	idx, err := c.Elect()
	if err != nil {
		t.Fatalf("Elect: %v", err)
	}
	if idx != 2 {
		t.Fatalf("elected %d, want 2 (n1 frozen)", idx)
	}

	env.RunUntil(env.Now() + 10*time.Millisecond)
	idx, err = c.Elect()
	if err != nil {
		t.Fatalf("Elect after the freeze expired: %v", err)
	}
	if idx != 1 {
		t.Fatalf("elected %d, want 1 (equal frontiers, lowest index)", idx)
	}
}

// TestElectNoSurvivors: with every member dead the election reports
// ErrNoCandidate rather than promoting a corpse.
func TestElectNoSurvivors(t *testing.T) {
	env := sim.NewEnv(1)
	c := threeNodeCluster(t, env, core.Lazy)
	for _, d := range c.Devices() {
		d.InjectPowerLoss()
	}
	if _, err := c.Elect(); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("Elect over a dead cluster: %v, want ErrNoCandidate", err)
	}
}

// TestReconfigureChainCutsDeadPrefix: a chain takeover promotes the next
// link in place — the order shrinks to the surviving suffix and the
// downstream link stays wired, its retransmission window intact, so new
// head writes still reach the tail.
func TestReconfigureChainCutsDeadPrefix(t *testing.T) {
	env := sim.NewEnv(1)
	c := chainCluster(t, env, 3)
	env.Go("db", func(p *sim.Proc) {
		c.devices[0].CMB().MemWrite(0, make([]byte, 256))
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)
	c.devices[0].InjectPowerLoss()

	done := false
	env.Go("takeover", func(p *sim.Proc) {
		idx, err := c.Elect()
		if err != nil {
			t.Errorf("Elect: %v", err)
			return
		}
		if err := c.Reconfigure(p, idx); err != nil {
			t.Errorf("Reconfigure: %v", err)
			return
		}
		done = true
	})
	env.RunUntil(env.Now() + time.Millisecond)
	if !done {
		t.Fatal("takeover never completed")
	}
	if c.Primary() != c.devices[1] {
		t.Fatalf("primary = %s, want n1", c.Primary().Name())
	}
	if got := c.devices[1].Transport().Mode(); got != core.Primary {
		t.Fatalf("new head mode = %v", got)
	}
	if peers := c.devices[1].Transport().Peers(); peers != 1 {
		t.Fatalf("new head peers = %d, want its preserved downstream link", peers)
	}
	if c.Promotions() != 1 {
		t.Fatalf("promotions = %d", c.Promotions())
	}
	// The preserved link still replicates: new head writes reach the tail.
	env.Go("db2", func(p *sim.Proc) {
		c.devices[1].CMB().MemWrite(256, make([]byte, 128))
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)
	if got := c.devices[2].CMB().Ring().Frontier(); got != 384 {
		t.Fatalf("tail frontier = %d after new-head write, want 384", got)
	}
}
