package repl

import (
	"testing"
	"time"

	"xssd/internal/core"
	"xssd/internal/nand"
	"xssd/internal/pcie"
	"xssd/internal/sim"
	"xssd/internal/villars"
)

func testDevice(env *sim.Env, name string) *villars.Device {
	cfg := villars.DefaultConfig(name)
	cfg.Geometry = nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 32, PagesPerBlock: 32, PageSize: 2048}
	cfg.Timing = nand.Timing{TRead: 5 * time.Microsecond, TProg: 20 * time.Microsecond, TErase: 100 * time.Microsecond, BusRate: 1e9}
	cfg.QueueSize = 4096
	cfg.CMBSize = 64 << 10
	return villars.New(env, cfg, pcie.NewHostMemory(1<<20))
}

func threeNodeCluster(t *testing.T, env *sim.Env, scheme core.ReplicationScheme) *Cluster {
	t.Helper()
	devs := []*villars.Device{testDevice(env, "n0"), testDevice(env, "n1"), testDevice(env, "n2")}
	c, err := New(env, devs)
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	env.Go("setup", func(p *sim.Proc) {
		if err := c.Setup(p, 0, scheme); err != nil {
			t.Errorf("setup: %v", err)
			return
		}
		ok = true
	})
	env.RunUntil(env.Now() + time.Millisecond)
	if !ok {
		t.Fatal("setup never completed")
	}
	return c
}

func TestSetupAssignsRoles(t *testing.T) {
	env := sim.NewEnv(1)
	c := threeNodeCluster(t, env, core.Eager)
	if c.Primary().Name() != "n0" {
		t.Fatalf("primary = %s", c.Primary().Name())
	}
	if got := c.Primary().Transport().Mode(); got != core.Primary {
		t.Fatalf("primary mode = %v", got)
	}
	secs := c.Secondaries()
	if len(secs) != 2 {
		t.Fatalf("secondaries = %d", len(secs))
	}
	for _, s := range secs {
		if s.Transport().Mode() != core.Secondary {
			t.Fatalf("%s mode = %v", s.Name(), s.Transport().Mode())
		}
	}
	if c.Primary().Transport().Peers() != 2 {
		t.Fatalf("peer count = %d", c.Primary().Transport().Peers())
	}
}

func TestWritesReachAllSecondaries(t *testing.T) {
	env := sim.NewEnv(1)
	c := threeNodeCluster(t, env, core.Eager)
	env.Go("db", func(p *sim.Proc) {
		c.Primary().CMB().MemWrite(0, make([]byte, 512))
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)
	for _, s := range c.Secondaries() {
		if s.CMB().Ring().Frontier() != 512 {
			t.Fatalf("%s frontier = %d", s.Name(), s.CMB().Ring().Frontier())
		}
	}
	for i, lag := range c.Lag() {
		if lag != 0 {
			t.Fatalf("peer %d lag = %d after settle", i, lag)
		}
	}
}

func TestEmptyClusterRejected(t *testing.T) {
	env := sim.NewEnv(1)
	if _, err := New(env, nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestSetupIndexOutOfRange(t *testing.T) {
	env := sim.NewEnv(1)
	c, _ := New(env, []*villars.Device{testDevice(env, "solo")})
	env.Go("setup", func(p *sim.Proc) {
		if err := c.Setup(p, 5, core.Eager); err == nil {
			t.Error("out-of-range primary accepted")
		}
	})
	env.RunUntil(time.Millisecond)
}

func TestPromoteAfterPrimaryFailure(t *testing.T) {
	env := sim.NewEnv(1)
	c := threeNodeCluster(t, env, core.Eager)
	// Replicate some data, then kill the primary.
	env.Go("db", func(p *sim.Proc) {
		c.Primary().CMB().MemWrite(0, make([]byte, 256))
		p.Sleep(10 * time.Millisecond)
		c.Primary().InjectPowerLoss()
		if err := c.Promote(p, 1); err != nil {
			t.Errorf("promote: %v", err)
			return
		}
	})
	env.RunUntil(env.Now() + 100*time.Millisecond)
	if c.Primary().Name() != "n1" {
		t.Fatalf("primary after failover = %s", c.Primary().Name())
	}
	if c.Primary().Transport().Mode() != core.Primary {
		t.Fatal("new primary not in primary mode")
	}
	// Only n2 remains a peer (n0 is dead).
	if c.Primary().Transport().Peers() != 1 {
		t.Fatalf("peer count after failover = %d", c.Primary().Transport().Peers())
	}
	if c.Promotions() != 1 {
		t.Fatalf("promotions = %d", c.Promotions())
	}
	// New primary replicates onward to the surviving secondary.
	env.Go("db2", func(p *sim.Proc) {
		c.Primary().CMB().MemWrite(256, make([]byte, 128))
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)
	n2 := c.devices[2]
	if n2.CMB().Ring().Frontier() != 384 {
		t.Fatalf("survivor frontier = %d, want 384", n2.CMB().Ring().Frontier())
	}
}

func TestPromoteSamePrimaryNoop(t *testing.T) {
	env := sim.NewEnv(1)
	c := threeNodeCluster(t, env, core.Lazy)
	env.Go("p", func(p *sim.Proc) {
		if err := c.Promote(p, 0); err != nil {
			t.Errorf("noop promote: %v", err)
		}
	})
	env.RunUntil(env.Now() + time.Millisecond)
	if c.Promotions() != 0 {
		t.Fatal("noop promote counted")
	}
}

func TestSchemeAppliedToPrimary(t *testing.T) {
	env := sim.NewEnv(1)
	c := threeNodeCluster(t, env, core.Chain)
	if c.Primary().Transport().Scheme() != core.Chain {
		t.Fatal("scheme not applied")
	}
	if c.Scheme() != core.Chain {
		t.Fatal("cluster scheme not recorded")
	}
}
