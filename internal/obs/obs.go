// Package obs is the deterministic observability layer: a per-environment
// metrics registry holding counters, gauges and virtual-time histograms
// with hierarchical names ("dev0/destage/pages", "dev0/transport/peer1/lag").
//
// Everything is driven by sim.Env virtual time — never the wall clock — so
// two runs with the same seed produce bit-identical snapshots; the snapshot
// carries a fingerprint over its canonical encoding to make that cheap to
// assert. Instruments are plain in-process accumulators (an Add is one
// int64 add, a histogram Observe is one bits.Len64 plus three adds), cheap
// enough to stay always-on in the hot paths.
//
// All instrument methods are nil-receiver safe: a module may hold
// instrument pointers that are only populated when observation is wired up
// (see the Observe hooks on sched, nand and ftl) and record through them
// unconditionally.
package obs

import (
	"math/bits"
	"time"

	"xssd/internal/sim"
)

// envKey is the sim.Env attachment slot the registry lives in.
const envKey = "obs.registry"

// For returns the metrics registry of env, creating and attaching it on
// first use. Lookups key on the environment alone, so no cross-env order
// can leak into results; the registry shares the environment's lifetime.
func For(env *sim.Env) *Registry {
	if r, ok := env.Attachment(envKey).(*Registry); ok {
		return r
	}
	r := &Registry{
		env:        env,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFns:   make(map[string]func() int64),
		histograms: make(map[string]*Histogram),
	}
	env.Attach(envKey, r)
	return r
}

// Registry names and owns the instruments of one simulation environment.
// Registering the same (kind, name) twice returns the already-registered
// instrument, so independent components may share a series (two xapi
// loggers on the same device accumulate into one counter). Names are
// hierarchical slash-separated paths; snapshots emit them in sorted order.
type Registry struct {
	env        *sim.Env
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFns   map[string]func() int64
	histograms map[string]*Histogram

	// Instruments are carved from fixed-size slabs instead of allocated
	// one by one: hot counters end up adjacent in memory, and registration
	// stops being one heap object per series. Slab elements never move, so
	// handed-out pointers stay stable for the registry's lifetime.
	counterSlab *[counterSlabSize]Counter
	counterUsed int
	gaugeSlab   *[counterSlabSize]Gauge
	gaugeUsed   int
	histSlab    *[histSlabSize]Histogram
	histUsed    int
}

const (
	counterSlabSize = 64
	histSlabSize    = 8
)

func (r *Registry) newCounter() *Counter {
	if r.counterSlab == nil || r.counterUsed == len(r.counterSlab) {
		r.counterSlab = new([counterSlabSize]Counter)
		r.counterUsed = 0
	}
	c := &r.counterSlab[r.counterUsed]
	r.counterUsed++
	return c
}

func (r *Registry) newGauge() *Gauge {
	if r.gaugeSlab == nil || r.gaugeUsed == len(r.gaugeSlab) {
		r.gaugeSlab = new([counterSlabSize]Gauge)
		r.gaugeUsed = 0
	}
	g := &r.gaugeSlab[r.gaugeUsed]
	r.gaugeUsed++
	return g
}

func (r *Registry) newHistogram() *Histogram {
	if r.histSlab == nil || r.histUsed == len(r.histSlab) {
		r.histSlab = new([histSlabSize]Histogram)
		r.histUsed = 0
	}
	h := &r.histSlab[r.histUsed]
	r.histUsed++
	return h
}

// Env returns the environment whose virtual clock drives the registry.
func (r *Registry) Env() *sim.Env { return r.env }

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := r.newCounter()
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := r.newGauge()
	r.gauges[name] = g
	return g
}

// GaugeFunc registers fn as a gauge evaluated lazily at snapshot time (for
// values the owning module already tracks: ring frontiers, backlogs, queue
// depths). Re-registering a name replaces the callback — modules whose
// topology changes (transport peers after a promotion) simply re-register.
// fn must be a pure read of simulation state.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.gaugeFns[name] = fn
}

// Histogram returns the histogram registered under name, creating it if
// new. Values are int64 (nanoseconds for latency series, bytes for size
// series) bucketed on a fixed log2 scale — see Bucket.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := r.newHistogram()
	h.env = r.env
	h.min = int64(^uint64(0) >> 1)
	r.histograms[name] = h
	return h
}

// Scope is a Registry view that prefixes every instrument name, so a module
// can be handed "dev0/destage" and register "pages" under it. The zero
// Scope is a no-op view that returns nil (no-op) instruments.
type Scope struct {
	r      *Registry
	prefix string
}

// Scope returns a view of the registry under prefix.
func (r *Registry) Scope(prefix string) Scope { return Scope{r: r, prefix: prefix} }

// Sub returns a child scope: Scope("a").Sub("b") names under "a/b".
func (s Scope) Sub(name string) Scope {
	if s.r == nil {
		return Scope{}
	}
	return Scope{r: s.r, prefix: s.join(name)}
}

func (s Scope) join(name string) string {
	if s.prefix == "" {
		return name
	}
	return s.prefix + "/" + name
}

// Counter registers a counter under the scope's prefix.
func (s Scope) Counter(name string) *Counter {
	if s.r == nil {
		return nil
	}
	return s.r.Counter(s.join(name))
}

// Gauge registers a gauge under the scope's prefix.
func (s Scope) Gauge(name string) *Gauge {
	if s.r == nil {
		return nil
	}
	return s.r.Gauge(s.join(name))
}

// GaugeFunc registers a lazy gauge under the scope's prefix.
func (s Scope) GaugeFunc(name string, fn func() int64) {
	if s.r == nil {
		return
	}
	s.r.GaugeFunc(s.join(name), fn)
}

// Histogram registers a histogram under the scope's prefix.
func (s Scope) Histogram(name string) *Histogram {
	if s.r == nil {
		return nil
	}
	return s.r.Histogram(s.join(name))
}

// Counter is a monotonically growing int64 series.
type Counter struct{ v int64 }

// Add increments the counter by delta.
//
//xssd:hotpath
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v += delta
	}
}

// Inc increments the counter by one.
//
//xssd:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time int64 series that may move both ways.
type Gauge struct{ v int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v += delta
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// NumBuckets is the fixed histogram bucket count: bucket 0 holds values
// <= 0, bucket b (1..64) holds values v with bits.Len64(v) == b, i.e. the
// range [2^(b-1), 2^b - 1]. The scale covers every int64 so histograms
// never reconfigure, which keeps snapshots structurally stable.
const NumBuckets = 65

// BucketIndex returns the bucket a value lands in.
func BucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the inclusive value range of bucket b.
func BucketBounds(b int) (lo, hi int64) {
	if b <= 0 {
		return 0, 0
	}
	const maxInt64 = int64(^uint64(0) >> 1)
	if b >= 64 {
		// Unreachable for int64 observations (bits.Len64 of a positive
		// int64 is at most 63); kept so the scale is total.
		return maxInt64, maxInt64
	}
	if b == 63 {
		return int64(1) << 62, maxInt64
	}
	return int64(1) << (b - 1), int64(1)<<b - 1
}

// Histogram accumulates int64 observations into fixed log2 buckets and
// tracks exact n, sum, min and max. Latency series record nanoseconds of
// virtual time; size series record bytes.
type Histogram struct {
	env      *sim.Env
	buckets  [NumBuckets]int64
	n        int64
	sum      int64
	min, max int64
}

// Observe records one value.
//
//xssd:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[BucketIndex(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// ObserveDuration records a virtual-time duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Since records the virtual time elapsed from start to now: the span-timer
// pattern — t0 := env.Now() ... h.Since(t0).
//
//xssd:hotpath
func (h *Histogram) Since(start time.Duration) {
	if h == nil {
		return
	}
	h.Observe(int64(h.env.Now() - start))
}

// Start opens a span on the histogram; End records its duration. The zero
// Span (from a nil histogram) is a no-op.
func (h *Histogram) Start() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: h.env.Now()}
}

// Span is an in-flight virtual-time measurement.
type Span struct {
	h     *Histogram
	start time.Duration
}

// End records the span's duration on its histogram.
func (s Span) End() {
	if s.h != nil {
		s.h.Since(s.start)
	}
}

// N returns the observation count.
func (h *Histogram) N() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the exact mean observation, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// high edge of the bucket holding that rank (exact min/max at the ends).
// Log2 buckets bound the relative error by 2x, which is enough to place a
// latency on the right order of magnitude.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for b := 0; b < NumBuckets; b++ {
		seen += h.buckets[b]
		if seen > rank {
			_, hi := BucketBounds(b)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Summary is a one-call digest of a histogram: count, exact mean and
// range, and the standard tail quantiles (p50/p99/p999, each the
// Quantile upper bound). The latency suite and the device Stats()
// assemblers both report this shape.
type Summary struct {
	N    int64
	Mean float64
	Min  int64
	Max  int64
	P50  int64
	P99  int64
	P999 int64
}

// Summary extracts the digest; the zero value when the histogram is nil
// or empty.
func (h *Histogram) Summary() Summary {
	if h == nil || h.n == 0 {
		return Summary{}
	}
	return Summary{
		N:    h.n,
		Mean: h.Mean(),
		Min:  h.min,
		Max:  h.max,
		P50:  h.Quantile(0.50),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
	}
}

// SummaryOf digests the union of several histograms — a bucket-level
// merge, so quantiles carry the same log2 upper-bound semantics as a
// single histogram's. Nil and empty histograms are skipped; the
// cross-queue latency view of a multi-queue driver is the typical use.
func SummaryOf(hs ...*Histogram) Summary {
	var merged Histogram
	merged.min = int64(^uint64(0) >> 1)
	for _, h := range hs {
		if h == nil || h.n == 0 {
			continue
		}
		merged.n += h.n
		merged.sum += h.sum
		if h.min < merged.min {
			merged.min = h.min
		}
		if h.max > merged.max {
			merged.max = h.max
		}
		for b, cnt := range h.buckets {
			merged.buckets[b] += cnt
		}
	}
	return merged.Summary()
}
