package obs

import (
	"bytes"
	"testing"

	"xssd/internal/sim"
)

func TestMergeIsOrderCanonical(t *testing.T) {
	build := func(seed int64, names ...string) *Snapshot {
		e := sim.NewEnv(seed)
		r := For(e)
		for i, n := range names {
			r.Scope(n).Counter("ops").Add(int64(10 + i))
			r.Scope(n).Histogram("lat").Observe(int64(100 * (i + 1)))
		}
		return r.Snapshot()
	}
	a := build(1, "dev-a", "dev-c")
	b := build(2, "dev-b")
	m1 := Merge(a, b)
	m2 := Merge(b, a)
	if !bytes.Equal(m1.Encode(), m2.Encode()) {
		t.Error("merge encoding depends on argument order")
	}
	if len(m1.Counters) != 3 || len(m1.Histograms) != 3 {
		t.Fatalf("merged series missing: %d counters, %d histograms", len(m1.Counters), len(m1.Histograms))
	}
	for i := 1; i < len(m1.Counters); i++ {
		if m1.Counters[i-1].Name >= m1.Counters[i].Name {
			t.Errorf("counters not sorted: %q >= %q", m1.Counters[i-1].Name, m1.Counters[i].Name)
		}
	}
}

func TestMergePanicsOnDuplicateSeries(t *testing.T) {
	mk := func() *Snapshot {
		e := sim.NewEnv(1)
		r := For(e)
		r.Scope("dev").Counter("ops").Add(1)
		return r.Snapshot()
	}
	defer func() {
		if recover() == nil {
			t.Error("Merge accepted duplicate series silently")
		}
	}()
	Merge(mk(), mk())
}
