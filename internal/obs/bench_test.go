package obs

import (
	"testing"

	"xssd/internal/sim"
)

// BenchmarkObsCounterAdd measures the hot-path instrument update: one nil
// check plus one int64 add, always-on in the data plane.
func BenchmarkObsCounterAdd(b *testing.B) {
	env := sim.NewEnv(1)
	c := For(env).Counter("bench/counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != int64(b.N) {
		b.Fatalf("counter = %d, want %d", c.Value(), b.N)
	}
}

// BenchmarkObsHistogramObserve measures the latency-series update.
func BenchmarkObsHistogramObserve(b *testing.B) {
	env := sim.NewEnv(1)
	h := For(env).Histogram("bench/hist")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// TestCounterAddZeroAlloc locks in that instrument updates never allocate:
// they run inside the simulator's hot paths.
func TestCounterAddZeroAlloc(t *testing.T) {
	env := sim.NewEnv(1)
	c := For(env).Counter("zero/counter")
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(1) }); allocs != 0 {
		t.Fatalf("Counter.Add allocates %.1f objects per call, want 0", allocs)
	}
	h := For(env).Histogram("zero/hist")
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(42) }); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f objects per call, want 0", allocs)
	}
}
