package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"xssd/internal/sim"
)

// TestBucketBoundaries pins the log2 bucketing contract: 2^k-1 and 2^k
// land in adjacent buckets for every k, zero and negatives in bucket 0.
func TestBucketBoundaries(t *testing.T) {
	if got := BucketIndex(0); got != 0 {
		t.Errorf("BucketIndex(0) = %d, want 0", got)
	}
	if got := BucketIndex(-5); got != 0 {
		t.Errorf("BucketIndex(-5) = %d, want 0", got)
	}
	if got := BucketIndex(1); got != 1 {
		t.Errorf("BucketIndex(1) = %d, want 1", got)
	}
	for k := 1; k < 63; k++ {
		hi := int64(1)<<k - 1 // top of bucket k
		lo := int64(1) << k   // bottom of bucket k+1
		if got := BucketIndex(hi); got != k {
			t.Errorf("BucketIndex(2^%d-1) = %d, want %d", k, got, k)
		}
		if got := BucketIndex(lo); got != k+1 {
			t.Errorf("BucketIndex(2^%d) = %d, want %d", k, got, k+1)
		}
	}
	const maxInt64 = int64(^uint64(0) >> 1)
	if got := BucketIndex(maxInt64); got != 63 {
		t.Errorf("BucketIndex(MaxInt64) = %d, want 63", got)
	}
}

// TestBucketBoundsRoundTrip checks every value maps into the bounds its
// bucket advertises.
func TestBucketBoundsRoundTrip(t *testing.T) {
	for b := 0; b < 64; b++ {
		lo, hi := BucketBounds(b)
		if BucketIndex(lo) != b || BucketIndex(hi) != b {
			t.Errorf("bucket %d: bounds [%d,%d] map to buckets %d,%d",
				b, lo, hi, BucketIndex(lo), BucketIndex(hi))
		}
		if b > 0 {
			if BucketIndex(lo-1) != b-1 {
				t.Errorf("bucket %d: lo-1=%d should fall in bucket %d, got %d",
					b, lo-1, b-1, BucketIndex(lo-1))
			}
		}
	}
}

func TestHistogramMoments(t *testing.T) {
	env := sim.NewEnv(1)
	h := For(env).Histogram("h")
	for _, v := range []int64{1, 2, 3, 1000} {
		h.Observe(v)
	}
	if h.N() != 4 || h.Sum() != 1006 {
		t.Fatalf("n=%d sum=%d, want 4/1006", h.N(), h.Sum())
	}
	if h.Mean() != 251.5 {
		t.Fatalf("mean=%v, want 251.5", h.Mean())
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0=%d, want exact min 1", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("q1=%d, want exact max 1000", q)
	}
	// p50 rank falls in the bucket of 3 ([2,3]); upper edge is 3.
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("q50=%d, want 3", q)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(5)
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(3)
	h.ObserveDuration(time.Second)
	h.Since(0)
	h.Start().End()
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var s Scope // zero scope: instruments are nil, methods no-op
	s.Counter("x").Inc()
	s.GaugeFunc("y", func() int64 { return 1 })
	s.Sub("z").Histogram("h").Observe(1)
}

func TestRegistryDedupAndSpan(t *testing.T) {
	env := sim.NewEnv(42)
	r := For(env)
	if r != For(env) {
		t.Fatal("For must return the same registry per env")
	}
	if r.Counter("a/b") != r.Counter("a/b") {
		t.Fatal("same-name counters must be the same instrument")
	}
	if r.Scope("a").Counter("b") != r.Counter("a/b") {
		t.Fatal("scoped name must join with /")
	}

	h := r.Histogram("span_ns")
	env.Go("worker", func(p *sim.Proc) {
		sp := h.Start()
		p.Sleep(123 * time.Nanosecond)
		sp.End()
		t0 := p.Now()
		p.Sleep(4 * time.Nanosecond)
		h.Since(t0)
	})
	env.Run()
	if h.N() != 2 || h.Sum() != 127 {
		t.Fatalf("span histogram n=%d sum=%d, want 2/127", h.N(), h.Sum())
	}
}

// TestSnapshotDeterminism runs the same instrumented program on two envs
// with one seed and demands byte-identical canonical encodings, and a
// different registration order to prove sorting wins over insertion order.
func TestSnapshotDeterminism(t *testing.T) {
	run := func(reverse bool) []byte {
		env := sim.NewEnv(7)
		r := For(env)
		names := []string{"dev0/a", "dev0/b", "dev1/a"}
		if reverse {
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
		}
		for _, n := range names {
			r.Counter(n)
		}
		r.GaugeFunc("dev0/depth", func() int64 { return 3 })
		h := r.Histogram("dev0/lat_ns")
		env.Go("w", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				t0 := p.Now()
				p.Sleep(time.Duration(env.Rand().Intn(1000)) * time.Nanosecond)
				h.Since(t0)
				r.Counter("dev0/a").Inc()
			}
		})
		env.Run()
		return r.Snapshot().Encode()
	}
	a, b := run(false), run(true)
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}

	if snapA := run(false); !bytes.Equal(a, snapA) {
		t.Fatal("same seed must give the same bytes across repeated runs")
	}
}

func TestSnapshotFingerprintAndFormats(t *testing.T) {
	env := sim.NewEnv(3)
	r := For(env)
	r.Counter("c").Add(10)
	r.Gauge("g").Set(-4)
	r.Histogram("h").Observe(9)
	snap := r.Snapshot()
	if snap.Fingerprint() != snap.Fingerprint() {
		t.Fatal("fingerprint must be stable")
	}
	r.Counter("c").Inc()
	if r.Snapshot().Fingerprint() == snap.Fingerprint() {
		t.Fatal("fingerprint must move when a series moves")
	}

	var j, txt bytes.Buffer
	if err := snap.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(j.Bytes(), []byte("\n")) {
		t.Fatal("canonical JSON must end in newline")
	}
	for _, want := range []string{"counter c", "gauge   g", "hist    h"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, txt.String())
		}
	}
}

func TestHistogramSummaryBucketBoundaries(t *testing.T) {
	r := For(sim.NewEnv(1))
	h := r.Scope("t").Histogram("lat")
	// 600 observations in the [64,127] bucket, 395 in [1024,2047], and 5
	// at 65536: rank 500 (p50) lands in the first, rank 990 (p99) in the
	// second, rank 999 (p999) in the third.
	for i := 0; i < 600; i++ {
		h.Observe(100)
	}
	for i := 0; i < 395; i++ {
		h.Observe(1500)
	}
	for i := 0; i < 5; i++ {
		h.Observe(65536)
	}
	s := h.Summary()
	if s.N != 1000 || s.Min != 100 || s.Max != 65536 {
		t.Fatalf("summary n/min/max = %d/%d/%d", s.N, s.Min, s.Max)
	}
	// Quantiles resolve to the high edge of the covering bucket: p50 in
	// [64,127] → 127, p99 in [1024,2047] → 2047, p999 in the top bucket,
	// clamped to the observed max.
	if s.P50 != 127 {
		t.Errorf("p50 = %d, want 127 (hi edge of [64,127])", s.P50)
	}
	if s.P99 != 2047 {
		t.Errorf("p99 = %d, want 2047 (hi edge of [1024,2047])", s.P99)
	}
	if s.P999 != 65536 {
		t.Errorf("p999 = %d, want 65536 (clamped to max)", s.P999)
	}
	if want := (600*100 + 395*1500 + 5*65536) / 1000.0; s.Mean != want {
		t.Errorf("mean = %v, want %v", s.Mean, want)
	}
}

func TestHistogramSummaryEmptyAndNil(t *testing.T) {
	var h *Histogram
	if s := h.Summary(); s != (Summary{}) {
		t.Fatalf("nil histogram summary = %+v, want zero", s)
	}
	if s := For(sim.NewEnv(1)).Scope("t").Histogram("empty").Summary(); s != (Summary{}) {
		t.Fatalf("empty histogram summary = %+v, want zero", s)
	}
}

func TestSummaryOfMergesAtBucketLevel(t *testing.T) {
	r := For(sim.NewEnv(1))
	a := r.Scope("t").Histogram("a")
	b := r.Scope("t").Histogram("b")
	// Split the same population from TestHistogramSummaryBucketBoundaries
	// across two histograms: the merged summary must match the combined
	// one exactly, because merging adds bucket counts.
	for i := 0; i < 300; i++ {
		a.Observe(100)
		b.Observe(100)
	}
	for i := 0; i < 395; i++ {
		a.Observe(1500)
	}
	for i := 0; i < 5; i++ {
		b.Observe(65536)
	}
	s := SummaryOf(a, b)
	if s.N != 1000 || s.Min != 100 || s.Max != 65536 {
		t.Fatalf("merged n/min/max = %d/%d/%d", s.N, s.Min, s.Max)
	}
	if s.P50 != 127 || s.P99 != 2047 || s.P999 != 65536 {
		t.Fatalf("merged quantiles p50=%d p99=%d p999=%d, want 127/2047/65536", s.P50, s.P99, s.P999)
	}
	// Nil members and empty calls degrade gracefully.
	if s2 := SummaryOf(a, nil, b); s2 != s {
		t.Fatalf("nil member changed the merge: %+v vs %+v", s2, s)
	}
	if s3 := SummaryOf(); s3 != (Summary{}) {
		t.Fatalf("empty merge = %+v, want zero", s3)
	}
}
