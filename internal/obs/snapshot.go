package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a point-in-time, fully-ordered export of a registry: every
// series sorted by name, every value an integer of virtual-time origin.
// Its canonical encoding (Encode) is therefore a pure function of the
// simulation seed — the determinism contract the fingerprint asserts.
type Snapshot struct {
	// Now is the virtual timestamp of the snapshot in nanoseconds.
	Now int64 `json:"now_ns"`

	Counters   []NamedValue        `json:"counters"`
	Gauges     []NamedValue        `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// NamedValue is one counter or gauge sample.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnapshot is one histogram's state: exact moments plus the
// non-empty log2 buckets (sparse — most of the 65-bucket scale is zero).
type HistogramSnapshot struct {
	Name    string         `json:"name"`
	N       int64          `json:"n"`
	Sum     int64          `json:"sum"`
	Min     int64          `json:"min"`
	Max     int64          `json:"max"`
	Buckets []BucketSample `json:"buckets,omitempty"`
}

// BucketSample is one non-empty bucket: Bit is the bucket index (values in
// [2^(Bit-1), 2^Bit - 1]; bit 0 holds values <= 0), Count its population.
type BucketSample struct {
	Bit   int   `json:"bit"`
	Count int64 `json:"count"`
}

// Snapshot captures the registry's current state. GaugeFunc callbacks are
// evaluated here, in sorted name order.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Now: int64(r.env.Now())}

	cnames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	s.Counters = make([]NamedValue, 0, len(cnames))
	for _, name := range cnames {
		s.Counters = append(s.Counters, NamedValue{Name: name, Value: r.counters[name].Value()})
	}

	gnames := make([]string, 0, len(r.gauges)+len(r.gaugeFns))
	for name := range r.gauges {
		gnames = append(gnames, name)
	}
	for name := range r.gaugeFns {
		if _, dup := r.gauges[name]; !dup {
			gnames = append(gnames, name)
		}
	}
	sort.Strings(gnames)
	s.Gauges = make([]NamedValue, 0, len(gnames))
	for _, name := range gnames {
		var v int64
		if fn, ok := r.gaugeFns[name]; ok {
			v = fn()
		} else {
			v = r.gauges[name].Value()
		}
		s.Gauges = append(s.Gauges, NamedValue{Name: name, Value: v})
	}

	hnames := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	s.Histograms = make([]HistogramSnapshot, 0, len(hnames))
	for _, name := range hnames {
		h := r.histograms[name]
		hs := HistogramSnapshot{Name: name, N: h.n, Sum: h.sum, Min: h.min, Max: h.max}
		if h.n == 0 {
			hs.Min, hs.Max = 0, 0
		}
		for b, c := range h.buckets {
			if c != 0 {
				hs.Buckets = append(hs.Buckets, BucketSample{Bit: b, Count: c})
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// Encode returns the canonical JSON form of the snapshot: compact, sorted,
// trailing newline. Byte-identical across same-seed runs.
func (s *Snapshot) Encode() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A Snapshot is plain integers and strings; Marshal cannot fail.
		panic(fmt.Sprintf("obs: snapshot encode: %v", err))
	}
	return append(b, '\n')
}

// Fingerprint returns the 64-bit FNV-1a hash of the canonical encoding —
// a cheap handle for "same seed, same telemetry" regression checks.
func (s *Snapshot) Fingerprint() uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, b := range s.Encode() {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// WriteJSON writes the canonical JSON encoding to w.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	_, err := w.Write(s.Encode())
	return err
}

// WriteText writes a human-oriented listing: one "name value" line per
// series, histograms as n/mean/p50/p99-style summaries. Line order matches
// the JSON encoding.
func (s *Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# snapshot at %v\n", time.Duration(s.Now)); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %-48s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge   %-48s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		mean := float64(0)
		if h.N > 0 {
			mean = float64(h.Sum) / float64(h.N)
		}
		if _, err := fmt.Fprintf(w, "hist    %-48s n=%d mean=%.0f min=%d max=%d\n",
			h.Name, h.N, mean, h.Min, h.Max); err != nil {
			return err
		}
	}
	return nil
}
