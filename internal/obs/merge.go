package obs

import (
	"fmt"
	"sort"
)

// Merge combines per-member snapshots of a sim.Group into one canonical
// snapshot, in member-index order. Each member of a group owns its own
// registry (registries hang off the Env), so a multi-env run's "-metrics"
// export is the merge of every member's snapshot. Series names must be
// disjoint across members — device- and host-scoped names already are; a
// duplicate means two members registered the same series and would make
// the merged encoding ambiguous, so Merge panics on one. Now is the
// maximum member timestamp. The result's series are re-sorted by name, so
// merged output is byte-stable regardless of which member contributed
// which series.
func Merge(snaps ...*Snapshot) *Snapshot {
	m := &Snapshot{}
	seen := make(map[string]struct{})
	claim := func(kind, name string) {
		key := kind + "\x00" + name
		if _, dup := seen[key]; dup {
			panic(fmt.Sprintf("obs: Merge: duplicate %s %q across group members", kind, name))
		}
		seen[key] = struct{}{}
	}
	for _, s := range snaps {
		if s.Now > m.Now {
			m.Now = s.Now
		}
		for _, c := range s.Counters {
			claim("counter", c.Name)
			m.Counters = append(m.Counters, c)
		}
		for _, g := range s.Gauges {
			claim("gauge", g.Name)
			m.Gauges = append(m.Gauges, g)
		}
		for _, h := range s.Histograms {
			claim("histogram", h.Name)
			m.Histograms = append(m.Histograms, h)
		}
	}
	sort.Slice(m.Counters, func(i, j int) bool { return m.Counters[i].Name < m.Counters[j].Name })
	sort.Slice(m.Gauges, func(i, j int) bool { return m.Gauges[i].Name < m.Gauges[j].Name })
	sort.Slice(m.Histograms, func(i, j int) bool { return m.Histograms[i].Name < m.Histograms[j].Name })
	return m
}
