// Package nand models the Flash array of the device's conventional side
// (paper §2.2, Fig 2 bottom): channels × ways of dies, each with blocks of
// pages, real page-data storage, NAND programming constraints (erase before
// program, sequential page order within a block), per-die operation
// occupancy and per-channel data buses.
//
// The package is mechanism only; operation *policy* (which write to issue
// next, opportunistic destaging) lives in internal/sched.
package nand

import (
	"errors"
	"fmt"
	"time"

	"xssd/internal/fault"
	"xssd/internal/obs"
	"xssd/internal/sim"
)

// Geometry describes the array shape.
type Geometry struct {
	Channels      int
	WaysPerChan   int // dies per channel
	BlocksPerDie  int
	PagesPerBlock int
	PageSize      int // bytes
}

// DefaultGeometry mirrors the Cosmos+-class array scaled for simulation:
// 8 channels × 8 ways, 16 KB pages, 256 pages/block.
var DefaultGeometry = Geometry{
	Channels:      8,
	WaysPerChan:   8,
	BlocksPerDie:  64,
	PagesPerBlock: 256,
	PageSize:      16 << 10,
}

// Dies returns the total number of dies.
func (g Geometry) Dies() int { return g.Channels * g.WaysPerChan }

// PagesPerDie returns the number of pages on one die.
func (g Geometry) PagesPerDie() int { return g.BlocksPerDie * g.PagesPerBlock }

// TotalPages returns the number of physical pages in the array.
func (g Geometry) TotalPages() int { return g.Dies() * g.PagesPerDie() }

// TotalBytes returns the raw capacity.
func (g Geometry) TotalBytes() int64 { return int64(g.TotalPages()) * int64(g.PageSize) }

// Timing holds NAND operation latencies and channel bus speed.
type Timing struct {
	TRead   time.Duration
	TProg   time.Duration
	TErase  time.Duration
	BusRate float64 // channel bus bytes/second
}

// DefaultTiming: MLC-class NAND.
var DefaultTiming = Timing{
	TRead:   60 * time.Microsecond,
	TProg:   600 * time.Microsecond,
	TErase:  3500 * time.Microsecond,
	BusRate: 400e6,
}

// ProgramBandwidth returns the aggregate sustained program bandwidth of the
// whole array (all dies programming back to back).
func (g Geometry) ProgramBandwidth(t Timing) float64 {
	return float64(g.Dies()) * float64(g.PageSize) / t.TProg.Seconds()
}

// PageAddr identifies a physical page.
type PageAddr struct {
	Channel, Way, Block, Page int
}

// BlockAddr identifies a physical block.
type BlockAddr struct {
	Channel, Way, Block int
}

// Block returns the block the page lives in.
func (a PageAddr) BlockAddr() BlockAddr { return BlockAddr{a.Channel, a.Way, a.Block} }

// String implements fmt.Stringer.
func (a PageAddr) String() string {
	return fmt.Sprintf("ch%d/w%d/b%d/p%d", a.Channel, a.Way, a.Block, a.Page)
}

// Errors returned by array operations.
var (
	ErrNotErased = errors.New("nand: program to non-erased page")
	ErrPageOrder = errors.New("nand: program out of page order within block")
	ErrBadBlock  = errors.New("nand: operation on bad block")
	ErrUnwritten = errors.New("nand: read of unwritten page")
	ErrAddrRange = errors.New("nand: address out of range")
	ErrWrongSize = errors.New("nand: payload must be exactly one page")
)

type dieState struct {
	busyUntil time.Duration
	ops       int64
}

type blockState struct {
	nextPage int // next programmable page index (NAND sequential constraint)
	bad      bool
	erases   int64
}

// Array is the flash array.
type Array struct {
	env    *sim.Env
	geo    Geometry
	timing Timing

	buses  []*sim.Link
	dies   []dieState
	blocks []blockState
	// data holds page contents in a flat slice indexed by physical page
	// number (nil = unwritten); freePages recycles page buffers from
	// erased blocks into new programs.
	//xssd:pool retain
	data [][]byte
	//xssd:pool put
	freePages [][]byte

	// Freed broadcasts whenever a die finishes an operation; dispatchers
	// wait on it.
	Freed *sim.Signal

	// stats
	reads, progs, erases int64
	injectedBad          int64

	// metrics: end-to-end op latency (issue -> completion, including bus
	// and die queueing), nil until Observe.
	mProgLat  *obs.Histogram
	mReadLat  *obs.Histogram
	mEraseLat *obs.Histogram
}

// Observe registers the array's telemetry under sc (the owning device
// supplies "<dev>/nand"): cumulative op-count gauges plus program, read
// and erase latency histograms measured from issue to completion — the
// die-queueing view the paper's opportunistic-destaging argument rests on.
func (a *Array) Observe(sc obs.Scope) {
	sc.GaugeFunc("reads", func() int64 { return a.reads })
	sc.GaugeFunc("programs", func() int64 { return a.progs })
	sc.GaugeFunc("erases", func() int64 { return a.erases })
	sc.GaugeFunc("injected_bad", func() int64 { return a.injectedBad })
	a.mProgLat = sc.Histogram("program_ns")
	a.mReadLat = sc.Histogram("read_ns")
	a.mEraseLat = sc.Histogram("erase_ns")
}

// New creates an array in env with the given geometry and timing.
func New(env *sim.Env, geo Geometry, timing Timing) *Array {
	a := &Array{
		env:    env,
		geo:    geo,
		timing: timing,
		dies:   make([]dieState, geo.Dies()),
		blocks: make([]blockState, geo.Dies()*geo.BlocksPerDie),
		data:   make([][]byte, geo.TotalPages()),
		Freed:  env.NewSignal(),
	}
	a.buses = make([]*sim.Link, geo.Channels)
	for i := range a.buses {
		a.buses[i] = env.NewLink(fmt.Sprintf("nand-ch%d", i), timing.BusRate, 0)
	}
	return a
}

// Geometry returns the array shape.
func (a *Array) Geometry() Geometry { return a.geo }

// Timing returns the operation latencies.
func (a *Array) Timing() Timing { return a.timing }

func (a *Array) dieIndex(ch, way int) int { return ch*a.geo.WaysPerChan + way }

func (a *Array) blockIndex(b BlockAddr) int {
	return a.dieIndex(b.Channel, b.Way)*a.geo.BlocksPerDie + b.Block
}

func (a *Array) pageIndex(p PageAddr) int {
	return a.blockIndex(p.BlockAddr())*a.geo.PagesPerBlock + p.Page
}

// getPageBuf returns a recycled (or fresh) page buffer.
//
//xssd:pool get
func (a *Array) getPageBuf() []byte {
	if len(a.freePages) == 0 {
		return make([]byte, a.geo.PageSize)
	}
	b := a.freePages[len(a.freePages)-1]
	a.freePages = a.freePages[:len(a.freePages)-1]
	return b
}

func (a *Array) checkAddr(p PageAddr) error {
	if p.Channel < 0 || p.Channel >= a.geo.Channels ||
		p.Way < 0 || p.Way >= a.geo.WaysPerChan ||
		p.Block < 0 || p.Block >= a.geo.BlocksPerDie ||
		p.Page < 0 || p.Page >= a.geo.PagesPerBlock {
		return ErrAddrRange
	}
	return nil
}

// DieBusy reports whether the die is executing an operation right now.
func (a *Array) DieBusy(ch, way int) bool {
	return a.dies[a.dieIndex(ch, way)].busyUntil > a.env.Now()
}

// Bus returns the data bus of a channel.
func (a *Array) Bus(ch int) *sim.Link { return a.buses[ch] }

func (a *Array) occupyDie(ch, way int, d time.Duration, fn func()) {
	die := &a.dies[a.dieIndex(ch, way)]
	now := a.env.Now()
	if die.busyUntil < now {
		die.busyUntil = now
	}
	die.busyUntil += d
	die.ops++
	end := die.busyUntil
	a.env.At(end, func() {
		if fn != nil {
			fn()
		}
		a.Freed.Broadcast()
	})
}

// MarkBad flags a block as bad; subsequent programs and erases on it fail.
func (a *Array) MarkBad(b BlockAddr) {
	a.blocks[a.blockIndex(b)].bad = true
}

// IsBad reports whether a block has been marked bad.
func (a *Array) IsBad(b BlockAddr) bool { return a.blocks[a.blockIndex(b)].bad }

// Program writes one page. The calling (dispatcher) process blocks for the
// channel-bus transfer; the die then programs asynchronously and done(err)
// fires in scheduler context at completion. Validation errors are
// delivered through done without consuming time.
func (a *Array) Program(p *sim.Proc, addr PageAddr, data []byte, done func(error)) {
	if err := a.checkAddr(addr); err != nil {
		done(err)
		return
	}
	if len(data) != a.geo.PageSize {
		done(ErrWrongSize)
		return
	}
	blk := &a.blocks[a.blockIndex(addr.BlockAddr())]
	switch {
	case blk.bad:
		done(ErrBadBlock)
		return
	case addr.Page > blk.nextPage:
		done(ErrPageOrder)
		return
	case addr.Page < blk.nextPage:
		done(ErrNotErased)
		return
	}
	if fault.CheckEnv(a.env, fault.NANDProgram, "", 1).Fail() {
		// A late-manifesting bad block: the program fails and the block
		// is gone for good. The FTL retires it and retries elsewhere.
		blk.bad = true
		a.injectedBad++
		done(ErrBadBlock)
		return
	}
	blk.nextPage++
	buf := a.getPageBuf()
	copy(buf, data)
	pi := a.pageIndex(addr)
	start := a.env.Now()
	a.buses[addr.Channel].Transfer(p, a.geo.PageSize)
	a.progs++
	a.occupyDie(addr.Channel, addr.Way, a.timing.TProg, func() {
		a.data[pi] = buf
		a.mProgLat.Since(start)
		done(nil)
	})
}

// Read fetches one page: the die seizes for TRead, then the page moves out
// over the channel bus; done(data, err) fires when the transfer lands.
func (a *Array) Read(addr PageAddr, done func([]byte, error)) {
	if err := a.checkAddr(addr); err != nil {
		done(nil, err)
		return
	}
	data := a.data[a.pageIndex(addr)]
	if data == nil {
		done(nil, ErrUnwritten)
		return
	}
	a.reads++
	start := a.env.Now()
	a.occupyDie(addr.Channel, addr.Way, a.timing.TRead, func() {
		out := append([]byte(nil), data...)
		a.buses[addr.Channel].Send(a.geo.PageSize, func() {
			a.mReadLat.Since(start)
			done(out, nil)
		})
	})
}

// Erase wipes a block; done(err) fires at completion.
func (a *Array) Erase(b BlockAddr, done func(error)) {
	if err := a.checkAddr(PageAddr{b.Channel, b.Way, b.Block, 0}); err != nil {
		done(err)
		return
	}
	blk := &a.blocks[a.blockIndex(b)]
	if blk.bad {
		done(ErrBadBlock)
		return
	}
	if fault.CheckEnv(a.env, fault.NANDErase, "", 1).Fail() {
		blk.bad = true
		a.injectedBad++
		done(ErrBadBlock)
		return
	}
	a.erases++
	start := a.env.Now()
	a.occupyDie(b.Channel, b.Way, a.timing.TErase, func() {
		a.mEraseLat.Since(start)
		blk.nextPage = 0
		blk.erases++
		base := a.blockIndex(b) * a.geo.PagesPerBlock
		for page := 0; page < a.geo.PagesPerBlock; page++ {
			if buf := a.data[base+page]; buf != nil {
				a.freePages = append(a.freePages, buf)
				a.data[base+page] = nil
			}
		}
		done(nil)
	})
}

// PeekPage returns the stored contents of a page without simulation cost
// (used by recovery scans and tests). ok is false for unwritten pages.
func (a *Array) PeekPage(addr PageAddr) (data []byte, ok bool) {
	d := a.data[a.pageIndex(addr)]
	return d, d != nil
}

// EraseCount returns how many times a block has been erased (wear).
func (a *Array) EraseCount(b BlockAddr) int64 { return a.blocks[a.blockIndex(b)].erases }

// Stats returns cumulative operation counts.
func (a *Array) Stats() (reads, programs, erases int64) { return a.reads, a.progs, a.erases }

// InjectedBadBlocks returns how many blocks a fault plan has spoiled.
func (a *Array) InjectedBadBlocks() int64 { return a.injectedBad }
