package nand

import (
	"bytes"
	"testing"
	"time"

	"xssd/internal/sim"
)

func smallGeo() Geometry {
	return Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 4, PagesPerBlock: 8, PageSize: 512}
}

func page(a *Array, fill byte) []byte {
	b := make([]byte, a.Geometry().PageSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestGeometryMath(t *testing.T) {
	g := DefaultGeometry
	if g.Dies() != 64 {
		t.Fatalf("dies = %d", g.Dies())
	}
	bw := g.ProgramBandwidth(DefaultTiming)
	if bw < 1.6e9 || bw > 1.9e9 {
		t.Fatalf("program bandwidth = %.2e, want ~1.75 GB/s", bw)
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	addr := PageAddr{0, 0, 0, 0}
	want := page(a, 0xAB)
	var got []byte
	env.Go("io", func(p *sim.Proc) {
		done := false
		sig := env.NewSignal()
		a.Program(p, addr, want, func(err error) {
			if err != nil {
				t.Errorf("program: %v", err)
			}
			done = true
			sig.Broadcast()
		})
		p.WaitFor(sig, func() bool { return done })
		a.Read(addr, func(d []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			got = d
		})
	})
	env.Run()
	if !bytes.Equal(got, want) {
		t.Fatal("read back wrong data")
	}
}

func TestProgramTiming(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	var doneAt time.Duration
	env.Go("io", func(p *sim.Proc) {
		a.Program(p, PageAddr{0, 0, 0, 0}, page(a, 1), func(error) { doneAt = env.Now() })
	})
	env.Run()
	// bus: 512B at 400MB/s = 1.28µs, then TProg 600µs
	want := time.Duration(float64(512)/400e6*1e9) + DefaultTiming.TProg
	if diff := doneAt - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("program completed at %v, want ~%v", doneAt, want)
	}
}

func TestSequentialPageOrderEnforced(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	var errs []error
	env.Go("io", func(p *sim.Proc) {
		a.Program(p, PageAddr{0, 0, 0, 1}, page(a, 1), func(err error) { errs = append(errs, err) })
	})
	env.Run()
	if len(errs) != 1 || errs[0] != ErrPageOrder {
		t.Fatalf("errs = %v, want ErrPageOrder", errs)
	}
}

func TestRewriteWithoutEraseRejected(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	var second error
	env.Go("io", func(p *sim.Proc) {
		a.Program(p, PageAddr{0, 0, 0, 0}, page(a, 1), func(error) {})
		a.Program(p, PageAddr{0, 0, 0, 0}, page(a, 2), func(err error) { second = err })
	})
	env.Run()
	if second != ErrNotErased {
		t.Fatalf("second program err = %v, want ErrNotErased", second)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	addr := PageAddr{1, 1, 2, 0}
	env.Go("io", func(p *sim.Proc) {
		ok := false
		sig := env.NewSignal()
		a.Program(p, addr, page(a, 1), func(error) { ok = true; sig.Broadcast() })
		p.WaitFor(sig, func() bool { return ok })
		ok = false
		a.Erase(addr.BlockAddr(), func(err error) {
			if err != nil {
				t.Errorf("erase: %v", err)
			}
			ok = true
			sig.Broadcast()
		})
		p.WaitFor(sig, func() bool { return ok })
		if _, present := a.PeekPage(addr); present {
			t.Error("page survived erase")
		}
		a.Program(p, addr, page(a, 3), func(err error) {
			if err != nil {
				t.Errorf("program after erase: %v", err)
			}
		})
	})
	env.Run()
	if a.EraseCount(addr.BlockAddr()) != 1 {
		t.Fatalf("erase count = %d", a.EraseCount(addr.BlockAddr()))
	}
}

func TestBadBlockRejectsOps(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	b := BlockAddr{0, 0, 3}
	a.MarkBad(b)
	if !a.IsBad(b) {
		t.Fatal("IsBad = false after MarkBad")
	}
	var progErr, eraseErr error
	env.Go("io", func(p *sim.Proc) {
		a.Program(p, PageAddr{0, 0, 3, 0}, page(a, 1), func(err error) { progErr = err })
		a.Erase(b, func(err error) { eraseErr = err })
	})
	env.Run()
	if progErr != ErrBadBlock || eraseErr != ErrBadBlock {
		t.Fatalf("errs = %v / %v, want ErrBadBlock", progErr, eraseErr)
	}
}

func TestDieParallelismAcrossWays(t *testing.T) {
	// Two programs to different ways of the same channel share the bus but
	// program concurrently: total time ≈ 2 bus transfers + one TProg.
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	var last time.Duration
	env.Go("io", func(p *sim.Proc) {
		n := 0
		sig := env.NewSignal()
		cb := func(error) { n++; last = env.Now(); sig.Broadcast() }
		a.Program(p, PageAddr{0, 0, 0, 0}, page(a, 1), cb)
		a.Program(p, PageAddr{0, 1, 0, 0}, page(a, 2), cb)
		p.WaitFor(sig, func() bool { return n == 2 })
	})
	env.Run()
	serial := 2 * DefaultTiming.TProg
	if last >= serial {
		t.Fatalf("two-way programs took %v, not parallel (serial would be ≥%v)", last, serial)
	}
}

func TestSameDieSerializes(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	var last time.Duration
	env.Go("io", func(p *sim.Proc) {
		a.Program(p, PageAddr{0, 0, 0, 0}, page(a, 1), func(error) {})
		a.Program(p, PageAddr{0, 0, 0, 1}, page(a, 2), func(error) { last = env.Now() })
	})
	env.Run()
	if last < 2*DefaultTiming.TProg {
		t.Fatalf("same-die programs finished at %v, want ≥ 2×TProg", last)
	}
}

func TestDieBusyAndFreedSignal(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	freed := false
	env.Go("watcher", func(p *sim.Proc) {
		p.WaitFor(a.Freed, func() bool { return !a.DieBusy(0, 0) && a.Stats2() > 0 })
		freed = true
	})
	env.Go("io", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		if a.DieBusy(0, 0) {
			t.Error("die busy before any op")
		}
		a.Program(p, PageAddr{0, 0, 0, 0}, page(a, 1), func(error) {})
		if !a.DieBusy(0, 0) {
			t.Error("die not busy during program")
		}
	})
	env.Run()
	if !freed {
		t.Fatal("Freed signal never observed")
	}
}

// Stats2 is a test helper: number of programs issued.
func (a *Array) Stats2() int64 { _, p, _ := a.Stats(); return p }

func TestAddressValidation(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	var errProg, errRead error
	env.Go("io", func(p *sim.Proc) {
		a.Program(p, PageAddr{9, 0, 0, 0}, page(a, 1), func(err error) { errProg = err })
		a.Read(PageAddr{0, 0, 0, 99}, func(_ []byte, err error) { errRead = err })
	})
	env.Run()
	if errProg != ErrAddrRange || errRead != ErrAddrRange {
		t.Fatalf("errs = %v / %v, want ErrAddrRange", errProg, errRead)
	}
}

func TestReadUnwrittenPage(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	var err error
	env.Go("io", func(p *sim.Proc) {
		a.Read(PageAddr{0, 0, 0, 0}, func(_ []byte, e error) { err = e })
	})
	env.Run()
	if err != ErrUnwritten {
		t.Fatalf("err = %v, want ErrUnwritten", err)
	}
}

func TestWrongPayloadSize(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, smallGeo(), DefaultTiming)
	var err error
	env.Go("io", func(p *sim.Proc) {
		a.Program(p, PageAddr{0, 0, 0, 0}, []byte{1, 2, 3}, func(e error) { err = e })
	})
	env.Run()
	if err != ErrWrongSize {
		t.Fatalf("err = %v, want ErrWrongSize", err)
	}
}
