package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xssd/internal/obs"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// instantSink acks immediately (pure engine tests).
type instantSink struct{ data []byte }

func (s *instantSink) Write(p *sim.Proc, d []byte) error {
	s.data = append(s.data, d...)
	return nil
}

func (s *instantSink) Name() string { return "instant" }

func newEngine(env *sim.Env) (*Engine, *instantSink) {
	sink := &instantSink{}
	log := wal.NewLog(env, sink, wal.Config{GroupBytes: 1, GroupTimeout: time.Microsecond})
	return New(env, log), sink
}

func TestPutGetCommit(t *testing.T) {
	env := sim.NewEnv(1)
	eng, _ := newEngine(env)
	eng.CreateTable("acct")
	env.Go("tx", func(p *sim.Proc) {
		tx := eng.Begin()
		tx.Put("acct", "alice", []byte("100"))
		if err := tx.Commit(p); err != nil {
			t.Errorf("commit: %v", err)
		}
		if v, ok := eng.Read("acct", "alice"); !ok || string(v) != "100" {
			t.Errorf("read back %q ok=%v", v, ok)
		}
	})
	env.RunUntil(time.Second)
	if c, a := eng.Stats(); c != 1 || a != 0 {
		t.Fatalf("stats = %d/%d", c, a)
	}
}

func TestReadYourWrites(t *testing.T) {
	env := sim.NewEnv(1)
	eng, _ := newEngine(env)
	eng.CreateTable("t")
	env.Go("tx", func(p *sim.Proc) {
		tx := eng.Begin()
		tx.Put("t", "k", []byte("v1"))
		if v, ok := tx.Get("t", "k"); !ok || string(v) != "v1" {
			t.Error("did not see own write")
		}
		tx.Delete("t", "k")
		if _, ok := tx.Get("t", "k"); ok {
			t.Error("saw own deleted row")
		}
		tx.Abort()
	})
	env.RunUntil(time.Second)
}

func TestConflictAborts(t *testing.T) {
	env := sim.NewEnv(1)
	eng, _ := newEngine(env)
	eng.CreateTable("t")
	var errA, errB error
	env.Go("setup", func(p *sim.Proc) {
		tx := eng.Begin()
		tx.Put("t", "hot", []byte("v0"))
		tx.Commit(p)

		a := eng.Begin()
		b := eng.Begin()
		a.Get("t", "hot")
		b.Get("t", "hot")
		a.Put("t", "hot", []byte("a"))
		b.Put("t", "hot", []byte("b"))
		errA = a.Commit(p) // commits first: ok
		errB = b.Commit(p) // observed the pre-a version: conflict
	})
	env.RunUntil(time.Second)
	if errA != nil {
		t.Fatalf("first committer failed: %v", errA)
	}
	if errB != ErrConflict {
		t.Fatalf("second committer err = %v, want ErrConflict", errB)
	}
	if v, _ := eng.Read("t", "hot"); string(v) != "a" {
		t.Fatalf("final value %q", v)
	}
}

func TestConflictOnPhantomInsert(t *testing.T) {
	env := sim.NewEnv(1)
	eng, _ := newEngine(env)
	eng.CreateTable("t")
	env.Go("tx", func(p *sim.Proc) {
		a := eng.Begin()
		if _, ok := a.Get("t", "new"); ok {
			t.Error("phantom row exists")
		}
		b := eng.Begin()
		b.Put("t", "new", []byte("x"))
		b.Commit(p)
		a.Put("t", "other", []byte("y"))
		if err := a.Commit(p); err != ErrConflict {
			t.Errorf("read-of-absent-then-inserted err = %v, want conflict", err)
		}
	})
	env.RunUntil(time.Second)
}

func TestDoubleCommitRejected(t *testing.T) {
	env := sim.NewEnv(1)
	eng, _ := newEngine(env)
	env.Go("tx", func(p *sim.Proc) {
		tx := eng.Begin()
		tx.Put("t", "k", []byte("v"))
		tx.Commit(p)
		if err := tx.Commit(p); err != ErrTxDone {
			t.Errorf("second commit: %v", err)
		}
	})
	env.RunUntil(time.Second)
}

func TestDeleteAndTombstoneConflict(t *testing.T) {
	env := sim.NewEnv(1)
	eng, _ := newEngine(env)
	eng.CreateTable("t")
	env.Go("tx", func(p *sim.Proc) {
		tx := eng.Begin()
		tx.Put("t", "k", []byte("v"))
		tx.Commit(p)

		del := eng.Begin()
		del.Delete("t", "k")
		del.Commit(p)
		if _, ok := eng.Read("t", "k"); ok {
			t.Error("row visible after delete")
		}
		// A reader that saw the tombstone version conflicts with a rewrite.
		r := eng.Begin()
		if _, ok := r.Get("t", "k"); ok {
			t.Error("tx read deleted row")
		}
		w := eng.Begin()
		w.Put("t", "k", []byte("v2"))
		w.Commit(p)
		r.Put("t", "x", []byte("y"))
		if err := r.Commit(p); err != ErrConflict {
			t.Errorf("stale tombstone read committed: %v", err)
		}
	})
	env.RunUntil(time.Second)
}

func TestRecoveryRebuildsIdenticalState(t *testing.T) {
	env := sim.NewEnv(1)
	eng, sink := newEngine(env)
	eng.CreateTable("t")
	rng := rand.New(rand.NewSource(7))
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			tx := eng.Begin()
			key := string(rune('a' + rng.Intn(20)))
			switch rng.Intn(3) {
			case 0, 1:
				val := make([]byte, rng.Intn(50)+1)
				rng.Read(val)
				tx.Put("t", key, val)
			case 2:
				tx.Delete("t", key)
			}
			if err := tx.Commit(p); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}
	})
	env.RunUntil(time.Minute)

	recovered := New(env, nil)
	if err := recovered.Recover(wal.DecodeAll(sink.data)); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if eng.Fingerprint() != recovered.Fingerprint() {
		t.Fatal("recovered state differs from original")
	}
}

func TestRecoveryOfTruncatedLogIsPrefix(t *testing.T) {
	env := sim.NewEnv(1)
	eng, sink := newEngine(env)
	eng.CreateTable("t")
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			tx := eng.Begin()
			tx.Put("t", string(rune('a'+i)), []byte{byte(i)})
			tx.Commit(p)
		}
	})
	env.RunUntil(time.Second)
	// Chop mid-record: recovery applies only whole records.
	cut := sink.data[:len(sink.data)-5]
	recovered := New(env, nil)
	if err := recovered.Recover(wal.DecodeAll(cut)); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got, want := recovered.RowCount("t"), 9; got != want {
		t.Fatalf("recovered rows = %d, want %d (last record lost)", got, want)
	}
}

func TestFollowerConvergesAcrossArbitraryChunking(t *testing.T) {
	f := func(seed int64) bool {
		env := sim.NewEnv(1)
		eng, sink := newEngine(env)
		eng.CreateTable("t")
		rng := rand.New(rand.NewSource(seed))
		env.Go("load", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				tx := eng.Begin()
				val := make([]byte, rng.Intn(80))
				rng.Read(val)
				tx.Put("t", string(rune('a'+rng.Intn(10))), val)
				tx.Commit(p)
			}
		})
		env.RunUntil(time.Minute)

		follower := NewFollower(New(env, nil))
		stream := sink.data
		for len(stream) > 0 {
			n := rng.Intn(64) + 1
			if n > len(stream) {
				n = len(stream)
			}
			if err := follower.Feed(stream[:n]); err != nil {
				return false
			}
			stream = stream[n:]
		}
		return follower.Engine().Fingerprint() == eng.Fingerprint() &&
			follower.Transactions() == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyTxSkipsLog(t *testing.T) {
	env := sim.NewEnv(1)
	eng, sink := newEngine(env)
	eng.CreateTable("t")
	env.Go("tx", func(p *sim.Proc) {
		tx := eng.Begin()
		tx.Get("t", "nothing")
		if err := tx.Commit(p); err != nil {
			t.Errorf("read-only commit: %v", err)
		}
	})
	env.RunUntil(time.Second)
	if len(sink.data) != 0 {
		t.Fatal("read-only transaction wrote to the log")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	env := sim.NewEnv(1)
	a, _ := newEngine(env)
	b, _ := newEngine(env)
	a.CreateTable("t")
	b.CreateTable("t")
	env.Go("tx", func(p *sim.Proc) {
		ta := a.Begin()
		ta.Put("t", "k", []byte("v1"))
		ta.Commit(p)
		tb := b.Begin()
		tb.Put("t", "k", []byte("v2"))
		tb.Commit(p)
	})
	env.RunUntil(time.Second)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprints collide on different values")
	}
}

func TestEncodeDecodeWritesRoundTrip(t *testing.T) {
	ws := []writeOp{
		{tab: Table{name: "warehouse"}, key: "w1", val: bytes.Repeat([]byte{7}, 90)},
		{tab: Table{name: "stock"}, key: "s:1:100", delete: true},
		{tab: Table{name: "t"}, key: "", val: nil},
	}
	got, err := decodeWrites(encodeWrites(ws))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("ops = %d", len(got))
	}
	if got[0].tab.name != "warehouse" || !bytes.Equal(got[0].val, ws[0].val) {
		t.Fatal("op 0 mismatch")
	}
	if !got[1].delete || got[1].key != "s:1:100" {
		t.Fatal("op 1 mismatch")
	}
}

func TestDecodeWritesRejectsTruncation(t *testing.T) {
	ws := []writeOp{{tab: Table{name: "t"}, key: "k", val: []byte("hello")}}
	enc := encodeWrites(ws)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := decodeWrites(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCommitPipelinedKeepsManyTxInFlight(t *testing.T) {
	env := sim.NewEnv(1)
	// A sink slow enough that synchronous commits would serialize: the
	// pipeline must still push all transactions through in one pass.
	sink := &instantSink{}
	log := wal.NewLog(env, sink, wal.Config{GroupBytes: 1 << 20, GroupTimeout: 100 * time.Microsecond})
	eng := New(env, log)
	eng.CreateTable("t")
	pl := wal.NewPipeline(log, 8, obs.Scope{})
	var elapsed time.Duration
	env.Go("worker", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			tx := eng.Begin()
			tx.Put("t", fmt.Sprintf("k%d", i), []byte("v"))
			if _, err := tx.CommitPipelined(p, pl); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}
		pl.Drain(p)
		elapsed = p.Now()
	})
	env.RunUntil(time.Second)
	if pl.Retired() != 32 || pl.Inflight() != 0 {
		t.Fatalf("retired %d, inflight %d, want 32/0", pl.Retired(), pl.Inflight())
	}
	// 32 synchronous commits would cost 32 group timeouts (3.2ms); the
	// pipeline overlaps them. Allow a handful of flush rounds.
	if elapsed > 500*time.Microsecond {
		t.Fatalf("pipelined commits took %v — did they serialize?", elapsed)
	}
	if c, a := eng.Stats(); c != 32 || a != 0 {
		t.Fatalf("stats = %d commits / %d aborts", c, a)
	}
}

func TestCommitPipelinedReadOnlySkipsPipeline(t *testing.T) {
	env := sim.NewEnv(1)
	eng, _ := newEngine(env)
	eng.CreateTable("t")
	pl := wal.NewPipeline(eng.Log(), 4, obs.Scope{})
	env.Go("worker", func(p *sim.Proc) {
		tx := eng.Begin()
		tx.Get("t", "missing")
		lsn, err := tx.CommitPipelined(p, pl)
		if err != nil || lsn != 0 {
			t.Errorf("read-only pipelined commit: lsn=%d err=%v", lsn, err)
		}
	})
	env.RunUntil(time.Millisecond)
	if pl.Inflight() != 0 || pl.Retired() != 0 {
		t.Fatalf("read-only commit entered the pipeline")
	}
}
