package db

import (
	"xssd/internal/wal"
)

// Follower incrementally applies a primary's log stream to a secondary
// engine (the paper's Fig 1 right, step 3: the remote database reads the
// shipped log and updates its own memory). Feed it raw log bytes in
// arrival order — chunk boundaries need not align with records.
type Follower struct {
	eng     *Engine
	pending []byte
	applied int64 // stream bytes fully applied
	txns    int64
}

// NewFollower wraps eng.
func NewFollower(eng *Engine) *Follower { return &Follower{eng: eng} }

// Feed consumes the next chunk of the log stream, applying every complete
// record it completes. Partial records are buffered for the next call.
func (f *Follower) Feed(chunk []byte) error {
	f.pending = append(f.pending, chunk...)
	off := 0
	for {
		r, n, err := wal.Decode(f.pending[off:])
		if err != nil {
			break // incomplete tail record: wait for more bytes
		}
		if err := f.eng.ApplyRecord(r); err != nil {
			return err
		}
		off += n
		f.txns++
	}
	f.pending = f.pending[off:]
	f.applied += int64(off)
	return nil
}

// Applied returns the number of log bytes fully applied.
func (f *Follower) Applied() int64 { return f.applied }

// Transactions returns the number of transactions replayed.
func (f *Follower) Transactions() int64 { return f.txns }

// Engine returns the secondary engine.
func (f *Follower) Engine() *Engine { return f.eng }
