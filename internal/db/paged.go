// Paged engine mode: tables live in B+tree pages behind a buffer pool
// (internal/btree) destaged to the conventional side of the device,
// instead of in in-memory row maps. The transaction API is identical —
// OCC validation, redo logging, pipelined commit — but reads and commits
// may fetch pages from the device, so they run on the owning simulated
// process and the commit critical section is serialized by an
// engine-wide lock (a fetch mid-validation yields, and two interleaved
// validations could both pass against each other's writes). Fuzzy
// checkpoints (internal/ckpt) bound recovery to the WAL tail past the
// last complete checkpoint.
package db

import (
	"fmt"
	"sort"

	"xssd/internal/btree"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// pagedState is the extra engine state of a paged engine.
type pagedState struct {
	pg *btree.Pager

	// busy serializes the commit critical section (validate + append +
	// apply) and checkpoint snapshots against each other. Page fetches
	// inside validation or apply yield on device I/O; without the lock two
	// committers could interleave there and both validate successfully
	// against state the other is about to overwrite.
	busy bool
	free *sim.Signal

	// lastLSN tracks the end LSN of the last record appended (live) or
	// replayed (recovery) — the append frontier for engines with no log.
	lastLSN int64
}

// NewPaged creates a paged engine over pager. log may be nil (recovery
// instances and tests).
func NewPaged(env *sim.Env, log *wal.Log, pager *btree.Pager) *Engine {
	e := New(env, log)
	e.paged = &pagedState{pg: pager, free: env.NewSignal()}
	return e
}

// Paged reports whether the engine stores tables in pages.
func (e *Engine) Paged() bool { return e.paged != nil }

// Pager returns the paged engine's buffer pool (nil on the in-memory
// engine).
func (e *Engine) Pager() *btree.Pager {
	if e.paged == nil {
		return nil
	}
	return e.paged.pg
}

// lockCommits enters the engine-wide commit/checkpoint critical section.
func (ps *pagedState) lockCommits(p *sim.Proc) {
	if p == nil {
		// No process context: legal only when nothing can contend (single
		// threaded tests, bulk load before workers start). The flag still
		// guards against re-entry.
		if ps.busy {
			panic("db: paged commit lock contended without a process context")
		}
		ps.busy = true
		return
	}
	p.WaitFor(ps.free, func() bool { return !ps.busy })
	ps.busy = true
}

func (ps *pagedState) unlockCommits() {
	ps.busy = false
	ps.free.Broadcast()
}

// pagedFault handles a page-store failure outside the commit path. After
// a power loss the device answers nothing — park the calling process
// forever, exactly like a thread blocked on a dead disk; the chaos
// harness ends the run by advancing past the window. Any other store
// error on a live device is a corruption bug: fail loudly.
func (e *Engine) pagedFault(p *sim.Proc, err error) {
	if e.log != nil && e.log.Dead() && p != nil {
		p.WaitFor(e.paged.free, func() bool { return false })
	}
	panic(fmt.Sprintf("db: paged engine fault: %v", err))
}

// getPaged is GetIn's paged read path: point-read the table's tree on
// the transaction's process and record the observed version (0 for an
// absent row, the writer's id for a live row or tombstone — same
// observation rules as the row-map path).
func (t *Tx) getPaged(tab Table, key string) ([]byte, bool) {
	it, found, err := tab.t.tree.Get(t.p, key)
	if err != nil {
		t.eng.pagedFault(t.p, fmt.Errorf("get %s/%q: %w", tab.name, key, err))
		return nil, false
	}
	ver := int64(0)
	if found {
		ver = it.Ver
	}
	t.reads[hkey{tab.t, key}] = ver
	if !found || it.Tomb {
		return nil, false
	}
	return it.Val, true
}

// commitPaged is the paged commit critical section: under the engine
// lock, re-validate every read against the trees, append the redo record,
// and apply the write set with the record's end LSN stamped on every
// touched page. Returns the LSN to wait on (0 for read-only commits).
func (t *Tx) commitPaged(p *sim.Proc) (int64, error) {
	ps := t.eng.paged
	ps.lockCommits(p)
	defer ps.unlockCommits()

	// Validation re-reads pages and may yield on misses, so iterate the
	// read set in sorted (table, key) order — map order would leak into
	// the event schedule and break cross-run determinism.
	if len(t.reads) > 0 {
		rks := make([]hkey, 0, len(t.reads))
		for k := range t.reads {
			rks = append(rks, k)
		}
		sort.Slice(rks, func(i, j int) bool {
			if rks[i].t.name != rks[j].t.name {
				return rks[i].t.name < rks[j].t.name
			}
			return rks[i].key < rks[j].key
		})
		for _, k := range rks {
			it, found, err := k.t.tree.Get(p, k.key)
			if err != nil {
				t.eng.pagedFault(p, fmt.Errorf("validate %s/%q: %w", k.t.name, k.key, err))
			}
			cur := int64(0)
			if found {
				cur = it.Ver
			}
			if cur != t.reads[k] {
				t.Abort()
				return 0, ErrConflict
			}
		}
	}
	t.done = true
	if len(t.writes) == 0 {
		t.eng.commits++
		return 0, nil
	}
	payload := t.eng.encodeScratch(t.writes)
	var lsn int64
	if t.eng.log != nil {
		lsn = t.eng.log.Append(wal.Record{TxID: t.id, Payload: payload})
	} else {
		lsn = ps.lastLSN + int64(wal.EncodedLen(len(payload)))
	}
	ps.lastLSN = lsn
	if err := t.eng.applyPagedWrites(p, t.writes, t.id, lsn); err != nil {
		t.eng.pagedFault(p, err)
	}
	t.eng.commits++
	return lsn, nil
}

// applyPagedWrites installs a write set into the trees, stamping rows
// with ver and pages with lsn. Deletes become tombstones (versioned, so
// OCC still catches reads of the absent row), exactly like the row maps.
func (e *Engine) applyPagedWrites(p *sim.Proc, ws []writeOp, ver, lsn int64) error {
	for _, w := range ws {
		tab := w.tab.t
		if tab == nil {
			e.CreateTable(w.tab.name)
			tab = e.tables[w.tab.name]
		}
		it := btree.Item{Ver: ver, Tomb: w.delete}
		if !w.delete {
			it.Val = w.val
		}
		if err := tab.tree.Put(p, w.key, it, lsn); err != nil {
			return fmt.Errorf("apply %s/%q: %w", w.tab.name, w.key, err)
		}
	}
	return nil
}

// ApplyRecordIn replays one redo record into a paged engine on process p
// (recovery tail replay). Control records advance the frontier without
// touching rows. Rows are stamped with the record's TxID and pages with
// its end LSN — bit-identical to what the live engine produced, because
// the live commit used exactly the same stamps.
func (e *Engine) ApplyRecordIn(p *sim.Proc, r wal.Record) error {
	end := r.LSN + int64(wal.EncodedLen(len(r.Payload)))
	if end > e.paged.lastLSN {
		e.paged.lastLSN = end
	}
	if IsControlPayload(r.Payload) {
		return nil
	}
	ws, err := decodeWrites(r.Payload)
	if err != nil {
		return fmt.Errorf("db: apply tx %d: %w", r.TxID, err)
	}
	for i := range ws {
		// Decoded ops carry no resolved handle; resolve against this
		// engine (creating tables on first touch, like classic replay).
		e.CreateTable(ws[i].tab.name)
		ws[i].tab.t = e.tables[ws[i].tab.name]
	}
	if err := e.applyPagedWrites(p, ws, r.TxID, end); err != nil {
		return fmt.Errorf("db: apply tx %d: %w", r.TxID, err)
	}
	e.commits++
	return nil
}

// RecoverIn replays a decoded log stream into a paged engine on process
// p (control records skip themselves).
func (e *Engine) RecoverIn(p *sim.Proc, records []wal.Record) error {
	for _, r := range records {
		if err := e.ApplyRecordIn(p, r); err != nil {
			return err
		}
	}
	return nil
}

// OpenPagedTable attaches a recovered table to its checkpointed root
// page. Recovery calls it for every table in the checkpoint record
// before replaying the WAL tail.
func (e *Engine) OpenPagedTable(name string, root uint64) {
	e.tables[name] = &table{name: name, tree: btree.Open(e.paged.pg, root)}
}

// Checkpoint is one fuzzy checkpoint captured from a paged engine: the
// page images and allocation state of the pager snapshot, the table
// directory (name → root page id), and the WAL append frontier at the
// snapshot instant. Everything below StartLSN is covered by the images;
// recovery replays only records at or past it.
type Checkpoint struct {
	Snap     btree.Snapshot
	Tables   map[string]uint64
	StartLSN int64
}

// BeginCheckpoint captures a checkpoint cut under the commit lock: no
// commit is mid-flight, so the dirty pages plus the WAL prefix below
// StartLSN are exactly the committed state. The snapshot itself spends
// zero virtual time; writing the images out happens afterwards, outside
// the lock, concurrently with new commits (that is what makes the
// checkpoint fuzzy).
func (e *Engine) BeginCheckpoint(p *sim.Proc) (Checkpoint, error) {
	ps := e.paged
	ps.lockCommits(p)
	defer ps.unlockCommits()
	snap, err := ps.pg.SnapshotCheckpoint()
	if err != nil {
		return Checkpoint{}, fmt.Errorf("db: checkpoint snapshot: %w", err)
	}
	ck := Checkpoint{Snap: snap, Tables: make(map[string]uint64, len(e.tables)), StartLSN: ps.lastLSN}
	if e.log != nil {
		ck.StartLSN = e.log.AppendedLSN()
	}
	for name, tab := range e.tables {
		ck.Tables[name] = tab.tree.Root()
	}
	return ck, nil
}
