// Package db implements the in-memory database substrate the experiments
// drive (the paper uses ERMIA, a memory-optimized engine whose only
// persistent state is the transaction log). The engine keeps all rows in
// memory, runs transactions with optimistic concurrency control, and
// persists commits through a pluggable wal.Log — which is exactly the
// surface the X-SSD accelerates.
package db

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"xssd/internal/sim"
	"xssd/internal/wal"
)

// Errors returned by transactions.
var (
	ErrConflict = errors.New("db: transaction conflict, retry")
	ErrNoTable  = errors.New("db: no such table")
	ErrTxDone   = errors.New("db: transaction already finished")
)

// Engine is an in-memory multi-table store with redo logging.
type Engine struct {
	env    *sim.Env
	log    *wal.Log // nil: run without durability (recovery impossible)
	tables map[string]*table
	nextTx int64

	commits, aborts int64
}

type table struct {
	rows map[string]row
}

type row struct {
	val []byte
	ver int64 // transaction id of the writer
}

// New creates an engine. log may be nil for a volatile instance.
func New(env *sim.Env, log *wal.Log) *Engine {
	return &Engine{env: env, log: log, tables: map[string]*table{}}
}

// CreateTable registers a table; creating an existing table is a no-op.
func (e *Engine) CreateTable(name string) {
	if _, ok := e.tables[name]; !ok {
		e.tables[name] = &table{rows: map[string]row{}}
	}
}

// Tables returns the table names in sorted order, so callers that iterate
// them (recovery checks, fingerprints, dumps) stay deterministic.
func (e *Engine) Tables() []string {
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RowCount returns the number of live rows in a table (tombstones are
// excluded; 0 if the table is absent).
func (e *Engine) RowCount(name string) int {
	t, ok := e.tables[name]
	if !ok {
		return 0
	}
	n := 0
	for _, r := range t.rows {
		if r.val != nil {
			n++
		}
	}
	return n
}

// Stats returns committed and aborted transaction counts.
func (e *Engine) Stats() (commits, aborts int64) { return e.commits, e.aborts }

// Tx is one transaction. All methods must be called from a single
// simulated process; only Commit blocks.
type Tx struct {
	eng  *Engine
	id   int64
	done bool

	reads  map[string]int64 // "table\x00key" -> observed version
	writes []writeOp
	wIndex map[string]int // read-your-writes index into writes
}

type writeOp struct {
	table, key string
	val        []byte
	delete     bool
}

func rk(table, key string) string { return table + "\x00" + key }

// Begin starts a transaction.
func (e *Engine) Begin() *Tx {
	e.nextTx++
	return &Tx{eng: e, id: e.nextTx, reads: map[string]int64{}, wIndex: map[string]int{}}
}

// ID returns the transaction id.
func (t *Tx) ID() int64 { return t.id }

// Get reads a row, observing the transaction's own writes first.
func (t *Tx) Get(tableName, key string) ([]byte, bool) {
	if i, ok := t.wIndex[rk(tableName, key)]; ok {
		w := t.writes[i]
		if w.delete {
			return nil, false
		}
		return w.val, true
	}
	tab, ok := t.eng.tables[tableName]
	if !ok {
		return nil, false
	}
	r, ok := tab.rows[key]
	t.reads[rk(tableName, key)] = r.ver // absent rows observe version 0
	if !ok || r.val == nil {
		return nil, false // missing or tombstoned
	}
	return r.val, true
}

// Put buffers a row write.
func (t *Tx) Put(tableName, key string, val []byte) {
	t.addWrite(writeOp{table: tableName, key: key, val: append([]byte(nil), val...)})
}

// Delete buffers a row deletion.
func (t *Tx) Delete(tableName, key string) {
	t.addWrite(writeOp{table: tableName, key: key, delete: true})
}

func (t *Tx) addWrite(w writeOp) {
	k := rk(w.table, w.key)
	if i, ok := t.wIndex[k]; ok {
		t.writes[i] = w
		return
	}
	t.wIndex[k] = len(t.writes)
	t.writes = append(t.writes, w)
}

// Abort discards the transaction.
func (t *Tx) Abort() {
	if !t.done {
		t.done = true
		t.eng.aborts++
	}
}

// Commit validates the read set, applies the write set, logs the redo
// record and blocks until it is durable. Read-only transactions skip the
// log entirely.
func (t *Tx) Commit(p *sim.Proc) error {
	if t.done {
		return ErrTxDone
	}
	// Validate: every row read must still carry the version we saw.
	for k, ver := range t.reads {
		tableName, key := splitRK(k)
		tab, ok := t.eng.tables[tableName]
		cur := int64(0)
		if ok {
			cur = tab.rows[key].ver
		}
		if cur != ver {
			t.Abort()
			return ErrConflict
		}
	}
	t.done = true
	if len(t.writes) == 0 {
		t.eng.commits++
		return nil
	}
	// Apply in memory (versions stamp the writer id), then persist the
	// redo record; the caller is unblocked when the group commit flushes.
	t.applyWrites()
	t.eng.commits++
	if t.eng.log != nil {
		t.eng.log.Commit(p, wal.Record{TxID: t.id, Payload: encodeWrites(t.writes)})
	}
	return nil
}

// CommitAsync validates and applies like Commit but returns immediately
// with the LSN to wait on, enabling pipelined (asynchronous) commit: the
// worker continues with new transactions while durability catches up, and
// acknowledges the client only once the log passes the returned LSN.
// Read-only transactions return LSN 0.
func (t *Tx) CommitAsync() (int64, error) {
	if t.done {
		return 0, ErrTxDone
	}
	for k, ver := range t.reads {
		tableName, key := splitRK(k)
		tab, ok := t.eng.tables[tableName]
		cur := int64(0)
		if ok {
			cur = tab.rows[key].ver
		}
		if cur != ver {
			t.Abort()
			return 0, ErrConflict
		}
	}
	t.done = true
	t.eng.commits++
	if len(t.writes) == 0 {
		return 0, nil
	}
	t.applyWrites()
	if t.eng.log == nil {
		return 0, nil
	}
	return t.eng.log.Append(wal.Record{TxID: t.id, Payload: encodeWrites(t.writes)}), nil
}

// Log returns the engine's WAL (nil when volatile).
func (e *Engine) Log() *wal.Log { return e.log }

func (t *Tx) applyWrites() {
	for _, w := range t.writes {
		t.eng.applyOp(w, t.id)
	}
}

func (e *Engine) applyOp(w writeOp, ver int64) {
	tab, ok := e.tables[w.table]
	if !ok {
		e.CreateTable(w.table)
		tab = e.tables[w.table]
	}
	if w.delete {
		// Deletion leaves a versioned tombstone (val == nil) so OCC still
		// detects conflicts against a read of the now-absent row.
		tab.rows[w.key] = row{val: nil, ver: ver}
	} else {
		tab.rows[w.key] = row{val: w.val, ver: ver}
	}
}

func splitRK(k string) (string, string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}

// LoadRow installs a row directly, bypassing transactions and the log.
// It exists for bulk loading (e.g. populating TPC-C tables); rows loaded
// this way carry version 0, exactly like rows recovered from a snapshot.
func (e *Engine) LoadRow(tableName, key string, val []byte) {
	e.CreateTable(tableName)
	e.tables[tableName].rows[key] = row{val: append([]byte(nil), val...)}
}

// Read is a convenience snapshot read outside any transaction.
func (e *Engine) Read(tableName, key string) ([]byte, bool) {
	tab, ok := e.tables[tableName]
	if !ok {
		return nil, false
	}
	r, ok := tab.rows[key]
	if !ok || r.val == nil {
		return nil, false
	}
	return r.val, true
}

// --- redo payload encoding -------------------------------------------------

// encodeWrites serializes a write set:
// [nOps u16] then per op: [flags u8][tableLen u8][table][keyLen u16][key]
// [valLen u32][val].
func encodeWrites(ws []writeOp) []byte {
	var buf []byte
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(ws)))
	buf = append(buf, n[:]...)
	for _, w := range ws {
		flags := byte(0)
		if w.delete {
			flags = 1
		}
		buf = append(buf, flags, byte(len(w.table)))
		buf = append(buf, w.table...)
		var kl [2]byte
		binary.LittleEndian.PutUint16(kl[:], uint16(len(w.key)))
		buf = append(buf, kl[:]...)
		buf = append(buf, w.key...)
		var vl [4]byte
		binary.LittleEndian.PutUint32(vl[:], uint32(len(w.val)))
		buf = append(buf, vl[:]...)
		buf = append(buf, w.val...)
	}
	return buf
}

// decodeWrites parses a redo payload.
func decodeWrites(buf []byte) ([]writeOp, error) {
	if len(buf) < 2 {
		return nil, errors.New("db: short redo payload")
	}
	n := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	out := make([]writeOp, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < 2 {
			return nil, errors.New("db: truncated redo op")
		}
		flags, tl := buf[0], int(buf[1])
		buf = buf[2:]
		if len(buf) < tl+2 {
			return nil, errors.New("db: truncated table name")
		}
		tableName := string(buf[:tl])
		buf = buf[tl:]
		kl := int(binary.LittleEndian.Uint16(buf[:2]))
		buf = buf[2:]
		if len(buf) < kl+4 {
			return nil, errors.New("db: truncated key")
		}
		key := string(buf[:kl])
		buf = buf[kl:]
		vl := int(binary.LittleEndian.Uint32(buf[:4]))
		buf = buf[4:]
		if len(buf) < vl {
			return nil, errors.New("db: truncated value")
		}
		val := append([]byte(nil), buf[:vl]...)
		buf = buf[vl:]
		out = append(out, writeOp{table: tableName, key: key, val: val, delete: flags&1 != 0})
	}
	return out, nil
}

// ApplyRecord replays one redo record (recovery and secondary apply).
func (e *Engine) ApplyRecord(r wal.Record) error {
	ws, err := decodeWrites(r.Payload)
	if err != nil {
		return fmt.Errorf("db: apply tx %d: %w", r.TxID, err)
	}
	for _, w := range ws {
		e.applyOp(w, r.TxID)
	}
	e.commits++
	return nil
}

// Recover replays a decoded log stream in order (crash restart).
func (e *Engine) Recover(records []wal.Record) error {
	for _, r := range records {
		if err := e.ApplyRecord(r); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint folds every table's contents into a deterministic hash, for
// equivalence checks between a recovered or replicated engine and its
// source. (FNV-1a over sorted rows.)
func (e *Engine) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s []byte) {
		for _, b := range s {
			h ^= uint64(b)
			h *= prime
		}
	}
	for _, n := range e.Tables() {
		tab := e.tables[n]
		keys := make([]string, 0, len(tab.rows))
		for k := range tab.rows {
			if tab.rows[k].val != nil {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		mix([]byte(n))
		for _, k := range keys {
			mix([]byte(k))
			mix(tab.rows[k].val)
		}
	}
	return h
}
