// Package db implements the in-memory database substrate the experiments
// drive (the paper uses ERMIA, a memory-optimized engine whose only
// persistent state is the transaction log). The engine keeps all rows in
// memory, runs transactions with optimistic concurrency control, and
// persists commits through a pluggable wal.Log — which is exactly the
// surface the X-SSD accelerates.
package db

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"xssd/internal/btree"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// Errors returned by transactions.
var (
	ErrConflict = errors.New("db: transaction conflict, retry")
	ErrNoTable  = errors.New("db: no such table")
	ErrTxDone   = errors.New("db: transaction already finished")
)

// Engine is an in-memory multi-table store with redo logging.
type Engine struct {
	env    *sim.Env
	log    *wal.Log // nil: run without durability (recovery impossible)
	tables map[string]*table
	nextTx int64

	// encBuf is the reusable redo-record scratch: the WAL copies the
	// payload into its own batch before Append returns, and nothing
	// yields between encoding and appending, so one buffer serves every
	// commit on the engine.
	encBuf []byte

	// pins maps rows claimed by prepared-but-undecided distributed
	// transactions to their owner. A prepared participant must be able to
	// commit later no matter what runs in between, so its read and write
	// sets stay fenced until the coordinator's decision arrives. nil until
	// the first Prepare, so purely local workloads never pay for it.
	pins map[hkey]*Tx

	// paged is non-nil for an engine whose tables live in B+tree pages
	// behind a buffer pool instead of in-memory row maps (see paged.go).
	paged *pagedState

	commits, aborts int64
}

type table struct {
	name string
	rows map[string]row

	// tree replaces rows when the engine is paged (rows stays nil).
	tree *btree.Tree
}

type row struct {
	val []byte
	ver int64 // transaction id of the writer
}

// New creates an engine. log may be nil for a volatile instance.
func New(env *sim.Env, log *wal.Log) *Engine {
	return &Engine{env: env, log: log, tables: map[string]*table{}}
}

// CreateTable registers a table; creating an existing table is a no-op.
func (e *Engine) CreateTable(name string) {
	if _, ok := e.tables[name]; !ok {
		if e.paged != nil {
			e.tables[name] = &table{name: name, tree: btree.New(e.paged.pg)}
		} else {
			e.tables[name] = &table{name: name, rows: map[string]row{}}
		}
	}
}

// Table is a resolved table handle. Hot paths hold one and use the *In
// transaction methods so every row access skips the engine's name lookup
// and keys the transaction's read/write sets by pointer instead of by
// table-name string.
type Table struct {
	t    *table
	name string
}

// Table returns a handle for name, creating the table if needed.
func (e *Engine) Table(name string) Table {
	e.CreateTable(name)
	return Table{t: e.tables[name], name: name}
}

// Tables returns the table names in sorted order, so callers that iterate
// them (recovery checks, fingerprints, dumps) stay deterministic.
func (e *Engine) Tables() []string {
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RowCount returns the number of live rows in a table (tombstones are
// excluded; 0 if the table is absent). On a paged engine this walks the
// table's tree on the calling goroutine — fine for memory-backed stores
// and fully resident pools; use RowCountIn from a process when pages may
// need device reads.
func (e *Engine) RowCount(name string) int { return e.RowCountIn(nil, name) }

// RowCountIn is RowCount running on a simulated process (paged engines
// may fetch pages from the device).
func (e *Engine) RowCountIn(p *sim.Proc, name string) int {
	t, ok := e.tables[name]
	if !ok {
		return 0
	}
	n := 0
	if t.tree != nil {
		err := t.tree.Scan(p, func(_ string, it btree.Item) bool {
			if !it.Tomb {
				n++
			}
			return true
		})
		if err != nil {
			e.pagedFault(p, fmt.Errorf("db: row count %q: %w", name, err))
			return 0
		}
		return n
	}
	for _, r := range t.rows {
		if r.val != nil {
			n++
		}
	}
	return n
}

// Stats returns committed and aborted transaction counts.
func (e *Engine) Stats() (commits, aborts int64) { return e.commits, e.aborts }

// Tx is one transaction. All methods must be called from a single
// simulated process; only Commit blocks.
type Tx struct {
	eng  *Engine
	id   int64
	done bool

	// p is the owning simulated process — required on a paged engine,
	// where reads and commits may block on device I/O. nil on the
	// in-memory engine (nothing there ever yields).
	p *sim.Proc

	reads  map[hkey]int64 // observed row versions
	writes []writeOp
	wIndex map[hkey]int // read-your-writes index into writes
}

type writeOp struct {
	tab    Table // tab.t is nil on the recovery path (decoded records)
	key    string
	val    []byte
	delete bool
}

// hkey identifies a row by resolved table. Hashing a pointer plus the
// row key is measurably cheaper than hashing two strings per access.
type hkey struct {
	t   *table
	key string
}

// Begin starts a transaction with no process context. Valid on the
// in-memory engine; on a paged engine the transaction can only touch
// already-resident pages (tests, bulk load) — use BeginP from workloads.
func (e *Engine) Begin() *Tx { return e.BeginP(nil) }

// BeginP starts a transaction owned by process p. Paged reads and commits
// run on p when they need the device.
func (e *Engine) BeginP(p *sim.Proc) *Tx {
	e.nextTx++
	return &Tx{eng: e, id: e.nextTx, p: p, reads: map[hkey]int64{}, wIndex: map[hkey]int{}}
}

// ID returns the transaction id.
func (t *Tx) ID() int64 { return t.id }

// GetIn reads a row through a resolved handle, observing the
// transaction's own writes first.
func (t *Tx) GetIn(tab Table, key string) ([]byte, bool) {
	if i, ok := t.wIndex[hkey{tab.t, key}]; ok {
		w := t.writes[i]
		if w.delete {
			return nil, false
		}
		return w.val, true
	}
	if tab.t.tree != nil {
		return t.getPaged(tab, key)
	}
	r, ok := tab.t.rows[key]
	t.reads[hkey{tab.t, key}] = r.ver // absent rows observe version 0
	if !ok || r.val == nil {
		return nil, false // missing or tombstoned
	}
	return r.val, true
}

// Get reads a row by table name, observing the transaction's own writes
// first.
func (t *Tx) Get(tableName, key string) ([]byte, bool) {
	tab, ok := t.eng.tables[tableName]
	if !ok {
		return nil, false
	}
	return t.GetIn(Table{t: tab, name: tableName}, key)
}

// PutIn buffers a row write through a resolved handle. The value is
// copied, so the caller may reuse the slice afterwards.
func (t *Tx) PutIn(tab Table, key string, val []byte) {
	t.addWrite(writeOp{tab: tab, key: key, val: append([]byte(nil), val...)})
}

// PutOwnedIn buffers a row write through a resolved handle and takes
// ownership of val: the caller must not read or modify the slice
// afterwards. Use it when the value was freshly built for this call
// (e.g. a row Encode result) to skip the defensive copy.
func (t *Tx) PutOwnedIn(tab Table, key string, val []byte) {
	t.addWrite(writeOp{tab: tab, key: key, val: val})
}

// DeleteIn buffers a row deletion through a resolved handle.
func (t *Tx) DeleteIn(tab Table, key string) {
	t.addWrite(writeOp{tab: tab, key: key, delete: true})
}

// Put buffers a row write by table name (creating the table on first
// use). The value is copied, so the caller may reuse the slice.
func (t *Tx) Put(tableName, key string, val []byte) {
	t.PutIn(t.eng.Table(tableName), key, val)
}

// PutOwned buffers a row write by table name and takes ownership of val.
func (t *Tx) PutOwned(tableName, key string, val []byte) {
	t.PutOwnedIn(t.eng.Table(tableName), key, val)
}

// Delete buffers a row deletion by table name (creating the table on
// first use).
func (t *Tx) Delete(tableName, key string) {
	t.DeleteIn(t.eng.Table(tableName), key)
}

func (t *Tx) addWrite(w writeOp) {
	k := hkey{w.tab.t, w.key}
	if i, ok := t.wIndex[k]; ok {
		t.writes[i] = w
		return
	}
	t.wIndex[k] = len(t.writes)
	t.writes = append(t.writes, w)
}

// Abort discards the transaction, releasing any pins a Prepare took.
func (t *Tx) Abort() {
	if !t.done {
		t.done = true
		t.unpin()
		t.eng.aborts++
	}
}

// Commit validates the read set, applies the write set, logs the redo
// record and blocks until it is durable. Read-only transactions skip the
// log entirely.
func (t *Tx) Commit(p *sim.Proc) error {
	if t.done {
		return ErrTxDone
	}
	if t.eng.paged != nil {
		lsn, err := t.commitPaged(p)
		if err == nil && lsn > 0 && t.eng.log != nil {
			t.eng.log.WaitDurable(p, lsn)
		}
		return err
	}
	// Validate: every row read must still carry the version we saw. (Map
	// order is fine here: the commit/abort outcome does not depend on
	// which stale read is discovered first, and nothing in the loop
	// schedules events.)
	for k, ver := range t.reads {
		if k.t.rows[k.key].ver != ver {
			t.Abort()
			return ErrConflict
		}
	}
	if len(t.eng.pins) > 0 && t.pinned() {
		t.Abort()
		return ErrConflict
	}
	t.done = true
	if len(t.writes) == 0 {
		t.eng.commits++
		return nil
	}
	// Apply in memory (versions stamp the writer id), then persist the
	// redo record; the caller is unblocked when the group commit flushes.
	t.applyWrites()
	t.eng.commits++
	if t.eng.log != nil {
		t.eng.log.Commit(p, wal.Record{TxID: t.id, Payload: t.eng.encodeScratch(t.writes)})
	}
	return nil
}

// CommitAsync validates and applies like Commit but returns immediately
// with the LSN to wait on, enabling pipelined (asynchronous) commit: the
// worker continues with new transactions while durability catches up, and
// acknowledges the client only once the log passes the returned LSN.
// Read-only transactions return LSN 0.
func (t *Tx) CommitAsync() (int64, error) {
	if t.done {
		return 0, ErrTxDone
	}
	if t.eng.paged != nil {
		return t.commitPaged(t.p)
	}
	for k, ver := range t.reads {
		if k.t.rows[k.key].ver != ver {
			t.Abort()
			return 0, ErrConflict
		}
	}
	if len(t.eng.pins) > 0 && t.pinned() {
		t.Abort()
		return 0, ErrConflict
	}
	t.done = true
	t.eng.commits++
	if len(t.writes) == 0 {
		return 0, nil
	}
	t.applyWrites()
	if t.eng.log == nil {
		return 0, nil
	}
	return t.eng.log.Append(wal.Record{TxID: t.id, Payload: t.eng.encodeScratch(t.writes)}), nil
}

// CommitPipelined is CommitAsync wired to a wal.Pipeline: the commit's
// LSN token enters the pipeline (blocking only when its in-flight window
// is full) and the transaction is acknowledged once the pipeline retires
// it. Returns the LSN for callers that also track the frontier.
func (t *Tx) CommitPipelined(p *sim.Proc, pl *wal.Pipeline) (int64, error) {
	lsn, err := t.CommitAsync()
	if err != nil {
		return 0, err
	}
	pl.Submit(p, lsn)
	return lsn, nil
}

// --- two-phase commit support ----------------------------------------------

// Prepare validates the transaction's read set and pins its read and
// write sets: phase one of a distributed commit. After a nil return the
// transaction is guaranteed committable — no other transaction can commit
// a write to any row it touched until CommitPrepared or Abort releases
// the pins. A validation failure or a collision with another prepared
// transaction aborts and returns ErrConflict (vote no).
func (t *Tx) Prepare() error {
	if t.done {
		return ErrTxDone
	}
	if t.eng.paged != nil {
		// 2PC pins fence the in-memory row maps; the paged engine has no
		// sharded deployment, so fail loudly instead of silently skipping
		// validation.
		panic("db: Prepare on a paged engine")
	}
	// Validation and pin checks are map-order safe for the same reason
	// Commit's are: any single stale read or foreign pin aborts, and the
	// loops schedule nothing.
	for k, ver := range t.reads {
		if k.t.rows[k.key].ver != ver {
			t.Abort()
			return ErrConflict
		}
	}
	if len(t.eng.pins) > 0 {
		for k := range t.reads {
			if o := t.eng.pins[k]; o != nil && o != t {
				t.Abort()
				return ErrConflict
			}
		}
		for _, w := range t.writes {
			if o := t.eng.pins[hkey{w.tab.t, w.key}]; o != nil && o != t {
				t.Abort()
				return ErrConflict
			}
		}
	}
	if t.eng.pins == nil {
		t.eng.pins = map[hkey]*Tx{}
	}
	for k := range t.reads {
		t.eng.pins[k] = t
	}
	for _, w := range t.writes {
		t.eng.pins[hkey{w.tab.t, w.key}] = t
	}
	return nil
}

// pinned reports whether a row this transaction writes is claimed by a
// prepared distributed transaction. Reading a pinned row stays legal (the
// reader serializes before the pin's owner), but writing one would
// invalidate validation the owner already voted yes on.
func (t *Tx) pinned() bool {
	for _, w := range t.writes {
		if o := t.eng.pins[hkey{w.tab.t, w.key}]; o != nil && o != t {
			return true
		}
	}
	return false
}

// unpin releases every pin owned by t. (Deleting while ranging is defined
// in Go, and no outcome depends on the visit order.)
func (t *Tx) unpin() {
	if len(t.eng.pins) == 0 {
		return
	}
	for k, o := range t.eng.pins {
		if o == t {
			delete(t.eng.pins, k)
		}
	}
}

// CommitPrepared applies a prepared transaction's writes — stamped with
// ver, the distributed transaction's global id — and releases its pins.
// No validation happens here: after Prepare the transaction cannot lose,
// and the caller has already made the commit decision durable.
func (t *Tx) CommitPrepared(ver int64) {
	if t.done {
		return
	}
	t.done = true
	t.unpin()
	for _, w := range t.writes {
		rw := row{ver: ver}
		if !w.delete {
			rw.val = w.val
		}
		w.tab.t.rows[w.key] = rw
	}
	t.eng.commits++
}

// EncodedWrites serializes the transaction's write set in the redo-record
// payload format, into a fresh buffer the caller owns (it travels inside
// 2PC control records and across shard RPC, outliving the engine's
// scratch).
func (t *Tx) EncodedWrites() []byte { return encodeWrites(t.writes) }

// ApplyWriteSet replays an encoded write set — the body of a 2PC control
// record — stamping every row with ver and counting one committed
// transaction. The recovery twin of CommitPrepared.
func (e *Engine) ApplyWriteSet(payload []byte, ver int64) error {
	ws, err := decodeWrites(payload)
	if err != nil {
		return fmt.Errorf("db: apply write set ver %d: %w", ver, err)
	}
	for _, w := range ws {
		e.applyOp(w, ver)
	}
	e.commits++
	return nil
}

// Log returns the engine's WAL (nil when volatile).
func (e *Engine) Log() *wal.Log { return e.log }

// Env returns the engine's simulation environment.
func (e *Engine) Env() *sim.Env { return e.env }

func (t *Tx) applyWrites() {
	// Every writeOp on this path carries a resolved handle, so the apply
	// loop touches only the row maps.
	for _, w := range t.writes {
		rw := row{ver: t.id}
		if !w.delete {
			rw.val = w.val
		}
		w.tab.t.rows[w.key] = rw
	}
}

func (e *Engine) applyOp(w writeOp, ver int64) {
	tab, ok := e.tables[w.tab.name]
	if !ok {
		e.CreateTable(w.tab.name)
		tab = e.tables[w.tab.name]
	}
	if w.delete {
		// Deletion leaves a versioned tombstone (val == nil) so OCC still
		// detects conflicts against a read of the now-absent row.
		tab.rows[w.key] = row{val: nil, ver: ver}
	} else {
		tab.rows[w.key] = row{val: w.val, ver: ver}
	}
}

// LoadRow installs a row directly, bypassing transactions and the log.
// It exists for bulk loading (e.g. populating TPC-C tables); rows loaded
// this way carry version 0, exactly like rows recovered from a snapshot.
// On a paged engine the load happens before any checkpoint, so every
// touched page is fresh and resident — no device I/O, no process needed.
func (e *Engine) LoadRow(tableName, key string, val []byte) {
	e.CreateTable(tableName)
	tab := e.tables[tableName]
	if tab.tree != nil {
		cp := append([]byte(nil), val...)
		if err := tab.tree.Put(nil, key, btree.Item{Val: cp}, 0); err != nil {
			panic(fmt.Sprintf("db: load row %q/%q: %v", tableName, key, err))
		}
		return
	}
	tab.rows[key] = row{val: append([]byte(nil), val...)}
}

// Read is a convenience snapshot read outside any transaction.
func (e *Engine) Read(tableName, key string) ([]byte, bool) {
	return e.ReadIn(nil, tableName, key)
}

// ReadIn is Read running on a simulated process (paged engines may fetch
// the page from the device).
func (e *Engine) ReadIn(p *sim.Proc, tableName, key string) ([]byte, bool) {
	tab, ok := e.tables[tableName]
	if !ok {
		return nil, false
	}
	if tab.tree != nil {
		it, found, err := tab.tree.Get(p, key)
		if err != nil {
			e.pagedFault(p, fmt.Errorf("db: read %q/%q: %w", tableName, key, err))
			return nil, false
		}
		if !found || it.Tomb {
			return nil, false
		}
		return it.Val, true
	}
	r, ok := tab.rows[key]
	if !ok || r.val == nil {
		return nil, false
	}
	return r.val, true
}

// --- redo payload encoding -------------------------------------------------

// encodeWrites serializes a write set:
// [nOps u16] then per op: [flags u8][tableLen u8][table][keyLen u16][key]
// [valLen u32][val].
func encodeWrites(ws []writeOp) []byte { return appendWrites(nil, ws) }

// encodeScratch serializes into the engine's reusable buffer. Valid until
// the next commit on the engine; the WAL copies the payload before
// Append returns.
func (e *Engine) encodeScratch(ws []writeOp) []byte {
	e.encBuf = appendWrites(e.encBuf[:0], ws)
	return e.encBuf
}

func appendWrites(buf []byte, ws []writeOp) []byte {
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(ws)))
	buf = append(buf, n[:]...)
	for _, w := range ws {
		flags := byte(0)
		if w.delete {
			flags = 1
		}
		buf = append(buf, flags, byte(len(w.tab.name)))
		buf = append(buf, w.tab.name...)
		var kl [2]byte
		binary.LittleEndian.PutUint16(kl[:], uint16(len(w.key)))
		buf = append(buf, kl[:]...)
		buf = append(buf, w.key...)
		var vl [4]byte
		binary.LittleEndian.PutUint32(vl[:], uint32(len(w.val)))
		buf = append(buf, vl[:]...)
		buf = append(buf, w.val...)
	}
	return buf
}

// decodeWrites parses a redo payload.
func decodeWrites(buf []byte) ([]writeOp, error) {
	if len(buf) < 2 {
		return nil, errors.New("db: short redo payload")
	}
	n := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	out := make([]writeOp, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < 2 {
			return nil, errors.New("db: truncated redo op")
		}
		flags, tl := buf[0], int(buf[1])
		buf = buf[2:]
		if len(buf) < tl+2 {
			return nil, errors.New("db: truncated table name")
		}
		tableName := string(buf[:tl])
		buf = buf[tl:]
		kl := int(binary.LittleEndian.Uint16(buf[:2]))
		buf = buf[2:]
		if len(buf) < kl+4 {
			return nil, errors.New("db: truncated key")
		}
		key := string(buf[:kl])
		buf = buf[kl:]
		vl := int(binary.LittleEndian.Uint32(buf[:4]))
		buf = buf[4:]
		if len(buf) < vl {
			return nil, errors.New("db: truncated value")
		}
		val := append([]byte(nil), buf[:vl]...)
		buf = buf[vl:]
		out = append(out, writeOp{tab: Table{name: tableName}, key: key, val: val, delete: flags&1 != 0})
	}
	return out, nil
}

// ControlOpMark is the lowest redo-op-count value reserved for control
// payloads riding the WAL: no real transaction carries that many ops, so
// the first two payload bytes distinguish redo records from 2PC control
// records (0xFFFF, owned by internal/shard) and checkpoint records
// (0xFFFE, owned by internal/ckpt). Replay skips anything in the range —
// control records describe protocol state, not row contents.
const ControlOpMark = 0xFFFE

// IsControlPayload reports whether a WAL record payload is a control
// record rather than a redo write set.
func IsControlPayload(payload []byte) bool {
	return len(payload) >= 2 && binary.LittleEndian.Uint16(payload) >= ControlOpMark
}

// ApplyRecord replays one redo record (recovery and secondary apply);
// control records are skipped.
func (e *Engine) ApplyRecord(r wal.Record) error {
	if e.paged != nil {
		return e.ApplyRecordIn(nil, r)
	}
	if IsControlPayload(r.Payload) {
		return nil
	}
	ws, err := decodeWrites(r.Payload)
	if err != nil {
		return fmt.Errorf("db: apply tx %d: %w", r.TxID, err)
	}
	for _, w := range ws {
		e.applyOp(w, r.TxID)
	}
	e.commits++
	return nil
}

// Recover replays a decoded log stream in order (crash restart).
func (e *Engine) Recover(records []wal.Record) error {
	for _, r := range records {
		if err := e.ApplyRecord(r); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint folds every table's contents into a deterministic hash, for
// equivalence checks between a recovered or replicated engine and its
// source. (FNV-1a over sorted rows.) Paged engines delegate to
// FingerprintIn with no process — fine when pages are memory-backed or
// resident; use FingerprintIn from a process otherwise.
func (e *Engine) Fingerprint() uint64 { return e.FingerprintIn(nil) }

// FingerprintIn is Fingerprint running on a simulated process (paged
// engines walk every table's tree, which may fetch pages). The hash is
// identical across engine modes: a paged engine holding the same rows as
// an in-memory one fingerprints to the same value.
func (e *Engine) FingerprintIn(p *sim.Proc) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s []byte) {
		for _, b := range s {
			h ^= uint64(b)
			h *= prime
		}
	}
	for _, n := range e.Tables() {
		tab := e.tables[n]
		mix([]byte(n))
		if tab.tree != nil {
			err := tab.tree.Scan(p, func(k string, it btree.Item) bool {
				if !it.Tomb {
					mix([]byte(k))
					mix(it.Val)
				}
				return true
			})
			if err != nil {
				e.pagedFault(p, fmt.Errorf("db: fingerprint %q: %w", n, err))
			}
			continue
		}
		keys := make([]string, 0, len(tab.rows))
		for k := range tab.rows {
			if tab.rows[k].val != nil {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			mix([]byte(k))
			mix(tab.rows[k].val)
		}
	}
	return h
}
