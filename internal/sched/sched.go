// Package sched implements the storage-controller scheduler of the Villars
// device (paper §4.3): per-channel dispatch of flash operations under one
// of three policies — Neutral, Destage Priority, or Conventional Priority.
// In the priority modes the low-priority class is issued only into the
// "gaps" where the high-priority class has nothing runnable, which the
// paper calls Opportunistic Destaging.
package sched

import (
	"time"

	"xssd/internal/nand"
	"xssd/internal/obs"
	"xssd/internal/sim"
)

// Source classifies where a flash operation originated.
type Source int

// Operation sources.
const (
	Conventional Source = iota // host block IO through the normal SSD path
	Destage                    // fast-side data being destaged to flash
	GC                         // internal garbage collection traffic
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case Conventional:
		return "conventional"
	case Destage:
		return "destage"
	case GC:
		return "gc"
	}
	return "unknown"
}

// Policy selects the scheduling mode (paper §4.3).
type Policy int

// Scheduling policies.
const (
	// Neutral divides write opportunities equally (FIFO).
	Neutral Policy = iota
	// DestagePriority issues destage ops first; conventional ops fill gaps.
	DestagePriority
	// ConventionalPriority protects the conventional workload; destage ops
	// fill gaps.
	ConventionalPriority
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Neutral:
		return "neutral"
	case DestagePriority:
		return "destage-priority"
	case ConventionalPriority:
		return "conventional-priority"
	}
	return "unknown"
}

// OpKind is the flash operation type.
type OpKind int

// Operation kinds.
const (
	OpProgram OpKind = iota
	OpRead
	OpErase
)

// Request is one flash operation awaiting dispatch.
type Request struct {
	Kind   OpKind
	Addr   nand.PageAddr // page for program/read; block via Addr.BlockAddr() for erase
	Data   []byte        // program payload
	Source Source
	// Done fires in scheduler context at completion. For OpRead, data
	// carries the page contents.
	Done func(data []byte, err error)

	enqueued time.Duration
}

// reqQueue is a FIFO with head-index consumption: popping the head is a
// pointer bump, not a memmove, and the backing array is reused once
// drained.
type reqQueue struct {
	q   []*Request
	pos int // q[:pos] already dispatched
}

func (rq *reqQueue) push(r *Request) {
	if rq.pos > 0 && rq.pos == len(rq.q) {
		rq.q = rq.q[:0]
		rq.pos = 0
	}
	rq.q = append(rq.q, r)
}

// items returns the waiting requests in FIFO order.
func (rq *reqQueue) items() []*Request { return rq.q[rq.pos:] }

// removeAt removes the i-th waiting request (an index into items()).
func (rq *reqQueue) removeAt(i int) *Request {
	idx := rq.pos + i
	r := rq.q[idx]
	if i == 0 {
		rq.q[idx] = nil
		rq.pos++
	} else {
		copy(rq.q[idx:], rq.q[idx+1:])
		rq.q[len(rq.q)-1] = nil
		rq.q = rq.q[:len(rq.q)-1]
	}
	return r
}

func (rq *reqQueue) depth() int { return len(rq.q) - rq.pos }

// Scheduler dispatches requests onto a nand.Array, one dispatcher process
// per channel.
type Scheduler struct {
	env    *sim.Env
	array  *nand.Array
	policy Policy

	queues [][3]reqQueue // [channel][source class] FIFO
	signal *sim.Signal

	// stats
	bytesBySource [3]int64
	opsBySource   [3]int64
	waitBySource  [3]time.Duration

	// metrics: per-source queueing-delay histograms, nil until Observe.
	waitHist [3]*obs.Histogram
}

// Observe registers the scheduler's telemetry under sc (the owning device
// supplies "<dev>/sched"): per-source ops/bytes gauges and a queueing-wait
// histogram per source. Call once, before traffic.
func (s *Scheduler) Observe(sc obs.Scope) {
	for src := Conventional; src <= GC; src++ {
		src := src
		sub := sc.Sub(src.String())
		sub.GaugeFunc("ops", func() int64 { return s.opsBySource[src] })
		sub.GaugeFunc("bytes", func() int64 { return s.bytesBySource[src] })
		s.waitHist[src] = sub.Histogram("wait_ns")
	}
	sc.GaugeFunc("policy", func() int64 { return int64(s.policy) })
}

// New creates a scheduler over array and starts its per-channel
// dispatchers.
func New(env *sim.Env, array *nand.Array, policy Policy) *Scheduler {
	s := &Scheduler{
		env:    env,
		array:  array,
		policy: policy,
		queues: make([][3]reqQueue, array.Geometry().Channels),
		signal: env.NewSignal(),
	}
	// Forward die-completion events into the scheduler's wake-up signal so
	// dispatchers block on a single condition.
	env.Go("sched-freed", func(p *sim.Proc) {
		for {
			p.Wait(array.Freed)
			s.signal.Broadcast()
		}
	})
	for ch := 0; ch < array.Geometry().Channels; ch++ {
		ch := ch
		env.Go("sched-ch", func(p *sim.Proc) { s.dispatch(p, ch) })
	}
	return s
}

// Policy returns the active policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// SetPolicy switches the scheduling mode (the paper configures this via a
// vendor-specific NVMe command).
func (s *Scheduler) SetPolicy(p Policy) { s.policy = p }

// Submit queues a request for dispatch.
//
//xssd:hotpath
func (s *Scheduler) Submit(r *Request) {
	r.enqueued = s.env.Now()
	s.queues[r.Addr.Channel][r.Source].push(r)
	s.signal.Broadcast()
}

// QueueDepth returns the number of requests waiting on a channel.
func (s *Scheduler) QueueDepth(ch int) int {
	q := &s.queues[ch]
	return q[0].depth() + q[1].depth() + q[2].depth()
}

// classOrder returns source classes in dispatch-priority order for the
// active policy. GC always runs first: it frees the blocks everything else
// needs.
func (s *Scheduler) classOrder() [3]Source {
	switch s.policy {
	case DestagePriority:
		return [3]Source{GC, Destage, Conventional}
	case ConventionalPriority:
		return [3]Source{GC, Conventional, Destage}
	default:
		return [3]Source{GC, Conventional, Destage} // order among non-GC resolved by FIFO below
	}
}

// pick removes and returns the next dispatchable request on ch (target die
// idle), or nil.
//
//xssd:hotpath
func (s *Scheduler) pick(ch int) *Request {
	q := &s.queues[ch]
	if s.policy == Neutral {
		// Global FIFO across all classes: choose the oldest runnable
		// request regardless of source.
		bestClass, bestIdx := -1, -1
		var bestAt time.Duration
		for c := 0; c < 3; c++ {
			for i, r := range q[c].items() {
				if s.array.DieBusy(r.Addr.Channel, r.Addr.Way) {
					continue
				}
				if bestClass == -1 || r.enqueued < bestAt {
					bestClass, bestIdx, bestAt = c, i, r.enqueued
				}
				break // within a class the queue is FIFO: first runnable wins
			}
		}
		if bestClass == -1 {
			return nil
		}
		return q[bestClass].removeAt(bestIdx)
	}
	for _, class := range s.classOrder() {
		for i, r := range q[class].items() {
			if s.array.DieBusy(r.Addr.Channel, r.Addr.Way) {
				continue
			}
			return q[class].removeAt(i)
		}
	}
	return nil
}

func (s *Scheduler) dispatch(p *sim.Proc, ch int) {
	for {
		r := s.pick(ch)
		if r == nil {
			// Nothing runnable: sleep until a request arrives or a die
			// frees up (the forwarder relays array.Freed into signal).
			p.Wait(s.signal)
			continue
		}
		wait := p.Now() - r.enqueued
		s.waitBySource[r.Source] += wait
		s.waitHist[r.Source].ObserveDuration(wait)
		s.opsBySource[r.Source]++
		switch r.Kind {
		case OpProgram:
			s.bytesBySource[r.Source] += int64(len(r.Data))
			s.array.Program(p, r.Addr, r.Data, func(err error) { r.Done(nil, err) })
		case OpRead:
			s.array.Read(r.Addr, r.Done)
		case OpErase:
			s.array.Erase(r.Addr.BlockAddr(), func(err error) { r.Done(nil, err) })
		}
	}
}

// BytesBySource returns cumulative programmed bytes per source (the Fig 12
// measurement).
func (s *Scheduler) BytesBySource(src Source) int64 { return s.bytesBySource[src] }

// OpsBySource returns the number of dispatched operations per source.
func (s *Scheduler) OpsBySource(src Source) int64 { return s.opsBySource[src] }

// AvgWait returns the mean queueing delay per source.
func (s *Scheduler) AvgWait(src Source) time.Duration {
	if s.opsBySource[src] == 0 {
		return 0
	}
	return s.waitBySource[src] / time.Duration(s.opsBySource[src])
}
