package sched

import (
	"testing"
	"time"

	"xssd/internal/nand"
	"xssd/internal/sim"
)

func testGeo() nand.Geometry {
	return nand.Geometry{Channels: 4, WaysPerChan: 4, BlocksPerDie: 128, PagesPerBlock: 64, PageSize: 4096}
}

// alloc hands out physical pages die by die, respecting NAND page order.
type alloc struct {
	geo  nand.Geometry
	next []nand.PageAddr // per-die write point
	die  int
}

func newAlloc(geo nand.Geometry) *alloc {
	a := &alloc{geo: geo, next: make([]nand.PageAddr, geo.Dies())}
	for ch := 0; ch < geo.Channels; ch++ {
		for w := 0; w < geo.WaysPerChan; w++ {
			a.next[ch*geo.WaysPerChan+w] = nand.PageAddr{Channel: ch, Way: w}
		}
	}
	return a
}

func (a *alloc) page() nand.PageAddr {
	d := a.die
	a.die = (a.die + 1) % len(a.next)
	addr := a.next[d]
	n := &a.next[d]
	n.Page++
	if n.Page == a.geo.PagesPerBlock {
		n.Page = 0
		n.Block++
	}
	return addr
}

// offer generates page programs at a fixed fraction of the array's program
// bandwidth and counts completed bytes.
func offer(env *sim.Env, s *Scheduler, al *alloc, src Source, frac float64, done, errs *int64) {
	geo := s.array.Geometry()
	rate := frac * geo.ProgramBandwidth(s.array.Timing())
	interval := time.Duration(float64(geo.PageSize) / rate * 1e9)
	payload := make([]byte, geo.PageSize)
	env.Go("offer", func(p *sim.Proc) {
		for {
			s.Submit(&Request{
				Kind:   OpProgram,
				Addr:   al.page(),
				Data:   payload,
				Source: src,
				Done: func(_ []byte, err error) {
					if err != nil {
						*errs++
						return
					}
					*done += int64(geo.PageSize)
				},
			})
			p.Sleep(interval)
		}
	})
}

func measured(done int64, window time.Duration, geo nand.Geometry, timing nand.Timing) float64 {
	return float64(done) / window.Seconds() / geo.ProgramBandwidth(timing)
}

func TestProgramsCompleteAndDataLands(t *testing.T) {
	env := sim.NewEnv(1)
	geo := testGeo()
	arr := nand.New(env, geo, nand.DefaultTiming)
	s := New(env, arr, Neutral)
	al := newAlloc(geo)
	completed := 0
	var addrs []nand.PageAddr
	env.Go("submit", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			addr := al.page()
			addrs = append(addrs, addr)
			data := make([]byte, geo.PageSize)
			data[0] = byte(i)
			s.Submit(&Request{Kind: OpProgram, Addr: addr, Data: data, Source: Conventional,
				Done: func(_ []byte, err error) {
					if err != nil {
						t.Errorf("program failed: %v", err)
					}
					completed++
				}})
		}
	})
	env.RunUntil(time.Second)
	if completed != 20 {
		t.Fatalf("completed = %d, want 20", completed)
	}
	for i, addr := range addrs {
		d, ok := arr.PeekPage(addr)
		if !ok || d[0] != byte(i) {
			t.Fatalf("page %v content wrong", addr)
		}
	}
	if s.OpsBySource(Conventional) != 20 {
		t.Fatalf("ops = %d", s.OpsBySource(Conventional))
	}
}

func TestReadAndEraseThroughScheduler(t *testing.T) {
	env := sim.NewEnv(1)
	geo := testGeo()
	arr := nand.New(env, geo, nand.DefaultTiming)
	s := New(env, arr, Neutral)
	addr := nand.PageAddr{Channel: 0, Way: 0, Block: 0, Page: 0}
	want := make([]byte, geo.PageSize)
	want[5] = 42
	var readBack []byte
	erased := false
	env.Go("seq", func(p *sim.Proc) {
		sig := env.NewSignal()
		step := 0
		s.Submit(&Request{Kind: OpProgram, Addr: addr, Data: want, Source: Conventional,
			Done: func(_ []byte, err error) { step = 1; sig.Broadcast() }})
		p.WaitFor(sig, func() bool { return step == 1 })
		s.Submit(&Request{Kind: OpRead, Addr: addr, Source: Conventional,
			Done: func(d []byte, err error) {
				if err != nil {
					t.Errorf("read: %v", err)
				}
				readBack = d
				step = 2
				sig.Broadcast()
			}})
		p.WaitFor(sig, func() bool { return step == 2 })
		s.Submit(&Request{Kind: OpErase, Addr: addr, Source: GC,
			Done: func(_ []byte, err error) {
				if err != nil {
					t.Errorf("erase: %v", err)
				}
				erased = true
			}})
	})
	env.RunUntil(time.Second)
	if readBack == nil || readBack[5] != 42 {
		t.Fatal("read back wrong data")
	}
	if !erased {
		t.Fatal("erase never completed")
	}
}

func TestConventionalPriorityProtectsConventional(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short mode")
	}
	env := sim.NewEnv(7)
	geo := testGeo()
	arr := nand.New(env, geo, nand.DefaultTiming)
	s := New(env, arr, ConventionalPriority)
	var convDone, destDone, errs int64
	offer(env, s, newAlloc(geo), Conventional, 0.5, &convDone, &errs)
	al2 := newAlloc(geo)
	// separate block range for the destage stream so allocations don't clash
	for i := range al2.next {
		al2.next[i].Block = geo.BlocksPerDie / 2
	}
	offer(env, s, al2, Destage, 0.6, &destDone, &errs)
	window := 2 * time.Second
	env.RunUntil(window)
	if errs != 0 {
		t.Fatalf("%d program errors", errs)
	}
	conv := measured(convDone, window, geo, nand.DefaultTiming)
	dest := measured(destDone, window, geo, nand.DefaultTiming)
	if conv < 0.45 {
		t.Fatalf("conventional achieved %.2f of bandwidth, want ~0.50 (protected)", conv)
	}
	if dest > 0.55 {
		t.Fatalf("destage achieved %.2f, should be squeezed below its 0.60 offer", dest)
	}
	if total := conv + dest; total > 1.05 {
		t.Fatalf("total %.2f exceeds device bandwidth", total)
	}
}

func TestNeutralOversubscriptionHurtsBoth(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short mode")
	}
	env := sim.NewEnv(7)
	geo := testGeo()
	arr := nand.New(env, geo, nand.DefaultTiming)
	s := New(env, arr, Neutral)
	var convDone, destDone, errs int64
	offer(env, s, newAlloc(geo), Conventional, 0.5, &convDone, &errs)
	al2 := newAlloc(geo)
	for i := range al2.next {
		al2.next[i].Block = geo.BlocksPerDie / 2
	}
	offer(env, s, al2, Destage, 0.6, &destDone, &errs)
	window := 2 * time.Second
	env.RunUntil(window)
	if errs != 0 {
		t.Fatalf("%d program errors", errs)
	}
	conv := measured(convDone, window, geo, nand.DefaultTiming)
	dest := measured(destDone, window, geo, nand.DefaultTiming)
	// Offered 1.1x of capacity: under neutral sharing both streams lose
	// some throughput relative to their offers.
	if conv > 0.49 {
		t.Fatalf("neutral: conventional %.2f, expected interference below its 0.50 offer", conv)
	}
	if dest > 0.59 {
		t.Fatalf("neutral: destage %.2f, expected interference below its 0.60 offer", dest)
	}
}

func TestDestagePriorityProtectsDestage(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short mode")
	}
	env := sim.NewEnv(7)
	geo := testGeo()
	arr := nand.New(env, geo, nand.DefaultTiming)
	s := New(env, arr, DestagePriority)
	var convDone, destDone, errs int64
	offer(env, s, newAlloc(geo), Conventional, 0.6, &convDone, &errs)
	al2 := newAlloc(geo)
	for i := range al2.next {
		al2.next[i].Block = geo.BlocksPerDie / 2
	}
	offer(env, s, al2, Destage, 0.5, &destDone, &errs)
	window := 2 * time.Second
	env.RunUntil(window)
	if errs != 0 {
		t.Fatalf("%d program errors", errs)
	}
	dest := measured(destDone, window, geo, nand.DefaultTiming)
	if dest < 0.45 {
		t.Fatalf("destage achieved %.2f under destage priority, want ~0.50", dest)
	}
}

func TestGCBeatsOtherClasses(t *testing.T) {
	env := sim.NewEnv(1)
	geo := testGeo()
	arr := nand.New(env, geo, nand.DefaultTiming)
	s := New(env, arr, ConventionalPriority)
	var order []Source
	env.Go("submit", func(p *sim.Proc) {
		// Occupy die (0,0) so everything queues behind one program.
		busy := &Request{Kind: OpProgram, Addr: nand.PageAddr{Channel: 0, Way: 0, Block: 0, Page: 0},
			Data: make([]byte, geo.PageSize), Source: Conventional,
			Done: func(_ []byte, _ error) { order = append(order, Conventional) }}
		s.Submit(busy)
		p.Sleep(time.Microsecond)
		mk := func(src Source, block int) *Request {
			return &Request{Kind: OpProgram, Addr: nand.PageAddr{Channel: 0, Way: 0, Block: block, Page: 0},
				Data: make([]byte, geo.PageSize), Source: src,
				Done: func(_ []byte, err error) {
					if err != nil {
						t.Errorf("%v program: %v", src, err)
					}
					order = append(order, src)
				}}
		}
		s.Submit(mk(Destage, 1)) // queued first
		s.Submit(mk(GC, 2))      // queued later but must dispatch first
	})
	env.RunUntil(time.Second)
	// order[0] is the initial program; then GC must come before Destage.
	if len(order) != 3 {
		t.Fatalf("completions = %d, want 3 (order=%v)", len(order), order)
	}
	if order[1] != GC {
		t.Fatalf("dispatch order = %v, want GC before destage", order)
	}
}

func TestSetPolicy(t *testing.T) {
	env := sim.NewEnv(1)
	arr := nand.New(env, testGeo(), nand.DefaultTiming)
	s := New(env, arr, Neutral)
	if s.Policy() != Neutral {
		t.Fatal("initial policy wrong")
	}
	s.SetPolicy(DestagePriority)
	if s.Policy() != DestagePriority {
		t.Fatal("SetPolicy did not take effect")
	}
}

func TestPolicyAndSourceStrings(t *testing.T) {
	if Neutral.String() != "neutral" || ConventionalPriority.String() != "conventional-priority" {
		t.Fatal("policy strings")
	}
	if Conventional.String() != "conventional" || Destage.String() != "destage" || GC.String() != "gc" {
		t.Fatal("source strings")
	}
}
