package xapi

import (
	"testing"

	"xssd/internal/sim"
)

// BenchmarkCMBAppend16K drives the full CMB append path — XPwrite through
// the write-combining window, TLP delivery, intake queue, backing-bus
// persist, credit flow control, destage — with 16 KB appends (the paper's
// group-commit unit). Run with -benchmem: the PR 4 target is allocs/op
// down at least 50% from the pre-overhaul engine.
func BenchmarkCMBAppend16K(b *testing.B) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "bench")
	payload := make([]byte, 16<<10)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	b.ReportAllocs()
	env.Go("bench-writer", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.XPwrite(p, payload)
		}
		if err := l.XFsync(p); err != nil {
			b.Errorf("fsync: %v", err)
		}
	})
	env.Run()
}
