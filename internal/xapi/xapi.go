// Package xapi is the host-side drop-in replacement API of the Villars
// device (paper §5): XPwrite/XFsync/XPread substitute pwrite/fsync/pread
// for the transaction-log file, and XAlloc/XFree expose the fast side as
// memory (§5.2). None of these are system calls — they operate on mapped
// MMIO windows and therefore avoid the context-switch penalty the paper
// highlights.
package xapi

import (
	"errors"
	"fmt"
	"time"

	"xssd/internal/core"
	"xssd/internal/nvme"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/sim"
	"xssd/internal/villars"
)

// CreditStrategy selects how XPwrite paces itself against the credit
// counter (paper §5.1 tried several; "use all the credits available
// without intermediate checks, then pause to read the credit anew" won).
type CreditStrategy int

// Credit-check strategies.
const (
	// UseAllCredits writes the full known budget before re-reading the
	// counter (the paper's best performer, and the default).
	UseAllCredits CreditStrategy = iota
	// CheckEveryChunk re-reads the credit counter before every chunk
	// (the slow alternative, kept for the ablation benchmark).
	CheckEveryChunk
)

// Sentinel errors. Concrete failures wrap these with cursor/command
// context, so callers match with errors.Is.
var (
	// ErrPowerLoss is returned when the device reports a power-loss state.
	ErrPowerLoss = errors.New("xapi: device in power-loss state")
	// ErrNoHostMem reports an XPread without Options.HostMem configured.
	ErrNoHostMem = errors.New("xapi: XPread requires Options.HostMem")
	// ErrReadFailed reports a failed NVMe read of the destage ring.
	ErrReadFailed = errors.New("xapi: destage ring read failed")
	// ErrBadPage reports a destage-ring page with an invalid header.
	ErrBadPage = errors.New("xapi: malformed destage page")
	// ErrLapped reports a tail reader overtaken by the destage ring.
	ErrLapped = errors.New("xapi: tail reader fell behind the destage ring")
	// ErrAllocFailed reports a rejected XAlloc command.
	ErrAllocFailed = errors.New("xapi: alloc failed")
	// ErrFreeFailed reports a rejected XFree command.
	ErrFreeFailed = errors.New("xapi: free failed")
)

// Endpoint is anything a Logger can bind to: a whole Villars device or
// one of its virtual functions (paper §7.2). Both expose a CMB data
// window, a register file, and the conventional-side NVMe driver. Name
// scopes the logger's telemetry under the endpoint's hierarchy.
type Endpoint interface {
	Name() string
	DataRegion() *pcie.Region
	ControlRegion() *pcie.Region
	HostDriver() *nvme.Driver
	BlockSize() int
	PowerLost() bool
}

// Logger is one writer context bound to an endpoint's fast side. It is
// the moral equivalent of an open file descriptor for the transaction
// log. A Logger is single-threaded by construction (one simulated core);
// use XAlloc areas or per-writer virtual functions for multi-writer
// schemes (§5.2, §7.1).
type Logger struct {
	env    *sim.Env
	dev    Endpoint
	data   *pcie.MMIO // CMB window, write-combining
	ctl    *pcie.MMIO // control registers, uncached
	driver *nvme.Driver
	fc     *core.FlowControl
	strat  CreditStrategy

	// tail-read cursor (§5.1 pread substitution)
	readStream int64 // next stream offset to hand to the application
	readSlot   int64 // destage-ring slot expected to contain readStream
	scratch    int64 // host-memory address used for NVMe read DMA
	hostMem    *pcie.HostMemory

	// per-logger stats
	creditReads int64
	stallTime   time.Duration

	// metrics (<endpoint>/xapi/...): shared across loggers on the same
	// endpoint — the registry deduplicates by name.
	mCreditReads *obs.Counter
	mBytes       *obs.Counter
	mStall       *obs.Histogram // one credit-stall episode, ns
	mFsync       *obs.Histogram // one XFsync call, ns
}

// Options tune Open.
type Options struct {
	Strategy CreditStrategy
	// Uncached maps the CMB window UC instead of write-combining (the
	// Fig 10 comparison).
	Uncached bool
	// Scratch is the host-memory offset XPread DMAs pages into.
	Scratch int64
	// HostMem is the host memory XPread uses; required for XPread.
	HostMem *pcie.HostMemory
	// ResumeAt positions the stream cursor at a takeover point instead of
	// zero: the host continues an existing log stream on a promoted
	// secondary whose credit counter already vouches for every byte below
	// this offset (failover).
	ResumeAt int64
}

// Open binds a logger to an endpoint: maps the CMB window write-combining
// (or uncached), the control window uncached, and reads the negotiated
// queue size from the device (paper §4.1: "a pre-negotiated size").
func Open(p *sim.Proc, dev Endpoint, opts Options) *Logger {
	mode := pcie.WriteCombining
	if opts.Uncached {
		mode = pcie.Uncached
	}
	l := &Logger{
		env:     p.Env(),
		dev:     dev,
		data:    pcie.NewMMIO(dev.DataRegion(), mode),
		ctl:     pcie.NewMMIO(dev.ControlRegion(), pcie.Uncached),
		driver:  dev.HostDriver(),
		strat:   opts.Strategy,
		scratch: opts.Scratch,
		hostMem: opts.HostMem,
	}
	sc := obs.For(l.env).Scope(dev.Name() + "/xapi")
	l.mCreditReads = sc.Counter("credit_reads")
	l.mBytes = sc.Counter("bytes")
	l.mStall = sc.Histogram("stall_ns")
	l.mFsync = sc.Histogram("fsync_ns")
	qs := l.readReg(p, core.RegQueueSize)
	l.fc = core.NewFlowControl(qs)
	if opts.ResumeAt > 0 {
		l.fc.Resume(opts.ResumeAt)
	}
	return l
}

func (l *Logger) readReg(p *sim.Proc, reg int64) int64 {
	b := l.ctl.Load(p, reg, 8)
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}

// refreshCredit reads the credit counter register and updates flow
// control, returning the new budget.
func (l *Logger) refreshCredit(p *sim.Proc) int64 {
	l.creditReads++
	l.mCreditReads.Inc()
	return l.fc.Observe(l.readReg(p, core.RegCredit))
}

// XPwrite appends buf to the fast side and returns its stream offset. It
// copies the buffer into CMB in credit-sized chunks, pausing to re-read
// the counter when the budget runs out (paper §5.1, Fig 8 top). The call
// returns when the last byte is on the wire; durability is checked with
// XFsync.
func (l *Logger) XPwrite(p *sim.Proc, buf []byte) int64 {
	start := l.fc.Written()
	off := start
	for len(buf) > 0 {
		budget := l.fc.Budget()
		if l.strat == CheckEveryChunk {
			budget = l.refreshCredit(p)
		}
		for budget <= 0 {
			t0 := p.Now()
			budget = l.refreshCredit(p)
			if budget <= 0 && l.dev.PowerLost() {
				return start
			}
			l.stallTime += p.Now() - t0
			l.mStall.Since(t0)
		}
		n := int(budget)
		if n > len(buf) {
			n = len(buf)
		}
		l.data.Store(p, off, buf[:n])
		l.mBytes.Add(int64(n))
		l.fc.Note(int64(n))
		off += int64(n)
		buf = buf[n:]
	}
	l.data.Fence(p)
	return start
}

// XFsync blocks until every byte issued by prior XPwrite calls is
// persistent under the device's active replication scheme (paper §5.1,
// Fig 8 bottom: read the counter until it covers the written total).
func (l *Logger) XFsync(p *sim.Proc) error {
	span := l.mFsync.Start()
	l.data.Fence(p)
	for !l.fc.Durable() {
		l.refreshCredit(p)
		if l.fc.Durable() {
			break
		}
		if l.dev.PowerLost() {
			return ErrPowerLoss
		}
		// The register read itself paces the loop (a PCIe round trip);
		// checking the status register on suspicion of staleness is the
		// paper's §7.1 recommendation.
		if st := l.readReg(p, core.RegStatus); st&core.StatusReplicaStalled != 0 {
			p.Sleep(time.Microsecond) // back off; replica recovering
		}
	}
	span.End() // only successful fsyncs enter the latency series
	return nil
}

// Token is an async durability handle: the stream offset that must be
// covered by the device's credit counter before the submission it names
// is persistent. Tokens are totally ordered — waiting on a later token
// subsumes every earlier one — so a pipeline only ever needs to track
// its newest.
type Token int64

// XSubmit appends buf like XPwrite but returns a durability token
// instead of implying a later XFsync: the submission is durable once
// XPoll(tok) reports true (or XWait(tok) returns). The call still pays
// the wire and credit pacing; only the durability wait is deferred.
//
//xssd:hotpath
func (l *Logger) XSubmit(p *sim.Proc, buf []byte) Token {
	l.XPwrite(p, buf)
	return Token(l.fc.Written())
}

// XToken returns a token covering everything issued so far — the async
// analogue of "fsync here".
func (l *Logger) XToken() Token { return Token(l.fc.Written()) }

// XPoll reports whether tok is durable, refreshing the credit counter at
// most once (a single PCIe register read). It never blocks beyond that
// read — the polling half of the async surface.
//
//xssd:hotpath
func (l *Logger) XPoll(p *sim.Proc, tok Token) bool {
	if l.fc.Covered(int64(tok)) {
		return true
	}
	l.refreshCredit(p)
	return l.fc.Covered(int64(tok))
}

// XWait blocks until tok is durable (the targeted XFsync): it re-reads
// the credit counter until it covers the token, backing off when the
// device reports a stalled replica, and fails with ErrPowerLoss if the
// device dies first.
func (l *Logger) XWait(p *sim.Proc, tok Token) error {
	l.data.Fence(p)
	for !l.fc.Covered(int64(tok)) {
		l.refreshCredit(p)
		if l.fc.Covered(int64(tok)) {
			break
		}
		if l.dev.PowerLost() {
			return ErrPowerLoss
		}
		if st := l.readReg(p, core.RegStatus); st&core.StatusReplicaStalled != 0 {
			p.Sleep(time.Microsecond) // back off; replica recovering
		}
	}
	return nil
}

// Written returns the total stream bytes issued through this logger.
func (l *Logger) Written() int64 { return l.fc.Written() }

// CreditReads returns how many credit-register reads were issued (the
// ablation metric for CreditStrategy).
func (l *Logger) CreditReads() int64 { return l.creditReads }

// StallTime returns cumulative time spent blocked on back-pressure.
func (l *Logger) StallTime() time.Duration { return l.stallTime }

// XPread implements tail-read semantics (paper §5.1): it fills buf with
// the next adjacent bytes of the destaged log, blocking until the
// conventional side holds enough data. It returns the stream offset of
// buf[0].
func (l *Logger) XPread(p *sim.Proc, buf []byte) (int64, error) {
	if l.hostMem == nil {
		return 0, ErrNoHostMem
	}
	startOff := l.readStream
	need := len(buf)
	filled := 0
	base := l.readReg(p, core.RegDestageBaseLBA)
	count := l.readReg(p, core.RegDestageLBACount)
	bs := l.dev.BlockSize()
	for filled < need {
		// Block until the destage module has moved past our cursor.
		for l.readReg(p, core.RegDestagedStream) <= l.readStream {
			p.Sleep(5 * time.Microsecond)
		}
		lba := base + l.readSlot%count
		c := l.driver.Submit(p, nvme.Command{Opcode: nvme.OpRead, LBA: lba, Blocks: 1, PRP: l.scratch})
		if c.Status != nvme.StatusSuccess {
			return startOff, fmt.Errorf("%w: slot %d (lba %d), status %d", ErrReadFailed, l.readSlot, lba, c.Status)
		}
		page := l.hostMem.Bytes()[l.scratch : l.scratch+int64(bs)]
		pageOff, payloadLen, ok := villars.DecodePageHeader(page)
		if !ok {
			return startOff, fmt.Errorf("%w: slot %d (lba %d)", ErrBadPage, l.readSlot, lba)
		}
		if l.readStream >= pageOff+int64(payloadLen) {
			// Cursor already past this page: advance to the next slot.
			l.readSlot++
			continue
		}
		if l.readStream < pageOff {
			// The ring lapped us: data between readStream and pageOff is
			// gone from the ring (still on the PM side or overwritten).
			return startOff, fmt.Errorf("%w: cursor %d, oldest ring data %d", ErrLapped, l.readStream, pageOff)
		}
		from := int(l.readStream - pageOff)
		n := payloadLen - from
		if n > need-filled {
			n = need - filled
		}
		copy(buf[filled:], page[villars.PageHeaderLen+from:villars.PageHeaderLen+from+n])
		filled += n
		l.readStream += int64(n)
		if from+n == payloadLen {
			l.readSlot++
		}
	}
	return startOff, nil
}

// XAlloc reserves a fast-side area for random-order writing (paper §5.2).
// It issues the vendor-specific allocation command and returns the area's
// stream offset.
func (l *Logger) XAlloc(p *sim.Proc, size int) (int64, error) {
	c := l.driver.Submit(p, nvme.Command{Opcode: nvme.OpXAlloc, CDW: int64(size)})
	if c.Status != nvme.StatusSuccess {
		return 0, fmt.Errorf("%w: %d bytes, status %d", ErrAllocFailed, size, c.Status)
	}
	return c.Value, nil
}

// XWriteAt stores data inside an allocated area at the given stream
// offset, in any order. The caller owns pacing (allocated areas are pinned
// on the ring, so the intake queue is the only limit).
func (l *Logger) XWriteAt(p *sim.Proc, off int64, data []byte) {
	l.data.Store(p, off, data)
	l.data.Fence(p)
}

// XFree releases an allocated area, making it destage-eligible.
func (l *Logger) XFree(p *sim.Proc, start int64) error {
	c := l.driver.Submit(p, nvme.Command{Opcode: nvme.OpXFree, CDW: start})
	if c.Status != nvme.StatusSuccess {
		return fmt.Errorf("%w: area %d, status %d", ErrFreeFailed, start, c.Status)
	}
	return nil
}
