package xapi

import (
	"bytes"
	"testing"
	"time"

	"xssd/internal/core"
	"xssd/internal/nand"
	"xssd/internal/ntb"
	"xssd/internal/nvme"
	"xssd/internal/pcie"
	"xssd/internal/sim"
	"xssd/internal/villars"
)

func testDevice(env *sim.Env, name string) (*villars.Device, *pcie.HostMemory) {
	cfg := villars.DefaultConfig(name)
	cfg.Geometry = nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 32, PagesPerBlock: 32, PageSize: 2048}
	cfg.Timing = nand.Timing{TRead: 5 * time.Microsecond, TProg: 20 * time.Microsecond, TErase: 100 * time.Microsecond, BusRate: 1e9}
	cfg.QueueSize = 4096
	cfg.CMBSize = 64 << 10
	cfg.DestageLatencyBound = 100 * time.Microsecond
	host := pcie.NewHostMemory(1 << 20)
	return villars.New(env, cfg, host), host
}

func TestXPwriteXFsyncRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	var synced bool
	env.Go("db", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		off := l.XPwrite(p, []byte("commit record"))
		if off != 0 {
			t.Errorf("first write offset = %d", off)
		}
		if err := l.XFsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
		synced = true
		if dev.CMB().Ring().Frontier() != 13 {
			t.Errorf("frontier = %d after fsync", dev.CMB().Ring().Frontier())
		}
	})
	env.RunUntil(50 * time.Millisecond)
	if !synced {
		t.Fatal("fsync never returned")
	}
}

func TestXPwriteLargerThanQueuePaced(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	payload := make([]byte, 20000) // 5x the 4 KB queue
	for i := range payload {
		payload[i] = byte(i)
	}
	env.Go("db", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host})
		l.XPwrite(p, payload)
		if err := l.XFsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if l.CreditReads() == 0 {
			t.Error("large write never consulted the credit counter")
		}
	})
	env.RunUntil(500 * time.Millisecond)
	if dev.CMB().Overruns() != 0 {
		t.Fatalf("flow control failed: %d overruns", dev.CMB().Overruns())
	}
	if dev.CMB().BytesIn() != 20000 {
		t.Fatalf("device received %d bytes, want 20000", dev.CMB().BytesIn())
	}
}

func TestCheckEveryChunkReadsMoreCredits(t *testing.T) {
	run := func(s CreditStrategy) int64 {
		env := sim.NewEnv(1)
		dev, host := testDevice(env, "a")
		var reads int64
		env.Go("db", func(p *sim.Proc) {
			l := Open(p, dev, Options{Strategy: s, HostMem: host})
			for i := 0; i < 20; i++ {
				l.XPwrite(p, make([]byte, 512))
			}
			l.XFsync(p)
			reads = l.CreditReads()
		})
		env.RunUntil(500 * time.Millisecond)
		return reads
	}
	lazy, eager := run(UseAllCredits), run(CheckEveryChunk)
	if eager <= lazy {
		t.Fatalf("CheckEveryChunk reads (%d) should exceed UseAllCredits (%d)", eager, lazy)
	}
}

func TestXPreadTailFollowsDestagedLog(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	msg := []byte("0123456789abcdefghijklmnopqrstuvwxyz")
	var got []byte
	env.Go("writer", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 18})
		l.XPwrite(p, msg)
		l.XFsync(p)
	})
	env.Go("reader", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		buf := make([]byte, len(msg))
		off, err := l.XPread(p, buf)
		if err != nil {
			t.Errorf("pread: %v", err)
			return
		}
		if off != 0 {
			t.Errorf("pread offset = %d", off)
		}
		got = buf
	})
	env.RunUntil(time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("tail read %q, want %q", got, msg)
	}
}

func TestXPreadSpansMultiplePages(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	pageLoad := 2048 - villars.PageHeaderLen
	msg := make([]byte, pageLoad*2+100) // will destage as 3 pages
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	var got []byte
	env.Go("writer", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 18})
		l.XPwrite(p, msg)
		l.XFsync(p)
	})
	env.Go("reader", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		buf := make([]byte, len(msg))
		if _, err := l.XPread(p, buf); err != nil {
			t.Errorf("pread: %v", err)
			return
		}
		got = buf
	})
	env.RunUntil(time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatal("multi-page tail read corrupted")
	}
}

func TestXPreadBlocksUntilDataDestages(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	var readDone time.Duration
	env.Go("reader", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		buf := make([]byte, 8)
		if _, err := l.XPread(p, buf); err != nil {
			t.Errorf("pread: %v", err)
		}
		readDone = p.Now()
	})
	env.Go("writer", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond) // reader must wait at least this long
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 18})
		l.XPwrite(p, []byte("deferred"))
		l.XFsync(p)
	})
	env.RunUntil(time.Second)
	if readDone < 5*time.Millisecond {
		t.Fatalf("reader returned at %v, before the data existed", readDone)
	}
}

func TestAllocWriteFreeDestages(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	env.Go("db", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		start, err := l.XAlloc(p, 300)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		// Fill back to front, as parallel log writers would.
		l.XWriteAt(p, start+200, bytes.Repeat([]byte{3}, 100))
		l.XWriteAt(p, start+100, bytes.Repeat([]byte{2}, 100))
		l.XWriteAt(p, start, bytes.Repeat([]byte{1}, 100))
		p.Sleep(time.Millisecond)
		if dev.Destage().DestagedStream() != 0 {
			t.Error("destaged before free")
		}
		if err := l.XFree(p, start); err != nil {
			t.Errorf("free: %v", err)
		}
	})
	env.RunUntil(time.Second)
	if dev.Destage().DestagedStream() != 300 {
		t.Fatalf("destaged %d bytes after free, want 300", dev.Destage().DestagedStream())
	}
}

func TestFsyncUnderEagerReplicationWaitsForSecondary(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; skipped in -short mode")
	}
	env := sim.NewEnv(1)
	prim, hostP := testDevice(env, "prim")
	sec, _ := testDevice(env, "sec")
	toSec := ntb.NewDefaultBridge(env, "p-s")
	toPrim := ntb.NewDefaultBridge(env, "s-p")
	prim.Transport().AddPeer(sec, toSec, toPrim)
	prim.Transport().SetScheme(core.Eager)
	// Set transport roles through the vendor admin command path.
	setRole := func(d *villars.Device, mode core.TransportMode) {
		env.Go("role", func(p *sim.Proc) {
			l := Open(p, d, Options{})
			c := l.driver.Submit(p, nvme.Command{Opcode: nvme.OpXSetTransportMode, CDW: int64(mode)})
			if c.Status != nvme.StatusSuccess {
				t.Errorf("set mode failed: %+v", c)
			}
		})
	}
	setRole(sec, core.Secondary)
	setRole(prim, core.Primary)
	env.RunUntil(time.Millisecond)

	var fsyncAt time.Duration
	env.Go("db", func(p *sim.Proc) {
		l := Open(p, prim, Options{HostMem: hostP})
		l.XPwrite(p, make([]byte, 1024))
		if err := l.XFsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
		fsyncAt = p.Now()
	})
	env.RunUntil(time.Second)
	if fsyncAt == 0 {
		t.Fatal("fsync never completed")
	}
	if prim.Transport().Shadow(0) < 1024 {
		t.Fatalf("fsync returned but shadow counter = %d", prim.Transport().Shadow(0))
	}
}

func TestXSubmitTokenLifecycle(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	var done bool
	env.Go("db", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		// Submit three records without waiting; tokens are the stream
		// offsets after each write, so they are strictly increasing.
		t1 := l.XSubmit(p, []byte("record-1"))
		t2 := l.XSubmit(p, []byte("record-2"))
		t3 := l.XSubmit(p, []byte("record-3"))
		if !(t1 < t2 && t2 < t3) {
			t.Errorf("tokens not increasing: %d %d %d", t1, t2, t3)
		}
		if t3 != Token(l.Written()) || t3 != l.XToken() {
			t.Errorf("last token %d, Written %d, XToken %d", t3, l.Written(), l.XToken())
		}
		// Wait on the LAST token: total order means every earlier token
		// must then poll durable too.
		if err := l.XWait(p, t3); err != nil {
			t.Errorf("XWait: %v", err)
		}
		for _, tok := range []Token{t1, t2, t3} {
			if !l.XPoll(p, tok) {
				t.Errorf("token %d not durable after waiting on %d", tok, t3)
			}
		}
		done = true
	})
	env.RunUntil(50 * time.Millisecond)
	if !done {
		t.Fatal("XWait never returned")
	}
}

func TestXPollBeforeDurabilityIsFalseThenTrue(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	var sawPending, sawDurable bool
	env.Go("db", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		tok := l.XSubmit(p, []byte("async record"))
		// Immediately after the MMIO copy the device cannot have advanced
		// the credit to cover it (the fast path still costs ring time).
		sawPending = !l.XPoll(p, tok)
		for !l.XPoll(p, tok) {
			p.Sleep(time.Microsecond)
		}
		sawDurable = true
		if err := l.XWait(p, tok); err != nil { // already durable: no-op wait
			t.Errorf("XWait on durable token: %v", err)
		}
	})
	env.RunUntil(50 * time.Millisecond)
	if !sawPending {
		t.Error("XPoll reported durable before the device could have acked")
	}
	if !sawDurable {
		t.Fatal("token never became durable")
	}
}

func TestSubmitInterleavesWithBlockingCalls(t *testing.T) {
	// The async tokens layer under the blocking calls: mixing XSubmit,
	// XPwrite, and XFsync on one handle keeps one totally-ordered stream.
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	var done bool
	env.Go("db", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		tok := l.XSubmit(p, []byte("async"))
		l.XPwrite(p, []byte("blocking"))
		if err := l.XFsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
		// Fsync covered the whole stream, so the earlier token is durable.
		if !l.XPoll(p, tok) {
			t.Error("token not durable after a later XFsync")
		}
		if got := dev.CMB().Ring().Frontier(); got != int64(len("async")+len("blocking")) {
			t.Errorf("frontier = %d", got)
		}
		done = true
	})
	env.RunUntil(50 * time.Millisecond)
	if !done {
		t.Fatal("run did not finish")
	}
}
