package xapi

import (
	"bytes"
	"testing"
	"time"

	"xssd/internal/sim"
	"xssd/internal/villars"
)

// Virtual functions (paper §7.2): independent fast sides on one device,
// each with its own ring, credit counter, and destage range — also the
// §7.1 answer to multi-threaded writers needing private counters.

func TestVFIndependentStreams(t *testing.T) {
	env := sim.NewEnv(1)
	dev, _ := testDevice(env, "pf")
	vf1, err := dev.CreateVF("tenant1", 32<<10, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	vf2, err := dev.CreateVF("tenant2", 32<<10, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	msg1 := bytes.Repeat([]byte{0xA1}, 1500)
	msg2 := bytes.Repeat([]byte{0xB2}, 900)
	env.Go("tenant1", func(p *sim.Proc) {
		l := Open(p, vf1, Options{})
		l.XPwrite(p, msg1)
		if err := l.XFsync(p); err != nil {
			t.Errorf("vf1 fsync: %v", err)
		}
	})
	env.Go("tenant2", func(p *sim.Proc) {
		l := Open(p, vf2, Options{})
		l.XPwrite(p, msg2)
		if err := l.XFsync(p); err != nil {
			t.Errorf("vf2 fsync: %v", err)
		}
	})
	env.RunUntil(100 * time.Millisecond)
	// Each VF's counter reflects only its own stream.
	if got := vf1.CMB().Ring().Frontier(); got != int64(len(msg1)) {
		t.Fatalf("vf1 frontier = %d, want %d", got, len(msg1))
	}
	if got := vf2.CMB().Ring().Frontier(); got != int64(len(msg2)) {
		t.Fatalf("vf2 frontier = %d, want %d", got, len(msg2))
	}
	// And the primary fast side is untouched.
	if dev.CMB().Ring().Frontier() != 0 {
		t.Fatal("primary fast side saw VF traffic")
	}
}

func TestVFDestageRangesDisjoint(t *testing.T) {
	env := sim.NewEnv(1)
	dev, _ := testDevice(env, "pf")
	vf1, _ := dev.CreateVF("a", 32<<10, 4096, 64)
	vf2, _ := dev.CreateVF("b", 32<<10, 4096, 64)
	b1, c1 := vf1.Destage().LBARing()
	b2, c2 := vf2.Destage().LBARing()
	pb, pc := dev.Destage().LBARing()
	if b1 < pb+pc {
		t.Fatalf("vf1 ring [%d,%d) overlaps primary [%d,%d)", b1, b1+c1, pb, pb+pc)
	}
	if b2 < b1+c1 {
		t.Fatalf("vf2 ring [%d,%d) overlaps vf1 [%d,%d)", b2, b2+c2, b1, b1+c1)
	}
}

func TestVFTailReadIsolation(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "pf")
	vf, err := dev.CreateVF("tenant", 32<<10, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	vfMsg := []byte("virtual function private log data!")
	pfMsg := []byte("physical function log")
	env.Go("vf-writer", func(p *sim.Proc) {
		l := Open(p, vf, Options{})
		l.XPwrite(p, vfMsg)
		l.XFsync(p)
	})
	env.Go("pf-writer", func(p *sim.Proc) {
		l := Open(p, dev, Options{})
		l.XPwrite(p, pfMsg)
		l.XFsync(p)
	})
	var gotVF, gotPF []byte
	env.Go("vf-reader", func(p *sim.Proc) {
		l := Open(p, vf, Options{HostMem: host, Scratch: 1 << 18})
		buf := make([]byte, len(vfMsg))
		if _, err := l.XPread(p, buf); err != nil {
			t.Errorf("vf pread: %v", err)
			return
		}
		gotVF = buf
	})
	env.Go("pf-reader", func(p *sim.Proc) {
		l := Open(p, dev, Options{HostMem: host, Scratch: 1 << 19})
		buf := make([]byte, len(pfMsg))
		if _, err := l.XPread(p, buf); err != nil {
			t.Errorf("pf pread: %v", err)
			return
		}
		gotPF = buf
	})
	env.RunUntil(time.Second)
	if !bytes.Equal(gotVF, vfMsg) {
		t.Fatalf("vf tail read %q, want %q", gotVF, vfMsg)
	}
	if !bytes.Equal(gotPF, pfMsg) {
		t.Fatalf("pf tail read %q, want %q", gotPF, pfMsg)
	}
}

func TestVFCrashDrainsAllFastSides(t *testing.T) {
	env := sim.NewEnv(1)
	dev, _ := testDevice(env, "pf")
	vf, _ := dev.CreateVF("tenant", 32<<10, 4096, 64)
	env.Go("writers", func(p *sim.Proc) {
		dev.CMB().MemWrite(0, make([]byte, 600))
		vf.CMB().MemWrite(0, make([]byte, 800))
		p.Sleep(10 * time.Microsecond)
		dev.InjectPowerLoss()
	})
	env.RunUntil(300 * time.Millisecond)
	if !dev.Drained() {
		t.Fatal("device (incl. VFs) did not drain")
	}
	if dev.Destage().DestagedStream() != 600 {
		t.Fatalf("primary destaged %d, want 600", dev.Destage().DestagedStream())
	}
	if vf.Destage().DestagedStream() != 800 {
		t.Fatalf("vf destaged %d, want 800", vf.Destage().DestagedStream())
	}
}

func TestVFValidation(t *testing.T) {
	env := sim.NewEnv(1)
	dev, _ := testDevice(env, "pf")
	if _, err := dev.CreateVF("bad", 0, 4096, 64); err == nil {
		t.Fatal("zero CMB size accepted")
	}
	if _, err := dev.CreateVF("huge", 32<<10, 4096, 1<<40); err == nil {
		t.Fatal("oversized destage ring accepted")
	}
	vf, err := dev.CreateVF("ok", 32<<10, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	if vf.Name() != "pf/ok" {
		t.Fatalf("VF name = %q", vf.Name())
	}
	if vf.BlockSize() != dev.BlockSize() {
		t.Fatal("VF block size differs from device")
	}
}

// Per-writer VFs solve the single-credit-counter problem of §7.1: two
// concurrent writers on separate VFs never interfere through flow
// control.
func TestVFPerWriterCountersNoInterference(t *testing.T) {
	env := sim.NewEnv(3)
	dev, _ := testDevice(env, "pf")
	var vfs []*villars.VirtualFunction
	for i := 0; i < 4; i++ {
		vf, err := dev.CreateVF(string(rune('a'+i)), 16<<10, 2048, 32)
		if err != nil {
			t.Fatal(err)
		}
		vfs = append(vfs, vf)
	}
	const perWriter = 20 << 10 // larger than each VF queue: forces pacing
	done := 0
	for _, vf := range vfs {
		vf := vf
		env.Go("writer", func(p *sim.Proc) {
			l := Open(p, vf, Options{})
			l.XPwrite(p, make([]byte, perWriter))
			if err := l.XFsync(p); err != nil {
				t.Errorf("%s: %v", vf.Name(), err)
				return
			}
			done++
		})
	}
	env.RunUntil(time.Second)
	if done != 4 {
		t.Fatalf("only %d/4 writers completed", done)
	}
	for _, vf := range vfs {
		if got := vf.CMB().Ring().Frontier(); got != perWriter {
			t.Fatalf("%s frontier = %d", vf.Name(), got)
		}
	}
}
