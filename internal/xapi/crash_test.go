package xapi

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"xssd/internal/nand"
	"xssd/internal/sim"
	"xssd/internal/villars"
)

// Crash-consistency fuzz: under arbitrary write traffic and a power loss
// at an arbitrary instant, the conventional side must afterwards hold a
// gap-free prefix of the acknowledged stream (paper §4.1), and the
// destaged amount must cover everything the credit counter had
// acknowledged at the moment of the crash.
func TestQuickCrashAlwaysYieldsAckedPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv(seed)
		d, _ := testDevice(env, "fuzz")

		var stream []byte
		var acked int64 // credit value last confirmed via fsync
		env.Go("writer", func(p *sim.Proc) {
			l := Open(p, d, Options{})
			for {
				chunk := make([]byte, rng.Intn(2000)+1)
				rng.Read(chunk)
				l.XPwrite(p, chunk)
				stream = append(stream, chunk...)
				if rng.Intn(3) == 0 {
					if err := l.XFsync(p); err != nil {
						return // power loss observed
					}
					acked = l.Written()
				}
				p.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
			}
		})
		// Crash at a random instant while traffic is flowing.
		crashAt := time.Duration(rng.Intn(4000)+100) * time.Microsecond
		env.At(crashAt, d.InjectPowerLoss)
		env.RunUntil(crashAt + 200*time.Millisecond)

		if !d.Drained() {
			t.Fatalf("seed %d: device not drained after crash", seed)
		}
		destaged := d.Destage().DestagedStream()
		if destaged < acked {
			t.Fatalf("seed %d: destaged %d < acked %d — durability violated", seed, destaged, acked)
		}
		if destaged > int64(len(stream)) {
			t.Fatalf("seed %d: destaged %d beyond written %d", seed, destaged, len(stream))
		}
		verifyPrefix(t, env, d, stream[:destaged], seed)
	}
}

// verifyPrefix reads the destage ring back through the FTL and checks the
// page payloads reassemble the expected prefix, in order and gap-free.
func verifyPrefix(t *testing.T, env *sim.Env, d *villars.Device, want []byte, seed int64) {
	t.Helper()
	base, count := d.Destage().LBARing()
	var got []byte
	env.Go("verify", func(p *sim.Proc) {
		for slot := int64(0); slot < d.Destage().TailLBA(); slot++ {
			page, err := d.FTL().Read(p, base+slot%count)
			if err != nil {
				t.Errorf("seed %d: read slot %d: %v", seed, slot, err)
				return
			}
			off, n, ok := villars.DecodePageHeader(page)
			if !ok {
				t.Errorf("seed %d: slot %d not a destage page", seed, slot)
				return
			}
			if off != int64(len(got)) {
				t.Errorf("seed %d: slot %d stream offset %d, want %d (gap!)", seed, slot, off, len(got))
				return
			}
			got = append(got, page[villars.PageHeaderLen:villars.PageHeaderLen+n]...)
		}
	})
	env.RunUntil(env.Now() + 100*time.Millisecond)
	if !bytes.Equal(got, want) {
		t.Fatalf("seed %d: destaged prefix differs from written stream (%d vs %d bytes)", seed, len(got), len(want))
	}
}

// A bad block in the destage path must be retired transparently: data
// still lands, in order, after the retry (paper §7.1).
func TestDestageBadBlockRetiredTransparently(t *testing.T) {
	env := sim.NewEnv(1)
	d, _ := testDevice(env, "bad")
	geo := d.Array().Geometry()
	// Poison the first block of every die so the first destage programs
	// all hit bad blocks.
	for ch := 0; ch < geo.Channels; ch++ {
		for w := 0; w < geo.WaysPerChan; w++ {
			d.Array().MarkBad(nand.BlockAddr{Channel: ch, Way: w, Block: 0})
		}
	}
	payload := bytes.Repeat([]byte{0x5C}, 3*(geo.PageSize-villars.PageHeaderLen))
	env.Go("host", func(p *sim.Proc) {
		l := Open(p, d, Options{})
		l.XPwrite(p, payload)
		l.XFsync(p)
	})
	env.RunUntil(500 * time.Millisecond)
	if got := d.Destage().DestagedStream(); got != int64(len(payload)) {
		t.Fatalf("destaged %d of %d despite bad-block retries", got, len(payload))
	}
	if d.FTL().Stats().BadRetries == 0 {
		t.Fatal("no bad-block retries recorded")
	}
}
