package ckpt

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"xssd/internal/btree"
	"xssd/internal/db"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// recordingSink is a zero-latency WAL sink that keeps a copy of every
// durable byte so tests can decode the stream a crashed host would find.
type recordingSink struct{ data []byte }

func (s *recordingSink) Write(p *sim.Proc, b []byte) error {
	s.data = append(s.data, b...)
	return nil
}

func (s *recordingSink) Name() string { return "ckpt-test" }

const testPageSize = 512

// harness is one paged engine over a memory page store with a recording
// WAL, ready for a simulated workload.
type harness struct {
	env   *sim.Env
	sink  *recordingSink
	log   *wal.Log
	store *btree.MemStore
	pg    *btree.Pager
	eng   *db.Engine
}

func newHarness(seed int64, pool int) *harness {
	env := sim.NewEnv(seed)
	sink := &recordingSink{}
	log := wal.NewLog(env, sink, wal.Config{GroupBytes: 4 << 10, GroupTimeout: 200 * time.Microsecond})
	store := btree.NewMemStore(testPageSize, 1<<20)
	pg := btree.NewPager(store, btree.Config{PoolPages: pool})
	eng := db.NewPaged(env, log, pg)
	eng.CreateTable("kv")
	return &harness{env: env, sink: sink, log: log, store: store, pg: pg, eng: eng}
}

// runCommitter commits n transactions over a 50-key space, one every
// 50us, waiting each durable. done flips when the last commit returns.
func (h *harness) runCommitter(t *testing.T, n int, done *bool) {
	t.Helper()
	h.env.Go("committer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			tx := h.eng.BeginP(p)
			key := fmt.Sprintf("k%04d", i%50)
			tx.Put("kv", key, []byte(fmt.Sprintf("v-%06d", i)))
			if err := tx.Commit(p); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
			p.Sleep(50 * time.Microsecond)
		}
		*done = true
	})
}

// recoverStream runs Recover on a fresh env against the harness's page
// store and durable stream.
func (h *harness) recoverStream(t *testing.T) (*db.Engine, Stats) {
	t.Helper()
	records := wal.DecodeAll(h.sink.data)
	renv := sim.NewEnv(1)
	eng, st, err := Recover(nil, renv, h.store, 64, records, nil)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return eng, st
}

// oracleFingerprints replays the full durable stream two independent
// ways — a fresh paged engine and the classic in-memory engine — and
// returns their (identical, or the test fails) fingerprint.
func (h *harness) oracleFingerprints(t *testing.T) uint64 {
	t.Helper()
	records := wal.DecodeAll(h.sink.data)

	penv := sim.NewEnv(2)
	paged := db.NewPaged(penv, nil, btree.NewPager(btree.NewMemStore(testPageSize, 1<<20), btree.Config{PoolPages: 64}))
	if err := paged.RecoverIn(nil, records); err != nil {
		t.Fatalf("paged oracle replay: %v", err)
	}

	cenv := sim.NewEnv(3)
	classic := db.New(cenv, nil)
	for _, r := range records {
		if err := classic.ApplyRecord(r); err != nil {
			t.Fatalf("classic oracle replay: %v", err)
		}
	}

	pf, cf := paged.FingerprintIn(nil), classic.Fingerprint()
	if pf != cf {
		t.Fatalf("paged full-replay fingerprint %#x != classic %#x", pf, cf)
	}
	return pf
}

// TestCheckpointBoundsRecovery runs the full loop — workload, background
// checkpoint manager, crash, recover — at three log lengths and checks
// that recovery replays only the tail: strictly fewer records than a
// full replay, and under half of them once the log is long enough for
// checkpoints to have settled (the recovery-time acceptance bound).
func TestCheckpointBoundsRecovery(t *testing.T) {
	lengths := []int{60, 180, 540}
	if testing.Short() {
		lengths = []int{60, 180}
	}
	for _, n := range lengths {
		t.Run(fmt.Sprintf("txns=%d", n), func(t *testing.T) {
			h := newHarness(int64(n), 64)
			m := NewManager(h.eng, h.log, Config{Interval: 300 * time.Microsecond})
			h.env.Go("ckpt", m.Run)
			var done bool
			h.runCommitter(t, n, &done)
			// Stop checkpointing at ~60% of the workload: the last stretch
			// of commits has no checkpoint behind it and becomes the replay
			// tail, like a crash that lands between checkpoint intervals.
			h.env.RunUntil(time.Duration(n) * 150 * time.Microsecond)
			m.Stop()
			h.env.RunUntil(time.Duration(n)*550*time.Microsecond + 10*time.Millisecond)
			if !done {
				t.Fatal("committer did not finish in the run window")
			}
			if m.Completed() == 0 {
				t.Fatal("no checkpoint completed")
			}

			rec, st := h.recoverStream(t)
			if !st.Found {
				t.Fatal("recovery did not find a checkpoint record")
			}
			if st.Tail == 0 || st.Tail >= st.Total {
				t.Fatalf("tail replay %d outside (0, %d)", st.Tail, st.Total)
			}
			if 2*st.Tail >= st.Total {
				t.Errorf("tail replay %d not under half of full replay %d", st.Tail, st.Total)
			}
			t.Logf("recovery: txns=%d checkpoints=%d total=%d tail=%d (%.1f%%)",
				n, m.Completed(), st.Total, st.Tail, 100*float64(st.Tail)/float64(st.Total))

			want := h.oracleFingerprints(t)
			if got := rec.FingerprintIn(nil); got != want {
				t.Fatalf("recovered fingerprint %#x != full-replay oracle %#x", got, want)
			}
			if live := h.eng.FingerprintIn(nil); live != want {
				t.Fatalf("live fingerprint %#x != full-replay oracle %#x", live, want)
			}
		})
	}
}

// TestCheckpointRacesCommitter drives the checkpoint protocol by hand
// while a committer keeps writing, and checks the fuzzy cut: every
// snapshot image carries a recovery LSN at or below the checkpoint's
// StartLSN (later commits belong to the replay tail, not the images),
// and recovery from the racing stream is still bit-identical to a full
// replay.
func TestCheckpointRacesCommitter(t *testing.T) {
	h := newHarness(11, 64)
	var done bool
	h.runCommitter(t, 200, &done)

	completed := 0
	h.env.Go("ckpt-manual", func(p *sim.Proc) {
		for completed < 4 {
			p.Sleep(700 * time.Microsecond)
			ck, err := h.eng.BeginCheckpoint(p)
			if err != nil {
				t.Errorf("begin checkpoint: %v", err)
				return
			}
			for _, img := range ck.Snap.Images {
				if img.LSN > ck.StartLSN {
					t.Errorf("image page %d recovery LSN %d past checkpoint StartLSN %d", img.ID, img.LSN, ck.StartLSN)
				}
			}
			if err := h.pg.WriteImages(p, ck.Snap.Images); err != nil {
				t.Errorf("write images: %v", err)
				return
			}
			if err := h.pg.Sync(p); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
			lsn := h.log.Append(wal.Record{Payload: FromCheckpoint(ck).Encode()})
			if !h.log.WaitDurableOrDead(p, lsn) {
				t.Error("log died under checkpoint record")
				return
			}
			h.pg.CommitCheckpoint(ck.Snap)
			completed++
		}
	})
	h.env.RunUntil(120 * time.Millisecond)
	if !done || completed < 4 {
		t.Fatalf("run window too short: committer done=%v checkpoints=%d", done, completed)
	}

	rec, st := h.recoverStream(t)
	if !st.Found || st.Tail >= st.Total {
		t.Fatalf("bad recovery stats: %+v", st)
	}
	want := h.oracleFingerprints(t)
	if got := rec.FingerprintIn(nil); got != want {
		t.Fatalf("recovered fingerprint %#x != oracle %#x", got, want)
	}
}

// TestCrashMidCheckpointFallsBack completes one checkpoint, commits
// more, then crashes the device midway through a second checkpoint —
// after its images hit their shadow slots but before its record becomes
// durable. Recovery must ignore the torn checkpoint's slot writes (the
// committed parity in checkpoint one's record points at the old slots)
// and come back bit-identical to a full replay.
func TestCrashMidCheckpointFallsBack(t *testing.T) {
	h := newHarness(23, 64)
	var firstStart int64

	h.env.Go("driver", func(p *sim.Proc) {
		commit := func(i int) {
			tx := h.eng.BeginP(p)
			tx.Put("kv", fmt.Sprintf("k%04d", i%50), []byte(fmt.Sprintf("v-%06d", i)))
			if err := tx.Commit(p); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}
		for i := 0; i < 40; i++ {
			commit(i)
		}

		ck1, err := h.eng.BeginCheckpoint(p)
		if err != nil {
			t.Errorf("begin checkpoint 1: %v", err)
			return
		}
		firstStart = ck1.StartLSN
		if err := h.pg.WriteImages(p, ck1.Snap.Images); err != nil {
			t.Errorf("write images 1: %v", err)
			return
		}
		if err := h.pg.Sync(p); err != nil {
			t.Errorf("sync 1: %v", err)
			return
		}
		lsn := h.log.Append(wal.Record{Payload: FromCheckpoint(ck1).Encode()})
		if !h.log.WaitDurableOrDead(p, lsn) {
			t.Error("log died under checkpoint 1")
			return
		}
		h.pg.CommitCheckpoint(ck1.Snap)

		for i := 40; i < 80; i++ {
			commit(i)
		}

		// Checkpoint 2 gets its images durable, then the power fails
		// before its record is appended: the record never reaches the
		// stream, so recovery must fall back to checkpoint 1.
		ck2, err := h.eng.BeginCheckpoint(p)
		if err != nil {
			t.Errorf("begin checkpoint 2: %v", err)
			return
		}
		if err := h.pg.WriteImages(p, ck2.Snap.Images); err != nil {
			t.Errorf("write images 2: %v", err)
			return
		}
		if err := h.pg.Sync(p); err != nil {
			t.Errorf("sync 2: %v", err)
			return
		}
		h.log.Halt()
	})
	h.env.RunUntil(120 * time.Millisecond)

	rec, st := h.recoverStream(t)
	if !st.Found {
		t.Fatal("recovery did not find checkpoint 1")
	}
	if st.StartLSN != firstStart {
		t.Fatalf("recovered from StartLSN %d, want checkpoint 1's %d", st.StartLSN, firstStart)
	}
	if st.Tail >= st.Total {
		t.Fatalf("tail replay %d not below full replay %d", st.Tail, st.Total)
	}
	want := h.oracleFingerprints(t)
	if got := rec.FingerprintIn(nil); got != want {
		t.Fatalf("recovered fingerprint %#x != oracle %#x", got, want)
	}
}

// TestRecoveryWithoutCheckpoint covers the fallback path: no checkpoint
// on the stream means a fresh memory-backed engine and a full replay.
func TestRecoveryWithoutCheckpoint(t *testing.T) {
	h := newHarness(31, 64)
	var done bool
	h.runCommitter(t, 50, &done)
	h.env.RunUntil(20 * time.Millisecond)
	if !done {
		t.Fatal("committer did not finish")
	}

	rec, st := h.recoverStream(t)
	if st.Found {
		t.Fatal("found a checkpoint on a checkpoint-free stream")
	}
	if st.Tail != st.Total || st.Total == 0 {
		t.Fatalf("fallback must replay everything: %+v", st)
	}
	want := h.oracleFingerprints(t)
	if got := rec.FingerprintIn(nil); got != want {
		t.Fatalf("recovered fingerprint %#x != oracle %#x", got, want)
	}
}

// TestManagerRunLoop exercises the background process end to end:
// checkpoints complete on the interval, Stop lands, and WaitIdle
// returns with nothing in flight.
func TestManagerRunLoop(t *testing.T) {
	h := newHarness(41, 64)
	m := NewManager(h.eng, h.log, Config{Interval: 500 * time.Microsecond})
	h.env.Go("ckpt", m.Run)
	var done bool
	h.runCommitter(t, 100, &done)
	h.env.RunUntil(20 * time.Millisecond)
	m.Stop()
	h.env.Go("waiter", func(p *sim.Proc) { m.WaitIdle(p) })
	h.env.RunUntil(h.env.Now() + 5*time.Millisecond)
	if !done {
		t.Fatal("committer did not finish")
	}
	if m.Completed() < 2 {
		t.Fatalf("expected several checkpoints, got %d (aborted %d)", m.Completed(), m.Aborted())
	}
}

func sampleRecord() Record {
	return Record{
		StartLSN: 4096,
		NextID:   9,
		Free:     []uint64{3, 7},
		Parity:   []uint8{0, 1, 0, 0, 1, 1, 0, 0, 1},
		Tables:   map[string]uint64{"customer": 4, "stock": 0},
	}
}

func recordsEqual(a, b Record) bool {
	if a.StartLSN != b.StartLSN || a.NextID != b.NextID ||
		len(a.Free) != len(b.Free) || len(a.Parity) != len(b.Parity) || len(a.Tables) != len(b.Tables) {
		return false
	}
	for i := range a.Free {
		if a.Free[i] != b.Free[i] {
			return false
		}
	}
	for i := range a.Parity {
		if a.Parity[i] != b.Parity[i] {
			return false
		}
	}
	for n, r := range a.Tables {
		if b.Tables[n] != r {
			return false
		}
	}
	return true
}

func TestCheckpointRecordRoundTrip(t *testing.T) {
	r := sampleRecord()
	enc := r.Encode()
	if !IsCheckpointPayload(enc) {
		t.Fatal("encoded record not recognized as checkpoint payload")
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !recordsEqual(r, got) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, r)
	}
	if !bytes.Equal(enc, r.Encode()) {
		t.Fatal("encode is not deterministic")
	}
}

func TestCheckpointRecordRejectsCorruption(t *testing.T) {
	enc := sampleRecord().Encode()
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("decode accepted a flipped byte at offset %d", i)
		}
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("decode accepted truncation to %d bytes", cut)
		}
	}
}

// FuzzCheckpointRecord fuzzes the checkpoint record codec from both
// directions: arbitrary bytes must never panic and, when accepted, must
// re-encode canonically; records built from fuzz input must round-trip
// exactly.
func FuzzCheckpointRecord(f *testing.F) {
	f.Add(sampleRecord().Encode(), int64(0), uint64(0))
	f.Add([]byte{0xFE, 0xFF, 1}, int64(1), uint64(6))
	f.Add([]byte(nil), int64(-40), uint64(300))
	f.Fuzz(func(t *testing.T, data []byte, startLSN int64, nextID uint64) {
		// Arm 1: arbitrary bytes through Decode. Accepted payloads must
		// re-encode to the exact same bytes (the codec is canonical).
		if r, err := Decode(data); err == nil {
			if enc := r.Encode(); !bytes.Equal(enc, data) {
				t.Fatalf("accepted payload is not canonical:\n in %x\nout %x", data, enc)
			}
		}

		// Arm 2: a structurally valid record derived from the fuzz input
		// must round-trip exactly.
		nextID %= 4096
		r := Record{StartLSN: startLSN, NextID: nextID, Parity: make([]uint8, nextID), Tables: map[string]uint64{}}
		for i, b := range data {
			if uint64(i) >= nextID {
				break
			}
			r.Parity[i] = b & 1
			if b&2 != 0 {
				r.Free = append(r.Free, uint64(i))
			}
			if b&4 != 0 && nextID > 0 {
				r.Tables[fmt.Sprintf("t%04d", i)] = uint64(i) % nextID
			}
		}
		enc := r.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of built record failed: %v\npayload %x", err, enc)
		}
		if !recordsEqual(r, got) {
			t.Fatalf("built record round trip mismatch: %+v != %+v", got, r)
		}
	})
}
