package ckpt

import (
	"fmt"

	"xssd/internal/btree"
	"xssd/internal/db"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// Stats describes one recovery: whether a complete checkpoint bounded
// the replay, and how much of the log it actually replayed.
type Stats struct {
	// Found is true when a complete checkpoint record was on the durable
	// log (its page images are durable by protocol order).
	Found bool
	// StartLSN is the found checkpoint's replay cut (0 without one).
	StartLSN int64
	// Total counts the redo records on the stream (control records
	// excluded); a checkpoint-free recovery replays all of them.
	Total int
	// Tail counts the redo records actually replayed.
	Tail int
}

// Recover rebuilds a paged engine from a durable log stream. With a
// checkpoint on the stream, the pager restores onto store (the device's
// page slots) and only the tail past Record.StartLSN replays. Without
// one, load rebuilds the pre-log state (bulk-loaded rows never hit the
// WAL) into a fresh memory-backed pager — the device pages are not
// trustworthy before the first complete checkpoint — and the whole
// stream replays.
func Recover(p *sim.Proc, env *sim.Env, store btree.PageStore, poolPages int, records []wal.Record, load func(*db.Engine)) (*db.Engine, Stats, error) {
	var st Stats
	for _, r := range records {
		if !db.IsControlPayload(r.Payload) {
			st.Total++
		}
	}

	var rec Record
	for i := len(records) - 1; i >= 0; i-- {
		if IsCheckpointPayload(records[i].Payload) {
			r, err := Decode(records[i].Payload)
			if err != nil {
				// The record was appended whole after its images were
				// durable; a malformed one on the durable log is
				// corruption, not a crash artifact.
				return nil, st, fmt.Errorf("ckpt: recover: %w", err)
			}
			rec, st.Found, st.StartLSN = r, true, r.StartLSN
			break
		}
	}

	if !st.Found {
		mem := btree.NewMemStore(store.PageSize(), int64(1)<<32)
		eng := db.NewPaged(env, nil, btree.NewPager(mem, btree.Config{PoolPages: poolPages}))
		if load != nil {
			load(eng)
		}
		for _, r := range records {
			if err := eng.ApplyRecordIn(p, r); err != nil {
				return nil, st, fmt.Errorf("ckpt: recover: %w", err)
			}
			if !db.IsControlPayload(r.Payload) {
				st.Tail++
			}
		}
		return eng, st, nil
	}

	pg := btree.NewPager(store, btree.Config{PoolPages: poolPages})
	pg.Restore(rec.NextID, rec.Free, rec.Parity)
	eng := db.NewPaged(env, nil, pg)
	for name, root := range rec.Tables {
		eng.OpenPagedTable(name, root)
	}
	for _, r := range wal.TailRecords(records, rec.StartLSN) {
		if err := eng.ApplyRecordIn(p, r); err != nil {
			return nil, st, fmt.Errorf("ckpt: recover tail: %w", err)
		}
		if !db.IsControlPayload(r.Payload) {
			st.Tail++
		}
	}
	return eng, st, nil
}
