package ckpt

import (
	"fmt"
	"time"

	"xssd/internal/db"
	"xssd/internal/obs"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// Config tunes a checkpoint Manager.
type Config struct {
	// Interval is the pause between checkpoint attempts. 0 means 5ms.
	Interval time.Duration
	// Scope registers manager instruments (completed, aborted,
	// pages_written counters and a duration histogram). The zero Scope
	// keeps the manager silent.
	Scope obs.Scope
}

// Manager runs fuzzy checkpoints against a paged engine as a simulated
// process. Start it with env.Go("ckpt", m.Run); stop it with Stop.
type Manager struct {
	eng *db.Engine
	log *wal.Log
	cfg Config

	stop     bool
	inFlight bool
	idle     *sim.Signal

	completed, aborted int64

	mCompleted, mAborted, mPages *obs.Counter
	mDur                         *obs.Histogram
}

// NewManager builds a manager over eng (which must be paged) and its WAL.
func NewManager(eng *db.Engine, log *wal.Log, cfg Config) *Manager {
	if !eng.Paged() {
		panic("ckpt: manager over a non-paged engine")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Millisecond
	}
	m := &Manager{eng: eng, log: log, cfg: cfg, idle: eng.Env().NewSignal()}
	sc := cfg.Scope
	m.mCompleted = sc.Counter("completed")
	m.mAborted = sc.Counter("aborted")
	m.mPages = sc.Counter("pages_written")
	m.mDur = sc.Histogram("duration_ns")
	return m
}

// Completed returns the number of checkpoints that reached their durable
// record.
func (m *Manager) Completed() int64 { return m.completed }

// Aborted returns the number of checkpoint attempts that rolled back
// (device error or lost durability race).
func (m *Manager) Aborted() int64 { return m.aborted }

// Stop asks the manager to exit after the current attempt (if any).
func (m *Manager) Stop() { m.stop = true }

// WaitIdle blocks until no checkpoint attempt is in flight. Call after
// Stop when the harness needs the device quiet.
func (m *Manager) WaitIdle(p *sim.Proc) {
	p.WaitFor(m.idle, func() bool { return !m.inFlight })
}

// Run is the manager process body: checkpoint, sleep, repeat.
func (m *Manager) Run(p *sim.Proc) {
	for {
		p.Sleep(m.cfg.Interval)
		if m.stop {
			return
		}
		if _, err := m.RunOnce(p); err != nil {
			// A failed attempt aborted cleanly (images re-queued); the
			// next round retries. Device death ends the loop — nothing
			// will ever succeed again.
			if m.log != nil && m.log.Dead() {
				return
			}
		}
		if m.stop {
			return
		}
	}
}

// RunOnce executes one full checkpoint attempt and reports whether it
// completed. The attempt aborts — re-queueing its images for the next one
// — if the page writes fail, the sync detects a lost write, or the record
// never becomes durable (device died under it).
func (m *Manager) RunOnce(p *sim.Proc) (bool, error) {
	m.inFlight = true
	defer func() {
		m.inFlight = false
		m.idle.Broadcast()
	}()
	start := m.eng.Env().Now()
	ck, err := m.eng.BeginCheckpoint(p)
	if err != nil {
		return false, err
	}
	pg := m.eng.Pager()
	if err := pg.WriteImages(p, ck.Snap.Images); err != nil {
		pg.AbortCheckpoint(ck.Snap)
		m.aborted++
		m.mAborted.Inc()
		return false, fmt.Errorf("ckpt: write images: %w", err)
	}
	if err := pg.Sync(p); err != nil {
		pg.AbortCheckpoint(ck.Snap)
		m.aborted++
		m.mAborted.Inc()
		return false, fmt.Errorf("ckpt: sync: %w", err)
	}
	lsn := m.log.Append(wal.Record{Payload: FromCheckpoint(ck).Encode()})
	if !m.log.WaitDurableOrDead(p, lsn) {
		pg.AbortCheckpoint(ck.Snap)
		m.aborted++
		m.mAborted.Inc()
		return false, fmt.Errorf("ckpt: record lost: log dead before lsn %d", lsn)
	}
	pg.CommitCheckpoint(ck.Snap)
	m.completed++
	m.mCompleted.Inc()
	m.mPages.Add(int64(len(ck.Snap.Images)))
	m.mDur.Observe(int64(m.eng.Env().Now() - start))
	return true, nil
}
