// Package ckpt implements fuzzy checkpoints for the paged database
// engine. A checkpoint manager process periodically captures a zero-time
// snapshot of the dirty page set under the engine's commit lock, writes
// the images to their shadow slots concurrently with new commits (the
// fuzzy part), makes them durable, and then appends a checkpoint record
// to the WAL. Recovery finds the last record whose images are fully
// durable — by construction, any checkpoint record on the durable log —
// restores the pager from it, and replays only the WAL tail past the
// record's start LSN instead of the whole log.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"xssd/internal/db"
)

// Marker is the impossible redo-op-count that flags a checkpoint record
// payload (the 2PC control records own 0xFFFF; see db.ControlOpMark).
const Marker = 0xFFFE

const recordVersion = 1

// ErrBadRecord wraps every checkpoint-record decode rejection.
var ErrBadRecord = errors.New("ckpt: bad checkpoint record")

// Record is the decoded form of a checkpoint record payload: everything
// recovery needs to restore the pager and cut the replay tail. Page
// images are not in the record — they live in their shadow slots, made
// durable before the record was appended.
type Record struct {
	StartLSN int64    // WAL append frontier at the snapshot instant
	NextID   uint64   // pager id-space high-water mark
	Free     []uint64 // free page ids, sorted
	Parity   []uint8  // committed slot parity per page id (len == NextID)
	Tables   map[string]uint64
}

// IsCheckpointPayload reports whether a WAL record payload is a
// checkpoint record.
func IsCheckpointPayload(payload []byte) bool {
	return len(payload) >= 3 && binary.LittleEndian.Uint16(payload) == Marker
}

// Encode serializes the record:
//
//	[marker u16][version u8][startLSN i64][nextID u64]
//	[nTables u32] then per table (sorted): [nameLen u16][name][root u64]
//	[nFree u32][free u64...]
//	[parity bitmap, ceil(NextID/8) bytes]
//	[crc32 IEEE over everything above]
func (r Record) Encode() []byte {
	names := make([]string, 0, len(r.Tables))
	for n := range r.Tables {
		names = append(names, n)
	}
	sort.Strings(names)

	buf := make([]byte, 0, 64+len(r.Free)*8+int(r.NextID)/8)
	var scratch [8]byte
	le := binary.LittleEndian
	u16 := func(v uint16) { le.PutUint16(scratch[:2], v); buf = append(buf, scratch[:2]...) }
	u32 := func(v uint32) { le.PutUint32(scratch[:4], v); buf = append(buf, scratch[:4]...) }
	u64 := func(v uint64) { le.PutUint64(scratch[:8], v); buf = append(buf, scratch[:8]...) }

	u16(Marker)
	buf = append(buf, recordVersion)
	u64(uint64(r.StartLSN))
	u64(r.NextID)
	u32(uint32(len(names)))
	for _, n := range names {
		u16(uint16(len(n)))
		buf = append(buf, n...)
		u64(r.Tables[n])
	}
	u32(uint32(len(r.Free)))
	for _, id := range r.Free {
		u64(id)
	}
	bitmap := make([]byte, (int(r.NextID)+7)/8)
	for id, par := range r.Parity {
		if par != 0 {
			bitmap[id/8] |= 1 << (id % 8)
		}
	}
	buf = append(buf, bitmap...)
	u32(crc32.ChecksumIEEE(buf))
	return buf
}

// Decode parses and validates a checkpoint record payload.
func Decode(payload []byte) (Record, error) {
	le := binary.LittleEndian
	if len(payload) < 31 { // marker+version+startLSN+nextID+counts+crc
		return Record{}, fmt.Errorf("%w: %d bytes", ErrBadRecord, len(payload))
	}
	if le.Uint16(payload[0:2]) != Marker {
		return Record{}, fmt.Errorf("%w: marker %#x", ErrBadRecord, le.Uint16(payload[0:2]))
	}
	if payload[2] != recordVersion {
		return Record{}, fmt.Errorf("%w: version %d", ErrBadRecord, payload[2])
	}
	body, tail := payload[:len(payload)-4], payload[len(payload)-4:]
	if got := le.Uint32(tail); got != crc32.ChecksumIEEE(body) {
		return Record{}, fmt.Errorf("%w: crc %#x", ErrBadRecord, got)
	}
	r := Record{
		StartLSN: int64(le.Uint64(payload[3:11])),
		NextID:   le.Uint64(payload[11:19]),
		Tables:   map[string]uint64{},
	}
	off := 19
	need := func(n int) bool { return off+n <= len(body) }
	if !need(4) {
		return Record{}, fmt.Errorf("%w: truncated table count", ErrBadRecord)
	}
	nTables := int(le.Uint32(body[off:]))
	off += 4
	prev := ""
	for i := 0; i < nTables; i++ {
		if !need(2) {
			return Record{}, fmt.Errorf("%w: truncated table %d", ErrBadRecord, i)
		}
		nl := int(le.Uint16(body[off:]))
		off += 2
		if !need(nl + 8) {
			return Record{}, fmt.Errorf("%w: truncated table %d", ErrBadRecord, i)
		}
		name := string(body[off : off+nl])
		off += nl
		root := le.Uint64(body[off:])
		off += 8
		if i > 0 && name <= prev {
			return Record{}, fmt.Errorf("%w: table names out of order", ErrBadRecord)
		}
		if root >= r.NextID {
			return Record{}, fmt.Errorf("%w: table %q root %d beyond id space %d", ErrBadRecord, name, root, r.NextID)
		}
		r.Tables[name] = root
		prev = name
	}
	if !need(4) {
		return Record{}, fmt.Errorf("%w: truncated free count", ErrBadRecord)
	}
	nFree := int(le.Uint32(body[off:]))
	off += 4
	if !need(nFree * 8) {
		return Record{}, fmt.Errorf("%w: truncated free list", ErrBadRecord)
	}
	r.Free = make([]uint64, 0, nFree)
	var prevID uint64
	for i := 0; i < nFree; i++ {
		id := le.Uint64(body[off:])
		off += 8
		if id >= r.NextID {
			return Record{}, fmt.Errorf("%w: free id %d beyond id space %d", ErrBadRecord, id, r.NextID)
		}
		if i > 0 && id <= prevID {
			return Record{}, fmt.Errorf("%w: free list out of order", ErrBadRecord)
		}
		r.Free = append(r.Free, id)
		prevID = id
	}
	bm := (int(r.NextID) + 7) / 8
	if len(body)-off != bm {
		return Record{}, fmt.Errorf("%w: parity bitmap %d bytes, want %d", ErrBadRecord, len(body)-off, bm)
	}
	r.Parity = make([]uint8, r.NextID)
	for id := range r.Parity {
		if body[off+id/8]&(1<<(id%8)) != 0 {
			r.Parity[id] = 1
		}
	}
	return r, nil
}

// FromCheckpoint builds the record for a captured engine checkpoint.
func FromCheckpoint(ck db.Checkpoint) Record {
	return Record{
		StartLSN: ck.StartLSN,
		NextID:   ck.Snap.NextID,
		Free:     ck.Snap.Free,
		Parity:   ck.Snap.Parity,
		Tables:   ck.Tables,
	}
}
