// Package ntb models PCIe Non-Transparent Bridging (paper §2.3): the
// interconnect the Villars Transport module uses to ship the fast-side
// write stream to peer devices. NTB forwards TLPs between two hosts' PCIe
// systems with only address translation — no protocol conversion — which is
// why the model is just another link plus a window mapping.
package ntb

import (
	"time"

	"xssd/internal/fault"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/sim"
)

// Default fabric parameters (Dolphin PXH830-class adapters, daisy-chained).
const (
	// DefaultBandwidth is the usable NTB bandwidth between two hosts.
	DefaultBandwidth = 2e9
	// DefaultHopLatency is the one-way latency of a single NTB hop.
	DefaultHopLatency = 1100 * time.Nanosecond
)

// Bridge is an NTB adapter pair connecting the local PCIe system to one
// remote host, possibly across several daisy-chain hops. A bridge belongs
// to the sender's Env; when the remote end lives in a different member of
// a sim.Group (NewBridgeTo), deliveries cross through the group mailbox at
// their arrival time instead of the local event queue. The hop latency
// (1.1µs default) exceeds the group's 1µs quantum, so barrier clamping
// never distorts arrival times.
type Bridge struct {
	env    *sim.Env
	remote *sim.Env // Env the window targets live in; == env when intra-env
	link   *sim.Link
	hops   int
	name   string

	// pendq holds TLP chunks in flight on the link. Link completions fire
	// in send order (serialization is monotone, latency constant), so every
	// completion delivers the oldest pending chunk via the one bound
	// deliver func — no per-chunk closure, and payload buffers recycle
	// through bufs.
	//xssd:pool retain
	pendq   []ntbDelivery
	pendPos int
	deliver func()
	//xssd:pool put
	bufs [][]byte

	// metrics (ntb/<name>/...)
	mChunks  *obs.Counter
	mDropped *obs.Counter
}

type ntbDelivery struct {
	target pcie.Target
	dst    int64
	buf    []byte
	done   func()
}

// getBuf returns a pooled chunk buffer of length n.
//
//xssd:pool get
func (b *Bridge) getBuf(n int) []byte {
	for len(b.bufs) > 0 {
		buf := b.bufs[len(b.bufs)-1]
		b.bufs = b.bufs[:len(b.bufs)-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]byte, n, pcie.MaxPayload)
}

// pend queues a chunk for in-order delivery by the next completion.
func (b *Bridge) pend(target pcie.Target, dst int64, buf []byte, done func()) {
	if b.pendPos > 0 && b.pendPos == len(b.pendq) {
		b.pendq = b.pendq[:0]
		b.pendPos = 0
	}
	b.pendq = append(b.pendq, ntbDelivery{target: target, dst: dst, buf: buf, done: done})
}

// deliverNext lands the oldest pending chunk at its remote target
// (scheduler context, link completion order) and recycles the buffer.
// The target must copy: the buffer is reused for later chunks.
//
//xssd:hotpath
//xssd:conduit NTB delivery is the wire itself: it lands bytes at the remote Env's MMIO target, which copies on arrival
func (b *Bridge) deliverNext() {
	d := b.pendq[b.pendPos]
	b.pendq[b.pendPos] = ntbDelivery{}
	b.pendPos++
	d.target.MemWrite(d.dst, d.buf)
	b.bufs = append(b.bufs, d.buf)
	if d.done != nil {
		d.done()
	}
}

// NewBridge creates a bridge with the given bandwidth and per-hop latency
// over hops daisy-chained adapters (hops >= 1).
func NewBridge(env *sim.Env, name string, bandwidth float64, hopLatency time.Duration, hops int) *Bridge {
	return NewBridgeTo(env, env, name, bandwidth, hopLatency, hops)
}

// NewBridgeTo creates a bridge whose window targets live in remote — a
// different member of the sender's sim.Group. With remote == env it is
// exactly NewBridge. The bridge and its link, buffers, and metrics belong
// to env (the sender); only the final chunk landing crosses to remote.
func NewBridgeTo(env, remote *sim.Env, name string, bandwidth float64, hopLatency time.Duration, hops int) *Bridge {
	if hops < 1 {
		hops = 1
	}
	b := &Bridge{
		env:    env,
		remote: remote,
		link:   env.NewLink("ntb-"+name, bandwidth, time.Duration(hops)*hopLatency),
		hops:   hops,
		name:   name,
	}
	b.deliver = b.deliverNext
	sc := obs.For(env).Scope("ntb/" + name)
	b.mChunks = sc.Counter("chunks")
	b.mDropped = sc.Counter("dropped")
	sc.GaugeFunc("bytes", func() int64 { bytes, _, _ := b.link.Stats(); return bytes })
	return b
}

// Dropped returns how many TLP chunks a fault plan has discarded on this
// bridge.
func (b *Bridge) Dropped() int64 { return b.mDropped.Value() }

// NewDefaultBridge creates a single-hop bridge with the default fabric
// parameters.
func NewDefaultBridge(env *sim.Env, name string) *Bridge {
	return NewBridge(env, name, DefaultBandwidth, DefaultHopLatency, 1)
}

// NewDefaultBridgeTo is NewDefaultBridge with a remote-Env far end.
func NewDefaultBridgeTo(env, remote *sim.Env, name string) *Bridge {
	return NewBridgeTo(env, remote, name, DefaultBandwidth, DefaultHopLatency, 1)
}

// sendCross ships one chunk to a remote-Env target: the link is occupied
// locally (timing and bandwidth accounting belong to the sender) and the
// arrival is posted through the group mailbox carrying a private buffer
// the remote target copies from — pooled buffers never cross Envs. done,
// if non-nil, fires in the *sender's* Env at the arrival instant:
// completion callbacks drive sender-side state (retransmission windows,
// WriteBlocking signals) and must not run remotely.
//
//xssd:conduit NTB delivery is the wire itself: bytes land at the remote Env's target at the barrier-merged arrival time
func (b *Bridge) sendCross(target pcie.Target, dst int64, data []byte, wireBytes int, done func()) {
	buf := append([]byte(nil), data...)
	at := b.link.SendTimed(wireBytes)
	b.env.PostTo(b.remote, at, func() { target.MemWrite(dst, buf) })
	if done != nil {
		b.env.At(at, done)
	}
}

// Link exposes the bridge's link for bandwidth accounting (Fig 13 reports
// the share of fabric bandwidth consumed by shadow-counter updates).
func (b *Bridge) Link() *sim.Link { return b.link }

// Window maps a range of the remote host's address space — in this model,
// directly a remote device target — through the bridge.
type Window struct {
	bridge *Bridge
	target pcie.Target
	base   int64
}

// NewWindow opens a window onto target at the given base offset.
func (b *Bridge) NewWindow(target pcie.Target, base int64) *Window {
	return &Window{bridge: b, target: target, base: base}
}

// Write forwards data to remote offset off as posted TLPs over the bridge.
// The caller is not blocked (a hardware mirror engine feeds the wire);
// done, if non-nil, runs in scheduler context when the last packet arrives.
func (w *Window) Write(off int64, data []byte, done func()) {
	b := w.bridge
	for len(data) > 0 {
		n := pcie.MaxPayload
		if n > len(data) {
			n = len(data)
		}
		dst := w.base + off
		off += int64(n)
		last := n == len(data)
		cb := done
		if !last {
			cb = nil
		}
		// Fault plan: the ntb.deliver point can drop or delay one TLP
		// chunk on the fabric. A dropped final chunk also swallows the
		// done callback — exactly the silence a real lost TLP causes;
		// higher layers must recover by timeout (the transport's repair
		// process does).
		b.mChunks.Inc()
		switch d := fault.CheckEnv(b.env, fault.NTBDeliver, b.name, 1); d.Act {
		case fault.ActionDrop, fault.ActionFail:
			b.mDropped.Inc()
		case fault.ActionDelay:
			// Delayed chunks bypass the in-order pendq (their Send is
			// issued when the timer fires, interleaving with later
			// traffic) and carry a private copy the closure owns.
			chunk := append([]byte(nil), data[:n]...)
			delay := d.Dur
			if b.remote != b.env {
				b.env.After(delay, func() { b.sendCross(w.target, dst, chunk, pcie.WireBytes(n), cb) })
				data = data[n:]
				continue
			}
			b.env.After(delay, func() {
				b.link.Send(pcie.WireBytes(n), func() {
					w.target.MemWrite(dst, chunk)
					if cb != nil {
						cb()
					}
				})
			})
		default:
			if b.remote != b.env {
				b.sendCross(w.target, dst, data[:n], pcie.WireBytes(n), cb)
				data = data[n:]
				continue
			}
			buf := b.getBuf(n)
			copy(buf, data[:n])
			b.pend(w.target, dst, buf, cb)
			b.link.Send(pcie.WireBytes(n), b.deliver)
		}
		data = data[n:]
	}
}

// WriteRaw forwards data as a single compact message occupying exactly
// wireBytes on the fabric — the doorbell/scratchpad-style write NTB
// adapters provide for tiny control messages (used for shadow-counter
// updates, whose cost the paper quantifies in Fig 13).
func (w *Window) WriteRaw(off int64, data []byte, wireBytes int, done func()) {
	b := w.bridge
	b.mChunks.Inc()
	if b.remote != b.env {
		b.sendCross(w.target, w.base+off, data, wireBytes, done)
		return
	}
	buf := b.getBuf(len(data))
	copy(buf, data)
	b.pend(w.target, w.base+off, buf, done)
	b.link.Send(wireBytes, b.deliver)
}

// WriteBlocking forwards data and blocks the calling process until the last
// packet has been delivered remotely.
func (w *Window) WriteBlocking(p *sim.Proc, off int64, data []byte) {
	sig := p.Env().NewSignal()
	doneFlag := false
	w.Write(off, data, func() {
		doneFlag = true
		sig.Broadcast()
	})
	p.WaitFor(sig, func() bool { return doneFlag })
}
