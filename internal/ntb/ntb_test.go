package ntb

import (
	"bytes"
	"testing"
	"time"

	"xssd/internal/sim"
)

type sink struct {
	mem    []byte
	writes int
}

func (s *sink) MemWrite(off int64, data []byte) {
	copy(s.mem[off:], data)
	s.writes++
}

func (s *sink) MemRead(off int64, n int) []byte {
	out := make([]byte, n)
	copy(out, s.mem[off:])
	return out
}

func TestWindowWriteDelivers(t *testing.T) {
	env := sim.NewEnv(1)
	br := NewDefaultBridge(env, "a-b")
	target := &sink{mem: make([]byte, 8192)}
	win := br.NewWindow(target, 1024)
	payload := make([]byte, 700)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var doneAt time.Duration
	env.Go("mirror", func(p *sim.Proc) {
		win.Write(0, payload, func() { doneAt = env.Now() })
	})
	env.Run()
	if !bytes.Equal(target.mem[1024:1024+700], payload) {
		t.Fatal("payload corrupted across bridge")
	}
	if target.writes != 3 { // 700 bytes / 256 max payload
		t.Fatalf("TLPs = %d, want 3", target.writes)
	}
	if doneAt < DefaultHopLatency {
		t.Fatalf("delivered at %v, before hop latency %v", doneAt, DefaultHopLatency)
	}
}

func TestDaisyChainAddsLatency(t *testing.T) {
	delivery := func(hops int) time.Duration {
		env := sim.NewEnv(1)
		br := NewBridge(env, "chain", DefaultBandwidth, DefaultHopLatency, hops)
		target := &sink{mem: make([]byte, 1024)}
		win := br.NewWindow(target, 0)
		var at time.Duration
		env.Go("m", func(p *sim.Proc) {
			win.Write(0, []byte{1}, func() { at = env.Now() })
		})
		env.Run()
		return at
	}
	one, two := delivery(1), delivery(2)
	if two-one != DefaultHopLatency {
		t.Fatalf("2-hop minus 1-hop = %v, want one hop latency %v", two-one, DefaultHopLatency)
	}
}

func TestWriteBlockingWaitsForDelivery(t *testing.T) {
	env := sim.NewEnv(1)
	br := NewDefaultBridge(env, "a-b")
	target := &sink{mem: make([]byte, 1024)}
	win := br.NewWindow(target, 0)
	var took time.Duration
	env.Go("m", func(p *sim.Proc) {
		start := p.Now()
		win.WriteBlocking(p, 0, make([]byte, 512))
		took = p.Now() - start
	})
	if blocked := env.Run(); blocked != 0 {
		t.Fatalf("blocked = %d", blocked)
	}
	if took < DefaultHopLatency {
		t.Fatalf("blocking write returned after %v, before delivery", took)
	}
	if target.writes != 2 {
		t.Fatalf("TLPs = %d, want 2", target.writes)
	}
}

func TestHopsFloorAtOne(t *testing.T) {
	env := sim.NewEnv(1)
	br := NewBridge(env, "x", DefaultBandwidth, DefaultHopLatency, 0)
	if br.hops != 1 {
		t.Fatalf("hops = %d, want clamped to 1", br.hops)
	}
}
