package ntb

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xssd/internal/fault"
	"xssd/internal/sim"
)

// Property (the barrier merge-order contract, exercised through real
// bridges): a ring of 2-8 group members exchanging NTB traffic at random
// virtual times — under a random fault plan that drops and delays TLP
// chunks on the fabric — produces a bit-identical delivery history at
// every worker count. The history records, per receiver in member order,
// every MemWrite's (virtual time, offset, payload), so both the merge
// order and the payload bytes are pinned.

const (
	quickWindow  = 300 * time.Microsecond
	quickPayload = 48 // small enough to stay one TLP chunk
)

// captureTarget logs every posted write it receives, stamped with the
// receiving Env's virtual time. Each member owns its target's log — a
// shared accumulator would itself be a cross-env race during a quantum —
// and the runner folds the logs in member-index order afterwards.
type captureTarget struct {
	env *sim.Env
	log []byte
}

func (t *captureTarget) MemWrite(off int64, data []byte) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(t.env.Now()))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(off))
	t.log = append(t.log, hdr[:]...)
	t.log = append(t.log, data...)
}

func (t *captureTarget) MemRead(off int64, n int) []byte { return make([]byte, n) }

// quickPlan derives a fabric fault plan from a seed: probabilistic drops
// and delays on ntb.deliver, the only point this property exercises.
func quickPlan(seed int64) *fault.Plan {
	rng := rand.New(rand.NewSource(seed))
	return &fault.Plan{Rules: []fault.Rule{
		{Point: fault.NTBDeliver, Trigger: fault.TriggerProb, Prob: 0.05 + 0.15*rng.Float64(), Action: fault.ActionDrop},
		{Point: fault.NTBDeliver, Trigger: fault.TriggerProb, Prob: 0.05 + 0.15*rng.Float64(), Action: fault.ActionDelay,
			Dur: time.Duration(1+rng.Intn(5)) * time.Microsecond},
	}}
}

// runRing builds a k-member ring (member i bridges to member (i+1)%k),
// spawns one sender per member issuing msgs writes at random times drawn
// from its own member rng, runs the window, and returns an FNV-1a digest
// of every member's delivery history in member order.
func runRing(seed int64, k, msgs, workers int) uint64 {
	g := sim.NewGroup(sim.GroupConfig{Workers: workers})
	defer g.Close()
	plan := quickPlan(seed)
	var targets []*captureTarget

	envs := make([]*sim.Env, k)
	for i := 0; i < k; i++ {
		envs[i] = g.NewEnv(fmt.Sprintf("m%d", i), seed+int64(i)*7919)
		fault.Attach(envs[i], fault.New(envs[i], plan))
		targets = append(targets, &captureTarget{env: envs[i]})
	}
	for i := 0; i < k; i++ {
		src, dst := envs[i], envs[(i+1)%k]
		w := NewDefaultBridgeTo(src, dst, fmt.Sprintf("m%d-m%d", i, (i+1)%k)).
			NewWindow(targets[(i+1)%k], 0)
		i := i
		src.Go("sender", func(p *sim.Proc) {
			buf := make([]byte, quickPayload)
			for m := 0; m < msgs; m++ {
				p.Sleep(time.Duration(1+src.Rand().Intn(int(quickWindow/time.Microsecond/2))) * time.Microsecond / 4)
				binary.LittleEndian.PutUint64(buf, uint64(i)<<32|uint64(m))
				w.Write(int64(m)*quickPayload, buf, nil)
			}
		})
	}
	g.RunUntil(quickWindow)
	for _, e := range envs {
		fault.Detach(e)
	}
	// Fold the per-member delivery histories in member-index order: a
	// worker-count-dependent delivery order or timestamp at any member
	// changes the digest.
	h := fnv.New64a()
	for _, tg := range targets {
		h.Write(tg.log)
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], uint64(g.Events()))
	h.Write(tail[:])
	return h.Sum64()
}

// TestQuickRingDeliveryWorkerInvariant is the property test: for random
// (seed, member count, message count), the delivery digest is identical
// across workers 1, 2, and 8.
func TestQuickRingDeliveryWorkerInvariant(t *testing.T) {
	trials := 0
	prop := func(seed int64, envRaw, msgRaw uint8) bool {
		k := 2 + int(envRaw)%7    // 2..8 members
		msgs := 3 + int(msgRaw)%6 // 3..8 messages per sender
		trials++
		d1 := runRing(seed, k, msgs, 1)
		d2 := runRing(seed, k, msgs, 2)
		d8 := runRing(seed, k, msgs, 8)
		if d1 != d2 || d1 != d8 {
			t.Logf("seed=%d k=%d msgs=%d digests: w1=%016x w2=%016x w8=%016x", seed, k, msgs, d1, d2, d8)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(1337)),
	}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("delivery order depends on worker count: %v", err)
	}
	if trials == 0 {
		t.Fatal("property never ran")
	}
}

// TestQuickRingDeliveryReRunStable pins the complement: the digest is also
// stable across re-runs of the same configuration (same workers), so the
// worker-invariance above cannot pass vacuously through an unstable hash.
func TestQuickRingDeliveryReRunStable(t *testing.T) {
	a := runRing(42, 5, 6, 2)
	b := runRing(42, 5, 6, 2)
	if a != b {
		t.Fatalf("same configuration diverged across re-runs: %016x vs %016x", a, b)
	}
	c := runRing(43, 5, 6, 2)
	if c == a {
		t.Fatalf("different seeds produced identical digest %016x (suspicious)", a)
	}
}
