// Package btree implements the paged B+tree table store behind the
// database engine's paged mode: fixed-size pages with a versioned binary
// codec, a no-steal LRU buffer pool (the Pager), and shadow-slot page
// placement so fuzzy checkpoints never overwrite the images the last
// complete checkpoint still references. Pages live on the conventional
// side of a Villars device (DeviceStore) or in plain memory (MemStore,
// for oracles and tests); either way the byte format is identical.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Page header layout (little-endian), headerLen bytes:
//
//	[0:4)   magic "XBTP"
//	[4:6)   codec version
//	[6:7)   node kind (leaf or branch)
//	[7:8)   reserved, must be zero
//	[8:16)  page id
//	[16:24) recovery LSN (end LSN of the last redo record applied)
//	[24:26) key count
//	[26:28) cell-area byte length
//	[28:32) CRC-32 (IEEE) over bytes [0:28) ++ cells [headerLen:headerLen+used)
const (
	pageMagic   = 0x50544258 // "XBTP"
	pageVersion = 1
	headerLen   = 32

	kindLeaf   = 1
	kindBranch = 2
)

// Codec errors. ErrCorrupt wraps every structural rejection so callers
// can match the class with errors.Is.
var (
	ErrCorrupt  = errors.New("btree: corrupt page")
	ErrTooLarge = errors.New("btree: entry too large for page")
)

// node is the decoded form of one page. A leaf holds parallel
// keys/vers/vals/tombs slices; a branch holds keys as separators with
// children[i] covering keys below keys[i] (children[i+1] holds keys >=
// keys[i], the separator being the smallest key of its right subtree).
type node struct {
	id   uint64
	kind byte
	lsn  int64
	size int // cell-area bytes, maintained incrementally by the tree ops

	keys []string

	// leaf payload
	vers  []int64
	vals  [][]byte
	tombs []bool

	// branch payload: len(children) == len(keys)+1
	children []uint64
}

// leafCellSize is the encoded size of one leaf entry:
// flags(1) + klen(2) + vlen(2) + ver(8) + key + val.
func leafCellSize(key string, val []byte) int { return 13 + len(key) + len(val) }

// branchCellSize is the encoded size of one branch entry past the first
// child pointer: klen(2) + key + child(8).
func branchCellSize(key string) int { return 10 + len(key) }

// branchBaseSize is the encoded size of a branch node's leading child
// pointer.
const branchBaseSize = 8

// encodeNode serializes n into a freshly zeroed pageSize buffer. The tail
// past the cell area is zero, so identical logical content always yields
// identical page bytes (the device images are part of the recovery
// contract and of the determinism fingerprint).
func encodeNode(n *node, pageSize int) ([]byte, error) {
	if n.size > pageSize-headerLen {
		return nil, fmt.Errorf("%w: node %d cell area %d over page size %d", ErrTooLarge, n.id, n.size, pageSize)
	}
	buf := make([]byte, pageSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:4], pageMagic)
	le.PutUint16(buf[4:6], pageVersion)
	buf[6] = n.kind
	le.PutUint64(buf[8:16], n.id)
	le.PutUint64(buf[16:24], uint64(n.lsn))
	le.PutUint16(buf[24:26], uint16(len(n.keys)))
	off := headerLen
	switch n.kind {
	case kindLeaf:
		for i, k := range n.keys {
			flags := byte(0)
			if n.tombs[i] {
				flags = 1
			}
			buf[off] = flags
			le.PutUint16(buf[off+1:off+3], uint16(len(k)))
			le.PutUint16(buf[off+3:off+5], uint16(len(n.vals[i])))
			le.PutUint64(buf[off+5:off+13], uint64(n.vers[i]))
			off += 13
			off += copy(buf[off:], k)
			off += copy(buf[off:], n.vals[i])
		}
	case kindBranch:
		le.PutUint64(buf[off:off+8], n.children[0])
		off += 8
		for i, k := range n.keys {
			le.PutUint16(buf[off:off+2], uint16(len(k)))
			off += 2
			off += copy(buf[off:], k)
			le.PutUint64(buf[off:off+8], n.children[i+1])
			off += 8
		}
	default:
		return nil, fmt.Errorf("%w: node %d has kind %d", ErrCorrupt, n.id, n.kind)
	}
	used := off - headerLen
	if used != n.size {
		return nil, fmt.Errorf("btree: node %d size accounting drifted: tracked %d, encoded %d", n.id, n.size, used)
	}
	le.PutUint16(buf[26:28], uint16(used))
	crc := crc32.ChecksumIEEE(buf[0:28])
	crc = crc32.Update(crc, crc32.IEEETable, buf[headerLen:headerLen+used])
	le.PutUint32(buf[28:32], crc)
	return buf, nil
}

// decodeNode parses one page, verifying magic, version, CRC, and every
// cell bound. The returned node owns fresh copies of all byte content.
func decodeNode(data []byte) (*node, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrCorrupt, len(data), headerLen)
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:4]) != pageMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, le.Uint32(data[0:4]))
	}
	if v := le.Uint16(data[4:6]); v != pageVersion {
		return nil, fmt.Errorf("%w: codec version %d, want %d", ErrCorrupt, v, pageVersion)
	}
	if data[7] != 0 {
		return nil, fmt.Errorf("%w: reserved byte %#x", ErrCorrupt, data[7])
	}
	kind := data[6]
	if kind != kindLeaf && kind != kindBranch {
		return nil, fmt.Errorf("%w: kind %d", ErrCorrupt, kind)
	}
	nkeys := int(le.Uint16(data[24:26]))
	used := int(le.Uint16(data[26:28]))
	if headerLen+used > len(data) {
		return nil, fmt.Errorf("%w: cell area %d overruns %d-byte page", ErrCorrupt, used, len(data))
	}
	crc := crc32.ChecksumIEEE(data[0:28])
	crc = crc32.Update(crc, crc32.IEEETable, data[headerLen:headerLen+used])
	if got := le.Uint32(data[28:32]); got != crc {
		return nil, fmt.Errorf("%w: crc %#x, computed %#x", ErrCorrupt, got, crc)
	}
	n := &node{
		id:   le.Uint64(data[8:16]),
		kind: kind,
		lsn:  int64(le.Uint64(data[16:24])),
		size: used,
	}
	cells := data[headerLen : headerLen+used]
	off := 0
	switch kind {
	case kindLeaf:
		n.keys = make([]string, 0, nkeys)
		n.vers = make([]int64, 0, nkeys)
		n.vals = make([][]byte, 0, nkeys)
		n.tombs = make([]bool, 0, nkeys)
		for i := 0; i < nkeys; i++ {
			if off+13 > used {
				return nil, fmt.Errorf("%w: leaf cell %d header overruns cell area", ErrCorrupt, i)
			}
			flags := cells[off]
			if flags > 1 {
				return nil, fmt.Errorf("%w: leaf cell %d flags %#x", ErrCorrupt, i, flags)
			}
			kl := int(le.Uint16(cells[off+1 : off+3]))
			vl := int(le.Uint16(cells[off+3 : off+5]))
			ver := int64(le.Uint64(cells[off+5 : off+13]))
			off += 13
			if off+kl+vl > used {
				return nil, fmt.Errorf("%w: leaf cell %d body overruns cell area", ErrCorrupt, i)
			}
			key := string(cells[off : off+kl])
			off += kl
			val := append([]byte(nil), cells[off:off+vl]...)
			off += vl
			if i > 0 && key <= n.keys[i-1] {
				return nil, fmt.Errorf("%w: leaf keys out of order at cell %d", ErrCorrupt, i)
			}
			n.keys = append(n.keys, key)
			n.vers = append(n.vers, ver)
			n.vals = append(n.vals, val)
			n.tombs = append(n.tombs, flags == 1)
		}
	case kindBranch:
		if nkeys == 0 {
			return nil, fmt.Errorf("%w: branch with no separators", ErrCorrupt)
		}
		if off+8 > used {
			return nil, fmt.Errorf("%w: branch head overruns cell area", ErrCorrupt)
		}
		n.keys = make([]string, 0, nkeys)
		n.children = make([]uint64, 0, nkeys+1)
		n.children = append(n.children, le.Uint64(cells[0:8]))
		off = 8
		for i := 0; i < nkeys; i++ {
			if off+2 > used {
				return nil, fmt.Errorf("%w: branch cell %d header overruns cell area", ErrCorrupt, i)
			}
			kl := int(le.Uint16(cells[off : off+2]))
			off += 2
			if off+kl+8 > used {
				return nil, fmt.Errorf("%w: branch cell %d body overruns cell area", ErrCorrupt, i)
			}
			key := string(cells[off : off+kl])
			off += kl
			child := le.Uint64(cells[off : off+8])
			off += 8
			if i > 0 && key <= n.keys[i-1] {
				return nil, fmt.Errorf("%w: branch separators out of order at cell %d", ErrCorrupt, i)
			}
			n.keys = append(n.keys, key)
			n.children = append(n.children, child)
		}
	}
	if off != used {
		return nil, fmt.Errorf("%w: %d trailing cell bytes", ErrCorrupt, used-off)
	}
	return n, nil
}
