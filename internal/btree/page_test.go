package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func sampleLeaf() *node {
	n := &node{id: 9, kind: kindLeaf, lsn: 4242}
	for _, e := range []struct {
		k    string
		v    []byte
		ver  int64
		tomb bool
	}{
		{"alpha", []byte("one"), 3, false},
		{"beta", nil, 7, true},
		{"gamma", bytes.Repeat([]byte{0x5A}, 40), 11, false},
	} {
		n.keys = append(n.keys, e.k)
		n.vals = append(n.vals, e.v)
		n.vers = append(n.vers, e.ver)
		n.tombs = append(n.tombs, e.tomb)
		n.size += leafCellSize(e.k, e.v)
	}
	return n
}

func sampleBranch() *node {
	n := &node{id: 4, kind: kindBranch, lsn: 100, children: []uint64{1}, size: branchBaseSize}
	for i, k := range []string{"m", "t"} {
		n.keys = append(n.keys, k)
		n.children = append(n.children, uint64(i+2))
		n.size += branchCellSize(k)
	}
	return n
}

func nodesEqual(a, b *node) bool {
	if a.id != b.id || a.kind != b.kind || a.lsn != b.lsn || a.size != b.size {
		return false
	}
	if len(a.keys) != len(b.keys) || len(a.children) != len(b.children) || len(a.vals) != len(b.vals) {
		return false
	}
	for i := range a.keys {
		if a.keys[i] != b.keys[i] {
			return false
		}
	}
	for i := range a.children {
		if a.children[i] != b.children[i] {
			return false
		}
	}
	for i := range a.vals {
		if !bytes.Equal(a.vals[i], b.vals[i]) || a.vers[i] != b.vers[i] || a.tombs[i] != b.tombs[i] {
			return false
		}
	}
	return true
}

func TestPageRoundTrip(t *testing.T) {
	for _, n := range []*node{sampleLeaf(), sampleBranch(), {id: 0, kind: kindLeaf}} {
		buf, err := encodeNode(n, 512)
		if err != nil {
			t.Fatalf("encode node %d: %v", n.id, err)
		}
		if len(buf) != 512 {
			t.Fatalf("encoded %d bytes", len(buf))
		}
		got, err := decodeNode(buf)
		if err != nil {
			t.Fatalf("decode node %d: %v", n.id, err)
		}
		if !nodesEqual(n, got) {
			t.Fatalf("round trip mismatch: %+v vs %+v", n, got)
		}
	}
}

func TestPageEncodeDeterministic(t *testing.T) {
	a, err := encodeNode(sampleLeaf(), 512)
	if err != nil {
		t.Fatal(err)
	}
	b, err := encodeNode(sampleLeaf(), 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same logical content produced different page bytes")
	}
}

func TestPageRejectsOversize(t *testing.T) {
	n := sampleLeaf()
	if _, err := encodeNode(n, headerLen+n.size-1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize node accepted: %v", err)
	}
}

// TestPageRejectsCorruption flips every byte of the meaningful prefix and
// expects the decoder to reject each mutation — nothing inside the CRC'd
// region may change silently.
func TestPageRejectsCorruption(t *testing.T) {
	n := sampleLeaf()
	buf, err := encodeNode(n, 256)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < headerLen+n.size; off++ {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 0xFF
		if _, err := decodeNode(mut); err == nil {
			t.Fatalf("flip at byte %d accepted", off)
		}
	}
	if _, err := decodeNode(buf[:headerLen-1]); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestPageRejectsStructuralLies(t *testing.T) {
	// A page whose CRC is valid but whose cells lie structurally: out of
	// order keys. Build it by hand so the checksum passes.
	n := sampleLeaf()
	n.keys[0], n.keys[1] = n.keys[1], n.keys[0]
	buf, err := encodeNode(n, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeNode(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-order keys accepted: %v", err)
	}

	b := sampleBranch()
	b.keys = b.keys[:0]
	b.children = b.children[:1]
	b.size = branchBaseSize
	buf, err = encodeNode(b, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeNode(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("separator-less branch accepted: %v", err)
	}
}

// FuzzBtreePageRoundTrip drives the codec both ways: arbitrary bytes must
// never panic the decoder, and any page it accepts must re-encode to an
// image that decodes to the same node. A second arm builds a leaf from the
// fuzz input and checks the encode→decode round trip exactly.
func FuzzBtreePageRoundTrip(f *testing.F) {
	if leaf, err := encodeNode(sampleLeaf(), 128); err == nil {
		f.Add(leaf)
	}
	if br, err := encodeNode(sampleBranch(), 128); err == nil {
		f.Add(br)
	}
	f.Add(make([]byte, headerLen))
	f.Add([]byte("XBTP junk that is not a page at all, just prose"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if n, err := decodeNode(data); err == nil {
			size := headerLen + n.size
			if size < len(data) {
				size = len(data)
			}
			re, err := encodeNode(n, size)
			if err != nil {
				t.Fatalf("accepted page failed to re-encode: %v", err)
			}
			n2, err := decodeNode(re)
			if err != nil {
				t.Fatalf("re-encoded page rejected: %v", err)
			}
			if !nodesEqual(n, n2) {
				t.Fatalf("decode/encode/decode drifted: %+v vs %+v", n, n2)
			}
		}

		// Arm two: interpret the input as leaf entries and round-trip them.
		n := &node{id: 1, kind: kindLeaf}
		prev := ""
		for off := 0; off+2 <= len(data) && len(n.keys) < 64; {
			kl := int(data[off]%8) + 1
			vl := int(data[off+1] % 32)
			off += 2
			if off+kl+vl > len(data) {
				break
			}
			key := prev + string(data[off:off+kl]) // strictly longer ⇒ strictly greater
			val := append([]byte(nil), data[off+kl:off+kl+vl]...)
			off += kl + vl
			n.keys = append(n.keys, key)
			n.vals = append(n.vals, val)
			n.vers = append(n.vers, int64(binary.LittleEndian.Uint16(data[off-2:off])))
			n.tombs = append(n.tombs, kl%2 == 0)
			n.size += leafCellSize(key, val)
			prev = key
		}
		pageSize := headerLen + n.size + 16
		img, err := encodeNode(n, pageSize)
		if err != nil {
			t.Fatalf("synthetic leaf rejected: %v", err)
		}
		got, err := decodeNode(img)
		if err != nil {
			t.Fatalf("synthetic leaf image rejected: %v", err)
		}
		if !nodesEqual(n, got) {
			t.Fatalf("synthetic leaf drifted through codec")
		}
	})
}
