package btree

import (
	"fmt"
	"sort"

	"xssd/internal/sim"
)

// Item is one stored row: the writer's version, the value bytes, and the
// tombstone flag (a deleted row keeps its version so optimistic
// validation still detects conflicts against reads of the absent row).
type Item struct {
	Ver  int64
	Val  []byte
	Tomb bool
}

// Tree is one B+tree keyed by string, rooted at a pager page. All
// methods run on the calling simulated process; only pager misses and
// checkpoint writes spend virtual time. Values returned by Get and Scan
// alias the cached page — callers must treat them as read-only.
type Tree struct {
	pg   *Pager
	root uint64
}

// New allocates an empty tree (a fresh root leaf) on pg.
func New(pg *Pager) *Tree {
	f := pg.alloc(kindLeaf)
	pg.unpin(f)
	return &Tree{pg: pg, root: f.id}
}

// Open attaches to an existing tree by root page id (recovery).
func Open(pg *Pager, root uint64) *Tree { return &Tree{pg: pg, root: root} }

// Root returns the current root page id (checkpoints record it).
func (t *Tree) Root() uint64 { return t.root }

// route returns the child index separators send key to: the number of
// separators <= key (a separator is the smallest key of its right
// subtree, so equality routes right).
func route(keys []string, key string) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > key })
}

// Get looks key up. found is true for tombstones too — the caller
// distinguishes via Item.Tomb.
func (t *Tree) Get(p *sim.Proc, key string) (Item, bool, error) {
	id := t.root
	for {
		f, err := t.pg.fetch(p, id)
		if err != nil {
			return Item{}, false, err
		}
		n := f.n
		if n.kind == kindBranch {
			id = n.children[route(n.keys, key)]
			t.pg.unpin(f)
			continue
		}
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			it := Item{Ver: n.vers[i], Val: n.vals[i], Tomb: n.tombs[i]}
			t.pg.unpin(f)
			return it, true, nil
		}
		t.pg.unpin(f)
		return Item{}, false, nil
	}
}

// Put inserts or replaces key with it, stamping touched pages with lsn
// (the end LSN of the redo record carrying this write).
func (t *Tree) Put(p *sim.Proc, key string, it Item, lsn int64) error {
	if leafCellSize(key, it.Val) > t.pg.maxCell() || branchCellSize(key)*4 > t.pg.maxCell() {
		// The branch bound guarantees every overflowing branch holds at
		// least four separators, so a split always leaves a valid key on
		// both sides.
		return fmt.Errorf("%w: key %q with %d-byte value", ErrTooLarge, key, len(it.Val))
	}
	f, err := t.pg.fetch(p, t.root)
	if err != nil {
		return err
	}
	sep, right, split, err := t.insert(p, f, key, it, lsn)
	if err != nil {
		t.pg.unpin(f)
		return err
	}
	if split {
		nr := t.pg.alloc(kindBranch)
		nr.n.keys = []string{sep}
		nr.n.children = []uint64{t.root, right}
		nr.n.size = branchBaseSize + branchCellSize(sep)
		t.pg.markDirty(nr, lsn)
		t.root = nr.id
		t.pg.unpin(nr)
	}
	t.pg.unpin(f)
	return nil
}

// insert descends from f (pinned by the caller); on overflow the node
// splits and the new right sibling's id plus its separator bubble up.
func (t *Tree) insert(p *sim.Proc, f *frame, key string, it Item, lsn int64) (sep string, right uint64, split bool, err error) {
	n := f.n
	if n.kind == kindLeaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.size += leafCellSize(key, it.Val) - leafCellSize(key, n.vals[i])
			n.vers[i], n.vals[i], n.tombs[i] = it.Ver, it.Val, it.Tomb
		} else {
			n.keys = append(n.keys, "")
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			n.vers = append(n.vers, 0)
			copy(n.vers[i+1:], n.vers[i:])
			n.vers[i] = it.Ver
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = it.Val
			n.tombs = append(n.tombs, false)
			copy(n.tombs[i+1:], n.tombs[i:])
			n.tombs[i] = it.Tomb
			n.size += leafCellSize(key, it.Val)
		}
		t.pg.markDirty(f, lsn)
		if n.size > t.pg.maxCell() {
			return t.splitLeaf(f, lsn)
		}
		return "", 0, false, nil
	}

	j := route(n.keys, key)
	cf, err := t.pg.fetch(p, n.children[j])
	if err != nil {
		return "", 0, false, err
	}
	csep, cright, csplit, err := t.insert(p, cf, key, it, lsn)
	if err != nil {
		t.pg.unpin(cf)
		return "", 0, false, err
	}
	if !csplit {
		// An update-in-place can shrink the child below the fill floor;
		// restore occupancy exactly like the remove path does.
		if err := t.maybeMerge(p, f, j, cf, lsn); err != nil {
			return "", 0, false, err
		}
		return "", 0, false, nil
	}
	t.pg.unpin(cf)
	n.keys = append(n.keys, "")
	copy(n.keys[j+1:], n.keys[j:])
	n.keys[j] = csep
	n.children = append(n.children, 0)
	copy(n.children[j+2:], n.children[j+1:])
	n.children[j+1] = cright
	n.size += branchCellSize(csep)
	t.pg.markDirty(f, lsn)
	// A byte-skewed split can leave an underfull half; settle the pairs at
	// the split point's outer edges before deciding whether f itself
	// splits. The inner pair (j, j+1) sums over a full page and never
	// merges, so the two fixups cannot interfere with each other.
	if err := t.fixupPair(p, f, j+1, lsn); err != nil {
		return "", 0, false, err
	}
	if err := t.fixupPair(p, f, j, lsn); err != nil {
		return "", 0, false, err
	}
	if n.size > t.pg.maxCell() {
		return t.splitBranch(f, lsn)
	}
	return "", 0, false, nil
}

// splitLeaf moves the upper half (by bytes) of f into a fresh right
// sibling; the separator is the right sibling's first key.
func (t *Tree) splitLeaf(f *frame, lsn int64) (string, uint64, bool, error) {
	n := f.n
	half := n.size / 2
	acc, sp := 0, 0
	for sp = 0; sp < len(n.keys)-1; sp++ {
		acc += leafCellSize(n.keys[sp], n.vals[sp])
		if acc >= half {
			sp++
			break
		}
	}
	if sp == 0 {
		sp = 1
	}
	rf := t.pg.alloc(kindLeaf)
	r := rf.n
	r.keys = append(r.keys, n.keys[sp:]...)
	r.vers = append(r.vers, n.vers[sp:]...)
	r.vals = append(r.vals, n.vals[sp:]...)
	r.tombs = append(r.tombs, n.tombs[sp:]...)
	for i := sp; i < len(n.keys); i++ {
		r.size += leafCellSize(n.keys[i], n.vals[i])
	}
	n.keys = n.keys[:sp]
	n.vers = n.vers[:sp]
	n.vals = n.vals[:sp]
	n.tombs = n.tombs[:sp]
	n.size -= r.size
	t.pg.markDirty(f, lsn)
	t.pg.markDirty(rf, lsn)
	sep := r.keys[0]
	id := rf.id
	t.pg.unpin(rf)
	return sep, id, true, nil
}

// splitBranch promotes the separator closest to the byte midpoint and
// moves everything to its right into a fresh sibling — splitting by
// bytes, not by count, keeps both halves above the fill floor even with
// skewed key lengths.
func (t *Tree) splitBranch(f *frame, lsn int64) (string, uint64, bool, error) {
	n := f.n
	half := (n.size - branchBaseSize) / 2
	acc, m := 0, 0
	for m = 0; m < len(n.keys)-2; m++ {
		acc += branchCellSize(n.keys[m])
		if acc >= half {
			break
		}
	}
	if m == 0 {
		m = 1
	}
	sep := n.keys[m]
	rf := t.pg.alloc(kindBranch)
	r := rf.n
	r.keys = append(r.keys, n.keys[m+1:]...)
	r.children = append(r.children, n.children[m+1:]...)
	for _, k := range r.keys {
		r.size += branchCellSize(k)
	}
	n.keys = n.keys[:m]
	n.children = n.children[:m+1]
	n.size -= r.size - branchBaseSize + branchCellSize(sep)
	t.pg.markDirty(f, lsn)
	t.pg.markDirty(rf, lsn)
	id := rf.id
	t.pg.unpin(rf)
	return sep, id, true, nil
}

// Remove physically deletes key (distinct from a tombstone Put: the
// entry leaves the page, so nodes can underflow and merge).
func (t *Tree) Remove(p *sim.Proc, key string, lsn int64) (bool, error) {
	f, err := t.pg.fetch(p, t.root)
	if err != nil {
		return false, err
	}
	removed, err := t.remove(p, f, key, lsn)
	if err != nil {
		t.pg.unpin(f)
		return false, err
	}
	// Root collapse: a branch root left with a single child hands the
	// root role down.
	for f.n.kind == kindBranch && len(f.n.keys) == 0 {
		child := f.n.children[0]
		t.pg.unpin(f)
		t.pg.free(f)
		t.root = child
		if f, err = t.pg.fetch(p, child); err != nil {
			return removed, err
		}
	}
	t.pg.unpin(f)
	return removed, nil
}

func (t *Tree) remove(p *sim.Proc, f *frame, key string, lsn int64) (bool, error) {
	n := f.n
	if n.kind == kindLeaf {
		i := sort.SearchStrings(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			return false, nil
		}
		n.size -= leafCellSize(key, n.vals[i])
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vers = append(n.vers[:i], n.vers[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		n.tombs = append(n.tombs[:i], n.tombs[i+1:]...)
		t.pg.markDirty(f, lsn)
		return true, nil
	}
	j := route(n.keys, key)
	cf, err := t.pg.fetch(p, n.children[j])
	if err != nil {
		return false, err
	}
	removed, err := t.remove(p, cf, key, lsn)
	if err != nil {
		t.pg.unpin(cf)
		return false, err
	}
	if err := t.maybeMerge(p, f, j, cf, lsn); err != nil {
		return removed, err
	}
	return removed, nil
}

// mergedSize is the cell-area size of merging left and right siblings of
// the given kind under separator sep (branch merges pull the separator
// down; leaf merges just concatenate).
func mergedSize(kind byte, left, right int, sep string) int {
	if kind == kindBranch {
		return left + right - branchBaseSize + branchCellSize(sep)
	}
	return left + right
}

// maybeMerge restores the fill floor around f's j-th child cf (pinned;
// this call consumes the pin). A pair of adjacent siblings merges when
// either one is below minFill and the combined node stays under
// mergeLimit — checking both directions from cf covers the node that
// shrank and a neighbor that was already underfull and just became
// absorbable. Merges cascade until cf's pairs are all settled.
func (t *Tree) maybeMerge(p *sim.Proc, f *frame, j int, cf *frame, lsn int64) error {
	minFill := t.pg.maxCell() / 4
	limit := 3 * t.pg.maxCell() / 4
	n := f.n
	for {
		merged := false
		if j > 0 {
			lf, err := t.pg.fetch(p, n.children[j-1])
			if err != nil {
				t.pg.unpin(cf)
				return err
			}
			if (cf.n.size < minFill || lf.n.size < minFill) &&
				mergedSize(cf.n.kind, lf.n.size, cf.n.size, n.keys[j-1]) <= limit {
				if err := t.mergeInto(p, f, j-1, lf, cf, lsn); err != nil {
					t.pg.unpin(lf)
					return err
				}
				cf, j = lf, j-1
				merged = true
			} else {
				t.pg.unpin(lf)
			}
		}
		if j+1 < len(n.children) {
			rf, err := t.pg.fetch(p, n.children[j+1])
			if err != nil {
				t.pg.unpin(cf)
				return err
			}
			if (cf.n.size < minFill || rf.n.size < minFill) &&
				mergedSize(cf.n.kind, cf.n.size, rf.n.size, n.keys[j]) <= limit {
				if err := t.mergeInto(p, f, j, cf, rf, lsn); err != nil {
					t.pg.unpin(cf)
					return err
				}
				merged = true
			} else {
				t.pg.unpin(rf)
			}
		}
		if !merged {
			break
		}
	}
	t.pg.unpin(cf)
	return nil
}

// fixupPair runs maybeMerge for f's idx-th child: a split can leave an
// underfull half whose outer neighbor pair now fits in one node.
func (t *Tree) fixupPair(p *sim.Proc, f *frame, idx int, lsn int64) error {
	if idx < 0 || idx >= len(f.n.children) {
		return nil
	}
	cf, err := t.pg.fetch(p, f.n.children[idx])
	if err != nil {
		return err
	}
	return t.maybeMerge(p, f, idx, cf, lsn)
}

// mergeInto folds right into left (children j and j+1 of parent f),
// removes the separator between them, and frees right. Consumes right's
// fetch pin; the caller keeps left's.
func (t *Tree) mergeInto(p *sim.Proc, f *frame, j int, left, right *frame, lsn int64) error {
	sep := f.n.keys[j]
	l, r := left.n, right.n
	seam := len(l.children)
	if l.kind == kindBranch {
		l.keys = append(l.keys, sep)
		l.keys = append(l.keys, r.keys...)
		l.children = append(l.children, r.children...)
		l.size = mergedSize(kindBranch, l.size, r.size, sep)
	} else {
		l.keys = append(l.keys, r.keys...)
		l.vers = append(l.vers, r.vers...)
		l.vals = append(l.vals, r.vals...)
		l.tombs = append(l.tombs, r.tombs...)
		l.size += r.size
	}
	f.n.keys = append(f.n.keys[:j], f.n.keys[j+1:]...)
	f.n.children = append(f.n.children[:j+1], f.n.children[j+2:]...)
	f.n.size -= branchCellSize(sep)
	t.pg.markDirty(left, lsn)
	t.pg.markDirty(f, lsn)
	t.pg.unpin(right)
	t.pg.free(right)
	if l.kind == kindBranch {
		// Concatenating the child lists created one brand-new adjacency
		// across the seam; that pair has never been checked against the
		// fill floor, so settle it now.
		return t.fixupPair(p, left, seam, lsn)
	}
	return nil
}

// Scan visits every entry (tombstones included) in key order until fn
// returns false.
func (t *Tree) Scan(p *sim.Proc, fn func(key string, it Item) bool) error {
	_, err := t.scan(p, t.root, fn)
	return err
}

func (t *Tree) scan(p *sim.Proc, id uint64, fn func(key string, it Item) bool) (bool, error) {
	f, err := t.pg.fetch(p, id)
	if err != nil {
		return false, err
	}
	n := f.n
	if n.kind == kindLeaf {
		for i, k := range n.keys {
			if !fn(k, Item{Ver: n.vers[i], Val: n.vals[i], Tomb: n.tombs[i]}) {
				t.pg.unpin(f)
				return false, nil
			}
		}
		t.pg.unpin(f)
		return true, nil
	}
	for _, c := range n.children {
		cont, err := t.scan(p, c, fn)
		if err != nil || !cont {
			t.pg.unpin(f)
			return cont, err
		}
	}
	t.pg.unpin(f)
	return true, nil
}

// CheckInvariants walks the whole tree and verifies structure: sorted
// keys, separator bounds, equal leaf depth, exact size accounting, no
// overflow, and the occupancy floor (a non-root node under minFill must
// have no sibling it could merge with).
func (t *Tree) CheckInvariants(p *sim.Proc) error {
	leafDepth := -1
	_, err := t.check(p, t.root, 0, &leafDepth, "", false, "", false, true)
	return err
}

func (t *Tree) check(p *sim.Proc, id uint64, depth int, leafDepth *int, lo string, haveLo bool, hi string, haveHi bool, isRoot bool) (int, error) {
	f, err := t.pg.fetch(p, id)
	if err != nil {
		return 0, err
	}
	defer t.pg.unpin(f)
	n := f.n
	for i, k := range n.keys {
		if i > 0 && k <= n.keys[i-1] {
			return 0, fmt.Errorf("btree: node %d keys out of order at %d", id, i)
		}
		if haveLo && k < lo {
			return 0, fmt.Errorf("btree: node %d key %q under bound %q", id, k, lo)
		}
		if haveHi && k >= hi {
			return 0, fmt.Errorf("btree: node %d key %q over bound %q", id, k, hi)
		}
	}
	size := 0
	if n.kind == kindLeaf {
		if *leafDepth == -1 {
			*leafDepth = depth
		} else if depth != *leafDepth {
			return 0, fmt.Errorf("btree: leaf %d at depth %d, want %d", id, depth, *leafDepth)
		}
		for i := range n.keys {
			size += leafCellSize(n.keys[i], n.vals[i])
		}
	} else {
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("btree: branch %d has %d children for %d keys", id, len(n.children), len(n.keys))
		}
		if len(n.keys) == 0 && !isRoot {
			return 0, fmt.Errorf("btree: non-root branch %d is empty", id)
		}
		size = branchBaseSize
		for _, k := range n.keys {
			size += branchCellSize(k)
		}
		sizes := make([]int, len(n.children))
		kinds := byte(0)
		for i, c := range n.children {
			clo, chaveLo := lo, haveLo
			chi, chaveHi := hi, haveHi
			if i > 0 {
				clo, chaveLo = n.keys[i-1], true
			}
			if i < len(n.keys) {
				chi, chaveHi = n.keys[i], true
			}
			cs, err := t.check(p, c, depth+1, leafDepth, clo, chaveLo, chi, chaveHi, false)
			if err != nil {
				return 0, err
			}
			sizes[i] = cs
			ck, err := t.childKind(p, c)
			if err != nil {
				return 0, err
			}
			kinds = ck
		}
		minFill := t.pg.maxCell() / 4
		limit := 3 * t.pg.maxCell() / 4
		for i, cs := range sizes {
			if cs >= minFill {
				continue
			}
			if i > 0 && mergedSize(kinds, sizes[i-1], cs, n.keys[i-1]) <= limit {
				return 0, fmt.Errorf("btree: child %d of branch %d underfull (%d) with mergeable left sibling", i, id, cs)
			}
			if i+1 < len(sizes) && mergedSize(kinds, cs, sizes[i+1], n.keys[i]) <= limit {
				return 0, fmt.Errorf("btree: child %d of branch %d underfull (%d) with mergeable right sibling", i, id, cs)
			}
		}
	}
	if size != n.size {
		return 0, fmt.Errorf("btree: node %d tracked size %d, actual %d", id, n.size, size)
	}
	if size > t.pg.maxCell() {
		return 0, fmt.Errorf("btree: node %d size %d over cell budget %d", id, size, t.pg.maxCell())
	}
	return size, nil
}

func (t *Tree) childKind(p *sim.Proc, id uint64) (byte, error) {
	f, err := t.pg.fetch(p, id)
	if err != nil {
		return 0, err
	}
	k := f.n.kind
	t.pg.unpin(f)
	return k, nil
}
