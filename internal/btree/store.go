package btree

import (
	"errors"
	"fmt"

	"xssd/internal/nvme"
	"xssd/internal/sim"
	"xssd/internal/villars"
)

// ErrStore wraps every backing-store failure (NVMe error status, slot out
// of range, silent controller write loss). Match with errors.Is.
var ErrStore = errors.New("btree: page store")

// PageStore is the backing medium the Pager reads and writes page slots
// against. Slot s holds one page image; the shadow-slot scheme above maps
// page id p to slots 2p and 2p+1. Read and Write take the calling
// simulated process for stores that spend virtual time (DeviceStore);
// MemStore accepts a nil proc.
type PageStore interface {
	// PageSize returns the fixed image size in bytes.
	PageSize() int
	// Slots returns the store capacity in page slots.
	Slots() int64
	// Read fills buf (PageSize bytes) with slot's image.
	Read(p *sim.Proc, slot int64, buf []byte) error
	// Write persists data (PageSize bytes) as slot's image.
	Write(p *sim.Proc, slot int64, data []byte) error
	// WriteBatch persists images[i] at slots[i]. Stores with an async
	// command interface pipeline the writes; the call returns when all
	// are acknowledged.
	WriteBatch(p *sim.Proc, slots []int64, images [][]byte) error
	// Sync makes every acknowledged write durable on the medium and
	// fails if any earlier write was silently lost.
	Sync(p *sim.Proc) error
}

// MemStore is an in-memory PageStore for oracles and tests: reads and
// writes are immediate and spend no virtual time, so a nil proc is fine.
type MemStore struct {
	pageSize int
	slots    map[int64][]byte
	cap      int64
}

// NewMemStore creates a memory store of cap slots of pageSize bytes.
func NewMemStore(pageSize int, cap int64) *MemStore {
	return &MemStore{pageSize: pageSize, slots: map[int64][]byte{}, cap: cap}
}

// PageSize implements PageStore.
func (s *MemStore) PageSize() int { return s.pageSize }

// Slots implements PageStore.
func (s *MemStore) Slots() int64 { return s.cap }

// Read implements PageStore.
func (s *MemStore) Read(_ *sim.Proc, slot int64, buf []byte) error {
	img, ok := s.slots[slot]
	if !ok {
		return fmt.Errorf("%w: read of never-written slot %d", ErrStore, slot)
	}
	copy(buf, img)
	return nil
}

// Write implements PageStore.
func (s *MemStore) Write(_ *sim.Proc, slot int64, data []byte) error {
	if slot < 0 || slot >= s.cap {
		return fmt.Errorf("%w: write slot %d out of range %d", ErrStore, slot, s.cap)
	}
	if len(data) != s.pageSize {
		return fmt.Errorf("%w: write of %d bytes, page size %d", ErrStore, len(data), s.pageSize)
	}
	s.slots[slot] = append([]byte(nil), data...)
	return nil
}

// WriteBatch implements PageStore.
func (s *MemStore) WriteBatch(p *sim.Proc, slots []int64, images [][]byte) error {
	for i, slot := range slots {
		if err := s.Write(p, slot, images[i]); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements PageStore (memory is always durable).
func (s *MemStore) Sync(*sim.Proc) error { return nil }

// deviceBatchWindow bounds how many checkpoint page writes a DeviceStore
// keeps in flight, and equals the number of DMA staging slots its scratch
// region is carved into.
const deviceBatchWindow = 8

// DeviceScratchSize returns how many bytes of host memory a DeviceStore
// over pageSize-byte pages needs for DMA staging (deviceBatchWindow page
// slots) — what the caller must reserve at the scratch offset it passes
// to NewDeviceStore.
func DeviceScratchSize(pageSize int) int64 {
	return int64(deviceBatchWindow) * int64(pageSize)
}

// DeviceStore is a PageStore on the conventional side of a Villars
// device: page slots map 1:1 onto an LBA range reserved above the
// destage rings (Device.AllocLBARange), commands travel through the
// normal NVMe host driver, and Sync issues a Flush and then checks the
// controller's error counter so a background cache write the device
// dropped on the floor fails the checkpoint instead of corrupting it.
//
// A DeviceStore serializes its commands: host-memory DMA staging is
// shared, so two simulated processes must not overlap operations. The
// internal gate keeps callers honest without burdening them.
type DeviceStore struct {
	dev     *villars.Device
	driver  *nvme.Driver
	scratch int64 // DMA staging base in host memory: deviceBatchWindow page slots
	base    int64 // first LBA of the slot range
	slots   int64

	busy     bool
	free     *sim.Signal
	lastErrs int64 // controller error count at the last successful Sync
}

// NewDeviceStore maps slots page slots starting at LBA base of dev, with
// DMA staging at byte offset scratch of the device's host memory (the
// caller reserves deviceBatchWindow pages there).
func NewDeviceStore(dev *villars.Device, base, slots, scratch int64) *DeviceStore {
	s := &DeviceStore{
		dev:     dev,
		driver:  dev.HostDriver(),
		scratch: scratch,
		base:    base,
		slots:   slots,
		free:    dev.Env().NewSignal(),
	}
	_, _, _, _, s.lastErrs = dev.ControllerStats()
	return s
}

// PageSize implements PageStore: one page per device block.
func (s *DeviceStore) PageSize() int { return s.dev.BlockSize() }

// Slots implements PageStore.
func (s *DeviceStore) Slots() int64 { return s.slots }

func (s *DeviceStore) acquire(p *sim.Proc) {
	if p == nil {
		panic("btree: DeviceStore operation without a process context")
	}
	p.WaitFor(s.free, func() bool { return !s.busy })
	s.busy = true
}

func (s *DeviceStore) release() {
	s.busy = false
	s.free.Broadcast()
}

func (s *DeviceStore) checkSlot(slot int64) error {
	if slot < 0 || slot >= s.slots {
		return fmt.Errorf("%w: slot %d out of range %d", ErrStore, slot, s.slots)
	}
	return nil
}

// Read implements PageStore: one NVMe read DMAed into the staging area.
func (s *DeviceStore) Read(p *sim.Proc, slot int64, buf []byte) error {
	if err := s.checkSlot(slot); err != nil {
		return err
	}
	s.acquire(p)
	defer s.release()
	c := s.driver.Submit(p, nvme.Command{Opcode: nvme.OpRead, LBA: s.base + slot, Blocks: 1, PRP: s.scratch})
	if c.Status != nvme.StatusSuccess {
		return fmt.Errorf("%w: NVMe read slot %d (lba %d): status %d", ErrStore, slot, s.base+slot, c.Status)
	}
	copy(buf, s.dev.HostMemory().Bytes()[s.scratch:s.scratch+int64(s.PageSize())])
	return nil
}

// Write implements PageStore: one NVMe write from the staging area.
func (s *DeviceStore) Write(p *sim.Proc, slot int64, data []byte) error {
	return s.WriteBatch(p, []int64{slot}, [][]byte{data})
}

// WriteBatch implements PageStore: up to deviceBatchWindow writes ride
// the submission queue together, each from its own staging slot, so a
// checkpoint's page walk overlaps firmware and flash-program latency
// instead of paying it per page.
func (s *DeviceStore) WriteBatch(p *sim.Proc, slots []int64, images [][]byte) error {
	ps := int64(s.PageSize())
	for start := 0; start < len(slots); start += deviceBatchWindow {
		end := start + deviceBatchWindow
		if end > len(slots) {
			end = len(slots)
		}
		// The gate is taken per window, not per batch: tree fetches from
		// other processes interleave between windows, keeping the
		// checkpoint walk fuzzy for readers too.
		s.acquire(p)
		toks := make([]nvme.Token, 0, end-start)
		for i := start; i < end; i++ {
			if err := s.checkSlot(slots[i]); err != nil {
				s.release()
				return err
			}
			if len(images[i]) != int(ps) {
				s.release()
				return fmt.Errorf("%w: write of %d bytes, page size %d", ErrStore, len(images[i]), ps)
			}
			stage := s.scratch + int64(i-start)*ps
			copy(s.dev.HostMemory().Bytes()[stage:], images[i])
			toks = append(toks, s.driver.SubmitAsync(p, 0, nvme.Command{
				Opcode: nvme.OpWrite, LBA: s.base + slots[i], Blocks: 1, PRP: stage,
			}))
		}
		var werr error
		for i, tok := range toks {
			if c := s.driver.Wait(p, tok); c.Status != nvme.StatusSuccess && werr == nil {
				werr = fmt.Errorf("%w: NVMe write slot %d: status %d", ErrStore, slots[start+i], c.Status)
			}
		}
		s.release()
		if werr != nil {
			return werr
		}
	}
	return nil
}

// Sync implements PageStore: flush the controller's write cache, then
// compare its error counter against the last sync — the background cache
// writes only count errors, they never fail the original command, so the
// delta is the one signal that an acknowledged page write was lost.
func (s *DeviceStore) Sync(p *sim.Proc) error {
	s.acquire(p)
	defer s.release()
	c := s.driver.Submit(p, nvme.Command{Opcode: nvme.OpFlush})
	if c.Status != nvme.StatusSuccess {
		return fmt.Errorf("%w: NVMe flush: status %d", ErrStore, c.Status)
	}
	_, _, _, _, errs := s.dev.ControllerStats()
	if errs != s.lastErrs {
		delta := errs - s.lastErrs
		s.lastErrs = errs
		return fmt.Errorf("%w: %d controller errors since last sync (lost background writes)", ErrStore, delta)
	}
	return nil
}
