package btree

import (
	"fmt"
	"sort"

	"xssd/internal/obs"
	"xssd/internal/sim"
)

// Config parameterizes a Pager.
type Config struct {
	// PoolPages is the soft cap on resident frames. Eviction only removes
	// clean, unpinned frames, so a burst of dirty pages grows the pool
	// past the cap until a checkpoint cleans them (no-steal policy: a
	// dirty page is never written back outside a checkpoint, which is
	// what keeps the on-store image set consistent). 0 means 64.
	PoolPages int
	// Scope registers pager instruments (reads, writes, hits, misses,
	// evictions, resident/dirty gauges). The zero Scope keeps the pager
	// silent — recovery oracles must not pollute live metrics snapshots.
	Scope obs.Scope
}

// PageImage is one encoded page captured by a checkpoint snapshot:
// the page bytes as of the snapshot instant, the slot parity they must
// be written to, and the page's recovery LSN (already encoded in Data,
// duplicated here for tests and invariant checks).
type PageImage struct {
	ID     uint64
	LSN    int64
	Parity uint8
	Data   []byte
}

// Snapshot is the atomic state a checkpoint captures: every dirty page
// encoded, plus the allocation state (NextID, Free) and the slot parity
// each live page's recovery image sits at once this checkpoint's writes
// land. All of it is captured in zero virtual time, so it is a
// consistent cut of the tree.
type Snapshot struct {
	Images []PageImage // sorted by ID
	NextID uint64
	Free   []uint64 // sorted
	Parity []uint8  // indexed by page id < NextID
}

// frame is one resident page.
type frame struct {
	id         uint64
	n          *node
	dirty      bool
	pins       int
	prev, next *frame // LRU list, most-recent at head
}

// Pager is the buffer pool: it caches decoded pages, tracks dirty state,
// allocates and frees page ids, and maps ids to shadow slots. It is not
// a process itself — every method runs on the calling simulated process,
// and only store I/O takes virtual time.
type Pager struct {
	store PageStore
	pool  int

	frames     map[uint64]*frame
	head, tail *frame
	resident   int
	dirtyN     int

	nextID  uint64
	freeIDs []uint64 // sorted ascending; allocation pops the smallest

	// committed[id] is the slot parity of id's image as referenced by the
	// last complete checkpoint — the recovery truth, never overwritten by
	// an in-flight checkpoint. live[id] is the parity of the latest
	// written image — what an eviction re-read must use. They diverge
	// exactly while a checkpoint is in flight or after one aborted.
	committed []uint8
	live      []uint8

	// pendingRewrite holds every image captured by a snapshot whose
	// checkpoint has not committed yet: from the instant a dirty frame
	// goes clean its newest content exists only here (the store's live
	// slot is one checkpoint behind until WriteImages lands — and not
	// trustworthy at all if the checkpoint aborts), so a fetch miss must
	// serve these from memory. CommitCheckpoint clears them; after an
	// abort they stay, which is also what feeds them into the next
	// snapshot even if their frames were since evicted.
	pendingRewrite map[uint64]PageImage

	readBuf []byte

	mReads, mWrites, mHits, mMisses, mEvicts *obs.Counter
}

// NewPager builds a pager over store.
func NewPager(store PageStore, cfg Config) *Pager {
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 64
	}
	pg := &Pager{
		store:          store,
		pool:           cfg.PoolPages,
		frames:         map[uint64]*frame{},
		pendingRewrite: map[uint64]PageImage{},
		readBuf:        make([]byte, store.PageSize()),
	}
	sc := cfg.Scope
	pg.mReads = sc.Counter("reads")
	pg.mWrites = sc.Counter("writes")
	pg.mHits = sc.Counter("hits")
	pg.mMisses = sc.Counter("misses")
	pg.mEvicts = sc.Counter("evictions")
	sc.GaugeFunc("resident", func() int64 { return int64(pg.resident) })
	sc.GaugeFunc("dirty", func() int64 { return int64(pg.dirtyN) })
	return pg
}

// PageSize returns the store's page size.
func (pg *Pager) PageSize() int { return pg.store.PageSize() }

// maxCell is the usable cell-area budget per page.
func (pg *Pager) maxCell() int { return pg.store.PageSize() - headerLen }

// DirtyPages returns the current dirty-frame count (tests and gauges).
func (pg *Pager) DirtyPages() int { return pg.dirtyN }

// Resident returns the resident-frame count.
func (pg *Pager) Resident() int { return pg.resident }

// --- LRU list ---------------------------------------------------------------

func (pg *Pager) unlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		pg.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		pg.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (pg *Pager) pushFront(f *frame) {
	f.next = pg.head
	if pg.head != nil {
		pg.head.prev = f
	}
	pg.head = f
	if pg.tail == nil {
		pg.tail = f
	}
}

// touch moves a hit frame to the head of the recency list.
//
//xssd:hotpath
func (pg *Pager) touch(f *frame) {
	if pg.head == f {
		return
	}
	pg.unlink(f)
	pg.pushFront(f)
}

// evict removes clean, unpinned frames from the cold end until the pool
// is back under its cap (or nothing else is evictable — dirty and pinned
// frames over-commit the pool by design).
func (pg *Pager) evict() {
	f := pg.tail
	for pg.resident > pg.pool && f != nil {
		prev := f.prev
		if !f.dirty && f.pins == 0 {
			pg.unlink(f)
			delete(pg.frames, f.id)
			pg.resident--
			pg.mEvicts.Inc()
		}
		f = prev
	}
}

// --- frame access -----------------------------------------------------------

// fetch returns the frame for id, pinned; the caller must unpin it. A
// miss reads the live slot through the store (which may yield) and may
// evict cold clean frames to make room.
func (pg *Pager) fetch(p *sim.Proc, id uint64) (*frame, error) {
	if f, ok := pg.frames[id]; ok {
		pg.mHits.Inc()
		pg.touch(f)
		f.pins++
		return f, nil
	}
	pg.mMisses.Inc()
	if id >= pg.nextID {
		return nil, fmt.Errorf("%w: fetch of unallocated page %d (next id %d)", ErrCorrupt, id, pg.nextID)
	}
	var n *node
	if img, ok := pg.pendingRewrite[id]; ok {
		// The page's newest image belongs to an uncommitted checkpoint:
		// the store's live slot is stale (or mid-write), so decode the
		// captured image instead of reading the device.
		var err error
		if n, err = decodeNode(img.Data); err != nil {
			return nil, fmt.Errorf("btree: fetch page %d (pending image): %w", id, err)
		}
	} else {
		slot := 2*int64(id) + int64(pg.live[id])
		pg.mReads.Inc()
		if err := pg.store.Read(p, slot, pg.readBuf); err != nil {
			return nil, fmt.Errorf("btree: fetch page %d: %w", id, err)
		}
		var err error
		if n, err = decodeNode(pg.readBuf); err != nil {
			return nil, fmt.Errorf("btree: fetch page %d (slot %d): %w", id, slot, err)
		}
	}
	if n.id != id {
		return nil, fmt.Errorf("%w: live image holds page %d, want %d", ErrCorrupt, n.id, id)
	}
	f := &frame{id: id, n: n, pins: 1}
	pg.frames[id] = f
	pg.pushFront(f)
	pg.resident++
	pg.evict()
	return f, nil
}

// unpin releases a fetch pin.
//
//xssd:hotpath
func (pg *Pager) unpin(f *frame) {
	f.pins--
}

// allocID hands out the smallest free id, growing the id space when the
// free list is empty — deterministic, so a WAL tail replay re-allocates
// the same ids in the same order.
func (pg *Pager) allocID() uint64 {
	if len(pg.freeIDs) > 0 {
		id := pg.freeIDs[0]
		pg.freeIDs = pg.freeIDs[1:]
		return id
	}
	id := pg.nextID
	pg.nextID++
	pg.committed = append(pg.committed, 0)
	pg.live = append(pg.live, 0)
	return id
}

// alloc creates a fresh dirty frame of the given kind, pinned.
func (pg *Pager) alloc(kind byte) *frame {
	id := pg.allocID()
	f := &frame{id: id, n: &node{id: id, kind: kind}, dirty: true, pins: 1}
	if kind == kindBranch {
		f.n.size = branchBaseSize
	}
	pg.frames[id] = f
	pg.pushFront(f)
	pg.resident++
	pg.dirtyN++
	return f
}

// free releases a (resident) page id back to the allocator. The slot
// pair keeps its bytes — recovery never reads a freed id, because the
// checkpoint record's free list marks it.
func (pg *Pager) free(f *frame) {
	pg.unlink(f)
	delete(pg.frames, f.id)
	pg.resident--
	if f.dirty {
		pg.dirtyN--
	}
	delete(pg.pendingRewrite, f.id)
	i := sort.Search(len(pg.freeIDs), func(i int) bool { return pg.freeIDs[i] >= f.id })
	pg.freeIDs = append(pg.freeIDs, 0)
	copy(pg.freeIDs[i+1:], pg.freeIDs[i:])
	pg.freeIDs[i] = f.id
}

// markDirty flags a mutated frame and advances its recovery LSN.
//
//xssd:hotpath
func (pg *Pager) markDirty(f *frame, lsn int64) {
	if !f.dirty {
		f.dirty = true
		pg.dirtyN++
	}
	if lsn > f.n.lsn {
		f.n.lsn = lsn
	}
}

// --- checkpoint support -----------------------------------------------------

// SnapshotCheckpoint captures the checkpoint cut: every dirty page (plus
// any image re-queued by an aborted checkpoint) encoded at this instant,
// the allocation state, and the parity map recovery must use once these
// images land. Dirty flags reset here — commits after this instant
// re-dirty pages for the next checkpoint. Runs in zero virtual time.
func (pg *Pager) SnapshotCheckpoint() (Snapshot, error) {
	ids := make([]uint64, 0, pg.dirtyN+len(pg.pendingRewrite))
	for id, f := range pg.frames {
		if f.dirty {
			ids = append(ids, id)
		}
	}
	for id := range pg.pendingRewrite {
		if f, ok := pg.frames[id]; !ok || !f.dirty {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	snap := Snapshot{
		Images: make([]PageImage, 0, len(ids)),
		NextID: pg.nextID,
		Free:   append([]uint64(nil), pg.freeIDs...),
		Parity: append([]uint8(nil), pg.committed...),
	}
	for _, id := range ids {
		var img PageImage
		if f, ok := pg.frames[id]; ok && f.dirty {
			data, err := encodeNode(f.n, pg.store.PageSize())
			if err != nil {
				return Snapshot{}, fmt.Errorf("btree: snapshot page %d: %w", id, err)
			}
			img = PageImage{ID: id, LSN: f.n.lsn, Data: data}
			f.dirty = false
			pg.dirtyN--
		} else {
			// Re-queued from an aborted checkpoint and unchanged since:
			// the stored image is still the page's exact state.
			img = pg.pendingRewrite[id]
		}
		img.Parity = 1 - snap.Parity[id]
		snap.Parity[id] = img.Parity
		snap.Images = append(snap.Images, img)
		// Until this checkpoint commits, the captured image is the only
		// trustworthy copy of the page outside its (now clean, evictable)
		// frame — keep it fetchable.
		pg.pendingRewrite[id] = img
	}
	return snap, nil
}

// WriteImages persists a snapshot's images to their shadow slots (always
// the non-committed slot, so the last complete checkpoint's images
// survive a crash mid-write) and advances the live parity as each lands.
func (pg *Pager) WriteImages(p *sim.Proc, images []PageImage) error {
	slots := make([]int64, len(images))
	datas := make([][]byte, len(images))
	for i, img := range images {
		slots[i] = 2*int64(img.ID) + int64(img.Parity)
		datas[i] = img.Data
	}
	pg.mWrites.Add(int64(len(images)))
	if err := pg.store.WriteBatch(p, slots, datas); err != nil {
		return fmt.Errorf("btree: checkpoint write: %w", err)
	}
	for _, img := range images {
		pg.live[img.ID] = img.Parity
	}
	return nil
}

// Sync makes every written image durable.
func (pg *Pager) Sync(p *sim.Proc) error {
	if err := pg.store.Sync(p); err != nil {
		return fmt.Errorf("btree: checkpoint sync: %w", err)
	}
	return nil
}

// CommitCheckpoint installs a completed checkpoint's parities as the new
// recovery truth. Call only after the checkpoint record is durable.
func (pg *Pager) CommitCheckpoint(snap Snapshot) {
	for _, img := range snap.Images {
		if int(img.ID) < len(pg.committed) {
			pg.committed[img.ID] = img.Parity
		}
		// The written slot is now the durable truth; fetches may trust it
		// again (a freed-and-reallocated id already dropped its entry).
		delete(pg.pendingRewrite, img.ID)
	}
	// The checkpoint turned dirty frames clean; shrink an over-committed
	// pool back toward its cap now instead of waiting for the next miss.
	pg.evict()
}

// AbortCheckpoint abandons an incomplete checkpoint. The snapshot's
// images were registered in pendingRewrite at capture time and stay
// there: fetches keep serving the pages from memory instead of the
// half-written (or silently lost) slots, and the next snapshot carries
// every one forward — re-encoding pages dirtied again since, reusing
// the captured image otherwise — until a checkpoint finally commits.
// Pages freed since the snapshot already dropped their entries.
func (pg *Pager) AbortCheckpoint(snap Snapshot) {}

// Restore installs recovered allocation state: the checkpoint record's
// NextID, free list, and parity map (committed == live at recovery).
func (pg *Pager) Restore(nextID uint64, free []uint64, parity []uint8) {
	pg.nextID = nextID
	pg.freeIDs = append([]uint64(nil), free...)
	sort.Slice(pg.freeIDs, func(i, j int) bool { return pg.freeIDs[i] < pg.freeIDs[j] })
	pg.committed = append([]uint8(nil), parity...)
	pg.live = append([]uint8(nil), parity...)
	for uint64(len(pg.committed)) < nextID {
		pg.committed = append(pg.committed, 0)
		pg.live = append(pg.live, 0)
	}
}
