package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// checkpointCycle runs one full checkpoint against a MemStore-backed
// pager (zero virtual time, nil proc) so frames go clean and become
// evictable mid-test.
func checkpointCycle(t testing.TB, pg *Pager) {
	t.Helper()
	snap, err := pg.SnapshotCheckpoint()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := pg.WriteImages(nil, snap.Images); err != nil {
		t.Fatalf("write images: %v", err)
	}
	if err := pg.Sync(nil); err != nil {
		t.Fatalf("sync: %v", err)
	}
	pg.CommitCheckpoint(snap)
}

func oracleKeys(oracle map[string]Item) []string {
	keys := make([]string, 0, len(oracle))
	for k := range oracle {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// compareWithOracle asserts the tree and the sorted-map oracle hold
// identical contents and that Scan visits them in sorted key order.
func compareWithOracle(tr *Tree, oracle map[string]Item) error {
	var scanned []string
	var serr error
	err := tr.Scan(nil, func(key string, it Item) bool {
		scanned = append(scanned, key)
		want, ok := oracle[key]
		if !ok {
			serr = fmt.Errorf("scan surfaced key %q the oracle lacks", key)
			return false
		}
		if want.Ver != it.Ver || want.Tomb != it.Tomb || string(want.Val) != string(it.Val) {
			serr = fmt.Errorf("key %q: tree {%d %q %v}, oracle {%d %q %v}",
				key, it.Ver, it.Val, it.Tomb, want.Ver, want.Val, want.Tomb)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if serr != nil {
		return serr
	}
	if len(scanned) != len(oracle) {
		return fmt.Errorf("scan saw %d keys, oracle holds %d", len(scanned), len(oracle))
	}
	if !sort.StringsAreSorted(scanned) {
		return fmt.Errorf("scan order not sorted")
	}
	for i, k := range oracleKeys(oracle) {
		if scanned[i] != k {
			return fmt.Errorf("scan position %d: %q, oracle %q", i, scanned[i], k)
		}
	}
	return nil
}

// TestTreeQuickVsOracle is the property suite: random op sequences
// against a sorted-map oracle, with structural invariants (ordering,
// uniform depth, size accounting, occupancy floor) re-checked after every
// mutation so the violating op is pinpointed, not just the end state.
func TestTreeQuickVsOracle(t *testing.T) {
	pageSize := 512
	ops := 400
	maxCount := 30
	if testing.Short() {
		ops, maxCount = 150, 8
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		store := NewMemStore(pageSize, 4096)
		pg := NewPager(store, Config{PoolPages: 8})
		tr := New(pg)
		oracle := map[string]Item{}
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("k%04d", rng.Intn(120))
			switch op := rng.Intn(10); {
			case op < 7: // put (insert, update, or tombstone)
				it := Item{
					Ver:  int64(i + 1),
					Val:  []byte(fmt.Sprintf("v%d-%s", i, string(make([]byte, rng.Intn(120))))),
					Tomb: rng.Intn(8) == 0,
				}
				if err := tr.Put(nil, key, it, int64(i+1)); err != nil {
					t.Logf("seed %d op %d: put: %v", seed, i, err)
					return false
				}
				oracle[key] = it
			case op < 9: // physical remove — the only path that merges
				got, err := tr.Remove(nil, key, int64(i+1))
				if err != nil {
					t.Logf("seed %d op %d: remove: %v", seed, i, err)
					return false
				}
				_, want := oracle[key]
				if got != want {
					t.Logf("seed %d op %d: remove %q returned %v, oracle %v", seed, i, key, got, want)
					return false
				}
				delete(oracle, key)
			default: // point read
				it, ok, err := tr.Get(nil, key)
				if err != nil {
					t.Logf("seed %d op %d: get: %v", seed, i, err)
					return false
				}
				want, wok := oracle[key]
				if ok != wok || (ok && (it.Ver != want.Ver || string(it.Val) != string(want.Val) || it.Tomb != want.Tomb)) {
					t.Logf("seed %d op %d: get %q mismatch", seed, i, key)
					return false
				}
			}
			if err := tr.CheckInvariants(nil); err != nil {
				t.Logf("seed %d op %d: %v", seed, i, err)
				return false
			}
			// Periodic checkpoints clean frames so the tiny pool actually
			// evicts and later fetches exercise the codec path.
			if i%64 == 63 {
				checkpointCycle(t, pg)
			}
		}
		if err := compareWithOracle(tr, oracle); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeSplitAndMergeDepth drives the tree up through repeated splits
// and back down through merges, checking depth transitions and contents.
func TestTreeSplitAndMergeDepth(t *testing.T) {
	store := NewMemStore(256, 65536)
	pg := NewPager(store, Config{PoolPages: 16})
	tr := New(pg)
	const n = 500
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%05d", i*7919%n)
		if err := tr.Put(nil, key, Item{Ver: int64(i + 1), Val: []byte("xxxxxxxxxxxxxxxx")}, int64(i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(nil); err != nil {
		t.Fatal(err)
	}
	rootF, err := pg.fetch(nil, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if rootF.n.kind != kindBranch {
		t.Fatal("500 keys on 256-byte pages did not grow a branch root")
	}
	pg.unpin(rootF)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%05d", i*7919%n)
		removed, err := tr.Remove(nil, key, int64(n+i+1))
		if err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
		if !removed {
			t.Fatalf("remove %d: key %q missing", i, key)
		}
		if err := tr.CheckInvariants(nil); err != nil {
			t.Fatalf("after remove %d: %v", i, err)
		}
	}
	count := 0
	if err := tr.Scan(nil, func(string, Item) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("%d keys survived full removal", count)
	}
	if rf, err := pg.fetch(nil, tr.Root()); err != nil {
		t.Fatal(err)
	} else {
		if rf.n.kind != kindLeaf {
			t.Fatal("empty tree did not collapse back to a leaf root")
		}
		pg.unpin(rf)
	}
}

// TestPagerEvictionTinyPool pins the pool at 4 frames, loads far more
// pages than fit, and verifies scans stay correct while eviction actually
// happens — every re-fetch goes through the store and the codec.
func TestPagerEvictionTinyPool(t *testing.T) {
	store := NewMemStore(512, 65536)
	pg := NewPager(store, Config{PoolPages: 4})
	tr := New(pg)
	oracle := map[string]Item{}
	const n = 300
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("row-%04d", i)
		it := Item{Ver: int64(i + 1), Val: []byte(fmt.Sprintf("payload-%d-%s", i, string(make([]byte, 60))))}
		if err := tr.Put(nil, key, it, int64(i+1)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		oracle[key] = it
		if i%32 == 31 {
			checkpointCycle(t, pg)
		}
	}
	checkpointCycle(t, pg)
	if pg.DirtyPages() != 0 {
		t.Fatalf("%d dirty pages after checkpoint", pg.DirtyPages())
	}
	// A full scan touches every page; the pool may transiently hold a
	// pinned root path above the cap but must come back down to it.
	if err := compareWithOracle(tr, oracle); err != nil {
		t.Fatal(err)
	}
	if pg.Resident() > 4+3 { // cap + a pinned descent path
		t.Fatalf("resident %d frames against pool of 4", pg.Resident())
	}
	if err := tr.CheckInvariants(nil); err != nil {
		t.Fatal(err)
	}
	// Updates after eviction must land on re-fetched pages correctly.
	for i := 0; i < n; i += 17 {
		key := fmt.Sprintf("row-%04d", i)
		it := Item{Ver: int64(n + i), Val: []byte("updated")}
		if err := tr.Put(nil, key, it, int64(n+i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		oracle[key] = it
	}
	if err := compareWithOracle(tr, oracle); err != nil {
		t.Fatal(err)
	}
}

// TestPagerAbortRequeuesImages covers the aborted-checkpoint path: images
// whose frames went clean at the snapshot must reappear in the next
// snapshot (pendingRewrite), or recovery would lose their updates.
func TestPagerAbortRequeuesImages(t *testing.T) {
	store := NewMemStore(512, 4096)
	pg := NewPager(store, Config{PoolPages: 8})
	tr := New(pg)
	for i := 0; i < 40; i++ {
		if err := tr.Put(nil, fmt.Sprintf("k%03d", i), Item{Ver: 1, Val: []byte("abcdefghij")}, 1); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := pg.SnapshotCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Images) == 0 {
		t.Fatal("no dirty pages captured")
	}
	// Crash before the record lands: abort. One page gets re-dirtied, the
	// rest must ride pendingRewrite into the next snapshot.
	pg.AbortCheckpoint(snap)
	if err := tr.Put(nil, "k000", Item{Ver: 2, Val: []byte("fresh")}, 2); err != nil {
		t.Fatal(err)
	}
	snap2, err := pg.SnapshotCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]PageImage{}
	for _, img := range snap2.Images {
		got[img.ID] = img
	}
	for _, img := range snap.Images {
		if _, ok := got[img.ID]; !ok {
			t.Fatalf("aborted page %d missing from the next snapshot", img.ID)
		}
	}
	// No checkpoint ever committed, so every image still targets the
	// non-committed slot (parity 1) — the committed slot pair is never
	// overwritten by retries of a failed checkpoint.
	sawRedirty := false
	for _, img := range got {
		if img.Parity != 1 {
			t.Fatalf("page %d image targets committed parity %d", img.ID, img.Parity)
		}
		if img.LSN >= 2 {
			sawRedirty = true
		}
	}
	if !sawRedirty {
		t.Fatal("re-dirtied page's fresh image (lsn 2) missing from second snapshot")
	}
}
