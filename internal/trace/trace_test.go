package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func fixedClock(t time.Duration) func() time.Duration {
	return func() time.Duration { return t }
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(CMBWrite, "x", 1, 2)
	if tr.Total() != 0 || tr.Events() != nil || tr.Count(CMBWrite) != 0 {
		t.Fatal("nil tracer should be inert")
	}
}

func TestRecordAndFilter(t *testing.T) {
	tr := New(16, fixedClock(time.Microsecond))
	tr.Record(CMBWrite, "cmb", 0, 100)
	tr.Record(DestagePage, "destage", 100, 100)
	tr.Record(CMBWrite, "cmb", 100, 50)
	if tr.Total() != 3 {
		t.Fatalf("total = %d", tr.Total())
	}
	writes := tr.Filter(CMBWrite)
	if len(writes) != 2 || writes[0].A != 0 || writes[1].A != 100 {
		t.Fatalf("filter = %+v", writes)
	}
	if tr.Count(DestagePage) != 1 {
		t.Fatal("destage count wrong")
	}
}

func TestRingRotationKeepsLatest(t *testing.T) {
	tr := New(4, fixedClock(0))
	for i := 0; i < 10; i++ {
		tr.Record(CMBWrite, "cmb", int64(i), 0)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	for i, e := range ev {
		if e.A != int64(6+i) {
			t.Fatalf("retained order wrong: %+v", ev)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestDumpFormat(t *testing.T) {
	tr := New(8, fixedClock(42*time.Microsecond))
	tr.Record(ShadowUpdate, "prim", 0, 4096)
	var buf bytes.Buffer
	tr.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "shadow-update") || !strings.Contains(out, "b=4096") {
		t.Fatalf("dump output: %q", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := CMBWrite; k <= QueueOverrun; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("out-of-range kind")
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(0, fixedClock(0))
	if len(tr.events) != 1024 {
		t.Fatalf("default capacity = %d", len(tr.events))
	}
}
