// Package trace provides a lightweight structured event log for the
// simulated device: components record typed events with virtual
// timestamps into a bounded ring, and tests or tools inspect or dump
// them. Tracing is opt-in; a nil *Tracer is safe to record against and
// costs one branch.
package trace

import (
	"fmt"
	"io"
	"time"
)

// Kind classifies an event.
type Kind int

// Event kinds recorded by the device.
const (
	CMBWrite     Kind = iota // TLP payload accepted on the CMB interface
	CMBPersist               // chunk landed in PM backing; credit may advance
	DestagePage              // one page destaged to the conventional side
	Mirror                   // fast-side write mirrored to a peer
	ShadowUpdate             // shadow counter update received
	PowerLoss                // power interruption injected
	GCCollect                // FTL collected a block
	AdminCommand             // vendor-specific admin command executed
	QueueOverrun             // intake queue overrun: write dropped
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CMBWrite:
		return "cmb-write"
	case CMBPersist:
		return "cmb-persist"
	case DestagePage:
		return "destage-page"
	case Mirror:
		return "mirror"
	case ShadowUpdate:
		return "shadow-update"
	case PowerLoss:
		return "power-loss"
	case GCCollect:
		return "gc-collect"
	case AdminCommand:
		return "admin-command"
	case QueueOverrun:
		return "queue-overrun"
	}
	return "unknown"
}

// Event is one recorded occurrence.
type Event struct {
	At        time.Duration // virtual time
	Kind      Kind
	Component string // which module recorded it
	A, B      int64  // kind-specific values (offset/length, counter, ...)
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%-12v %-14s %-16s a=%d b=%d", e.At, e.Kind, e.Component, e.A, e.B)
}

// Tracer is a bounded event ring. The zero value is unusable; create with
// New. A nil Tracer ignores all records.
type Tracer struct {
	events []Event
	next   int
	full   bool
	total  int64
	clock  func() time.Duration
	fp     uint64 // running FNV-1a over every event ever recorded
}

// FNV-1a parameters for the running fingerprint.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvMixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// New creates a tracer holding the last capacity events, stamping them
// with the given clock.
func New(capacity int, clock func() time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{events: make([]Event, capacity), clock: clock, fp: fnvOffset}
}

// Record appends an event; safe on a nil receiver.
func (t *Tracer) Record(kind Kind, component string, a, b int64) {
	if t == nil {
		return
	}
	e := Event{At: t.clock(), Kind: kind, Component: component, A: a, B: b}
	t.events[t.next] = e
	t.fp = fnvMix(t.fp, uint64(e.At))
	t.fp = fnvMix(t.fp, uint64(e.Kind))
	t.fp = fnvMixString(t.fp, e.Component)
	t.fp = fnvMix(t.fp, uint64(e.A))
	t.fp = fnvMix(t.fp, uint64(e.B))
	t.next++
	t.total++
	if t.next == len(t.events) {
		t.next = 0
		t.full = true
	}
}

// Total returns how many events were recorded over the tracer's lifetime
// (including ones that have rotated out of the ring).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Fingerprint returns a running FNV-1a hash over every event ever
// recorded — including ones rotated out of the ring — so two runs with
// identical event streams (times, kinds, components, values, in order)
// have identical fingerprints. Zero on a nil tracer.
func (t *Tracer) Fingerprint() uint64 {
	if t == nil {
		return 0
	}
	return t.fp
}

// Events returns the retained events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Filter returns the retained events of one kind, in order.
func (t *Tracer) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many retained events have the given kind.
func (t *Tracer) Count(kind Kind) int { return len(t.Filter(kind)) }

// Dump writes the retained events to w, one per line.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e)
	}
}
