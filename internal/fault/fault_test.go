package fault

import (
	"errors"
	"testing"
	"time"

	"xssd/internal/sim"
)

func TestParseEncodeRoundTrip(t *testing.T) {
	text := `
# a comment
at 5ms device.power@p fail
on 40000 nand.program fail x 3
prob 0.05 transport.mirror drop x 10
prob 0.025 ntb.deliver delay 300us x 5
at 8ms transport.shadow@s0 freeze 4ms
`
	p, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(p.Rules))
	}
	if r := p.Rules[0]; r.Trigger != TriggerAt || r.At != 5*time.Millisecond ||
		r.Point != "device.power@p" || r.Action != ActionFail {
		t.Fatalf("rule 0 = %+v", r)
	}
	if r := p.Rules[3]; r.Action != ActionDelay || r.Dur != 300*time.Microsecond || r.Times != 5 {
		t.Fatalf("rule 3 = %+v", r)
	}
	enc := p.Encode()
	p2, err := Parse(enc)
	if err != nil {
		t.Fatalf("Parse(Encode): %v\n%s", err, enc)
	}
	if p2.Encode() != enc {
		t.Fatalf("encode not a fixed point:\n%q\nvs\n%q", enc, p2.Encode())
	}
	if len(p2.Rules) != len(p.Rules) {
		t.Fatalf("round trip changed rule count: %d vs %d", len(p2.Rules), len(p.Rules))
	}
	for i := range p.Rules {
		if p.Rules[i] != p2.Rules[i] {
			t.Fatalf("rule %d changed: %+v vs %+v", i, p.Rules[i], p2.Rules[i])
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"at 5ms",                            // too few fields
		"sometimes 5ms nand.program fail",   // unknown trigger
		"at xyz nand.program fail",          // bad duration
		"on 0 nand.program fail",            // count < 1
		"on -3 nand.program fail",           // negative count
		"prob 0 nand.program fail",          // p = 0
		"prob 1.5 nand.program fail",        // p > 1
		"at 5ms nand.program explode",       // unknown action
		"at 5ms nand.program delay",         // delay without duration
		"at 5ms nand.program fail x 0",      // zero repeat
		"at 5ms nand.program fail y 2",      // bad repeat syntax
		"at 5ms nand.program fail x 2 more", // trailing junk
		"at 5ms Nand.program fail",          // uppercase point
		"at 5ms nand..program fail",         // empty segment
		"at 5ms nand.program@ fail",         // empty scope
		"at 5ms nand.program@p! fail",       // bad scope char
		"at -5ms nand.program fail",         // negative time
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		} else if !errors.Is(err, ErrBadPlan) {
			t.Errorf("Parse(%q) error %v does not wrap ErrBadPlan", line, err)
		}
	}
}

func TestOnCountTrigger(t *testing.T) {
	env := sim.NewEnv(1)
	plan := &Plan{Rules: []Rule{
		{Point: NANDProgram, Trigger: TriggerOn, Count: 10, Action: ActionFail, Times: 2},
	}}
	inj := New(env, plan)
	fails := 0
	for i := 0; i < 40; i++ {
		if inj.Check(NANDProgram, "", 1).Fail() {
			fails++
			if i != 9 && i != 19 {
				t.Fatalf("fired on check %d, want checks 9 and 19", i)
			}
		}
	}
	if fails != 2 {
		t.Fatalf("fired %d times, want 2 (Times budget)", fails)
	}
	if got := inj.Fired(NANDProgram); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestOnCountWeightedCrossing(t *testing.T) {
	env := sim.NewEnv(1)
	plan := &Plan{Rules: []Rule{
		{Point: DevicePower, Trigger: TriggerOn, Count: 1000, Action: ActionFail},
	}}
	inj := New(env, plan)
	// 300-byte writes: the 1000-byte boundary is crossed inside the 4th.
	for i := 0; i < 10; i++ {
		d := inj.Check(DevicePower, "p", 300)
		if d.Fail() != (i == 3) {
			t.Fatalf("check %d: fail=%v", i, d.Fail())
		}
	}
}

func TestComponentScoping(t *testing.T) {
	env := sim.NewEnv(1)
	plan := &Plan{Rules: []Rule{
		{Point: DestageWrite + "@s0", Trigger: TriggerOn, Count: 2, Action: ActionFail},
	}}
	inj := New(env, plan)
	// Checks from other components must not advance the scoped counter.
	for i := 0; i < 5; i++ {
		if inj.Check(DestageWrite, "p", 1).Fail() {
			t.Fatal("rule scoped to s0 fired for p")
		}
	}
	if inj.Check(DestageWrite, "s0", 1).Fail() {
		t.Fatal("fired on s0's first op, want second")
	}
	if !inj.Check(DestageWrite, "s0", 1).Fail() {
		t.Fatal("did not fire on s0's second op")
	}
}

func TestAtTimeViaCheckAndOnTime(t *testing.T) {
	env := sim.NewEnv(1)
	plan := &Plan{Rules: []Rule{
		{Point: WALSink, Trigger: TriggerAt, At: time.Millisecond, Action: ActionFail},
		{Point: DevicePower + "@p", Trigger: TriggerAt, At: 2 * time.Millisecond, Action: ActionFail},
	}}
	inj := New(env, plan)
	fired := false
	inj.OnTime(DevicePower, "p", func() { fired = true })

	var early, late Decision
	env.Go("driver", func(p *sim.Proc) {
		early = inj.Check(WALSink, "", 1)
		p.Sleep(1500 * time.Microsecond)
		late = inj.Check(WALSink, "", 1)
	})
	env.RunUntil(5 * time.Millisecond)

	if !early.None() {
		t.Fatalf("at-rule fired before its time: %+v", early)
	}
	if !late.Fail() {
		t.Fatalf("at-rule did not fire after its time: %+v", late)
	}
	if !fired {
		t.Fatal("OnTime-armed rule did not fire")
	}
	// The armed rule must not double-fire through Check.
	if inj.Fired(DevicePower) != 1 {
		t.Fatalf("device.power fired %d times, want 1", inj.Fired(DevicePower))
	}
	fs := inj.Firings()
	if len(fs) != 2 {
		t.Fatalf("firings = %+v, want 2", fs)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		env := sim.NewEnv(seed)
		inj := New(env, &Plan{Rules: []Rule{
			{Point: TransportMirror, Trigger: TriggerProb, Prob: 0.3, Action: ActionDrop},
		}})
		var out []bool
		for i := 0; i < 100; i++ {
			out = append(out, inj.Check(TransportMirror, "p", 1).Drop())
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different prob decisions")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical prob decisions (suspicious)")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if !inj.Check("x", "", 1).None() {
		t.Fatal("nil injector fired")
	}
	inj.OnTime("x", "", func() { t.Fatal("nil injector armed a rule") })
	if inj.Firings() != nil || inj.Fired("x") != 0 {
		t.Fatal("nil injector has firings")
	}
	env := sim.NewEnv(1)
	if !CheckEnv(env, "x", "", 1).None() {
		t.Fatal("unattached env fired")
	}
}

func TestAttachDetach(t *testing.T) {
	env := sim.NewEnv(1)
	inj := New(env, &Plan{Rules: []Rule{
		{Point: WALSink, Trigger: TriggerOn, Count: 1, Action: ActionFail, Times: 100},
	}})
	Attach(env, inj)
	if !CheckEnv(env, WALSink, "", 1).Fail() {
		t.Fatal("attached injector did not fire")
	}
	Detach(env)
	if !CheckEnv(env, WALSink, "", 1).None() {
		t.Fatal("detached env still fired")
	}
	if For(env) != nil {
		t.Fatal("For after Detach is non-nil")
	}
}

func TestRandomPlanIsValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng1 := sim.NewEnv(seed).Rand()
		rng2 := sim.NewEnv(seed).Rand()
		p1 := RandomPlan(rng1, 30*time.Millisecond, seed%2 == 0, "p")
		p2 := RandomPlan(rng2, 30*time.Millisecond, seed%2 == 0, "p")
		if err := p1.Validate(); err != nil {
			t.Fatalf("seed %d: invalid random plan: %v\n%s", seed, err, p1.Encode())
		}
		if p1.Encode() != p2.Encode() {
			t.Fatalf("seed %d: random plan not deterministic", seed)
		}
		if _, err := Parse(p1.Encode()); err != nil {
			t.Fatalf("seed %d: random plan does not re-parse: %v", seed, err)
		}
	}
}
