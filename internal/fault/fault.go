package fault

import (
	"math/rand"
	"sync"
	"time"

	"xssd/internal/sim"
)

// Decision is what a hook site does right now: nothing, or one fired
// rule's action.
type Decision struct {
	Act ActionKind
	Dur time.Duration // for ActionDelay / ActionFreeze
}

// Fail reports whether the operation should error.
func (d Decision) Fail() bool { return d.Act == ActionFail }

// Drop reports whether the operation should be silently discarded.
func (d Decision) Drop() bool { return d.Act == ActionDrop }

// None reports whether no fault fired.
func (d Decision) None() bool { return d.Act == ActionNone }

// Firing records one fired rule, in firing order.
type Firing struct {
	At     time.Duration // virtual time of the check
	Point  string        // scoped point name as checked ("nand.program@p")
	Rule   int           // index into the plan's rules
	Action ActionKind
}

// ruleState is one compiled rule plus its runtime counters.
type ruleState struct {
	Rule
	index int
	bare  string // point without scope
	comp  string // "" = any component
	fired int64
	armed bool // firing delegated to an OnTime event
}

// Injector evaluates a plan against a simulation. Decisions draw only on
// virtual time, cumulative per-point counters, and a generator seeded
// once from the environment, so runs stay a pure function of
// (seed, plan). All methods must be called from the single simulation
// thread (process or scheduler context).
type Injector struct {
	env     *sim.Env
	rng     *rand.Rand
	rules   []*ruleState
	counts  map[string]int64 // bare point and point@comp cumulative weights
	firings []Firing
}

// New compiles a plan into an injector bound to env. A nil plan yields an
// injector that never fires. The plan must be valid (see Plan.Validate);
// invalid rules are skipped.
func New(env *sim.Env, plan *Plan) *Injector {
	inj := &Injector{
		env:    env,
		rng:    rand.New(rand.NewSource(env.Rand().Int63())),
		counts: map[string]int64{},
	}
	if plan != nil {
		for i, r := range plan.Rules {
			if r.validate() != nil {
				continue
			}
			bare, comp := splitPoint(r.Point)
			inj.rules = append(inj.rules, &ruleState{Rule: r, index: i, bare: bare, comp: comp})
		}
	}
	return inj
}

// registry maps environments to their attached injector so hook sites
// deep in the stack can find it without plumbing. Guarded for the rare
// case of multiple environments running on different test goroutines;
// lookups are by key only (no iteration), so order never leaks.
var registry = struct {
	sync.Mutex
	m map[*sim.Env]*Injector
}{m: map[*sim.Env]*Injector{}}

// Attach registers inj as env's injector, replacing any previous one.
func Attach(env *sim.Env, inj *Injector) {
	registry.Lock()
	defer registry.Unlock()
	registry.m[env] = inj
}

// Detach removes env's injector. Always pair with Attach in tests so one
// run's plan cannot leak into the next.
func Detach(env *sim.Env) {
	registry.Lock()
	defer registry.Unlock()
	delete(registry.m, env)
}

// For returns env's injector, or nil when none is attached.
func For(env *sim.Env) *Injector {
	registry.Lock()
	defer registry.Unlock()
	return registry.m[env]
}

// CheckEnv is the hook-site entry point: evaluate point for env's
// injector, if any. With no injector attached it returns the zero
// Decision at the cost of one mutex-guarded map lookup.
func CheckEnv(env *sim.Env, point, comp string, weight int64) Decision {
	return For(env).Check(point, comp, weight)
}

// Check advances point's counters by weight and returns the action of
// the first rule that fires, evaluated in plan order. comp scopes the
// check to one component ("" when the site has no scope); weight is the
// count contribution (1 for discrete ops, byte counts for streams). Safe
// on a nil receiver.
func (i *Injector) Check(point, comp string, weight int64) Decision {
	if i == nil || weight <= 0 {
		return Decision{}
	}
	before := i.counts[point]
	after := before + weight
	i.counts[point] = after
	var compBefore, compAfter int64
	if comp != "" {
		compBefore = i.counts[point+"@"+comp]
		compAfter = compBefore + weight
		i.counts[point+"@"+comp] = compAfter
	}
	now := i.env.Now()
	for _, r := range i.rules {
		if r.bare != point || r.armed || r.fired >= r.MaxFires() {
			continue
		}
		if r.comp != "" && r.comp != comp {
			continue
		}
		b, a := before, after
		if r.comp != "" {
			b, a = compBefore, compAfter
		}
		if !r.triggered(i.rng, now, b, a) {
			continue
		}
		r.fired++
		scoped := point
		if comp != "" {
			scoped = point + "@" + comp
		}
		i.firings = append(i.firings, Firing{At: now, Point: scoped, Rule: r.index, Action: r.Action})
		return Decision{Act: r.Action, Dur: r.Dur}
	}
	return Decision{}
}

// triggered evaluates one rule against the counter window [before,after)
// at virtual time now.
func (r *ruleState) triggered(rng *rand.Rand, now time.Duration, before, after int64) bool {
	switch r.Trigger {
	case TriggerAt:
		// Fires on checks at or past the trigger time, up to the budget:
		// "from t onward, the next Times operations".
		return now >= r.At
	case TriggerOn:
		// Fires when the counter crosses the next multiple of Count.
		boundary := r.Count * (r.fired + 1)
		return after >= boundary && before < boundary
	case TriggerProb:
		return rng.Float64() < r.Prob
	}
	return false
}

// OnTime arms every at-trigger rule for point (scoped to comp) as an
// exact-time event: fn runs at each rule's trigger time instead of
// waiting for the next Check. fn runs in scheduler context and must not
// block. Call before the simulation passes the rules' times. Safe on a
// nil receiver.
func (i *Injector) OnTime(point, comp string, fn func()) {
	if i == nil {
		return
	}
	for _, r := range i.rules {
		if r.bare != point || r.Trigger != TriggerAt || r.armed {
			continue
		}
		if r.comp != "" && r.comp != comp {
			continue
		}
		r.armed = true
		r := r
		scoped := point
		if comp != "" {
			scoped = point + "@" + comp
		}
		i.env.At(r.At, func() {
			if r.fired >= r.MaxFires() {
				return
			}
			r.fired++
			i.firings = append(i.firings, Firing{At: i.env.Now(), Point: scoped, Rule: r.index, Action: r.Action})
			fn()
		})
	}
}

// Firings returns every fired rule in firing order. Safe on a nil
// receiver.
func (i *Injector) Firings() []Firing {
	if i == nil {
		return nil
	}
	out := make([]Firing, len(i.firings))
	copy(out, i.firings)
	return out
}

// Fired counts firings whose bare point matches point. Safe on a nil
// receiver.
func (i *Injector) Fired(point string) int {
	if i == nil {
		return 0
	}
	n := 0
	for _, f := range i.firings {
		bare, _ := splitPoint(f.Point)
		if bare == point {
			n++
		}
	}
	return n
}

// RandomPlan draws a randomized chaos plan from rng: a handful of
// bounded-budget rules over the standard fault points, sized so a
// window-long workload keeps making progress. replicated adds the
// transport-facing rules; crashComp, when nonempty, scopes an optional
// power-loss rule to that device. All durations stay well under window
// so every transient clears before the run's settle phase.
func RandomPlan(rng *rand.Rand, window time.Duration, replicated bool, crashComp string) *Plan {
	p := &Plan{}
	add := func(r Rule) { p.Rules = append(p.Rules, r) }
	short := func(max time.Duration) time.Duration {
		return time.Duration(rng.Int63n(int64(max))) + 50*time.Microsecond
	}

	if rng.Intn(2) == 0 {
		add(Rule{Point: NANDProgram, Trigger: TriggerProb, Prob: 0.02 + 0.08*rng.Float64(),
			Action: ActionFail, Times: int64(rng.Intn(4)) + 1})
	}
	if rng.Intn(3) == 0 {
		add(Rule{Point: DestageWrite, Trigger: TriggerOn, Count: int64(rng.Intn(40)) + 10,
			Action: ActionFail, Times: int64(rng.Intn(3)) + 1})
	}
	if rng.Intn(3) == 0 {
		add(Rule{Point: WALSink, Trigger: TriggerOn, Count: int64(rng.Intn(6)) + 2,
			Action: ActionFail, Times: int64(rng.Intn(2)) + 1})
	}
	if replicated {
		if rng.Intn(2) == 0 {
			add(Rule{Point: TransportMirror, Trigger: TriggerProb, Prob: 0.01 + 0.09*rng.Float64(),
				Action: ActionDrop, Times: int64(rng.Intn(12)) + 2})
		}
		if rng.Intn(2) == 0 {
			add(Rule{Point: NTBDeliver, Trigger: TriggerProb, Prob: 0.01 + 0.04*rng.Float64(),
				Action: ActionDelay, Dur: short(300 * time.Microsecond), Times: int64(rng.Intn(8)) + 2})
		}
		if rng.Intn(3) == 0 {
			add(Rule{Point: TransportShadow, Trigger: TriggerAt, At: short(window / 2),
				Action: ActionFreeze, Dur: short(window / 4)})
		}
	}
	if crashComp != "" && rng.Intn(3) == 0 {
		at := window/4 + time.Duration(rng.Int63n(int64(window/2)))
		add(Rule{Point: DevicePower + "@" + crashComp, Trigger: TriggerAt, At: at, Action: ActionFail})
	}
	return p
}
