package fault

import (
	"strings"
	"testing"
)

// FuzzFaultPlan feeds arbitrary text through the plan codec: whatever
// Parse accepts must encode canonically (Parse∘Encode is the identity on
// parsed plans and Encode is a fixed point), and whatever it rejects must
// fail with an error, never a panic. Every rule of an accepted plan must
// satisfy the validator, so malformed schedules cannot sneak in through
// parsing quirks.
func FuzzFaultPlan(f *testing.F) {
	f.Add("at 5ms device.power@p fail\n")
	f.Add("on 40000 nand.program fail x 3\nprob 0.05 transport.mirror drop x 10\n")
	f.Add("prob 0.02 ntb.deliver delay 300µs x 5\n# comment\n\nat 8ms transport.shadow freeze 4ms\n")
	f.Add("on 1 wal.sink fail\non 2 destage.write fail x 2\n")
	f.Add("at 1h30m5s a.b.c9@A-Z_0./x delay 1ns x 9999\n")
	f.Add("prob 0.9999999999 x drop\n")
	f.Add("at 5ms nand..program fail\n")
	f.Add("on 99999999999999999999 nand.program fail\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return // rejected without panicking: fine
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid plan: %v\ninput: %q", err, text)
		}
		enc := p.Encode()
		p2, err := Parse(enc)
		if err != nil {
			t.Fatalf("canonical encoding does not re-parse: %v\n%q", err, enc)
		}
		if got := p2.Encode(); got != enc {
			t.Fatalf("Encode not a fixed point:\n%q\nvs\n%q\ninput: %q", enc, got, text)
		}
		if len(p2.Rules) != len(p.Rules) {
			t.Fatalf("round trip changed rule count %d -> %d", len(p.Rules), len(p2.Rules))
		}
		for i := range p.Rules {
			if p.Rules[i] != p2.Rules[i] {
				t.Fatalf("rule %d changed in round trip:\n%+v\nvs\n%+v", i, p.Rules[i], p2.Rules[i])
			}
		}
		// Encoded plans contain no comments or blank lines: one rule per line.
		if enc != "" && strings.Count(enc, "\n") != len(p.Rules) {
			t.Fatalf("encoding has %d lines for %d rules:\n%q", strings.Count(enc, "\n"), len(p.Rules), enc)
		}
	})
}
