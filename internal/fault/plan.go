// Package fault is a seeded, virtual-time fault-plan engine. Components
// register named fault points at their hook sites (nand.program,
// destage.write, transport.mirror, wal.sink, device.power, ...) and ask
// the environment's Injector for a Decision each time the point is
// reached. A Plan is a declarative schedule of Rules — "at t=...",
// "on op #N", "with prob p" — so a (seed, plan) pair fully determines a
// run: the simulator's determinism contract extends to its failures.
//
// Plans have a one-rule-per-line text form:
//
//	# trigger        point                 action        repeat
//	at 5ms           device.power@p        fail
//	on 40000         nand.program          fail          x 3
//	prob 0.05        transport.mirror      drop          x 10
//	prob 0.02        ntb.deliver           delay 300µs   x 5
//	at 8ms           transport.shadow@s0   freeze 4ms
//
// Triggers: "at <duration>" (virtual time), "on <N>" (every Nth unit of
// the point's cumulative count), "prob <p>" (each check, from the
// injector's seeded source). A point may carry an "@component" scope so a
// rule hits one device. Actions: fail, drop, delay <d>, freeze <d>.
// "x <times>" bounds firings: at/on rules default to once, prob rules to
// unlimited. Parse and Encode round-trip the canonical form.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Fault point names registered by the simulator's hook sites. The
// component scope each site passes is noted on the right.
const (
	// NANDProgram fails a NAND page program and marks the block bad —
	// the late-manifesting bad block of the FTL's retry path. No scope.
	NANDProgram = "nand.program"
	// NANDErase fails a block erase and marks the block bad. No scope.
	NANDErase = "nand.erase"
	// DestageWrite fails one destage page write before it reaches the
	// FTL; the destage module retries with backoff. Scope: fast side name.
	DestageWrite = "destage.write"
	// TransportMirror drops or delays one mirrored chunk to one peer;
	// the repair process retransmits. Scope: primary device name.
	TransportMirror = "transport.mirror"
	// TransportShadow drops (fail/drop), delays, or freezes the
	// secondary's shadow-counter reporting. Scope: secondary device name.
	TransportShadow = "transport.shadow"
	// NTBDeliver drops or delays one TLP chunk on an NTB window write.
	// Scope: bridge name.
	NTBDeliver = "ntb.deliver"
	// WALSink fails one group-commit sink write; the flusher retries.
	// Scope: sink name.
	WALSink = "wal.sink"
	// DevicePower cuts device power. Counted hooks weigh by CMB payload
	// bytes, so "on N" means the Nth accepted byte; "at t" rules are
	// armed as exact-time events. Scope: device name.
	DevicePower = "device.power"
	// PrimaryKill cuts power to whichever device currently holds the
	// primary role — the failover trigger. No simulator hook site checks
	// this point: a harness arms it with OnTime (unscoped) and resolves
	// "the current primary" itself when the rule fires, so the kill lands
	// on the right device even after earlier promotions. Scope: none.
	PrimaryKill = "primary.kill"
	// ShardRPC drops or delays one cross-shard RPC message (a 2PC
	// prepare/decision or a remote read/write). Requests check against the
	// destination shard's name, replies against the replier's, so a
	// freeze-style delay scoped to one shard stalls its traffic in both
	// directions. Scope: shard name.
	ShardRPC = "shard.rpc"
)

// ErrBadPlan is wrapped by every Parse and validation error.
var ErrBadPlan = errors.New("fault: bad plan")

// ErrInjected marks an error produced by a fired fault rule rather than a
// modelled hardware condition. Match with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// TriggerKind says when a rule fires.
type TriggerKind int

// Trigger kinds.
const (
	// TriggerAt fires once virtual time reaches Rule.At.
	TriggerAt TriggerKind = iota
	// TriggerOn fires when the point's cumulative count crosses each
	// multiple of Rule.Count.
	TriggerOn
	// TriggerProb fires each check with probability Rule.Prob.
	TriggerProb
)

// ActionKind says what a fired rule does at the hook site.
type ActionKind int

// Action kinds. Hook sites ignore actions that make no sense for them
// (e.g. Freeze at a NAND program).
const (
	// ActionNone is the zero Decision: no fault.
	ActionNone ActionKind = iota
	// ActionFail makes the operation return an error.
	ActionFail
	// ActionDrop silently discards the operation (messages, chunks).
	ActionDrop
	// ActionDelay postpones the operation by Rule.Dur.
	ActionDelay
	// ActionFreeze suspends the point's activity for Rule.Dur.
	ActionFreeze
)

// String implements fmt.Stringer.
func (a ActionKind) String() string {
	switch a {
	case ActionFail:
		return "fail"
	case ActionDrop:
		return "drop"
	case ActionDelay:
		return "delay"
	case ActionFreeze:
		return "freeze"
	}
	return "none"
}

// Rule is one line of a plan: a trigger, a (possibly component-scoped)
// fault point, an action, and a firing budget.
type Rule struct {
	Point   string      // "nand.program" or "device.power@p"
	Trigger TriggerKind // when to fire
	At      time.Duration
	Count   int64
	Prob    float64
	Action  ActionKind // what to do
	Dur     time.Duration
	Times   int64 // max firings; 0 = default (1 for at/on, unlimited for prob)
}

// MaxFires resolves the rule's firing budget.
func (r Rule) MaxFires() int64 {
	if r.Times > 0 {
		return r.Times
	}
	if r.Trigger == TriggerProb {
		return 1 << 62
	}
	return 1
}

// splitPoint separates the bare point name from its component scope.
func splitPoint(point string) (bare, comp string) {
	if i := strings.IndexByte(point, '@'); i >= 0 {
		return point[:i], point[i+1:]
	}
	return point, ""
}

// validate checks one rule's fields.
func (r Rule) validate() error {
	bare, comp := splitPoint(r.Point)
	if err := validatePointName(bare, comp, strings.Contains(r.Point, "@")); err != nil {
		return err
	}
	switch r.Trigger {
	case TriggerAt:
		if r.At < 0 {
			return fmt.Errorf("%w: rule %q: negative trigger time %v", ErrBadPlan, r.Point, r.At)
		}
	case TriggerOn:
		if r.Count < 1 {
			return fmt.Errorf("%w: rule %q: count must be >= 1, got %d", ErrBadPlan, r.Point, r.Count)
		}
	case TriggerProb:
		if !(r.Prob > 0 && r.Prob <= 1) {
			return fmt.Errorf("%w: rule %q: probability must be in (0, 1], got %v", ErrBadPlan, r.Point, r.Prob)
		}
	default:
		return fmt.Errorf("%w: rule %q: unknown trigger %d", ErrBadPlan, r.Point, r.Trigger)
	}
	switch r.Action {
	case ActionFail, ActionDrop:
		if r.Dur != 0 {
			return fmt.Errorf("%w: rule %q: action %v takes no duration", ErrBadPlan, r.Point, r.Action)
		}
	case ActionDelay, ActionFreeze:
		if r.Dur <= 0 {
			return fmt.Errorf("%w: rule %q: action %v needs a positive duration", ErrBadPlan, r.Point, r.Action)
		}
	default:
		return fmt.Errorf("%w: rule %q: unknown action %d", ErrBadPlan, r.Point, r.Action)
	}
	if r.Times < 0 {
		return fmt.Errorf("%w: rule %q: negative repeat count %d", ErrBadPlan, r.Point, r.Times)
	}
	return nil
}

// validatePointName enforces the point grammar: the bare name is
// dot-separated lowercase alphanumeric words; the scope, when present, is
// a nonempty device/component label.
func validatePointName(bare, comp string, scoped bool) error {
	if bare == "" {
		return fmt.Errorf("%w: empty fault point", ErrBadPlan)
	}
	for _, word := range strings.Split(bare, ".") {
		if word == "" {
			return fmt.Errorf("%w: fault point %q has an empty segment", ErrBadPlan, bare)
		}
		if word[0] < 'a' || word[0] > 'z' {
			return fmt.Errorf("%w: fault point %q: segments must start with a lowercase letter", ErrBadPlan, bare)
		}
		for i := 1; i < len(word); i++ {
			c := word[i]
			if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
				return fmt.Errorf("%w: fault point %q: invalid character %q", ErrBadPlan, bare, c)
			}
		}
	}
	if scoped {
		if comp == "" {
			return fmt.Errorf("%w: fault point %q: empty component scope", ErrBadPlan, bare)
		}
		for i := 0; i < len(comp); i++ {
			c := comp[i]
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			// '>' appears in bridge names ("p->s0"), the ntb.deliver scope.
			case c == '.', c == '_', c == '-', c == '/', c == '>':
			default:
				return fmt.Errorf("%w: component scope %q: invalid character %q", ErrBadPlan, comp, c)
			}
		}
	}
	return nil
}

// Plan is a declarative fault schedule: the rules are evaluated in order
// at every hook-site check and the first one that fires wins.
type Plan struct {
	Rules []Rule
}

// Validate checks every rule.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		if err := r.validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}

// Encode renders the plan in its canonical text form, one rule per line.
// Parse(Encode(p)) reproduces p exactly for any valid plan.
func (p *Plan) Encode() string {
	var b strings.Builder
	for _, r := range p.Rules {
		switch r.Trigger {
		case TriggerAt:
			fmt.Fprintf(&b, "at %s", r.At)
		case TriggerOn:
			fmt.Fprintf(&b, "on %d", r.Count)
		case TriggerProb:
			fmt.Fprintf(&b, "prob %s", strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		fmt.Fprintf(&b, " %s %s", r.Point, r.Action)
		if r.Action == ActionDelay || r.Action == ActionFreeze {
			fmt.Fprintf(&b, " %s", r.Dur)
		}
		if r.Times > 0 {
			fmt.Fprintf(&b, " x %d", r.Times)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads the text form of a plan. Blank lines and #-comments are
// skipped; every malformed line is rejected with an error wrapping
// ErrBadPlan.
func Parse(text string) (*Plan, error) {
	p := &Plan{}
	for i, line := range strings.Split(text, "\n") {
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		r, err := parseRule(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		p.Rules = append(p.Rules, r)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseRule(fields []string) (Rule, error) {
	var r Rule
	if len(fields) < 4 {
		return r, fmt.Errorf("%w: want \"<trigger> <arg> <point> <action> ...\", got %d fields", ErrBadPlan, len(fields))
	}
	switch fields[0] {
	case "at":
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return r, fmt.Errorf("%w: bad trigger time %q: %w", ErrBadPlan, fields[1], err)
		}
		r.Trigger, r.At = TriggerAt, d
	case "on":
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return r, fmt.Errorf("%w: bad trigger count %q: %w", ErrBadPlan, fields[1], err)
		}
		r.Trigger, r.Count = TriggerOn, n
	case "prob":
		f, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return r, fmt.Errorf("%w: bad probability %q: %w", ErrBadPlan, fields[1], err)
		}
		r.Trigger, r.Prob = TriggerProb, f
	default:
		return r, fmt.Errorf("%w: unknown trigger %q (want at/on/prob)", ErrBadPlan, fields[0])
	}
	r.Point = fields[2]
	rest := fields[4:]
	switch fields[3] {
	case "fail":
		r.Action = ActionFail
	case "drop":
		r.Action = ActionDrop
	case "delay", "freeze":
		if len(rest) == 0 {
			return r, fmt.Errorf("%w: action %q needs a duration", ErrBadPlan, fields[3])
		}
		d, err := time.ParseDuration(rest[0])
		if err != nil {
			return r, fmt.Errorf("%w: bad action duration %q: %w", ErrBadPlan, rest[0], err)
		}
		r.Dur = d
		if fields[3] == "delay" {
			r.Action = ActionDelay
		} else {
			r.Action = ActionFreeze
		}
		rest = rest[1:]
	default:
		return r, fmt.Errorf("%w: unknown action %q (want fail/drop/delay/freeze)", ErrBadPlan, fields[3])
	}
	if len(rest) > 0 {
		if len(rest) != 2 || rest[0] != "x" {
			return r, fmt.Errorf("%w: trailing %q (want \"x <times>\")", ErrBadPlan, strings.Join(rest, " "))
		}
		n, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil || n < 1 {
			return r, fmt.Errorf("%w: bad repeat count %q", ErrBadPlan, rest[1])
		}
		r.Times = n
	}
	return r, nil
}
