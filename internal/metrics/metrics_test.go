package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, v := range []time.Duration{30, 10, 20} {
		s.Add(v)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 20 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 10 || s.Max() != 30 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Percentile(50) != 20 {
		t.Fatalf("p50 = %v", s.Percentile(50))
	}
}

func TestPercentileInterpolates(t *testing.T) {
	var s Sample
	s.Add(0)
	s.Add(100)
	if got := s.Percentile(25); got != 25 {
		t.Fatalf("p25 = %v, want 25", got)
	}
}

func TestAddAfterPercentileKeepsSorted(t *testing.T) {
	var s Sample
	s.Add(50)
	_ = s.Percentile(50)
	s.Add(10) // must re-sort
	if s.Min() != 10 {
		t.Fatalf("Min = %v after late Add", s.Min())
	}
}

func TestCandlestickOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < 50; i++ {
			s.Add(time.Duration(rng.Intn(10000)))
		}
		c := s.Candlestick()
		return c.Min <= c.P25 && c.P25 <= c.P50 && c.P50 <= c.P75 && c.P75 <= c.Max && c.N == 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRates(t *testing.T) {
	c := NewCounter(time.Second)
	c.Add(500)
	c.Inc()
	if c.Total() != 501 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.PerSecond(2 * time.Second); got != 501 {
		t.Fatalf("PerSecond = %v", got)
	}
	if got := c.PerSecond(time.Second); got != 0 {
		t.Fatalf("zero-window rate = %v, want 0", got)
	}
	c.Reset(3 * time.Second)
	if c.Total() != 0 || c.PerSecond(4*time.Second) != 0 {
		t.Fatal("Reset did not zero the counter")
	}
}

func TestCounterMBps(t *testing.T) {
	c := NewCounter(0)
	c.Add(2_000_000)
	if got := c.MBps(time.Second); got != 2 {
		t.Fatalf("MBps = %v, want 2", got)
	}
}

func TestReservoirBoundedAndExactMoments(t *testing.T) {
	s := NewReservoir(64, rand.New(rand.NewSource(1)))
	const n = 10_000
	var sum time.Duration
	for i := 1; i <= n; i++ {
		d := time.Duration(i)
		s.Add(d)
		sum += d
	}
	if s.N() != n {
		t.Fatalf("N = %d, want %d", s.N(), n)
	}
	if s.Retained() != 64 {
		t.Fatalf("retained %d, want capacity 64", s.Retained())
	}
	if got := s.Mean(); got != sum/time.Duration(n) {
		t.Fatalf("mean = %v, want exact %v", got, sum/n)
	}
	// The median of a uniform 1..n stream should land near n/2; a wildly
	// off value means the reservoir is not a uniform sample.
	med := s.Percentile(50)
	if med < n/10 || med > n-n/10 {
		t.Fatalf("median %v implausible for uniform stream of %d", med, n)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	run := func() []time.Duration {
		s := NewReservoir(16, rand.New(rand.NewSource(42)))
		for i := 0; i < 1000; i++ {
			s.Add(time.Duration(i * 13 % 997))
		}
		return append([]time.Duration(nil), s.vals...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoir diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReservoirBelowCapacityKeepsAll(t *testing.T) {
	s := NewReservoir(100, rand.New(rand.NewSource(3)))
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i))
	}
	if s.N() != 10 || s.Retained() != 10 {
		t.Fatalf("N=%d retained=%d, want 10/10", s.N(), s.Retained())
	}
	if s.Min() != 0 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}
