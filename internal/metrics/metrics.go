// Package metrics provides the small statistics toolkit the benchmark
// harness uses to report experiment results: streaming samples with
// percentile summaries (for latency candlesticks à la the paper's Fig 13),
// and throughput counters over virtual time.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Sample accumulates duration observations and summarizes them.
// The zero value is ready to use and retains every observation; use
// NewReservoir for a bounded-memory variant.
type Sample struct {
	vals   []time.Duration
	sorted bool
	sum    float64
	n      int64 // total observations, including evicted ones

	// Reservoir mode (capacity > 0): vals is a uniform random sample of
	// capacity observations, maintained with Vitter's Algorithm R.
	capacity int
	rng      *rand.Rand
}

// NewReservoir returns a Sample that keeps a uniform random subset of at
// most capacity observations (Vitter's Algorithm R), so percentile
// summaries over unbounded streams use bounded memory. Count and mean
// remain exact. rng drives the replacement choices: passing a
// deterministically seeded source (e.g. one derived from the simulation
// seed) makes the reservoir — and hence every percentile — reproducible
// across runs.
func NewReservoir(capacity int, rng *rand.Rand) *Sample {
	if capacity <= 0 {
		panic("metrics: reservoir capacity must be positive")
	}
	return &Sample{capacity: capacity, rng: rng}
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	s.n++
	s.sum += float64(d)
	if s.capacity > 0 && len(s.vals) == s.capacity {
		// Algorithm R: the new observation replaces a random resident with
		// probability capacity/n, keeping the reservoir a uniform sample.
		if j := s.rng.Int63n(s.n); j < int64(s.capacity) {
			s.vals[j] = d
			s.sorted = false
		}
		return
	}
	s.vals = append(s.vals, d)
	s.sorted = false
}

// N returns the number of observations (including any the reservoir
// evicted).
func (s *Sample) N() int { return int(s.n) }

// Retained returns how many observations are resident (equal to N unless
// a reservoir has started evicting).
func (s *Sample) Retained() int { return len(s.vals) }

// Mean returns the arithmetic mean over all observations, or 0 if empty.
func (s *Sample) Mean() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.sum / float64(s.n))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Slice(s.vals, func(i, j int) bool { return s.vals[i] < s.vals[j] })
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation, or 0 if empty.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo] + time.Duration(frac*float64(s.vals[hi]-s.vals[lo]))
}

// Min returns the smallest observation, or 0 if empty.
func (s *Sample) Min() time.Duration { return s.Percentile(0) }

// Max returns the largest observation, or 0 if empty.
func (s *Sample) Max() time.Duration { return s.Percentile(100) }

// Candlestick summarizes a sample the way the paper's Fig 13 plots
// replication delay: min/p25/median/p75/max.
type Candlestick struct {
	N                       int
	Min, P25, P50, P75, Max time.Duration
	Mean                    time.Duration
}

// Candlestick computes the five-number summary plus mean.
func (s *Sample) Candlestick() Candlestick {
	return Candlestick{
		N:    s.N(),
		Min:  s.Min(),
		P25:  s.Percentile(25),
		P50:  s.Percentile(50),
		P75:  s.Percentile(75),
		Max:  s.Max(),
		Mean: s.Mean(),
	}
}

// IQR returns the interquartile range (P75 - P25), the spread measure the
// replication-delay experiment compares across update periods.
func (c Candlestick) IQR() time.Duration { return c.P75 - c.P25 }

// String implements fmt.Stringer.
func (c Candlestick) String() string {
	return fmt.Sprintf("n=%d min=%v p25=%v p50=%v p75=%v max=%v mean=%v",
		c.N, c.Min, c.P25, c.P50, c.P75, c.Max, c.Mean)
}

// Counter counts events (e.g. committed transactions, bytes moved) and
// converts them to rates over a virtual-time interval.
type Counter struct {
	n     int64
	start time.Duration
}

// NewCounter returns a counter whose rate window begins at start.
func NewCounter(start time.Duration) *Counter { return &Counter{start: start} }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Total returns the accumulated count.
func (c *Counter) Total() int64 { return c.n }

// PerSecond converts the count to a rate over [start, now].
func (c *Counter) PerSecond(now time.Duration) float64 {
	window := now - c.start
	if window <= 0 {
		return 0
	}
	return float64(c.n) / window.Seconds()
}

// Reset zeroes the counter and restarts its window at now.
func (c *Counter) Reset(now time.Duration) {
	c.n = 0
	c.start = now
}

// MBps formats a byte counter as megabytes per second over [start, now].
func (c *Counter) MBps(now time.Duration) float64 {
	return c.PerSecond(now) / 1e6
}
