package tpcc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xssd/internal/db"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

type nullSink struct{ bytes int64 }

func (s *nullSink) Write(p *sim.Proc, d []byte) error {
	s.bytes += int64(len(d))
	return nil
}
func (s *nullSink) Name() string { return "null" }

func smallConfig() Config {
	return Config{Warehouses: 2, Districts: 4, CustomersPerDistrict: 30, Items: 50, FillerLen: 8}
}

func loadedEngine(env *sim.Env, cfg Config) (*db.Engine, *nullSink) {
	sink := &nullSink{}
	log := wal.NewLog(env, sink, wal.Config{GroupBytes: 4096, GroupTimeout: 100 * time.Microsecond})
	eng := db.New(env, log)
	Load(eng, cfg, 1)
	return eng, sink
}

func TestLoadPopulatesAllTables(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := smallConfig()
	eng, _ := loadedEngine(env, cfg)
	if got := eng.RowCount(TWarehouse); got != cfg.Warehouses {
		t.Fatalf("warehouses = %d", got)
	}
	if got := eng.RowCount(TDistrict); got != cfg.Warehouses*cfg.Districts {
		t.Fatalf("districts = %d", got)
	}
	if got := eng.RowCount(TCustomer); got != cfg.Warehouses*cfg.Districts*cfg.CustomersPerDistrict {
		t.Fatalf("customers = %d", got)
	}
	if got := eng.RowCount(TItem); got != cfg.Items {
		t.Fatalf("items = %d", got)
	}
	if got := eng.RowCount(TStock); got != cfg.Warehouses*cfg.Items {
		t.Fatalf("stock = %d", got)
	}
}

func TestRowCodecsRoundTrip(t *testing.T) {
	w := Warehouse{Name: "wh", Tax: 1234, YTD: -99}
	if got := DecodeWarehouse(w.Encode()); got != w {
		t.Fatalf("warehouse: %+v", got)
	}
	d := District{Name: "d", Tax: 5, YTD: 10, NextOID: 42, NextDelivery: 7}
	if got := DecodeDistrict(d.Encode()); got != d {
		t.Fatalf("district: %+v", got)
	}
	c := Customer{First: "a", Last: "BARBARBAR", Credit: "BC", Discount: 1, Balance: -5000, YTDPayment: 3, PaymentCnt: 2, DeliveryCnt: 1, Data: "xyz"}
	if got := DecodeCustomer(c.Encode()); got != c {
		t.Fatalf("customer: %+v", got)
	}
	s := Stock{Qty: 50, YTD: 7, OrderCnt: 3, RemoteCnt: 1, Dist: "dd", Data: "zz"}
	if got := DecodeStock(s.Encode()); got != s {
		t.Fatalf("stock: %+v", got)
	}
	o := Order{CID: 9, EntryD: 1000, Carrier: 3, OLCnt: 11, AllLocal: true}
	if got := DecodeOrder(o.Encode()); got != o {
		t.Fatalf("order: %+v", got)
	}
	ol := OrderLine{IID: 1, SupplyW: 2, Qty: 3, Amount: 400, DeliveryD: 5, DistInfo: "info"}
	if got := DecodeOrderLine(ol.Encode()); got != ol {
		t.Fatalf("orderline: %+v", got)
	}
	h := History{CID: 1, Amount: 2, Date: 3, Data: "h"}
	if got := DecodeHistory(h.Encode()); got != h {
		t.Fatalf("history: %+v", got)
	}
	i := Item{Name: "n", Price: 100, Data: "d"}
	if got := DecodeItem(i.Encode()); got != i {
		t.Fatalf("item: %+v", got)
	}
}

func TestLastNameSyllables(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %s", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %s", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %s", LastName(999))
	}
}

func TestNURandWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			v := nuRand(rng, 1023, cCID, 1, 3000)
			if v < 1 || v > 3000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderCreatesOrderRows(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := smallConfig()
	eng, sink := loadedEngine(env, cfg)
	client := NewClient(eng, cfg, 2, 1)
	ok := false
	env.Go("terminal", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := client.RunOne(p, NewOrderTx); err != nil {
				t.Errorf("new-order %d: %v", i, err)
				return
			}
		}
		ok = true
	})
	env.RunUntil(time.Second)
	if !ok {
		t.Fatal("terminal did not finish")
	}
	if eng.RowCount(TOrder) == 0 || eng.RowCount(TOrderLine) == 0 {
		t.Fatal("no orders created")
	}
	if sink.bytes == 0 {
		t.Fatal("no log volume generated")
	}
	counts, _, _ := client.Counts()
	if counts[NewOrderTx] != 20 {
		t.Fatalf("committed new-orders = %d", counts[NewOrderTx])
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := smallConfig()
	eng, _ := loadedEngine(env, cfg)
	client := NewClient(eng, cfg, 3, 1)
	env.Go("terminal", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := client.RunOne(p, PaymentTx); err != nil {
				t.Errorf("payment %d: %v", i, err)
			}
		}
	})
	env.RunUntil(time.Second)
	wRow, _ := eng.Read(TWarehouse, WKey(1))
	if DecodeWarehouse(wRow).YTD == 0 {
		t.Fatal("warehouse YTD unchanged after payments")
	}
	if eng.RowCount(THistory) == 0 {
		t.Fatal("no history rows")
	}
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := smallConfig()
	eng, _ := loadedEngine(env, cfg)
	client := NewClient(eng, cfg, 4, 1)
	env.Go("terminal", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			if err := client.RunOne(p, NewOrderTx); err != nil {
				t.Errorf("new-order: %v", err)
			}
		}
		before := eng.RowCount(TNewOrder)
		for i := 0; i < 5; i++ {
			if err := client.RunOne(p, DeliveryTx); err != nil {
				t.Errorf("delivery: %v", err)
			}
		}
		after := eng.RowCount(TNewOrder)
		if after >= before {
			t.Errorf("new_order rows %d -> %d: delivery consumed nothing", before, after)
		}
	})
	env.RunUntil(time.Second)
}

func TestReadOnlyProfilesCommit(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := smallConfig()
	eng, _ := loadedEngine(env, cfg)
	client := NewClient(eng, cfg, 5, 2)
	env.Go("terminal", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			client.RunOne(p, NewOrderTx)
		}
		for i := 0; i < 10; i++ {
			if err := client.RunOne(p, OrderStatusTx); err != nil {
				t.Errorf("order-status: %v", err)
			}
			if err := client.RunOne(p, StockLevelTx); err != nil {
				t.Errorf("stock-level: %v", err)
			}
		}
	})
	env.RunUntil(time.Second)
}

func TestMixRoughlyMatchesSpec(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := smallConfig()
	eng, _ := loadedEngine(env, cfg)
	client := NewClient(eng, cfg, 6, 1)
	var picks [5]int
	for i := 0; i < 10000; i++ {
		picks[client.PickType()]++
	}
	if picks[NewOrderTx] < 4200 || picks[NewOrderTx] > 4800 {
		t.Fatalf("new-order share = %d/10000", picks[NewOrderTx])
	}
	if picks[PaymentTx] < 4000 || picks[PaymentTx] > 4600 {
		t.Fatalf("payment share = %d/10000", picks[PaymentTx])
	}
	for _, tt := range []TxType{OrderStatusTx, DeliveryTx, StockLevelTx} {
		if picks[tt] < 250 || picks[tt] > 550 {
			t.Fatalf("%v share = %d/10000", tt, picks[tt])
		}
	}
	_ = eng
}

func TestConcurrentTerminalsConflictButProgress(t *testing.T) {
	env := sim.NewEnv(9)
	cfg := smallConfig()
	eng, _ := loadedEngine(env, cfg)
	var clients []*Client
	for w := 0; w < 4; w++ {
		client := NewClient(eng, cfg, int64(100+w), w%cfg.Warehouses+1)
		clients = append(clients, client)
		env.Go("terminal", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				client.RunMix(p)
			}
		})
	}
	env.RunUntil(10 * time.Second)
	var committed, aborted int64
	for _, c := range clients {
		counts, ab, _ := c.Counts()
		for _, n := range counts {
			committed += n
		}
		aborted += ab
	}
	if committed < 150 {
		t.Fatalf("committed only %d of 200", committed)
	}
	if aborted > 50 {
		t.Fatalf("aborts = %d, too many", aborted)
	}
}

func TestFullMixReplaysIdenticallyOnFollower(t *testing.T) {
	env := sim.NewEnv(11)
	cfg := smallConfig()
	sink := &nullSink{}
	log := wal.NewLog(env, sink, wal.Config{GroupBytes: 2048, GroupTimeout: 100 * time.Microsecond})
	eng := db.New(env, log)
	Load(eng, cfg, 1)

	// capture the log stream
	var stream []byte
	captured := &captureSink{out: &stream}
	log2 := wal.NewLog(env, captured, wal.Config{GroupBytes: 2048, GroupTimeout: 100 * time.Microsecond})
	eng2 := db.New(env, log2)
	Load(eng2, cfg, 1)
	client := NewClient(eng2, cfg, 7, 1)
	env.Go("terminal", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			client.RunMix(p)
		}
	})
	env.RunUntil(time.Minute)

	// replay onto a fresh copy of the initial state
	replica := db.New(env, nil)
	Load(replica, cfg, 1)
	follower := db.NewFollower(replica)
	if err := follower.Feed(stream); err != nil {
		t.Fatal(err)
	}
	if replica.Fingerprint() != eng2.Fingerprint() {
		t.Fatal("replayed replica diverged from primary")
	}
}

type captureSink struct{ out *[]byte }

func (s *captureSink) Write(p *sim.Proc, d []byte) error {
	*s.out = append(*s.out, d...)
	return nil
}
func (s *captureSink) Name() string { return "capture" }

func TestPipelinedTerminalCommitsThroughPipeline(t *testing.T) {
	env := sim.NewEnv(11)
	cfg := smallConfig()
	cfg.PipelineDepth = 4
	eng, _ := loadedEngine(env, cfg)
	client := NewClient(eng, cfg, 42, 1)
	if client.Pipeline() == nil {
		t.Fatal("PipelineDepth > 0 with a WAL-backed engine must install a pipeline")
	}
	env.Go("terminal", func(p *sim.Proc) {
		for i := 0; i < 60; i++ {
			client.RunMix(p)
		}
		client.DrainPipeline(p)
	})
	env.RunUntil(10 * time.Second)
	counts, _, _ := client.Counts()
	var committed int64
	for _, n := range counts {
		committed += n
	}
	if committed < 50 {
		t.Fatalf("committed only %d of 60", committed)
	}
	pl := client.Pipeline()
	if pl.Inflight() != 0 {
		t.Fatalf("%d tokens still in flight after drain", pl.Inflight())
	}
	// Read-only profiles (order-status, stock-level) skip the WAL, so
	// retirements count only write transactions — positive, bounded by
	// total commits.
	if pl.Retired() <= 0 || pl.Retired() > committed {
		t.Fatalf("pipeline retired %d of %d commits", pl.Retired(), committed)
	}
}

func TestPipelineDepthZeroInstallsNoPipeline(t *testing.T) {
	env := sim.NewEnv(11)
	cfg := smallConfig()
	eng, _ := loadedEngine(env, cfg)
	if client := NewClient(eng, cfg, 42, 1); client.Pipeline() != nil {
		t.Fatal("default config must keep the classic synchronous commit path")
	}
}

func TestPipelineDepthIgnoredWithoutWAL(t *testing.T) {
	env := sim.NewEnv(11)
	cfg := smallConfig()
	cfg.PipelineDepth = 8
	eng := db.New(env, nil) // volatile engine: nothing to pipeline
	Load(eng, cfg, 1)
	if client := NewClient(eng, cfg, 42, 1); client.Pipeline() != nil {
		t.Fatal("volatile engine cannot have a commit pipeline")
	}
}
