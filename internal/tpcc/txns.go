package tpcc

import (
	"errors"
	"math/rand"

	"xssd/internal/db"
	"xssd/internal/sim"
	"xssd/internal/wal"
)

// TxType identifies a TPC-C transaction profile.
type TxType int

// The five profiles.
const (
	NewOrderTx TxType = iota
	PaymentTx
	OrderStatusTx
	DeliveryTx
	StockLevelTx
	numTxTypes
)

// String implements fmt.Stringer.
func (t TxType) String() string {
	switch t {
	case NewOrderTx:
		return "NewOrder"
	case PaymentTx:
		return "Payment"
	case OrderStatusTx:
		return "OrderStatus"
	case DeliveryTx:
		return "Delivery"
	case StockLevelTx:
		return "StockLevel"
	}
	return "unknown"
}

// ErrRollback is the intentional 1% NewOrder rollback (clause 2.4.1.4).
var ErrRollback = errors.New("tpcc: intentional user rollback")

// Client executes the TPC-C mix against an engine from one home
// warehouse terminal.
type Client struct {
	cfg  Config
	eng  *db.Engine
	rng  *rand.Rand
	home int

	counts  [numTxTypes]int64
	aborts  int64
	retries int64

	// commitFn overrides the commit path (pipelined commit); nil means
	// synchronous tx.Commit.
	commitFn func(*sim.Proc, *db.Tx) error
	lastLSN  int64
	pipe     *wal.Pipeline // non-nil when Config.PipelineDepth > 0

	// Resolved table handles: every row access in the transaction mix
	// goes through these, skipping the engine's per-access name lookup.
	tabs tableSet
}

type tableSet struct {
	warehouse, district, customer, item, stock db.Table
	order, orderLine, newOrder, history        db.Table
	custIdx                                    db.Table
}

func resolveTables(eng *db.Engine) tableSet {
	return tableSet{
		warehouse: eng.Table(TWarehouse),
		district:  eng.Table(TDistrict),
		customer:  eng.Table(TCustomer),
		item:      eng.Table(TItem),
		stock:     eng.Table(TStock),
		order:     eng.Table(TOrder),
		orderLine: eng.Table(TOrderLine),
		newOrder:  eng.Table(TNewOrder),
		history:   eng.Table(THistory),
		custIdx:   eng.Table(TCustIdx),
	}
}

// NewClient creates a terminal bound to homeWID. With
// Config.PipelineDepth > 0 (and a WAL-backed engine) the terminal
// commits through a private wal.Pipeline, keeping that many
// transactions in flight instead of stalling on each durability wait;
// call DrainPipeline before reading final durable counts.
func NewClient(eng *db.Engine, cfg Config, seed int64, homeWID int) *Client {
	c := &Client{cfg: cfg, eng: eng, rng: rand.New(rand.NewSource(seed)), home: homeWID, tabs: resolveTables(eng)}
	if cfg.PipelineDepth > 0 && eng.Log() != nil {
		c.pipe = wal.NewPipeline(eng.Log(), cfg.PipelineDepth, cfg.PipelineScope)
		c.commitFn = func(p *sim.Proc, tx *db.Tx) error {
			lsn, err := tx.CommitPipelined(p, c.pipe)
			if err == nil {
				c.lastLSN = lsn
			}
			return err
		}
	}
	return c
}

// Pipeline returns the terminal's commit pipeline (nil on the classic
// synchronous path).
func (c *Client) Pipeline() *wal.Pipeline { return c.pipe }

// DrainPipeline blocks until every in-flight commit is durable; a no-op
// on the classic path.
func (c *Client) DrainPipeline(p *sim.Proc) {
	if c.pipe != nil {
		c.pipe.Drain(p)
	}
}

// Counts returns per-type committed counts plus total aborts and retries.
func (c *Client) Counts() (byType [5]int64, aborts, retries int64) {
	return c.counts, c.aborts, c.retries
}

// PickType draws a transaction type from the standard mix
// (45/43/4/4/4, clause 5.2.3).
func (c *Client) PickType() TxType {
	r := c.rng.Intn(100)
	switch {
	case r < 45:
		return NewOrderTx
	case r < 88:
		return PaymentTx
	case r < 92:
		return OrderStatusTx
	case r < 96:
		return DeliveryTx
	default:
		return StockLevelTx
	}
}

// RunOne executes one transaction of the given type, retrying OCC
// conflicts up to three times. It returns the committed transaction's
// type; intentional rollbacks count as completed NewOrders per the spec.
func (c *Client) RunOne(p *sim.Proc, t TxType) error {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		switch t {
		case NewOrderTx:
			err = c.newOrder(p)
		case PaymentTx:
			err = c.payment(p)
		case OrderStatusTx:
			err = c.orderStatus(p)
		case DeliveryTx:
			err = c.delivery(p)
		case StockLevelTx:
			err = c.stockLevel(p)
		}
		if err == db.ErrConflict {
			c.retries++
			continue
		}
		break
	}
	switch err {
	case nil, ErrRollback:
		c.counts[t]++
		return nil
	default:
		c.aborts++
		return err
	}
}

// RunMix draws from the mix and executes.
func (c *Client) RunMix(p *sim.Proc) (TxType, error) {
	t := c.PickType()
	return t, c.RunOne(p, t)
}

// commit finishes a transaction through the configured commit path.
func (c *Client) commit(p *sim.Proc, tx *db.Tx) error {
	if c.commitFn != nil {
		return c.commitFn(p, tx)
	}
	return tx.Commit(p)
}

// RunMixAsync executes one mixed transaction with pipelined commit: the
// write set is applied and appended to the log, and the LSN to wait on is
// returned instead of blocking (0 for read-only transactions and
// intentional rollbacks). Conflicts are retried like RunOne.
func (c *Client) RunMixAsync(p *sim.Proc) (int64, error) {
	c.lastLSN = 0
	prev := c.commitFn // a pipelined terminal restores its commit path
	c.commitFn = func(_ *sim.Proc, tx *db.Tx) error {
		lsn, err := tx.CommitAsync()
		if err == nil {
			c.lastLSN = lsn
		}
		return err
	}
	defer func() { c.commitFn = prev }()
	_, err := c.RunMix(p)
	return c.lastLSN, err
}

func (c *Client) randCID() int {
	return nuRand(c.rng, 1023, cCID, 1, c.cfg.CustomersPerDistrict)
}

func (c *Client) randIID() int {
	return nuRand(c.rng, 8191, cIID, 1, c.cfg.Items)
}

// newOrder implements clause 2.4: insert an order of 5-15 lines, updating
// district and stock.
func (c *Client) newOrder(p *sim.Proc) error {
	w := c.home
	d := c.rng.Intn(c.cfg.Districts) + 1
	cid := c.randCID()
	olCnt := c.rng.Intn(11) + 5
	rollback := c.rng.Intn(100) == 0 // 1% pick an unused item id

	tx := c.eng.BeginP(p)
	wRow, ok := tx.GetIn(c.tabs.warehouse, WKey(w))
	if !ok {
		tx.Abort()
		return errors.New("tpcc: missing warehouse")
	}
	wh := DecodeWarehouse(wRow)
	dRow, ok := tx.GetIn(c.tabs.district, DKey(w, d))
	if !ok {
		tx.Abort()
		return errors.New("tpcc: missing district")
	}
	dist := DecodeDistrict(dRow)
	oid := int(dist.NextOID)
	dist.NextOID++
	tx.PutOwnedIn(c.tabs.district, DKey(w, d), dist.Encode())

	cRow, ok := tx.GetIn(c.tabs.customer, CKey(w, d, cid))
	if !ok {
		tx.Abort()
		return errors.New("tpcc: missing customer")
	}
	cust := DecodeCustomer(cRow)

	allLocal := true
	var total int64
	for ln := 1; ln <= olCnt; ln++ {
		iid := c.randIID()
		if rollback && ln == olCnt {
			iid = c.cfg.Items + 1 // guaranteed miss
		}
		supplyW := w
		if c.cfg.Warehouses > 1 && c.rng.Intn(100) == 0 { // 1% remote
			for supplyW == w {
				supplyW = c.rng.Intn(c.cfg.Warehouses) + 1
			}
			allLocal = false
		}
		iRow, ok := tx.GetIn(c.tabs.item, IKey(iid))
		if !ok {
			tx.Abort()
			return ErrRollback // "unused item number" rollback
		}
		item := DecodeItem(iRow)
		sRow, ok := tx.GetIn(c.tabs.stock, SKey(supplyW, iid))
		if !ok {
			tx.Abort()
			return errors.New("tpcc: missing stock")
		}
		stock := DecodeStock(sRow)
		qty := int64(c.rng.Intn(10) + 1)
		if stock.Qty >= qty+10 {
			stock.Qty -= qty
		} else {
			stock.Qty += 91 - qty
		}
		stock.YTD += qty
		stock.OrderCnt++
		if supplyW != w {
			stock.RemoteCnt++
		}
		tx.PutOwnedIn(c.tabs.stock, SKey(supplyW, iid), stock.Encode())
		amount := qty * item.Price
		total += amount
		tx.PutOwnedIn(c.tabs.orderLine, OLKey(w, d, oid, ln), OrderLine{
			IID: int64(iid), SupplyW: int64(supplyW), Qty: qty,
			Amount: amount, DistInfo: stock.Dist,
		}.Encode())
	}
	_ = total * (10000 - cust.Discount) / 10000 * (10000 + wh.Tax + dist.Tax) / 10000

	tx.PutOwnedIn(c.tabs.order, OKey(w, d, oid), Order{
		CID: int64(cid), EntryD: int64(p.Now()), OLCnt: int64(olCnt), AllLocal: allLocal,
	}.Encode())
	tx.PutOwnedIn(c.tabs.newOrder, NOKey(w, d, oid), []byte{1})
	return c.commit(p, tx)
}

// payment implements clause 2.5: pay against warehouse/district/customer,
// recording history. 60% select the customer by last name, 15% pay through
// a remote warehouse.
func (c *Client) payment(p *sim.Proc) error {
	w := c.home
	d := c.rng.Intn(c.cfg.Districts) + 1
	cw, cd := w, d
	if c.cfg.Warehouses > 1 && c.rng.Intn(100) < 15 {
		for cw == w {
			cw = c.rng.Intn(c.cfg.Warehouses) + 1
		}
		cd = c.rng.Intn(c.cfg.Districts) + 1
	}
	amount := int64(c.rng.Intn(499900) + 100)

	tx := c.eng.BeginP(p)
	wRow, ok := tx.GetIn(c.tabs.warehouse, WKey(w))
	if !ok {
		tx.Abort()
		return errors.New("tpcc: missing warehouse")
	}
	wh := DecodeWarehouse(wRow)
	wh.YTD += amount
	tx.PutOwnedIn(c.tabs.warehouse, WKey(w), wh.Encode())

	dRow, ok := tx.GetIn(c.tabs.district, DKey(w, d))
	if !ok {
		tx.Abort()
		return errors.New("tpcc: missing district")
	}
	dist := DecodeDistrict(dRow)
	dist.YTD += amount
	tx.PutOwnedIn(c.tabs.district, DKey(w, d), dist.Encode())

	cid, err := c.selectCustomer(tx, cw, cd)
	if err != nil {
		tx.Abort()
		return err
	}
	cRow, ok := tx.GetIn(c.tabs.customer, CKey(cw, cd, cid))
	if !ok {
		tx.Abort()
		return errors.New("tpcc: missing customer")
	}
	cust := DecodeCustomer(cRow)
	cust.Balance -= amount
	cust.YTDPayment += amount
	cust.PaymentCnt++
	if cust.Credit == "BC" {
		cust.Data = randomFiller(c.rng, c.cfg.FillerLen)
	}
	tx.PutOwnedIn(c.tabs.customer, CKey(cw, cd, cid), cust.Encode())
	tx.PutOwnedIn(c.tabs.history, HKey(w, d, tx.ID()), History{
		CID: int64(cid), Amount: amount, Date: int64(p.Now()),
		Data: wh.Name + " " + dist.Name,
	}.Encode())
	return c.commit(p, tx)
}

// selectCustomer picks by last name 60% of the time (middle match, clause
// 2.5.2.2), by id otherwise.
func (c *Client) selectCustomer(tx *db.Tx, w, d int) (int, error) {
	if c.rng.Intn(100) < 60 {
		last := LastName(nuRand(c.rng, 255, cLast, 0, 999))
		idxRow, ok := tx.GetIn(c.tabs.custIdx, CIdxKey(w, d, last))
		if !ok {
			// Name not present at this scale: fall back to id selection.
			return c.randCID(), nil
		}
		ids := decodeIDList(idxRow)
		if len(ids) == 0 {
			return c.randCID(), nil
		}
		return int(ids[len(ids)/2]), nil
	}
	return c.randCID(), nil
}

// orderStatus implements clause 2.6 (read only): a customer's most recent
// order and its lines.
func (c *Client) orderStatus(p *sim.Proc) error {
	w := c.home
	d := c.rng.Intn(c.cfg.Districts) + 1
	tx := c.eng.BeginP(p)
	cid, err := c.selectCustomer(tx, w, d)
	if err != nil {
		tx.Abort()
		return err
	}
	if _, ok := tx.GetIn(c.tabs.customer, CKey(w, d, cid)); !ok {
		tx.Abort()
		return errors.New("tpcc: missing customer")
	}
	dRow, ok := tx.GetIn(c.tabs.district, DKey(w, d))
	if !ok {
		tx.Abort()
		return errors.New("tpcc: missing district")
	}
	dist := DecodeDistrict(dRow)
	// Scan backwards for this customer's latest order (bounded walk).
	for oid := int(dist.NextOID) - 1; oid >= 1 && oid > int(dist.NextOID)-50; oid-- {
		oRow, ok := tx.GetIn(c.tabs.order, OKey(w, d, oid))
		if !ok {
			continue
		}
		order := DecodeOrder(oRow)
		if order.CID != int64(cid) {
			continue
		}
		for ln := 1; ln <= int(order.OLCnt); ln++ {
			tx.GetIn(c.tabs.orderLine, OLKey(w, d, oid, ln))
		}
		break
	}
	return c.commit(p, tx)
}

// delivery implements clause 2.7: deliver the oldest undelivered order of
// each district.
func (c *Client) delivery(p *sim.Proc) error {
	w := c.home
	carrier := int64(c.rng.Intn(10) + 1)
	tx := c.eng.BeginP(p)
	for d := 1; d <= c.cfg.Districts; d++ {
		dRow, ok := tx.GetIn(c.tabs.district, DKey(w, d))
		if !ok {
			continue
		}
		dist := DecodeDistrict(dRow)
		oid := int(dist.NextDelivery)
		if int64(oid) >= dist.NextOID {
			continue // nothing to deliver in this district
		}
		if _, ok := tx.GetIn(c.tabs.newOrder, NOKey(w, d, oid)); !ok {
			// Order consumed by a concurrent delivery; advance anyway.
			dist.NextDelivery++
			tx.PutOwnedIn(c.tabs.district, DKey(w, d), dist.Encode())
			continue
		}
		tx.DeleteIn(c.tabs.newOrder, NOKey(w, d, oid))
		dist.NextDelivery++
		tx.PutOwnedIn(c.tabs.district, DKey(w, d), dist.Encode())

		oRow, ok := tx.GetIn(c.tabs.order, OKey(w, d, oid))
		if !ok {
			continue
		}
		order := DecodeOrder(oRow)
		order.Carrier = carrier
		tx.PutOwnedIn(c.tabs.order, OKey(w, d, oid), order.Encode())
		// DeliveryD == 0 means "undelivered", so a delivery at virtual
		// time zero must still stamp a nonzero instant.
		stamp := int64(p.Now())
		if stamp == 0 {
			stamp = 1
		}
		var total int64
		for ln := 1; ln <= int(order.OLCnt); ln++ {
			olRow, ok := tx.GetIn(c.tabs.orderLine, OLKey(w, d, oid, ln))
			if !ok {
				continue
			}
			ol := DecodeOrderLine(olRow)
			ol.DeliveryD = stamp
			total += ol.Amount
			tx.PutOwnedIn(c.tabs.orderLine, OLKey(w, d, oid, ln), ol.Encode())
		}
		cRow, ok := tx.GetIn(c.tabs.customer, CKey(w, d, int(order.CID)))
		if !ok {
			continue
		}
		cust := DecodeCustomer(cRow)
		cust.Balance += total
		cust.DeliveryCnt++
		tx.PutOwnedIn(c.tabs.customer, CKey(w, d, int(order.CID)), cust.Encode())
	}
	return c.commit(p, tx)
}

// stockLevel implements clause 2.8 (read only): count recent items with
// stock below a threshold.
func (c *Client) stockLevel(p *sim.Proc) error {
	w := c.home
	d := c.rng.Intn(c.cfg.Districts) + 1
	threshold := int64(c.rng.Intn(11) + 10)
	tx := c.eng.BeginP(p)
	dRow, ok := tx.GetIn(c.tabs.district, DKey(w, d))
	if !ok {
		tx.Abort()
		return errors.New("tpcc: missing district")
	}
	dist := DecodeDistrict(dRow)
	low := 0
	seen := map[int64]bool{}
	for oid := int(dist.NextOID) - 1; oid >= 1 && oid > int(dist.NextOID)-20; oid-- {
		oRow, ok := tx.GetIn(c.tabs.order, OKey(w, d, oid))
		if !ok {
			continue
		}
		order := DecodeOrder(oRow)
		for ln := 1; ln <= int(order.OLCnt); ln++ {
			olRow, ok := tx.GetIn(c.tabs.orderLine, OLKey(w, d, oid, ln))
			if !ok {
				continue
			}
			ol := DecodeOrderLine(olRow)
			if seen[ol.IID] {
				continue
			}
			seen[ol.IID] = true
			sRow, ok := tx.GetIn(c.tabs.stock, SKey(w, int(ol.IID)))
			if !ok {
				continue
			}
			if DecodeStock(sRow).Qty < threshold {
				low++
			}
		}
	}
	_ = low
	return c.commit(p, tx)
}
