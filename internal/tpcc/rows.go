// Package tpcc implements the TPC-C workload the paper's evaluation drives
// through ERMIA (§6: "the TPC-C benchmark ... with 16 warehouses"): table
// schemas with compact binary row codecs, the standard data generator, and
// the five transaction profiles with the standard mix.
package tpcc

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"xssd/internal/db"
	"xssd/internal/obs"
)

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	TCustIdx   = "customer_name_idx"
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrder     = "orders"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// Config scales the database. The TPC-C spec values are Districts=10,
// CustomersPerDistrict=3000, Items=100000; the default scales customers
// and items down so simulations stay light while preserving the log
// traffic shape (record sizes are governed by FillerLen).
type Config struct {
	// Warehouses is the warehouse count W — the TPC-C scale factor.
	Warehouses int
	// Districts is the number of districts per warehouse (spec: 10).
	Districts int
	// CustomersPerDistrict sizes each district's customer table
	// (spec: 3000; the default shrinks it to keep simulations light).
	CustomersPerDistrict int
	// Items is the size of the shared item catalog (spec: 100000).
	Items int
	// FillerLen sizes the free-text fields (spec uses 24-50 chars); it is
	// the main knob for WAL record size.
	FillerLen int
	// PipelineDepth switches the terminal onto the pipelined CommitAsync
	// path with this many commits in flight (a wal.Pipeline per client).
	// 0, the default, keeps the classic synchronous tx.Commit —
	// byte-identical to the pre-pipeline behavior. Ignored when the
	// engine runs without a WAL.
	PipelineDepth int
	// PipelineScope, when non-zero, registers the pipeline's instruments
	// (submit→durable latency, in-flight depth) under this scope.
	PipelineScope obs.Scope
}

// DefaultConfig is the scaled-down configuration used by tests and the
// benchmark harness (16 warehouses like the paper, reduced rows).
func DefaultConfig() Config {
	return Config{Warehouses: 16, Districts: 10, CustomersPerDistrict: 60, Items: 200, FillerLen: 12}
}

// SpecConfig is the full TPC-C scale (memory hungry; documentation value).
func SpecConfig() Config {
	return Config{Warehouses: 16, Districts: 10, CustomersPerDistrict: 3000, Items: 100000, FillerLen: 24}
}

// --- key construction -------------------------------------------------------

// Keys are built with strconv-style appends, not fmt: key construction
// runs once or more per row access and Sprintf was a top profile entry
// in the Fig 9 workload. Each builder produces the exact byte sequence
// the old Sprintf form did.

func key2(prefix string, a int64) string {
	b := make([]byte, 0, 24)
	b = append(b, prefix...)
	b = strconv.AppendInt(b, a, 10)
	return string(b)
}

func key3(prefix string, a, c int64) string {
	b := make([]byte, 0, 24)
	b = append(b, prefix...)
	b = strconv.AppendInt(b, a, 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, c, 10)
	return string(b)
}

func key4(prefix string, a, c, d int64) string {
	b := make([]byte, 0, 32)
	b = append(b, prefix...)
	b = strconv.AppendInt(b, a, 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, c, 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, d, 10)
	return string(b)
}

// WKey..HKey build the composite row keys.
func WKey(w int) string       { return key2("w:", int64(w)) }
func DKey(w, d int) string    { return key3("d:", int64(w), int64(d)) }
func CKey(w, d, c int) string { return key4("c:", int64(w), int64(d), int64(c)) }
func CIdxKey(w, d int, last string) string {
	b := make([]byte, 0, 40)
	b = append(b, "cn:"...)
	b = strconv.AppendInt(b, int64(w), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(d), 10)
	b = append(b, ':')
	b = append(b, last...)
	return string(b)
}
func IKey(i int) string       { return key2("i:", int64(i)) }
func SKey(w, i int) string    { return key3("s:", int64(w), int64(i)) }
func OKey(w, d, o int) string { return key4("o:", int64(w), int64(d), int64(o)) }
func OLKey(w, d, o, n int) string {
	b := make([]byte, 0, 40)
	b = append(b, "ol:"...)
	b = strconv.AppendInt(b, int64(w), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(d), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(o), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(n), 10)
	return string(b)
}
func NOKey(w, d, o int) string       { return key4("no:", int64(w), int64(d), int64(o)) }
func HKey(w, d int, tx int64) string { return key4("h:", int64(w), int64(d), tx) }

// --- binary codec -----------------------------------------------------------

type enc struct{ b []byte }

// newEnc returns an encoder whose buffer is pre-sized for the row about
// to be written, so the append chain never reallocates on the hot path.
func newEnc(capHint int) enc { return enc{b: make([]byte, 0, capHint)} }

func (e *enc) u(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i(v int64)  { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) s(s string) {
	e.u(uint64(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b   []byte
	bad bool
}

func (d *dec) u() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) s() string {
	n := int(d.u())
	if d.bad || n > len(d.b) {
		d.bad = true
		return ""
	}
	out := string(d.b[:n])
	d.b = d.b[n:]
	return out
}

// --- rows -------------------------------------------------------------------

// Warehouse row.
type Warehouse struct {
	Name string
	Tax  int64 // basis points
	YTD  int64 // cents
}

// Encode serializes the row.
func (r Warehouse) Encode() []byte {
	e := newEnc(len(r.Name) + 24)
	e.s(r.Name)
	e.i(r.Tax)
	e.i(r.YTD)
	return e.b
}

// DecodeWarehouse parses a warehouse row.
func DecodeWarehouse(b []byte) Warehouse {
	d := dec{b: b}
	return Warehouse{Name: d.s(), Tax: d.i(), YTD: d.i()}
}

// District row.
type District struct {
	Name         string
	Tax          int64
	YTD          int64
	NextOID      int64 // next order id to assign
	NextDelivery int64 // oldest undelivered order id
}

// Encode serializes the row.
func (r District) Encode() []byte {
	e := newEnc(len(r.Name) + 48)
	e.s(r.Name)
	e.i(r.Tax)
	e.i(r.YTD)
	e.i(r.NextOID)
	e.i(r.NextDelivery)
	return e.b
}

// DecodeDistrict parses a district row.
func DecodeDistrict(b []byte) District {
	d := dec{b: b}
	return District{Name: d.s(), Tax: d.i(), YTD: d.i(), NextOID: d.i(), NextDelivery: d.i()}
}

// Customer row.
type Customer struct {
	First       string
	Last        string
	Credit      string // "GC" or "BC"
	Discount    int64  // basis points
	Balance     int64  // cents (may go negative)
	YTDPayment  int64
	PaymentCnt  int64
	DeliveryCnt int64
	Data        string
}

// Encode serializes the row.
func (r Customer) Encode() []byte {
	e := newEnc(len(r.First) + len(r.Last) + len(r.Credit) + len(r.Data) + 64)
	e.s(r.First)
	e.s(r.Last)
	e.s(r.Credit)
	e.i(r.Discount)
	e.i(r.Balance)
	e.i(r.YTDPayment)
	e.i(r.PaymentCnt)
	e.i(r.DeliveryCnt)
	e.s(r.Data)
	return e.b
}

// DecodeCustomer parses a customer row.
func DecodeCustomer(b []byte) Customer {
	d := dec{b: b}
	return Customer{
		First: d.s(), Last: d.s(), Credit: d.s(),
		Discount: d.i(), Balance: d.i(), YTDPayment: d.i(),
		PaymentCnt: d.i(), DeliveryCnt: d.i(), Data: d.s(),
	}
}

// Item row.
type Item struct {
	Name  string
	Price int64 // cents
	Data  string
}

// Encode serializes the row.
func (r Item) Encode() []byte {
	e := newEnc(len(r.Name) + len(r.Data) + 24)
	e.s(r.Name)
	e.i(r.Price)
	e.s(r.Data)
	return e.b
}

// DecodeItem parses an item row.
func DecodeItem(b []byte) Item {
	d := dec{b: b}
	return Item{Name: d.s(), Price: d.i(), Data: d.s()}
}

// Stock row.
type Stock struct {
	Qty       int64
	YTD       int64
	OrderCnt  int64
	RemoteCnt int64
	Dist      string // district info filler
	Data      string
}

// Encode serializes the row.
func (r Stock) Encode() []byte {
	e := newEnc(len(r.Dist) + len(r.Data) + 48)
	e.i(r.Qty)
	e.i(r.YTD)
	e.i(r.OrderCnt)
	e.i(r.RemoteCnt)
	e.s(r.Dist)
	e.s(r.Data)
	return e.b
}

// DecodeStock parses a stock row.
func DecodeStock(b []byte) Stock {
	d := dec{b: b}
	return Stock{Qty: d.i(), YTD: d.i(), OrderCnt: d.i(), RemoteCnt: d.i(), Dist: d.s(), Data: d.s()}
}

// Order row.
type Order struct {
	CID      int64
	EntryD   int64 // virtual nanoseconds
	Carrier  int64 // 0: not delivered
	OLCnt    int64
	AllLocal bool
}

// Encode serializes the row.
func (r Order) Encode() []byte {
	e := newEnc(48)
	e.i(r.CID)
	e.i(r.EntryD)
	e.i(r.Carrier)
	e.i(r.OLCnt)
	al := int64(0)
	if r.AllLocal {
		al = 1
	}
	e.i(al)
	return e.b
}

// DecodeOrder parses an order row.
func DecodeOrder(b []byte) Order {
	d := dec{b: b}
	return Order{CID: d.i(), EntryD: d.i(), Carrier: d.i(), OLCnt: d.i(), AllLocal: d.i() == 1}
}

// OrderLine row.
type OrderLine struct {
	IID       int64
	SupplyW   int64
	Qty       int64
	Amount    int64 // cents
	DeliveryD int64 // 0: undelivered
	DistInfo  string
}

// Encode serializes the row.
func (r OrderLine) Encode() []byte {
	e := newEnc(len(r.DistInfo) + 56)
	e.i(r.IID)
	e.i(r.SupplyW)
	e.i(r.Qty)
	e.i(r.Amount)
	e.i(r.DeliveryD)
	e.s(r.DistInfo)
	return e.b
}

// DecodeOrderLine parses an order-line row.
func DecodeOrderLine(b []byte) OrderLine {
	d := dec{b: b}
	return OrderLine{IID: d.i(), SupplyW: d.i(), Qty: d.i(), Amount: d.i(), DeliveryD: d.i(), DistInfo: d.s()}
}

// History row.
type History struct {
	CID    int64
	Amount int64
	Date   int64
	Data   string
}

// Encode serializes the row.
func (r History) Encode() []byte {
	e := newEnc(len(r.Data) + 32)
	e.i(r.CID)
	e.i(r.Amount)
	e.i(r.Date)
	e.s(r.Data)
	return e.b
}

// DecodeHistory parses a history row.
func DecodeHistory(b []byte) History {
	d := dec{b: b}
	return History{CID: d.i(), Amount: d.i(), Date: d.i(), Data: d.s()}
}

// encodeIDList / decodeIDList back the customer-by-last-name index.
func encodeIDList(ids []int64) []byte {
	e := newEnc(8 + 10*len(ids))
	e.u(uint64(len(ids)))
	for _, id := range ids {
		e.i(id)
	}
	return e.b
}

func decodeIDList(b []byte) []int64 {
	d := dec{b: b}
	n := int(d.u())
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.i())
	}
	return out
}

// --- random helpers (TPC-C clause 2.1.6 and 4.3) ----------------------------

// nuRand C constants, fixed per spec shape (run-time constants).
const (
	cLast = 173
	cCID  = 319
	cIID  = 1217
)

// nuRand implements the non-uniform random function NURand(A, x, y).
func nuRand(rng *rand.Rand, a, c, x, y int) int {
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

var lastSyllables = [10]string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName builds the spec's syllable-composed customer last name.
func LastName(num int) string {
	return lastSyllables[num/100%10] + lastSyllables[num/10%10] + lastSyllables[num%10]
}

func randomFiller(rng *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[rng.Intn(len(alpha))])
	}
	return sb.String()
}

// --- loader -----------------------------------------------------------------

// Load populates eng with a freshly generated TPC-C database, bypassing
// the log (clause 4.3 population, scaled by cfg).
func Load(eng *db.Engine, cfg Config, seed int64) {
	LoadWarehouses(eng, cfg, seed, nil)
}

// LoadWarehouses populates eng like Load but installs only the rows of
// warehouses the owns predicate claims (nil claims all). The generator
// draws the identical random sequence regardless of ownership, so shards
// loading disjoint warehouse slices of the same (cfg, seed) hold exactly
// the rows one engine loading everything would — partitioning changes
// placement, never content. The item catalog is read-only and installs
// everywhere.
func LoadWarehouses(eng *db.Engine, cfg Config, seed int64, owns func(w int) bool) {
	rng := rand.New(rand.NewSource(seed))
	for _, t := range []string{TWarehouse, TDistrict, TCustomer, TCustIdx, THistory, TNewOrder, TOrder, TOrderLine, TItem, TStock} {
		eng.CreateTable(t)
	}
	for i := 1; i <= cfg.Items; i++ {
		eng.LoadRow(TItem, IKey(i), Item{
			Name:  randomFiller(rng, cfg.FillerLen),
			Price: int64(rng.Intn(9900) + 100),
			Data:  randomFiller(rng, cfg.FillerLen),
		}.Encode())
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		keep := owns == nil || owns(w)
		put := func(table, key string, val []byte) {
			if keep {
				eng.LoadRow(table, key, val)
			}
		}
		put(TWarehouse, WKey(w), Warehouse{
			Name: fmt.Sprintf("wh-%d", w),
			Tax:  int64(rng.Intn(2000)),
		}.Encode())
		for i := 1; i <= cfg.Items; i++ {
			put(TStock, SKey(w, i), Stock{
				Qty:  int64(rng.Intn(91) + 10),
				Dist: randomFiller(rng, cfg.FillerLen),
				Data: randomFiller(rng, cfg.FillerLen),
			}.Encode())
		}
		for d := 1; d <= cfg.Districts; d++ {
			put(TDistrict, DKey(w, d), District{
				Name:         fmt.Sprintf("dist-%d-%d", w, d),
				Tax:          int64(rng.Intn(2000)),
				NextOID:      1,
				NextDelivery: 1,
			}.Encode())
			byName := map[string][]int64{}
			for c := 1; c <= cfg.CustomersPerDistrict; c++ {
				nameNum := c - 1
				if nameNum >= 1000 {
					nameNum = nuRand(rng, 255, cLast, 0, 999)
				}
				last := LastName(nameNum)
				credit := "GC"
				if rng.Intn(10) == 0 {
					credit = "BC"
				}
				put(TCustomer, CKey(w, d, c), Customer{
					First:    randomFiller(rng, cfg.FillerLen),
					Last:     last,
					Credit:   credit,
					Discount: int64(rng.Intn(5000)),
					Balance:  -1000,
					Data:     randomFiller(rng, cfg.FillerLen),
				}.Encode())
				byName[last] = append(byName[last], int64(c))
			}
			for last, ids := range byName {
				put(TCustIdx, CIdxKey(w, d, last), encodeIDList(ids))
			}
		}
	}
}
