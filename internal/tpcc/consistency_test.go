package tpcc

import (
	"testing"
	"time"

	"xssd/internal/db"
	"xssd/internal/sim"
)

// TPC-C consistency conditions (spec clause 3.3.2), checked after a mixed
// workload. These catch logic errors in the transaction profiles that
// simple row-count tests miss.

func runMixedWorkload(t *testing.T, txns int) (*db.Engine, Config) {
	t.Helper()
	env := sim.NewEnv(17)
	eng := db.New(env, nil) // volatile engine: consistency is in-memory
	cfg := smallConfig()
	Load(eng, cfg, 1)
	for w := 0; w < 2; w++ {
		w := w
		env.Go("terminal", func(p *sim.Proc) {
			client := NewClient(eng, cfg, int64(50+w), w%cfg.Warehouses+1)
			for i := 0; i < txns; i++ {
				p.Sleep(26 * time.Microsecond) // per-txn compute budget
				client.RunMix(p)
			}
		})
	}
	env.RunUntil(time.Minute)
	return eng, cfg
}

// Condition 1-ish: for every district, NextOID-1 equals the highest order
// id present, and every order id below NextOID exists.
func TestConsistencyDistrictNextOID(t *testing.T) {
	eng, cfg := runMixedWorkload(t, 150)
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= cfg.Districts; d++ {
			dRow, ok := eng.Read(TDistrict, DKey(w, d))
			if !ok {
				t.Fatalf("missing district %d:%d", w, d)
			}
			dist := DecodeDistrict(dRow)
			for oid := 1; oid < int(dist.NextOID); oid++ {
				if _, ok := eng.Read(TOrder, OKey(w, d, oid)); !ok {
					t.Fatalf("district %d:%d: order %d missing below NextOID %d", w, d, oid, dist.NextOID)
				}
			}
			if _, ok := eng.Read(TOrder, OKey(w, d, int(dist.NextOID))); ok {
				t.Fatalf("district %d:%d: order exists at NextOID %d", w, d, dist.NextOID)
			}
			if dist.NextDelivery > dist.NextOID {
				t.Fatalf("district %d:%d: delivery pointer %d beyond NextOID %d", w, d, dist.NextDelivery, dist.NextOID)
			}
		}
	}
}

// Condition 2-ish: every order has exactly OLCnt order lines, numbered
// 1..OLCnt, and delivered orders have delivered lines.
func TestConsistencyOrderLines(t *testing.T) {
	eng, cfg := runMixedWorkload(t, 150)
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= cfg.Districts; d++ {
			dRow, _ := eng.Read(TDistrict, DKey(w, d))
			dist := DecodeDistrict(dRow)
			for oid := 1; oid < int(dist.NextOID); oid++ {
				oRow, _ := eng.Read(TOrder, OKey(w, d, oid))
				order := DecodeOrder(oRow)
				if order.OLCnt < 5 || order.OLCnt > 15 {
					t.Fatalf("order %d:%d:%d has %d lines", w, d, oid, order.OLCnt)
				}
				for ln := 1; ln <= int(order.OLCnt); ln++ {
					olRow, ok := eng.Read(TOrderLine, OLKey(w, d, oid, ln))
					if !ok {
						t.Fatalf("order %d:%d:%d missing line %d", w, d, oid, ln)
					}
					ol := DecodeOrderLine(olRow)
					if order.Carrier != 0 && ol.DeliveryD == 0 {
						t.Fatalf("delivered order %d:%d:%d has undelivered line %d", w, d, oid, ln)
					}
					if order.Carrier == 0 && ol.DeliveryD != 0 {
						t.Fatalf("undelivered order %d:%d:%d has delivered line %d", w, d, oid, ln)
					}
				}
				if _, ok := eng.Read(TOrderLine, OLKey(w, d, oid, int(order.OLCnt)+1)); ok {
					t.Fatalf("order %d:%d:%d has extra line", w, d, oid)
				}
			}
		}
	}
}

// Condition 3-ish: a new_order row exists exactly for undelivered orders
// in [NextDelivery, NextOID).
func TestConsistencyNewOrderRows(t *testing.T) {
	eng, cfg := runMixedWorkload(t, 150)
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= cfg.Districts; d++ {
			dRow, _ := eng.Read(TDistrict, DKey(w, d))
			dist := DecodeDistrict(dRow)
			for oid := 1; oid < int(dist.NextOID); oid++ {
				_, hasNO := eng.Read(TNewOrder, NOKey(w, d, oid))
				if int64(oid) < dist.NextDelivery && hasNO {
					t.Fatalf("delivered order %d:%d:%d still in new_order", w, d, oid)
				}
				if int64(oid) >= dist.NextDelivery && !hasNO {
					t.Fatalf("pending order %d:%d:%d missing from new_order", w, d, oid)
				}
			}
		}
	}
}

// Money conservation: warehouse YTD equals the sum of its districts' YTD
// (all payments add to both), and every payment appears in history.
func TestConsistencyPaymentAccounting(t *testing.T) {
	eng, cfg := runMixedWorkload(t, 200)
	var historyTotal int64
	for w := 1; w <= cfg.Warehouses; w++ {
		wRow, _ := eng.Read(TWarehouse, WKey(w))
		wh := DecodeWarehouse(wRow)
		var districtSum int64
		for d := 1; d <= cfg.Districts; d++ {
			dRow, _ := eng.Read(TDistrict, DKey(w, d))
			districtSum += DecodeDistrict(dRow).YTD
		}
		if wh.YTD != districtSum {
			t.Fatalf("warehouse %d YTD %d != district sum %d", w, wh.YTD, districtSum)
		}
		historyTotal += wh.YTD
	}
	// History rows carry every payment amount; their sum must match.
	var historySum int64
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= cfg.Districts; d++ {
			for txid := int64(1); txid < 100000; txid++ {
				hRow, ok := eng.Read(THistory, HKey(w, d, txid))
				if !ok {
					continue
				}
				historySum += DecodeHistory(hRow).Amount
			}
		}
	}
	if historySum != historyTotal {
		t.Fatalf("history sum %d != warehouse YTD total %d", historySum, historyTotal)
	}
}

// The customer name index always points at existing customers.
func TestConsistencyNameIndex(t *testing.T) {
	eng, cfg := runMixedWorkload(t, 50)
	checked := 0
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= cfg.Districts; d++ {
			for num := 0; num < 1000; num++ {
				idxRow, ok := eng.Read(TCustIdx, CIdxKey(w, d, LastName(num)))
				if !ok {
					continue
				}
				for _, cid := range decodeIDList(idxRow) {
					cRow, ok := eng.Read(TCustomer, CKey(w, d, int(cid)))
					if !ok {
						t.Fatalf("index names missing customer %d:%d:%d", w, d, cid)
					}
					if DecodeCustomer(cRow).Last != LastName(num) {
						t.Fatalf("index/customer last-name mismatch at %d:%d:%d", w, d, cid)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("name index empty")
	}
}
