// The sharded terminal: TPC-C over a warehouse-partitioned cluster.
//
// A ShardedClient is homed on one warehouse (hence one shard) exactly
// like a classic terminal. The three always-local profiles (OrderStatus,
// Delivery, StockLevel) run unchanged on the home engine; NewOrder and
// Payment run on shard.Tx, where the spec's remote-warehouse choices
// (supply warehouses for order lines, the customer's warehouse for
// payments) route by ownership — a "remote" warehouse on the home shard
// is still a purely local transaction, one on another shard makes the
// commit a cross-shard 2PC.
package tpcc

import (
	"errors"
	"math/rand"

	"xssd/internal/db"
	"xssd/internal/shard"
	"xssd/internal/sim"
)

// RemoteMix sets how often NewOrder and Payment reach beyond the home
// warehouse. The TPC-C spec values are {LinePct: 1, PayPct: 15}; the
// shard benchmarks sweep it to dial cross-shard pressure.
type RemoteMix struct {
	// LinePct is the percent chance each order line's supply warehouse
	// is remote (spec: 1).
	LinePct int
	// PayPct is the percent chance a payment goes through a remote
	// customer warehouse (spec: 15).
	PayPct int
}

// SpecMix is the standard remote mix (1% remote order lines, 15% remote
// payments).
func SpecMix() RemoteMix { return RemoteMix{LinePct: 1, PayPct: 15} }

// ShardedClient is one terminal against a shard.Cluster. All methods
// must run on the home shard's Env.
type ShardedClient struct {
	cl   *shard.Cluster
	home *shard.Shard
	mix  RemoteMix
	// inner handles the always-local profiles and owns the counters and
	// the (single, shared) rng — the sharded profiles draw from the same
	// stream, so the terminal stays one deterministic sequence.
	inner *Client
}

// NewShardedClient creates a terminal homed on warehouse homeWID of cl.
func NewShardedClient(cl *shard.Cluster, cfg Config, seed int64, homeWID int, mix RemoteMix) *ShardedClient {
	home := cl.Shard(cl.ShardOf(homeWID))
	eng := home.Engine()
	inner := &Client{cfg: cfg, eng: eng, rng: rand.New(rand.NewSource(seed)), home: homeWID, tabs: resolveTables(eng)}
	return &ShardedClient{cl: cl, home: home, mix: mix, inner: inner}
}

// Home returns the terminal's home shard.
func (c *ShardedClient) Home() *shard.Shard { return c.home }

// Counts returns per-type committed counts plus total aborts and retries.
func (c *ShardedClient) Counts() (byType [5]int64, aborts, retries int64) {
	return c.inner.Counts()
}

// RunMix draws from the standard mix and executes one transaction,
// retrying OCC conflicts up to three times. Unreachable-peer failures
// (shard.ErrUnavailable) abort without retry — the terminal's loop
// decides whether to keep going.
func (c *ShardedClient) RunMix(p *sim.Proc) (TxType, error) {
	t := c.inner.PickType()
	switch t {
	case OrderStatusTx, DeliveryTx, StockLevelTx:
		return t, c.inner.RunOne(p, t)
	}
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if t == NewOrderTx {
			err = c.newOrder(p)
		} else {
			err = c.payment(p)
		}
		if err == db.ErrConflict {
			c.inner.retries++
			continue
		}
		break
	}
	switch err {
	case nil, ErrRollback:
		c.inner.counts[t]++
		return t, nil
	default:
		c.inner.aborts++
		return t, err
	}
}

// newOrder is the distributed clause-2.4 profile: order lines whose
// supply warehouse lives on another shard read and update that shard's
// stock inside the same transaction.
func (c *ShardedClient) newOrder(p *sim.Proc) error {
	in := c.inner
	w := in.home
	d := in.rng.Intn(in.cfg.Districts) + 1
	cid := in.randCID()
	olCnt := in.rng.Intn(11) + 5
	rollback := in.rng.Intn(100) == 0

	tx := c.home.Begin()
	abort := func(err error) error {
		tx.Abort()
		return err
	}
	wRow, ok, err := tx.GetW(p, w, TWarehouse, WKey(w))
	if err != nil || !ok {
		return abort(orErr(err, "tpcc: missing warehouse"))
	}
	wh := DecodeWarehouse(wRow)
	dRow, ok, err := tx.GetW(p, w, TDistrict, DKey(w, d))
	if err != nil || !ok {
		return abort(orErr(err, "tpcc: missing district"))
	}
	dist := DecodeDistrict(dRow)
	oid := int(dist.NextOID)
	dist.NextOID++
	tx.PutW(w, TDistrict, DKey(w, d), dist.Encode())

	cRow, ok, err := tx.GetW(p, w, TCustomer, CKey(w, d, cid))
	if err != nil || !ok {
		return abort(orErr(err, "tpcc: missing customer"))
	}
	cust := DecodeCustomer(cRow)

	allLocal := true
	var total int64
	for ln := 1; ln <= olCnt; ln++ {
		iid := in.randIID()
		if rollback && ln == olCnt {
			iid = in.cfg.Items + 1
		}
		supplyW := w
		if in.cfg.Warehouses > 1 && in.rng.Intn(100) < c.mix.LinePct {
			for supplyW == w {
				supplyW = in.rng.Intn(in.cfg.Warehouses) + 1
			}
			allLocal = false
		}
		// The item catalog replicates to every shard; read it at home.
		iRow, ok, err := tx.GetW(p, w, TItem, IKey(iid))
		if err != nil {
			return abort(err)
		}
		if !ok {
			return abort(ErrRollback)
		}
		item := DecodeItem(iRow)
		sRow, ok, err := tx.GetW(p, supplyW, TStock, SKey(supplyW, iid))
		if err != nil || !ok {
			return abort(orErr(err, "tpcc: missing stock"))
		}
		stock := DecodeStock(sRow)
		qty := int64(in.rng.Intn(10) + 1)
		if stock.Qty >= qty+10 {
			stock.Qty -= qty
		} else {
			stock.Qty += 91 - qty
		}
		stock.YTD += qty
		stock.OrderCnt++
		if supplyW != w {
			stock.RemoteCnt++
		}
		tx.PutW(supplyW, TStock, SKey(supplyW, iid), stock.Encode())
		amount := qty * item.Price
		total += amount
		tx.PutW(w, TOrderLine, OLKey(w, d, oid, ln), OrderLine{
			IID: int64(iid), SupplyW: int64(supplyW), Qty: qty,
			Amount: amount, DistInfo: stock.Dist,
		}.Encode())
	}
	_ = total * (10000 - cust.Discount) / 10000 * (10000 + wh.Tax + dist.Tax) / 10000

	tx.PutW(w, TOrder, OKey(w, d, oid), Order{
		CID: int64(cid), EntryD: int64(p.Now()), OLCnt: int64(olCnt), AllLocal: allLocal,
	}.Encode())
	tx.PutW(w, TNewOrder, NOKey(w, d, oid), []byte{1})
	return tx.Commit(p)
}

// payment is the distributed clause-2.5 profile: a remote customer's
// balance lives on that customer's shard, while warehouse/district YTD
// and the history row stay home.
func (c *ShardedClient) payment(p *sim.Proc) error {
	in := c.inner
	w := in.home
	d := in.rng.Intn(in.cfg.Districts) + 1
	cw, cd := w, d
	if in.cfg.Warehouses > 1 && in.rng.Intn(100) < c.mix.PayPct {
		for cw == w {
			cw = in.rng.Intn(in.cfg.Warehouses) + 1
		}
		cd = in.rng.Intn(in.cfg.Districts) + 1
	}
	amount := int64(in.rng.Intn(499900) + 100)

	tx := c.home.Begin()
	abort := func(err error) error {
		tx.Abort()
		return err
	}
	wRow, ok, err := tx.GetW(p, w, TWarehouse, WKey(w))
	if err != nil || !ok {
		return abort(orErr(err, "tpcc: missing warehouse"))
	}
	wh := DecodeWarehouse(wRow)
	wh.YTD += amount
	tx.PutW(w, TWarehouse, WKey(w), wh.Encode())

	dRow, ok, err := tx.GetW(p, w, TDistrict, DKey(w, d))
	if err != nil || !ok {
		return abort(orErr(err, "tpcc: missing district"))
	}
	dist := DecodeDistrict(dRow)
	dist.YTD += amount
	tx.PutW(w, TDistrict, DKey(w, d), dist.Encode())

	cid, err := c.selectCustomer(p, tx, cw, cd)
	if err != nil {
		return abort(err)
	}
	cRow, ok, err := tx.GetW(p, cw, TCustomer, CKey(cw, cd, cid))
	if err != nil || !ok {
		return abort(orErr(err, "tpcc: missing customer"))
	}
	cust := DecodeCustomer(cRow)
	cust.Balance -= amount
	cust.YTDPayment += amount
	cust.PaymentCnt++
	if cust.Credit == "BC" {
		cust.Data = randomFiller(in.rng, in.cfg.FillerLen)
	}
	tx.PutW(cw, TCustomer, CKey(cw, cd, cid), cust.Encode())
	tx.PutW(w, THistory, HKey(w, d, tx.ID()), History{
		CID: int64(cid), Amount: amount, Date: int64(p.Now()),
		Data: wh.Name + " " + dist.Name,
	}.Encode())
	return tx.Commit(p)
}

// selectCustomer mirrors the classic 60/40 by-name/by-id selection,
// reading the name index on the customer's own shard.
func (c *ShardedClient) selectCustomer(p *sim.Proc, tx *shard.Tx, w, d int) (int, error) {
	in := c.inner
	if in.rng.Intn(100) < 60 {
		last := LastName(nuRand(in.rng, 255, cLast, 0, 999))
		idxRow, ok, err := tx.GetW(p, w, TCustIdx, CIdxKey(w, d, last))
		if err != nil {
			return 0, err
		}
		if !ok {
			return in.randCID(), nil
		}
		ids := decodeIDList(idxRow)
		if len(ids) == 0 {
			return in.randCID(), nil
		}
		return int(ids[len(ids)/2]), nil
	}
	return in.randCID(), nil
}

// orErr returns err if set, otherwise a fresh error with msg (a missing
// row on a reachable shard is a data bug, not an availability problem).
func orErr(err error, msg string) error {
	if err != nil {
		return err
	}
	return errors.New(msg)
}
