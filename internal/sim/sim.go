// Package sim implements a deterministic, process-based discrete-event
// simulation engine. It is the substrate that stands in for the paper's
// hardware: every component of the simulated X-SSD device, the PCIe
// subsystem, and the database workers runs as a sim process in virtual time.
//
// Processes are goroutines, but the scheduler serializes them: exactly one
// process runs at any instant, and control returns to the scheduler whenever
// a process blocks (Sleep, Wait, Transfer, ...). Event ordering is total —
// (virtual time, sequence number) — so runs are bit-for-bit reproducible for
// a given seed, and shared state needs no locking.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, add processes with Go, and drive it with Run,
// RunFor or RunUntil.
type Env struct {
	now     int64 // virtual time in nanoseconds
	seq     int64 // tie-breaker for events at the same instant
	pq      eventHeap
	rng     *rand.Rand
	yield   chan struct{} // running process -> scheduler handshake
	live    int           // processes started and not yet finished
	blocked int           // processes waiting on a Signal (no pending event)
	running bool

	attachments map[string]interface{} // per-env services (see Attach)
}

type event struct {
	at   int64
	seq  int64
	proc *Proc  // process to resume, or
	fn   func() // callback to invoke inline
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEnv returns an empty environment whose random source is seeded with
// seed. Two environments with the same seed and the same process program
// produce identical traces.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return time.Duration(e.now) }

// Rand returns the environment's deterministic random source. It must only
// be used from process context (calls are serialized by the scheduler).
func (e *Env) Rand() *rand.Rand { return e.rng }

// Attach stores v under key on the environment. It is the hook for per-env
// services (the metrics registry, for example) that deep call sites need to
// reach without threading a handle through every constructor. Attachments
// share the environment's lifetime, so they are garbage-collected with it —
// unlike a process-global map keyed by *Env, which would pin every
// environment ever created. Like all Env state, attachments are accessed
// only under the scheduler's serialization; there is no locking.
func (e *Env) Attach(key string, v interface{}) {
	if e.attachments == nil {
		e.attachments = make(map[string]interface{})
	}
	e.attachments[key] = v
}

// Attachment returns the value stored under key by Attach, or nil.
func (e *Env) Attachment(key string) interface{} { return e.attachments[key] }

func (e *Env) schedule(at int64, p *Proc, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{at: at, seq: e.seq, proc: p, fn: fn})
}

// At schedules fn to run at absolute virtual time t (clamped to now).
// fn runs in scheduler context and must not block.
func (e *Env) At(t time.Duration, fn func()) { e.schedule(int64(t), nil, fn) }

// After schedules fn to run d from now. fn runs in scheduler context and
// must not block.
func (e *Env) After(d time.Duration, fn func()) { e.schedule(e.now+int64(d), nil, fn) }

// Proc is a simulated process. All its methods must be called from within
// the process's own function.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.Now() }

// Go starts fn as a new simulated process at the current virtual time.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume // wait to be scheduled for the first time
		fn(p)
		e.live--
		e.yield <- struct{}{}
	}()
	e.schedule(e.now, p, nil)
	return p
}

// yieldToScheduler hands control back and blocks until resumed.
func (p *Proc) yieldToScheduler() {
	p.env.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+int64(d), p, nil)
	p.yieldToScheduler()
}

// SleepUntil suspends the process until absolute virtual time t.
func (p *Proc) SleepUntil(t time.Duration) {
	p.env.schedule(int64(t), p, nil)
	p.yieldToScheduler()
}

// Yield reschedules the process at the current instant, letting any other
// event due now run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a broadcast condition variable in virtual time. The zero value
// is not usable; create with NewSignal.
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal returns a Signal bound to e.
func (e *Env) NewSignal() *Signal { return &Signal{env: e} }

// Broadcast wakes every process currently waiting on s. The wake-ups are
// scheduled at the current instant, after events already due.
func (s *Signal) Broadcast() {
	for _, p := range s.waiters {
		s.env.blocked--
		s.env.schedule(s.env.now, p, nil)
	}
	s.waiters = s.waiters[:0]
}

// Wait blocks the process until the next Broadcast on s.
func (p *Proc) Wait(s *Signal) {
	s.waiters = append(s.waiters, p)
	p.env.blocked++
	p.yieldToScheduler()
}

// WaitFor blocks until cond() is true, re-checking after every Broadcast of
// s. It returns immediately if cond() already holds.
func (p *Proc) WaitFor(s *Signal, cond func() bool) {
	for !cond() {
		p.Wait(s)
	}
}

// Run drives the simulation until no events remain. It returns the number
// of processes still blocked on Signals (0 means everything ran to
// completion; >0 indicates a deadlock or processes waiting on external
// stimulus).
func (e *Env) Run() int { return e.run(-1) }

// RunUntil drives the simulation until virtual time t; events due later
// stay queued. It returns the number of processes blocked on Signals.
func (e *Env) RunUntil(t time.Duration) int { return e.run(int64(t)) }

// RunFor drives the simulation for d of virtual time from now.
func (e *Env) RunFor(d time.Duration) int { return e.RunUntil(e.Now() + d) }

func (e *Env) run(until int64) int {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 {
		if until >= 0 && e.pq[0].at > until {
			break
		}
		ev := heap.Pop(&e.pq).(event)
		if ev.at > e.now {
			e.now = ev.at
		}
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.proc != nil {
			ev.proc.resume <- struct{}{}
			<-e.yield
		}
	}
	if until > e.now {
		e.now = until
	}
	return e.blocked
}

// Link models a shared, FIFO, bandwidth-limited transfer resource (a PCIe
// link, a memory bus, a flash channel bus). A transfer of n bytes occupies
// the link for n/BytesPerSec and completes Latency after it leaves the
// link. Requests are served strictly in arrival order.
type Link struct {
	env         *Env
	name        string
	bytesPerSec float64
	latency     time.Duration

	busyUntil int64
	// stats
	bytes    int64
	busyTime int64
	xfers    int64
}

// NewLink creates a link with the given bandwidth (bytes/second) and fixed
// propagation latency.
func (e *Env) NewLink(name string, bytesPerSec float64, latency time.Duration) *Link {
	if bytesPerSec <= 0 {
		panic("sim: link bandwidth must be positive")
	}
	return &Link{env: e, name: name, bytesPerSec: bytesPerSec, latency: latency}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// BytesPerSec returns the link's configured bandwidth.
func (l *Link) BytesPerSec() float64 { return l.bytesPerSec }

// occupy reserves the link for n bytes starting no earlier than now and
// returns the completion time of the transfer (excluding latency).
func (l *Link) occupy(n int) (start, end int64) {
	start = l.env.now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	dur := int64(float64(n) / l.bytesPerSec * 1e9)
	if dur < 1 && n > 0 {
		dur = 1
	}
	end = start + dur
	l.busyUntil = end
	l.bytes += int64(n)
	l.busyTime += dur
	l.xfers++
	return start, end
}

// Transfer moves n bytes across the link, blocking the calling process for
// queueing + serialization + latency.
func (l *Link) Transfer(p *Proc, n int) {
	_, end := l.occupy(n)
	p.SleepUntil(time.Duration(end) + l.latency)
}

// Send moves n bytes across the link without blocking the caller; fn (may
// be nil) runs in scheduler context when the data has fully arrived.
func (l *Link) Send(n int, fn func()) {
	_, end := l.occupy(n)
	if fn != nil {
		l.env.At(time.Duration(end)+l.latency, fn)
	}
}

// Stats reports total bytes moved, cumulative busy time and transfer count.
func (l *Link) Stats() (bytes int64, busy time.Duration, transfers int64) {
	return l.bytes, time.Duration(l.busyTime), l.xfers
}

// Utilization returns the fraction of the interval [0, now] the link was
// busy.
func (l *Link) Utilization() float64 {
	if l.env.now == 0 {
		return 0
	}
	return float64(l.busyTime) / float64(l.env.now)
}

// String implements fmt.Stringer.
func (l *Link) String() string {
	return fmt.Sprintf("link %s: %.2f MB/s, util %.1f%%", l.name, l.bytesPerSec/1e6, 100*l.Utilization())
}
