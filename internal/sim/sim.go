// Package sim implements a deterministic, process-based discrete-event
// simulation engine. It is the substrate that stands in for the paper's
// hardware: every component of the simulated X-SSD device, the PCIe
// subsystem, and the database workers runs as a sim process in virtual time.
//
// Processes are goroutines, but the scheduler serializes them: exactly one
// process runs at any instant, and control returns to the scheduler whenever
// a process blocks (Sleep, Wait, Transfer, ...). Event ordering is total —
// (virtual time, sequence number) — so runs are bit-for-bit reproducible for
// a given seed, and shared state needs no locking.
package sim

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, add processes with Go, and drive it with Run,
// RunFor or RunUntil.
//
// The event queue is split in two. Events due strictly after the current
// instant live in a typed binary min-heap ordered by (time, seq). Events
// due now — Yield, After(0), Signal wake-ups — go to a plain FIFO slice
// instead, skipping the heap entirely; both containers reuse their backing
// arrays, so steady-state scheduling does not allocate. Dispatching heap
// events due at the current instant before FIFO events preserves the
// engine's total (time, seq) order: every heap entry due at time t was
// scheduled before the clock reached t, so it always carries a smaller seq
// than any same-instant FIFO entry (which was enqueued at t). See
// DESIGN.md §9.
type Env struct {
	now     int64 // virtual time in nanoseconds
	seq     int64 // tie-breaker for events at the same instant
	events  int64 // dispatched events, for throughput accounting
	heap    []event
	nowq    []event // FIFO of events due at the current instant
	nowqPos int     // nowq[:nowqPos] already dispatched
	rng     *rand.Rand
	parked  chan struct{} // running process -> scheduler baton (cap 1)
	live    int           // processes started and not yet finished
	blocked int           // processes waiting on a Signal (no pending event)
	running bool
	closed  bool
	procs   []*Proc // every process not yet finished (see Close)

	name string     // member name within a Group ("" for a standalone Env)
	fail *ProcPanic // first captured process/callback panic (see ProcPanic)

	// Group membership (nil/zero for a standalone Env).
	grp     *Group
	gidx    int    // index within grp.envs; the first merge tie-breaker
	postSeq int64  // per-sender sequence for outbox posts
	outbox  []post // cross-env posts buffered until the next barrier

	attachments map[string]interface{} // per-env services (see Attach)
}

type event struct {
	at   int64
	seq  int64
	proc *Proc  // process to resume, or
	fn   func() // callback to invoke inline
}

// heapPush inserts ev into the time-ordered heap (sift-up, no boxing).
//
//xssd:hotpath
func (e *Env) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].at < h[i].at || (h[parent].at == h[i].at && h[parent].seq < h[i].seq) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	e.heap = h
}

// heapPop removes and returns the earliest (time, seq) heap event.
//
//xssd:hotpath
func (e *Env) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop fn/proc references
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && (h[l].at < h[min].at || (h[l].at == h[min].at && h[l].seq < h[min].seq)) {
			min = l
		}
		if r < n && (h[r].at < h[min].at || (h[r].at == h[min].at && h[r].seq < h[min].seq)) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	e.heap = h
	return top
}

// NewEnv returns an empty environment whose random source is seeded with
// seed. Two environments with the same seed and the same process program
// produce identical traces.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}, 1),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return time.Duration(e.now) }

// Name returns the member name given to Group.NewEnv, or "" for a
// standalone environment.
func (e *Env) Name() string { return e.name }

// Events returns the number of events dispatched so far — process resumes
// plus scheduler callbacks. It is the denominator-free workload measure the
// perf suite divides by wall time to get events/second.
func (e *Env) Events() int64 { return e.events }

// Rand returns the environment's deterministic random source. It must only
// be used from process context (calls are serialized by the scheduler).
func (e *Env) Rand() *rand.Rand { return e.rng }

// Attach stores v under key on the environment. It is the hook for per-env
// services (the metrics registry, for example) that deep call sites need to
// reach without threading a handle through every constructor. Attachments
// share the environment's lifetime, so they are garbage-collected with it —
// unlike a process-global map keyed by *Env, which would pin every
// environment ever created. Like all Env state, attachments are accessed
// only under the scheduler's serialization; there is no locking.
func (e *Env) Attach(key string, v interface{}) {
	if e.attachments == nil {
		e.attachments = make(map[string]interface{})
	}
	e.attachments[key] = v
}

// Attachment returns the value stored under key by Attach, or nil.
func (e *Env) Attachment(key string) interface{} { return e.attachments[key] }

//xssd:hotpath
func (e *Env) schedule(at int64, p *Proc, fn func()) {
	e.seq++
	if at <= e.now {
		// Due at the current instant: FIFO order is seq order, no heap
		// traffic. Reuse the backing array once the dispatched prefix is
		// fully consumed.
		if e.nowqPos > 0 && e.nowqPos == len(e.nowq) {
			e.nowq = e.nowq[:0]
			e.nowqPos = 0
		}
		e.nowq = append(e.nowq, event{at: e.now, seq: e.seq, proc: p, fn: fn})
		return
	}
	e.heapPush(event{at: at, seq: e.seq, proc: p, fn: fn})
}

// At schedules fn to run at absolute virtual time t (clamped to now).
// fn runs in scheduler context and must not block.
func (e *Env) At(t time.Duration, fn func()) { e.schedule(int64(t), nil, fn) }

// After schedules fn to run d from now. fn runs in scheduler context and
// must not block.
func (e *Env) After(d time.Duration, fn func()) { e.schedule(e.now+int64(d), nil, fn) }

// Proc is a simulated process. All its methods must be called from within
// the process's own function.
type Proc struct {
	env  *Env
	name string
	park chan struct{} // scheduler -> process baton (cap 1)
	done bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.Now() }

// procKilled unwinds a process goroutine released by Env.Close; the
// wrapper in Go recovers it.
type procKilledT struct{}

var procKilled any = procKilledT{}

// ProcPanic carries a panic out of a simulated process. The scheduler
// captures the panic on the process goroutine, returns the baton normally
// (so Close still releases every parked process and no goroutine leaks),
// and rethrows the ProcPanic on the driving goroutine — the caller of
// Run/RunUntil, or of Group.RunUntil when the process ran inside a group
// quantum on a worker.
type ProcPanic struct {
	Env   string // member name of the Env ("" for a standalone Env)
	Proc  string // process name, or "(scheduler callback)" for an fn panic
	Value any    // the original panic value
	Stack []byte // stack of the panicking goroutine at capture time
}

func (pp *ProcPanic) Error() string {
	where := pp.Proc
	if pp.Env != "" {
		where = pp.Env + "/" + pp.Proc
	}
	return fmt.Sprintf("sim: process %s panicked: %v\n%s", where, pp.Value, pp.Stack)
}

// Go starts fn as a new simulated process at the current virtual time.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Go on closed Env")
	}
	p := &Proc{env: e, name: name, park: make(chan struct{}, 1)}
	e.live++
	e.addProc(p)
	go func() {
		defer func() {
			if r := recover(); r != nil && r != procKilled && e.fail == nil {
				e.fail = &ProcPanic{Env: e.name, Proc: p.name, Value: r, Stack: debug.Stack()}
			}
			p.done = true
			e.live--
			e.parked <- struct{}{}
		}()
		<-p.park // wait to be scheduled for the first time
		if e.closed {
			return
		}
		fn(p)
	}()
	e.schedule(e.now, p, nil)
	return p
}

// addProc registers p for Close, compacting finished entries when the
// registry has grown well past the live population (short-lived processes
// — one per destaged page, for example — would otherwise pin the slice).
func (e *Env) addProc(p *Proc) {
	if len(e.procs) >= 64 && len(e.procs) >= 2*e.live {
		kept := e.procs[:0]
		for _, q := range e.procs {
			if !q.done {
				kept = append(kept, q)
			}
		}
		for i := len(kept); i < len(e.procs); i++ {
			e.procs[i] = nil
		}
		e.procs = kept
	}
	e.procs = append(e.procs, p)
}

// yieldToScheduler hands control back and blocks until resumed. The two
// batons have capacity 1, so neither side ever blocks sending — each
// handoff costs one park and one wake, not two of each.
//
//xssd:hotpath
func (p *Proc) yieldToScheduler() {
	e := p.env
	if e.closed {
		panic(procKilled)
	}
	e.parked <- struct{}{}
	<-p.park
	if e.closed {
		panic(procKilled)
	}
}

// Close releases every parked process so its goroutine exits, and drops
// all queued events. Without it, an Env abandoned after a truncated
// RunUntil leaks one goroutine per sleeping or Signal-blocked process for
// the life of the program. Close is terminal: the Env must not be used
// afterwards. It must be called from the driving test or main goroutine,
// never from process context.
func (e *Env) Close() {
	if e.closed {
		return
	}
	if e.running {
		panic("sim: Close from process context")
	}
	e.closed = true
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.park <- struct{}{} // wake; the process sees closed and unwinds
		<-e.parked           // its exit ack
	}
	e.procs = nil
	e.heap = nil
	e.nowq = nil
	e.nowqPos = 0
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+int64(d), p, nil)
	p.yieldToScheduler()
}

// SleepUntil suspends the process until absolute virtual time t.
func (p *Proc) SleepUntil(t time.Duration) {
	p.env.schedule(int64(t), p, nil)
	p.yieldToScheduler()
}

// Yield reschedules the process at the current instant, letting any other
// event due now run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a broadcast condition variable in virtual time. The zero value
// is not usable; create with NewSignal.
type Signal struct {
	env     *Env
	waiters []*Proc
}

// NewSignal returns a Signal bound to e.
func (e *Env) NewSignal() *Signal { return &Signal{env: e} }

// Broadcast wakes every process currently waiting on s. The wake-ups are
// scheduled at the current instant, after events already due. Each waiter
// is scheduled on its own Env: a process from another group member may
// wait on a foreign Signal during a serialized (inline) phase, and its
// wake-up must land in its own queue, not the Signal's.
//
//xssd:hotpath
func (s *Signal) Broadcast() {
	for _, p := range s.waiters {
		p.env.blocked--
		p.env.schedule(s.env.now, p, nil)
	}
	s.waiters = s.waiters[:0]
}

// Wait blocks the process until the next Broadcast on s.
//
//xssd:hotpath
func (p *Proc) Wait(s *Signal) {
	s.waiters = append(s.waiters, p)
	p.env.blocked++
	p.yieldToScheduler()
}

// WaitFor blocks until cond() is true, re-checking after every Broadcast of
// s. It returns immediately if cond() already holds.
func (p *Proc) WaitFor(s *Signal, cond func() bool) {
	for !cond() {
		p.Wait(s)
	}
}

// Run drives the simulation until no events remain. It returns the number
// of processes still blocked on Signals (0 means everything ran to
// completion; >0 indicates a deadlock or processes waiting on external
// stimulus). If a process panicked, Run rethrows the *ProcPanic here, on
// the driving goroutine.
func (e *Env) Run() int { n := e.run(-1); e.rethrow(); return n }

// RunUntil drives the simulation until virtual time t; events due later
// stay queued. It returns the number of processes blocked on Signals.
func (e *Env) RunUntil(t time.Duration) int { n := e.run(int64(t)); e.rethrow(); return n }

// RunFor drives the simulation for d of virtual time from now.
func (e *Env) RunFor(d time.Duration) int { return e.RunUntil(e.Now() + d) }

// rethrow surfaces a captured process panic on the caller's goroutine.
func (e *Env) rethrow() {
	if e.fail != nil {
		panic(e.fail)
	}
}

//xssd:hotpath
func (e *Env) run(until int64) int {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	if e.closed {
		panic("sim: Run on closed Env")
	}
	e.running = true
	//xssd:ignore hotpathalloc once-per-run prologue, not per-event work
	defer func() { e.running = false }()
	for {
		// Pick the next event in global (time, seq) order: heap events due
		// at or before now always precede the now-FIFO (they carry smaller
		// seqs — see the Env comment), and only when both are empty does
		// time advance to the heap's next instant.
		var ev event
		switch {
		case len(e.heap) > 0 && e.heap[0].at <= e.now:
			if until >= 0 && e.heap[0].at > until {
				goto out
			}
			ev = e.heapPop()
		case e.nowqPos < len(e.nowq):
			if until >= 0 && e.nowq[e.nowqPos].at > until {
				goto out
			}
			ev = e.nowq[e.nowqPos]
			e.nowq[e.nowqPos] = event{} // drop fn/proc references
			e.nowqPos++
		case len(e.heap) > 0:
			if until >= 0 && e.heap[0].at > until {
				goto out
			}
			ev = e.heapPop()
			e.now = ev.at
		default:
			goto out
		}
		e.events++
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.proc != nil {
			ev.proc.park <- struct{}{}
			<-e.parked
			if e.fail != nil {
				// The process panicked; its goroutine has unwound and
				// returned the baton. Stop dispatching — the caller (Run or
				// the group barrier) decides how to surface the failure.
				goto out
			}
		}
	}
out:
	if until > e.now {
		e.now = until
	}
	return e.blocked
}

// Link models a shared, FIFO, bandwidth-limited transfer resource (a PCIe
// link, a memory bus, a flash channel bus). A transfer of n bytes occupies
// the link for n/BytesPerSec and completes Latency after it leaves the
// link. Requests are served strictly in arrival order.
type Link struct {
	env         *Env
	name        string
	bytesPerSec float64
	latency     time.Duration

	busyUntil int64
	// stats
	bytes    int64
	busyTime int64
	xfers    int64
}

// NewLink creates a link with the given bandwidth (bytes/second) and fixed
// propagation latency.
func (e *Env) NewLink(name string, bytesPerSec float64, latency time.Duration) *Link {
	if bytesPerSec <= 0 {
		panic("sim: link bandwidth must be positive")
	}
	return &Link{env: e, name: name, bytesPerSec: bytesPerSec, latency: latency}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// BytesPerSec returns the link's configured bandwidth.
func (l *Link) BytesPerSec() float64 { return l.bytesPerSec }

// occupy reserves the link for n bytes starting no earlier than now and
// returns the completion time of the transfer (excluding latency).
func (l *Link) occupy(n int) (start, end int64) {
	start = l.env.now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	dur := int64(float64(n) / l.bytesPerSec * 1e9)
	if dur < 1 && n > 0 {
		dur = 1
	}
	end = start + dur
	l.busyUntil = end
	l.bytes += int64(n)
	l.busyTime += dur
	l.xfers++
	return start, end
}

// Transfer moves n bytes across the link, blocking the calling process for
// queueing + serialization + latency.
func (l *Link) Transfer(p *Proc, n int) {
	_, end := l.occupy(n)
	p.SleepUntil(time.Duration(end) + l.latency)
}

// Send moves n bytes across the link without blocking the caller; fn (may
// be nil) runs in scheduler context when the data has fully arrived.
func (l *Link) Send(n int, fn func()) {
	_, end := l.occupy(n)
	if fn != nil {
		l.env.At(time.Duration(end)+l.latency, fn)
	}
}

// SendTimed moves n bytes across the link without blocking the caller and
// returns the virtual time at which the data fully arrives (queueing +
// serialization + latency), scheduling nothing. It is the building block
// for cross-Env delivery, where the arrival must be posted through a Group
// mailbox (Env.PostTo) instead of scheduled on the local queue.
func (l *Link) SendTimed(n int) time.Duration {
	_, end := l.occupy(n)
	return time.Duration(end) + l.latency
}

// Stats reports total bytes moved, cumulative busy time and transfer count.
func (l *Link) Stats() (bytes int64, busy time.Duration, transfers int64) {
	return l.bytes, time.Duration(l.busyTime), l.xfers
}

// Utilization returns the fraction of the interval [0, now] the link was
// busy.
func (l *Link) Utilization() float64 {
	if l.env.now == 0 {
		return 0
	}
	return float64(l.busyTime) / float64(l.env.now)
}

// String implements fmt.Stringer.
func (l *Link) String() string {
	return fmt.Sprintf("link %s: %.2f MB/s, util %.1f%%", l.name, l.bytesPerSec/1e6, 100*l.Utilization())
}
