package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// groupTrace is one observed delivery: who sent, what, and when it landed.
type groupTrace struct {
	Src, Val int
	At       time.Duration
}

// runCrossTraffic builds a k-member group where every member runs a
// deterministic proc that computes, burns randomness from its own Env, and
// posts values to the other members over a 2µs mailbox latency. It returns
// the per-member delivery logs, the total event count, and one final rng
// draw per member.
func runCrossTraffic(k, workers int, until time.Duration) ([][]groupTrace, int64, []int64) {
	g := NewGroup(GroupConfig{Workers: workers})
	envs := make([]*Env, k)
	for i := 0; i < k; i++ {
		envs[i] = g.NewEnv(fmt.Sprintf("m%d", i), int64(1000+i))
	}
	logs := make([][]groupTrace, k)
	for i := 0; i < k; i++ {
		i := i
		e := envs[i]
		e.Go("talker", func(p *Proc) {
			val := 0
			for {
				p.Sleep(time.Duration(100 + e.Rand().Intn(900)))
				val++
				dst := envs[(i+1+e.Rand().Intn(k-1))%k]
				src, v, at := i, val, p.Now()+2*time.Microsecond
				e.PostTo(dst, at, func() {
					logs[dst.gidx] = append(logs[dst.gidx], groupTrace{Src: src, Val: v, At: dst.Now()})
				})
			}
		})
	}
	g.RunUntil(until)
	events := g.Events()
	draws := make([]int64, k)
	for i, e := range envs {
		draws[i] = e.Rand().Int63()
	}
	g.Close()
	return logs, events, draws
}

// TestGroupCrossEnvDeterminism is the heart of the differential contract:
// the same seeded program yields byte-identical delivery logs, event
// counts, and rng states whether the group runs with 1, 2, or 8 workers.
func TestGroupCrossEnvDeterminism(t *testing.T) {
	refLogs, refEvents, refDraws := runCrossTraffic(5, 1, 3*time.Millisecond)
	if refEvents == 0 || len(refLogs[0]) == 0 {
		t.Fatalf("reference run did nothing: events=%d log0=%d", refEvents, len(refLogs[0]))
	}
	for _, workers := range []int{1, 2, 8} {
		logs, events, draws := runCrossTraffic(5, workers, 3*time.Millisecond)
		if events != refEvents {
			t.Errorf("workers=%d: events %d, want %d", workers, events, refEvents)
		}
		if !reflect.DeepEqual(draws, refDraws) {
			t.Errorf("workers=%d: rng states diverged", workers)
		}
		if !reflect.DeepEqual(logs, refLogs) {
			t.Errorf("workers=%d: delivery logs diverged", workers)
		}
	}
}

// TestGroupSingleMemberMatchesEnv proves quantum chopping is invisible: a
// single-member group produces the exact trace of a standalone Env with the
// same seed — the property the fig 9-12 differential cells rely on.
func TestGroupSingleMemberMatchesEnv(t *testing.T) {
	program := func(e *Env, log *[]groupTrace) {
		e.Go("worker", func(p *Proc) {
			for i := 0; ; i++ {
				p.Sleep(time.Duration(50 + e.Rand().Intn(500)))
				*log = append(*log, groupTrace{Val: i, At: p.Now()})
				e.After(time.Duration(e.Rand().Intn(300)), func() {
					*log = append(*log, groupTrace{Src: 1, At: e.Now()})
				})
			}
		})
	}

	var refLog []groupTrace
	ref := NewEnv(77)
	program(ref, &refLog)
	ref.RunUntil(time.Millisecond)
	refEvents, refDraw := ref.Events(), ref.Rand().Int63()
	ref.Close()

	for _, workers := range []int{1, 8} {
		var log []groupTrace
		g := NewGroup(GroupConfig{Workers: workers})
		e := g.NewEnv("solo", 77)
		program(e, &log)
		g.RunUntil(time.Millisecond)
		if e.Events() != refEvents {
			t.Errorf("workers=%d: events %d, want %d", workers, e.Events(), refEvents)
		}
		if d := e.Rand().Int63(); d != refDraw {
			t.Errorf("workers=%d: rng diverged", workers)
		}
		if !reflect.DeepEqual(log, refLog) {
			t.Errorf("workers=%d: trace diverged (%d vs %d entries)", workers, len(log), len(refLog))
		}
		g.Close()
	}
}

// TestGroupMergeOrder pins the barrier merge rule: posts landing at the
// same instant deliver in (sender index, send seq) order, never in worker
// completion order.
func TestGroupMergeOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		g := NewGroup(GroupConfig{Workers: workers})
		senders := make([]*Env, 4)
		for i := range senders {
			senders[i] = g.NewEnv(fmt.Sprintf("s%d", i), int64(i))
		}
		sink := g.NewEnv("sink", 99)
		var got []groupTrace
		deliver := 10 * time.Microsecond
		for i, e := range senders {
			i, e := i, e
			e.Go("burst", func(p *Proc) {
				// Sends land inside the same quantum but at staggered
				// sub-instants, so worker finish order varies; every delivery
				// is pinned to the same instant.
				p.Sleep(3*time.Microsecond + time.Duration(i*100))
				for j := 0; j < 3; j++ {
					src, v := i, j
					e.PostTo(sink, deliver, func() {
						got = append(got, groupTrace{Src: src, Val: v, At: sink.Now()})
					})
				}
			})
		}
		g.RunUntil(20 * time.Microsecond)
		g.Close()
		if len(got) != 12 {
			t.Fatalf("workers=%d: got %d deliveries, want 12", workers, len(got))
		}
		// Same barrier, same delivery instant: merge order is purely
		// (sender env index, send seq) — sender 3 posted last in real time
		// within the quantum, yet still sorts by its index.
		var want []groupTrace
		for i := 0; i < 4; i++ {
			for j := 0; j < 3; j++ {
				want = append(want, groupTrace{Src: i, Val: j, At: deliver})
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: merge order %v, want %v", workers, got, want)
		}
	}
}

// TestGroupModeSwitches drives inline -> concurrent -> serialized and
// checks each switch lands at a barrier, with Serialize sticky.
func TestGroupModeSwitches(t *testing.T) {
	g := NewGroup(GroupConfig{Workers: 4, StartInline: true})
	a := g.NewEnv("a", 1)
	b := g.NewEnv("b", 2)
	b.Go("idle", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	a.Go("boot", func(p *Proc) {
		if !g.Inline() {
			t.Error("group did not start inline")
		}
		p.Sleep(5 * time.Microsecond)
		g.Parallelize()
		p.Sleep(5 * time.Microsecond)
		g.Serialize()
		p.Sleep(5 * time.Microsecond)
		g.Parallelize() // must be a no-op after Serialize
	})
	g.RunUntil(30 * time.Microsecond)
	if !g.Inline() {
		t.Error("Serialize was not sticky")
	}
	g.Close()
}

// waitGoroutines polls until the goroutine count drops back to base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, started with %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
	}
}

// TestGroupCloseReleasesEverything extends the PR 4 goroutine regression
// test to the parallel runner: Close at a barrier must release every parked
// process in every member and shut down the worker pool.
func TestGroupCloseReleasesEverything(t *testing.T) {
	base := runtime.NumGoroutine()
	g := NewGroup(GroupConfig{Workers: 8})
	for i := 0; i < 4; i++ {
		e := g.NewEnv(fmt.Sprintf("m%d", i), int64(i))
		for j := 0; j < 8; j++ {
			e.Go("sleeper", func(p *Proc) {
				for {
					p.Sleep(time.Microsecond)
				}
			})
		}
		sig := e.NewSignal()
		e.Go("waiter", func(p *Proc) { p.Wait(sig) })
	}
	g.RunUntil(time.Millisecond) // truncates mid-flight: everyone parked
	g.Close()
	waitGoroutines(t, base)
}

// TestGroupMemberCloseMidRun closes one member between barriers: its
// goroutines must be released immediately, the group must keep running the
// survivors, and posts addressed to the dead member must be dropped.
func TestGroupMemberCloseMidRun(t *testing.T) {
	base := runtime.NumGoroutine()
	g := NewGroup(GroupConfig{Workers: 4})
	a := g.NewEnv("a", 1)
	b := g.NewEnv("b", 2)
	aTicks, bDeliveries := 0, 0
	a.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
			aTicks++
			a.PostTo(b, p.Now()+2*time.Microsecond, func() { bDeliveries++ })
		}
	})
	b.Go("sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	g.RunUntil(10 * time.Microsecond)
	b.Close() // mid-run, at a barrier
	before := aTicks
	g.RunUntil(20 * time.Microsecond) // survivors continue; posts to b dropped
	if aTicks <= before {
		t.Errorf("survivor stalled after member close: %d -> %d ticks", before, aTicks)
	}
	g.Close()
	waitGoroutines(t, base)
}

// TestGroupProcPanicPropagates makes a process panic inside a concurrent
// quantum: the panic must surface as a *ProcPanic on the RunUntil caller,
// and the implicit Close must release every goroutine — a worker panicking
// inside a proc never strands the pool.
func TestGroupProcPanicPropagates(t *testing.T) {
	base := runtime.NumGoroutine()
	g := NewGroup(GroupConfig{Workers: 4})
	for i := 0; i < 3; i++ {
		e := g.NewEnv(fmt.Sprintf("m%d", i), int64(i))
		for j := 0; j < 4; j++ {
			e.Go("spinner", func(p *Proc) {
				for {
					p.Sleep(100 * time.Nanosecond)
				}
			})
		}
	}
	bad := g.NewEnv("bad", 9)
	bad.Go("bomber", func(p *Proc) {
		p.Sleep(50 * time.Microsecond)
		panic("boom")
	})
	func() {
		defer func() {
			pp, ok := recover().(*ProcPanic)
			if !ok {
				t.Fatalf("want *ProcPanic, got %T", pp)
			}
			if pp.Env != "bad" || pp.Proc != "bomber" || pp.Value != "boom" {
				t.Errorf("wrong failure attribution: %s/%s: %v", pp.Env, pp.Proc, pp.Value)
			}
		}()
		g.RunUntil(time.Millisecond)
	}()
	waitGoroutines(t, base)
}

// TestEnvProcPanicPropagates checks the standalone-Env side of the same
// contract: the panic rethrows from RunUntil on the driving goroutine and
// Close releases the rest.
func TestEnvProcPanicPropagates(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEnv(1)
	e.Go("sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	e.Go("bomber", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		panic("kaput")
	})
	func() {
		defer func() {
			pp, ok := recover().(*ProcPanic)
			if !ok || pp.Proc != "bomber" || pp.Value != "kaput" {
				t.Fatalf("want bomber *ProcPanic, got %#v", pp)
			}
		}()
		e.RunUntil(time.Millisecond)
	}()
	e.Close()
	waitGoroutines(t, base)
}

// TestGroupPostOutsideRun covers the direct-injection path: posts made
// before the first barrier (bring-up) and to a same-group member while the
// group is idle must still deliver at the requested time.
func TestGroupPostOutsideRun(t *testing.T) {
	g := NewGroup(GroupConfig{Workers: 2})
	a := g.NewEnv("a", 1)
	b := g.NewEnv("b", 2)
	var at time.Duration
	a.PostTo(b, 5*time.Microsecond, func() { at = b.Now() })
	g.RunUntil(10 * time.Microsecond)
	if at != 5*time.Microsecond {
		t.Errorf("pre-run post delivered at %v, want 5µs", at)
	}
	g.Close()
}

// TestGroupCrossEnvSignal exercises a foreign-Env Signal wait during an
// inline phase: the wake-up must land on the waiter's own queue.
func TestGroupCrossEnvSignal(t *testing.T) {
	g := NewGroup(GroupConfig{Workers: 2, StartInline: true})
	a := g.NewEnv("a", 1)
	b := g.NewEnv("b", 2)
	sig := b.NewSignal()
	woke := time.Duration(-1)
	a.Go("waiter", func(p *Proc) {
		p.Wait(sig)
		woke = p.Now()
	})
	b.Go("signaler", func(p *Proc) {
		p.Sleep(7 * time.Microsecond)
		sig.Broadcast()
	})
	g.RunUntil(20 * time.Microsecond)
	g.Close()
	if woke < 7*time.Microsecond {
		t.Errorf("cross-env wait woke at %v, want >= 7µs", woke)
	}
}
