package sim

import (
	"math"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"
)

// Group runs several Envs side by side under one virtual clock: the
// conservative parallel engine. Time advances in lock-step quanta; within a
// quantum every member with due work runs its own event loop — on the
// coordinator goroutine when serialized, on a worker pool otherwise — and
// members exchange state only through PostTo mailboxes that are merged at
// the barrier between quanta in a fixed (time, sender index, send seq)
// order. Because each member's intra-quantum execution is single-threaded
// and deterministic, and the only inter-member channel is the
// deterministically merged mailbox, a same-seed group run is byte-identical
// regardless of GOMAXPROCS or the configured worker count. See DESIGN.md
// §11 for the protocol and the conduit inventory.
//
// The quantum is the engine's lookahead: a post whose delivery time falls
// inside the quantum that produced it is clamped to the quantum's end, so
// full timing fidelity requires every cross-env latency (the NTB hop, for
// instance) to be at least one quantum. The default 1µs quantum sits under
// the 1.1µs NTB hop; topologies with no cross-env traffic can raise it
// freely.
type Group struct {
	cfg     GroupConfig
	quantum int64
	envs    []*Env
	now     int64
	qEnd    int64 // end of the executing quantum; read-only while workers run
	running bool
	closed  bool
	inline  bool // run quanta on the coordinator goroutine, env-index order
	sticky  bool // Serialize called: inline is permanent

	reqSerial   atomic.Bool // mode switches requested from process context,
	reqParallel atomic.Bool // applied at the next barrier

	started bool // worker pool spawned
	work    chan int
	wdone   chan struct{}

	posts  []post // merge scratch, reused across barriers
	active []int  // members with work this quantum, reused
}

// GroupConfig parameterizes NewGroup.
type GroupConfig struct {
	// Workers is the number of OS-thread-backed quantum executors; 1 (or 0)
	// yields the serial runner — same barriers, same merge, no worker pool.
	// The pool never exceeds the member count.
	Workers int
	// Quantum is the barrier interval and engine lookahead; 0 means 1µs.
	// It must not exceed the smallest cross-env delivery latency, or posts
	// are clamped to the next barrier (delivered late but still
	// deterministically).
	Quantum time.Duration
	// StartInline starts the group serialized. Bring-up code (cluster
	// Setup, role assignment) may touch several members' state directly
	// while inline, then release concurrency with Parallelize.
	StartInline bool
}

// post is one mailbox entry: fn runs in envs[dst] at virtual time at.
// (at, src, seq) is the barrier merge key.
type post struct {
	at  int64
	src int
	dst int
	seq int64
	fn  func()
}

// NewGroup returns an empty group. Add members with NewEnv before the
// first RunUntil.
func NewGroup(cfg GroupConfig) *Group {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = time.Microsecond
	}
	return &Group{cfg: cfg, quantum: int64(cfg.Quantum), inline: cfg.StartInline}
}

// NewEnv creates a member environment. name labels the member in failure
// reports; seed feeds its private random source (members deliberately take
// explicit seeds so a single-member group can reproduce a standalone
// NewEnv(seed) run bit-for-bit). Member order is creation order and is the
// first mailbox merge tie-breaker, so create members in a fixed order.
func (g *Group) NewEnv(name string, seed int64) *Env {
	if g.closed {
		panic("sim: Group.NewEnv on closed Group")
	}
	if g.running {
		panic("sim: Group.NewEnv during Run")
	}
	e := NewEnv(seed)
	e.name = name
	e.grp = g
	e.gidx = len(g.envs)
	e.now = g.now
	g.envs = append(g.envs, e)
	return e
}

// Envs returns the member environments in index order.
func (g *Group) Envs() []*Env { return append([]*Env(nil), g.envs...) }

// Now returns the group's virtual time (the last barrier reached).
func (g *Group) Now() time.Duration { return time.Duration(g.now) }

// Quantum returns the configured barrier interval.
func (g *Group) Quantum() time.Duration { return time.Duration(g.quantum) }

// Workers returns the configured worker count.
func (g *Group) Workers() int { return g.cfg.Workers }

// Inline reports whether quanta currently run serialized on the
// coordinator goroutine.
func (g *Group) Inline() bool { return g.inline }

// Events returns the total events dispatched across all members.
func (g *Group) Events() int64 {
	var n int64
	for _, e := range g.envs {
		n += e.events
	}
	return n
}

// Group returns the group e belongs to, or nil for a standalone Env.
func (e *Env) Group() *Group { return e.grp }

// Index returns e's member index within its group (0 for a standalone Env).
func (e *Env) Index() int { return e.gidx }

// Serialize permanently switches the group to inline execution at the next
// barrier. Once inline, quanta run every member on the coordinator
// goroutine in env-index order, so direct cross-env access is race-free and
// deterministic — this is the takeover mode: a failover rewires devices and
// re-binds the host stream across members, and the post-promotion host
// stream touches the winner's env on every write, far too hot for
// mailboxes. Callable from process context; the switch lands at the barrier
// ending the quantum that requested it.
func (g *Group) Serialize() { g.reqSerial.Store(true) }

// Parallelize releases a StartInline group to concurrent execution at the
// next barrier, once bring-up no longer needs direct cross-env access. It
// is a no-op after Serialize.
func (g *Group) Parallelize() { g.reqParallel.Store(true) }

// PostTo hands fn to dst's scheduler at absolute virtual time at: the group
// mailbox, and the only legal cross-env channel while members run
// concurrently. Inside a group run the post is buffered in the sender's
// outbox and injected at the next barrier in (time, sender index, send seq)
// order, so delivery order is independent of worker interleaving by
// construction. Outside a run — bring-up, teardown, a standalone Env —
// it schedules on dst directly, which is race-free because those phases are
// single-threaded. at is clamped to the end of the executing quantum; posts
// to a closed member are dropped.
//
//xssd:conduit group mailbox: fn runs in dst's own Env at a barrier-merged instant
func (e *Env) PostTo(dst *Env, at time.Duration, fn func()) {
	t := int64(at)
	g := e.grp
	if dst == e || g == nil || dst.grp != g || !g.running {
		if dst.closed {
			return
		}
		dst.schedule(t, nil, fn)
		return
	}
	if t < g.qEnd {
		t = g.qEnd
	}
	e.postSeq++
	e.outbox = append(e.outbox, post{at: t, src: e.gidx, dst: dst.gidx, seq: e.postSeq, fn: fn})
}

// nextEventAt returns the earliest pending event time of e, if any.
func (e *Env) nextEventAt() (int64, bool) {
	at := int64(math.MaxInt64)
	ok := false
	if e.nowqPos < len(e.nowq) {
		at, ok = e.nowq[e.nowqPos].at, true
	}
	if len(e.heap) > 0 && (!ok || e.heap[0].at < at) {
		at, ok = e.heap[0].at, true
	}
	return at, ok
}

// hasEventBefore reports whether e has work due at or before t.
func (e *Env) hasEventBefore(t int64) bool {
	if e.nowqPos < len(e.nowq) {
		return true
	}
	return len(e.heap) > 0 && e.heap[0].at <= t
}

// RunUntil drives every member until virtual time t, barrier by barrier.
// It returns the number of processes blocked on Signals across all
// members. Quanta are not grid-aligned: each barrier fast-forwards to one
// quantum past the earliest pending event, so idle stretches cost nothing.
// If any member's process panicked during a quantum, the group is closed
// (releasing every parked goroutine and the worker pool) and the
// lowest-index member's *ProcPanic is rethrown here — the same failure
// regardless of worker count.
func (g *Group) RunUntil(t time.Duration) int {
	if g.closed {
		panic("sim: Run on closed Group")
	}
	if g.running {
		panic("sim: Group.Run called reentrantly")
	}
	g.running = true
	defer func() { g.running = false }()
	until := int64(t)
	for {
		g.deliverPosts()
		g.applyModeRequests()
		next := int64(math.MaxInt64)
		for _, e := range g.envs {
			if e.closed {
				continue
			}
			if at, ok := e.nextEventAt(); ok && at < next {
				next = at
			}
		}
		if next > until {
			break
		}
		qEnd := until
		if q := next + g.quantum; q < qEnd {
			qEnd = q
		}
		g.qEnd = qEnd
		g.active = g.active[:0]
		for i, e := range g.envs {
			if !e.closed && e.hasEventBefore(qEnd) {
				g.active = append(g.active, i)
			}
		}
		if g.inline || g.cfg.Workers == 1 || len(g.active) == 1 {
			for _, i := range g.active {
				g.envs[i].runQuantum(qEnd)
			}
		} else {
			g.ensureWorkers()
			for _, i := range g.active {
				g.work <- i
			}
			for range g.active {
				<-g.wdone
			}
		}
		g.now = qEnd
		if f := g.firstFailure(); f != nil {
			g.running = false
			g.Close()
			panic(f)
		}
	}
	g.now = until
	blocked := 0
	for _, e := range g.envs {
		if e.closed {
			continue
		}
		if until > e.now {
			e.now = until
		}
		blocked += e.blocked
	}
	return blocked
}

// runQuantum drives one member through a single quantum. A panic from a
// scheduler-context callback is captured like a process panic, so failures
// cross the worker boundary as data instead of crashing the pool.
func (e *Env) runQuantum(qEnd int64) {
	defer func() {
		if r := recover(); r != nil && e.fail == nil {
			e.fail = &ProcPanic{Env: e.name, Proc: "(scheduler callback)", Value: r, Stack: debug.Stack()}
		}
	}()
	e.run(qEnd)
}

// deliverPosts merges every member's outbox and injects the posts into
// their destination queues. It runs between quanta on the coordinator
// goroutine, so the injections are single-threaded; the (time, sender
// index, send seq) sort makes the injection order — and therefore each
// destination's seq assignment — independent of which workers ran which
// members.
func (g *Group) deliverPosts() {
	buf := g.posts[:0]
	for _, e := range g.envs {
		buf = append(buf, e.outbox...)
		for i := range e.outbox {
			e.outbox[i] = post{}
		}
		e.outbox = e.outbox[:0]
	}
	if len(buf) > 1 {
		sort.Slice(buf, func(i, j int) bool {
			a, b := &buf[i], &buf[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
	}
	for i := range buf {
		p := &buf[i]
		if dst := g.envs[p.dst]; !dst.closed {
			dst.schedule(p.at, nil, p.fn)
		}
		*p = post{}
	}
	g.posts = buf[:0]
}

// applyModeRequests lands Serialize/Parallelize requests at a barrier.
func (g *Group) applyModeRequests() {
	if g.reqSerial.Swap(false) {
		g.inline = true
		g.sticky = true
	}
	if g.reqParallel.Swap(false) && !g.sticky {
		g.inline = false
	}
}

// firstFailure returns the lowest-index member's captured panic, if any.
// Each member's quantum execution is deterministic in isolation, so the set
// of failing members in a quantum — and hence this choice — does not depend
// on worker scheduling.
func (g *Group) firstFailure() *ProcPanic {
	for _, e := range g.envs {
		if e.fail != nil {
			return e.fail
		}
	}
	return nil
}

// ensureWorkers spawns the quantum-executor pool on first concurrent use.
// Workers exit when Close closes the work channel.
func (g *Group) ensureWorkers() {
	if g.started {
		return
	}
	g.started = true
	n := g.cfg.Workers
	if n > len(g.envs) {
		n = len(g.envs)
	}
	g.work = make(chan int)
	// Buffered so a worker never blocks reporting completion while the
	// coordinator is still handing out this quantum's members — with fewer
	// workers than members that would deadlock the barrier.
	g.wdone = make(chan struct{}, len(g.envs))
	for w := 0; w < n; w++ {
		go func() {
			for i := range g.work {
				g.envs[i].runQuantum(g.qEnd)
				g.wdone <- struct{}{}
			}
		}()
	}
}

// Close closes every member (releasing all parked process goroutines) and
// shuts down the worker pool. Like Env.Close it is terminal and must be
// called from the driving goroutine, never from process context.
func (g *Group) Close() {
	if g.closed {
		return
	}
	if g.running {
		panic("sim: Group.Close during Run")
	}
	g.closed = true
	if g.started {
		close(g.work)
	}
	for _, e := range g.envs {
		e.Close()
	}
}
