package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv(1)
	var woke time.Duration
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		woke = p.Now()
	})
	if blocked := env.Run(); blocked != 0 {
		t.Fatalf("blocked processes after Run: %d", blocked)
	}
	if woke != 10*time.Microsecond {
		t.Fatalf("woke at %v, want 10µs", woke)
	}
	if env.Now() != 10*time.Microsecond {
		t.Fatalf("env.Now() = %v, want 10µs", env.Now())
	}
}

func TestEventOrderingIsFIFOAtSameInstant(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go("p", func(p *Proc) {
			p.Sleep(time.Microsecond)
			order = append(order, i)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		env := NewEnv(42)
		var stamps []time.Duration
		for i := 0; i < 10; i++ {
			env.Go("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(env.Rand().Intn(1000)) * time.Nanosecond)
					stamps = append(stamps, p.Now())
				}
			})
		}
		env.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	env := NewEnv(1)
	sig := env.NewSignal()
	woken := 0
	for i := 0; i < 3; i++ {
		env.Go("waiter", func(p *Proc) {
			p.Wait(sig)
			woken++
		})
	}
	env.Go("notifier", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		sig.Broadcast()
	})
	if blocked := env.Run(); blocked != 0 {
		t.Fatalf("blocked = %d after broadcast", blocked)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestRunReportsBlockedProcesses(t *testing.T) {
	env := NewEnv(1)
	sig := env.NewSignal()
	env.Go("stuck", func(p *Proc) { p.Wait(sig) })
	if blocked := env.Run(); blocked != 1 {
		t.Fatalf("blocked = %d, want 1", blocked)
	}
}

func TestWaitForRechecksCondition(t *testing.T) {
	env := NewEnv(1)
	sig := env.NewSignal()
	n := 0
	var done time.Duration
	env.Go("consumer", func(p *Proc) {
		p.WaitFor(sig, func() bool { return n >= 3 })
		done = p.Now()
	})
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Microsecond)
			n++
			sig.Broadcast()
		}
	})
	if blocked := env.Run(); blocked != 0 {
		t.Fatalf("blocked = %d", blocked)
	}
	if done != 3*time.Microsecond {
		t.Fatalf("consumer finished at %v, want 3µs", done)
	}
}

func TestRunUntilStopsAtBoundaryAndResumes(t *testing.T) {
	env := NewEnv(1)
	fired := false
	env.Go("late", func(p *Proc) {
		p.Sleep(time.Second)
		fired = true
	})
	env.RunUntil(time.Millisecond)
	if fired {
		t.Fatal("event past the boundary ran early")
	}
	if env.Now() != time.Millisecond {
		t.Fatalf("Now() = %v, want 1ms", env.Now())
	}
	env.Run()
	if !fired {
		t.Fatal("event did not run after resuming")
	}
	if env.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", env.Now())
	}
}

func TestAfterCallback(t *testing.T) {
	env := NewEnv(1)
	var at time.Duration
	env.After(7*time.Microsecond, func() { at = env.Now() })
	env.Run()
	if at != 7*time.Microsecond {
		t.Fatalf("callback at %v, want 7µs", at)
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	env := NewEnv(1)
	link := env.NewLink("bus", 1e9, 0) // 1 GB/s: 1000 bytes = 1µs
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		env.Go("xfer", func(p *Proc) {
			link.Transfer(p, 1000)
			ends = append(ends, p.Now())
		})
	}
	env.Run()
	want := []time.Duration{1 * time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("transfer %d ended at %v, want %v (all: %v)", i, ends[i], want[i], ends)
		}
	}
}

func TestLinkLatencyAddsToCompletion(t *testing.T) {
	env := NewEnv(1)
	link := env.NewLink("wire", 1e9, 500*time.Nanosecond)
	var end time.Duration
	env.Go("xfer", func(p *Proc) {
		link.Transfer(p, 1000)
		end = p.Now()
	})
	env.Run()
	if end != 1500*time.Nanosecond {
		t.Fatalf("end = %v, want 1.5µs", end)
	}
}

func TestLinkLatencyDoesNotOccupyBandwidth(t *testing.T) {
	// Two back-to-back transfers with large latency should pipeline:
	// the second occupies the wire right after the first leaves it.
	env := NewEnv(1)
	link := env.NewLink("wire", 1e9, 10*time.Microsecond)
	var ends []time.Duration
	for i := 0; i < 2; i++ {
		env.Go("xfer", func(p *Proc) {
			link.Transfer(p, 1000)
			ends = append(ends, p.Now())
		})
	}
	env.Run()
	if ends[0] != 11*time.Microsecond || ends[1] != 12*time.Microsecond {
		t.Fatalf("ends = %v, want [11µs 12µs]", ends)
	}
}

func TestLinkStatsAndUtilization(t *testing.T) {
	env := NewEnv(1)
	link := env.NewLink("bus", 1e9, 0)
	env.Go("xfer", func(p *Proc) {
		link.Transfer(p, 1000)
		p.Sleep(time.Microsecond) // idle second half
	})
	env.Run()
	bytes, busy, n := link.Stats()
	if bytes != 1000 || n != 1 {
		t.Fatalf("stats = (%d, %v, %d)", bytes, busy, n)
	}
	if u := link.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestLinkSendCallback(t *testing.T) {
	env := NewEnv(1)
	link := env.NewLink("bus", 1e9, 0)
	var at time.Duration
	env.Go("sender", func(p *Proc) {
		link.Send(2000, func() { at = env.Now() })
	})
	env.Run()
	if at != 2*time.Microsecond {
		t.Fatalf("callback at %v, want 2µs", at)
	}
}

func TestNestedProcessSpawn(t *testing.T) {
	env := NewEnv(1)
	var childDone time.Duration
	env.Go("parent", func(p *Proc) {
		p.Sleep(time.Microsecond)
		env.Go("child", func(c *Proc) {
			c.Sleep(time.Microsecond)
			childDone = c.Now()
		})
		p.Sleep(5 * time.Microsecond)
	})
	env.Run()
	if childDone != 2*time.Microsecond {
		t.Fatalf("child done at %v, want 2µs", childDone)
	}
}

func TestYieldLetsPeersRun(t *testing.T) {
	env := NewEnv(1)
	var order []string
	env.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	env.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	env.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
