package sim

import (
	"runtime"
	"testing"
	"time"
)

// BenchmarkEnvScheduleFire measures raw timer throughput: schedule a batch
// of future callbacks, dispatch them, repeat. This is the engine's inner
// loop — heap push, pop, fire.
func BenchmarkEnvScheduleFire(b *testing.B) {
	env := NewEnv(1)
	fn := func() {}
	const batch = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := 0; j < batch; j++ {
			env.After(time.Duration(j+1)*time.Nanosecond, fn)
		}
		env.Run()
	}
}

// BenchmarkProcYield measures the process handoff: park the worker, run
// the scheduler, wake the worker — two channel operations per yield.
func BenchmarkProcYield(b *testing.B) {
	env := NewEnv(1)
	env.Go("yielder", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// TestAfterZeroAlloc locks in the de-allocated scheduler: once the event
// heap has grown, scheduling a future callback must not allocate.
func TestAfterZeroAlloc(t *testing.T) {
	env := NewEnv(1)
	fn := func() {}
	// Pre-grow the heap past anything AllocsPerRun will need.
	for i := 0; i < 1024; i++ {
		env.After(time.Duration(i+1)*time.Nanosecond, fn)
	}
	env.Run()
	allocs := testing.AllocsPerRun(200, func() {
		env.After(time.Microsecond, fn)
	})
	env.Run()
	if allocs != 0 {
		t.Fatalf("Env.After allocates %.1f objects per call, want 0", allocs)
	}
}

// TestCloseReleasesParkedProcs is the goroutine-leak regression test: a
// truncated RunUntil leaves processes parked mid-loop; Close must release
// every one of them. Before Close existed, each abandoned Env leaked its
// process goroutines forever.
func TestCloseReleasesParkedProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	env := NewEnv(1)
	for i := 0; i < 8; i++ {
		env.Go("looper", func(p *Proc) {
			for {
				p.Sleep(time.Microsecond)
			}
		})
	}
	env.RunUntil(10 * time.Microsecond) // truncated: all 8 still live
	env.Close()
	// Close has received every process's exit acknowledgement; the
	// goroutines themselves unwind an instant later.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines after Close = %d, want <= %d (leaked parked procs)", g, before)
	}
}

// TestCloseWithDeferredSleep verifies that a process whose deferred
// cleanup itself calls Sleep still unwinds under Close instead of
// deadlocking the release handshake.
func TestCloseWithDeferredSleep(t *testing.T) {
	env := NewEnv(1)
	env.Go("cleanup", func(p *Proc) {
		defer func() {
			recover()
			p.Sleep(time.Microsecond)
		}()
		for {
			p.Sleep(time.Microsecond)
		}
	})
	env.RunUntil(5 * time.Microsecond)
	env.Close() // must return; a hang here fails the test by timeout
}
