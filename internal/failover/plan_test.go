package failover

import (
	"errors"
	"testing"
	"time"

	"xssd/internal/core"
)

func TestPlanRoundTrip(t *testing.T) {
	p := &Plan{Cases: []Case{
		{KillAt: 5 * time.Millisecond, Scheme: core.Eager, Size: 2, Seed: 0},
		{KillAt: 8*time.Millisecond + 300*time.Microsecond, Scheme: core.Chain, Size: 4, Seed: 42},
		{KillAt: time.Second, Scheme: core.Lazy, Size: 8, Seed: 7},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	enc := p.Encode()
	p2, err := Parse(enc)
	if err != nil {
		t.Fatalf("Parse(Encode): %v\n%q", err, enc)
	}
	if len(p2.Cases) != len(p.Cases) {
		t.Fatalf("round trip changed case count %d -> %d", len(p.Cases), len(p2.Cases))
	}
	for i := range p.Cases {
		if p.Cases[i] != p2.Cases[i] {
			t.Errorf("case %d changed: %+v vs %+v", i, p.Cases[i], p2.Cases[i])
		}
	}
}

func TestPlanParseSkipsCommentsAndBlanks(t *testing.T) {
	p, err := Parse("# schedule\n\nkill 5ms scheme eager size 2 seed 1 # trailing\n\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Cases) != 1 {
		t.Fatalf("got %d cases, want 1", len(p.Cases))
	}
	want := Case{KillAt: 5 * time.Millisecond, Scheme: core.Eager, Size: 2, Seed: 1}
	if p.Cases[0] != want {
		t.Errorf("case = %+v, want %+v", p.Cases[0], want)
	}
}

func TestPlanRejections(t *testing.T) {
	for _, text := range []string{
		"kill 0s scheme eager size 2 seed 0\n",          // zero kill time
		"kill -5ms scheme eager size 2 seed 0\n",        // negative kill time
		"kill 5ms scheme sync size 2 seed 0\n",          // unknown scheme
		"kill 5ms scheme eager size 1 seed 0\n",         // no survivor
		"kill 5ms scheme eager size 9 seed 0\n",         // mesh too wide
		"kill 5ms scheme eager size 2 seed -1\n",        // negative seed
		"kill 5ms size 2 scheme eager seed 0\n",         // keyword order
		"kill 5ms scheme eager size 2 seed 0 extra 1\n", // trailing fields
		"die 5ms scheme eager size 2 seed 0\n",          // unknown verb
		"kill soon scheme eager size 2 seed 0\n",        // bad duration
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted, want rejection", text)
		} else if !errors.Is(err, ErrBadPlan) {
			t.Errorf("Parse(%q) error %v does not wrap ErrBadPlan", text, err)
		}
	}
}
