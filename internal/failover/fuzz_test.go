package failover

import (
	"strings"
	"testing"
)

// FuzzFailoverPlan feeds arbitrary text through the failover-plan codec:
// whatever Parse accepts must encode canonically (Parse∘Encode is the
// identity on parsed plans and Encode is a fixed point), and whatever it
// rejects must fail with an error, never a panic. Every case of an
// accepted plan must satisfy the validator, so out-of-range scenarios
// cannot sneak in through parsing quirks.
func FuzzFailoverPlan(f *testing.F) {
	f.Add("kill 5ms scheme eager size 2 seed 0\n")
	f.Add("kill 8ms scheme chain size 4 seed 7\nkill 2ms scheme lazy size 3 seed 42\n")
	f.Add("# comment\n\nkill 1h30m5s scheme lazy size 8 seed 9223372036854775807\n")
	f.Add("kill 100µs scheme eager size 2 seed 1\n")
	f.Add("kill -5ms scheme eager size 2 seed 0\n")
	f.Add("kill 5ms scheme eager size 1 seed 0\n")
	f.Add("kill 5ms scheme sync size 2 seed 0\n")
	f.Add("kill 5ms size 2 scheme eager seed 0\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return // rejected without panicking: fine
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid plan: %v\ninput: %q", err, text)
		}
		enc := p.Encode()
		p2, err := Parse(enc)
		if err != nil {
			t.Fatalf("canonical encoding does not re-parse: %v\n%q", err, enc)
		}
		if got := p2.Encode(); got != enc {
			t.Fatalf("Encode not a fixed point:\n%q\nvs\n%q\ninput: %q", enc, got, text)
		}
		if len(p2.Cases) != len(p.Cases) {
			t.Fatalf("round trip changed case count %d -> %d", len(p.Cases), len(p2.Cases))
		}
		for i := range p.Cases {
			if p.Cases[i] != p2.Cases[i] {
				t.Fatalf("case %d changed in round trip:\n%+v\nvs\n%+v", i, p.Cases[i], p2.Cases[i])
			}
		}
		// Encoded plans contain no comments or blank lines: one case per line.
		if enc != "" && strings.Count(enc, "\n") != len(p.Cases) {
			t.Fatalf("encoding has %d lines for %d cases:\n%q", strings.Count(enc, "\n"), len(p.Cases), enc)
		}
	})
}
