// Failover plans: a small text grammar describing a batch of failover
// scenarios — when the primary dies, under which replication scheme, how
// big the cluster is, which seed drives the workload. The codec mirrors
// fault.Plan's: a canonical Encode whose output Parse reproduces exactly
// (the fuzz target's fixed point), #-comments, one case per line.
package failover

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"xssd/internal/core"
)

// ErrBadPlan is wrapped by every Parse and validation error of a failover
// plan. Match with errors.Is.
var ErrBadPlan = errors.New("failover: bad plan")

// Cluster-size bounds a Case accepts: a failover needs a survivor, and the
// simulator meshes every pair, so very wide clusters explode quadratically.
const (
	// MinClusterSize is the smallest cluster a failover makes sense in.
	MinClusterSize = 2
	// MaxClusterSize bounds the mesh the simulator is asked to build.
	MaxClusterSize = 8
)

// Case is one failover scenario: a cluster of Size devices under Scheme,
// a Seed-driven workload, and a primary kill at KillAt.
type Case struct {
	// KillAt is the virtual time the primary loses power.
	KillAt time.Duration
	// Scheme is the replication scheme under test.
	Scheme core.ReplicationScheme
	// Size is the cluster size including the primary (2..8).
	Size int
	// Seed drives the workload and every probabilistic fault decision.
	Seed int64
}

// Plan is a batch of failover cases, run in order.
type Plan struct {
	Cases []Case
}

// validate checks one case.
func (c Case) validate() error {
	if c.KillAt <= 0 {
		return fmt.Errorf("%w: kill time must be positive, got %v", ErrBadPlan, c.KillAt)
	}
	switch c.Scheme {
	case core.Eager, core.Lazy, core.Chain:
	default:
		return fmt.Errorf("%w: unknown scheme %d", ErrBadPlan, int(c.Scheme))
	}
	if c.Size < MinClusterSize || c.Size > MaxClusterSize {
		return fmt.Errorf("%w: cluster size %d outside [%d, %d]", ErrBadPlan, c.Size, MinClusterSize, MaxClusterSize)
	}
	if c.Seed < 0 {
		return fmt.Errorf("%w: negative seed %d", ErrBadPlan, c.Seed)
	}
	return nil
}

// Validate checks every case.
func (p *Plan) Validate() error {
	for i, c := range p.Cases {
		if err := c.validate(); err != nil {
			return fmt.Errorf("case %d: %w", i, err)
		}
	}
	return nil
}

// Encode renders the plan in its canonical text form, one case per line.
// Parse(Encode(p)) reproduces p exactly for any valid plan.
func (p *Plan) Encode() string {
	var b strings.Builder
	for _, c := range p.Cases {
		fmt.Fprintf(&b, "kill %s scheme %s size %d seed %d\n", c.KillAt, c.Scheme, c.Size, c.Seed)
	}
	return b.String()
}

// Parse reads the text form of a plan. Blank lines and #-comments are
// skipped; every malformed line is rejected with an error wrapping
// ErrBadPlan.
func Parse(text string) (*Plan, error) {
	p := &Plan{}
	for i, line := range strings.Split(text, "\n") {
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		c, err := parseCase(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		p.Cases = append(p.Cases, c)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseCase(fields []string) (Case, error) {
	var c Case
	if len(fields) != 8 || fields[0] != "kill" || fields[2] != "scheme" || fields[4] != "size" || fields[6] != "seed" {
		return c, fmt.Errorf("%w: want \"kill <dur> scheme <s> size <n> seed <n>\", got %q", ErrBadPlan, strings.Join(fields, " "))
	}
	d, err := time.ParseDuration(fields[1])
	if err != nil {
		return c, fmt.Errorf("%w: bad kill time %q: %w", ErrBadPlan, fields[1], err)
	}
	c.KillAt = d
	switch fields[3] {
	case "eager":
		c.Scheme = core.Eager
	case "lazy":
		c.Scheme = core.Lazy
	case "chain":
		c.Scheme = core.Chain
	default:
		return c, fmt.Errorf("%w: unknown scheme %q (want eager/lazy/chain)", ErrBadPlan, fields[3])
	}
	n, err := strconv.Atoi(fields[5])
	if err != nil {
		return c, fmt.Errorf("%w: bad cluster size %q: %w", ErrBadPlan, fields[5], err)
	}
	c.Size = n
	s, err := strconv.ParseInt(fields[7], 10, 64)
	if err != nil {
		return c, fmt.Errorf("%w: bad seed %q: %w", ErrBadPlan, fields[7], err)
	}
	c.Seed = s
	return c, nil
}
