package failover_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"xssd/internal/chaos"
	"xssd/internal/core"
	"xssd/internal/fault"
)

// checkRun runs one scenario twice and enforces I6 (in-run invariants)
// and I7 (bit-identical re-run), returning the first run for extra
// scenario-specific assertions.
func checkRun(t *testing.T, sc chaos.FailoverScenario) *chaos.FailoverResult {
	t.Helper()
	r1, err := chaos.RunFailover(sc)
	if err != nil {
		t.Fatalf("RunFailover: %v", err)
	}
	for _, v := range r1.Violations {
		t.Errorf("violation: %s", v)
	}
	r2, err := chaos.RunFailover(sc)
	if err != nil {
		t.Fatalf("RunFailover (re-run): %v", err)
	}
	if r2.Fingerprint != r1.Fingerprint {
		t.Errorf("I7: re-run fingerprint %016x != %016x", r2.Fingerprint, r1.Fingerprint)
	}
	if !bytes.Equal(r2.Metrics, r1.Metrics) {
		t.Errorf("I7: re-run metrics snapshots differ")
	}
	if r1.Promoted == "" {
		t.Fatalf("no promotion recorded")
	}
	if r1.Commits <= r1.PreKillCommits {
		t.Errorf("no post-takeover commits: %d total, %d pre-kill", r1.Commits, r1.PreKillCommits)
	}
	if r1.Durable <= r1.DurableAtKill {
		t.Errorf("durable horizon stuck at the kill: at-kill %d, final %d", r1.DurableAtKill, r1.Durable)
	}
	return r1
}

// TestFailoverPropertyGrid sweeps the property space: every replication
// scheme × cluster sizes 2-4 × seeded kill times, each run twice. Every
// committed-before-kill transaction must be readable after promotion
// (I6, checked inside RunFailover) and the whole failover timeline must
// replay bit for bit (I7).
func TestFailoverPropertyGrid(t *testing.T) {
	kills := 10
	if testing.Short() {
		kills = 2
	}
	for _, scheme := range []core.ReplicationScheme{core.Eager, core.Lazy, core.Chain} {
		for _, size := range []int{2, 3, 4} {
			for k := 0; k < kills; k++ {
				scheme, size, k := scheme, size, k
				t.Run(fmt.Sprintf("%s/size%d/kill%d", scheme, size, k), func(t *testing.T) {
					t.Parallel()
					checkRun(t, chaos.FailoverScenario{
						Seed:        int64(1000 + k + size*10 + int(scheme)*100),
						Scheme:      scheme,
						Secondaries: size - 1,
						KillAt:      2*time.Millisecond + time.Duration(k)*1100*time.Microsecond,
					})
				})
			}
		}
	}
}

// dropsBeforeKill builds a plan that drops the next n mirrored chunks
// starting shortly before the kill — recent enough that the repair
// timeout (1 ms in the chaos devices) cannot resend them before the
// primary dies, so the holes are still open at election time.
func dropsBeforeKill(killAt time.Duration, n int64) *fault.Plan {
	return &fault.Plan{Rules: []fault.Rule{{
		Point:   fault.TransportMirror + "@" + chaos.PrimaryName,
		Trigger: fault.TriggerAt,
		At:      killAt - 900*time.Microsecond,
		Action:  fault.ActionDrop,
		Times:   n,
	}}}
}

// TestFailoverTailReplay forces the lazy scheme's hard case: the durable
// horizon outruns every survivor (dropped mirror chunks, unrepaired at
// the kill), so the takeover must re-drive the retained tail through the
// promoted device — no committed record may be lost.
func TestFailoverTailReplay(t *testing.T) {
	killAt := 8 * time.Millisecond
	r := checkRun(t, chaos.FailoverScenario{
		Seed:        42,
		Scheme:      core.Lazy,
		Secondaries: 1,
		KillAt:      killAt,
		Plan:        dropsBeforeKill(killAt, 12),
	})
	if r.Replayed == 0 {
		t.Errorf("expected a tail replay (drops before the kill), got 0 bytes; resume=%d durable-at-kill=%d", r.ResumeAt, r.DurableAtKill)
	}
}

// TestFailoverBackfill forces the star-rebuild hole: drops on one
// survivor's bridge only (the NTB point is scoped per bridge, unlike
// transport.mirror, which would stall both peers at the same offset), so
// after the peer set is rebuilt the laggard has holes no retransmission
// window covers — the manager must backfill it from the retained stream
// before the host resumes.
func TestFailoverBackfill(t *testing.T) {
	killAt := 8 * time.Millisecond
	r := checkRun(t, chaos.FailoverScenario{
		Seed:        43,
		Scheme:      core.Eager,
		Secondaries: 2,
		KillAt:      killAt,
		Plan: &fault.Plan{Rules: []fault.Rule{{
			Point:   fault.NTBDeliver + "@" + chaos.PrimaryName + "->s0",
			Trigger: fault.TriggerAt,
			At:      killAt - 900*time.Microsecond,
			Action:  fault.ActionDrop,
			Times:   6,
		}}},
	})
	if r.Backfilled == 0 {
		t.Errorf("expected a survivor backfill (drops before the kill), got 0 bytes; resume=%d", r.ResumeAt)
	}
	if r.Promoted != "s1" {
		t.Errorf("promoted %s, want s1 (s0 was lagging)", r.Promoted)
	}
}

// TestFailoverChainHealsWithoutBackfill: the chain keeps its downstream
// links across a takeover, so holes heal through the ordinary repair
// path — the manager must not transfer anything itself.
func TestFailoverChainHealsWithoutBackfill(t *testing.T) {
	killAt := 8 * time.Millisecond
	r := checkRun(t, chaos.FailoverScenario{
		Seed:        44,
		Scheme:      core.Chain,
		Secondaries: 2,
		KillAt:      killAt,
		Plan:        dropsBeforeKill(killAt, 9),
	})
	if r.Backfilled != 0 {
		t.Errorf("chain takeover backfilled %d bytes, want 0 (links are preserved)", r.Backfilled)
	}
	if r.Promoted != "s0" {
		t.Errorf("chain promoted %s, want the next link s0", r.Promoted)
	}
}

// freezeSpanningKill freezes a secondary's shadow reporting across the
// kill, so the election sees StatusShadowFrozen on that device.
func freezeSpanningKill(name string, killAt, dur time.Duration) *fault.Plan {
	return &fault.Plan{Rules: []fault.Rule{{
		Point:   fault.TransportShadow + "@" + name,
		Trigger: fault.TriggerAt,
		At:      killAt - 100*time.Microsecond,
		Action:  fault.ActionFreeze,
		Dur:     dur,
	}}}
}

// TestFailoverElectionSkipsFrozenPeer: under a star scheme a frozen
// survivor must not be promoted — its persisted prefix cannot be trusted
// as current — even though it may hold the longest prefix.
func TestFailoverElectionSkipsFrozenPeer(t *testing.T) {
	killAt := 8 * time.Millisecond
	r := checkRun(t, chaos.FailoverScenario{
		Seed:        45,
		Scheme:      core.Eager,
		Secondaries: 2,
		KillAt:      killAt,
		Plan:        freezeSpanningKill("s0", killAt, 2*time.Millisecond),
	})
	if r.Promoted != "s1" {
		t.Errorf("promoted %s, want s1 (s0's shadow was frozen at election time)", r.Promoted)
	}
}

// TestFailoverChainWaitsOutFrozenLink: a chain election never reorders
// around a frozen next link (that would orphan the downstream
// retransmission state); the manager retries until the freeze expires
// and then promotes the same link.
func TestFailoverChainWaitsOutFrozenLink(t *testing.T) {
	killAt := 8 * time.Millisecond
	freeze := 1500 * time.Microsecond
	r := checkRun(t, chaos.FailoverScenario{
		Seed:        46,
		Scheme:      core.Chain,
		Secondaries: 2,
		KillAt:      killAt,
		Plan:        freezeSpanningKill("s0", killAt, freeze),
	})
	if r.Promoted != "s0" {
		t.Errorf("promoted %s, want the next link s0 after its freeze expired", r.Promoted)
	}
	if r.DetectToLive < freeze/2 {
		t.Errorf("takeover finished in %v, expected it to wait out most of the %v freeze", r.DetectToLive, freeze)
	}
}
