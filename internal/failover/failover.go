// Package failover implements host-side primary-failure handling for a
// replicated X-SSD cluster (paper §4.2, §7.1): a watchdog process detects
// the primary's death through the status register, elects the surviving
// secondary with the longest persisted prefix, promotes it, backfills the
// other survivors' missing bytes from the database's retained log stream,
// and resumes the host write stream at the promoted device's credit
// counter — so every transaction the old primary acknowledged stays
// readable and no record is applied twice.
//
// The paper assigns the promotion/demotion sequences and catch-up data
// transfer to the database system; this package is that database-side
// logic, built only on architecturally visible state (status registers,
// credit counters, the vendor admin commands repl wraps).
package failover

import (
	"errors"
	"fmt"
	"time"

	"xssd/internal/core"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/repl"
	"xssd/internal/sim"
	"xssd/internal/villars"
	"xssd/internal/wal"
)

// ErrTakeoverFailed wraps any error that aborts a takeover attempt; the
// watchdog halts and surfaces it through Manager.Err. Match with
// errors.Is.
var ErrTakeoverFailed = errors.New("failover: takeover failed")

// Config tunes the failover manager.
type Config struct {
	// Period is the watchdog's poll interval: how often the primary's
	// status register is read, and the granularity of every wait inside a
	// takeover (election retry, fast-side drain).
	Period time.Duration
	// Misses is how many consecutive polls must observe StatusPowerLoss
	// before the primary is declared dead (debounces the detector against
	// transient register states).
	Misses int
	// DrainWait is how long the manager waits after declaring the primary
	// dead before electing: the window for the dead device's supercap
	// drain and for the WAL pipeline to observe the lost sink.
	DrainWait time.Duration
	// ElectWait bounds the election phase: how long the manager keeps
	// retrying ErrNoCandidate (for example while the next chain link's
	// shadow reporting is frozen) and waiting for the winner's fast side
	// to go idle before the takeover fails.
	ElectWait time.Duration
}

// DefaultConfig is sized for the simulator's microsecond-scale devices: a
// 50 µs poll with 3 misses detects death in ~150 µs, well under any
// group-commit timeout, and the election budget comfortably outlasts the
// bounded shadow freezes fault plans inject.
var DefaultConfig = Config{
	Period:    50 * time.Microsecond,
	Misses:    3,
	DrainWait: 200 * time.Microsecond,
	ElectWait: 50 * time.Millisecond,
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = DefaultConfig.Period
	}
	if c.Misses <= 0 {
		c.Misses = DefaultConfig.Misses
	}
	if c.DrainWait <= 0 {
		c.DrainWait = DefaultConfig.DrainWait
	}
	if c.ElectWait <= 0 {
		c.ElectWait = DefaultConfig.ElectWait
	}
	return c
}

// Takeover records one completed failover.
type Takeover struct {
	// DetectedAt is the virtual time the watchdog declared the primary dead.
	DetectedAt time.Duration
	// PromotedAt is the virtual time the host stream was live again on the
	// new primary (the takeover's end).
	PromotedAt time.Duration
	// Promoted is the new primary's device name.
	Promoted string
	// ResumeAt is the stream offset the host resumed from — the promoted
	// device's persisted prefix after truncation.
	ResumeAt int64
	// Replayed is how many retained stream bytes the WAL re-drove through
	// the new sink (the tail the promoted device was missing).
	Replayed int64
	// Backfilled is how many stream bytes were pushed to lagging survivors
	// before the host resumed (star schemes only; a chain heals through
	// its preserved links).
	Backfilled int64
}

// Manager is the failover watchdog: one deterministic simulator process
// that monitors the cluster's primary and, on death, runs the takeover
// sequence. The WAL must be configured with Retain so the takeover can
// serve backfill and tail-replay bytes (wal.Config).
type Manager struct {
	env     *sim.Env
	cluster *repl.Cluster
	lg      *wal.Log
	sink    wal.RebindableSink
	cfg     Config

	ctl []*pcie.MMIO // per-device control windows, index-aligned with Devices()

	takeovers []Takeover
	err       error
	stopped   bool

	// metrics (cluster/failover/...)
	mDetections *obs.Counter
	mElections  *obs.Counter
	mPromotions *obs.Counter
	mReplayed   *obs.Counter
	mBackfilled *obs.Counter
	mPromoteLat *obs.Histogram // detection -> stream live again, ns
}

// New starts a failover manager over the cluster. The log's sink must be
// the rebindable sink passed here (the manager re-points it at the new
// primary during takeover). Watchdogging begins immediately; the manager
// idles until the cluster has a primary.
func New(env *sim.Env, cluster *repl.Cluster, lg *wal.Log, sink wal.RebindableSink, cfg Config) *Manager {
	m := &Manager{
		env:     env,
		cluster: cluster,
		lg:      lg,
		sink:    sink,
		cfg:     cfg.withDefaults(),
		ctl:     make([]*pcie.MMIO, len(cluster.Devices())),
	}
	sc := obs.For(env).Scope("cluster/failover")
	m.mDetections = sc.Counter("detections")
	m.mElections = sc.Counter("elections")
	m.mPromotions = sc.Counter("promotions")
	m.mReplayed = sc.Counter("replayed_bytes")
	m.mBackfilled = sc.Counter("backfilled_bytes")
	m.mPromoteLat = sc.Histogram("promotion_ns")
	env.Go("failover-watchdog", m.watch)
	return m
}

// Takeovers returns the completed failovers, oldest first.
func (m *Manager) Takeovers() []Takeover {
	return append([]Takeover(nil), m.takeovers...)
}

// Err returns the error that halted the watchdog, or nil.
func (m *Manager) Err() error { return m.err }

// Stop retires the watchdog at its next poll.
func (m *Manager) Stop() { m.stopped = true }

// mmio returns the (lazily created) uncached control window of device i.
func (m *Manager) mmio(i int) *pcie.MMIO {
	if m.ctl[i] == nil {
		m.ctl[i] = pcie.NewMMIO(m.cluster.Devices()[i].ControlRegion(), pcie.Uncached)
	}
	return m.ctl[i]
}

// index returns the cluster index of dev.
func (m *Manager) index(dev *villars.Device) int {
	for i, d := range m.cluster.Devices() {
		if d == dev {
			return i
		}
	}
	return -1
}

// readStatus polls device i's status register (a non-posted MMIO load).
func (m *Manager) readStatus(p *sim.Proc, i int) int64 {
	b := m.mmio(i).Load(p, core.RegStatus, 8)
	var v int64
	for k := 0; k < 8; k++ {
		v |= int64(b[k]) << (8 * k)
	}
	return v
}

// watch is the watchdog process: poll the primary's status register every
// Period and run a takeover after Misses consecutive power-loss readings.
func (m *Manager) watch(p *sim.Proc) {
	misses := 0
	for {
		p.Sleep(m.cfg.Period)
		if m.stopped {
			return
		}
		prim := m.cluster.Primary()
		if prim == nil {
			continue // cluster not set up yet
		}
		if m.readStatus(p, m.index(prim))&core.StatusPowerLoss != 0 {
			misses++
		} else {
			misses = 0
		}
		if misses < m.cfg.Misses {
			continue
		}
		misses = 0
		if err := m.takeover(p); err != nil {
			m.err = fmt.Errorf("%w: %w", ErrTakeoverFailed, err)
			return
		}
	}
}

// takeover runs the full sequence: drain, halt the log, elect, truncate,
// reconfigure, backfill the other survivors, rebind the sink, resume the
// host stream.
//
//xssd:conduit runs at the takeover barrier: the old primary is dead and the log halted, so touching every survivor's state races nothing
func (m *Manager) takeover(p *sim.Proc) error {
	detected := p.Now()
	m.mDetections.Inc()

	// Under the parallel engine the survivors run in their own Envs; the
	// takeover reads and rewires all of them, and afterwards the host
	// stream crosses to the winner's Env on every write — far too hot for
	// mailboxes. Serialize the group permanently (effective at the next
	// barrier, deterministic for any worker count) and wait out the
	// current quantum so every member is parked before touching them.
	if g := p.Env().Group(); g != nil {
		g.Serialize()
		p.Sleep(2 * g.Quantum())
	}

	// Let the dead device's supercap drain finish and give any in-flight
	// flush time to observe the lost sink.
	p.Sleep(m.cfg.DrainWait)

	// The takeover needs the log pipeline halted. A mid-flight flush must
	// fail on its own (racing it would corrupt the buffer); with nothing
	// in flight the flusher is parked and is halted explicitly.
	for !m.lg.Dead() && m.lg.Backlog() > 0 {
		p.Sleep(m.cfg.Period)
	}
	if !m.lg.Dead() {
		m.lg.Halt()
	}

	// Election, retried while no survivor qualifies (a frozen next chain
	// link un-freezes; a bounded budget keeps a dead cluster from hanging
	// the watchdog).
	deadline := p.Now() + m.cfg.ElectWait
	var idx int
	for {
		var err error
		idx, err = m.cluster.Elect()
		if err == nil {
			break
		}
		if !errors.Is(err, repl.ErrNoCandidate) {
			return err
		}
		if p.Now() >= deadline {
			return fmt.Errorf("election timed out after %v: %w", m.cfg.ElectWait, err)
		}
		p.Sleep(m.cfg.Period)
	}
	m.mElections.Inc()
	winner := m.cluster.Devices()[idx]

	// The winner's frontier is authoritative only once its intake has
	// fully retired (nothing queued behind the counter).
	for !winner.FastSideIdle() {
		if p.Now() >= deadline {
			return fmt.Errorf("fast side of %s never went idle", winner.Name())
		}
		p.Sleep(m.cfg.Period)
	}
	fr, err := winner.TruncateToCredit()
	if err != nil {
		return fmt.Errorf("truncate %s: %w", winner.Name(), err)
	}
	if err := m.cluster.Reconfigure(p, idx); err != nil {
		return fmt.Errorf("reconfigure around %s: %w", winner.Name(), err)
	}

	// Star schemes rebuild the peer set from scratch, so survivors lagging
	// the new primary have holes no retransmission window covers: backfill
	// them from the database's retained stream before the host resumes
	// (the catch-up transfer the paper assigns to the database, §7.1). A
	// chain keeps its links, so downstream holes heal through the ordinary
	// repair path.
	var backfilled int64
	if m.cluster.Scheme() != core.Chain {
		for i, d := range m.cluster.Devices() {
			if i == idx || d.PowerLost() {
				continue
			}
			f := d.CMB().Ring().Frontier()
			if f >= fr {
				continue
			}
			data, err := m.lg.StreamRange(f, fr)
			if err != nil {
				return fmt.Errorf("backfill source for %s: %w", d.Name(), err)
			}
			n, err := winner.Transport().Backfill(p, d, f, data)
			backfilled += n
			if err != nil {
				return fmt.Errorf("backfill %s: %w", d.Name(), err)
			}
		}
	}

	// Resume the host stream on the new primary: rebind the sink at the
	// promoted frontier, then restart the pipeline — replaying the
	// retained tail the promoted device is missing, or skipping buffered
	// bytes it already persisted beyond the old durable horizon.
	m.sink.Rebind(p, winner, fr)
	replayed, err := m.lg.Resume(p, m.sink, fr)
	if err != nil {
		return fmt.Errorf("resume stream at %d on %s: %w", fr, winner.Name(), err)
	}

	m.mPromotions.Inc()
	m.mReplayed.Add(replayed)
	m.mBackfilled.Add(backfilled)
	m.mPromoteLat.Since(detected)
	m.takeovers = append(m.takeovers, Takeover{
		DetectedAt: detected,
		PromotedAt: p.Now(),
		Promoted:   winner.Name(),
		ResumeAt:   fr,
		Replayed:   replayed,
		Backfilled: backfilled,
	})
	return nil
}
