// Package core defines the X-SSD architecture (paper §3): the contracts
// shared between a device that implements the architecture (the Villars
// reference design in internal/villars) and the host-side software that
// talks to it (internal/xapi).
//
// The architecture couples two sides in one device. The conventional side
// is an ordinary NVMe block SSD. The fast side is a byte-addressable,
// append-only staging area backed by persistent memory and exposed through
// the NVMe Controller Memory Buffer, with three data-propagation services:
// in-order destaging to flash, mirroring to peer devices, and a credit
// counter the host uses for flow control and durability tracking.
package core

import "time"

// TransportMode is the role of a device's Transport module (paper §4.2).
type TransportMode int

// Transport modes. Mode changes are issued through vendor-specific NVMe
// admin commands and require no hardware change.
const (
	// Standalone: transport inactive; only CMB and destage run.
	Standalone TransportMode = iota
	// Primary: mirror every fast-side write to the configured peers and
	// collect their shadow counters.
	Primary
	// Secondary: accept mirrored writes through the CMB and report the
	// local credit counter back to the primary.
	Secondary
)

// String implements fmt.Stringer.
func (m TransportMode) String() string {
	switch m {
	case Standalone:
		return "standalone"
	case Primary:
		return "primary"
	case Secondary:
		return "secondary"
	}
	return "unknown"
}

// ReplicationScheme selects which counter combination the device reports
// to the host as "the" credit counter (paper §4.2).
type ReplicationScheme int

// Replication schemes built on shadow counters.
const (
	// Eager: report the minimum across local and all shadow counters — a
	// byte counts only when every secondary persisted it.
	Eager ReplicationScheme = iota
	// Lazy: report the local counter; secondaries catch up asynchronously.
	Lazy
	// Chain: report the shadow counter of the last secondary in the chain.
	Chain
)

// String implements fmt.Stringer.
func (s ReplicationScheme) String() string {
	switch s {
	case Eager:
		return "eager"
	case Lazy:
		return "lazy"
	case Chain:
		return "chain"
	}
	return "unknown"
}

// Control-interface register layout. The fast side exposes, next to the
// CMB data window, a small MMIO register file the host reads with
// non-posted loads. All registers are 8 bytes, little-endian.
const (
	// RegCredit is the replication-aware credit counter: the number of
	// stream bytes durable under the active replication scheme. This is
	// the register x_pwrite/x_fsync poll.
	RegCredit = 0x00
	// RegLocalCredit is the local persist frontier regardless of scheme.
	RegLocalCredit = 0x08
	// RegQueueSize is the negotiated CMB intake-queue size in bytes.
	RegQueueSize = 0x10
	// RegStatus is the transport status register (see Status* bits).
	// Paper §7.1: the host checks it when it suspects a stale counter
	// rather than spinning on credit reads.
	RegStatus = 0x18
	// RegDestagedStream is the number of stream bytes destaged to flash.
	RegDestagedStream = 0x20
	// RegDestageBaseLBA is the first LBA of the destage ring.
	RegDestageBaseLBA = 0x28
	// RegDestageLBACount is the length of the destage ring in LBAs.
	RegDestageLBACount = 0x30
	// RegDestageTailLBA is the ring slot the next destaged page will use.
	RegDestageTailLBA = 0x38
	// ControlSize is the size of the register file.
	ControlSize = 0x40
)

// Status register bits.
const (
	// StatusTransportUp is set while the transport module is healthy.
	StatusTransportUp = 1 << 0
	// StatusReplicaStalled is set when a secondary has not refreshed its
	// shadow counter within the stall timeout.
	StatusReplicaStalled = 1 << 1
	// StatusPowerLoss is set after a power-loss event while the device
	// drains the fast side on supercapacitor energy.
	StatusPowerLoss = 1 << 2
	// StatusShadowFrozen is set while the device's own shadow-counter
	// reporting is suppressed (a secondary whose upstream updates are
	// frozen). A failover manager must not promote a device advertising
	// this bit: its persisted prefix cannot be trusted as current.
	StatusShadowFrozen = 1 << 3
)

// CounterUpdateBytes is the total on-wire size of a shadow-counter update
// message (an NTB doorbell-style write). Sized so that a 0.4 µs update
// period costs ~2.4% of a 2 GB/s link, matching the paper's Fig 13
// bandwidth numbers.
const CounterUpdateBytes = 19

// DefaultQueueSize is the CMB intake-queue size the paper recommends: a
// 32 KB queue lets typical OLTP group commits pass without intermediate
// credit checks (paper §6.3).
const DefaultQueueSize = 32 << 10

// DefaultDestageLatencyBound is how long the destage module lets data sit
// in the fast side before destaging a partial (filler-padded) page.
const DefaultDestageLatencyBound = 2 * time.Millisecond

// FlowControl implements the host half of the credit protocol (paper
// §4.1): the host may have at most QueueSize bytes outstanding beyond the
// last credit value it observed. The device side is advisory — a host that
// overruns loses the guarantees — so this bookkeeping is all that is
// needed.
type FlowControl struct {
	queueSize  int64
	written    int64 // stream bytes the host has issued
	lastCredit int64 // last credit value observed
}

// NewFlowControl creates a flow controller for the negotiated queue size.
func NewFlowControl(queueSize int64) *FlowControl {
	return &FlowControl{queueSize: queueSize}
}

// QueueSize returns the negotiated queue size.
func (f *FlowControl) QueueSize() int64 { return f.queueSize }

// Written returns the total stream bytes issued so far.
func (f *FlowControl) Written() int64 { return f.written }

// Budget returns how many bytes may be written right now without
// re-reading the credit counter.
func (f *FlowControl) Budget() int64 {
	return f.queueSize - (f.written - f.lastCredit)
}

// Note records that n more bytes were issued.
func (f *FlowControl) Note(n int64) { f.written += n }

// Observe records a fresh credit-counter reading and returns the updated
// budget.
func (f *FlowControl) Observe(credit int64) int64 {
	if credit > f.lastCredit {
		f.lastCredit = credit
	}
	return f.Budget()
}

// Durable reports whether everything issued so far has been persisted
// according to the last observed credit value (the x_fsync condition).
func (f *FlowControl) Durable() bool { return f.lastCredit >= f.written }

// Covered reports whether the last observed credit value vouches for
// every stream byte below off — the async-token durability condition
// (Durable is Covered(Written())).
func (f *FlowControl) Covered(off int64) bool { return f.lastCredit >= off }

// Resume positions the cursor at a takeover point: the host continues an
// existing stream at off on a device whose credit counter already vouches
// for everything below it (failover to a promoted secondary).
func (f *FlowControl) Resume(off int64) {
	f.written = off
	f.lastCredit = off
}
