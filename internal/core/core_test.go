package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlowControlInitialBudget(t *testing.T) {
	fc := NewFlowControl(4096)
	if fc.Budget() != 4096 {
		t.Fatalf("initial budget = %d", fc.Budget())
	}
	if fc.QueueSize() != 4096 {
		t.Fatalf("queue size = %d", fc.QueueSize())
	}
	if !fc.Durable() {
		t.Fatal("empty log not durable")
	}
}

func TestFlowControlPaperExample(t *testing.T) {
	// Paper §4.1's walkthrough: 4096-byte queue, the host writes 4096
	// without checking; the counter comes back at 4000, so 96 bytes are
	// in flight and the host may write at most 4000 more.
	fc := NewFlowControl(4096)
	fc.Note(4096)
	if fc.Budget() != 0 {
		t.Fatalf("budget after full write = %d", fc.Budget())
	}
	if got := fc.Observe(4000); got != 4000 {
		t.Fatalf("budget after credit 4000 = %d, want 4000", got)
	}
	if fc.Durable() {
		t.Fatal("96 in-flight bytes reported durable")
	}
	fc.Observe(4096)
	if !fc.Durable() {
		t.Fatal("fully persisted log not durable")
	}
}

func TestFlowControlCreditNeverRegresses(t *testing.T) {
	fc := NewFlowControl(1024)
	fc.Note(512)
	fc.Observe(512)
	fc.Observe(100) // stale read must not shrink the budget
	if fc.Budget() != 1024 {
		t.Fatalf("budget after stale credit = %d", fc.Budget())
	}
}

// property: under any interleaving of writes within budget and credit
// observations that never exceed written bytes, the invariant
// written - lastCredit <= queueSize always holds, and Durable() is true
// exactly when the last observed credit covers everything written.
func TestQuickFlowControlInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := int64(rng.Intn(8192) + 64)
		fc := NewFlowControl(q)
		credit := int64(0)
		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 {
				b := fc.Budget()
				if b <= 0 {
					continue
				}
				n := rng.Int63n(b) + 1
				fc.Note(n)
			} else {
				// device persisted some prefix
				if credit < fc.Written() {
					credit += rng.Int63n(fc.Written()-credit) + 1
				}
				fc.Observe(credit)
			}
			if fc.Written()-credit > q && fc.Budget() > 0 {
				// the host could only believe it has budget if its last
				// observation allows it
				if fc.Budget() > q {
					return false
				}
			}
			if fc.Budget() < 0 {
				return false
			}
			if fc.Durable() != (credit >= fc.Written()) && fc.Durable() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestModeAndSchemeStrings(t *testing.T) {
	if Standalone.String() != "standalone" || Primary.String() != "primary" || Secondary.String() != "secondary" {
		t.Fatal("mode strings")
	}
	if TransportMode(9).String() != "unknown" {
		t.Fatal("unknown mode string")
	}
	if Eager.String() != "eager" || Lazy.String() != "lazy" || Chain.String() != "chain" {
		t.Fatal("scheme strings")
	}
	if ReplicationScheme(9).String() != "unknown" {
		t.Fatal("unknown scheme string")
	}
}

func TestRegisterLayoutFitsControlSize(t *testing.T) {
	regs := []int64{RegCredit, RegLocalCredit, RegQueueSize, RegStatus,
		RegDestagedStream, RegDestageBaseLBA, RegDestageLBACount, RegDestageTailLBA}
	seen := map[int64]bool{}
	for _, r := range regs {
		if r%8 != 0 {
			t.Fatalf("register 0x%x not 8-byte aligned", r)
		}
		if r+8 > ControlSize {
			t.Fatalf("register 0x%x outside control window", r)
		}
		if seen[r] {
			t.Fatalf("register 0x%x duplicated", r)
		}
		seen[r] = true
	}
}
