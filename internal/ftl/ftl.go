// Package ftl implements the page-mapped Flash Translation Layer of the
// device's conventional side (paper §2.2): logical-to-physical page
// mapping, striped allocation across dies, greedy garbage collection, and
// bad-block handling (paper §7.1: a destage failure is handled internally
// by picking a new block to write).
package ftl

import (
	"errors"
	"fmt"

	"xssd/internal/nand"
	"xssd/internal/obs"
	"xssd/internal/sched"
	"xssd/internal/sim"
)

// Errors returned by FTL operations.
var (
	ErrUnmapped = errors.New("ftl: logical page not mapped")
	ErrNoSpace  = errors.New("ftl: no free blocks and nothing to collect")
	ErrRange    = errors.New("ftl: logical page out of range")
	ErrPageSize = errors.New("ftl: payload must be exactly one page")
)

// Config tunes the FTL.
type Config struct {
	// OverProvision is the fraction of raw capacity hidden from the host
	// and used as GC headroom.
	OverProvision float64
	// GCThreshold triggers collection on a die when its free-block count
	// falls to or below this value.
	GCThreshold int
	// GCReserve blocks per die are usable only by the collector itself.
	GCReserve int
}

// DefaultConfig matches a typical 20% over-provisioned SSD.
var DefaultConfig = Config{OverProvision: 0.2, GCThreshold: 3, GCReserve: 1}

const unmapped = int64(-1)

// writePoint is an open block being filled by one traffic class. Each
// class (conventional/destage/GC) owns its own write point per die — the
// multi-stream arrangement that keeps NAND page-order intact even when the
// scheduler reorders requests across classes (paper §8.1 cites the same
// technique in multi-streamed SSDs).
type writePoint struct {
	active   int // block currently being filled (-1 none)
	nextPage int
}

type dieState struct {
	free   []int         // erased blocks ready for allocation
	points [3]writePoint // per sched.Source write points
	sealed []int         // fully written blocks (GC victim candidates)
}

// FTL maps logical pages onto a nand.Array through a sched.Scheduler.
type FTL struct {
	env *sim.Env
	arr *nand.Array
	sch *sched.Scheduler
	geo nand.Geometry
	cfg Config

	l2p        []int64 // logical -> physical page number
	p2l        []int64 // physical -> logical (unmapped for invalid/free)
	validCount []int   // per block: number of valid pages
	dies       []dieState
	nextDie    int

	spaceFreed *sim.Signal // broadcast when GC returns blocks
	gcKick     *sim.Signal

	// stats
	hostPages, gcPages, gcErases, badRetries int64
}

// New builds an FTL over arr, dispatching through sch. All blocks start
// erased and free.
func New(env *sim.Env, arr *nand.Array, sch *sched.Scheduler, cfg Config) *FTL {
	geo := arr.Geometry()
	f := &FTL{
		env:        env,
		arr:        arr,
		sch:        sch,
		geo:        geo,
		cfg:        cfg,
		l2p:        make([]int64, logicalPages(geo, cfg)),
		p2l:        make([]int64, geo.TotalPages()),
		validCount: make([]int, geo.Dies()*geo.BlocksPerDie),
		dies:       make([]dieState, geo.Dies()),
		spaceFreed: env.NewSignal(),
		gcKick:     env.NewSignal(),
	}
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	for i := range f.p2l {
		f.p2l[i] = unmapped
	}
	for d := range f.dies {
		for c := range f.dies[d].points {
			f.dies[d].points[c].active = -1
		}
		for b := 0; b < geo.BlocksPerDie; b++ {
			f.dies[d].free = append(f.dies[d].free, b)
		}
	}
	env.Go("ftl-gc", f.gcLoop)
	return f
}

// logicalPages computes the host-visible logical page count.
func logicalPages(geo nand.Geometry, cfg Config) int64 {
	return int64(float64(geo.TotalPages()) * (1 - cfg.OverProvision))
}

// LogicalPages returns the host-visible capacity in pages.
func (f *FTL) LogicalPages() int64 { return int64(len(f.l2p)) }

// Observe registers the FTL's telemetry under sc (the owning device
// supplies "<dev>/ftl"): page-program and GC progress gauges plus the
// free-block pool level, the inputs to the write-amplification account.
func (f *FTL) Observe(sc obs.Scope) {
	sc.GaugeFunc("host_pages", func() int64 { return f.hostPages })
	sc.GaugeFunc("gc_pages", func() int64 { return f.gcPages })
	sc.GaugeFunc("gc_erases", func() int64 { return f.gcErases })
	sc.GaugeFunc("bad_retries", func() int64 { return f.badRetries })
	sc.GaugeFunc("free_blocks", func() int64 { return int64(f.FreeBlocks()) })
}

// PageSize returns the page size in bytes.
func (f *FTL) PageSize() int { return f.geo.PageSize }

func (f *FTL) dieOf(ppn int64) int { return int(ppn) / f.geo.PagesPerDie() }
func (f *FTL) blockOf(ppn int64) int {
	return int(ppn) % f.geo.PagesPerDie() / f.geo.PagesPerBlock
}

func (f *FTL) addr(ppn int64) nand.PageAddr {
	die := f.dieOf(ppn)
	rem := int(ppn) % f.geo.PagesPerDie()
	return nand.PageAddr{
		Channel: die / f.geo.WaysPerChan,
		Way:     die % f.geo.WaysPerChan,
		Block:   rem / f.geo.PagesPerBlock,
		Page:    rem % f.geo.PagesPerBlock,
	}
}

func (f *FTL) ppn(die, block, page int) int64 {
	return int64(die)*int64(f.geo.PagesPerDie()) + int64(block)*int64(f.geo.PagesPerBlock) + int64(page)
}

func (f *FTL) blockIndex(die, block int) int { return die*f.geo.BlocksPerDie + block }

// allocateOn picks the next physical page on a specific die for the given
// traffic class, opening a fresh block when needed. minFree guards the
// reserve: host allocations require len(free) > reserve, GC allocations
// may drain it. Returns -1 if the die has no usable write point.
func (f *FTL) allocateOn(die int, class sched.Source, minFree int) int64 {
	d := &f.dies[die]
	wp := &d.points[class]
	if wp.active == -1 || wp.nextPage == f.geo.PagesPerBlock {
		if wp.active != -1 {
			d.sealed = append(d.sealed, wp.active)
			wp.active = -1
		}
		if len(d.free) <= minFree {
			return -1
		}
		wp.active = d.free[0]
		d.free = d.free[1:]
		wp.nextPage = 0
		if len(d.free) <= f.cfg.GCThreshold {
			f.gcKick.Broadcast()
		}
	}
	ppn := f.ppn(die, wp.active, wp.nextPage)
	wp.nextPage++
	return ppn
}

// allocate finds a write point for the class, round-robin over dies,
// waiting on GC when every die is out of space.
func (f *FTL) allocate(p *sim.Proc, class sched.Source) (int64, error) {
	for {
		for try := 0; try < len(f.dies); try++ {
			die := f.nextDie
			f.nextDie = (f.nextDie + 1) % len(f.dies)
			if ppn := f.allocateOn(die, class, f.cfg.GCReserve); ppn >= 0 {
				return ppn, nil
			}
		}
		if !f.anythingToCollect() {
			return 0, ErrNoSpace
		}
		f.gcKick.Broadcast()
		p.Wait(f.spaceFreed)
	}
}

func (f *FTL) anythingToCollect() bool {
	for d := range f.dies {
		if f.victim(d) != -1 {
			return true
		}
	}
	return false
}

// Write stores data (exactly one page) at logical page lpn, blocking the
// calling process until the flash program completes. src tags the traffic
// class for the scheduler. Bad blocks are retired and the write retried
// transparently.
func (f *FTL) Write(p *sim.Proc, lpn int64, data []byte, src sched.Source) error {
	if lpn < 0 || lpn >= f.LogicalPages() {
		return ErrRange
	}
	if len(data) != f.geo.PageSize {
		return fmt.Errorf("%w: got %d bytes, page is %d", ErrPageSize, len(data), f.geo.PageSize)
	}
	for {
		ppn, err := f.allocate(p, src)
		if err != nil {
			return err
		}
		var progErr error
		done := false
		sig := f.env.NewSignal()
		f.sch.Submit(&sched.Request{
			Kind:   sched.OpProgram,
			Addr:   f.addr(ppn),
			Data:   data,
			Source: src,
			Done: func(_ []byte, err error) {
				progErr = err
				done = true
				sig.Broadcast()
			},
		})
		p.WaitFor(sig, func() bool { return done })
		if progErr == nand.ErrBadBlock {
			// Retire the block and retry elsewhere (paper §7.1).
			f.retireActive(f.dieOf(ppn), f.blockOf(ppn))
			f.badRetries++
			continue
		}
		if progErr != nil {
			return progErr
		}
		f.commitMapping(lpn, ppn, src)
		return nil
	}
}

// retireActive drops a bad block from whichever write point holds it.
func (f *FTL) retireActive(die, block int) {
	d := &f.dies[die]
	for c := range d.points {
		if d.points[c].active == block {
			d.points[c].active = -1
		}
	}
}

// commitMapping installs lpn->ppn and invalidates the previous location.
func (f *FTL) commitMapping(lpn, ppn int64, src sched.Source) {
	if old := f.l2p[lpn]; old != unmapped {
		f.p2l[old] = unmapped
		f.validCount[f.blockIndex(f.dieOf(old), f.blockOf(old))]--
	}
	f.l2p[lpn] = ppn
	f.p2l[ppn] = lpn
	f.validCount[f.blockIndex(f.dieOf(ppn), f.blockOf(ppn))]++
	if src == sched.GC {
		f.gcPages++
	} else {
		f.hostPages++
	}
}

// Read returns the page stored at lpn, blocking for the flash read.
func (f *FTL) Read(p *sim.Proc, lpn int64) ([]byte, error) {
	if lpn < 0 || lpn >= f.LogicalPages() {
		return nil, ErrRange
	}
	ppn := f.l2p[lpn]
	if ppn == unmapped {
		return nil, ErrUnmapped
	}
	var data []byte
	var rerr error
	done := false
	sig := f.env.NewSignal()
	f.sch.Submit(&sched.Request{
		Kind:   sched.OpRead,
		Addr:   f.addr(ppn),
		Source: sched.Conventional,
		Done: func(d []byte, err error) {
			data, rerr = d, err
			done = true
			sig.Broadcast()
		},
	})
	p.WaitFor(sig, func() bool { return done })
	return data, rerr
}

// Trim unmaps a logical page, invalidating its physical copy.
func (f *FTL) Trim(lpn int64) error {
	if lpn < 0 || lpn >= f.LogicalPages() {
		return ErrRange
	}
	if old := f.l2p[lpn]; old != unmapped {
		f.p2l[old] = unmapped
		f.validCount[f.blockIndex(f.dieOf(old), f.blockOf(old))]--
		f.l2p[lpn] = unmapped
	}
	return nil
}

// victim returns the sealed block on die with the fewest valid pages, or -1.
func (f *FTL) victim(die int) int {
	d := &f.dies[die]
	best, bestValid := -1, int(^uint(0)>>1)
	for _, b := range d.sealed {
		if v := f.validCount[f.blockIndex(die, b)]; v < bestValid {
			best, bestValid = b, v
		}
	}
	return best
}

// gcLoop runs forever: whenever a die is low on free blocks it migrates the
// valid pages of the greediest victim and erases it.
func (f *FTL) gcLoop(p *sim.Proc) {
	for {
		worked := false
		for die := range f.dies {
			d := &f.dies[die]
			if len(d.free) > f.cfg.GCThreshold {
				continue
			}
			if f.collectOne(p, die) {
				worked = true
			}
		}
		if !worked {
			p.Wait(f.gcKick)
		}
	}
}

// collectOne migrates and erases one victim block on die. Returns false if
// the die has no victim.
func (f *FTL) collectOne(p *sim.Proc, die int) bool {
	block := f.victim(die)
	if block == -1 {
		return false
	}
	d := &f.dies[die]
	for i, b := range d.sealed {
		if b == block {
			d.sealed = append(d.sealed[:i], d.sealed[i+1:]...)
			break
		}
	}
	// Migrate valid pages within the same die (GC may use the reserve).
	for page := 0; page < f.geo.PagesPerBlock; page++ {
		src := f.ppn(die, block, page)
		lpn := f.p2l[src]
		if lpn == unmapped {
			continue
		}
		data := f.readForGC(p, src)
		if data == nil {
			continue
		}
		// Re-check validity: the host may have overwritten lpn while we
		// were reading.
		if f.p2l[src] != lpn {
			continue
		}
		dst := f.allocateOn(die, sched.GC, 0)
		if dst < 0 {
			// Desperate: no room even in reserve; give up on this block.
			d.sealed = append(d.sealed, block)
			return false
		}
		if !f.programForGC(p, dst, data) {
			continue
		}
		if f.p2l[src] == lpn { // still current after the program
			f.commitMapping(lpn, dst, sched.GC)
		}
	}
	// Erase and return to the free pool.
	erased := false
	var eraseErr error
	sig := f.env.NewSignal()
	f.sch.Submit(&sched.Request{
		Kind:   sched.OpErase,
		Addr:   nand.PageAddr{Channel: die / f.geo.WaysPerChan, Way: die % f.geo.WaysPerChan, Block: block},
		Source: sched.GC,
		Done: func(_ []byte, err error) {
			eraseErr = err
			erased = true
			sig.Broadcast()
		},
	})
	p.WaitFor(sig, func() bool { return erased })
	if eraseErr != nil {
		// Bad block: retire it permanently (do not return to free pool).
		return true
	}
	f.gcErases++
	d.free = append(d.free, block)
	f.spaceFreed.Broadcast()
	return true
}

func (f *FTL) readForGC(p *sim.Proc, ppn int64) []byte {
	var data []byte
	done := false
	sig := f.env.NewSignal()
	f.sch.Submit(&sched.Request{
		Kind:   sched.OpRead,
		Addr:   f.addr(ppn),
		Source: sched.GC,
		Done: func(d []byte, err error) {
			if err == nil {
				data = d
			}
			done = true
			sig.Broadcast()
		},
	})
	p.WaitFor(sig, func() bool { return done })
	return data
}

func (f *FTL) programForGC(p *sim.Proc, ppn int64, data []byte) bool {
	ok := false
	done := false
	sig := f.env.NewSignal()
	f.sch.Submit(&sched.Request{
		Kind:   sched.OpProgram,
		Addr:   f.addr(ppn),
		Data:   data,
		Source: sched.GC,
		Done: func(_ []byte, err error) {
			ok = err == nil
			done = true
			sig.Broadcast()
		},
	})
	p.WaitFor(sig, func() bool { return done })
	return ok
}

// Stats summarizes FTL activity.
type Stats struct {
	HostPages  int64 // pages programmed on behalf of the host/destage
	GCPages    int64 // pages migrated by the collector
	GCErases   int64
	BadRetries int64
}

// WriteAmplification returns (host+gc)/host page programs, or 1 if idle.
func (s Stats) WriteAmplification() float64 {
	if s.HostPages == 0 {
		return 1
	}
	return float64(s.HostPages+s.GCPages) / float64(s.HostPages)
}

// Stats returns a snapshot of FTL counters.
func (f *FTL) Stats() Stats {
	return Stats{HostPages: f.hostPages, GCPages: f.gcPages, GCErases: f.gcErases, BadRetries: f.badRetries}
}

// FreeBlocks returns the total number of free blocks across all dies.
func (f *FTL) FreeBlocks() int {
	n := 0
	for d := range f.dies {
		n += len(f.dies[d].free)
	}
	return n
}
