package ftl

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"xssd/internal/nand"
	"xssd/internal/sched"
	"xssd/internal/sim"
)

func tinyGeo() nand.Geometry {
	return nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 8, PagesPerBlock: 8, PageSize: 256}
}

// fastTiming keeps GC-heavy tests quick in virtual time.
var fastTiming = nand.Timing{
	TRead:   5 * time.Microsecond,
	TProg:   20 * time.Microsecond,
	TErase:  100 * time.Microsecond,
	BusRate: 1e9,
}

func setup(seed int64) (*sim.Env, *nand.Array, *FTL) {
	env := sim.NewEnv(seed)
	arr := nand.New(env, tinyGeo(), fastTiming)
	sch := sched.New(env, arr, sched.Neutral)
	f := New(env, arr, sch, DefaultConfig)
	return env, arr, f
}

func fill(f *FTL, lpn int64, tag byte) []byte {
	b := make([]byte, f.PageSize())
	b[0] = tag
	b[1] = byte(lpn)
	b[2] = byte(lpn >> 8)
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	env, _, f := setup(1)
	env.Go("io", func(p *sim.Proc) {
		for lpn := int64(0); lpn < 10; lpn++ {
			if err := f.Write(p, lpn, fill(f, lpn, 7), sched.Conventional); err != nil {
				t.Errorf("write %d: %v", lpn, err)
			}
		}
		for lpn := int64(0); lpn < 10; lpn++ {
			got, err := f.Read(p, lpn)
			if err != nil {
				t.Errorf("read %d: %v", lpn, err)
				continue
			}
			if !bytes.Equal(got, fill(f, lpn, 7)) {
				t.Errorf("lpn %d content wrong", lpn)
			}
		}
	})
	env.RunUntil(time.Second)
}

func TestUnmappedRead(t *testing.T) {
	env, _, f := setup(1)
	env.Go("io", func(p *sim.Proc) {
		if _, err := f.Read(p, 3); err != ErrUnmapped {
			t.Errorf("err = %v, want ErrUnmapped", err)
		}
	})
	env.RunUntil(time.Second)
}

func TestRangeChecks(t *testing.T) {
	env, _, f := setup(1)
	env.Go("io", func(p *sim.Proc) {
		if err := f.Write(p, f.LogicalPages(), fill(f, 0, 1), sched.Conventional); err != ErrRange {
			t.Errorf("write err = %v, want ErrRange", err)
		}
		if _, err := f.Read(p, -1); err != ErrRange {
			t.Errorf("read err = %v, want ErrRange", err)
		}
		if err := f.Trim(f.LogicalPages() + 5); err != ErrRange {
			t.Errorf("trim err = %v, want ErrRange", err)
		}
		if err := f.Write(p, 0, []byte{1, 2}, sched.Conventional); err == nil {
			t.Error("short payload accepted")
		}
	})
	env.RunUntil(time.Second)
}

func TestOverwritesTriggerGCAndDataSurvives(t *testing.T) {
	env, _, f := setup(2)
	// Working set of 16 logical pages rewritten many times: raw capacity is
	// 256 pages, so versions pile up and GC must reclaim.
	const hot = 16
	version := make([]int, hot)
	env.Go("io", func(p *sim.Proc) {
		for round := 0; round < 80; round++ {
			lpn := int64(round % hot)
			version[lpn]++
			data := fill(f, lpn, byte(version[lpn]))
			if err := f.Write(p, lpn, data, sched.Conventional); err != nil {
				t.Errorf("round %d write: %v", round, err)
				return
			}
		}
		for lpn := int64(0); lpn < hot; lpn++ {
			got, err := f.Read(p, lpn)
			if err != nil {
				t.Errorf("read %d: %v", lpn, err)
				continue
			}
			if got[0] != byte(version[lpn]) {
				t.Errorf("lpn %d: version %d, want %d", lpn, got[0], version[lpn])
			}
		}
	})
	env.RunUntil(10 * time.Second)
	// 80 writes over 256 raw pages with a hot set does not require GC;
	// push further in a second phase to force it.
	env.Go("io2", func(p *sim.Proc) {
		for round := 0; round < 400; round++ {
			lpn := int64(round % hot)
			version[lpn]++
			if err := f.Write(p, lpn, fill(f, lpn, byte(version[lpn])), sched.Conventional); err != nil {
				t.Errorf("phase2 round %d: %v", round, err)
				return
			}
		}
		for lpn := int64(0); lpn < hot; lpn++ {
			got, err := f.Read(p, lpn)
			if err != nil {
				t.Errorf("phase2 read %d: %v", lpn, err)
				continue
			}
			if got[0] != byte(version[lpn]) {
				t.Errorf("phase2 lpn %d: version %d, want %d", lpn, got[0], version[lpn])
			}
		}
	})
	env.RunUntil(time.Minute)
	st := f.Stats()
	if st.GCErases == 0 {
		t.Fatalf("GC never ran: %+v", st)
	}
	if st.WriteAmplification() < 1.0 {
		t.Fatalf("write amplification %.2f < 1", st.WriteAmplification())
	}
}

func TestBadBlockRetriedTransparently(t *testing.T) {
	env, arr, f := setup(3)
	// Poison the first block of every die: first allocation on each die
	// hits it and must retry.
	geo := arr.Geometry()
	for ch := 0; ch < geo.Channels; ch++ {
		for w := 0; w < geo.WaysPerChan; w++ {
			arr.MarkBad(nand.BlockAddr{Channel: ch, Way: w, Block: 0})
		}
	}
	env.Go("io", func(p *sim.Proc) {
		for lpn := int64(0); lpn < 8; lpn++ {
			if err := f.Write(p, lpn, fill(f, lpn, 9), sched.Conventional); err != nil {
				t.Errorf("write %d: %v", lpn, err)
			}
		}
		for lpn := int64(0); lpn < 8; lpn++ {
			got, err := f.Read(p, lpn)
			if err != nil || got[0] != 9 {
				t.Errorf("read %d after bad-block retry: %v", lpn, err)
			}
		}
	})
	env.RunUntil(time.Second)
	if f.Stats().BadRetries == 0 {
		t.Fatal("no bad-block retries recorded")
	}
}

func TestTrimInvalidates(t *testing.T) {
	env, _, f := setup(4)
	env.Go("io", func(p *sim.Proc) {
		if err := f.Write(p, 5, fill(f, 5, 1), sched.Conventional); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := f.Trim(5); err != nil {
			t.Fatalf("trim: %v", err)
		}
		if _, err := f.Read(p, 5); err != ErrUnmapped {
			t.Errorf("read after trim: %v, want ErrUnmapped", err)
		}
	})
	env.RunUntil(time.Second)
}

func TestConcurrentWritersStripeAcrossDies(t *testing.T) {
	env, arr, f := setup(5)
	const writers = 4
	doneAt := make([]time.Duration, writers)
	for w := 0; w < writers; w++ {
		w := w
		env.Go("writer", func(p *sim.Proc) {
			base := int64(w * 10)
			for i := int64(0); i < 4; i++ {
				if err := f.Write(p, base+i, fill(f, base+i, byte(w)), sched.Conventional); err != nil {
					t.Errorf("writer %d: %v", w, err)
				}
			}
			doneAt[w] = p.Now()
		})
	}
	env.RunUntil(time.Second)
	_, progs, _ := arr.Stats()
	if progs != 16 {
		t.Fatalf("programs = %d, want 16", progs)
	}
	// 16 pages across 4 dies in parallel should finish well under the
	// serial time of 16 * (TProg + transfer).
	serial := 16 * fastTiming.TProg
	for w, d := range doneAt {
		if d >= serial {
			t.Fatalf("writer %d finished at %v, no parallelism (serial = %v)", w, d, serial)
		}
	}
}

// property: random writes/overwrites against a shadow map stay consistent
// through GC churn.
func TestQuickShadowConsistencyUnderGC(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 3; seed++ {
		env, _, f := setup(100 + seed)
		rng := rand.New(rand.NewSource(seed))
		shadow := map[int64]byte{}
		env.Go("chaos", func(p *sim.Proc) {
			for op := 0; op < 600; op++ {
				lpn := int64(rng.Intn(40))
				switch rng.Intn(4) {
				case 0, 1, 2:
					tag := byte(rng.Intn(255) + 1)
					if err := f.Write(p, lpn, fill(f, lpn, tag), sched.Conventional); err != nil {
						t.Errorf("seed %d op %d write: %v", seed, op, err)
						return
					}
					shadow[lpn] = tag
				case 3:
					got, err := f.Read(p, lpn)
					want, ok := shadow[lpn]
					if !ok {
						if err != ErrUnmapped {
							t.Errorf("seed %d: read unmapped %d: %v", seed, lpn, err)
						}
						continue
					}
					if err != nil {
						t.Errorf("seed %d: read %d: %v", seed, lpn, err)
						return
					}
					if got[0] != want {
						t.Errorf("seed %d: lpn %d = %d, want %d", seed, lpn, got[0], want)
						return
					}
				}
			}
		})
		env.RunUntil(time.Minute)
	}
}
