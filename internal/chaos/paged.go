// Paged chaos: invariant I9 and the Scenario.Paged wiring.
//
// A paged scenario stores the database in B+tree pages behind a buffer
// pool (internal/btree), destaged to a conventional-side LBA range of
// the primary, with a background fuzzy-checkpoint manager
// (internal/ckpt) bounding recovery to the WAL tail. On top of the
// classic invariants the run checks:
//
//	I9  recovering from (last complete checkpoint + WAL tail) is
//	    bit-identical to a full replay of the durable stream — and
//	    replays strictly fewer records once a checkpoint completed.
//
// Classic (non-paged) and sharded runs check I9 too, post mortem:
// the recovered stream replays into a memory-backed paged engine with
// synthetic checkpoints at randomized cuts and a randomized crash
// point. That path spends no virtual time, so existing fingerprints
// are untouched.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"xssd/internal/btree"
	"xssd/internal/ckpt"
	"xssd/internal/db"
	"xssd/internal/sim"
	"xssd/internal/tpcc"
	"xssd/internal/villars"
	"xssd/internal/wal"
)

const (
	// hostMemBytes is every chaos device's host-memory window; the top
	// of it stages the paged store's DMA (the WAL path uses the CMB, not
	// host memory, so the region is free).
	hostMemBytes = 1 << 20
	// pagedSlots is the conventional-side LBA range a paged run reserves:
	// 1024 page ids × 2 shadow slots, one device block per slot.
	pagedSlots = 2048
	// pagedPool is the live engine's buffer-pool cap in pages.
	pagedPool = 128
	// pagedCkptInterval paces the background checkpoint manager; ~15
	// checkpoints fit the default 30ms window.
	pagedCkptInterval = 2 * time.Millisecond
)

// ftlStore adapts post-mortem FTL reads to btree.PageStore so recovery
// can load checkpointed pages exactly the way the flash-prefix verifier
// reads the destaged stream: straight through the FTL on the device's
// own Env, which works even after a power loss (the dead host interface
// never gets involved). It is read-only — recovery never writes.
type ftlStore struct {
	dev   *villars.Device
	base  int64
	slots int64
}

// PageSize implements btree.PageStore.
func (s *ftlStore) PageSize() int { return s.dev.BlockSize() }

// Slots implements btree.PageStore.
func (s *ftlStore) Slots() int64 { return s.slots }

// Read implements btree.PageStore.
func (s *ftlStore) Read(p *sim.Proc, slot int64, buf []byte) error {
	if slot < 0 || slot >= s.slots {
		return fmt.Errorf("%w: slot %d out of range %d", btree.ErrStore, slot, s.slots)
	}
	page, err := s.dev.FTL().Read(p, s.base+slot)
	if err != nil {
		return fmt.Errorf("%w: ftl read slot %d (lba %d): %w", btree.ErrStore, slot, s.base+slot, err)
	}
	copy(buf, page)
	return nil
}

// Write implements btree.PageStore.
func (s *ftlStore) Write(*sim.Proc, int64, []byte) error {
	return fmt.Errorf("%w: post-mortem store is read-only", btree.ErrStore)
}

// WriteBatch implements btree.PageStore.
func (s *ftlStore) WriteBatch(*sim.Proc, []int64, [][]byte) error {
	return fmt.Errorf("%w: post-mortem store is read-only", btree.ErrStore)
}

// Sync implements btree.PageStore.
func (s *ftlStore) Sync(*sim.Proc) error { return nil }

// preCheckpointRecords counts the redo records a checkpoint at startLSN
// absolves recovery from replaying — when it is positive, the tail must
// be strictly shorter than the full stream.
func preCheckpointRecords(records []wal.Record, startLSN int64) int {
	n := 0
	for _, r := range records {
		if r.LSN >= startLSN {
			break
		}
		if !db.IsControlPayload(r.Payload) {
			n++
		}
	}
	return n
}

// livePagedI9 checks I9 on a paged run post mortem: recover a fresh
// engine from the primary's checkpointed page slots plus the durable
// stream's tail, and compare it against a full-stream replay into both
// a memory-backed paged engine and the classic row-map engine. The
// recovery reads flash through the FTL on the device's Env — the run is
// over and single-threaded, so driving that member directly is
// race-free (same pattern as flashPrefix).
func livePagedI9(prim *villars.Device, base int64, completed int64, records []wal.Record, tcfg tpcc.Config, liveFP uint64, liveFPOK bool) []string {
	var out []string
	load := func(e *db.Engine) { tpcc.Load(e, tcfg, loadSeed) }

	var (
		recFP    uint64
		st       ckpt.Stats
		rerr     error
		finished bool
	)
	denv := prim.Env()
	denv.Go("chaos-paged-recover", func(p *sim.Proc) {
		fs := &ftlStore{dev: prim, base: base, slots: pagedSlots}
		eng, stats, err := ckpt.Recover(p, denv, fs, pagedPool, records, load)
		st, rerr = stats, err
		if err == nil {
			recFP = eng.FingerprintIn(p)
		}
		finished = true
	})
	denv.RunUntil(denv.Now() + 200*time.Millisecond)
	if !finished {
		return append(out, "I9: paged recovery did not finish post mortem")
	}
	if rerr != nil {
		return append(out, fmt.Sprintf("I9: paged recovery from device: %v", rerr))
	}

	if completed > 0 && !st.Found {
		out = append(out, fmt.Sprintf("I9: %d checkpoints completed but none found on the durable stream", completed))
	}
	if st.Found && preCheckpointRecords(records, st.StartLSN) > 0 && st.Tail >= st.Total {
		out = append(out, fmt.Sprintf("I9: tail replay %d not strictly below full replay %d despite a covering checkpoint", st.Tail, st.Total))
	}

	oracle := db.NewPaged(sim.NewEnv(1), nil, btree.NewPager(btree.NewMemStore(prim.BlockSize(), 1<<30), btree.Config{PoolPages: pagedPool}))
	load(oracle)
	if err := oracle.RecoverIn(nil, records); err != nil {
		return append(out, fmt.Sprintf("I9: full-stream paged replay: %v", err))
	}
	classic := db.New(sim.NewEnv(1), nil)
	load(classic)
	if err := classic.Recover(records); err != nil {
		return append(out, fmt.Sprintf("I9: full-stream classic replay: %v", err))
	}
	oFP, cFP := oracle.FingerprintIn(nil), classic.Fingerprint()
	if oFP != cFP {
		out = append(out, fmt.Sprintf("I9: paged full replay %016x diverges from classic replay %016x", oFP, cFP))
	}
	if recFP != oFP {
		out = append(out, fmt.Sprintf("I9: checkpoint recovery %016x diverges from full replay %016x (tail %d/%d)", recFP, oFP, st.Tail, st.Total))
	}
	if liveFPOK && recFP != liveFP {
		out = append(out, fmt.Sprintf("I9: checkpoint recovery %016x diverges from live engine %016x", recFP, liveFP))
	}
	return out
}

// syntheticPagedI9 checks I9 against any recovered redo stream without a
// live paged device: replay it into a memory-backed paged engine with
// fuzzy checkpoints every few records (cut points and the crash record
// drawn from the seed), crash, recover from (last checkpoint + tail),
// and demand bit-identical state versus a full replay into both a fresh
// paged engine and the classic engine. Everything runs on nil procs
// against MemStores — zero virtual time, so callers' event schedules
// and fingerprints are untouched.
func syntheticPagedI9(seed int64, records []wal.Record, load func(*db.Engine)) []string {
	if len(records) == 0 {
		return nil
	}
	fail := func(format string, args ...any) []string {
		return []string{fmt.Sprintf(format, args...)}
	}
	rng := rand.New(rand.NewSource(seed*1000003 + 71))
	cut := 1 + rng.Intn(len(records))

	const pageSize = 1024
	const pool = 48
	store := btree.NewMemStore(pageSize, 1<<30)
	eng := db.NewPaged(sim.NewEnv(seed+13), nil, btree.NewPager(store, btree.Config{PoolPages: pool}))
	load(eng)

	spliced := make([]wal.Record, 0, cut+8)
	ckpts, applied, preTail := 0, 0, 0
	countdown := 3 + rng.Intn(6)
	for _, r := range records[:cut] {
		spliced = append(spliced, r)
		if err := eng.ApplyRecordIn(nil, r); err != nil {
			return fail("I9: synthetic replay: %v", err)
		}
		if !db.IsControlPayload(r.Payload) {
			applied++
			countdown--
		}
		if countdown > 0 {
			continue
		}
		ck, err := eng.BeginCheckpoint(nil)
		if err != nil {
			return fail("I9: synthetic checkpoint: %v", err)
		}
		pg := eng.Pager()
		if err := pg.WriteImages(nil, ck.Snap.Images); err != nil {
			return fail("I9: synthetic checkpoint write: %v", err)
		}
		if err := pg.Sync(nil); err != nil {
			return fail("I9: synthetic checkpoint sync: %v", err)
		}
		// The record rides the stream at the snapshot's append frontier,
		// exactly where the live manager's WAL append would put it.
		spliced = append(spliced, wal.Record{LSN: ck.StartLSN, Payload: ckpt.FromCheckpoint(ck).Encode()})
		pg.CommitCheckpoint(ck.Snap)
		ckpts++
		preTail = applied
		countdown = 3 + rng.Intn(6)
	}

	recovered, st, err := ckpt.Recover(nil, sim.NewEnv(seed+29), store, pool, spliced, load)
	if err != nil {
		return fail("I9: synthetic recovery: %v", err)
	}
	if ckpts > 0 && !st.Found {
		return fail("I9: %d synthetic checkpoints taken but none found on the stream", ckpts)
	}
	if st.Found && preTail > 0 && st.Tail >= st.Total {
		return fail("I9: synthetic tail replay %d not strictly below full replay %d", st.Tail, st.Total)
	}

	classic := db.New(sim.NewEnv(seed+31), nil)
	load(classic)
	for _, r := range records[:cut] {
		if err := classic.ApplyRecord(r); err != nil {
			return fail("I9: synthetic classic replay: %v", err)
		}
	}
	var out []string
	recFP, liveFP, cFP := recovered.FingerprintIn(nil), eng.FingerprintIn(nil), classic.Fingerprint()
	if recFP != liveFP {
		out = append(out, fmt.Sprintf("I9: synthetic recovery %016x diverges from replayed paged engine %016x (cut %d/%d, tail %d/%d)", recFP, liveFP, cut, len(records), st.Tail, st.Total))
	}
	if recFP != cFP {
		out = append(out, fmt.Sprintf("I9: synthetic recovery %016x diverges from classic replay %016x (cut %d/%d)", recFP, cFP, cut, len(records)))
	}
	return out
}

// DefaultPagedScenario is DefaultScenario with the paged table store
// switched on — same randomized cluster shape and fault plan, plus the
// checkpoint/recovery machinery and invariant I9.
func DefaultPagedScenario(seed int64) Scenario {
	s := DefaultScenario(seed)
	s.Paged = true
	return s
}

// SweepPagedResults runs DefaultPagedScenario for each seed twice —
// invariants I1-I4 and I9 inside each run, I5 across the pair — under
// the chosen engine (see SweepResultsWorkers).
func SweepPagedResults(seeds, simWorkers int) ([]SeedResult, error) {
	out := make([]SeedResult, 0, seeds)
	for seed := 0; seed < seeds; seed++ {
		sc := DefaultPagedScenario(int64(seed))
		sc.SimWorkers = simWorkers
		r1, err := Run(sc)
		if err != nil {
			return nil, err
		}
		r2, err := Run(sc)
		if err != nil {
			return nil, err
		}
		sr := SeedResult{Seed: int64(seed), First: r1, Second: r2}
		sr.Violations = append(sr.Violations, r1.Violations...)
		if r2.Fingerprint != r1.Fingerprint {
			sr.Violations = append(sr.Violations, fmt.Sprintf("I5: re-run fingerprint %016x != %016x", r2.Fingerprint, r1.Fingerprint))
		}
		if !bytes.Equal(r1.Metrics, r2.Metrics) {
			sr.Violations = append(sr.Violations, "I5: re-run metrics snapshots differ")
		}
		out = append(out, sr)
	}
	return out, nil
}

// SweepPaged runs SweepPagedResults and writes one summary line per
// seed plus the final fold — the CLI gate behind `xbench -chaos
// -paged`. It returns an error listing every violation, or nil when
// all seeds hold.
func SweepPaged(w io.Writer, seeds, simWorkers int) error {
	results, err := SweepPagedResults(seeds, simWorkers)
	if err != nil {
		return err
	}
	total := 0
	for _, sr := range results {
		r1 := sr.First
		scheme := "-"
		if r1.Secondaries > 0 {
			scheme = r1.Scheme.String()
		}
		fmt.Fprintf(w, "seed %3d  sec=%d scheme=%-5s crash=%-5v commits=%-5d ckpts=%-3d written=%-7d destaged=%-7d faults=%-2d fp=%016x\n",
			sr.Seed, r1.Secondaries, scheme, r1.PowerLost, r1.Commits, r1.Checkpoints, r1.Written, r1.Destaged, r1.Firings, r1.Fingerprint)
		for _, v := range sr.Violations {
			fmt.Fprintf(w, "          VIOLATION %s\n", v)
		}
		total += len(sr.Violations)
	}
	if total > 0 {
		return fmt.Errorf("chaos: %d invariant violations across %d paged seeds", total, seeds)
	}
	fmt.Fprintf(w, "chaos: %d paged seeds × 2 runs, invariants I1-I5 + I9 hold, fold %016x\n", seeds, Fold(results))
	return nil
}
