package chaos

import (
	"bytes"
	"strings"
	"testing"

	"xssd/internal/fault"
)

// TestShardSweepHoldsInvariants drives randomized sharded scenarios —
// varying shard count, replication shape, RPC disturbance, and single
// kills — through the full invariant battery (I1-I3, I5, I8).
func TestShardSweepHoldsInvariants(t *testing.T) {
	results, err := SweepShardResults(6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for _, sr := range results {
		if len(sr.Violations) > 0 {
			t.Errorf("seed %d: %v", sr.Seed, sr.Violations)
		}
		if sr.First.Commits == 0 {
			t.Errorf("seed %d: no transactions committed", sr.Seed)
		}
		if sr.First.PowerLost {
			crashes++
		}
	}
	t.Logf("%d/%d seeds included a shard kill", crashes, len(results))
}

// TestShardWorkerCountParity pins that the sharded scenario is a pure
// function of (seed, plan, shape): the classic engine and the group
// engine at 1, 2, and 8 quantum executors must produce bit-identical
// fingerprints and metric snapshots.
func TestShardWorkerCountParity(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		sc := DefaultShardScenario(seed, 4)
		var ref *Result
		for _, sw := range []int{1, 2, 8} {
			s := sc
			s.SimWorkers = sw
			r, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Violations) > 0 {
				t.Errorf("seed %d workers %d: %v", seed, sw, r.Violations)
			}
			if ref == nil {
				ref = r
				continue
			}
			if r.Fingerprint != ref.Fingerprint {
				t.Errorf("seed %d workers %d: fingerprint %016x != %016x", seed, sw, r.Fingerprint, ref.Fingerprint)
			}
			if !bytes.Equal(r.Metrics, ref.Metrics) {
				t.Errorf("seed %d workers %d: metric snapshot diverges", seed, sw)
			}
		}
	}
}

// TestShardKillStaysAtomic forces a mid-window coordinator kill on every
// run and checks that I8 and recovery hold — the sharded analogue of the
// classic crash tests, aimed at the 2PC in-doubt windows.
func TestShardKillStaysAtomic(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		sc := DefaultShardScenario(seed, 3)
		sc.Plan = &fault.Plan{Rules: []fault.Rule{{
			Point: fault.DevicePower + "@p0", Trigger: fault.TriggerAt,
			At: sc.Window / 2, Action: fault.ActionFail,
		}}}
		r, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !r.PowerLost {
			t.Fatalf("seed %d: kill rule did not fire", seed)
		}
		if len(r.Violations) > 0 {
			t.Errorf("seed %d: %v", seed, r.Violations)
		}
	}
}

// TestShardSweepPrinterGreen runs the CLI-facing sweep once and checks
// its summary discipline.
func TestShardSweepPrinterGreen(t *testing.T) {
	var buf bytes.Buffer
	if err := SweepShard(&buf, 3, 2, 0); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	if strings.Contains(out, "VIOLATION") {
		t.Fatalf("violations in green sweep:\n%s", out)
	}
	if !strings.Contains(out, "I8 hold") {
		t.Fatalf("missing closing summary:\n%s", out)
	}
}
