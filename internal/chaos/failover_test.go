package chaos

import (
	"testing"
	"time"

	"xssd/internal/core"
)

// TestRunFailoverCleanKill is the harness smoke test: one kill per scheme
// with no background faults must promote exactly once and hold I6.
func TestRunFailoverCleanKill(t *testing.T) {
	for _, scheme := range []core.ReplicationScheme{core.Eager, core.Lazy, core.Chain} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			r, err := RunFailover(FailoverScenario{
				Seed:        1,
				Scheme:      scheme,
				Secondaries: 2,
				KillAt:      8 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("RunFailover: %v", err)
			}
			for _, v := range r.Violations {
				t.Errorf("violation: %s", v)
			}
			if r.Promoted == "" {
				t.Fatalf("no promotion recorded")
			}
			if r.Commits <= r.PreKillCommits {
				t.Errorf("no post-takeover commits: %d total, %d pre-kill", r.Commits, r.PreKillCommits)
			}
			if r.DurableAtKill == 0 || r.Durable <= r.DurableAtKill {
				t.Errorf("durable horizon did not advance past the kill: at-kill %d, final %d", r.DurableAtKill, r.Durable)
			}
		})
	}
}
