package chaos

import (
	"bytes"
	"io"
	"testing"
	"time"

	"xssd/internal/fault"
)

// Determinism regression (invariant I5): the same (seed, plan) must
// reproduce the run bit for bit, and different seeds must diverge.
func TestSameSeedAndPlanReproduceExactly(t *testing.T) {
	sc := DefaultScenario(3) // replicated, 21 fault firings: a busy run
	r1, err := Run(sc)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatalf("same (seed, plan) diverged: %016x vs %016x", r1.Fingerprint, r2.Fingerprint)
	}
	if r1.Commits != r2.Commits || r1.Written != r2.Written || r1.Destaged != r2.Destaged || r1.Firings != r2.Firings {
		t.Fatalf("same (seed, plan) diverged in stats: %+v vs %+v", r1, r2)
	}
	// The metrics side of I5: under an active fault plan, the encoded
	// snapshot — every counter, gauge, and histogram bucket in the whole
	// stack — must replay byte for byte.
	if len(r1.Metrics) == 0 {
		t.Fatal("run produced no metrics snapshot")
	}
	if !bytes.Equal(r1.Metrics, r2.Metrics) {
		t.Fatalf("same (seed, plan) produced different metrics snapshots:\n%s\nvs\n%s", r1.Metrics, r2.Metrics)
	}
	if r1.MixLatency != r2.MixLatency {
		t.Fatalf("mix-latency reservoir diverged: %v vs %v", r1.MixLatency, r2.MixLatency)
	}
	if r1.MixLatency.N == 0 {
		t.Fatal("mix-latency reservoir sampled nothing")
	}
	r3, err := Run(DefaultScenario(4))
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if r3.Fingerprint == r1.Fingerprint {
		t.Fatalf("different seeds produced identical fingerprint %016x (suspicious)", r1.Fingerprint)
	}
}

// A fixed plan (not a RandomPlan) must drive the same machinery: parse a
// textual schedule, run it, and hold the invariants.
func TestParsedPlanRuns(t *testing.T) {
	plan, err := fault.Parse(`
# mixed transients, then a crash
prob 0.05 transport.mirror drop x 6
on 20 wal.sink fail x 2
at 6ms transport.shadow freeze 3ms
at 14ms device.power@p fail
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := Run(Scenario{Seed: 11, Plan: plan, Secondaries: 1, Window: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !r.PowerLost {
		t.Fatal("scheduled power loss did not happen")
	}
	if r.Firings == 0 {
		t.Fatal("no fault rules fired")
	}
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
}

// Sweep is the xbench -chaos entry point; keep a small always-on run so
// the end-to-end path (two runs per seed, I5 cross-check, reporting)
// stays exercised in CI.
func TestSweepSmall(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 2
	}
	if err := Sweep(io.Discard, seeds); err != nil {
		t.Fatal(err)
	}
}

// Regression for the stall-monitor redesign: the I4 oracle must be
// driveable from the primary's side alone. A deterministic shadow freeze
// longer than twice the stall timeout has to (a) register as a
// suppression stretch in MaxSuppressed and (b) surface as the stall bit
// in the primary's status register — with no I4 violation, since the bit
// and the stretch are observed by the same poll loop.
func TestStallMonitorSurfacesFrozenShadow(t *testing.T) {
	plan, err := fault.Parse("at 5ms transport.shadow freeze 10ms\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := Run(Scenario{Seed: 21, Plan: plan, Secondaries: 1, Window: 25 * time.Millisecond})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.Firings == 0 {
		t.Fatal("freeze rule did not fire")
	}
	if r.MaxSuppressed <= 2*chaosStallTimeout {
		t.Fatalf("monitor saw max suppression %v, want > %v: the primary-side staleness streak missed the freeze", r.MaxSuppressed, 2*chaosStallTimeout)
	}
	if !r.StallSeen {
		t.Fatal("status register never showed StatusReplicaStalled during a 10ms shadow freeze")
	}
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
}
