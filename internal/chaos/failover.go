// Failover chaos harness: kill the primary mid-workload and check the
// promotion invariants on top of the base harness's I1-I5:
//
//	I6  every transaction committed before the kill is readable after the
//	    takeover — the promoted device's flash holds a gap-free prefix of
//	    the (single, duplicate-free) log stream covering the old durable
//	    horizon, and recovering from it reproduces the live engine;
//	I7  the entire failover timeline — detection, election, truncation,
//	    backfill, resume — replays bit for bit on a re-run.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"xssd/internal/core"
	"xssd/internal/db"
	"xssd/internal/failover"
	"xssd/internal/fault"
	"xssd/internal/repl"
	"xssd/internal/sim"
	"xssd/internal/tpcc"
	"xssd/internal/villars"
	"xssd/internal/wal"
)

// FailoverScenario describes one primary-kill run. (Seed, KillAt, Plan)
// plus the shape fields fully determine the execution; RunFailover on an
// identical scenario replays identically (invariant I7).
type FailoverScenario struct {
	// Seed seeds the simulation environment (workload, fault decisions).
	Seed int64
	// Scheme is the replication scheme under test.
	Scheme core.ReplicationScheme
	// Secondaries is how many replicas to attach (at least 1 — a failover
	// needs a survivor).
	Secondaries int
	// KillAt is when the primary loses power. Must leave room for boot
	// (the first millisecond) and fall inside the window.
	KillAt time.Duration
	// Plan carries extra fault rules beside the kill (dropped mirror
	// chunks, frozen shadows, ...); nil means none.
	Plan *fault.Plan
	// Workers is the number of TPC-C worker processes; 0 means 2.
	Workers int
	// Window is how long the workload runs; 0 means 20 ms.
	Window time.Duration
	// Settle is the post-window quiesce time; 0 means 20 ms.
	Settle time.Duration
	// Manager tunes the failover manager; zero fields take defaults.
	Manager failover.Config
	// SimWorkers selects the engine exactly as Scenario.SimWorkers does:
	// 0 = classic single-Env scheduler, n >= 1 = parallel group runner
	// with one member per device (host side with the primary) and n
	// quantum executors. The takeover serializes the group permanently at
	// its barrier, so promotion rewiring and the re-bound host stream are
	// race-free under any worker count.
	SimWorkers int
}

func (s FailoverScenario) withDefaults() FailoverScenario {
	if s.Plan == nil {
		s.Plan = &fault.Plan{}
	}
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.Window <= 0 {
		s.Window = 20 * time.Millisecond
	}
	if s.Settle <= 0 {
		s.Settle = 20 * time.Millisecond
	}
	return s
}

// DefaultFailoverScenario derives a randomized kill scenario from a seed:
// cluster shape, scheme, kill time, and a background fault plan (without
// extra power rules — exactly one device dies, the primary) all follow
// from the seed.
func DefaultFailoverScenario(seed int64) FailoverScenario {
	rng := rand.New(rand.NewSource(seed))
	s := FailoverScenario{Seed: seed, Secondaries: 1 + rng.Intn(3)}.withDefaults()
	switch rng.Intn(3) {
	case 0:
		s.Scheme = core.Eager
	case 1:
		s.Scheme = core.Lazy
	default:
		s.Scheme = core.Chain
	}
	// Kill inside the window's middle half: boot is long done, and the
	// takeover plus post-promotion traffic still fit before the window ends.
	s.KillAt = s.Window/4 + time.Duration(rng.Int63n(int64(s.Window/2)))
	s.Plan = fault.RandomPlan(rng, s.Window, true, "")
	return s
}

// FailoverResult summarizes one kill run.
type FailoverResult struct {
	Seed        int64
	Secondaries int
	Scheme      core.ReplicationScheme

	Commits        int64 // committed transactions over the whole run
	PreKillCommits int64 // committed before the primary died
	DurableAtKill  int64 // durable horizon when the primary died
	Durable        int64 // final durable horizon
	Destaged       int64 // bytes the promoted device moved to flash
	Firings        int   // fault rules that fired
	Events         int64 // simulator events dispatched

	// Promoted, ResumeAt, Replayed, Backfilled mirror the manager's
	// Takeover record; DetectToLive is its promotion latency.
	Promoted     string
	ResumeAt     int64
	Replayed     int64
	Backfilled   int64
	DetectToLive time.Duration

	// Metrics is the canonical metrics snapshot; Fingerprint digests the
	// full event history. Both must reproduce bit for bit on a re-run (I7).
	Metrics     []byte
	Fingerprint uint64
	Violations  []string
}

// RunFailover executes one kill scenario and checks I6 (plus the base
// harness's prefix disciplines on the survivors). I7 is checked by the
// caller across two runs, via Fingerprint and Metrics.
func RunFailover(s FailoverScenario) (*FailoverResult, error) {
	s = s.withDefaults()
	if s.Secondaries < 1 {
		return nil, fmt.Errorf("chaos: failover needs at least one secondary")
	}
	if s.KillAt <= 0 || s.KillAt >= s.Window {
		return nil, fmt.Errorf("chaos: kill time %v outside the window %v", s.KillAt, s.Window)
	}
	plan := &fault.Plan{Rules: append(append([]fault.Rule(nil), s.Plan.Rules...), fault.Rule{
		Trigger: fault.TriggerAt, At: s.KillAt, Point: fault.PrimaryKill, Action: fault.ActionFail,
	})}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}

	en := newEngine(s.Seed, s.SimWorkers, s.Secondaries, plan)
	defer en.detach()
	defer en.close()
	env := en.host

	prim := chaosDevice(env, PrimaryName)
	devices := []*villars.Device{prim}
	for i := 0; i < s.Secondaries; i++ {
		devices = append(devices, chaosDevice(en.deviceEnv(i+1), fmt.Sprintf("s%d", i)))
	}
	cluster, err := repl.New(env, devices)
	if err != nil {
		return nil, err
	}

	tcfg := tpcc.Config{Warehouses: 2, Districts: 2, CustomersPerDistrict: 8, Items: 40, FillerLen: 10}
	var (
		lg      *wal.Log
		eng     *db.Engine
		mgr     *failover.Manager
		bootErr error
		stop    bool
	)
	r := &FailoverResult{Seed: s.Seed, Secondaries: s.Secondaries, Scheme: s.Scheme}

	// The kill: resolve "the current primary" when the rule fires, and
	// snapshot the committed state the takeover must preserve.
	// The kill rule is armed on the host member's injector: the hook reads
	// host-side state (engine stats, durable LSN) and the primary lives on
	// the host member, so the power loss lands on the victim's own Env.
	en.injs[0].OnTime(fault.PrimaryKill, "", func() {
		p := cluster.Primary()
		if p == nil || p.PowerLost() {
			return
		}
		if eng != nil {
			r.PreKillCommits, _ = eng.Stats()
		}
		if lg != nil {
			r.DurableAtKill = lg.DurableLSN()
		}
		p.InjectPowerLoss()
	})

	env.Go("chaos-boot", func(p *sim.Proc) {
		if s.Scheme == core.Chain {
			bootErr = cluster.SetupChain(p)
		} else {
			bootErr = cluster.Setup(p, 0, s.Scheme)
		}
		if bootErr != nil {
			return
		}
		// Retain the flushed stream: the takeover's backfill and tail
		// replay are served from this copy (paper §7.1 assigns catch-up
		// transfer to the database).
		sink := wal.NewVillarsSink(p, prim, "chaos")
		lg = wal.NewLog(env, sink, wal.Config{GroupBytes: 4 << 10, GroupTimeout: 500 * time.Microsecond, Retain: true})
		mgr = failover.New(env, cluster, lg, sink, s.Manager)
		eng = db.New(env, lg)
		tpcc.Load(eng, tcfg, loadSeed)
		for w := 0; w < s.Workers; w++ {
			w := w
			env.Go(fmt.Sprintf("chaos-worker-%d", w), func(p *sim.Proc) {
				client := tpcc.NewClient(eng, tcfg, s.Seed*97+int64(w)+1, w%tcfg.Warehouses+1)
				// Unlike the base harness, workers outlive the primary:
				// they block on backlog back-pressure while the pipeline
				// is down and resume once the takeover restarts it.
				for !stop {
					lg.WaitBacklog(p, 32<<10)
					if stop {
						return
					}
					p.Sleep(100 * time.Microsecond)
					client.RunMixAsync(p)
				}
			})
		}
		en.release()
	})

	en.runUntil(s.Window)
	if bootErr != nil {
		return nil, fmt.Errorf("chaos: boot: %w", bootErr)
	}
	stop = true
	en.runUntil(s.Window + s.Settle)
	if mgr != nil {
		mgr.Stop()
	}

	violate := func(format string, args ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}

	r.Firings = en.firings()
	if eng != nil {
		r.Commits, _ = eng.Stats()
	}
	if lg != nil {
		r.Durable = lg.DurableLSN()
	}

	// ---- I6: exactly one clean takeover -------------------------------
	takeovers := mgr.Takeovers()
	if err := mgr.Err(); err != nil {
		violate("I6: manager halted: %v", err)
	}
	if len(takeovers) != 1 {
		violate("I6: %d takeovers, want 1", len(takeovers))
	}
	if lg.Dead() {
		violate("I6: log pipeline still dead after takeover")
	} else if bl := lg.Backlog(); bl != 0 {
		violate("I6: WAL backlog %d after settle", bl)
	}
	newPrim := cluster.Primary()
	if newPrim == prim {
		violate("I6: dead device still primary")
	}
	if len(takeovers) == 1 {
		tk := takeovers[0]
		r.Promoted, r.ResumeAt = tk.Promoted, tk.ResumeAt
		r.Replayed, r.Backfilled = tk.Replayed, tk.Backfilled
		r.DetectToLive = tk.PromotedAt - tk.DetectedAt
		if newPrim != nil && newPrim.Name() != tk.Promoted {
			violate("I6: primary %s != promoted %s", newPrim.Name(), tk.Promoted)
		}
		if tk.ResumeAt+tk.Replayed < r.DurableAtKill {
			violate("I6: resume %d + replay %d below durable-at-kill %d", tk.ResumeAt, tk.Replayed, r.DurableAtKill)
		}
	}

	// The oracle stream: the retained flushed prefix — a failover run has
	// no single host recording (two sinks saw traffic), but retention is
	// byte-exact by construction.
	oracle, oerr := lg.StreamRange(0, r.Durable)
	if oerr != nil {
		violate("I6: retained stream [0, %d): %v", r.Durable, oerr)
	}
	if r.Durable < r.DurableAtKill {
		violate("I6: durable horizon moved backwards: %d after kill at %d", r.Durable, r.DurableAtKill)
	}

	// ---- I6: promoted device holds the whole stream -------------------
	if newPrim != nil && newPrim != prim && oerr == nil {
		r.Destaged = newPrim.Destage().DestagedStream()
		if fr := newPrim.CMB().Ring().Frontier(); fr != r.Durable {
			violate("I6: promoted frontier %d != durable %d", fr, r.Durable)
		}
		if r.Destaged != r.Durable {
			violate("I6: promoted destaged %d != durable %d", r.Destaged, r.Durable)
		}
		_, slots := newPrim.Destage().LBARing()
		if newPrim.Destage().TailLBA() > slots {
			return nil, fmt.Errorf("chaos: stream wrapped the destage ring (%d slots): shrink the window or workload", slots)
		}
		prefix, err := flashPrefix(newPrim)
		if err != nil {
			violate("I6: %v", err)
		} else {
			if int64(len(prefix)) != r.Durable {
				violate("I6: flash prefix %d bytes, durable %d", len(prefix), r.Durable)
			}
			n := len(prefix)
			if n > len(oracle) {
				n = len(oracle)
			}
			if !bytes.Equal(prefix[:n], oracle[:n]) {
				violate("I6: promoted flash prefix diverges from retained stream")
			}

			// Committed-before-kill transactions survive, none duplicated:
			// recover from the promoted flash, replay the retained stream,
			// compare both against the live engine.
			recovered := db.New(env, nil)
			tpcc.Load(recovered, tcfg, loadSeed)
			records := wal.DecodeAll(prefix)
			seen := make(map[int64]bool, len(records))
			for _, rec := range records {
				if seen[rec.TxID] {
					violate("I6: txn %d appears twice in the recovered stream", rec.TxID)
					break
				}
				seen[rec.TxID] = true
			}
			if rerr := recovered.Recover(records); rerr != nil {
				violate("I6: recover from promoted flash: %v", rerr)
			} else {
				if c, _ := recovered.Stats(); c < r.PreKillCommits {
					violate("I6: recovered %d commits < %d committed before the kill", c, r.PreKillCommits)
				}
				replayDB := db.New(env, nil)
				tpcc.Load(replayDB, tcfg, loadSeed)
				if rerr := replayDB.Recover(wal.DecodeAll(oracle)); rerr != nil {
					violate("I6: replay retained stream: %v", rerr)
				}
				if recovered.Fingerprint() != replayDB.Fingerprint() {
					violate("I6: recovered state diverges from retained-stream replay")
				}
				if eng != nil && recovered.Fingerprint() != eng.Fingerprint() {
					violate("I6: recovered state != live engine after takeover")
				}
			}
		}

		// Survivor discipline (I3 carried over): every live member holds
		// a converged prefix of the stream.
		for _, d := range devices {
			if d.PowerLost() || d == newPrim {
				continue
			}
			ring := d.CMB().Ring()
			head, fr := ring.Head(), ring.Frontier()
			if fr != r.Durable {
				violate("I6: survivor %s frontier %d != durable %d", d.Name(), fr, r.Durable)
				continue
			}
			if fr > head {
				data, err := ring.Read(head, int(fr-head))
				if err != nil {
					violate("I6: %s ring read [%d,%d): %v", d.Name(), head, fr, err)
				} else if !bytes.Equal(data, oracle[head:fr]) {
					violate("I6: %s ring bytes diverge from the stream in [%d,%d)", d.Name(), head, fr)
				}
			}
		}
	}

	// ---- I7 ingredients: fingerprint + metrics snapshot ---------------
	snap := en.snapshot()
	r.Metrics = snap.Encode()
	fp := uint64(fnvOffset)
	for _, d := range devices {
		fp = mix64(fp, d.Tracer().Fingerprint())
	}
	if eng != nil {
		fp = mix64(fp, eng.Fingerprint())
	}
	fp = mix64(fp, uint64(r.Commits))
	fp = mix64(fp, uint64(r.Durable))
	fp = mix64(fp, uint64(r.ResumeAt))
	fp = mix64(fp, uint64(r.Replayed))
	fp = mix64(fp, uint64(r.Backfilled))
	fp = mix64(fp, uint64(r.DetectToLive))
	fp = mix64(fp, uint64(r.Firings))
	fp = mix64(fp, snap.Fingerprint())
	r.Fingerprint = fp
	r.Events = en.events()
	return r, nil
}

// FailoverSeedResult pairs the two runs of one failover seed, with the
// cross-run I7 violations merged into the first run's own.
type FailoverSeedResult struct {
	// Seed is the swept seed.
	Seed int64
	// First and Second are the paired runs of the identical scenario.
	First, Second *FailoverResult
	// Violations merges First's breaches with the I7 pair checks.
	Violations []string
}

// SweepFailoverResults runs DefaultFailoverScenario for each seed twice —
// I6 inside each run, I7 across the pair — returning per-seed outcomes.
func SweepFailoverResults(seeds int) ([]FailoverSeedResult, error) {
	return SweepFailoverResultsWorkers(seeds, 0)
}

// SweepFailoverResultsWorkers is SweepFailoverResults under a chosen
// engine: simWorkers is copied into every scenario (see
// SweepResultsWorkers for the convention).
func SweepFailoverResultsWorkers(seeds, simWorkers int) ([]FailoverSeedResult, error) {
	out := make([]FailoverSeedResult, 0, seeds)
	for seed := 0; seed < seeds; seed++ {
		sc := DefaultFailoverScenario(int64(seed))
		sc.SimWorkers = simWorkers
		r1, err := RunFailover(sc)
		if err != nil {
			return nil, err
		}
		r2, err := RunFailover(sc)
		if err != nil {
			return nil, err
		}
		sr := FailoverSeedResult{Seed: int64(seed), First: r1, Second: r2}
		sr.Violations = append(sr.Violations, r1.Violations...)
		if r2.Fingerprint != r1.Fingerprint {
			sr.Violations = append(sr.Violations, fmt.Sprintf("I7: re-run fingerprint %016x != %016x", r2.Fingerprint, r1.Fingerprint))
		}
		if !bytes.Equal(r1.Metrics, r2.Metrics) {
			sr.Violations = append(sr.Violations, "I7: re-run metrics snapshots differ")
		}
		out = append(out, sr)
	}
	return out, nil
}

// FoldFailover digests a failover sweep into one order-sensitive
// fingerprint (same construction as Fold).
func FoldFailover(results []FailoverSeedResult) uint64 {
	h := uint64(fnvOffset)
	for _, r := range results {
		h = mix64(h, uint64(r.Seed))
		if r.First != nil {
			h = mix64(h, r.First.Fingerprint)
		}
	}
	return h
}

// SweepFailover runs the failover sweep, writes one summary line per seed
// plus the final fold, and returns an error listing every violation.
func SweepFailover(w io.Writer, seeds int) error {
	return SweepFailoverWorkers(w, seeds, 0)
}

// SweepFailoverWorkers is SweepFailover under a chosen engine.
func SweepFailoverWorkers(w io.Writer, seeds, simWorkers int) error {
	results, err := SweepFailoverResultsWorkers(seeds, simWorkers)
	if err != nil {
		return err
	}
	total := 0
	for _, sr := range results {
		r := sr.First
		fmt.Fprintf(w, "seed %3d  sec=%d scheme=%-5s kill@%-8v promoted=%-3s resume=%-7d replay=%-5d backfill=%-5d commits=%-5d fp=%016x\n",
			sr.Seed, r.Secondaries, r.Scheme, DefaultFailoverScenario(sr.Seed).KillAt, r.Promoted, r.ResumeAt, r.Replayed, r.Backfilled, r.Commits, r.Fingerprint)
		for _, v := range sr.Violations {
			fmt.Fprintf(w, "          VIOLATION %s\n", v)
		}
		total += len(sr.Violations)
	}
	if total > 0 {
		return fmt.Errorf("chaos: %d failover invariant violations across %d seeds", total, seeds)
	}
	fmt.Fprintf(w, "chaos: %d failover seeds × 2 runs, invariants I6-I7 hold, fold %016x\n", seeds, FoldFailover(results))
	return nil
}
