package chaos

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xssd/internal/core"
	"xssd/internal/fault"
)

// quickWindow keeps the property-test scenarios short: enough traffic to
// stress flush/destage/mirror, small enough that dozens of runs fit in a
// test budget.
const quickWindow = 8 * time.Millisecond

func quickConfig(t *testing.T) *quick.Config {
	n := 10
	if testing.Short() {
		n = 4
	}
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(99))}
}

// Property: for a random workload and a power loss at a random instant,
// the conventional side afterwards holds a gap-free prefix of the
// acknowledged stream covering the durable horizon, and recovery from it
// matches the host-stream replay (invariants I1 + I2 under crash).
func TestQuickRandomCrashYieldsGapFreePrefix(t *testing.T) {
	prop := func(seed int64, frac uint8) bool {
		// Crash somewhere in the middle half of the window.
		at := quickWindow/4 + time.Duration(frac)*quickWindow/(2*256)
		plan := &fault.Plan{Rules: []fault.Rule{{
			Point: fault.DevicePower + "@" + PrimaryName, Trigger: fault.TriggerAt,
			At: at, Action: fault.ActionFail,
		}}}
		r, err := Run(Scenario{Seed: seed, Plan: plan, Window: quickWindow})
		if err != nil {
			t.Logf("seed %d crash %v: %v", seed, at, err)
			return false
		}
		if !r.PowerLost {
			t.Logf("seed %d: power loss at %v did not happen", seed, at)
			return false
		}
		for _, v := range r.Violations {
			t.Logf("seed %d crash %v: %s", seed, at, v)
		}
		return len(r.Violations) == 0
	}
	if err := quick.Check(prop, quickConfig(t)); err != nil {
		t.Fatal(err)
	}
}

// Property: under random mirror drops and delivery delays, every
// secondary stays a byte-exact prefix of the primary's stream and
// catch-up converges once the workload stops (invariant I3).
func TestQuickTransportFaultsKeepSecondaryPrefix(t *testing.T) {
	prop := func(seed int64, dropByte, delayByte uint8) bool {
		plan := &fault.Plan{Rules: []fault.Rule{
			{Point: fault.TransportMirror, Trigger: fault.TriggerProb,
				Prob: 0.01 + float64(dropByte)/256*0.25, Action: fault.ActionDrop, Times: 20},
			{Point: fault.NTBDeliver, Trigger: fault.TriggerProb,
				Prob: 0.01 + float64(delayByte)/256*0.10, Action: fault.ActionDelay,
				Dur: 50*time.Microsecond + time.Duration(delayByte)*time.Microsecond, Times: 20},
		}}
		sc := Scenario{
			Seed: seed, Plan: plan, Window: quickWindow,
			Secondaries: 1 + int(seed&1), Scheme: lazyOrEager(seed),
		}
		r, err := Run(sc)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, v := range r.Violations {
			t.Logf("seed %d drop=%d delay=%d: %s", seed, dropByte, delayByte, v)
		}
		return len(r.Violations) == 0
	}
	if err := quick.Check(prop, quickConfig(t)); err != nil {
		t.Fatal(err)
	}
}

func lazyOrEager(seed int64) (s core.ReplicationScheme) {
	if seed&2 != 0 {
		return core.Eager
	}
	return core.Lazy
}
