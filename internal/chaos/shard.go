// Sharded chaos: the cluster scenario behind Scenario.Shards.
//
// N primary devices partition 2N warehouses; every shard runs its own
// WAL, engine, and TPC-C terminals, and the standard remote mix (1% of
// order lines, 15% of payments) makes a slice of the traffic cross-shard
// 2PC. Faults come from the same plan grammar — including shard.rpc
// rules scoped to a shard name and device.power kills of individual
// primaries — and the classic invariants extend per shard:
//
//	I1  each shard's conventional side holds a gap-free prefix of its
//	    own acknowledged stream, covering the durable horizon;
//	I2  recovering every shard from its flash prefix (with 2PC control
//	    records steering cross-shard write sets) reproduces the replay
//	    of the host streams — and the live engines when nothing crashed;
//	I3  each shard's secondaries hold a prefix of that shard's stream;
//	I5  identical (Seed, Plan, shape) reproduce the run bit for bit;
//	I8  no single kill, at any point in the protocol, leaves a
//	    cross-shard transaction half-applied: every participant commit
//	    has a durable coordinator decision, every durable decision has
//	    durable participant prepares, every client ack has a durable
//	    decision (shard.CheckAtomicity).
//
// The classic path (Shards == 0) does not touch any of this code.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"xssd/internal/core"
	"xssd/internal/db"
	"xssd/internal/fault"
	"xssd/internal/shard"
	"xssd/internal/tpcc"
	"xssd/internal/wal"

	"xssd/internal/sim"
)

// shardScenarioTPCC scales the per-shard database: two warehouses per
// shard with the classic chaos row counts.
func shardScenarioTPCC(shards int) tpcc.Config {
	return tpcc.Config{Warehouses: 2 * shards, Districts: 2, CustomersPerDistrict: 8, Items: 40, FillerLen: 10}
}

// runSharded executes a Shards > 0 scenario; see the package comment
// above for the invariants it checks.
func runSharded(s Scenario) (*Result, error) {
	tcfg := shardScenarioTPCC(s.Shards)
	streams := make([][]byte, s.Shards)
	cfg := shard.Config{
		Shards:      s.Shards,
		Warehouses:  tcfg.Warehouses,
		Secondaries: s.Secondaries,
		Scheme:      s.Scheme,
		SimWorkers:  s.SimWorkers,
		Seed:        s.Seed,
		WAL:         wal.Config{GroupBytes: 4 << 10, GroupTimeout: 500 * time.Microsecond},
		Device:      chaosDevice,
		WrapSink: func(id int, inner wal.Sink) wal.Sink {
			return &recordingSink{inner: inner, buf: &streams[id]}
		},
		Load: func(eng *db.Engine, id int) {
			tpcc.LoadWarehouses(eng, tcfg, loadSeed, func(w int) bool {
				return shard.OwnerOf(w, s.Shards, tcfg.Warehouses) == id
			})
		},
	}
	cl, err := shard.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	defer cl.Close()
	envs := cl.Envs()
	injs := make([]*fault.Injector, len(envs))
	for i, e := range envs {
		injs[i] = fault.New(e, s.Plan)
		fault.Attach(e, injs[i])
	}
	defer func() {
		for _, e := range envs {
			fault.Detach(e)
		}
	}()
	cl.Build()

	var (
		bootErr error
		stop    bool
		clients []*tpcc.ShardedClient
	)
	cl.Shard(0).Env().Go("chaos-shard-boot", func(p *sim.Proc) {
		if bootErr = cl.Boot(p); bootErr != nil {
			return
		}
		for _, sh := range cl.Shards() {
			sh := sh
			for w := 0; w < s.Workers; w++ {
				home := sh.ID()*2 + 1 + w%2
				c := tpcc.NewShardedClient(cl, tcfg, s.Seed*97+int64(sh.ID())*1000+int64(w)+1, home, tpcc.SpecMix())
				clients = append(clients, c)
				sh.Env().Go(fmt.Sprintf("chaos-shard%d-worker-%d", sh.ID(), w), func(p *sim.Proc) {
					lg := sh.Log()
					for !stop && !lg.Dead() {
						lg.WaitBacklog(p, 32<<10)
						if stop || lg.Dead() {
							return
						}
						p.Sleep(100 * time.Microsecond)
						c.RunMix(p)
					}
				})
			}
		}
		cl.Release()
	})

	cl.RunUntil(s.Window)
	if bootErr != nil {
		return nil, fmt.Errorf("chaos: boot: %w", bootErr)
	}
	stop = true
	cl.RunUntil(s.Window + s.Settle)

	r := &Result{Seed: s.Seed, Secondaries: s.Secondaries, Scheme: s.Scheme}
	violate := func(format string, args ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
	for _, sh := range cl.Shards() {
		if sh.Device().PowerLost() {
			r.PowerLost = true
			if !sh.Device().Drained() {
				cl.RunUntil(cl.Now() + 300*time.Millisecond)
			}
		}
	}
	for _, c := range clients {
		byType, _, _ := c.Counts()
		for _, n := range byType {
			r.Commits += n
		}
	}
	for _, inj := range injs {
		r.Firings += len(inj.Firings())
	}

	// ---- per-shard I1 + I3, and the flash-prefix views for I2/I8 ------
	prefixes := make([][]byte, s.Shards)
	for i, sh := range cl.Shards() {
		prim := sh.Device()
		written := streams[i]
		r.Written += int64(len(written))
		r.Destaged += prim.Destage().DestagedStream()
		r.Durable += sh.Log().DurableLSN()
		lost := prim.PowerLost()

		for _, sec := range sh.Secondaries() {
			ring := sec.CMB().Ring()
			head, fr := ring.Head(), ring.Frontier()
			primFr := prim.CMB().Ring().Frontier()
			if fr > int64(len(written)) {
				violate("I3: shard %d: %s frontier %d beyond host stream %d", i, sec.Name(), fr, len(written))
				continue
			}
			if fr > primFr {
				violate("I3: shard %d: %s frontier %d ran ahead of primary %d", i, sec.Name(), fr, primFr)
				continue
			}
			if fr > head {
				data, err := ring.Read(head, int(fr-head))
				if err != nil {
					violate("I3: shard %d: %s ring read [%d,%d): %v", i, sec.Name(), head, fr, err)
				} else if !bytes.Equal(data, written[head:fr]) {
					violate("I3: shard %d: %s ring bytes diverge in [%d,%d)", i, sec.Name(), head, fr)
				}
			}
			if !lost && fr != primFr {
				violate("I3: shard %d: %s did not converge: frontier %d, primary %d", i, sec.Name(), fr, primFr)
			}
		}

		if lost {
			if !prim.Drained() {
				violate("I1: shard %d: primary not drained after power loss", i)
			}
			if prim.Destage().DestagedStream() < sh.Log().DurableLSN() {
				violate("I1: shard %d: destaged %d < durable horizon %d", i, prim.Destage().DestagedStream(), sh.Log().DurableLSN())
			}
		} else {
			if bl := sh.Log().Backlog(); bl != 0 {
				violate("I1: shard %d: WAL backlog %d after settle with no crash", i, bl)
			}
			if got := prim.Destage().DestagedStream(); got != int64(len(written)) {
				violate("I1: shard %d: destaged %d != written %d with no crash", i, got, len(written))
			}
		}
		_, slots := prim.Destage().LBARing()
		if prim.Destage().TailLBA() > slots {
			return nil, fmt.Errorf("chaos: shard %d: stream wrapped the destage ring (%d slots): shrink the window or workload", i, slots)
		}
		prefix, err := flashPrefix(prim)
		if err != nil {
			violate("I1: shard %d: %v", i, err)
			continue
		}
		if int64(len(prefix)) > int64(len(written)) {
			violate("I1: shard %d: flash prefix %d beyond host stream %d", i, len(prefix), len(written))
			continue
		}
		if !bytes.Equal(prefix, written[:len(prefix)]) {
			violate("I1: shard %d: flash prefix diverges from host stream (first %d bytes)", i, len(prefix))
			continue
		}
		prefixes[i] = prefix
	}

	// ---- I2 + I8: cluster recovery from the flash prefixes ------------
	views := make([]*shard.View, s.Shards)
	hostViews := make([]*shard.View, s.Shards)
	parseOK := true
	for i := range prefixes {
		if prefixes[i] == nil {
			parseOK = false
			break
		}
		if views[i], err = shard.ParseStream(i, prefixes[i]); err != nil {
			violate("I2: shard %d: parse flash prefix: %v", i, err)
			parseOK = false
			break
		}
		if hostViews[i], err = shard.ParseStream(i, streams[i][:len(prefixes[i])]); err != nil {
			violate("I2: shard %d: parse host stream: %v", i, err)
			parseOK = false
			break
		}
	}
	if parseOK {
		acked := make([][]int64, s.Shards)
		for i, sh := range cl.Shards() {
			acked[i] = sh.AckedGIDs()
		}
		for _, v := range shard.CheckAtomicity(views, acked) {
			violate("%s", v)
		}
		replayLoad := func(eng *db.Engine, id int) { cfg.Load(eng, id) }
		recovered, rerr := shard.Replay(sim.NewEnv(1), views, replayLoad)
		if rerr != nil {
			violate("I2: recover from flash prefixes: %v", rerr)
		} else {
			oracle, oerr := shard.Replay(sim.NewEnv(1), hostViews, replayLoad)
			if oerr != nil {
				violate("I2: replay host streams: %v", oerr)
			} else {
				for i := range recovered {
					if recovered[i].Fingerprint() != oracle[i].Fingerprint() {
						violate("I2: shard %d: recovered state diverges from host-stream replay", i)
					}
					if !r.PowerLost && recovered[i].Fingerprint() != cl.Shard(i).Engine().Fingerprint() {
						violate("I2: shard %d: recovered state != live engine with no crash", i)
					}
				}
			}
		}
	}

	// ---- I9: checkpoint-bounded recovery, per shard -------------------
	// Synthetic schedule: each shard's durable redo stream replays into a
	// paged engine with fuzzy checkpoints and a randomized crash point
	// (2PC control records are replay-inert on a single shard, so the
	// paged and classic replays see the identical record set).
	for i := range prefixes {
		if prefixes[i] == nil {
			continue
		}
		id := i
		for _, v := range syntheticPagedI9(s.Seed*1000003+int64(i)*7919+29, wal.DecodeAll(prefixes[i]), func(e *db.Engine) { cfg.Load(e, id) }) {
			violate("shard %d: %s", i, v)
		}
	}

	// ---- I5 ingredients: fold, shard-major ----------------------------
	snap := cl.Snapshot()
	r.Metrics = snap.Encode()
	fp := uint64(fnvOffset)
	for i, sh := range cl.Shards() {
		fp = mix64(fp, sh.Device().Tracer().Fingerprint())
		for _, sec := range sh.Secondaries() {
			fp = mix64(fp, sec.Tracer().Fingerprint())
		}
		fp = mix64(fp, sh.Engine().Fingerprint())
		fp = mix64(fp, uint64(len(streams[i])))
		for _, gid := range sh.AckedGIDs() {
			fp = mix64(fp, uint64(gid))
		}
	}
	fp = mix64(fp, uint64(r.Commits))
	fp = mix64(fp, uint64(r.Firings))
	fp = mix64(fp, snap.Fingerprint())
	r.Fingerprint = fp
	r.Events = cl.Events()
	return r, nil
}

// DefaultShardScenario derives a randomized sharded scenario from a
// seed: shard count (when shards <= 0), replication shape, and a fault
// plan mixing the generic device faults with shard-scoped RPC
// disturbance and single-primary kills.
func DefaultShardScenario(seed int64, shards int) Scenario {
	rng := rand.New(rand.NewSource(seed*1000003 + 17))
	if shards <= 0 {
		shards = 2 + rng.Intn(3)
	}
	s := Scenario{Seed: seed, Shards: shards, Secondaries: rng.Intn(2)}.withDefaults()
	if s.Secondaries > 0 {
		switch rng.Intn(3) {
		case 0:
			s.Scheme = core.Eager
		case 1:
			s.Scheme = core.Lazy
		default:
			s.Scheme = core.Chain
		}
	}
	victim := fmt.Sprintf("p%d", rng.Intn(shards))
	plan := &fault.Plan{}
	add := func(r fault.Rule) { plan.Rules = append(plan.Rules, r) }
	if rng.Intn(2) == 0 {
		add(fault.Rule{Point: fault.NANDProgram, Trigger: fault.TriggerProb, Prob: 0.02 + 0.08*rng.Float64(),
			Action: fault.ActionFail, Times: int64(rng.Intn(4)) + 1})
	}
	if rng.Intn(3) == 0 {
		add(fault.Rule{Point: fault.WALSink, Trigger: fault.TriggerOn, Count: int64(rng.Intn(6)) + 2,
			Action: fault.ActionFail, Times: int64(rng.Intn(2)) + 1})
	}
	if rng.Intn(2) == 0 {
		// RPC jitter below the timeout: perturbs 2PC interleavings
		// without making peers unavailable.
		add(fault.Rule{Point: fault.ShardRPC + "@" + victim, Trigger: fault.TriggerProb, Prob: 0.05 + 0.15*rng.Float64(),
			Action: fault.ActionDelay, Dur: time.Duration(rng.Int63n(int64(200*time.Microsecond))) + 20*time.Microsecond,
			Times: int64(rng.Intn(8)) + 2})
	}
	if rng.Intn(3) == 0 {
		add(fault.Rule{Point: fault.ShardRPC + "@" + victim, Trigger: fault.TriggerProb, Prob: 0.02 + 0.08*rng.Float64(),
			Action: fault.ActionDrop, Times: int64(rng.Intn(4)) + 1})
	}
	if rng.Intn(3) == 0 {
		at := s.Window/4 + time.Duration(rng.Int63n(int64(s.Window/2)))
		add(fault.Rule{Point: fault.DevicePower + "@" + victim, Trigger: fault.TriggerAt, At: at, Action: fault.ActionFail})
	}
	s.Plan = plan
	return s
}

// SweepShardResults runs DefaultShardScenario for each seed twice —
// invariants I1-I4 and I8 inside each run, I5 across the pair — under
// the chosen engine and shard count (shards <= 0 varies it per seed).
func SweepShardResults(seeds, shards, simWorkers int) ([]SeedResult, error) {
	out := make([]SeedResult, 0, seeds)
	for seed := 0; seed < seeds; seed++ {
		sc := DefaultShardScenario(int64(seed), shards)
		sc.SimWorkers = simWorkers
		r1, err := Run(sc)
		if err != nil {
			return nil, err
		}
		r2, err := Run(sc)
		if err != nil {
			return nil, err
		}
		sr := SeedResult{Seed: int64(seed), First: r1, Second: r2}
		sr.Violations = append(sr.Violations, r1.Violations...)
		if r2.Fingerprint != r1.Fingerprint {
			sr.Violations = append(sr.Violations, fmt.Sprintf("I5: re-run fingerprint %016x != %016x", r2.Fingerprint, r1.Fingerprint))
		}
		if !bytes.Equal(r1.Metrics, r2.Metrics) {
			sr.Violations = append(sr.Violations, "I5: re-run metrics snapshots differ")
		}
		out = append(out, sr)
	}
	return out, nil
}

// SweepShard runs SweepShardResults and writes one summary line per
// seed plus the final fold — the CLI gate behind `xbench -chaos
// -shards N`. It returns an error listing every violation, or nil when
// all seeds hold.
func SweepShard(w io.Writer, seeds, shards, simWorkers int) error {
	results, err := SweepShardResults(seeds, shards, simWorkers)
	if err != nil {
		return err
	}
	total := 0
	for _, sr := range results {
		r1 := sr.First
		scheme := "-"
		if r1.Secondaries > 0 {
			scheme = r1.Scheme.String()
		}
		fmt.Fprintf(w, "seed %3d  sec=%d scheme=%-5s crash=%-5v commits=%-5d written=%-7d destaged=%-7d faults=%-2d fp=%016x\n",
			sr.Seed, r1.Secondaries, scheme, r1.PowerLost, r1.Commits, r1.Written, r1.Destaged, r1.Firings, r1.Fingerprint)
		for _, v := range sr.Violations {
			fmt.Fprintf(w, "          VIOLATION %s\n", v)
		}
		total += len(sr.Violations)
	}
	if total > 0 {
		return fmt.Errorf("chaos: %d invariant violations across %d sharded seeds", total, seeds)
	}
	fmt.Fprintf(w, "chaos: %d sharded seeds × 2 runs, invariants I1-I5 + I8 hold, fold %016x\n", seeds, Fold(results))
	return nil
}
