package chaos

import "testing"

// TestFoldPinned pins the sweep fold's exact formula with synthetic
// inputs: FNV-1a over the (seed, first-run fingerprint) sequence. CI and
// the failover harness compare folds across machines and branches, so a
// silent change to the formula — or to the order the fold visits seeds —
// must fail loudly here, not show up as an unexplained digest drift.
func TestFoldPinned(t *testing.T) {
	rs := []SeedResult{
		{Seed: 0, First: &Result{Fingerprint: 0x1111111111111111}},
		{Seed: 1, First: &Result{Fingerprint: 0x2222222222222222}},
		{Seed: 2, First: &Result{Fingerprint: 0x3333333333333333}},
	}
	if got := Fold(rs); got != 0x2f715322a21d8256 {
		t.Errorf("Fold = %#016x, want 0x2f715322a21d8256 (formula changed?)", got)
	}
	if got := Fold(nil); got != uint64(fnvOffset) {
		t.Errorf("Fold(nil) = %#016x, want the FNV offset basis", got)
	}
	// A nil First contributes only its seed.
	withHole := []SeedResult{rs[0], {Seed: 1}, rs[2]}
	if got, same := Fold(withHole), Fold(rs); got == same {
		t.Errorf("Fold ignored a missing run: %#016x", got)
	}
}

// TestFoldOrderSensitive: a sweep's identity includes its schedule — the
// same per-seed results folded in a different order must give a different
// digest, or a reordered (e.g. parallelized) sweep could silently pass a
// pinned-fingerprint gate.
func TestFoldOrderSensitive(t *testing.T) {
	rs := []SeedResult{
		{Seed: 0, First: &Result{Fingerprint: 0x1111111111111111}},
		{Seed: 1, First: &Result{Fingerprint: 0x2222222222222222}},
		{Seed: 2, First: &Result{Fingerprint: 0x3333333333333333}},
	}
	rev := []SeedResult{rs[2], rs[1], rs[0]}
	fwd, bwd := Fold(rs), Fold(rev)
	if fwd == bwd {
		t.Fatalf("Fold is order-insensitive: both orders give %#016x", fwd)
	}
	if bwd != 0x2644cb0d7c8750d6 {
		t.Errorf("reversed Fold = %#016x, want 0x2644cb0d7c8750d6", bwd)
	}
}

// TestFoldFailoverMatchesConstruction: the failover fold uses the same
// construction, so the two sweeps' digests are comparable tooling-wise.
func TestFoldFailoverMatchesConstruction(t *testing.T) {
	frs := []FailoverSeedResult{
		{Seed: 0, First: &FailoverResult{Fingerprint: 0x1111111111111111}},
		{Seed: 1, First: &FailoverResult{Fingerprint: 0x2222222222222222}},
		{Seed: 2, First: &FailoverResult{Fingerprint: 0x3333333333333333}},
	}
	if got := FoldFailover(frs); got != 0x2f715322a21d8256 {
		t.Errorf("FoldFailover = %#016x, want 0x2f715322a21d8256 (diverged from Fold)", got)
	}
}

// TestSweepFailoverResultsPair runs a tiny failover sweep and checks the
// exported per-seed results carry both runs with identical fingerprints.
func TestSweepFailoverResultsPair(t *testing.T) {
	if testing.Short() {
		t.Skip("full failover sweep pair in -short mode")
	}
	rs, err := SweepFailoverResults(2)
	if err != nil {
		t.Fatalf("SweepFailoverResults: %v", err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d seed results, want 2", len(rs))
	}
	for _, sr := range rs {
		for _, v := range sr.Violations {
			t.Errorf("seed %d: violation: %s", sr.Seed, v)
		}
		if sr.First == nil || sr.Second == nil {
			t.Fatalf("seed %d: missing a run", sr.Seed)
		}
		if sr.First.Fingerprint != sr.Second.Fingerprint {
			t.Errorf("seed %d: pair fingerprints differ", sr.Seed)
		}
	}
	if FoldFailover(rs) == uint64(fnvOffset) {
		t.Errorf("sweep fold never mixed anything in")
	}
}
