package chaos

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// Differential determinism (the parallel-engine oracle): the group runner
// with SimWorkers == 1 executes the multi-env topology serially — same
// barriers, same mailbox merge, no worker pool. Runs with 2 and 8 workers
// must reproduce its fingerprint and metrics byte for byte; any scheduling
// leak through the barrier protocol shows up here as drift. SimWorkers == 0
// (the classic single-Env scheduler) is a different topology and is covered
// by TestSameSeedAndPlanReproduceExactly, not compared against.
var differentialWorkers = []int{1, 2, 8}

func diffSeeds(t *testing.T) []int64 {
	n := 20
	if testing.Short() {
		n = 5
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestChaosSerialParallelDifferential sweeps seeds through the full chaos
// harness (randomized scheme, shape, and fault plan per seed) under every
// worker count and demands byte-identical fingerprints, metrics snapshots,
// and stats. This is the I5 oracle extended to the parallel engine.
func TestChaosSerialParallelDifferential(t *testing.T) {
	for _, seed := range diffSeeds(t) {
		var base *Result
		for _, w := range differentialWorkers {
			sc := DefaultScenario(seed)
			sc.SimWorkers = w
			r, err := Run(sc)
			if err != nil {
				t.Fatalf("seed %d w=%d: %v", seed, w, err)
			}
			for _, v := range r.Violations {
				t.Errorf("seed %d w=%d violation: %s", seed, w, v)
			}
			if base == nil {
				base = r
				continue
			}
			if r.Fingerprint != base.Fingerprint {
				t.Errorf("seed %d: w=%d fingerprint %016x != w=%d %016x",
					seed, w, r.Fingerprint, differentialWorkers[0], base.Fingerprint)
			}
			if !bytes.Equal(r.Metrics, base.Metrics) {
				t.Errorf("seed %d: w=%d metrics snapshot diverges from w=%d", seed, w, differentialWorkers[0])
			}
			if r.Commits != base.Commits || r.Written != base.Written ||
				r.Destaged != base.Destaged || r.Firings != base.Firings || r.Events != base.Events {
				t.Errorf("seed %d: w=%d stats diverge: %+v vs %+v", seed, w, r, base)
			}
		}
	}
}

// TestFailoverSerialParallelDifferential is the same oracle over the
// promotion path: the primary dies mid-run, the group serializes at the
// takeover barrier, and the whole timeline — detection, election,
// backfill, resume, post-promotion traffic — must still replay bit for
// bit at every worker count (I7 across runners).
func TestFailoverSerialParallelDifferential(t *testing.T) {
	for _, seed := range diffSeeds(t) {
		var base *FailoverResult
		for _, w := range differentialWorkers {
			sc := DefaultFailoverScenario(seed)
			sc.SimWorkers = w
			r, err := RunFailover(sc)
			if err != nil {
				t.Fatalf("seed %d w=%d: %v", seed, w, err)
			}
			for _, v := range r.Violations {
				t.Errorf("seed %d w=%d violation: %s", seed, w, v)
			}
			if base == nil {
				base = r
				continue
			}
			if r.Fingerprint != base.Fingerprint {
				t.Errorf("seed %d: w=%d fingerprint %016x != w=%d %016x",
					seed, w, r.Fingerprint, differentialWorkers[0], base.Fingerprint)
			}
			if !bytes.Equal(r.Metrics, base.Metrics) {
				t.Errorf("seed %d: w=%d metrics snapshot diverges from w=%d", seed, w, differentialWorkers[0])
			}
			if r.Promoted != base.Promoted || r.Commits != base.Commits ||
				r.Durable != base.Durable || r.DetectToLive != base.DetectToLive ||
				r.Events != base.Events {
				t.Errorf("seed %d: w=%d timeline diverges: %+v vs %+v", seed, w, r, base)
			}
		}
	}
}

// TestGroupRunsReproduceAcrossRepeats re-runs one group scenario and one
// group failover back to back: beyond worker-count invariance, the same
// (seed, workers) pair must also be stable run over run — the worker pool
// must leave no state behind between scenarios.
func TestGroupRunsReproduceAcrossRepeats(t *testing.T) {
	sc := DefaultScenario(7)
	sc.SimWorkers = 8
	r1, err := Run(sc)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if r1.Fingerprint != r2.Fingerprint || !bytes.Equal(r1.Metrics, r2.Metrics) {
		t.Fatalf("same (seed, workers) diverged across repeats: %016x vs %016x", r1.Fingerprint, r2.Fingerprint)
	}
}

// TestFailoverGroupReleasesGoroutines kills a primary mid-run under the
// parallel engine and checks that finishing the scenario releases every
// parked process goroutine and the quantum worker pool — the dead member
// still holds parked procs when the run ends, and engine close must free
// them along with the survivors.
func TestFailoverGroupReleasesGoroutines(t *testing.T) {
	before := countGoroutines()
	r, err := RunFailover(FailoverScenario{
		Seed:        11,
		Secondaries: 3,
		KillAt:      8 * time.Millisecond,
		SimWorkers:  4,
	})
	if err != nil {
		t.Fatalf("RunFailover: %v", err)
	}
	if r.Promoted == "" {
		t.Fatal("no promotion recorded")
	}
	after := waitGoroutinesBelow(t, before+1)
	if after > before+1 {
		t.Errorf("goroutines leaked across a group failover: %d before, %d after", before, after)
	}
}

func countGoroutines() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// waitGoroutinesBelow polls until the goroutine count drops to the limit
// (Close returns before the worker goroutines observe the closed channel).
func waitGoroutinesBelow(t *testing.T, limit int) int {
	t.Helper()
	var n int
	for i := 0; i < 100; i++ {
		n = countGoroutines()
		if n <= limit {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n
}
