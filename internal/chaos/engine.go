package chaos

import (
	"fmt"
	"time"

	"xssd/internal/fault"
	"xssd/internal/obs"
	"xssd/internal/sim"
)

// memberSeed derives a member Env's seed from the scenario seed and the
// member index (splitmix64 finalizer), so multi-env runs are fully
// determined by (Seed, shape) like single-env runs.
func memberSeed(seed int64, idx int) int64 {
	z := uint64(seed) + uint64(idx+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// engine abstracts the two ways a scenario can run: the classic
// single-Env scheduler (SimWorkers == 0, every device plus the host
// workload on one event loop) or the parallel group runner (SimWorkers
// >= 1: the primary and the whole host side — WAL, database, TPC-C
// workers, monitor, watchdog — on member 0, each secondary device on its
// own member, SimWorkers quantum executors). SimWorkers == 1 is the
// serial runner over the identical multi-env topology: same barriers,
// same mailbox merge, no worker pool — the differential suite's baseline.
type engine struct {
	group *sim.Group
	host  *sim.Env   // member 0; also the only Env in single-env mode
	envs  []*sim.Env // distinct members in index order
	injs  []*fault.Injector
}

// newEngine builds the Envs and attaches one fault injector per member
// (each seeded from its own member's rng, armed before any device is
// built so at-time power rules land). Call detach when done.
func newEngine(seed int64, simWorkers, secondaries int, plan *fault.Plan) *engine {
	en := &engine{}
	if simWorkers <= 0 {
		en.host = sim.NewEnv(seed)
		en.envs = []*sim.Env{en.host}
	} else {
		en.group = sim.NewGroup(sim.GroupConfig{Workers: simWorkers, StartInline: true})
		en.host = en.group.NewEnv("host", seed)
		en.envs = []*sim.Env{en.host}
		for i := 0; i < secondaries; i++ {
			en.envs = append(en.envs, en.group.NewEnv(fmt.Sprintf("s%d", i), memberSeed(seed, i+1)))
		}
	}
	for _, e := range en.envs {
		inj := fault.New(e, plan)
		fault.Attach(e, inj)
		en.injs = append(en.injs, inj)
	}
	return en
}

// deviceEnv returns the Env that owns device i (0 = primary).
func (en *engine) deviceEnv(i int) *sim.Env {
	if en.group == nil || i >= len(en.envs) {
		return en.host
	}
	return en.envs[i]
}

// release ends the bring-up phase: under the group runner the cluster
// Setup walked every member's state directly (legal while inline), so
// concurrency is only unlocked once boot is done. Called from the boot
// process; lands at the next barrier.
func (en *engine) release() {
	if en.group != nil {
		en.group.Parallelize()
	}
}

// runUntil drives the scenario to absolute virtual time t.
func (en *engine) runUntil(t time.Duration) {
	if en.group != nil {
		en.group.RunUntil(t)
		return
	}
	en.host.RunUntil(t)
}

// now returns the engine's virtual time.
func (en *engine) now() time.Duration {
	if en.group != nil {
		return en.group.Now()
	}
	return en.host.Now()
}

// events returns total dispatched events across all members.
func (en *engine) events() int64 {
	if en.group != nil {
		return en.group.Events()
	}
	return en.host.Events()
}

// firings sums fired fault rules across members in index order.
func (en *engine) firings() int {
	n := 0
	for _, inj := range en.injs {
		n += len(inj.Firings())
	}
	return n
}

// snapshot merges every member's metrics registry in index order.
func (en *engine) snapshot() *obs.Snapshot {
	if en.group == nil {
		return obs.For(en.host).Snapshot()
	}
	snaps := make([]*obs.Snapshot, len(en.envs))
	for i, e := range en.envs {
		snaps[i] = obs.For(e).Snapshot()
	}
	return obs.Merge(snaps...)
}

// detach unhooks the fault injectors from the member Envs.
func (en *engine) detach() {
	for _, e := range en.envs {
		fault.Detach(e)
	}
}

// close releases every parked process goroutine (and the worker pool).
func (en *engine) close() {
	if en.group != nil {
		en.group.Close()
		return
	}
	en.host.Close()
}
