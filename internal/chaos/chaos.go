// Package chaos runs randomized fault-injection scenarios against the
// full stack — TPC-C transactions committing through the WAL into a
// Villars device (optionally replicated over NTB) while a fault.Plan
// injects bad blocks, destage failures, dropped mirror traffic, frozen
// shadow counters, sink errors, and power loss — and then checks the
// crash/replication invariants the paper promises:
//
//	I1  the conventional side holds a gap-free prefix of the acknowledged
//	    log stream, covering at least the durable horizon (§4.1, §4.3);
//	I2  recovering a database from that prefix reproduces exactly the
//	    state a replay of the host-side stream yields (and the live
//	    engine's state when there was no crash);
//	I3  every secondary's ring is a prefix of the primary's stream, and
//	    catch-up converges once faults clear (§4.2);
//	I4  a replica whose shadow counter goes stale while data is
//	    outstanding is surfaced in the status register (§4.2);
//	I5  re-running the same (seed, plan) reproduces the run bit for bit
//	    (identical trace fingerprints);
//	I9  recovering from (last complete checkpoint + WAL tail) is
//	    bit-identical to a full replay of the durable stream, and replays
//	    strictly fewer records once a checkpoint completed — paged runs
//	    check it against the primary's own page slots, classic and
//	    sharded runs against a synthetic checkpoint schedule (paged.go).
//
// A Scenario is fully deterministic: (Seed, Plan) and the cluster shape
// determine every event, so any violation replays exactly.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"xssd/internal/btree"
	"xssd/internal/ckpt"
	"xssd/internal/core"
	"xssd/internal/db"
	"xssd/internal/fault"
	"xssd/internal/metrics"
	"xssd/internal/nand"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/repl"
	"xssd/internal/sim"
	"xssd/internal/tpcc"
	"xssd/internal/villars"
	"xssd/internal/wal"
)

// PrimaryName is the primary device's component name — the scope to use
// for device.power rules that crash the primary.
const PrimaryName = "p"

// loadSeed seeds the initial TPC-C table load (the same rows on every
// run, so recovery oracles can rebuild the starting state).
const loadSeed = 7

// chaosStallTimeout is the devices' replica stall timeout; the I4 oracle
// demands the stall bit once suppression exceeds twice this.
const chaosStallTimeout = 2 * time.Millisecond

// Scenario describes one chaos run. (Seed, Plan) plus the shape fields
// fully determine the execution; Run on an identical Scenario replays
// identically (invariant I5).
type Scenario struct {
	// Seed seeds the simulation environment (and hence the workload and
	// every prob-triggered fault decision).
	Seed int64
	// Plan is the fault schedule; nil means no faults.
	Plan *fault.Plan
	// Secondaries is how many replica devices to attach (0 = standalone).
	Secondaries int
	// Scheme selects the replication scheme when Secondaries > 0.
	Scheme core.ReplicationScheme
	// Workers is the number of TPC-C worker processes; 0 means 2.
	Workers int
	// Window is how long the workload runs before it is stopped; 0 means
	// 30 ms. At-triggered fault rules should fire inside the window.
	Window time.Duration
	// Settle is how long the stack gets to quiesce after the workload
	// stops (flush, destage, repair, catch-up); 0 means 20 ms.
	Settle time.Duration
	// SimWorkers selects the simulation engine. 0 runs the classic
	// single-Env scheduler (all devices plus the host workload on one
	// event loop). n >= 1 runs the parallel group engine: the primary and
	// the host side share member Env 0, each secondary gets its own
	// member, and n workers execute quanta — n == 1 being the serial
	// runner over the identical topology. Runs with the same (Seed, Plan,
	// shape) and any SimWorkers >= 1 are byte-identical to each other;
	// they are a different topology (hence different fingerprints) than
	// SimWorkers == 0.
	SimWorkers int
	// Shards, when > 0, runs the sharded-cluster scenario instead of the
	// single-primary one: Shards primary devices partitioning 2*Shards
	// warehouses, cross-shard 2PC, and invariant I8 on top of the
	// classics (see shard.go). 0 keeps the classic path byte-identical
	// to its pre-sharding behavior.
	Shards int
	// Paged stores the database in B+tree pages behind a buffer pool
	// (internal/btree), destaged to a conventional-side LBA range of the
	// primary, with a background fuzzy-checkpoint manager (internal/ckpt)
	// bounding recovery to the WAL tail — and checks invariant I9 against
	// the device's own checkpointed page slots (see paged.go). false
	// keeps the classic in-memory row-map engine byte-identical to its
	// pre-paging behavior; those runs still check I9 post mortem against
	// a synthetic checkpoint schedule that costs no virtual time.
	Paged bool
}

func (s Scenario) withDefaults() Scenario {
	if s.Plan == nil {
		s.Plan = &fault.Plan{}
	}
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.Window <= 0 {
		s.Window = 30 * time.Millisecond
	}
	if s.Settle <= 0 {
		s.Settle = 20 * time.Millisecond
	}
	return s
}

// DefaultScenario derives a randomized scenario from a seed: cluster
// shape, replication scheme, and a fault.RandomPlan all follow from the
// seed, so a sweep over seeds explores the space reproducibly.
func DefaultScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	s := Scenario{Seed: seed, Secondaries: rng.Intn(3)}.withDefaults()
	if s.Secondaries > 0 {
		switch rng.Intn(3) {
		case 0:
			s.Scheme = core.Eager
		case 1:
			s.Scheme = core.Lazy
		default:
			s.Scheme = core.Chain
		}
	}
	s.Plan = fault.RandomPlan(rng, s.Window, s.Secondaries > 0, PrimaryName)
	return s
}

// Result summarizes one run. Violations lists every invariant breach
// observed (empty on a clean run); Fingerprint digests the full event
// history for the determinism check.
type Result struct {
	Seed        int64
	Secondaries int
	Scheme      core.ReplicationScheme
	PowerLost   bool

	Commits  int64 // committed transactions (live engine)
	Written  int64 // bytes the host handed to the sink
	Destaged int64 // bytes the primary moved to the conventional side
	Durable  int64 // final durable horizon of the WAL
	Firings  int   // fault rules that fired
	Events   int64 // simulator events dispatched (perf-suite accounting)

	// Checkpoints counts the fuzzy checkpoints that reached their durable
	// record (paged runs only; always 0 for the classic engine).
	Checkpoints int64

	StallSeen     bool          // status register showed StatusReplicaStalled
	MaxSuppressed time.Duration // longest observed shadow-suppression stretch

	// MixLatency summarizes per-worker transaction-mix latency, sampled
	// through a deterministic bounded reservoir (memory stays flat however
	// long the window runs).
	MixLatency metrics.Candlestick

	// Metrics is the canonical JSON metrics snapshot of the whole run —
	// the second I5 ingredient: a re-run must reproduce it byte for byte.
	Metrics []byte

	Fingerprint uint64
	Violations  []string
}

// FNV-1a, for folding the per-device trace fingerprints into one digest.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// recordingSink wraps a sink and keeps the exact byte stream the host
// handed down — the oracle every prefix invariant is checked against.
// Bytes are recorded before the inner write so a power loss mid-write
// leaves the device with a prefix of the recording, never the reverse.
type recordingSink struct {
	inner wal.Sink
	buf   *[]byte
}

// Write implements wal.Sink.
func (s *recordingSink) Write(p *sim.Proc, data []byte) error {
	*s.buf = append(*s.buf, data...)
	return s.inner.Write(p, data)
}

// Name implements wal.Sink.
func (s *recordingSink) Name() string { return s.inner.Name() }

// chaosDevice builds a small-geometry device so a run stays light: the
// xapi crash tests' configuration plus tightened transport timeouts so
// stall, repair, and catch-up all play out inside the window.
func chaosDevice(env *sim.Env, name string) *villars.Device {
	cfg := villars.DefaultConfig(name)
	cfg.Geometry = nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 32, PagesPerBlock: 32, PageSize: 2048}
	cfg.Timing = nand.Timing{TRead: 5 * time.Microsecond, TProg: 20 * time.Microsecond, TErase: 100 * time.Microsecond, BusRate: 1e9}
	cfg.QueueSize = 4096
	cfg.CMBSize = 64 << 10
	cfg.DestageLatencyBound = 100 * time.Microsecond
	cfg.ShadowUpdatePeriod = 2 * time.Microsecond
	cfg.StallTimeout = chaosStallTimeout
	cfg.RepairTimeout = time.Millisecond
	d := villars.New(env, cfg, pcie.NewHostMemory(hostMemBytes))
	d.EnableTracing(4096)
	return d
}

// stallMonitor is the I4 oracle: it polls the primary's status register
// and, independently, watches for stretches where a direct peer's shadow
// reporting is being suppressed while data is outstanding — exactly the
// condition under which the register must eventually show
// StatusReplicaStalled.
type stallMonitor struct {
	seen          bool
	maxSuppressed time.Duration
}

// Run executes one scenario and checks invariants I1-I4 (I5 is checked
// by the caller across two runs, via Result.Fingerprint). The returned
// error reports harness failures; invariant breaches land in
// Result.Violations.
func Run(s Scenario) (*Result, error) {
	s = s.withDefaults()
	if err := s.Plan.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if s.Shards > 0 {
		return runSharded(s)
	}

	// Injectors attach inside newEngine, before building devices, so
	// at-time power-loss rules arm.
	en := newEngine(s.Seed, s.SimWorkers, s.Secondaries, s.Plan)
	defer en.detach()
	defer en.close()
	env := en.host

	prim := chaosDevice(env, PrimaryName)
	devices := []*villars.Device{prim}
	for i := 0; i < s.Secondaries; i++ {
		devices = append(devices, chaosDevice(en.deviceEnv(i+1), fmt.Sprintf("s%d", i)))
	}
	var cluster *repl.Cluster
	if len(devices) > 1 {
		var err error
		cluster, err = repl.New(env, devices)
		if err != nil {
			return nil, err
		}
	}

	tcfg := tpcc.Config{Warehouses: 2, Districts: 2, CustomersPerDistrict: 8, Items: 40, FillerLen: 10}
	// Mix-latency reservoir: seeded from the env's RNG (one draw, before
	// any process runs) so eviction choices replay identically.
	mixLat := metrics.NewReservoir(256, rand.New(rand.NewSource(env.Rand().Int63())))
	var (
		written   []byte
		lg        *wal.Log
		eng       *db.Engine
		mgr       *ckpt.Manager
		pagedBase int64
		bootErr   error
		stop      bool
	)
	env.Go("chaos-boot", func(p *sim.Proc) {
		if cluster != nil {
			if s.Scheme == core.Chain {
				bootErr = cluster.SetupChain(p)
			} else {
				bootErr = cluster.Setup(p, 0, s.Scheme)
			}
			if bootErr != nil {
				return
			}
		}
		sink := &recordingSink{inner: wal.NewVillarsSink(p, prim, "chaos"), buf: &written}
		lg = wal.NewLog(env, sink, wal.Config{GroupBytes: 4 << 10, GroupTimeout: 500 * time.Microsecond})
		if s.Paged {
			// Page slots live above the destage rings on the conventional
			// side; DMA staging sits at the top of host memory (the WAL
			// path rides the CMB, so nothing else maps that region).
			pagedBase, bootErr = prim.AllocLBARange(pagedSlots)
			if bootErr != nil {
				return
			}
			scratch := int64(hostMemBytes) - btree.DeviceScratchSize(prim.BlockSize())
			store := btree.NewDeviceStore(prim, pagedBase, pagedSlots, scratch)
			pager := btree.NewPager(store, btree.Config{PoolPages: pagedPool, Scope: obs.For(env).Scope(PrimaryName + "/pager")})
			eng = db.NewPaged(env, lg, pager)
			mgr = ckpt.NewManager(eng, lg, ckpt.Config{Interval: pagedCkptInterval, Scope: obs.For(env).Scope(PrimaryName + "/ckpt")})
			env.Go("chaos-ckpt", mgr.Run)
		} else {
			eng = db.New(env, lg)
		}
		tpcc.Load(eng, tcfg, loadSeed)
		for w := 0; w < s.Workers; w++ {
			w := w
			env.Go(fmt.Sprintf("chaos-worker-%d", w), func(p *sim.Proc) {
				client := tpcc.NewClient(eng, tcfg, s.Seed*97+int64(w)+1, w%tcfg.Warehouses+1)
				for !stop && !lg.Dead() {
					lg.WaitBacklog(p, 32<<10)
					if stop || lg.Dead() {
						return
					}
					// Think time sized so a window's worth of log traffic
					// stays well inside the destage LBA ring — the flash
					// verifier needs the whole stream still resident.
					p.Sleep(100 * time.Microsecond)
					t0 := p.Now()
					client.RunMixAsync(p)
					mixLat.Add(p.Now() - t0)
				}
			})
		}
		// Bring-up walked every member's state directly (role commands,
		// peer wiring); only now may members run concurrently.
		en.release()
	})

	mon := &stallMonitor{}
	if cluster != nil {
		// Direct peers of the primary: the replicas whose staleness the
		// primary's own status register is responsible for surfacing. In
		// a chain the primary only watches its successor.
		direct := devices[1:]
		if s.Scheme == core.Chain {
			direct = devices[1:2]
		}
		// The monitor is primary-affine: it reads only the primary's own
		// view of its peers (shadow counters, last counter-update times)
		// plus the status register over MMIO. Reaching into a secondary's
		// fault counters would be a cross-Env access (envaffinity) — and
		// an oracle a real host could never implement, since it only has
		// the primary's BAR in front of it. A peer is considered silent
		// while its last-seen timestamp stops moving with mirror data
		// outstanding; the streak length is what I4 compares against the
		// stall bit. The sampling cadence (one register load + one 50µs
		// sleep per iteration) is unchanged so the event schedule — and
		// with it the perf suite's chaos-cell fingerprint — stays put.
		n := len(direct)
		env.Go("chaos-monitor", func(p *sim.Proc) {
			mm := pcie.NewMMIO(prim.ControlRegion(), pcie.Uncached)
			lastAt := make([]time.Duration, n)
			since := make([]time.Duration, n)
			active := make([]bool, n)
			for {
				b := mm.Load(p, core.RegStatus, 8)
				var st int64
				for i := 0; i < 8; i++ {
					st |= int64(b[i]) << (8 * i)
				}
				if st&core.StatusReplicaStalled != 0 {
					mon.seen = true
				}
				tr := prim.Transport()
				for i := 0; i < n; i++ {
					seen := tr.PeerLastSeen(i)
					outstanding := prim.CMB().Ring().Frontier() > tr.Shadow(i)
					if outstanding && seen > 0 && seen == lastAt[i] {
						if !active[i] {
							active[i] = true
							since[i] = p.Now()
						}
						if d := p.Now() - since[i]; d > mon.maxSuppressed {
							mon.maxSuppressed = d
						}
					} else {
						active[i] = false
					}
					lastAt[i] = seen
				}
				p.Sleep(50 * time.Microsecond)
			}
		})
	}

	en.runUntil(s.Window)
	if bootErr != nil {
		return nil, fmt.Errorf("chaos: boot: %w", bootErr)
	}
	stop = true
	if mgr != nil {
		// Exit after the in-flight attempt (if any) so the checkpoint
		// record traffic quiesces inside the settle window — the no-crash
		// I1 checks demand a drained WAL at the cut.
		mgr.Stop()
	}
	en.runUntil(s.Window + s.Settle)

	r := &Result{Seed: s.Seed, Secondaries: s.Secondaries, Scheme: s.Scheme}
	r.PowerLost = prim.PowerLost()
	if r.PowerLost && !prim.Drained() {
		en.runUntil(en.now() + 300*time.Millisecond)
	}
	violate := func(format string, args ...any) {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}

	r.Written = int64(len(written))
	r.Destaged = prim.Destage().DestagedStream()
	if lg != nil {
		r.Durable = lg.DurableLSN()
	}
	if eng != nil {
		r.Commits, _ = eng.Stats()
	}
	r.Firings = en.firings()
	r.StallSeen = mon.seen
	r.MaxSuppressed = mon.maxSuppressed
	if mgr != nil {
		r.Checkpoints = mgr.Completed()
	}

	// Live-engine fingerprint. The classic engine walks in-memory maps;
	// a paged engine reads pages through the device, so its walk runs as
	// a post-mortem process on the host event loop (single-threaded by
	// now — the flashPrefix pattern). After a power loss the pool may
	// have evicted pages only the dead host path could reload, so the
	// live fingerprint is deterministically skipped.
	var liveFP uint64
	liveFPOK := false
	if eng != nil {
		if !s.Paged {
			liveFP, liveFPOK = eng.Fingerprint(), true
		} else if !r.PowerLost {
			env.Go("chaos-paged-livefp", func(p *sim.Proc) {
				liveFP = eng.FingerprintIn(p)
				liveFPOK = true
			})
			env.RunUntil(env.Now() + 100*time.Millisecond)
			if !liveFPOK {
				violate("I9: live paged fingerprint walk did not finish")
			}
		}
	}

	// ---- I3: secondaries hold a prefix of the primary's stream --------
	primFr := prim.CMB().Ring().Frontier()
	for i, sec := range devices[1:] {
		ring := sec.CMB().Ring()
		head, fr := ring.Head(), ring.Frontier()
		if fr > r.Written {
			violate("I3: %s frontier %d beyond host stream %d", sec.Name(), fr, r.Written)
			continue
		}
		if fr > primFr {
			violate("I3: %s frontier %d ran ahead of primary %d", sec.Name(), fr, primFr)
			continue
		}
		if fr > head {
			data, err := ring.Read(head, int(fr-head))
			if err != nil {
				violate("I3: %s ring read [%d,%d): %v", sec.Name(), head, fr, err)
			} else if !bytes.Equal(data, written[head:fr]) {
				violate("I3: %s ring bytes diverge from primary stream in [%d,%d)", sec.Name(), head, fr)
			}
		}
		if !r.PowerLost && fr != primFr {
			violate("I3: %s did not converge: frontier %d, primary %d (peer %d)", sec.Name(), fr, primFr, i)
		}
	}

	// ---- I4: a stale replica must be surfaced in the status register --
	// One-directional: a long suppression stretch with data outstanding
	// must raise the bit; the bit may also show for shorter transients.
	if mon.maxSuppressed > 2*chaosStallTimeout && !mon.seen {
		violate("I4: shadow suppressed for %v with data outstanding, stall bit never set", mon.maxSuppressed)
	}

	// ---- I1: gap-free conventional prefix -----------------------------
	if r.PowerLost {
		if !prim.Drained() {
			violate("I1: primary not drained after power loss")
		}
		if lg != nil && r.Destaged < r.Durable {
			violate("I1: destaged %d < durable horizon %d", r.Destaged, r.Durable)
		}
	} else if lg != nil {
		if bl := lg.Backlog(); bl != 0 {
			violate("I1: WAL backlog %d after settle with no crash", bl)
		}
		if r.Destaged != r.Written {
			violate("I1: destaged %d != written %d with no crash", r.Destaged, r.Written)
		}
		if primFr != r.Written {
			violate("I1: primary ring frontier %d != written %d with no crash", primFr, r.Written)
		}
	}
	_, slots := prim.Destage().LBARing()
	if prim.Destage().TailLBA() > slots {
		// The workload outran the destage LBA ring and early slots were
		// recycled; the whole-stream verifier below would read garbage.
		// Scenario parameters are sized to keep this from happening.
		return nil, fmt.Errorf("chaos: stream wrapped the destage ring (%d slots): shrink the window or workload", slots)
	}
	prefix, err := flashPrefix(prim)
	if err != nil {
		violate("I1: %v", err)
	} else {
		if int64(len(prefix)) != r.Destaged {
			violate("I1: flash prefix %d bytes, destage counter %d", len(prefix), r.Destaged)
		}
		if int64(len(prefix)) > r.Written {
			violate("I1: flash prefix %d beyond host stream %d", len(prefix), r.Written)
		} else if !bytes.Equal(prefix, written[:len(prefix)]) {
			violate("I1: flash prefix diverges from host stream (first %d bytes)", len(prefix))
		}
	}

	// ---- I2: crash-recovery equality ----------------------------------
	if lg != nil && err == nil && int64(len(prefix)) <= r.Written {
		recovered := db.New(env, nil)
		tpcc.Load(recovered, tcfg, loadSeed)
		if rerr := recovered.Recover(wal.DecodeAll(prefix)); rerr != nil {
			violate("I2: recover from flash prefix: %v", rerr)
		} else {
			oracle := db.New(env, nil)
			tpcc.Load(oracle, tcfg, loadSeed)
			if oerr := oracle.Recover(wal.DecodeAll(written[:len(prefix)])); oerr != nil {
				violate("I2: replay host stream: %v", oerr)
			}
			if recovered.Fingerprint() != oracle.Fingerprint() {
				violate("I2: recovered state diverges from host-stream replay")
			}
			if !r.PowerLost && liveFPOK && recovered.Fingerprint() != liveFP {
				violate("I2: recovered state != live engine with no crash")
			}
		}
	}

	// ---- I9: checkpoint-bounded recovery equality ---------------------
	if lg != nil && err == nil && int64(len(prefix)) <= r.Written {
		records := wal.DecodeAll(prefix)
		if s.Paged {
			for _, v := range livePagedI9(prim, pagedBase, r.Checkpoints, records, tcfg, liveFP, liveFPOK) {
				violate("%s", v)
			}
		} else {
			for _, v := range syntheticPagedI9(s.Seed, records, func(e *db.Engine) { tpcc.Load(e, tcfg, loadSeed) }) {
				violate("%s", v)
			}
		}
	}

	// ---- I5 ingredients: event-history fingerprint + metrics snapshot -
	r.MixLatency = mixLat.Candlestick()
	snap := en.snapshot()
	r.Metrics = snap.Encode()
	fp := uint64(fnvOffset)
	for _, d := range devices {
		fp = mix64(fp, d.Tracer().Fingerprint())
	}
	if liveFPOK {
		fp = mix64(fp, liveFP)
	}
	fp = mix64(fp, uint64(r.Commits))
	fp = mix64(fp, uint64(r.Written))
	fp = mix64(fp, uint64(r.Destaged))
	fp = mix64(fp, uint64(r.Firings))
	fp = mix64(fp, snap.Fingerprint())
	r.Fingerprint = fp
	r.Events = en.events()
	return r, nil
}

// flashPrefix reads the destage ring back through the FTL and reassembles
// the stream prefix the conventional side holds, failing on any gap or
// malformed page (the read itself runs in virtual time). The verifier
// process runs on the device's own Env: under the group runner a promoted
// device lives in its own member, and its NAND timers must dispatch on
// the same event loop the verifier sleeps on. The run is post-mortem
// (single-threaded), so driving one member directly is race-free.
func flashPrefix(d *villars.Device) ([]byte, error) {
	env := d.Env()
	base, count := d.Destage().LBARing()
	var got []byte
	var rerr error
	env.Go("chaos-flash-verify", func(p *sim.Proc) {
		for slot := int64(0); slot < d.Destage().TailLBA(); slot++ {
			page, err := d.FTL().Read(p, base+slot%count)
			if err != nil {
				rerr = fmt.Errorf("flash prefix: read slot %d: %w", slot, err)
				return
			}
			off, n, ok := villars.DecodePageHeader(page)
			if !ok {
				rerr = fmt.Errorf("flash prefix: slot %d is not a destage page", slot)
				return
			}
			if off != int64(len(got)) {
				rerr = fmt.Errorf("flash prefix: slot %d at stream offset %d, want %d (gap)", slot, off, len(got))
				return
			}
			got = append(got, page[villars.PageHeaderLen:villars.PageHeaderLen+n]...)
		}
	})
	env.RunUntil(env.Now() + 50*time.Millisecond)
	return got, rerr
}

// SeedResult pairs the two runs of one seed in a sweep, with the
// cross-run I5 violations merged into the first run's own.
type SeedResult struct {
	// Seed is the swept seed.
	Seed int64
	// First and Second are the paired runs of the identical scenario.
	First, Second *Result
	// Violations merges First's invariant breaches with the I5 pair checks.
	Violations []string
}

// SweepResults runs DefaultScenario for each seed twice — checking
// invariants I1-I4 inside each run and I5 (bitwise reproducibility)
// across the pair — and returns the per-seed outcomes for callers that
// post-process them (the CLI prints them; tests pin the sweep's Fold).
func SweepResults(seeds int) ([]SeedResult, error) {
	return SweepResultsWorkers(seeds, 0)
}

// SweepResultsWorkers is SweepResults under a chosen engine: simWorkers is
// copied into every scenario (0 = classic single-Env scheduler, n >= 1 =
// parallel group runner with n quantum executors). Both runs of a pair use
// the same engine; cross-engine equivalence is the differential suite's job.
func SweepResultsWorkers(seeds, simWorkers int) ([]SeedResult, error) {
	out := make([]SeedResult, 0, seeds)
	for seed := 0; seed < seeds; seed++ {
		sc := DefaultScenario(int64(seed))
		sc.SimWorkers = simWorkers
		r1, err := Run(sc)
		if err != nil {
			return nil, err
		}
		r2, err := Run(sc)
		if err != nil {
			return nil, err
		}
		sr := SeedResult{Seed: int64(seed), First: r1, Second: r2}
		sr.Violations = append(sr.Violations, r1.Violations...)
		if r2.Fingerprint != r1.Fingerprint {
			sr.Violations = append(sr.Violations, fmt.Sprintf("I5: re-run fingerprint %016x != %016x", r2.Fingerprint, r1.Fingerprint))
		}
		if !bytes.Equal(r1.Metrics, r2.Metrics) {
			sr.Violations = append(sr.Violations, "I5: re-run metrics snapshots differ")
		}
		out = append(out, sr)
	}
	return out, nil
}

// Fold digests a sweep into one fingerprint: FNV-1a over the
// (seed, run-fingerprint) sequence. The fold is order-sensitive by
// design — a sweep's identity includes its schedule, so the same results
// visited in a different order produce a different digest.
func Fold(results []SeedResult) uint64 {
	h := uint64(fnvOffset)
	for _, r := range results {
		h = mix64(h, uint64(r.Seed))
		if r.First != nil {
			h = mix64(h, r.First.Fingerprint)
		}
	}
	return h
}

// Sweep runs SweepResults and writes one summary line per seed plus the
// final fold. It returns an error listing every violation, or nil when
// all seeds hold.
func Sweep(w io.Writer, seeds int) error {
	return SweepWorkers(w, seeds, 0)
}

// SweepWorkers is Sweep under a chosen engine (see SweepResultsWorkers).
func SweepWorkers(w io.Writer, seeds, simWorkers int) error {
	results, err := SweepResultsWorkers(seeds, simWorkers)
	if err != nil {
		return err
	}
	total := 0
	for _, sr := range results {
		r1 := sr.First
		scheme := "-"
		if r1.Secondaries > 0 {
			scheme = r1.Scheme.String()
		}
		fmt.Fprintf(w, "seed %3d  sec=%d scheme=%-5s crash=%-5v commits=%-5d written=%-7d destaged=%-7d faults=%-2d fp=%016x\n",
			sr.Seed, r1.Secondaries, scheme, r1.PowerLost, r1.Commits, r1.Written, r1.Destaged, r1.Firings, r1.Fingerprint)
		for _, v := range sr.Violations {
			fmt.Fprintf(w, "          VIOLATION %s\n", v)
		}
		total += len(sr.Violations)
	}
	if total > 0 {
		return fmt.Errorf("chaos: %d invariant violations across %d seeds", total, seeds)
	}
	fmt.Fprintf(w, "chaos: %d seeds × 2 runs, invariants I1-I5 hold, fold %016x\n", seeds, Fold(results))
	return nil
}
