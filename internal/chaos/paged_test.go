package chaos

import (
	"bytes"
	"strings"
	"testing"

	"xssd/internal/fault"
)

// TestPagedSweepHoldsInvariants drives randomized paged scenarios — the
// B+tree table store destaged to the conventional side with background
// fuzzy checkpoints — through the full battery (I1-I5 plus the live I9
// recovery check against the device's own page slots).
func TestPagedSweepHoldsInvariants(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 4
	}
	results, err := SweepPagedResults(seeds, 0)
	if err != nil {
		t.Fatal(err)
	}
	crashes, ckpts := 0, 0
	for _, sr := range results {
		if len(sr.Violations) > 0 {
			t.Errorf("seed %d: %v", sr.Seed, sr.Violations)
		}
		if sr.First.Commits == 0 {
			t.Errorf("seed %d: no transactions committed", sr.Seed)
		}
		if sr.First.PowerLost {
			crashes++
		}
		if sr.First.Checkpoints > 0 {
			ckpts++
		}
	}
	if ckpts == 0 {
		t.Errorf("no seed completed a fuzzy checkpoint — I9's tail bound never exercised")
	}
	t.Logf("%d/%d seeds crashed, %d/%d completed checkpoints", crashes, len(results), ckpts, len(results))
}

// TestPagedWorkerCountParity pins that a paged run is a pure function of
// (seed, plan, shape): the group engine at 1 and 8 quantum executors must
// produce bit-identical fingerprints and metric snapshots, checkpoint
// traffic and all.
func TestPagedWorkerCountParity(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		sc := DefaultPagedScenario(seed)
		var ref *Result
		for _, sw := range []int{1, 8} {
			s := sc
			s.SimWorkers = sw
			r, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Violations) > 0 {
				t.Errorf("seed %d workers %d: %v", seed, sw, r.Violations)
			}
			if ref == nil {
				ref = r
				continue
			}
			if r.Fingerprint != ref.Fingerprint {
				t.Errorf("seed %d workers %d: fingerprint %016x != %016x", seed, sw, r.Fingerprint, ref.Fingerprint)
			}
			if !bytes.Equal(r.Metrics, ref.Metrics) {
				t.Errorf("seed %d workers %d: metric snapshot diverges", seed, sw)
			}
		}
	}
}

// TestPagedKillRecoversFromCheckpoint forces a mid-window power kill on
// every run: recovery must come up from the checkpointed page slots plus
// the WAL tail read back through the FTL of the dead device, and once a
// checkpoint completed it must replay strictly less than the full stream
// (checked inside Run as I9).
func TestPagedKillRecoversFromCheckpoint(t *testing.T) {
	kills, ckpts := 0, 0
	for seed := int64(0); seed < 4; seed++ {
		sc := DefaultPagedScenario(seed)
		sc.Plan = &fault.Plan{Rules: []fault.Rule{{
			Point: fault.DevicePower + "@" + PrimaryName, Trigger: fault.TriggerAt,
			At: sc.Window * 3 / 4, Action: fault.ActionFail,
		}}}
		r, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !r.PowerLost {
			t.Fatalf("seed %d: kill rule did not fire", seed)
		}
		kills++
		if r.Checkpoints > 0 {
			ckpts++
		}
		if len(r.Violations) > 0 {
			t.Errorf("seed %d: %v", seed, r.Violations)
		}
	}
	if ckpts == 0 {
		t.Errorf("no killed run had completed a checkpoint before the crash")
	}
	t.Logf("%d kills, %d with a completed checkpoint", kills, ckpts)
}

// TestPagedSweepPrinterGreen runs the CLI-facing paged sweep once and
// checks its summary discipline.
func TestPagedSweepPrinterGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestPagedSweepHoldsInvariants in short mode")
	}
	var buf bytes.Buffer
	if err := SweepPaged(&buf, 3, 0); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	if strings.Contains(out, "VIOLATION") {
		t.Fatalf("violations in green sweep:\n%s", out)
	}
	if !strings.Contains(out, "I9 hold") {
		t.Fatalf("missing closing summary:\n%s", out)
	}
}
