// Package pcie models the PCIe subsystem the paper builds on (§2.1, §2.3):
// point-to-point links with generation/lane bandwidth, Transaction Layer
// Packet (TLP) framing overhead, memory-mapped IO regions in Write-Combining
// or Uncached mode, and DMA transfers out of host memory.
//
// The TLP framing model is what produces the paper's Fig 10 effect: a store
// that reaches the device carries a fixed per-packet header, so small MMIO
// writes waste most of the wire. Write-Combining coalesces stores into
// cache-line-sized packets and recovers the efficiency.
package pcie

import (
	"fmt"
	"time"

	"xssd/internal/sim"
)

// Framing constants for the simulated fabric.
const (
	// HeaderBytes is the per-TLP overhead on the wire (header + framing).
	HeaderBytes = 20
	// MaxPayload is the largest TLP payload the fabric carries.
	MaxPayload = 256
	// WCLineSize is the write-combining buffer line size: stores flush to
	// the wire in chunks of at most this many bytes.
	WCLineSize = 64
	// UCStoreSize is the widest single store an Uncached region accepts;
	// wider writes are split into stores of this size.
	UCStoreSize = 8
)

// Generation selects per-lane bandwidth.
type Generation int

// PCIe generations supported by the model.
const (
	Gen1 Generation = 1 + iota
	Gen2
	Gen3
	Gen4
)

// LaneBandwidth returns the usable per-lane bandwidth in bytes/second.
func (g Generation) LaneBandwidth() float64 {
	switch g {
	case Gen1:
		return 250e6
	case Gen2:
		return 500e6
	case Gen3:
		return 985e6
	case Gen4:
		return 1969e6
	default:
		panic(fmt.Sprintf("pcie: unknown generation %d", g))
	}
}

// TLP is a transaction-layer packet delivered to a device.
type TLP struct {
	Addr int64  // target address within the device's BAR
	Data []byte // payload for memory writes; nil for reads
}

// WireBytes returns the on-wire size of a TLP with an n-byte payload.
func WireBytes(n int) int { return HeaderBytes + n }

// Target is the device-side sink of a mapped region. Handlers run in
// scheduler context at packet-arrival time and must not block; they should
// enqueue work and signal device processes. MemWrite's data slice is
// owned by the region and recycled after the call returns — a target that
// needs the bytes later must copy them out.
type Target interface {
	// MemWrite delivers a posted write of data at region offset off.
	MemWrite(off int64, data []byte)
	// MemRead services a non-posted read of n bytes at region offset off.
	MemRead(off int64, n int) []byte
}

// delivery is one in-flight posted write: payload plus completion hook.
type delivery struct {
	off  int64
	buf  []byte
	done func()
}

// Region is a device memory window (BAR mapping) reachable from a host
// through one link. The host accesses it via an MMIO handle (see NewMMIO).
//
// Posted writes ride the link's FIFO completion order, so in-flight
// payloads live in a per-region FIFO and every completion fires the same
// pre-bound deliver callback — no per-TLP closure or buffer allocation.
type Region struct {
	env    *sim.Env
	link   *sim.Link
	target Target
	size   int64

	//xssd:pool retain
	pendq   []delivery
	pendPos int    // pendq[:pendPos] already delivered
	deliver func() // method value, bound once
	//xssd:pool put
	bufs [][]byte // free payload buffers, cap MaxPayload each
}

// NewRegion maps target behind link as a region of the given size.
func NewRegion(env *sim.Env, link *sim.Link, target Target, size int64) *Region {
	r := &Region{env: env, link: link, target: target, size: size}
	r.deliver = r.deliverNext
	return r
}

// getBuf returns a pooled payload buffer of length n (n ≤ MaxPayload).
//
//xssd:pool get
func (r *Region) getBuf(n int) []byte {
	if len(r.bufs) == 0 {
		return make([]byte, n, MaxPayload)
	}
	b := r.bufs[len(r.bufs)-1]
	r.bufs = r.bufs[:len(r.bufs)-1]
	return b[:n]
}

// putBuf recycles a payload buffer obtained from getBuf.
//
//xssd:pool put
func (r *Region) putBuf(b []byte) { r.bufs = append(r.bufs, b) }

// pend enqueues an in-flight posted write, reusing the queue's backing
// array once the delivered prefix has been fully consumed.
func (r *Region) pend(off int64, buf []byte, done func()) {
	if r.pendPos > 0 && r.pendPos == len(r.pendq) {
		r.pendq = r.pendq[:0]
		r.pendPos = 0
	}
	r.pendq = append(r.pendq, delivery{off: off, buf: buf, done: done})
}

// deliverNext completes the oldest in-flight posted write: hand the
// payload to the target, recycle the buffer, run the completion hook.
// Runs in scheduler context on every arriving TLP.
//
//xssd:hotpath
func (r *Region) deliverNext() {
	d := r.pendq[r.pendPos]
	r.pendq[r.pendPos] = delivery{}
	r.pendPos++
	r.target.MemWrite(d.off, d.buf)
	r.putBuf(d.buf)
	if d.done != nil {
		d.done()
	}
}

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return r.size }

// Link returns the PCIe link the region is reached through.
func (r *Region) Link() *sim.Link { return r.link }

// write sends one posted-write TLP (payload ≤ MaxPayload) and blocks the
// calling process for its wire serialization. Delivery to the target
// happens when the packet fully arrives.
func (r *Region) write(p *sim.Proc, off int64, data []byte) {
	if off < 0 || off+int64(len(data)) > r.size {
		panic(fmt.Sprintf("pcie: write [%d,%d) outside region of %d", off, off+int64(len(data)), r.size))
	}
	buf := r.getBuf(len(data))
	copy(buf, data)
	r.pend(off, buf, nil)
	r.link.Send(WireBytes(len(buf)), r.deliver)
	// The store occupies the CPU until it is accepted on the wire: model
	// by blocking for this packet's serialization time (not its delivery).
	p.Sleep(time.Duration(float64(WireBytes(len(data))) / r.link.BytesPerSec() * 1e9))
}

// writeBlocking sends one write TLP and stalls the calling process until
// it is delivered at the device — the Uncached store semantics: the CPU
// serializes on each store instead of posting it, which is what makes UC
// MMIO so much slower than WC (paper §6.2).
func (r *Region) writeBlocking(p *sim.Proc, off int64, data []byte) {
	if off < 0 || off+int64(len(data)) > r.size {
		panic(fmt.Sprintf("pcie: write [%d,%d) outside region of %d", off, off+int64(len(data)), r.size))
	}
	buf := r.getBuf(len(data))
	copy(buf, data)
	r.link.Transfer(p, WireBytes(len(buf)))
	r.target.MemWrite(off, buf)
	r.putBuf(buf)
}

// writeAsync sends a posted write without blocking the caller beyond
// scheduling; used for device-to-device mirroring where a hardware engine,
// not a CPU, feeds the wire.
func (r *Region) writeAsync(off int64, data []byte, done func()) {
	buf := r.getBuf(len(data))
	copy(buf, data)
	r.pend(off, buf, done)
	r.link.Send(WireBytes(len(buf)), r.deliver)
}

// Read performs a non-posted read: a request TLP travels to the device,
// the completion TLP returns the data. The caller blocks for the round
// trip.
func (r *Region) Read(p *sim.Proc, off int64, n int) []byte {
	if off < 0 || off+int64(n) > r.size {
		panic(fmt.Sprintf("pcie: read [%d,%d) outside region of %d", off, off+int64(n), r.size))
	}
	r.link.Transfer(p, WireBytes(0)) // request
	data := r.target.MemRead(off, n)
	r.link.Transfer(p, WireBytes(len(data))) // completion
	return data
}

// MMIOMode selects the CPU caching attribute of a mapped region.
type MMIOMode int

// Supported MMIO modes (paper §4.1 / Intel SDM memory cache control).
const (
	// Uncached: every store becomes its own TLP, at most UCStoreSize wide.
	Uncached MMIOMode = iota
	// WriteCombining: stores coalesce in a WCLineSize buffer and flush as
	// one TLP per line (or partial line on a fence/discontinuity).
	WriteCombining
)

// String implements fmt.Stringer.
func (m MMIOMode) String() string {
	if m == WriteCombining {
		return "WC"
	}
	return "UC"
}

// MMIO is a host-side handle to a Region with a caching mode. It is the
// model of the application's mapped pointer into CMB. Not safe for
// concurrent use; each simulated CPU core should own its handle.
type MMIO struct {
	region *Region
	mode   MMIOMode

	// write-combining buffer state
	wcStart int64
	wcBuf   []byte
}

// NewMMIO maps region with the given mode.
func NewMMIO(region *Region, mode MMIOMode) *MMIO {
	return &MMIO{region: region, mode: mode, wcBuf: make([]byte, 0, WCLineSize)}
}

// Mode returns the caching mode.
func (m *MMIO) Mode() MMIOMode { return m.mode }

// Store writes data at region offset off with store-width semantics of the
// region's mode. WriteCombining stores may linger in the WC buffer until
// Fence or until a line fills; Uncached stores hit the wire immediately.
func (m *MMIO) Store(p *sim.Proc, off int64, data []byte) {
	switch m.mode {
	case Uncached:
		for len(data) > 0 {
			n := UCStoreSize
			if n > len(data) {
				n = len(data)
			}
			m.region.writeBlocking(p, off, data[:n])
			off += int64(n)
			data = data[n:]
		}
	case WriteCombining:
		for len(data) > 0 {
			if len(m.wcBuf) > 0 && off != m.wcStart+int64(len(m.wcBuf)) {
				m.flush(p) // discontiguous store: spill the buffer
			}
			if len(m.wcBuf) == 0 {
				m.wcStart = off
			}
			// fill up to the boundary of the line the buffer started in
			lineUsed := int(m.wcStart%WCLineSize) + len(m.wcBuf)
			n := WCLineSize - lineUsed
			if n > len(data) {
				n = len(data)
			}
			m.wcBuf = append(m.wcBuf, data[:n]...)
			off += int64(n)
			data = data[n:]
			if lineUsed+n == WCLineSize {
				m.flush(p)
			}
		}
	}
}

func (m *MMIO) flush(p *sim.Proc) {
	if len(m.wcBuf) == 0 {
		return
	}
	m.region.write(p, m.wcStart, m.wcBuf)
	m.wcBuf = m.wcBuf[:0]
}

// Fence drains the write-combining buffer (sfence). A no-op in Uncached
// mode where stores are never buffered.
func (m *MMIO) Fence(p *sim.Proc) {
	if m.mode == WriteCombining {
		m.flush(p)
	}
}

// Load reads n bytes at off through the region's non-posted read path.
func (m *MMIO) Load(p *sim.Proc, off int64, n int) []byte {
	return m.region.Read(p, off, n)
}

// HostMemory is a flat host DRAM buffer that devices DMA in and out of
// through their link (the HIC's data path for conventional NVMe IO).
type HostMemory struct {
	buf []byte
}

// NewHostMemory allocates size bytes of host memory.
func NewHostMemory(size int) *HostMemory { return &HostMemory{buf: make([]byte, size)} }

// Bytes exposes the backing buffer for host-side (zero-cost) access.
func (h *HostMemory) Bytes() []byte { return h.buf }

// DMARead moves n bytes from host memory at addr into the device across
// link, blocking the calling (device) process for the transfer.
func (h *HostMemory) DMARead(p *sim.Proc, link *sim.Link, addr int64, n int) []byte {
	out := make([]byte, n)
	copy(out, h.buf[addr:addr+int64(n)])
	packets := (n + MaxPayload - 1) / MaxPayload
	link.Transfer(p, n+packets*HeaderBytes)
	return out
}

// DMAWrite moves data from the device into host memory at addr across
// link, blocking the calling (device) process for the transfer.
func (h *HostMemory) DMAWrite(p *sim.Proc, link *sim.Link, addr int64, data []byte) {
	packets := (len(data) + MaxPayload - 1) / MaxPayload
	link.Transfer(p, len(data)+packets*HeaderBytes)
	copy(h.buf[addr:], data)
}

// MirrorWrite is the device-to-device posted-write path used by the
// Transport module: it pushes data at off into region without a CPU in the
// loop. done (may be nil) runs in scheduler context on arrival of the last
// packet.
func MirrorWrite(region *Region, off int64, data []byte, done func()) {
	for len(data) > 0 {
		n := MaxPayload
		last := false
		if n >= len(data) {
			n = len(data)
			last = true
		}
		var cb func()
		if last {
			cb = done
		}
		region.writeAsync(off, data[:n], cb)
		off += int64(n)
		data = data[n:]
	}
}
