package pcie

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xssd/internal/sim"
)

// recorder is a Target that remembers every delivered write in order.
type recorder struct {
	writes []TLP
	mem    []byte
}

func newRecorder(size int) *recorder { return &recorder{mem: make([]byte, size)} }

func (r *recorder) MemWrite(off int64, data []byte) {
	r.writes = append(r.writes, TLP{Addr: off, Data: append([]byte(nil), data...)})
	copy(r.mem[off:], data)
}

func (r *recorder) MemRead(off int64, n int) []byte {
	out := make([]byte, n)
	copy(out, r.mem[off:])
	return out
}

func testRegion(env *sim.Env, size int64) (*Region, *recorder) {
	link := env.NewLink("pcie", 4*Gen2.LaneBandwidth(), 200*time.Nanosecond)
	rec := newRecorder(int(size))
	return NewRegion(env, link, rec, size), rec
}

func TestGenerationBandwidth(t *testing.T) {
	if got := 4 * Gen2.LaneBandwidth(); got != 2e9 {
		t.Fatalf("x4 Gen2 = %v B/s, want 2e9", got)
	}
	if Gen3.LaneBandwidth() <= Gen2.LaneBandwidth() {
		t.Fatal("Gen3 not faster than Gen2")
	}
}

func TestUncachedStoreSplitsInto8ByteTLPs(t *testing.T) {
	env := sim.NewEnv(1)
	region, rec := testRegion(env, 4096)
	mm := NewMMIO(region, Uncached)
	env.Go("writer", func(p *sim.Proc) {
		mm.Store(p, 0, make([]byte, 24))
	})
	env.Run()
	if len(rec.writes) != 3 {
		t.Fatalf("TLPs = %d, want 3", len(rec.writes))
	}
	for i, w := range rec.writes {
		if len(w.Data) != 8 || w.Addr != int64(i*8) {
			t.Fatalf("TLP %d: addr=%d len=%d", i, w.Addr, len(w.Data))
		}
	}
}

func TestWriteCombiningCoalescesToLine(t *testing.T) {
	env := sim.NewEnv(1)
	region, rec := testRegion(env, 4096)
	mm := NewMMIO(region, WriteCombining)
	env.Go("writer", func(p *sim.Proc) {
		// 8 sequential 8-byte stores fill exactly one 64-byte line.
		for i := 0; i < 8; i++ {
			mm.Store(p, int64(i*8), []byte{0, 1, 2, 3, 4, 5, 6, 7})
		}
	})
	env.Run()
	if len(rec.writes) != 1 {
		t.Fatalf("TLPs = %d, want 1 (coalesced line)", len(rec.writes))
	}
	if len(rec.writes[0].Data) != WCLineSize {
		t.Fatalf("payload = %d, want %d", len(rec.writes[0].Data), WCLineSize)
	}
}

func TestWriteCombiningPartialLineNeedsFence(t *testing.T) {
	env := sim.NewEnv(1)
	region, rec := testRegion(env, 4096)
	mm := NewMMIO(region, WriteCombining)
	env.Go("writer", func(p *sim.Proc) {
		mm.Store(p, 0, make([]byte, 16))
		if len(rec.writes) != 0 {
			t.Error("partial line flushed without fence")
		}
		mm.Fence(p)
	})
	env.Run()
	if len(rec.writes) != 1 || len(rec.writes[0].Data) != 16 {
		t.Fatalf("writes = %+v, want one 16-byte TLP", rec.writes)
	}
}

func TestWriteCombiningDiscontiguousStoreSpills(t *testing.T) {
	env := sim.NewEnv(1)
	region, rec := testRegion(env, 4096)
	mm := NewMMIO(region, WriteCombining)
	env.Go("writer", func(p *sim.Proc) {
		mm.Store(p, 0, make([]byte, 8))
		mm.Store(p, 128, make([]byte, 8)) // jump: spills first buffer
		mm.Fence(p)
	})
	env.Run()
	if len(rec.writes) != 2 {
		t.Fatalf("TLPs = %d, want 2", len(rec.writes))
	}
	if rec.writes[0].Addr != 0 || rec.writes[1].Addr != 128 {
		t.Fatalf("addrs = %d,%d", rec.writes[0].Addr, rec.writes[1].Addr)
	}
}

func TestWriteCombiningRespectsLineAlignment(t *testing.T) {
	env := sim.NewEnv(1)
	region, rec := testRegion(env, 4096)
	mm := NewMMIO(region, WriteCombining)
	env.Go("writer", func(p *sim.Proc) {
		// Start mid-line at 60: 4 bytes close the line, the rest begin a
		// new one.
		mm.Store(p, 60, make([]byte, 12))
		mm.Fence(p)
	})
	env.Run()
	if len(rec.writes) != 2 {
		t.Fatalf("TLPs = %d, want 2", len(rec.writes))
	}
	if rec.writes[0].Addr != 60 || len(rec.writes[0].Data) != 4 {
		t.Fatalf("first TLP addr=%d len=%d, want 60/4", rec.writes[0].Addr, len(rec.writes[0].Data))
	}
	if rec.writes[1].Addr != 64 || len(rec.writes[1].Data) != 8 {
		t.Fatalf("second TLP addr=%d len=%d, want 64/8", rec.writes[1].Addr, len(rec.writes[1].Data))
	}
}

func TestWCBeatsUCOnWireTime(t *testing.T) {
	run := func(mode MMIOMode) time.Duration {
		env := sim.NewEnv(1)
		region, _ := testRegion(env, 1<<20)
		mm := NewMMIO(region, mode)
		var elapsed time.Duration
		env.Go("writer", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < 1000; i++ {
				mm.Store(p, int64(i*64), make([]byte, 64))
			}
			mm.Fence(p)
			elapsed = p.Now() - start
		})
		env.Run()
		return elapsed
	}
	uc, wc := run(Uncached), run(WriteCombining)
	if wc >= uc {
		t.Fatalf("WC (%v) not faster than UC (%v)", wc, uc)
	}
	// UC stores stall the CPU for the full delivery (wire + link latency)
	// of each 8-byte TLP, while WC posts one 84-byte TLP per line: the gap
	// is dominated by 8 stalls x link latency per line, roughly 40x here.
	if ratio := float64(uc) / float64(wc); ratio < 10 {
		t.Fatalf("UC/WC ratio = %.2f, want the large stall-dominated gap", ratio)
	}
}

func TestRegionReadRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	region, rec := testRegion(env, 4096)
	copy(rec.mem[100:], []byte("counter!"))
	mm := NewMMIO(region, Uncached)
	var got []byte
	var took time.Duration
	env.Go("reader", func(p *sim.Proc) {
		start := p.Now()
		got = mm.Load(p, 100, 8)
		took = p.Now() - start
	})
	env.Run()
	if string(got) != "counter!" {
		t.Fatalf("read %q", got)
	}
	if took < 400*time.Nanosecond { // two link latencies minimum
		t.Fatalf("round trip took %v, expected at least 2x link latency", took)
	}
}

func TestDMAReadWrite(t *testing.T) {
	env := sim.NewEnv(1)
	link := env.NewLink("pcie", 2e9, 200*time.Nanosecond)
	host := NewHostMemory(8192)
	copy(host.Bytes()[1000:], []byte("log record payload"))
	var fetched []byte
	env.Go("device", func(p *sim.Proc) {
		fetched = host.DMARead(p, link, 1000, 18)
		host.DMAWrite(p, link, 4000, []byte("completion data"))
	})
	env.Run()
	if string(fetched) != "log record payload" {
		t.Fatalf("DMARead got %q", fetched)
	}
	if string(host.Bytes()[4000:4015]) != "completion data" {
		t.Fatalf("DMAWrite result %q", host.Bytes()[4000:4015])
	}
}

func TestMirrorWriteDeliversInOrderWithCallback(t *testing.T) {
	env := sim.NewEnv(1)
	region, rec := testRegion(env, 1<<20)
	payload := make([]byte, 1000) // 4 TLPs at MaxPayload=256
	for i := range payload {
		payload[i] = byte(i)
	}
	doneAt := time.Duration(-1)
	env.Go("mirror", func(p *sim.Proc) {
		MirrorWrite(region, 0, payload, func() { doneAt = env.Now() })
	})
	env.Run()
	if !bytes.Equal(rec.mem[:1000], payload) {
		t.Fatal("mirrored data corrupted")
	}
	if doneAt < 0 {
		t.Fatal("done callback never ran")
	}
	if len(rec.writes) != 4 {
		t.Fatalf("TLPs = %d, want 4", len(rec.writes))
	}
}

// property: for any store sequence, WC+fence delivers exactly the same
// bytes to the device as UC, just in different packetization.
func TestQuickWCAndUCDeliverSameBytes(t *testing.T) {
	f := func(seed int64) bool {
		deliver := func(mode MMIOMode) []byte {
			env := sim.NewEnv(1)
			region, rec := testRegion(env, 1<<16)
			mm := NewMMIO(region, mode)
			rng := rand.New(rand.NewSource(seed))
			env.Go("w", func(p *sim.Proc) {
				off := int64(0)
				for i := 0; i < 50; i++ {
					n := rng.Intn(100) + 1
					chunk := make([]byte, n)
					rng.Read(chunk)
					mm.Store(p, off, chunk)
					off += int64(n)
				}
				mm.Fence(p)
			})
			env.Run()
			return rec.mem
		}
		return bytes.Equal(deliver(Uncached), deliver(WriteCombining))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
