// Package hic implements the Host Interface Controller of the simulated
// device (paper §2.2, Fig 2): a device process that fetches commands from
// the NVMe submission queue, moves data in and out of host memory with DMA
// over the PCIe link, drives the FTL for block IO, and posts completions.
//
// Like the Cosmos+ the paper builds on, writes are acknowledged once the
// data sits in the device's Data Buffer ("it is very common for an SSD to
// cache data in this temporary area") and the flash program completes in
// the background; the buffer's capacity bounds how far acknowledgement can
// run ahead of the flash. Reads are served from the buffer when they hit
// an in-flight write. Vendor-specific admin commands are delegated to an
// AdminHandler so the Villars fast-side modules can extend the command set
// without touching the conventional path.
package hic

import (
	"time"

	"xssd/internal/ftl"
	"xssd/internal/nvme"
	"xssd/internal/pcie"
	"xssd/internal/sched"
	"xssd/internal/sim"
)

// AdminHandler services vendor-specific commands (opcode >= 0xC0). It runs
// in the command-handling process's context and may block.
type AdminHandler interface {
	Admin(p *sim.Proc, cmd nvme.Command) nvme.Completion
}

// Config tunes the controller.
type Config struct {
	// Workers is the number of concurrent command-handling processes
	// (models the device's internal parallelism).
	Workers int
	// WriteCacheBytes bounds how much acknowledged-but-unprogrammed data
	// the Data Buffer may hold. 0 means 64 MB.
	WriteCacheBytes int64
	// FirmwareLatency is the fixed per-command firmware overhead added to
	// the write-acknowledge path. 0 means 80 µs — prototype-grade firmware
	// (the Cosmos+ the paper builds on is an FPGA platform, not a
	// production controller; its conventional-side latency dominates the
	// paper's Fig 9 NVMe series).
	FirmwareLatency time.Duration
	// ArbBurst is the fetcher's round-robin arbitration burst: how many
	// commands it takes from one armed SQ before moving to the next.
	// 0 means 1 — strict round-robin, the NVMe default arbitration.
	ArbBurst int
}

// DefaultConfig uses 8 command handlers, a 64 MB write cache and 80 µs of
// firmware overhead.
var DefaultConfig = Config{Workers: 8}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.WriteCacheBytes == 0 {
		c.WriteCacheBytes = 64 << 20
	}
	if c.FirmwareLatency == 0 {
		c.FirmwareLatency = 80 * time.Microsecond
	}
	if c.ArbBurst <= 0 {
		c.ArbBurst = 1
	}
}

// fetched is a command pulled from an SQ, tagged with the queue it came
// from so its completion lands on the matching CQ.
type fetched struct {
	cmd nvme.Command
	q   int
}

// Controller is the host interface controller.
type Controller struct {
	env   *sim.Env
	cfg   Config
	qs    *nvme.QueueSet
	link  *sim.Link
	host  *pcie.HostMemory
	ftl   *ftl.FTL
	admin AdminHandler

	pending []fetched
	work    *sim.Signal
	rr      int // round-robin arbitration position

	// Data Buffer write cache: acknowledged blocks not yet on flash.
	cacheUsed  int64
	cacheData  map[int64][]byte // LBA -> buffered content
	cacheFreed *sim.Signal
	inflight   int64 // blocks being programmed

	// stats
	reads, writes, flushes, admins, errors, cacheHits int64
}

// New starts a controller on a single classic queue pair — it wraps qp
// into a one-queue set and delegates to NewMulti. Event-for-event
// identical to the historical single-queue controller.
func New(env *sim.Env, qp *nvme.QueuePair, link *sim.Link, host *pcie.HostMemory, f *ftl.FTL, admin AdminHandler, cfg Config) *Controller {
	return NewMulti(env, nvme.WrapQueueSet(env, qp), link, host, f, admin, cfg)
}

// NewMulti starts a controller over a queue set: one fetcher process
// round-robins over the armed SQs and Workers handler processes execute
// commands, posting each completion to the CQ of the queue that carried
// the command.
func NewMulti(env *sim.Env, qs *nvme.QueueSet, link *sim.Link, host *pcie.HostMemory, f *ftl.FTL, admin AdminHandler, cfg Config) *Controller {
	cfg.fill()
	c := &Controller{
		env:        env,
		cfg:        cfg,
		qs:         qs,
		link:       link,
		host:       host,
		ftl:        f,
		admin:      admin,
		work:       env.NewSignal(),
		cacheData:  map[int64][]byte{},
		cacheFreed: env.NewSignal(),
	}
	env.Go("hic-fetch", c.fetch)
	for i := 0; i < cfg.Workers; i++ {
		env.Go("hic-worker", c.worker)
	}
	return c
}

// fetch is the arbitration loop: sleep on the set's shared armed line,
// then sweep the SQs round-robin, taking up to ArbBurst commands from
// each armed queue per turn until every SQ is dry.
//
//xssd:hotpath
func (c *Controller) fetch(p *sim.Proc) {
	n := c.qs.Len()
	for {
		moved := false
		for {
			any := false
			start := c.rr
			for i := 0; i < n; i++ {
				qi := (start + i) % n
				sq := c.qs.Pair(qi).SQ
				served := false
				for b := 0; b < c.cfg.ArbBurst; b++ {
					cmd, ok := sq.Pop()
					if !ok {
						break
					}
					c.pending = append(c.pending, fetched{cmd: cmd, q: qi})
					moved, any, served = true, true, true
				}
				if served {
					// The rotation resumes after the last queue served —
					// NVMe round-robin, so back-to-back sweeps do not
					// double-serve the sweep-boundary queue.
					c.rr = (qi + 1) % n
				}
			}
			if !any {
				break
			}
		}
		if moved {
			c.work.Broadcast()
		}
		p.Wait(c.qs.Armed())
	}
}

func (c *Controller) worker(p *sim.Proc) {
	for {
		if len(c.pending) == 0 {
			p.Wait(c.work)
			continue
		}
		f := c.pending[0]
		c.pending = c.pending[1:]
		c.qs.Pair(f.q).CQ.Post(c.execute(p, f.cmd))
	}
}

// BlockSize returns the logical block size: this device formats its
// namespace with one block per flash page.
func (c *Controller) BlockSize() int { return c.ftl.PageSize() }

// CacheUsed returns the bytes currently held in the write cache.
func (c *Controller) CacheUsed() int64 { return c.cacheUsed }

func (c *Controller) execute(p *sim.Proc, cmd nvme.Command) nvme.Completion {
	if cmd.Opcode >= 0xC0 {
		c.admins++
		if c.admin == nil {
			return nvme.Completion{ID: cmd.ID, Status: nvme.StatusInvalid}
		}
		out := c.admin.Admin(p, cmd)
		out.ID = cmd.ID
		return out
	}
	switch cmd.Opcode {
	case nvme.OpWrite:
		c.writes++
		return c.executeWrite(p, cmd)
	case nvme.OpRead:
		c.reads++
		return c.executeRead(p, cmd)
	case nvme.OpFlush:
		// Drain the write cache: everything acknowledged is on flash.
		c.flushes++
		p.WaitFor(c.cacheFreed, func() bool { return c.inflight == 0 })
		return nvme.Completion{ID: cmd.ID, Status: nvme.StatusSuccess}
	default:
		c.errors++
		return nvme.Completion{ID: cmd.ID, Status: nvme.StatusInvalid}
	}
}

// executeWrite DMAs the payload into the Data Buffer, schedules the flash
// programs in the background, and acknowledges after the firmware latency.
func (c *Controller) executeWrite(p *sim.Proc, cmd nvme.Command) nvme.Completion {
	bs := c.BlockSize()
	for i := 0; i < cmd.Blocks; i++ {
		data := c.host.DMARead(p, c.link, cmd.PRP+int64(i*bs), bs)
		// Reserve Data Buffer space; stall when the cache is full (the
		// device then runs at flash program speed).
		p.WaitFor(c.cacheFreed, func() bool {
			return c.cacheUsed+int64(bs) <= c.cfg.WriteCacheBytes
		})
		lba := cmd.LBA + int64(i)
		c.cacheUsed += int64(bs)
		c.cacheData[lba] = data
		c.inflight++
		c.env.Go("hic-bgwrite", func(w *sim.Proc) {
			err := c.ftl.Write(w, lba, data, sched.Conventional)
			c.cacheUsed -= int64(bs)
			c.inflight--
			if cur, ok := c.cacheData[lba]; ok && &cur[0] == &data[0] {
				delete(c.cacheData, lba)
			}
			if err != nil {
				c.errors++
			}
			c.cacheFreed.Broadcast()
		})
	}
	p.Sleep(c.cfg.FirmwareLatency)
	return nvme.Completion{ID: cmd.ID, Status: nvme.StatusSuccess}
}

func (c *Controller) executeRead(p *sim.Proc, cmd nvme.Command) nvme.Completion {
	bs := c.BlockSize()
	for i := 0; i < cmd.Blocks; i++ {
		lba := cmd.LBA + int64(i)
		var data []byte
		if buffered, ok := c.cacheData[lba]; ok {
			c.cacheHits++
			data = buffered
		} else {
			var err error
			data, err = c.ftl.Read(p, lba)
			if err != nil {
				c.errors++
				return nvme.Completion{ID: cmd.ID, Status: nvme.StatusError}
			}
		}
		c.host.DMAWrite(p, c.link, cmd.PRP+int64(i*bs), data)
	}
	return nvme.Completion{ID: cmd.ID, Status: nvme.StatusSuccess}
}

// Stats returns cumulative command counts.
func (c *Controller) Stats() (reads, writes, flushes, admins, errors int64) {
	return c.reads, c.writes, c.flushes, c.admins, c.errors
}

// CacheHits returns how many block reads were served from the Data Buffer.
func (c *Controller) CacheHits() int64 { return c.cacheHits }
