package hic

import (
	"bytes"
	"testing"
	"time"

	"xssd/internal/ftl"
	"xssd/internal/nand"
	"xssd/internal/nvme"
	"xssd/internal/pcie"
	"xssd/internal/sched"
	"xssd/internal/sim"
)

type rig struct {
	env    *sim.Env
	host   *pcie.HostMemory
	driver *nvme.Driver
	ctrl   *Controller
}

type stubAdmin struct {
	calls []nvme.Command
}

func (a *stubAdmin) Admin(_ *sim.Proc, cmd nvme.Command) nvme.Completion {
	a.calls = append(a.calls, cmd)
	return nvme.Completion{Status: nvme.StatusSuccess, Value: 77}
}

func newRig(admin AdminHandler) *rig {
	env := sim.NewEnv(1)
	geo := nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 16, PagesPerBlock: 16, PageSize: 1024}
	timing := nand.Timing{TRead: 5 * time.Microsecond, TProg: 20 * time.Microsecond, TErase: 100 * time.Microsecond, BusRate: 1e9}
	arr := nand.New(env, geo, timing)
	sch := sched.New(env, arr, sched.Neutral)
	f := ftl.New(env, arr, sch, ftl.DefaultConfig)
	link := env.NewLink("pcie", 2e9, 200*time.Nanosecond)
	host := pcie.NewHostMemory(1 << 20)
	qp := nvme.NewQueuePair(env)
	ctrl := New(env, qp, link, host, f, admin, DefaultConfig)
	return &rig{env: env, host: host, driver: nvme.NewDriver(env, qp), ctrl: ctrl}
}

func TestWriteThenReadThroughNVMe(t *testing.T) {
	r := newRig(nil)
	bs := r.ctrl.BlockSize()
	payload := bytes.Repeat([]byte{0xCD}, bs*2)
	r.env.Go("host", func(p *sim.Proc) {
		copy(r.host.Bytes()[0:], payload)
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpWrite, LBA: 10, Blocks: 2, PRP: 0})
		if c.Status != nvme.StatusSuccess {
			t.Errorf("write status %v", c.Status)
		}
		c = r.driver.Submit(p, nvme.Command{Opcode: nvme.OpRead, LBA: 10, Blocks: 2, PRP: 1 << 18})
		if c.Status != nvme.StatusSuccess {
			t.Errorf("read status %v", c.Status)
		}
		if !bytes.Equal(r.host.Bytes()[1<<18:(1<<18)+bs*2], payload) {
			t.Error("read back wrong data")
		}
	})
	r.env.RunUntil(time.Second)
}

func TestReadOfUnwrittenLBAFails(t *testing.T) {
	r := newRig(nil)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpRead, LBA: 999, Blocks: 1, PRP: 0})
		if c.Status != nvme.StatusError {
			t.Errorf("status = %v, want error", c.Status)
		}
	})
	r.env.RunUntil(time.Second)
}

func TestFlushSucceeds(t *testing.T) {
	r := newRig(nil)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpFlush})
		if c.Status != nvme.StatusSuccess {
			t.Errorf("flush status %v", c.Status)
		}
	})
	r.env.RunUntil(time.Second)
}

func TestUnknownOpcodeRejected(t *testing.T) {
	r := newRig(nil)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: 0x7F})
		if c.Status != nvme.StatusInvalid {
			t.Errorf("status = %v, want invalid", c.Status)
		}
	})
	r.env.RunUntil(time.Second)
}

func TestVendorCommandRoutesToAdminHandler(t *testing.T) {
	admin := &stubAdmin{}
	r := newRig(admin)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpXQueryStatus, CDW: 42})
		if c.Status != nvme.StatusSuccess || c.Value != 77 {
			t.Errorf("completion = %+v", c)
		}
	})
	r.env.RunUntil(time.Second)
	if len(admin.calls) != 1 || admin.calls[0].CDW != 42 {
		t.Fatalf("admin calls = %+v", admin.calls)
	}
}

func TestVendorCommandWithoutHandlerInvalid(t *testing.T) {
	r := newRig(nil)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpXSetTransportMode})
		if c.Status != nvme.StatusInvalid {
			t.Errorf("status = %v, want invalid", c.Status)
		}
	})
	r.env.RunUntil(time.Second)
}

func TestConcurrentCommandsAllComplete(t *testing.T) {
	r := newRig(nil)
	bs := r.ctrl.BlockSize()
	const n = 16
	completions := 0
	for i := 0; i < n; i++ {
		i := i
		r.env.Go("host", func(p *sim.Proc) {
			prp := int64(i * bs)
			r.host.Bytes()[prp] = byte(i + 1)
			c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpWrite, LBA: int64(i), Blocks: 1, PRP: prp})
			if c.Status != nvme.StatusSuccess {
				t.Errorf("cmd %d: %v", i, c.Status)
			}
			completions++
		})
	}
	r.env.RunUntil(time.Second)
	if completions != n {
		t.Fatalf("completions = %d, want %d", completions, n)
	}
	_, writes, _, _, errs := r.ctrl.Stats()
	if writes != n || errs != 0 {
		t.Fatalf("writes=%d errs=%d", writes, errs)
	}
}

func TestQueuePairFIFO(t *testing.T) {
	env := sim.NewEnv(1)
	sq := nvme.NewSubmissionQueue(env)
	sq.Push(nvme.Command{ID: 1})
	sq.Push(nvme.Command{ID: 2})
	if c, ok := sq.Pop(); !ok || c.ID != 1 {
		t.Fatal("SQ not FIFO")
	}
	if sq.Len() != 1 {
		t.Fatal("SQ length wrong")
	}
	cq := nvme.NewCompletionQueue(env)
	cq.Post(nvme.Completion{ID: 9})
	if c, ok := cq.Pop(); !ok || c.ID != 9 {
		t.Fatal("CQ pop wrong")
	}
	if _, ok := cq.Pop(); ok {
		t.Fatal("empty CQ returned entry")
	}
}

// newMultiRig builds a controller over n queue pairs with the given
// arbitration burst and a one-worker execution stage, so completion order
// exposes the fetcher's round-robin order directly.
func newMultiRig(n, burst int) (*rig, *nvme.QueueSet) {
	env := sim.NewEnv(1)
	geo := nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 16, PagesPerBlock: 16, PageSize: 1024}
	timing := nand.Timing{TRead: 5 * time.Microsecond, TProg: 20 * time.Microsecond, TErase: 100 * time.Microsecond, BusRate: 1e9}
	arr := nand.New(env, geo, timing)
	sch := sched.New(env, arr, sched.Neutral)
	f := ftl.New(env, arr, sch, ftl.DefaultConfig)
	link := env.NewLink("pcie", 2e9, 200*time.Nanosecond)
	host := pcie.NewHostMemory(1 << 20)
	qs := nvme.NewQueueSet(env, n, nvme.Coalesce{})
	cfg := DefaultConfig
	cfg.Workers = 1
	cfg.ArbBurst = burst
	ctrl := NewMulti(env, qs, link, host, f, nil, cfg)
	return &rig{env: env, host: host, driver: nvme.NewMultiDriver(env, qs, 0), ctrl: ctrl}, qs
}

func TestMultiQueueCompletesOnOriginQueue(t *testing.T) {
	r, qs := newMultiRig(3, 1)
	bs := r.ctrl.BlockSize()
	var got [3]nvme.Completion
	r.env.Go("host", func(p *sim.Proc) {
		var toks [3]nvme.Token
		for q := 0; q < 3; q++ {
			prp := int64(q * bs)
			r.host.Bytes()[prp] = byte(q + 1)
			toks[q] = r.driver.SubmitAsync(p, q, nvme.Command{Opcode: nvme.OpWrite, LBA: int64(10 + q), Blocks: 1, PRP: prp})
		}
		for q := 0; q < 3; q++ {
			got[q] = r.driver.Wait(p, toks[q])
		}
	})
	r.env.RunUntil(time.Second)
	for q := 0; q < 3; q++ {
		if got[q].Status != nvme.StatusSuccess {
			t.Errorf("queue %d completion %+v", q, got[q])
		}
		// Each CQ saw exactly its own command: one completion, seq 1.
		if qs.Pair(q).CQ.Seq() != 1 {
			t.Errorf("queue %d CQ seq %d, want 1 (completion crossed queues?)", q, qs.Pair(q).CQ.Seq())
		}
	}
}

func TestMultiQueueRoundRobinArbitration(t *testing.T) {
	// Three commands on each of two queues, fetched by a single worker:
	// strict round-robin must interleave them q0,q1,q0,q1,... rather than
	// draining one queue first. Admin commands echo CDW through Value, so
	// the completion values record execution order.
	admin := &stubAdmin{}
	r, qs := newMultiRig(2, 1)
	r.ctrl.admin = admin
	_ = qs
	r.env.Go("host", func(p *sim.Proc) {
		var toks []nvme.Token
		for i := 0; i < 3; i++ {
			for q := 0; q < 2; q++ {
				toks = append(toks, r.driver.SubmitAsync(p, q, nvme.Command{
					Opcode: nvme.OpXQueryStatus, CDW: int64(q*100 + i)}))
			}
		}
		for _, tok := range toks {
			r.driver.Wait(p, tok)
		}
	})
	r.env.RunUntil(time.Second)
	want := []int64{0, 100, 1, 101, 2, 102}
	if len(admin.calls) != len(want) {
		t.Fatalf("admin saw %d commands, want %d", len(admin.calls), len(want))
	}
	for i, c := range admin.calls {
		if c.CDW != want[i] {
			got := make([]int64, len(admin.calls))
			for j, cc := range admin.calls {
				got[j] = cc.CDW
			}
			t.Fatalf("execution order %v, want strict round-robin %v", got, want)
		}
	}
}

func TestMultiQueueArbitrationBurst(t *testing.T) {
	// With ArbBurst 2, the fetcher takes two commands from a queue before
	// rotating: q0,q0,q1,q1,q0,q1.
	admin := &stubAdmin{}
	r, _ := newMultiRig(2, 2)
	r.ctrl.admin = admin
	r.env.Go("host", func(p *sim.Proc) {
		var toks []nvme.Token
		for q := 0; q < 2; q++ {
			for i := 0; i < 3; i++ {
				toks = append(toks, r.driver.SubmitAsync(p, q, nvme.Command{
					Opcode: nvme.OpXQueryStatus, CDW: int64(q*100 + i)}))
			}
		}
		for _, tok := range toks {
			r.driver.Wait(p, tok)
		}
	})
	r.env.RunUntil(time.Second)
	want := []int64{0, 1, 100, 101, 2, 102}
	got := make([]int64, len(admin.calls))
	for j, cc := range admin.calls {
		got[j] = cc.CDW
	}
	if len(got) != len(want) {
		t.Fatalf("admin saw %d commands, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want burst-2 round-robin %v", got, want)
		}
	}
}
