package hic

import (
	"bytes"
	"testing"
	"time"

	"xssd/internal/ftl"
	"xssd/internal/nand"
	"xssd/internal/nvme"
	"xssd/internal/pcie"
	"xssd/internal/sched"
	"xssd/internal/sim"
)

type rig struct {
	env    *sim.Env
	host   *pcie.HostMemory
	driver *nvme.Driver
	ctrl   *Controller
}

type stubAdmin struct {
	calls []nvme.Command
}

func (a *stubAdmin) Admin(_ *sim.Proc, cmd nvme.Command) nvme.Completion {
	a.calls = append(a.calls, cmd)
	return nvme.Completion{Status: nvme.StatusSuccess, Value: 77}
}

func newRig(admin AdminHandler) *rig {
	env := sim.NewEnv(1)
	geo := nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 16, PagesPerBlock: 16, PageSize: 1024}
	timing := nand.Timing{TRead: 5 * time.Microsecond, TProg: 20 * time.Microsecond, TErase: 100 * time.Microsecond, BusRate: 1e9}
	arr := nand.New(env, geo, timing)
	sch := sched.New(env, arr, sched.Neutral)
	f := ftl.New(env, arr, sch, ftl.DefaultConfig)
	link := env.NewLink("pcie", 2e9, 200*time.Nanosecond)
	host := pcie.NewHostMemory(1 << 20)
	qp := nvme.NewQueuePair(env)
	ctrl := New(env, qp, link, host, f, admin, DefaultConfig)
	return &rig{env: env, host: host, driver: nvme.NewDriver(env, qp), ctrl: ctrl}
}

func TestWriteThenReadThroughNVMe(t *testing.T) {
	r := newRig(nil)
	bs := r.ctrl.BlockSize()
	payload := bytes.Repeat([]byte{0xCD}, bs*2)
	r.env.Go("host", func(p *sim.Proc) {
		copy(r.host.Bytes()[0:], payload)
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpWrite, LBA: 10, Blocks: 2, PRP: 0})
		if c.Status != nvme.StatusSuccess {
			t.Errorf("write status %v", c.Status)
		}
		c = r.driver.Submit(p, nvme.Command{Opcode: nvme.OpRead, LBA: 10, Blocks: 2, PRP: 1 << 18})
		if c.Status != nvme.StatusSuccess {
			t.Errorf("read status %v", c.Status)
		}
		if !bytes.Equal(r.host.Bytes()[1<<18:(1<<18)+bs*2], payload) {
			t.Error("read back wrong data")
		}
	})
	r.env.RunUntil(time.Second)
}

func TestReadOfUnwrittenLBAFails(t *testing.T) {
	r := newRig(nil)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpRead, LBA: 999, Blocks: 1, PRP: 0})
		if c.Status != nvme.StatusError {
			t.Errorf("status = %v, want error", c.Status)
		}
	})
	r.env.RunUntil(time.Second)
}

func TestFlushSucceeds(t *testing.T) {
	r := newRig(nil)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpFlush})
		if c.Status != nvme.StatusSuccess {
			t.Errorf("flush status %v", c.Status)
		}
	})
	r.env.RunUntil(time.Second)
}

func TestUnknownOpcodeRejected(t *testing.T) {
	r := newRig(nil)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: 0x7F})
		if c.Status != nvme.StatusInvalid {
			t.Errorf("status = %v, want invalid", c.Status)
		}
	})
	r.env.RunUntil(time.Second)
}

func TestVendorCommandRoutesToAdminHandler(t *testing.T) {
	admin := &stubAdmin{}
	r := newRig(admin)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpXQueryStatus, CDW: 42})
		if c.Status != nvme.StatusSuccess || c.Value != 77 {
			t.Errorf("completion = %+v", c)
		}
	})
	r.env.RunUntil(time.Second)
	if len(admin.calls) != 1 || admin.calls[0].CDW != 42 {
		t.Fatalf("admin calls = %+v", admin.calls)
	}
}

func TestVendorCommandWithoutHandlerInvalid(t *testing.T) {
	r := newRig(nil)
	r.env.Go("host", func(p *sim.Proc) {
		c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpXSetTransportMode})
		if c.Status != nvme.StatusInvalid {
			t.Errorf("status = %v, want invalid", c.Status)
		}
	})
	r.env.RunUntil(time.Second)
}

func TestConcurrentCommandsAllComplete(t *testing.T) {
	r := newRig(nil)
	bs := r.ctrl.BlockSize()
	const n = 16
	completions := 0
	for i := 0; i < n; i++ {
		i := i
		r.env.Go("host", func(p *sim.Proc) {
			prp := int64(i * bs)
			r.host.Bytes()[prp] = byte(i + 1)
			c := r.driver.Submit(p, nvme.Command{Opcode: nvme.OpWrite, LBA: int64(i), Blocks: 1, PRP: prp})
			if c.Status != nvme.StatusSuccess {
				t.Errorf("cmd %d: %v", i, c.Status)
			}
			completions++
		})
	}
	r.env.RunUntil(time.Second)
	if completions != n {
		t.Fatalf("completions = %d, want %d", completions, n)
	}
	_, writes, _, _, errs := r.ctrl.Stats()
	if writes != n || errs != 0 {
		t.Fatalf("writes=%d errs=%d", writes, errs)
	}
}

func TestQueuePairFIFO(t *testing.T) {
	env := sim.NewEnv(1)
	sq := nvme.NewSubmissionQueue(env)
	sq.Push(nvme.Command{ID: 1})
	sq.Push(nvme.Command{ID: 2})
	if c, ok := sq.Pop(); !ok || c.ID != 1 {
		t.Fatal("SQ not FIFO")
	}
	if sq.Len() != 1 {
		t.Fatal("SQ length wrong")
	}
	cq := nvme.NewCompletionQueue(env)
	cq.Post(nvme.Completion{ID: 9})
	if c, ok := cq.Pop(); !ok || c.ID != 9 {
		t.Fatal("CQ pop wrong")
	}
	if _, ok := cq.Pop(); ok {
		t.Fatal("empty CQ returned entry")
	}
}
