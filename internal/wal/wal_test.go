package wal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xssd/internal/nand"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/villars"
)

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	r := Record{TxID: 42, Payload: []byte("update stock set qty=qty-1")}
	buf := r.Encode(nil)
	if len(buf) != EncodedLen(len(r.Payload)) {
		t.Fatalf("encoded length %d", len(buf))
	}
	got, n, err := Decode(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v, n=%d", err, n)
	}
	if got.TxID != 42 || !bytes.Equal(got.Payload, r.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, _, err := Decode(make([]byte, 32)); err == nil {
		t.Fatal("bad magic accepted")
	}
	r := Record{TxID: 1, Payload: make([]byte, 100)}
	buf := r.Encode(nil)
	if _, _, err := Decode(buf[:20]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestDecodeAllStopsAtTruncation(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = Record{TxID: int64(i), Payload: []byte{byte(i)}}.Encode(buf)
	}
	full := DecodeAll(buf)
	if len(full) != 5 {
		t.Fatalf("decoded %d records", len(full))
	}
	for i, r := range full {
		if r.TxID != int64(i) {
			t.Fatalf("record %d txid %d", i, r.TxID)
		}
	}
	cut := DecodeAll(buf[:len(buf)-3]) // chop the tail record
	if len(cut) != 4 {
		t.Fatalf("truncated stream decoded %d records, want 4", len(cut))
	}
}

// property: any record sequence survives encode/DecodeAll with LSNs that
// are strictly increasing and match encoded offsets.
func TestQuickStreamRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%20) + 1
		var buf []byte
		var want []Record
		for i := 0; i < count; i++ {
			p := make([]byte, rng.Intn(200))
			rng.Read(p)
			r := Record{TxID: rng.Int63(), Payload: p}
			want = append(want, r)
			buf = r.Encode(buf)
		}
		got := DecodeAll(buf)
		if len(got) != count {
			return false
		}
		lsn := int64(-1)
		for i := range got {
			if got[i].TxID != want[i].TxID || !bytes.Equal(got[i].Payload, want[i].Payload) {
				return false
			}
			if got[i].LSN <= lsn {
				return false
			}
			lsn = got[i].LSN
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// countingSink records batches and simulates a fixed write latency.
type countingSink struct {
	batches [][]byte
	delay   time.Duration
}

func (s *countingSink) Write(p *sim.Proc, data []byte) error {
	p.Sleep(s.delay)
	s.batches = append(s.batches, append([]byte(nil), data...))
	return nil
}

func (s *countingSink) Name() string { return "counting" }

func TestGroupCommitBatchesBySize(t *testing.T) {
	env := sim.NewEnv(1)
	sink := &countingSink{delay: 10 * time.Microsecond}
	log := NewLog(env, sink, Config{GroupBytes: 1024, GroupTimeout: time.Millisecond})
	const workers = 8
	committed := 0
	for w := 0; w < workers; w++ {
		w := w
		env.Go("worker", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				log.Commit(p, Record{TxID: int64(w*100 + i), Payload: make([]byte, 100)})
				committed++
			}
		})
	}
	env.RunUntil(time.Second)
	if committed != workers*10 {
		t.Fatalf("committed = %d", committed)
	}
	// 80 records x 114 bytes = 9120 bytes; with 1 KB groups there should
	// be far fewer flushes than records.
	if len(sink.batches) >= 80 || len(sink.batches) == 0 {
		t.Fatalf("flushes = %d, expected batching", len(sink.batches))
	}
	var total int
	for _, b := range sink.batches {
		total += len(b)
	}
	if total != 80*EncodedLen(100) {
		t.Fatalf("flushed bytes = %d", total)
	}
}

func TestGroupCommitTimeoutBoundsLatency(t *testing.T) {
	env := sim.NewEnv(1)
	sink := &countingSink{}
	log := NewLog(env, sink, Config{GroupBytes: 1 << 20, GroupTimeout: time.Millisecond})
	var commitAt time.Duration
	env.Go("worker", func(p *sim.Proc) {
		log.Commit(p, Record{TxID: 1, Payload: []byte("lonely")})
		commitAt = p.Now()
	})
	env.RunUntil(time.Second)
	if commitAt == 0 {
		t.Fatal("commit never returned")
	}
	if commitAt < time.Millisecond || commitAt > 2*time.Millisecond {
		t.Fatalf("lone commit at %v, want ~1ms (timeout-bounded)", commitAt)
	}
}

func TestCommitWaitsForDurability(t *testing.T) {
	env := sim.NewEnv(1)
	sink := &countingSink{delay: 500 * time.Microsecond}
	log := NewLog(env, sink, Config{GroupBytes: 1, GroupTimeout: time.Millisecond})
	var commitAt time.Duration
	env.Go("worker", func(p *sim.Proc) {
		log.Commit(p, Record{TxID: 1, Payload: []byte("x")})
		commitAt = p.Now()
	})
	env.RunUntil(time.Second)
	if commitAt < 500*time.Microsecond {
		t.Fatalf("commit acked at %v, before sink delay", commitAt)
	}
	if log.DurableLSN() != int64(EncodedLen(1)) {
		t.Fatalf("durable LSN = %d", log.DurableLSN())
	}
}

func testDevice(env *sim.Env, name string) (*villars.Device, *pcie.HostMemory) {
	cfg := villars.DefaultConfig(name)
	cfg.Geometry = nand.Geometry{Channels: 2, WaysPerChan: 2, BlocksPerDie: 32, PagesPerBlock: 32, PageSize: 2048}
	cfg.Timing = nand.Timing{TRead: 5 * time.Microsecond, TProg: 20 * time.Microsecond, TErase: 100 * time.Microsecond, BusRate: 1e9}
	cfg.QueueSize = 4096
	cfg.CMBSize = 64 << 10
	host := pcie.NewHostMemory(1 << 20)
	return villars.New(env, cfg, host), host
}

func TestVillarsSinkEndToEnd(t *testing.T) {
	env := sim.NewEnv(1)
	dev, _ := testDevice(env, "a")
	done := false
	env.Go("db", func(p *sim.Proc) {
		sink := NewVillarsSink(p, dev, "Villars-SRAM")
		log := NewLog(env, sink, Config{GroupBytes: 512, GroupTimeout: time.Millisecond})
		for i := 0; i < 20; i++ {
			log.Commit(p, Record{TxID: int64(i), Payload: make([]byte, 64)})
		}
		done = true
	})
	env.RunUntil(time.Second)
	if !done {
		t.Fatal("commits did not finish")
	}
	if dev.CMB().BytesIn() != 20*int64(EncodedLen(64)) {
		t.Fatalf("device saw %d bytes", dev.CMB().BytesIn())
	}
}

func TestNVMeSinkEndToEnd(t *testing.T) {
	env := sim.NewEnv(1)
	dev, host := testDevice(env, "a")
	done := false
	env.Go("db", func(p *sim.Proc) {
		sink := NewNVMeSink(dev, host, 1<<18, 0, 64)
		log := NewLog(env, sink, Config{GroupBytes: 2048, GroupTimeout: time.Millisecond})
		for i := 0; i < 10; i++ {
			log.Commit(p, Record{TxID: int64(i), Payload: make([]byte, 512)})
		}
		done = true
	})
	env.RunUntil(time.Second)
	if !done {
		t.Fatal("commits did not finish")
	}
	// The conventional side must have received the block writes.
	if _, progs, _ := dev.Array().Stats(); progs == 0 {
		t.Fatal("no flash programs from the NVMe log path")
	}
}

func TestMemorySinkFasterThanNVMeSink(t *testing.T) {
	latency := func(mk func(env *sim.Env, p *sim.Proc) Sink) time.Duration {
		env := sim.NewEnv(1)
		var total time.Duration
		env.Go("db", func(p *sim.Proc) {
			sink := mk(env, p)
			log := NewLog(env, sink, Config{GroupBytes: 2048, GroupTimeout: 100 * time.Microsecond})
			for i := 0; i < 20; i++ {
				t0 := p.Now()
				log.Commit(p, Record{TxID: int64(i), Payload: make([]byte, 256)})
				total += p.Now() - t0
			}
		})
		env.RunUntil(5 * time.Second)
		return total
	}
	mem := latency(func(env *sim.Env, p *sim.Proc) Sink { return NewMemorySink(env, pm.NVDIMMSpec) })
	nvme := latency(func(env *sim.Env, p *sim.Proc) Sink {
		dev, host := testDevice(env, "a")
		return NewNVMeSink(dev, host, 1<<18, 0, 256)
	})
	if mem >= nvme {
		t.Fatalf("Memory sink (%v) not faster than NVMe sink (%v)", mem, nvme)
	}
}

func TestNullSink(t *testing.T) {
	env := sim.NewEnv(1)
	log := NewLog(env, NullSink{}, Config{GroupBytes: 64, GroupTimeout: time.Millisecond})
	env.Go("db", func(p *sim.Proc) {
		log.Commit(p, Record{TxID: 1, Payload: []byte("vanishes")})
	})
	env.RunUntil(time.Second)
	if log.DurableLSN() == 0 {
		t.Fatal("null sink never acked")
	}
	if (NullSink{}).Name() != "NoLog" {
		t.Fatal("name")
	}
}

// trimmingSink acks each replayed batch and immediately trims the
// retained copy up to the acked prefix — reallocating the retained
// buffer's backing array while Resume's replay loop is still walking the
// stream.
type trimmingSink struct {
	log     *Log
	delay   time.Duration
	batches [][]byte
	acked   int64
}

func (s *trimmingSink) Write(p *sim.Proc, data []byte) error {
	p.Sleep(s.delay)
	s.batches = append(s.batches, append([]byte(nil), data...))
	s.acked += int64(len(data))
	s.log.TrimRetained(s.acked)
	return nil
}

func (s *trimmingSink) Name() string { return "trimming" }

// Regression for the Resume replay alias: the replay loop yields inside
// sink.Write, and the retained copy can be trimmed (reallocated) under
// that yield. Resume must replay from a private copy so the new sink
// receives the exact original stream — the bug class xvet's bufownership
// analyzer flags as "alias used across a blocking call".
func TestResumeReplaySurvivesTrim(t *testing.T) {
	env := sim.NewEnv(7)
	old := &countingSink{delay: 10 * time.Microsecond}
	log := NewLog(env, old, Config{GroupBytes: 512, GroupTimeout: time.Millisecond, Retain: true})

	var stream []byte
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			r := Record{TxID: int64(i), Payload: bytes.Repeat([]byte{byte(i)}, 64)}
			stream = r.Encode(stream)
			log.Commit(p, r)
		}
		log.Halt()
	})
	env.RunUntil(time.Second)
	if log.DurableLSN() != int64(len(stream)) {
		t.Fatalf("durable %d, appended %d", log.DurableLSN(), len(stream))
	}

	sink := &trimmingSink{log: log, delay: 20 * time.Microsecond}
	var replayed int64
	env.Go("failover", func(p *sim.Proc) {
		n, err := log.Resume(p, sink, 0)
		if err != nil {
			t.Errorf("resume: %v", err)
		}
		replayed = n
	})
	env.RunUntil(2 * time.Second)

	if replayed != int64(len(stream)) {
		t.Fatalf("replayed %d of %d bytes", replayed, len(stream))
	}
	var got []byte
	for _, b := range sink.batches {
		got = append(got, b...)
	}
	if !bytes.Equal(got, stream) {
		t.Fatal("replayed stream diverges from the original despite mid-replay trims")
	}
	if recs := DecodeAll(got); len(recs) != 40 {
		t.Fatalf("replayed stream decodes to %d records, want 40", len(recs))
	}
}
