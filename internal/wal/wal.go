// Package wal implements the database logging substrate: write-ahead log
// records with binary encoding, a group-commit pipeline (the paper's
// evaluation commits in 16 KB batches, §6.1), and pluggable durability
// sinks — the Villars fast side, host NVDIMM (the "Memory" baseline), the
// conventional NVMe path, and a null sink ("No Log").
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"xssd/internal/fault"
	"xssd/internal/obs"
	"xssd/internal/sim"
)

// ErrSinkLost reports that the sink's device is gone for good (power
// loss): the pipeline halts with the durable horizon frozen where it
// was, exactly like a crashed log. Match with errors.Is.
var ErrSinkLost = errors.New("wal: sink lost")

// ErrResumeLive reports a Resume on a pipeline that has not halted.
var ErrResumeLive = errors.New("wal: resume on a live pipeline")

// ErrTailUnavailable reports a Resume or StreamRange over bytes the log
// no longer holds (below the retention base, or past the appended end).
var ErrTailUnavailable = errors.New("wal: stream bytes not retained")

// Record is one WAL entry: a transaction's redo payload.
type Record struct {
	LSN     int64 // byte offset of the record in the log stream (set on append)
	TxID    int64
	Payload []byte
}

// recordHeaderLen is the encoded header: magic(2) | txid(8) | len(4).
const recordHeaderLen = 14

const recordMagic = 0x5741 // "WA"

// EncodedLen returns the on-log size of a record with an n-byte payload.
func EncodedLen(n int) int { return recordHeaderLen + n }

// Encode appends the record's wire form to dst and returns the result.
func (r Record) Encode(dst []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint16(hdr[0:2], recordMagic)
	binary.LittleEndian.PutUint64(hdr[2:10], uint64(r.TxID))
	binary.LittleEndian.PutUint32(hdr[10:14], uint32(len(r.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, r.Payload...)
}

// Decode parses one record from buf, returning it and the bytes consumed.
func Decode(buf []byte) (Record, int, error) {
	if len(buf) < recordHeaderLen {
		return Record{}, 0, errors.New("wal: short record header")
	}
	if binary.LittleEndian.Uint16(buf[0:2]) != recordMagic {
		return Record{}, 0, errors.New("wal: bad record magic")
	}
	txid := int64(binary.LittleEndian.Uint64(buf[2:10]))
	n := int(binary.LittleEndian.Uint32(buf[10:14]))
	if len(buf) < recordHeaderLen+n {
		return Record{}, 0, errors.New("wal: truncated record payload")
	}
	payload := append([]byte(nil), buf[recordHeaderLen:recordHeaderLen+n]...)
	return Record{TxID: txid, Payload: payload}, recordHeaderLen + n, nil
}

// DecodeAll parses a stream of records, stopping at the first short or
// invalid record (a crash may truncate the tail).
func DecodeAll(buf []byte) []Record {
	var out []Record
	off := 0
	for off < len(buf) {
		r, n, err := Decode(buf[off:])
		if err != nil {
			break
		}
		r.LSN = int64(off)
		out = append(out, r)
		off += n
	}
	return out
}

// Sink is where the group-commit pipeline persists batches. Write must
// block the calling process until the batch is durable (under whatever
// replication scheme the sink's device enforces). The data slice is a
// reused buffer owned by the pipeline: a sink that needs the bytes after
// Write returns must copy them.
type Sink interface {
	// Write persists data appended at the sink's current tail.
	Write(p *sim.Proc, data []byte) error
	// Name identifies the sink in experiment output.
	Name() string
}

// Config tunes the group-commit pipeline.
type Config struct {
	// GroupBytes: flush when this many bytes have accumulated (paper
	// §6.1: "the system waits until it has 16 KB worth of log records").
	GroupBytes int
	// GroupTimeout: flush a smaller batch after this long (bounds commit
	// latency at low load).
	GroupTimeout time.Duration
	// Retain keeps an in-memory copy of every durably flushed byte so the
	// stream can be re-driven onto a promoted device after a failover
	// (Log.Resume). Trim the copy with TrimRetained once the whole cluster
	// holds a prefix. Off by default.
	Retain bool
}

// DefaultConfig matches the paper's evaluation.
var DefaultConfig = Config{GroupBytes: 16 << 10, GroupTimeout: 5 * time.Millisecond}

// Log is the group-commit pipeline: transactions append records and block
// until their LSN is durable; a flusher process writes batches to the
// sink.
type Log struct {
	env  *sim.Env
	sink Sink
	cfg  Config

	//xssd:pool retain
	buf        []byte // accumulating batch
	batch      []byte // reusable flush buffer (sinks do not retain it)
	bufStart   int64  // LSN of buf[0]
	durableLSN int64  // everything below is persisted
	oldestWait time.Duration

	// failover retention (Config.Retain): the flushed stream's bytes in
	// [retainBase, durableLSN), kept so Resume can re-drive the tail a
	// promoted device is missing.
	//xssd:pool retain
	retained   []byte
	retainBase int64

	appended *sim.Signal // record arrived
	flushed  *sim.Signal // durableLSN advanced

	dead bool // sink lost; no further flush will ever complete

	// metrics (wal/<sink>/...)
	mRecords     *obs.Counter
	mFlushes     *obs.Counter
	mFlushBytes  *obs.Counter
	mSinkRetries *obs.Counter
	mFlushLat    *obs.Histogram // batch handed to sink -> durable, ns
}

// walRetryBackoff spaces retries of transiently failed sink writes.
const walRetryBackoff = 100 * time.Microsecond

// NewLog starts a group-commit pipeline over sink.
func NewLog(env *sim.Env, sink Sink, cfg Config) *Log {
	if cfg.GroupBytes <= 0 {
		cfg.GroupBytes = DefaultConfig.GroupBytes
	}
	if cfg.GroupTimeout <= 0 {
		cfg.GroupTimeout = DefaultConfig.GroupTimeout
	}
	l := &Log{
		env:      env,
		sink:     sink,
		cfg:      cfg,
		appended: env.NewSignal(),
		flushed:  env.NewSignal(),
	}
	sc := obs.For(env).Scope("wal/" + sink.Name())
	l.mRecords = sc.Counter("records")
	l.mFlushes = sc.Counter("flushes")
	l.mFlushBytes = sc.Counter("flush_bytes")
	l.mSinkRetries = sc.Counter("sink_retries")
	l.mFlushLat = sc.Histogram("flush_ns")
	sc.GaugeFunc("backlog", l.Backlog)
	sc.GaugeFunc("durable_lsn", l.DurableLSN)
	env.Go("wal-flusher", l.flusher)
	return l
}

// Sink returns the durability sink.
func (l *Log) Sink() Sink { return l.sink }

// DurableLSN returns the persisted prefix length of the log stream.
func (l *Log) DurableLSN() int64 { return l.durableLSN }

// Append adds a record to the current batch and returns the LSN just past
// it (the value Commit waits on). It never blocks.
func (l *Log) Append(r Record) int64 {
	if len(l.buf) == 0 {
		l.oldestWait = l.env.Now()
	}
	l.buf = r.Encode(l.buf)
	l.mRecords.Inc()
	end := l.bufStart + int64(len(l.buf))
	l.appended.Broadcast()
	return end
}

// WaitDurable blocks the calling process until the log is durable up to
// lsn.
func (l *Log) WaitDurable(p *sim.Proc, lsn int64) {
	p.WaitFor(l.flushed, func() bool { return l.durableLSN >= lsn })
}

// WaitDurableOrDead blocks until the log is durable up to lsn or the log
// dies (sink lost), whichever comes first, and reports whether lsn made
// it to stable storage. Distributed-commit paths use it so a participant
// whose device lost power answers "not durable" instead of blocking its
// coordinator forever.
func (l *Log) WaitDurableOrDead(p *sim.Proc, lsn int64) bool {
	p.WaitFor(l.flushed, func() bool { return l.durableLSN >= lsn || l.dead })
	return l.durableLSN >= lsn
}

// Commit appends a record and blocks until it is durable: the transaction
// commit path.
func (l *Log) Commit(p *sim.Proc, r Record) int64 {
	lsn := l.Append(r)
	l.WaitDurable(p, lsn)
	return lsn
}

// Backlog returns the number of appended-but-not-yet-durable bytes (the
// fill level of the in-memory log buffer).
func (l *Log) Backlog() int64 { return l.bufStart + int64(len(l.buf)) - l.durableLSN }

// AppendedLSN returns the append frontier: the LSN just past the last
// appended record. A checkpoint captures it as its start LSN — every
// record below it is covered by the checkpoint's page images, every
// record at or above it belongs to the replay tail.
func (l *Log) AppendedLSN() int64 { return l.bufStart + int64(len(l.buf)) }

// TailRecords returns the suffix of rs whose records start at or after
// from — the tail-replay cursor for recovery from a checkpoint. rs must
// be in stream order with LSNs set (DecodeAll's output qualifies);
// records never straddle an append frontier, so the cut is exact.
func TailRecords(rs []Record, from int64) []Record {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].LSN >= from })
	return rs[i:]
}

// WaitBacklog blocks while the backlog exceeds max — the pipelined-commit
// back-pressure: a worker may run ahead of durability only by a bounded
// log-buffer amount (ERMIA-style asynchronous commit).
func (l *Log) WaitBacklog(p *sim.Proc, max int64) {
	p.WaitFor(l.flushed, func() bool { return l.Backlog() <= max })
}

// flusher batches appends and writes them through the sink.
func (l *Log) flusher(p *sim.Proc) {
	for {
		if l.dead {
			// Halted externally (Halt) while parked: exit so the flusher
			// Resume starts is the only one running.
			return
		}
		if len(l.buf) == 0 {
			p.Wait(l.appended)
			continue
		}
		if len(l.buf) < l.cfg.GroupBytes {
			// Not a full group yet: wait for more appends, with a timer so
			// the group timeout still bounds latency on a quiet log.
			age := p.Now() - l.oldestWait
			if age < l.cfg.GroupTimeout {
				l.env.After(l.cfg.GroupTimeout-age, l.appended.Broadcast)
				p.Wait(l.appended)
				continue
			}
		}
		// Flush at most one group per sink write (the paper's unit: the
		// system commits 16 KB worth of log records at a time); a backlog
		// drains as a sequence of group-sized writes, queue depth 1.
		n := len(l.buf)
		if n > l.cfg.GroupBytes {
			n = l.cfg.GroupBytes
		}
		// Copy the group into the reusable flush buffer and compact the
		// accumulator in place, so the log stream stops churning through
		// fresh backing arrays (sinks must not retain the batch — see
		// Sink).
		if cap(l.batch) < n {
			l.batch = make([]byte, n)
		}
		batch := l.batch[:n]
		copy(batch, l.buf)
		rem := copy(l.buf, l.buf[n:])
		l.buf = l.buf[:rem]
		if len(l.buf) > 0 {
			l.oldestWait = p.Now()
		}
		start := l.bufStart
		l.bufStart = start + int64(len(batch))
		span := l.mFlushLat.Start()
		for {
			// Fault plan: the wal.sink point fails or delays one flush;
			// a transient failure is retried with backoff.
			if d := fault.CheckEnv(l.env, fault.WALSink, l.sink.Name(), 1); d.Fail() {
				l.mSinkRetries.Inc()
				p.Sleep(walRetryBackoff)
				continue
			} else if d.Act == fault.ActionDelay {
				p.Sleep(d.Dur)
			}
			err := l.sink.Write(p, batch)
			if err == nil {
				break
			}
			if errors.Is(err, ErrSinkLost) {
				// The device is gone (power loss). Freeze the durable
				// horizon where it is and halt; without a failover the
				// unflushed records are lost, exactly like a crashed log.
				// The failed batch is put back at the front of the buffer
				// so Resume can re-drive a byte-exact stream onto a
				// promoted device.
				restored := make([]byte, 0, len(batch)+len(l.buf))
				restored = append(restored, batch...)
				restored = append(restored, l.buf...)
				l.buf = restored
				l.bufStart = start
				l.dead = true
				l.flushed.Broadcast()
				return
			}
			// Any other failed flush would corrupt the durability
			// horizon; halt the pipeline loudly rather than acking lost
			// data.
			panic(fmt.Sprintf("wal: sink %s failed: %v", l.sink.Name(), err))
		}
		if l.cfg.Retain {
			l.retained = append(l.retained, batch...)
		}
		l.durableLSN = start + int64(len(batch))
		span.End()
		l.mFlushes.Inc()
		l.mFlushBytes.Add(int64(len(batch)))
		l.flushed.Broadcast()
	}
}

// Stats returns (records appended, flushes, bytes flushed).
func (l *Log) Stats() (records, flushes, bytes int64) {
	return l.mRecords.Value(), l.mFlushes.Value(), l.mFlushBytes.Value()
}

// Dead reports whether the pipeline has halted because its sink was lost
// (power failure). DurableLSN is final; WaitDurable past it and
// WaitBacklog block forever.
func (l *Log) Dead() bool { return l.dead }

// Halt forces the pipeline into the halted state. A failover manager
// calls this when the sink's device died while the flusher sat idle —
// with no flush in flight, nothing would ever observe ErrSinkLost. Only
// safe with no flush in flight (Backlog() == 0): a mid-flight flush must
// be left to discover the loss itself, or Resume would race it.
func (l *Log) Halt() {
	if l.dead {
		return
	}
	l.dead = true
	l.appended.Broadcast() // wake the parked flusher so it exits
	l.flushed.Broadcast()
}

// SinkRetries returns how many flush attempts a fault plan failed.
func (l *Log) SinkRetries() int64 { return l.mSinkRetries.Value() }

// Resume restarts a halted pipeline on a fresh sink whose stream frontier
// is fr (a promoted secondary's persisted prefix, see failover). It
// reconciles the log with the frontier before the flusher restarts:
//
//   - fr < DurableLSN: the promoted device is missing a tail the old
//     primary had acked. The retained copy (Config.Retain) of
//     [fr, DurableLSN) is re-driven through the new sink so no committed
//     record is lost. Without retention this is ErrTailUnavailable.
//   - fr > DurableLSN: the promoted device persisted bytes the old
//     primary never acked (lazy schemes cannot produce this; eager/chain
//     can). The buffered prefix up to fr is already durable and is
//     dropped from the accumulator; the durable horizon jumps to fr.
//
// Both directions rely on the stream being append-only and content-fixed:
// the bytes at an offset never change, so replaying or skipping them is
// idempotent. Returns the number of bytes replayed through the new sink.
func (l *Log) Resume(p *sim.Proc, sink Sink, fr int64) (int64, error) {
	if !l.dead {
		return 0, fmt.Errorf("%w: sink %s still active", ErrResumeLive, l.sink.Name())
	}
	var replayed int64
	switch {
	case fr < l.durableLSN:
		if !l.cfg.Retain || fr < l.retainBase {
			return 0, fmt.Errorf("%w: need [%d, %d), retained from %d",
				ErrTailUnavailable, fr, l.durableLSN, l.retainBase)
		}
		// Private copy (DESIGN.md §9): the replay loop yields in
		// sink.Write, and a concurrent TrimRetained or a resumed flusher
		// appending to l.retained can reallocate the backing array under
		// the yield — a bare alias would then replay stale bytes.
		tail := append([]byte(nil), l.retained[fr-l.retainBase:l.durableLSN-l.retainBase]...)
		for len(tail) > 0 {
			n := len(tail)
			if n > l.cfg.GroupBytes {
				n = l.cfg.GroupBytes
			}
			if err := sink.Write(p, tail[:n]); err != nil {
				return replayed, fmt.Errorf("wal: resume replay on %s: %w", sink.Name(), err)
			}
			replayed += int64(n)
			tail = tail[n:]
		}
	case fr > l.durableLSN:
		skip := fr - l.durableLSN
		if skip > int64(len(l.buf)) {
			return 0, fmt.Errorf("%w: frontier %d past appended end %d",
				ErrTailUnavailable, fr, l.bufStart+int64(len(l.buf)))
		}
		if l.cfg.Retain {
			l.retained = append(l.retained, l.buf[:skip]...)
		}
		rem := copy(l.buf, l.buf[skip:])
		l.buf = l.buf[:rem]
		l.bufStart = fr
		l.durableLSN = fr
	}
	l.sink = sink
	l.dead = false
	if len(l.buf) > 0 {
		l.oldestWait = l.env.Now()
	}
	l.env.Go("wal-flusher", l.flusher)
	l.flushed.Broadcast()
	return replayed, nil
}

// StreamRange returns a copy of the log stream's bytes in [from, to).
// Durable bytes are served from the retained copy (Config.Retain);
// appended-but-unflushed bytes from the accumulator. Used by a failover
// manager to backfill a surviving secondary's missing prefix.
func (l *Log) StreamRange(from, to int64) ([]byte, error) {
	end := l.bufStart + int64(len(l.buf))
	if from < l.retainBase || to > end || from > to ||
		(from < l.bufStart && !l.cfg.Retain) {
		return nil, fmt.Errorf("%w: range [%d, %d) outside [%d, %d)",
			ErrTailUnavailable, from, to, l.retainBase, end)
	}
	out := make([]byte, 0, to-from)
	if from < l.bufStart {
		stop := to
		if stop > l.bufStart {
			stop = l.bufStart
		}
		out = append(out, l.retained[from-l.retainBase:stop-l.retainBase]...)
		from = stop
	}
	if from < to {
		out = append(out, l.buf[from-l.bufStart:to-l.bufStart]...)
	}
	return out, nil
}

// TrimRetained discards retained stream bytes below upTo, once every
// replica is known to hold that prefix. Calls with upTo below the current
// base or above the durable horizon are clamped.
func (l *Log) TrimRetained(upTo int64) {
	if upTo > l.durableLSN {
		upTo = l.durableLSN
	}
	if upTo <= l.retainBase {
		return
	}
	l.retained = append([]byte(nil), l.retained[upTo-l.retainBase:]...)
	l.retainBase = upTo
}
