package wal

import (
	"time"

	"xssd/internal/obs"
	"xssd/internal/sim"
)

// Pipeline is the async group-commit pipeline: a worker submits
// transactions as fast as the engine produces them (db.Tx.CommitAsync
// returns an LSN without waiting for the flusher) and the pipeline keeps
// up to depth commit tokens in flight, blocking only when the window is
// full — ERMIA-style pipelined commit with bounded in-flight depth
// instead of a per-transaction durability stall.
//
// Retirement order is submission order: LSNs are monotone and the WAL's
// durable frontier advances monotonically, so the FIFO head is always the
// next token to retire. A halted log (ErrSinkLost) strands the pipeline;
// failover flows drain or discard it before Resume rebinds the sink.
type Pipeline struct {
	log     *Log
	depth   int
	toks    []pipeEntry
	retired int64
	mLat    *obs.Histogram // submit→durable, ns
	mDepth  *obs.Gauge
}

// pipeEntry is one in-flight commit: its LSN and submission time.
type pipeEntry struct {
	lsn int64
	at  time.Duration
}

// NewPipeline creates a pipeline of the given depth (minimum 1) over
// log. A non-zero scope registers the pipeline's instruments: the
// submit→durable latency histogram "commit_ns" and the in-flight depth
// gauge "inflight".
func NewPipeline(log *Log, depth int, sc obs.Scope) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	return &Pipeline{
		log:    log,
		depth:  depth,
		mLat:   sc.Histogram("commit_ns"),
		mDepth: sc.Gauge("inflight"),
	}
}

// Submit enqueues a committed transaction's LSN (as returned by
// CommitAsync; lsn <= 0, a read-only transaction, is a no-op). When the
// pipeline already holds depth tokens it blocks until the oldest one is
// durable — the only stall the async path has.
//
//xssd:hotpath
func (pl *Pipeline) Submit(p *sim.Proc, lsn int64) {
	pl.retire()
	if lsn <= 0 {
		return
	}
	if len(pl.toks) >= pl.depth {
		pl.log.WaitDurable(p, pl.toks[0].lsn)
		pl.retire()
	}
	pl.toks = append(pl.toks, pipeEntry{lsn: lsn, at: p.Now()})
	pl.mDepth.Set(int64(len(pl.toks)))
}

// retire pops every token the WAL's durable frontier already covers.
//
//xssd:hotpath
func (pl *Pipeline) retire() {
	durable := pl.log.DurableLSN()
	for len(pl.toks) > 0 && pl.toks[0].lsn <= durable {
		e := pl.toks[0]
		pl.toks = pl.toks[1:]
		pl.retired++
		if pl.mLat != nil {
			pl.mLat.ObserveDuration(pl.log.env.Now() - e.at)
		}
	}
	pl.mDepth.Set(int64(len(pl.toks)))
}

// Drain blocks until every in-flight token is durable — the pipeline's
// fsync, called at checkpoint or shutdown boundaries.
func (pl *Pipeline) Drain(p *sim.Proc) {
	if len(pl.toks) == 0 {
		return
	}
	pl.log.WaitDurable(p, pl.toks[len(pl.toks)-1].lsn)
	pl.retire()
}

// Inflight returns the number of submitted-but-not-yet-durable tokens.
func (pl *Pipeline) Inflight() int { return len(pl.toks) }

// Retired returns how many tokens have become durable.
func (pl *Pipeline) Retired() int64 { return pl.retired }

// Depth returns the pipeline's in-flight bound.
func (pl *Pipeline) Depth() int { return pl.depth }

// Latency returns the submit→durable histogram (nil without a scope).
func (pl *Pipeline) Latency() *obs.Histogram { return pl.mLat }
