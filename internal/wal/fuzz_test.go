package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRoundTrip checks the record codec: encode→decode→encode must be
// the identity, every truncation of a record must be rejected, a corrupted
// magic must be rejected, and DecodeAll over a record followed by
// arbitrary junk must stop cleanly at a boundary whose decoded prefix
// re-encodes to exactly the consumed bytes (the crash-recovery contract).
func FuzzWALRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte("payload"), []byte{})
	f.Add(int64(-7), []byte{}, []byte{0x41, 0x57})        // magic-like junk
	f.Add(int64(1<<40), bytes.Repeat([]byte{0xAA}, 300), []byte{0x57, 0x41, 0xFF})
	f.Fuzz(func(t *testing.T, txid int64, payload, junk []byte) {
		rec := Record{TxID: txid, Payload: payload}
		enc := rec.Encode(nil)
		if len(enc) != EncodedLen(len(payload)) {
			t.Fatalf("encoded %d bytes, EncodedLen says %d", len(enc), EncodedLen(len(payload)))
		}

		dec, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding failed: %v", err)
		}
		if n != len(enc) || dec.TxID != txid || !bytes.Equal(dec.Payload, payload) {
			t.Fatalf("round trip mismatch: consumed %d/%d, txid %d/%d", n, len(enc), dec.TxID, txid)
		}
		if re := dec.Encode(nil); !bytes.Equal(re, enc) {
			t.Fatal("encode→decode→encode is not the identity")
		}

		// Every strict prefix is a truncated record and must be rejected.
		cuts := []int{0, 1, recordHeaderLen - 1, len(enc) - 1}
		if len(junk) > 0 {
			cuts = append(cuts, int(junk[0])%len(enc))
		}
		for _, cut := range cuts {
			if cut < 0 || cut >= len(enc) {
				continue
			}
			if _, _, err := Decode(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes accepted", cut, len(enc))
			}
		}

		// A corrupted magic must be rejected.
		bad := append([]byte(nil), enc...)
		bad[0] ^= 0xFF
		if _, _, err := Decode(bad); err == nil {
			t.Fatal("corrupted magic accepted")
		}

		// DecodeAll over record+junk: must not panic, must recover at least
		// the intact record, and the decoded prefix must re-encode to the
		// exact consumed bytes.
		stream := append(append([]byte(nil), enc...), junk...)
		recs := DecodeAll(stream)
		if len(recs) == 0 {
			t.Fatal("DecodeAll lost the intact leading record")
		}
		off := 0
		for i, r := range recs {
			if r.LSN != int64(off) {
				t.Fatalf("record %d: LSN %d, want %d", i, r.LSN, off)
			}
			b := r.Encode(nil)
			if off+len(b) > len(stream) || !bytes.Equal(stream[off:off+len(b)], b) {
				t.Fatalf("record %d does not re-encode to its source bytes", i)
			}
			off += len(b)
		}
		if recs[0].TxID != txid || !bytes.Equal(recs[0].Payload, payload) {
			t.Fatal("leading record corrupted by trailing junk")
		}
	})
}
