package wal

import (
	"testing"
	"time"

	"xssd/internal/obs"
	"xssd/internal/sim"
)

func TestPipelineBoundsInflightAtDepth(t *testing.T) {
	env := sim.NewEnv(1)
	sink := &countingSink{delay: 50 * time.Microsecond}
	log := NewLog(env, sink, Config{GroupBytes: 1 << 20, GroupTimeout: 100 * time.Microsecond})
	pl := NewPipeline(log, 4, obs.Scope{})
	var maxInflight int
	env.Go("worker", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			lsn := log.Append(Record{TxID: int64(i), Payload: make([]byte, 64)})
			pl.Submit(p, lsn)
			if pl.Inflight() > maxInflight {
				maxInflight = pl.Inflight()
			}
		}
		pl.Drain(p)
	})
	env.RunUntil(time.Second)
	if maxInflight > 4 {
		t.Errorf("pipeline held %d tokens in flight, depth is 4", maxInflight)
	}
	if pl.Inflight() != 0 || pl.Retired() != 20 {
		t.Fatalf("after drain: %d in flight, %d retired, want 0/20", pl.Inflight(), pl.Retired())
	}
}

func TestPipelineSubmitIgnoresReadOnlyLSN(t *testing.T) {
	env := sim.NewEnv(1)
	sink := &countingSink{delay: time.Microsecond}
	log := NewLog(env, sink, Config{GroupBytes: 1, GroupTimeout: time.Microsecond})
	pl := NewPipeline(log, 2, obs.Scope{})
	env.Go("worker", func(p *sim.Proc) {
		pl.Submit(p, 0)  // read-only commit: no WAL record
		pl.Submit(p, -1) // aborted: no WAL record
	})
	env.RunUntil(time.Millisecond)
	if pl.Inflight() != 0 || pl.Retired() != 0 {
		t.Fatalf("read-only submissions entered the pipeline: %d in flight, %d retired",
			pl.Inflight(), pl.Retired())
	}
}

func TestPipelineLatencyHistogramCountsRetirements(t *testing.T) {
	env := sim.NewEnv(1)
	sink := &countingSink{delay: 20 * time.Microsecond}
	log := NewLog(env, sink, Config{GroupBytes: 1 << 20, GroupTimeout: 50 * time.Microsecond})
	sc := obs.For(env).Scope("test/pipe")
	pl := NewPipeline(log, 8, sc)
	env.Go("worker", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			pl.Submit(p, log.Append(Record{TxID: int64(i), Payload: make([]byte, 32)}))
		}
		pl.Drain(p)
	})
	env.RunUntil(time.Second)
	s := pl.Latency().Summary()
	if s.N != 10 {
		t.Fatalf("latency histogram holds %d observations, want 10", s.N)
	}
	// Most commits wait a group flush (Min can be 0: a token whose LSN
	// rode an earlier flush while its Submit was blocked retires
	// instantly); the ordering invariants always hold.
	if s.Min < 0 || s.Max < s.Min || s.P50 < s.Min || s.Max <= 0 {
		t.Fatalf("implausible summary %+v", s)
	}
}

func TestPipelineDepthMinimumOne(t *testing.T) {
	env := sim.NewEnv(1)
	log := NewLog(env, &countingSink{}, Config{GroupBytes: 1, GroupTimeout: time.Microsecond})
	if pl := NewPipeline(log, 0, obs.Scope{}); pl.Depth() != 1 {
		t.Fatalf("depth 0 clamps to %d, want 1", pl.Depth())
	}
}
