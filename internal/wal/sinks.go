package wal

import (
	"errors"
	"fmt"

	"xssd/internal/nvme"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/villars"
	"xssd/internal/xapi"
)

// ErrSinkWrite reports a failed sink write; concrete failures wrap it
// with command context. Match with errors.Is.
var ErrSinkWrite = errors.New("wal: sink write failed")

// VillarsSink persists batches through the Villars fast side: XPwrite to
// the CMB window, XFsync on the credit counter (paper Fig 9's
// Villars-SRAM / Villars-DRAM series).
type VillarsSink struct {
	logger *xapi.Logger
	name   string
}

// NewVillarsSink binds a sink to dev's fast side. Must run in process
// context.
func NewVillarsSink(p *sim.Proc, dev *villars.Device, name string) *VillarsSink {
	return &VillarsSink{logger: xapi.Open(p, dev, xapi.Options{}), name: name}
}

// Write implements Sink. A power loss under the write surfaces as
// ErrSinkLost so the pipeline can halt instead of panicking.
func (s *VillarsSink) Write(p *sim.Proc, data []byte) error {
	s.logger.XPwrite(p, data)
	if err := s.logger.XFsync(p); err != nil {
		if errors.Is(err, xapi.ErrPowerLoss) {
			return fmt.Errorf("%w: %s: %w", ErrSinkLost, s.name, err)
		}
		return fmt.Errorf("%w: %s: %w", ErrSinkWrite, s.name, err)
	}
	return nil
}

// Name implements Sink.
func (s *VillarsSink) Name() string { return s.name }

// Logger exposes the underlying drop-in API handle.
func (s *VillarsSink) Logger() *xapi.Logger { return s.logger }

// RebindableSink is a Sink that can be pointed at a different device
// mid-stream — the failover path: after a secondary is promoted, the
// host rebinds its log sink to the new primary and continues the stream
// at the promoted device's persisted frontier.
type RebindableSink interface {
	Sink
	// Rebind reopens the sink against dev with the stream cursor at off.
	Rebind(p *sim.Proc, dev *villars.Device, off int64)
}

// Rebind implements RebindableSink: reopen the drop-in API against the
// promoted device, resuming the stream at off (its credit counter already
// vouches for every byte below).
func (s *VillarsSink) Rebind(p *sim.Proc, dev *villars.Device, off int64) {
	s.logger = xapi.Open(p, dev, xapi.Options{ResumeAt: off})
}

// MemorySink persists batches to host NVDIMM via plain stores plus a
// persistence fence (the paper's "Memory" baseline; ERMIA emulates PM the
// same way). The application remains responsible for eventually destaging
// — the paper's four-data-movement path — which this sink models with an
// optional background drain against an NVMe sink.
type MemorySink struct {
	bank *pm.Bank
}

// NewMemorySink creates the NVDIMM baseline sink.
func NewMemorySink(env *sim.Env, spec pm.Spec) *MemorySink {
	return &MemorySink{bank: pm.NewBank(env, spec)}
}

// Write implements Sink: one store stream plus fence latency.
func (s *MemorySink) Write(p *sim.Proc, data []byte) error {
	s.bank.Write(p, len(data))
	return nil
}

// Name implements Sink.
func (s *MemorySink) Name() string { return "Memory" }

// NVMeSink persists batches as block writes on the conventional side of a
// device, queue depth 1 (the paper Fig 9's "NVMe" series: "the logging
// workload has a queue depth of 1").
type NVMeSink struct {
	dev      *villars.Device
	driver   *nvme.Driver
	hostMem  *pcie.HostMemory
	scratch  int64
	startLBA int64
	nextLBA  int64
	lbaEnd   int64
}

// NewNVMeSink creates a conventional-path sink writing sequentially from
// startLBA for lbaCount blocks (wrapping, like a log file being recycled).
func NewNVMeSink(dev *villars.Device, hostMem *pcie.HostMemory, scratch, startLBA, lbaCount int64) *NVMeSink {
	return &NVMeSink{
		dev:      dev,
		driver:   dev.HostDriver(),
		hostMem:  hostMem,
		scratch:  scratch,
		startLBA: startLBA,
		nextLBA:  startLBA,
		lbaEnd:   startLBA + lbaCount,
	}
}

// Write implements Sink: copy into the DMA buffer, issue one NVMe write,
// wait for its completion.
func (s *NVMeSink) Write(p *sim.Proc, data []byte) error {
	bs := s.dev.BlockSize()
	blocks := (len(data) + bs - 1) / bs
	copy(s.hostMem.Bytes()[s.scratch:], data)
	if s.nextLBA+int64(blocks) > s.lbaEnd {
		s.nextLBA = s.startLBA // recycle the log range
	}
	lba := s.nextLBA
	c := s.driver.Submit(p, nvme.Command{Opcode: nvme.OpWrite, LBA: lba, Blocks: blocks, PRP: s.scratch})
	s.nextLBA += int64(blocks)
	if c.Status != nvme.StatusSuccess {
		return fmt.Errorf("%w: NVMe write of %d blocks at lba %d, status %d", ErrSinkWrite, blocks, lba, c.Status)
	}
	return nil
}

// Name implements Sink.
func (s *NVMeSink) Name() string { return "NVMe" }

// NullSink discards everything instantly (the "No Log" baseline).
type NullSink struct{}

// Write implements Sink.
func (NullSink) Write(*sim.Proc, []byte) error { return nil }

// Name implements Sink.
func (NullSink) Name() string { return "NoLog" }
