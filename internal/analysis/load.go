package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis. Only non-test sources are loaded: the determinism and error
// discipline invariants apply to production code, and tests legitimately
// use wall-clock timeouts and discard errors on purpose-built failures.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg mirrors the fields of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` for patterns in dir and
// decodes the package stream. The -export flag makes the go tool compile
// (or reuse from the build cache) every package and report the path of its
// export data, which is what lets us type-check one package at a time
// without re-checking its dependencies from source.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,GoFiles,Standard,DepOnly,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// NewImporter returns a types.Importer that resolves import paths through
// the export-data files in exports (import path -> file). The importer
// caches, so sharing one across packages keeps imported types identical.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// LoadExports resolves importPaths (and everything they depend on) to
// export-data files, for type-checking loose source files such as the
// analysistest testdata packages. dir must lie inside the module.
func LoadExports(dir string, importPaths ...string) (map[string]string, error) {
	if len(importPaths) == 0 {
		return map[string]string{}, nil
	}
	list, err := goList(dir, importPaths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range list {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Load lists, parses and type-checks the packages matching patterns
// (resolved relative to dir, typically the module root). Test files are
// excluded; see Package.
func Load(dir string, patterns ...string) ([]*Package, error) {
	list, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listPkg
	for _, p := range list {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var out []*Package
	for _, lp := range targets {
		if lp.Error != nil {
			return nil, errors.New(lp.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	// Keep the deps-first order `go list -deps` emits: cross-package
	// analyzer facts (envaffinity) require every package's dependencies to
	// be analyzed before it. Diagnostics are position-sorted on output, so
	// the user-visible order is unaffected.
	return out, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, lp *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// RunAnalyzers applies every analyzer to every package (in the
// dependency order Load produced, sharing one Facts store) and returns
// the diagnostics sorted by file position. Diagnostics covered by an
// //xssd:ignore directive are dropped; malformed //xssd: directives are
// reported through DirectiveAnalyzer so a typo cannot silently disable
// a check.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := NewFacts()
	for _, pkg := range pkgs {
		ignores := BuildIgnoreIndex(pkg.Fset, pkg.Files)
		diags = append(diags, ValidateDirectives(pkg.Files)...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a
				if ignores.Suppressed(pkg.Fset.Position(d.Pos), a.Name) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return diags[i].Analyzer.Name < diags[j].Analyzer.Name
		})
	}
	return diags, nil
}
