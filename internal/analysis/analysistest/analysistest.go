// Package analysistest runs an analyzer over small testdata packages and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Layout: testdata/src/<importpath>/*.go forms one package per directory.
// A line expecting diagnostics carries a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// with exactly one quoted regexp per diagnostic expected on that line.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"xssd/internal/analysis"
)

// Run analyzes each testdata/src/<path> package with a and reports
// mismatches between diagnostics and // want expectations on t. One
// Facts store is shared across the paths of a call, in order, so
// fact-recording analyzers can be exercised cross-package by listing
// the fact-producing path first. //xssd:ignore directives in testdata
// suppress diagnostics exactly as under the xvet driver. Passing
// analysis.DirectiveAnalyzer checks directive validation itself.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	facts := analysis.NewFacts()
	for _, path := range paths {
		runOne(t, testdata, a, facts, path)
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, facts *analysis.Facts, path string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("%s: no Go files in %s (%v)", path, dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}

	scrubWants(files)

	var importPaths []string
	for p := range imports {
		importPaths = append(importPaths, p)
	}
	sort.Strings(importPaths)
	exports, err := analysis.LoadExports(".", importPaths...)
	if err != nil {
		t.Fatalf("%s: resolving imports: %v", path, err)
	}

	info := analysis.NewInfo()
	conf := types.Config{Importer: analysis.NewImporter(fset, exports)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("%s: type-checking testdata: %v", path, err)
	}

	var diags []analysis.Diagnostic
	ignores := analysis.BuildIgnoreIndex(fset, files)
	report := func(d analysis.Diagnostic) {
		if ignores.Suppressed(fset.Position(d.Pos), a.Name) {
			return
		}
		diags = append(diags, d)
	}
	if a == analysis.DirectiveAnalyzer {
		for _, d := range analysis.ValidateDirectives(files) {
			report(d)
		}
	} else {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Facts:     facts,
			Report:    report,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer %s: %v", path, a.Name, err)
		}
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if matchWant(wants[key], d.Message) {
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s: %s", a.Name, key, d.Message)
	}
	for key, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s: expected diagnostic matching %q at %s, got none", a.Name, re.String(), key)
			}
		}
	}
}

// matchWant consumes (nils out) the first unused expectation matching msg.
func matchWant(res []*regexp.Regexp, msg string) bool {
	for i, re := range res {
		if re != nil && re.MatchString(msg) {
			res[i] = nil
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// scrubWants detaches pure-expectation comment groups from AST doc
// positions so a trailing "// want ..." does not read as documentation to
// comment-sensitive analyzers (paramdoc). The groups stay in File.Comments
// for collectWants.
func scrubWants(files []*ast.File) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			field, ok := n.(*ast.Field)
			if !ok {
				return true
			}
			if isWantGroup(field.Doc) {
				field.Doc = nil
			}
			if isWantGroup(field.Comment) {
				field.Comment = nil
			}
			return true
		})
	}
}

func isWantGroup(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if !wantRE.MatchString(c.Text) {
			return false
		}
	}
	return true
}

// collectWants maps "file:line" to the expectations declared on that line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of space-separated double-quoted or
// backquoted strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want clause near %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: cannot unquote %s: %v", pos, raw, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
