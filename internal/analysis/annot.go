package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //xssd: machine-directive grammar (DESIGN.md §9). Directives are
// ordinary comments with no space after "//", mirroring //go: directives,
// so gofmt leaves them alone and they never render as documentation
// prose:
//
//	//xssd:hotpath
//	//xssd:ignore <analyzer> <reason...>
//	//xssd:pool get|put|retain|alias
//	//xssd:conduit <reason...>
//	//xssd:envroot
//	//xssd:foreign
//
// hotpath marks a function whose body hotpathalloc checks for
// allocation-introducing constructs. ignore suppresses one analyzer's
// diagnostics on its own line and the line below; the reason is
// mandatory. pool classifies buffer-pool surfaces for bufownership: get
// on functions handing out pooled objects, put on free-list fields and
// release functions, retain on sanctioned long-lived retention fields,
// alias on functions returning views into pooled storage. conduit marks
// a function as an approved cross-Env crossing for envaffinity; envroot
// marks a type whose state is owned by one Env; foreign marks a struct
// field that points at another Env's state.
const directivePrefix = "//xssd:"

// Directive is one parsed //xssd: machine directive.
type Directive struct {
	Pos  token.Pos
	Name string
	Args []string
}

// directiveSpecs lists the known directive names and the minimum number
// of arguments each requires.
var directiveSpecs = map[string]int{
	"hotpath": 0,
	"ignore":  2, // analyzer + reason
	"pool":    1, // get|put|retain|alias
	"conduit": 1, // reason
	"envroot": 0,
	"foreign": 0,
}

// poolClasses are the valid arguments of //xssd:pool.
var poolClasses = map[string]bool{"get": true, "put": true, "retain": true, "alias": true}

// ParseDirective parses one comment's text. ok is false when the comment
// is not an //xssd: directive at all; a malformed directive (unknown
// name, missing arguments) still returns ok = true so the caller can
// report it instead of silently treating a typo as prose.
func ParseDirective(text string) (Directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	fields := strings.Fields(text[len(directivePrefix):])
	d := Directive{}
	if len(fields) > 0 {
		d.Name = fields[0]
		d.Args = fields[1:]
	}
	return d, true
}

// directiveProblem describes what is wrong with d, or "" when d is well
// formed.
func directiveProblem(d Directive) string {
	min, known := directiveSpecs[d.Name]
	if !known {
		return "unknown //xssd: directive " + strconvQuote(d.Name)
	}
	if len(d.Args) < min {
		switch d.Name {
		case "ignore":
			return "//xssd:ignore needs an analyzer name and a reason"
		case "pool":
			return "//xssd:pool needs a class: get, put, retain, or alias"
		case "conduit":
			return "//xssd:conduit needs a reason"
		}
		return "//xssd:" + d.Name + " is missing arguments"
	}
	if d.Name == "pool" && !poolClasses[d.Args[0]] {
		return "//xssd:pool class must be get, put, retain, or alias, not " + strconvQuote(d.Args[0])
	}
	return ""
}

// strconvQuote is a tiny local quote so the parser stays dependency-free
// for the fuzz target.
func strconvQuote(s string) string { return `"` + s + `"` }

// Directives returns every //xssd: directive in f's comments, with
// positions, in source order.
func Directives(f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := ParseDirective(c.Text); ok {
				d.Pos = c.Pos()
				out = append(out, d)
			}
		}
	}
	return out
}

// HasDirective reports whether the comment group carries an
// //xssd:<name> directive.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	_, ok := FindDirective(doc, name)
	return ok
}

// FindDirective returns the first //xssd:<name> directive in doc.
func FindDirective(doc *ast.CommentGroup, name string) (Directive, bool) {
	if doc == nil {
		return Directive{}, false
	}
	for _, c := range doc.List {
		if d, ok := ParseDirective(c.Text); ok && d.Name == name {
			d.Pos = c.Pos()
			return d, true
		}
	}
	return Directive{}, false
}

// DirectiveAnalyzer attributes the framework's own diagnostics about
// malformed //xssd: directives. It is not independently runnable; the
// driver applies it to every package alongside the real analyzers.
var DirectiveAnalyzer = &Analyzer{
	Name: "xssddirective",
	Doc:  "report malformed //xssd: machine directives (typos would otherwise silently disable a check)",
}

// ValidateDirectives returns a diagnostic for every malformed //xssd:
// directive in files, attributed to DirectiveAnalyzer.
func ValidateDirectives(files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, d := range Directives(f) {
			if p := directiveProblem(d); p != "" {
				out = append(out, Diagnostic{Pos: d.Pos, Message: p, Analyzer: DirectiveAnalyzer})
			}
		}
	}
	return out
}

// IgnoreIndex records //xssd:ignore directives: file -> line -> the
// analyzer names suppressed there. An ignore suppresses matching
// diagnostics on its own line and on the line directly below, so it
// works both as a trailing comment and as a standalone line above the
// finding.
type IgnoreIndex map[string]map[int]map[string]bool

// BuildIgnoreIndex collects the well-formed ignore directives of files.
func BuildIgnoreIndex(fset *token.FileSet, files []*ast.File) IgnoreIndex {
	ix := IgnoreIndex{}
	for _, f := range files {
		for _, d := range Directives(f) {
			if d.Name != "ignore" || len(d.Args) < 2 {
				continue
			}
			pos := fset.Position(d.Pos)
			lines := ix[pos.Filename]
			if lines == nil {
				lines = map[int]map[string]bool{}
				ix[pos.Filename] = lines
			}
			set := lines[pos.Line]
			if set == nil {
				set = map[string]bool{}
				lines[pos.Line] = set
			}
			set[d.Args[0]] = true
		}
	}
	return ix
}

// Suppressed reports whether a diagnostic of the named analyzer at pos
// is covered by an ignore directive.
func (ix IgnoreIndex) Suppressed(pos token.Position, analyzer string) bool {
	lines := ix[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}
