package analysis

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzDirective hardens the //xssd: annotation parser: seven analyzers
// and the xvet driver trust its output, so it must never panic, never
// recognize prose as a directive, and must classify every recognized
// directive either as well formed or with a stable problem description.
func FuzzDirective(f *testing.F) {
	f.Add("//xssd:hotpath")
	f.Add("//xssd:ignore hotpathalloc the delay path must copy")
	f.Add("//xssd:pool get")
	f.Add("//xssd:pool borrow")
	f.Add("//xssd:conduit catch-up transfer at the takeover barrier")
	f.Add("//xssd:envroot")
	f.Add("//xssd:foreign extra args")
	f.Add("//xssd:ignore onlyanalyzer")
	f.Add("//xssd:")
	f.Add("//xssd:pool")
	f.Add("// xssd:hotpath")
	f.Add("//go:noinline")
	f.Add("//xssd:hotpath\ttabs and odd spaces")
	f.Add("//xssd:pool get put retain alias")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := ParseDirective(text)
		if !ok {
			// Not a directive: the prefix must genuinely be absent, or
			// the parser is silently dropping annotations.
			if strings.HasPrefix(text, "//xssd:") {
				t.Fatalf("ParseDirective(%q) rejected a //xssd: comment", text)
			}
			return
		}
		if !strings.HasPrefix(text, "//xssd:") {
			t.Fatalf("ParseDirective(%q) recognized a non-directive", text)
		}
		// Fields never contain whitespace: the ignore index and the
		// analyzer fact keys depend on that.
		for _, s := range append([]string{d.Name}, d.Args...) {
			if strings.IndexFunc(s, unicode.IsSpace) >= 0 {
				t.Fatalf("ParseDirective(%q) produced a field with whitespace: %q", text, s)
			}
		}
		// Classification is total and stable: directiveProblem must not
		// panic, and a well-formed verdict must agree with the spec
		// table's arity floor.
		p := directiveProblem(d)
		min, known := directiveSpecs[d.Name]
		if p == "" {
			if !known {
				t.Fatalf("directiveProblem(%q) accepted unknown directive %q", text, d.Name)
			}
			if len(d.Args) < min {
				t.Fatalf("directiveProblem(%q) accepted %q with %d args, spec floor %d", text, d.Name, len(d.Args), min)
			}
			if d.Name == "pool" && !poolClasses[d.Args[0]] {
				t.Fatalf("directiveProblem(%q) accepted bad pool class %q", text, d.Args[0])
			}
		}
	})
}
