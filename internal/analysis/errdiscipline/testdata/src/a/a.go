// Package a exercises the errdiscipline analyzer: %v/%s-formatted errors
// and silently discarded storage-API errors are reported; %w wrapping,
// non-error formatting and explicit discards are not.
package a

import (
	"fmt"

	"xssd/internal/ring"
)

func wrapWithV(err error) error {
	return fmt.Errorf("load config: %v", err) // want "wrap it with %w"
}

func wrapWithS(op string, err error) error {
	return fmt.Errorf("%s failed: %s", op, err) // want "wrap it with %w"
}

// wrapWithW is the sanctioned form: errors.Is can see through it.
func wrapWithW(err error) error {
	return fmt.Errorf("load config: %w", err)
}

// formatNonError is fine: %v over plain values loses nothing.
func formatNonError(n int, s string) error {
	return fmt.Errorf("bad row %d (%v)", n, s)
}

func discardRelease(r *ring.Ring) {
	r.Release(8) // want "error result of ring.Release discarded"
}

func discardWrite(r *ring.Ring, data []byte) {
	r.Write(0, data) // want "error result of ring.Write discarded"
}

// explicitDiscard records the decision to ignore; deliberately no report.
func explicitDiscard(r *ring.Ring) {
	_ = r.Release(8)
}

// handled is the normal path; no report.
func handled(r *ring.Ring, data []byte) error {
	if err := r.Write(0, data); err != nil {
		return fmt.Errorf("stage batch: %w", err)
	}
	return nil
}
