// Package a exercises the errdiscipline analyzer: %v/%s-formatted errors
// and silently discarded storage-API errors are reported; %w wrapping,
// non-error formatting and explicit discards are not.
package a

import (
	"fmt"

	"xssd/internal/ring"
)

func wrapWithV(err error) error {
	return fmt.Errorf("load config: %v", err) // want "wrap it with %w"
}

func wrapWithS(op string, err error) error {
	return fmt.Errorf("%s failed: %s", op, err) // want "wrap it with %w"
}

// wrapWithW is the sanctioned form: errors.Is can see through it.
func wrapWithW(err error) error {
	return fmt.Errorf("load config: %w", err)
}

// formatNonError is fine: %v over plain values loses nothing.
func formatNonError(n int, s string) error {
	return fmt.Errorf("bad row %d (%v)", n, s)
}

func discardRelease(r *ring.Ring) {
	r.Release(8) // want "error result of ring.Release discarded"
}

func discardWrite(r *ring.Ring, data []byte) {
	r.Write(0, data) // want "error result of ring.Write discarded"
}

// explicitDiscard records the decision to ignore; deliberately no report.
func explicitDiscard(r *ring.Ring) {
	_ = r.Release(8)
}

// handled is the normal path; no report.
func handled(r *ring.Ring, data []byte) error {
	if err := r.Write(0, data); err != nil {
		return fmt.Errorf("stage batch: %w", err)
	}
	return nil
}

// deferredCleanup discards inside a deferred closure: by the time it
// runs the operation's outcome is decided and there is no caller left to
// hand the error to; no report.
func deferredCleanup(r *ring.Ring, data []byte) error {
	defer func() {
		r.Release(8)
	}()
	return r.Write(0, data)
}

// deferredDirect is not a bare statement call; never reported.
func deferredDirect(r *ring.Ring) {
	defer r.Release(8)
}

// deferredStillWraps: the %w rule holds even inside cleanup closures.
func deferredStillWraps(r *ring.Ring, errs *[]error) {
	defer func() {
		if err := r.Release(8); err != nil {
			*errs = append(*errs, fmt.Errorf("release: %v", err)) // want "wrap it with %w"
		}
	}()
}

// notDeferred: the same closure outside a defer statement is held to the
// normal discipline.
func notDeferred(r *ring.Ring) func() {
	return func() {
		r.Release(8) // want "error result of ring.Release discarded"
	}
}
