// Package errdiscipline enforces the repo's error-handling rules: errors
// composed into larger errors must be wrapped with %w (so callers can use
// errors.Is / errors.As), and error results from the storage-facing APIs
// (villars, wal, ring, xapi) must not be silently discarded.
package errdiscipline

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"xssd/internal/analysis"
)

// Analyzer is the errdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc: `require %w wrapping and explicit handling of storage API errors

fmt.Errorf("...: %v", err) flattens err to text: errors.Is/errors.As can no
longer see sentinel errors like ring.ErrFull through it. Use %w. Separately,
calling an error-returning method of the villars/wal/ring/xapi packages as
a bare statement drops a durability signal on the floor; handle the error
or assign it to _ explicitly to document the decision.

Deferred cleanup closures (a func literal that is the immediate operand of
a defer statement) are exempt from the discard rule: by the time they run
the operation's outcome is already decided, and a best-effort Close/Abort
there has no caller left to hand the error to.`,
	Run: run,
}

// disciplinedPkgs are the packages whose error returns carry durability /
// corruption signals that must never be dropped implicitly.
var disciplinedPkgs = map[string]bool{
	"xssd/internal/villars": true,
	"xssd/internal/wal":     true,
	"xssd/internal/ring":    true,
	"xssd/internal/xapi":    true,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkScope(pass, f, false)
	}
	return nil
}

// checkScope walks n flagging %v-wrapping and discarded errors. inCleanup
// is true lexically inside a deferred func literal, where bare-statement
// discards are deliberate best-effort cleanup rather than dropped signals
// (the %w rule still applies there).
func checkScope(pass *analysis.Pass, root ast.Node, inCleanup bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := analysis.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				// The call's arguments evaluate at defer time, in the
				// surrounding discipline; only the body is the cleanup.
				for _, arg := range n.Call.Args {
					checkScope(pass, arg, inCleanup)
				}
				checkScope(pass, lit.Body, true)
				return false
			}
		case *ast.CallExpr:
			checkErrorf(pass, n)
		case *ast.ExprStmt:
			if call, ok := analysis.Unparen(n.X).(*ast.CallExpr); ok && !inCleanup {
				checkDiscard(pass, call)
			}
		}
		return true
	})
}

// checkErrorf flags fmt.Errorf calls that format an error value with %v or
// %s instead of wrapping it with %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%[") {
		return // explicit argument indexes: too clever to track, skip
	}
	args := call.Args[1:]
	argIdx := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// width
		for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				argIdx++
			}
			i++
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
				if format[i] == '*' {
					argIdx++
				}
				i++
			}
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		if verb == '%' {
			continue
		}
		if (verb == 'v' || verb == 's') && argIdx < len(args) {
			if tv, ok := pass.TypesInfo.Types[args[argIdx]]; ok && tv.Type != nil && types.Implements(tv.Type, errorIface) {
				pass.Reportf(call.Pos(), "error formatted with %%%c loses its identity; wrap it with %%w so callers can errors.Is/errors.As through it", verb)
			}
		}
		argIdx++
	}
}

// checkDiscard flags bare statement calls that drop the error result of a
// disciplined storage API.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !disciplinedPkgs[fn.Pkg().Path()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Implements(last, errorIface) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s.%s discarded; handle it or assign it to _ to record the decision", fn.Pkg().Name(), fn.Name())
}
