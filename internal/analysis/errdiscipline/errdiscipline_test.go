package errdiscipline_test

import (
	"testing"

	"xssd/internal/analysis/analysistest"
	"xssd/internal/analysis/errdiscipline"
)

func TestErrDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", errdiscipline.Analyzer, "a")
}
