// Package a exercises the maporder analyzer: sim calls and unsorted
// accumulation inside range-over-map are reported; slice iteration and
// sorted accumulation are not.
package a

import (
	"sort"
	"time"

	"xssd/internal/sim"
)

func schedInMapOrder(env *sim.Env, procs map[string]func(*sim.Proc)) {
	for name, fn := range procs {
		env.Go(name, fn) // want "call to sim.Go inside map iteration"
	}
}

func sleepInMapOrder(p *sim.Proc, delays map[string]int64) {
	for _, d := range delays {
		p.Sleep(time.Duration(d)) // want "call to sim.Sleep inside map iteration"
	}
}

func unsortedAccumulation(m map[string]int) []string {
	var names []string
	for n := range m {
		names = append(names, n) // want "names accumulates elements in map-iteration order"
	}
	return names
}

// sortedAccumulation is the sanctioned pattern: collect, sort, then use.
func sortedAccumulation(m map[string]int) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// sliceOrderIsDeterministic: ranging a slice is fine even when the body
// schedules events.
func sliceOrderIsDeterministic(env *sim.Env, names []string, fn func(*sim.Proc)) {
	for _, n := range names {
		env.Go(n, fn)
	}
}
