// Package faulthook exercises the maporder analyzer on the fault
// hook-site pattern: a registry of named fault points must not arm
// scheduled events or report firings in map-iteration order.
package faulthook

import (
	"sort"

	"xssd/internal/sim"
)

type rule struct {
	at int64
	fn func()
}

// badArm schedules each registered rule while ranging over the registry:
// the event creation order (and hence tie-breaking) becomes map order.
func badArm(env *sim.Env, rules map[string]rule) {
	for _, r := range rules {
		env.At(0, r.fn) // want "call to sim.At inside map iteration"
	}
}

// badReport returns the fired point names in map order.
func badReport(fired map[string]int) []string {
	var points []string
	for p := range fired {
		points = append(points, p) // want "points accumulates elements in map-iteration order"
	}
	return points
}

// goodArm is the sanctioned pattern: fix the order first, then arm.
func goodArm(env *sim.Env, rules map[string]rule) {
	var names []string
	for n := range rules {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		env.At(0, rules[n].fn)
	}
}

// goodReport sorts before returning.
func goodReport(fired map[string]int) []string {
	points := badReportSorted(fired)
	sort.Strings(points)
	return points
}

func badReportSorted(fired map[string]int) []string {
	out := make([]string, 0, len(fired))
	for p := range fired {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
