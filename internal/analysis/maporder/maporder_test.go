package maporder_test

import (
	"testing"

	"xssd/internal/analysis/analysistest"
	"xssd/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "a", "faulthook")
}
